package fmi

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
)

// Mid-collective failure tests (ISSUE 3 satellite): kill a rank while
// each schedule family is in flight and require the job to recover
// through Loop with the exact deterministic answer, on both transports
// and under both recovery modes. The scripted fault lands after the
// victim passes loop 4, i.e. somewhere inside iteration 4's body —
// which is nothing but back-to-back collectives — so survivors observe
// the death mid-schedule (a peer's step never arrives) and must abort
// cleanly to Loop rather than hang or deliver torn data.

// collFamily pins one schedule generator family via the Collectives
// config and checks its results are exact after recovery.
type collFamily struct {
	name  string
	pin   func(*Config)
	app   func(iters int, results *sync.Map) App
	final func(ranks, iters int) int64
}

// ringAllreduceFamily: forced ring (the small test payload would
// auto-select recursive doubling). The int64 vector is ranks elements
// long so the ring's byte chunks align with int64 lanes.
func ringAllreduceApp(iters int, results *sync.Map) App {
	return func(env *Env) error {
		world := env.World()
		ranks := env.Size()
		state := make([]byte, 16)
		for {
			n := env.Loop(state)
			if n >= iters {
				break
			}
			in := make([]int64, ranks)
			for i := range in {
				in[i] = int64(n + env.Rank() + i)
			}
			sum, err := AllreduceInt64(world, SumInt64(), in...)
			if err != nil {
				continue // failure detected: back to Loop to recover
			}
			acc := int64(binary.LittleEndian.Uint64(state[8:])) + sum[0] + sum[ranks-1]
			binary.LittleEndian.PutUint64(state[8:], uint64(acc))
			binary.LittleEndian.PutUint64(state[0:], uint64(n+1))
		}
		results.Store(env.Rank(), int64(binary.LittleEndian.Uint64(state[8:])))
		return env.Finalize()
	}
}

func ringAllreduceFinal(ranks, iters int) int64 {
	var total int64
	for n := 0; n < iters; n++ {
		for _, i := range []int{0, ranks - 1} {
			for r := 0; r < ranks; r++ {
				total += int64(n + r + i)
			}
		}
	}
	return total
}

// bruckAlltoallApp verifies every received part inline — after a
// recovery the re-executed exchange must still deliver each (src, dst)
// pair exactly — and folds one byte per iteration into the checksum.
func bruckAlltoallApp(iters int, results *sync.Map) App {
	return func(env *Env) error {
		world := env.World()
		ranks := env.Size()
		state := make([]byte, 16)
		for {
			n := env.Loop(state)
			if n >= iters {
				break
			}
			parts := make([][]byte, ranks)
			for d := range parts {
				parts[d] = []byte{byte(env.Rank()), byte(d), byte(n)}
			}
			out, err := world.Alltoall(parts)
			if err != nil {
				continue
			}
			for src, got := range out {
				if len(got) != 3 || got[0] != byte(src) || got[1] != byte(env.Rank()) || got[2] != byte(n) {
					return fmt.Errorf("rank %d iter %d: part from %d = %v", env.Rank(), n, src, got)
				}
			}
			acc := int64(binary.LittleEndian.Uint64(state[8:])) + int64(out[n%ranks][2])
			binary.LittleEndian.PutUint64(state[8:], uint64(acc))
			binary.LittleEndian.PutUint64(state[0:], uint64(n+1))
		}
		results.Store(env.Rank(), int64(binary.LittleEndian.Uint64(state[8:])))
		return env.Finalize()
	}
}

func bruckAlltoallFinal(_, iters int) int64 {
	var total int64
	for n := 0; n < iters; n++ {
		total += int64(byte(n))
	}
	return total
}

// binomialBcastApp rotates the root each iteration so the kill hits
// the tree in different positions across re-executions.
func binomialBcastApp(iters int, results *sync.Map) App {
	return func(env *Env) error {
		world := env.World()
		ranks := env.Size()
		state := make([]byte, 16)
		for {
			n := env.Loop(state)
			if n >= iters {
				break
			}
			root := n % ranks
			var payload []byte
			if env.Rank() == root {
				payload = []byte{byte(n + 7), byte(root)}
			}
			got, err := world.Bcast(root, payload)
			if err != nil {
				continue
			}
			if len(got) != 2 || got[0] != byte(n+7) || got[1] != byte(root) {
				return fmt.Errorf("rank %d iter %d: bcast from %d = %v", env.Rank(), n, root, got)
			}
			acc := int64(binary.LittleEndian.Uint64(state[8:])) + int64(got[0])
			binary.LittleEndian.PutUint64(state[8:], uint64(acc))
			binary.LittleEndian.PutUint64(state[0:], uint64(n+1))
		}
		results.Store(env.Rank(), int64(binary.LittleEndian.Uint64(state[8:])))
		return env.Finalize()
	}
}

func binomialBcastFinal(_, iters int) int64 {
	var total int64
	for n := 0; n < iters; n++ {
		total += int64(byte(n + 7))
	}
	return total
}

func TestMidCollectiveFailureRecovery(t *testing.T) {
	const (
		ranks  = 6
		iters  = 8
		victim = 2
	)
	families := []collFamily{
		{
			name:  "ring-allreduce",
			pin:   func(c *Config) { c.Collectives.Allreduce = "ring" },
			app:   ringAllreduceApp,
			final: ringAllreduceFinal,
		},
		{
			name:  "bruck-alltoall",
			pin:   func(c *Config) { c.Collectives.Alltoall = "bruck" },
			app:   bruckAlltoallApp,
			final: bruckAlltoallFinal,
		},
		{
			name:  "binomial-bcast",
			pin:   func(c *Config) { c.Collectives.Bcast = "binomial" },
			app:   binomialBcastApp,
			final: binomialBcastFinal,
		},
	}
	transports := []struct {
		name string
		kind TransportKind
	}{
		{"chan", ChanTransport},
		{"tcp", TCPTransport},
	}
	for _, fam := range families {
		for _, tp := range transports {
			for _, recovery := range []string{"global", "local", "replica"} {
				t.Run(fmt.Sprintf("%s/%s/%s", fam.name, tp.name, recovery), func(t *testing.T) {
					var results sync.Map
					cfg := fastCfg(ranks, 1, 1, 2)
					cfg.Transport = tp.kind
					cfg.Recovery = recovery
					fam.pin(&cfg)
					cfg.Faults = &FaultPlan{Script: []Fault{{AfterLoop: 4, Node: -1, Rank: victim}}}
					rep, err := Run(cfg, fam.app(iters, &results))
					if err != nil {
						t.Fatalf("Run: %v", err)
					}
					if recovery == "replica" {
						// A primary kill is masked by shadow promotion:
						// the job completes with zero recovery epochs.
						if rep.FailuresInjected == 0 {
							t.Fatal("the fault never fired")
						}
						if rep.Recoveries != 0 {
							t.Fatalf("Recoveries = %d, want 0 (promotion must mask the kill)", rep.Recoveries)
						}
					} else if rep.Recoveries == 0 {
						t.Fatal("no recovery recorded: the fault never fired")
					}
					want := fam.final(ranks, iters)
					count := 0
					results.Range(func(k, v any) bool {
						count++
						if v.(int64) != want {
							t.Errorf("rank %v: %d, want %d", k, v, want)
						}
						return true
					})
					if count != ranks {
						t.Fatalf("results = %d, want %d", count, ranks)
					}
				})
			}
		}
	}
}

// TestMidCollectiveReplicaKillMatrix pins the replica protocol's three
// mid-collective failure scopes on both transports: a primary kill and
// a shadow kill are masked (zero recovery epochs), while killing a
// rank's primary AND shadow in one correlated event is unmaskable —
// the job degrades to rollback recovery and still finishes exact.
func TestMidCollectiveReplicaKillMatrix(t *testing.T) {
	const (
		ranks  = 6
		iters  = 8
		victim = 2
	)
	kills := []struct {
		name   string
		fault  Fault
		masked bool
	}{
		{"kill-primary", Fault{AfterLoop: 4, Node: -1, Rank: victim}, true},
		{"kill-shadow", Fault{AfterLoop: 4, Node: -1, Rank: victim, Shadow: true}, true},
		{"kill-pair", Fault{AfterLoop: 4, Node: -1, Rank: victim, Pair: true}, false},
	}
	transports := []struct {
		name string
		kind TransportKind
	}{
		{"chan", ChanTransport},
		{"tcp", TCPTransport},
	}
	for _, tp := range transports {
		for _, kill := range kills {
			t.Run(fmt.Sprintf("%s/%s", tp.name, kill.name), func(t *testing.T) {
				var results sync.Map
				cfg := fastCfg(ranks, 1, 2, 2)
				cfg.Transport = tp.kind
				cfg.Recovery = "replica"
				cfg.Collectives.Allreduce = "ring"
				cfg.Faults = &FaultPlan{Script: []Fault{kill.fault}}
				rep, err := Run(cfg, ringAllreduceApp(iters, &results))
				if err != nil {
					t.Fatalf("Run: %v", err)
				}
				if rep.FailuresInjected == 0 {
					t.Fatal("the fault never fired")
				}
				if kill.masked && rep.Recoveries != 0 {
					t.Fatalf("Recoveries = %d, want 0 (%s must be masked)", rep.Recoveries, kill.name)
				}
				if !kill.masked && rep.Recoveries == 0 {
					t.Fatal("pair loss completed without any recovery epoch: the degrade path never ran")
				}
				want := ringAllreduceFinal(ranks, iters)
				count := 0
				results.Range(func(k, v any) bool {
					count++
					if v.(int64) != want {
						t.Errorf("rank %v: %d, want %d", k, v, want)
					}
					return true
				})
				if count != ranks {
					t.Fatalf("results = %d, want %d", count, ranks)
				}
			})
		}
	}
}
