package fmi

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// Ring fast-path acceptance tests (ISSUE 10 satellite): the intra-node
// SPSC rings and send-side coalescing are pure transport optimizations,
// so (1) switching them on or off must not change a single byte of any
// rank's final state, with or without an injected failure, and (2) a
// rank killed mid-collective while its peers are exchanging over rings
// must recover exactly like the channel path does. ProcsPerNode is 2
// throughout so neighbouring ranks co-locate and the ring path actually
// engages (ppn=1 would silently test the channel path only).

// transportModeConfigs enumerates the ring/coalescing ablation matrix.
func transportModeConfigs() []struct {
	name string
	pin  func(*Config)
}{
	return []struct {
		name string
		pin  func(*Config)
	}{
		{"rings+coalesce", func(*Config) {}},
		{"rings-only", func(c *Config) { c.NoSendCoalescing = true }},
		{"no-rings", func(c *Config) { c.NoTransportRings = true }},
		{"neither", func(c *Config) { c.NoTransportRings = true; c.NoSendCoalescing = true }},
	}
}

// TestTransportModesByteIdentical runs the pooling parity workload —
// p2p sendrecv, packed collectives, checkpoints — across the full
// ring/coalescing matrix and requires byte-identical per-rank state.
// The fault=true arm additionally kills a rank mid-run, so recovery
// replay and ring teardown/rebuild are covered by the same identity.
func TestTransportModesByteIdentical(t *testing.T) {
	for _, fault := range []bool{false, true} {
		fault := fault
		t.Run(fmt.Sprintf("fault=%v", fault), func(t *testing.T) {
			var want map[int][]byte
			for _, mode := range transportModeConfigs() {
				cfg := fastCfg(8, 2, 1, 2)
				mode.pin(&cfg)
				if fault {
					cfg.Faults = &FaultPlan{Script: []Fault{{AfterLoop: 3, Node: -1, Rank: 5}}}
				}
				var results sync.Map
				if _, err := Run(cfg, poolParityApp(7, &results)); err != nil {
					t.Fatalf("%s: Run: %v", mode.name, err)
				}
				got := map[int][]byte{}
				results.Range(func(k, v any) bool {
					got[k.(int)] = v.([]byte)
					return true
				})
				if len(got) != 8 {
					t.Fatalf("%s: %d results, want 8", mode.name, len(got))
				}
				if want == nil {
					want = got
					continue
				}
				for r, w := range want {
					if !bytes.Equal(got[r], w) {
						t.Errorf("%s: rank %d state %x, want %x", mode.name, r, got[r], w)
					}
				}
			}
		})
	}
}

// TestMidCollectiveKillOnRingPath kills a rank while a forced-ring
// allreduce is in flight between co-located pairs, under both recovery
// modes. The debug arena makes the run double as a leak check: a ring
// slot orphaned by the victim's poison-drain, or a coalesced batch
// dropped mid-unpack, would surface as a Run error from the arena
// audit. The surviving ranks must converge to the exact answer.
func TestMidCollectiveKillOnRingPath(t *testing.T) {
	const ranks, iters = 8, 9
	for _, recovery := range []string{"global", "local"} {
		recovery := recovery
		t.Run(recovery, func(t *testing.T) {
			cfg := fastCfg(ranks, 2, 1, 2)
			cfg.Recovery = recovery
			cfg.Pooling = PoolingDebug
			cfg.Collectives.Allreduce = "ring" // pin the ring schedule: long-lived pairwise traffic
			cfg.Faults = &FaultPlan{Script: []Fault{{AfterLoop: 4, Node: -1, Rank: 3}}}
			var results sync.Map
			rep, err := Run(cfg, ringAllreduceApp(iters, &results))
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if rep.Recoveries == 0 {
				t.Fatal("no recovery happened")
			}
			want := ringAllreduceFinal(ranks, iters)
			n := 0
			results.Range(func(k, v any) bool {
				n++
				if v.(int64) != want {
					t.Errorf("rank %v: %d, want %d", k, v, want)
				}
				return true
			})
			if n != ranks {
				t.Fatalf("%d results, want %d", n, ranks)
			}
		})
	}
}
