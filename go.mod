module fmi

go 1.22
