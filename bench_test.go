// Benchmarks regenerating each table and figure of the paper's
// evaluation at laptop scale. One benchmark per exhibit; `go test
// -bench .` prints custom metrics matching the paper's units. For the
// full sweeps (all x-axis points, bigger sizes) use cmd/fmibench and
// cmd/fmimodel, which share the same implementations.
package fmi_test

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"fmi"
	"fmi/internal/experiments"
	"fmi/internal/failmodel"
	"fmi/internal/model"
	"fmi/internal/transport"
)

// --- Table I / Fig 1 / Table II: failure statistics and machine data.

func BenchmarkTable1FailureTypes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		types := failmodel.TSUBAME2Types()
		_ = failmodel.SingleNodeFraction(types)
		_ = failmodel.SystemMTBF(types)
	}
	b.ReportMetric(100*failmodel.SingleNodeFraction(failmodel.TSUBAME2Types()), "single-node-%")
}

func BenchmarkFig1FailureBreakdown(b *testing.B) {
	var sum float64
	for i := 0; i < b.N; i++ {
		sum = 0
		for _, c := range failmodel.TSUBAME2Components() {
			sum += c.RatePerSecE6
		}
	}
	b.ReportMetric(sum, "total-failures-per-sec-e6")
}

func BenchmarkTable2SierraModel(b *testing.B) {
	var ct float64
	for i := 0; i < b.N; i++ {
		s := model.Sierra()
		ct = model.XORCheckpointTime(6e9, 16, s.MemBW, s.NetBW)
	}
	b.ReportMetric(ct, "model-ckpt-sec-6GB-g16")
}

// --- Table III: ping-pong latency/bandwidth, FMI vs MPI baseline.

func BenchmarkTable3PingPongFMI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		row, err := experiments.PingPongFMI(transport.NewChanNetwork(transport.Options{}), "chan")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(row.LatencyUsec, "latency-usec")
		b.ReportMetric(row.BandwidthGBps, "bandwidth-GB/s")
	}
}

func BenchmarkTable3PingPongMPI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		row, err := experiments.PingPongMPI(transport.NewChanNetwork(transport.Options{}), "chan")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(row.LatencyUsec, "latency-usec")
		b.ReportMetric(row.BandwidthGBps, "bandwidth-GB/s")
	}
}

// --- Figs 10/11: XOR checkpoint/restart vs group size.

func BenchmarkFig10XORCheckpoint(b *testing.B) {
	const bytesPerRank = 4 << 20
	var last experiments.XORPoint
	for i := 0; i < b.N; i++ {
		rows, err := experiments.XORGroupSweep([]int{16}, bytesPerRank)
		if err != nil {
			b.Fatal(err)
		}
		last = rows[0]
	}
	b.ReportMetric(last.CheckpointTotal*1e3, "ckpt-ms-g16")
	b.ReportMetric(last.ModelCkptSierra, "model-sec-6GB")
}

func BenchmarkFig11XORRestart(b *testing.B) {
	const bytesPerRank = 4 << 20
	var last experiments.XORPoint
	for i := 0; i < b.N; i++ {
		rows, err := experiments.XORGroupSweep([]int{16}, bytesPerRank)
		if err != nil {
			b.Fatal(err)
		}
		last = rows[0]
	}
	b.ReportMetric(last.RestartTotal*1e3, "restart-ms-g16")
	b.ReportMetric(last.ModelRestSierra, "model-sec-6GB")
}

// --- Fig 12: C/R throughput vs process count.

func BenchmarkFig12CRThroughput(b *testing.B) {
	var last experiments.ThroughputPoint
	for i := 0; i < b.N; i++ {
		rows, err := experiments.CRThroughputSweep([]int{96}, 16, 1<<20)
		if err != nil {
			b.Fatal(err)
		}
		last = rows[0]
	}
	b.ReportMetric(last.CkptGBps, "ckpt-GB/s")
	b.ReportMetric(last.RestartGBps, "restart-GB/s")
}

// --- Fig 13: log-ring failure notification.

func BenchmarkFig13Notification(b *testing.B) {
	var last experiments.NotifyPoint
	for i := 0; i < b.N; i++ {
		rows, err := experiments.NotifySweep([]int{96}, 2, 5*time.Millisecond, 2*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		last = rows[0]
	}
	b.ReportMetric(last.MaxSeconds*1e3, "notify-ms-96p")
	b.ReportMetric(float64(last.Hops), "hops")
}

// --- Fig 14: FMI_Init vs MPI_Init.

func BenchmarkFig14Init(b *testing.B) {
	var last experiments.InitPoint
	for i := 0; i < b.N; i++ {
		rows, err := experiments.InitSweep([]int{96}, 2)
		if err != nil {
			b.Fatal(err)
		}
		last = rows[0]
	}
	b.ReportMetric((last.TreeSeconds+last.LogRingSeconds)*1e3, "fmi-init-ms-96p")
	b.ReportMetric(last.KVSSeconds*1e3, "mpi-init-ms-96p")
}

// --- Fig 15: the Himeno application study.

func BenchmarkFig15Himeno(b *testing.B) {
	cfg := experiments.Fig15Config{
		Ranks: 4, ProcsPerNode: 1, NX: 66, NY: 64, NZ: 64,
		Iters: 40, MTBF: 200 * time.Millisecond, Spares: 4, Seed: 5,
		DetectDelay: 2 * time.Millisecond, PropDelay: time.Millisecond,
		Timeout:     5 * time.Minute,
		ScriptLoops: []int{12, 27},
	}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig15(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Series {
			case "FMI":
				b.ReportMetric(r.GFLOPS, "FMI-GFLOPS")
			case "FMI + C/R":
				b.ReportMetric(r.GFLOPS, "FMI+CR-GFLOPS")
			case "MPI + C":
				b.ReportMetric(r.GFLOPS, "MPI+C-GFLOPS")
			}
		}
	}
}

// --- Figs 16/17: analytic models.

func BenchmarkFig16Survival(b *testing.B) {
	var w float64
	for i := 0; i < b.N; i++ {
		w, _ = model.Fig16Point(model.Coastal(), 10)
	}
	b.ReportMetric(w, "P24h-FMI-10x")
}

func BenchmarkFig17Multilevel(b *testing.B) {
	cfg := model.DefaultFig17Config()
	var eff float64
	for i := 0; i < b.N; i++ {
		eff = model.Fig17Point(cfg, model.Coastal(), 10e9, 50, true)
	}
	b.ReportMetric(eff, "efficiency-worst-corner")
}

// --- Ablations.

func BenchmarkAblateLogRingBase(b *testing.B) {
	for _, base := range []int{2, 4, 8} {
		b.Run(map[int]string{2: "k2", 4: "k4", 8: "k8"}[base], func(b *testing.B) {
			var last experiments.NotifyPoint
			for i := 0; i < b.N; i++ {
				rows, err := experiments.NotifySweep([]int{96}, base, 2*time.Millisecond, time.Millisecond)
				if err != nil {
					b.Fatal(err)
				}
				last = rows[0]
			}
			b.ReportMetric(last.MaxSeconds*1e3, "notify-ms")
			b.ReportMetric(float64(last.Hops), "hops")
		})
	}
}

// --- End-to-end: the survivable runtime under failures (the paper's
// headline behaviour as a benchmark).

func BenchmarkRunThroughFailure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var results sync.Map
		cfg := fmi.Config{
			Ranks: 4, ProcsPerNode: 1, SpareNodes: 1, CheckpointInterval: 2,
			XORGroupSize: 4, DetectDelay: 2 * time.Millisecond, PropDelay: time.Millisecond,
			Timeout: time.Minute,
			Faults:  &fmi.FaultPlan{Script: []fmi.Fault{{AfterLoop: 5, Node: -1, Rank: 1}}},
		}
		_, err := fmi.Run(cfg, func(env *fmi.Env) error {
			state := make([]byte, 8)
			for {
				n := env.Loop(state)
				if n >= 10 {
					break
				}
				if _, err := fmi.AllreduceInt64(env.World(), fmi.SumInt64(), int64(n)); err != nil {
					continue
				}
				binary.LittleEndian.PutUint64(state, uint64(n+1))
			}
			results.Store(env.Rank(), true)
			return env.Finalize()
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- Collective schedules (ISSUE 3): op × algorithm × size × ranks.
// Each iteration runs a full job that times the forced algorithm on
// the free (zero-latency) substrate; the reported metric is the mean
// per-operation latency. fmibench coll runs the same cells with a
// simulated wire latency, where round counts dominate instead of
// per-message CPU.

func BenchmarkCollectives(b *testing.B) {
	cells := []struct {
		op, algo     string
		ranks, bytes int
	}{
		{"allreduce", "tree", 8, 1 << 10},
		{"allreduce", "rec-dbl", 8, 1 << 10},
		{"allreduce", "rec-dbl", 16, 1 << 10},
		{"allreduce", "ring", 8, 256 << 10},
		{"allreduce", "ring", 16, 256 << 10},
		{"allgather", "rec-dbl", 8, 8 << 10},
		{"allgather", "ring", 8, 8 << 10},
		{"alltoall", "bruck", 8, 1 << 10},
		{"alltoall", "pairwise", 8, 64 << 10},
		{"bcast", "binomial", 8, 64 << 10},
		{"barrier", "rec-dbl", 16, 0},
	}
	for _, c := range cells {
		b.Run(fmt.Sprintf("%s-%s-n%d-%dB", c.op, c.algo, c.ranks, c.bytes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				per, err := experiments.MeasureColl(c.op, c.algo, c.ranks, c.bytes, 4, 0)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(per.Nanoseconds())/1e3, "per-op-us")
			}
		})
	}
}
