// Package fmi is a Go implementation of FMI — the Fault Tolerant
// Messaging Interface of Sato et al. (IPDPS 2014): a survivable
// MPI-like messaging runtime coupled with fast in-memory XOR-encoded
// checkpoint/restart, scalable failure detection over a log-ring
// overlay network, and dynamic spare-node allocation.
//
// Applications are written with MPI-style semantics against an Env and
// run *through* failures: the runtime detects a failed node, allocates
// a spare, respawns the lost ranks, transparently rebuilds
// communicators, rolls every rank back to the last in-memory
// checkpoint, and continues.
//
// The minimal fault-tolerant program mirrors the paper's Fig 3:
//
//	fmi.Run(cfg, func(env *fmi.Env) error {
//	    state := make([]byte, stateSize)
//	    for {
//	        n := env.Loop(state)     // checkpoint / rollback point
//	        if n >= numLoop {
//	            break
//	        }
//	        // ... one iteration using env.World() collectives/p2p;
//	        // on a communication error, just continue to Loop.
//	    }
//	    return env.Finalize()
//	})
//
// The runtime executes ranks as goroutine "processes" on a simulated
// cluster substrate (see DESIGN.md for the substitution table mapping
// each piece to the paper's hardware testbed).
package fmi

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"fmi/internal/bufpool"
	"fmi/internal/cluster"
	"fmi/internal/coll"
	"fmi/internal/core"
	"fmi/internal/replica"
	"fmi/internal/runtime"
	"fmi/internal/trace"
	"fmi/internal/transport"
	"fmi/internal/view"
)

// Comm is an FMI communicator; see the core package for its methods
// (Send, Recv, Sendrecv, Isend/Irecv, Barrier, Bcast, Reduce,
// Allreduce, Gather, Allgather, Scatter, Alltoall, Dup, Split).
type Comm = core.Comm

// Request is a pending nonblocking operation.
type Request = core.Request

// Op combines two equal-length byte buffers element-wise in a
// reduction.
type Op = core.Op

// Stats is a snapshot of runtime statistics aggregated across all
// ranks.
type Stats = core.StatsSnapshot

// TraceEvent is one entry of a run's recovery timeline (enable with
// Config.TraceTo or inspect Report.Timeline).
type TraceEvent = trace.Event

// Store is the ReStore-style in-memory replicated object store
// (paper's replication subsystem): Submit publishes an object with
// copies on distinct healthy nodes, Load retrieves it while any copy
// survives, and Rebuild re-replicates degraded objects after node
// failures. Ranks reach the job's store via Env.Store.
type Store = replica.Store

// AnySource matches any sender in Recv.
const AnySource = core.AnySource

// Errors surfaced to applications.
var (
	// ErrFailureDetected is returned by communication calls between a
	// failure notification and the recovery performed by Loop.
	ErrFailureDetected = core.ErrFailureDetected
	// ErrUnrecoverable reports damage beyond level-1 checkpointing
	// (e.g. two nodes of one XOR group lost at once).
	ErrUnrecoverable = core.ErrUnrecoverable
)

// TransportKind selects the communication substrate.
type TransportKind int

const (
	// ChanTransport is the in-process channel network (default): the
	// low-latency path standing in for InfiniBand verbs.
	ChanTransport TransportKind = iota
	// TCPTransport runs every endpoint on a real loopback TCP socket.
	TCPTransport
)

// PoolingMode controls the shared buffer arena that backs the
// transport frames, collective packing, and checkpoint capture/parity
// buffers. The zero value enables pooling, so existing configurations
// pick up the zero-allocation hot paths without changes.
type PoolingMode int

const (
	// PoolingOn (the default) threads one size-classed arena through
	// the transport, collective, and checkpoint hot paths; steady-state
	// traffic recycles buffers instead of allocating.
	PoolingOn PoolingMode = iota
	// PoolingOff disables the arena: every hot path falls back to plain
	// allocation. Contents are byte-identical to PoolingOn — the mode
	// only changes where buffers come from.
	PoolingOff
	// PoolingDebug uses the leak-checkable arena: every Get records its
	// call site, double releases panic, and outstanding buffers can be
	// audited. Slower; for tests and debugging only.
	PoolingDebug
)

// Fault is one scripted failure. The zero AfterLoop value of 0 fires
// on the first completed loop; set AfterLoop to -1 to use the time
// trigger instead.
type Fault struct {
	After     time.Duration // fire this long after launch (AfterLoop must be -1)
	AfterLoop int           // fire once any rank completes this loop id
	Rank      int           // target the node hosting this rank (when Node < 0)
	Node      int           // explicit node id target; -1 targets via Rank
	ProcOnly  bool          // kill a single process; its siblings follow (§IV-B)
	// CorrelatedNodes / CorrelatedRanks extend the kill to further
	// nodes in the same event — a correlated failure (shared PSU, rack
	// switch) that can take several members of one checkpoint group
	// down at once. Surviving such an event requires Redundancy >= the
	// number of group members lost.
	CorrelatedNodes []int
	CorrelatedRanks []int
	// Shadow retargets a rank-targeted fault at the node hosting Rank's
	// shadow copy (Recovery "replica" only); Pair kills the rank's
	// primary and shadow nodes in one correlated event — the unmaskable
	// case that degrades the job to rollback recovery.
	Shadow bool
	Pair   bool
}

// FaultPlan configures failure injection for a run.
type FaultPlan struct {
	// MTBF enables Poisson node failures with this mean time between
	// failures (the paper's §VI-B experiment uses one minute).
	MTBF time.Duration
	// MaxFailures bounds the number of injected failures (0 = no
	// Poisson bound; scripted faults always fire).
	MaxFailures int
	// Script lists deterministic faults.
	Script []Fault
	// Blast widens every Poisson failure to this many adjacent nodes
	// killed in one correlated event (0 or 1 = single-node kills).
	Blast int
	// Seed makes Poisson injection reproducible.
	Seed int64
}

// Config configures an FMI job.
type Config struct {
	// Ranks is the world size (constant across failures).
	Ranks int
	// ProcsPerNode places this many consecutive ranks per node
	// (paper's Sierra runs use 12).
	ProcsPerNode int
	// SpareNodes reserves nodes for fault tolerance; when exhausted
	// the resource manager provisions more after ProvisionDelay.
	SpareNodes int
	// ProvisionDelay models waiting on the resource manager when the
	// spare pool is dry.
	ProvisionDelay time.Duration
	// CheckpointInterval checkpoints every n-th loop; 0 enables
	// Vaidya auto-tuning from MTBF (which then must be set).
	CheckpointInterval int
	// MTBF is the failure rate assumption used for auto-tuning.
	MTBF time.Duration
	// XORGroupSize is the encoding group size (paper default 16).
	XORGroupSize int
	// Redundancy selects how many parity shards each group member
	// stores (m). 0 or 1 keeps the paper's ring-XOR encoding, which
	// tolerates one lost member per group; m >= 2 switches the group
	// to systematic Reed-Solomon RS(k,m) over GF(2^8), tolerating m
	// simultaneous member losses at a storage overhead of m/(G-m) per
	// checkpoint (G = group size).
	Redundancy int
	// Level2Every enables multilevel C/R (paper §VIII future work):
	// every Level2Every-th checkpoint is additionally flushed to a
	// simulated parallel file system, and recovery falls back to it
	// when a failure exceeds the XOR groups (e.g. two nodes of one
	// group lost at once). 0 disables level 2.
	Level2Every int
	// LogRingBase is the log-ring base k (paper default 2).
	LogRingBase int
	// Recovery selects the recovery protocol. "global" (the default,
	// also selected by "") is the paper's coordinated rollback: every
	// rank restores the last checkpoint after a failure. "local"
	// enables sender-based message logging with localized recovery:
	// survivors keep their state and pause only for the membership
	// fence while respawned ranks re-execute from the checkpoint with
	// their receives replayed from the survivors' logs. "replica" runs
	// every rank as a primary/shadow pair on distinct nodes with all
	// sends mirrored to both copies: a primary loss is masked by
	// promoting the shadow in place — no rollback, no replay — and a
	// fresh shadow is provisioned from a spare in the background. It
	// doubles the node count and requires an explicit
	// CheckpointInterval and ProcsPerNode <= 1.
	Recovery string
	// Transport selects the substrate.
	Transport TransportKind
	// DetectDelay models how long peers take to observe a process
	// death on monitored connections (ibverbs showed ~0.2 s; tests
	// and examples usually shrink it).
	DetectDelay time.Duration
	// PropDelay models observation of an explicit connection close
	// (log-ring propagation hop).
	PropDelay time.Duration
	// NetDelay is a simulated one-way per-message delivery latency on
	// the chan transport (0 = instant, the default). The in-process
	// substrate otherwise delivers for free, which hides the round-count
	// differences the collective algorithms trade on; benchmarks set
	// this to model an interconnect's latency term. Ignored by the TCP
	// transport, which has real latency.
	NetDelay time.Duration
	// Faults optionally injects failures.
	Faults *FaultPlan
	// Timeout aborts a wedged run (0 = none).
	Timeout time.Duration
	// MaxEpochs bounds recovery rounds (safety valve, default 1024).
	MaxEpochs int
	// TraceTo, when non-nil, receives a printed timeline of the run's
	// lifecycle events (failures, epochs, H1/H2/H3 transitions,
	// checkpoints, rollbacks) after completion. The raw events are
	// also returned in Report.Timeline.
	TraceTo io.Writer
	// TraceJSONTo, when non-nil, receives the same timeline as JSON
	// Lines — one event object per line, timestamps relative to run
	// start — for machine consumption (fmirun -trace-json).
	TraceJSONTo io.Writer
	// Collectives overrides collective algorithm selection. The zero
	// value selects automatically by payload size and communicator
	// size; each selection is surfaced in the trace as a coll-algo
	// event.
	Collectives CollectivesConfig
	// Pooling selects the buffer-arena mode for the hot paths (message
	// frames, collective packing, checkpoint capture and parity). The
	// zero value enables pooling; PoolingOff reverts to per-operation
	// allocation, and PoolingDebug arms the leak checker.
	Pooling PoolingMode
	// NoTransportRings disables the intra-node per-pair SPSC ring fast
	// path on the chan transport: co-located ranks fall back to the
	// channel delivery path. The rings are semantically transparent —
	// this knob exists for ablation benchmarks and byte-identity tests.
	NoTransportRings bool
	// NoSendCoalescing disables send-side small-frame batching on both
	// transports (ring pend coalescing and the TCP writer's burst
	// batching). Like NoTransportRings it is an ablation knob; batching
	// never reorders or drops frames.
	NoSendCoalescing bool
	// Elastic permits online grow/shrink reconfiguration: Env.Resize
	// (and the job service's resize endpoint) change the world size
	// between loop iterations without restarting the job. Survivors
	// keep their live state, joiners enter the application at the fence
	// iteration, retiring ranks hand their checkpoint shards and store
	// objects to the remaining members, and the replicated store
	// rebalances to the new membership. When false (the default),
	// resize requests are rejected.
	Elastic bool
}

// CollectivesConfig pins collective algorithms per operation. Empty
// (or "auto") fields keep the built-in policy: binomial trees for
// bcast/reduce, dissemination for barrier, recursive doubling for
// small allreduces and power-of-two allgathers, ring
// reduce-scatter+allgather for large allreduces and non-power-of-two
// allgathers, Bruck for small alltoalls and pairwise for large ones,
// and linear/binomial gather/scatter by communicator size.
//
// Valid names per op: Bcast/Reduce "binomial"; Barrier "binomial",
// "rec-dbl"; Allreduce "tree" (reduce+bcast), "rec-dbl", "ring";
// Allgather "rec-dbl", "ring"; Alltoall "bruck", "pairwise";
// Gather/Scatter "linear", "binomial".
type CollectivesConfig struct {
	Bcast, Reduce, Barrier, Allreduce, Allgather, Alltoall, Gather, Scatter string
	// RingBytes is the allreduce payload size (bytes) at which the
	// automatic policy switches from recursive doubling to the ring
	// (default 64 KiB). BruckBytes is the per-destination alltoall
	// part size below which Bruck is preferred (default 1 KiB).
	RingBytes, BruckBytes int
}

// policy validates the configured names and builds the internal
// selection policy.
func (c CollectivesConfig) policy() (coll.Policy, error) {
	p := coll.Policy{RingBytes: c.RingBytes, BruckBytes: c.BruckBytes}
	var err error
	for _, f := range []struct {
		op   coll.Opcode
		name string
		dst  *coll.Algo
	}{
		{coll.OpBcast, c.Bcast, &p.Bcast},
		{coll.OpReduce, c.Reduce, &p.Reduce},
		{coll.OpBarrier, c.Barrier, &p.Barrier},
		{coll.OpAllreduce, c.Allreduce, &p.Allreduce},
		{coll.OpAllgather, c.Allgather, &p.Allgather},
		{coll.OpAlltoall, c.Alltoall, &p.Alltoall},
		{coll.OpGather, c.Gather, &p.Gather},
		{coll.OpScatter, c.Scatter, &p.Scatter},
	} {
		if *f.dst, err = coll.ParseAlgo(f.op, f.name); err != nil {
			return p, fmt.Errorf("fmi: Config.Collectives: %w", err)
		}
	}
	return p, nil
}

// Report summarises a run.
type Report struct {
	// Stats aggregates checkpoint/restore/recovery measurements.
	Stats Stats
	// Recoveries is the number of recovery epochs performed.
	Recoveries int
	// SparesConsumed counts replacement nodes allocated.
	SparesConsumed int
	// WallTime is the job duration.
	WallTime time.Duration
	// MaxLoopID is the highest loop id any rank reported.
	MaxLoopID int
	// FailuresInjected counts faults actually fired.
	FailuresInjected int
	// Timeline holds the recorded lifecycle events when tracing was
	// enabled via Config.TraceTo.
	Timeline []TraceEvent
}

// Env is a rank's handle to the FMI runtime (the paper's FMI_* calls).
type Env struct {
	p     *core.Proc
	store *Store
}

// Store returns the job-wide replicated in-memory object store. Every
// rank sees the same store; objects survive node failures as long as
// at least one of their copies does (pruning and re-replication happen
// automatically when a holder node dies).
func (e *Env) Store() *Store { return e.store }

// Rank returns the calling process's FMI (virtual) rank.
func (e *Env) Rank() int { return e.p.Rank() }

// Size returns the world size.
func (e *Env) Size() int { return e.p.Size() }

// World returns the world communicator (FMI_COMM_WORLD).
func (e *Env) World() *Comm { return e.p.World() }

// Loop is FMI_Loop: it registers the checkpoint segments, writes an
// in-memory XOR-encoded checkpoint at the configured interval, and on
// failure recovers the job and rolls the segments back, returning the
// loop id of the restored checkpoint. Call it at the top of the
// application's main loop with the same segments every time.
func (e *Env) Loop(segments ...[]byte) int { return e.p.Loop(segments) }

// Finalize leaves the job cleanly (collective).
func (e *Env) Finalize() error { return e.p.Finalize() }

// Epoch returns the current recovery epoch (0 before any failure).
func (e *Env) Epoch() uint32 { return e.p.Epoch() }

// FailureDetected reports whether a failure notification is pending
// (communication calls will fail until the next Loop call).
func (e *Env) FailureDetected() bool { return e.p.FailureDetected() }

// CheckpointInterval returns the interval currently in effect (it may
// have been re-tuned from the MTBF).
func (e *Env) CheckpointInterval() int { return e.p.Interval() }

// Resize requests an online grow or shrink to n ranks (Config.Elastic
// jobs only). It is asynchronous and non-collective: any rank may call
// it, it returns once the request is armed, and the new membership
// commits at an upcoming Loop fence — after which Size() reports n,
// survivors continue without rolling back, joiners enter the
// application at the fence iteration, and retired ranks' state has
// been migrated to the remaining members.
func (e *Env) Resize(n int) error { return e.p.RequestResize(n) }

// ViewVersion returns the version of the membership view currently in
// effect: 0 at launch, incremented by every committed resize. Pair it
// with Size() to detect that a Loop call crossed a grow/shrink fence.
func (e *Env) ViewVersion() uint64 { return e.p.ViewVersion() }

// App is the application body run by every rank.
type App func(env *Env) error

// Run launches the application on a simulated cluster under the FMI
// runtime and blocks until every rank finishes or the job aborts.
func Run(cfg Config, app App) (*Report, error) {
	switch cfg.Recovery {
	case "", "global", "local", "replica":
	default:
		return nil, fmt.Errorf("fmi: unknown Recovery %q (want \"global\", \"local\", or \"replica\")", cfg.Recovery)
	}
	collPolicy, err := cfg.Collectives.policy()
	if err != nil {
		return nil, err
	}
	// One arena serves the whole job: transport frames released by a
	// receiving rank's runtime return to the pool the sending endpoint
	// draws from.
	var pool *bufpool.Arena
	switch cfg.Pooling {
	case PoolingOff:
	case PoolingDebug:
		pool = bufpool.NewDebug()
	default:
		pool = bufpool.New()
	}
	var nw transport.Network
	opts := transport.Options{
		DetectDelay:     cfg.DetectDelay,
		PropDelay:       cfg.PropDelay,
		MsgDelay:        cfg.NetDelay,
		Pool:            pool,
		DisableRings:    cfg.NoTransportRings,
		DisableCoalesce: cfg.NoSendCoalescing,
		Endpoints:       cfg.Ranks,
	}
	if opts.DetectDelay == 0 {
		opts.DetectDelay = 200 * time.Millisecond // ibverbs-observed default (§VI-A)
	}
	if opts.PropDelay == 0 {
		opts.PropDelay = 20 * time.Millisecond
	}
	switch cfg.Transport {
	case TCPTransport:
		nw = transport.NewTCPNetwork(opts)
	default:
		nw = transport.NewChanNetwork(opts)
	}

	ppn := cfg.ProcsPerNode
	if ppn <= 0 {
		ppn = 1
	}
	nodes := (cfg.Ranks + ppn - 1) / ppn
	totalNodes := nodes
	if cfg.Recovery == "replica" {
		totalNodes = 2 * nodes // one shadow node per primary node
	}
	clu := cluster.New(totalNodes + cfg.SpareNodes)

	var rec *trace.Recorder
	if cfg.TraceTo != nil || cfg.TraceJSONTo != nil {
		rec = trace.New()
	}
	rcfg := runtime.Config{
		Trace:          rec,
		Ranks:          cfg.Ranks,
		ProcsPerNode:   ppn,
		SpareNodes:     cfg.SpareNodes,
		Interval:       cfg.CheckpointInterval,
		MTBF:           cfg.MTBF,
		GroupSize:      cfg.XORGroupSize,
		RingBase:       cfg.LogRingBase,
		Redundancy:     cfg.Redundancy,
		L2Every:        cfg.Level2Every,
		Network:        nw,
		Cluster:        clu,
		Timeout:        cfg.Timeout,
		MaxEpochs:      cfg.MaxEpochs,
		ProvisionDelay: cfg.ProvisionDelay,
		Recovery:       cfg.Recovery,
		Coll:           collPolicy,
		Pool:           pool,
		Elastic:        cfg.Elastic,
	}

	var inj *cluster.Injector
	var jobRef atomic.Pointer[runtime.Job]
	if cfg.Faults != nil {
		inj = cluster.NewInjector(clu,
			func(rank int) *cluster.Node {
				if j := jobRef.Load(); j != nil {
					return j.NodeOfRank(rank)
				}
				return nil
			},
			func() []*cluster.Node {
				if j := jobRef.Load(); j != nil {
					return j.ActiveNodes()
				}
				return nil
			},
			cfg.Faults.Seed)
		var script []cluster.Fault
		for _, f := range cfg.Faults.Script {
			cf := cluster.Fault{
				After: f.After, AfterLoop: f.AfterLoop, Rank: f.Rank, Node: f.Node, ProcOnly: f.ProcOnly,
				CorrelatedNodes: f.CorrelatedNodes, CorrelatedRanks: f.CorrelatedRanks,
				Shadow: f.Shadow, Pair: f.Pair,
			}
			if f.After > 0 {
				cf.AfterLoop = -1
			}
			script = append(script, cf)
		}
		inj.SetShadowLocator(func(rank int) *cluster.Node {
			if j := jobRef.Load(); j != nil {
				return j.ShadowNodeOfRank(rank)
			}
			return nil
		})
		inj.SetScript(script)
		if cfg.Faults.MTBF > 0 {
			inj.SetPoisson(cfg.Faults.MTBF, cfg.Faults.MaxFailures)
			inj.SetBlast(cfg.Faults.Blast)
		}
		rcfg.OnLoop = inj.OnLoop
	}
	store := replica.NewStore(clu, rec)
	if cfg.Elastic {
		// Elastic jobs shard the store over the membership view: every
		// committed resize re-derives placement, and nodes freed by a
		// shrink evacuate their objects before leaving the job.
		rcfg.OnViewChange = func(v *view.View, freedNodes []int) {
			store.SetView(v)
			if len(freedNodes) > 0 {
				store.Evacuate(freedNodes)
			}
		}
	}
	j, err := runtime.Launch(rcfg, func(p *core.Proc) error {
		return app(&Env{p: p, store: store})
	})
	if err != nil {
		return nil, err
	}
	jobRef.Store(j)
	if cfg.Elastic {
		store.SetView(j.CurrentView())
	}
	if inj != nil {
		inj.Start()
		defer inj.Stop()
	}
	rep, err := j.Wait()
	out := &Report{
		Stats:          rep.Stats,
		Recoveries:     int(rep.Epochs),
		SparesConsumed: rep.SparesConsumed,
		WallTime:       rep.WallTime,
		MaxLoopID:      rep.MaxLoopID,
	}
	if inj != nil {
		out.FailuresInjected = inj.Fired()
	}
	if rec != nil {
		out.Timeline = rec.Events()
		if cfg.TraceTo != nil {
			rec.Dump(cfg.TraceTo)
		}
		if cfg.TraceJSONTo != nil {
			if jerr := rec.WriteJSONL(cfg.TraceJSONTo); jerr != nil && err == nil {
				err = jerr
			}
		}
	}
	return out, err
}
