package fmi

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"

	"fmi/internal/view"
)

// Online reconfiguration tests (ISSUE 8): a running job grows or
// shrinks between loop iterations without restarting. Every iteration
// computes a world checksum that depends on the CURRENT world size, so
// a rank computing with a stale membership, a joiner entering at the
// wrong iteration, or a survivor rolling back across the fence all
// produce a wrong sum. Faults injected around the fence exercise the
// abort/re-arm path and the post-fence dirty window in all three
// recovery modes.

// elasticApp runs iters iterations; at iteration resizeAt rank 0
// requests a resize to target ranks. Each iteration verifies the
// size-dependent allreduce checksum inline (contribution id*1000 +
// rank + 1, so the expected sum is sz*(id*1000) + sz*(sz+1)/2 for the
// world size sz in effect that iteration). Finishing ranks record
// their iteration count and last observed world size.
func elasticApp(iters, resizeAt, target int, results, sizes *sync.Map) App {
	return func(env *Env) error {
		state := make([]byte, 16)
		lastSize := 0
		for {
			n := env.Loop(state)
			if n >= iters {
				break
			}
			if n == resizeAt && env.Rank() == 0 {
				// Re-execution after a rollback may re-request: a second
				// call while the fence is armed (or after it committed,
				// when the target equals the new size) is rejected or a
				// no-op — both harmless.
				_ = env.Resize(target)
			}
			sz := env.Size()
			lastSize = sz
			sum, err := AllreduceInt64(env.World(), SumInt64(), int64(n*1000+env.Rank()+1))
			if err != nil {
				continue // failure detected: back to Loop to recover
			}
			want := int64(sz)*int64(n*1000) + int64(sz)*int64(sz+1)/2
			if sum[0] != want {
				return fmt.Errorf("rank %d iter %d (size %d): sum %d, want %d",
					env.Rank(), n, sz, sum[0], want)
			}
			acc := binary.LittleEndian.Uint64(state[8:]) + 1
			binary.LittleEndian.PutUint64(state[8:], acc)
			binary.LittleEndian.PutUint64(state[0:], uint64(n+1))
		}
		results.Store(env.Rank(), int64(binary.LittleEndian.Uint64(state[8:])))
		sizes.Store(env.Rank(), lastSize)
		return env.Finalize()
	}
}

// checkElastic asserts that exactly the target world finished, every
// finisher saw the final size, and rank 0 (a launch survivor) ran all
// its iterations.
func checkElastic(t *testing.T, target, iters int, results, sizes *sync.Map) {
	t.Helper()
	count := 0
	results.Range(func(k, v any) bool {
		count++
		return true
	})
	if count != target {
		t.Fatalf("finishing ranks = %d, want %d", count, target)
	}
	sizes.Range(func(k, v any) bool {
		if v.(int) != target {
			t.Errorf("rank %v finished at world size %d, want %d", k, v, target)
		}
		return true
	})
	if v, ok := results.Load(0); !ok || v.(int64) != int64(iters) {
		t.Errorf("rank 0 completed %v iterations, want %d", v, iters)
	}
}

func elasticCfg(ranks, spares, interval int) Config {
	cfg := fastCfg(ranks, 1, spares, interval)
	cfg.Elastic = true
	return cfg
}

func TestResizeGrowSmoke(t *testing.T) {
	var results, sizes sync.Map
	rep, err := Run(elasticCfg(4, 4, 2), elasticApp(10, 3, 6, &results, &sizes))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkElastic(t, 6, 10, &results, &sizes)
	if rep.MaxLoopID < 9 {
		t.Errorf("MaxLoopID = %d, want >= 9", rep.MaxLoopID)
	}
}

func TestResizeShrinkSmoke(t *testing.T) {
	var results, sizes sync.Map
	_, err := Run(elasticCfg(6, 2, 2), elasticApp(10, 3, 4, &results, &sizes))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkElastic(t, 4, 10, &results, &sizes)
}

// TestResizeKillMatrix crosses {grow, shrink} x {chan, tcp} x
// {global, local, replica} with a mid-run kill landing near the fence:
// the job must commit the resize, recover the kill, and keep every
// iteration's size-dependent checksum exact.
func TestResizeKillMatrix(t *testing.T) {
	const (
		iters    = 12
		resizeAt = 3
		victim   = 1
	)
	dirs := []struct {
		name          string
		ranks, target int
	}{
		{"grow", 4, 6},
		{"shrink", 6, 4},
	}
	transports := []struct {
		name string
		kind TransportKind
	}{
		{"chan", ChanTransport},
		{"tcp", TCPTransport},
	}
	for _, dir := range dirs {
		for _, tp := range transports {
			for _, recovery := range []string{"global", "local", "replica"} {
				t.Run(fmt.Sprintf("%s/%s/%s", dir.name, tp.name, recovery), func(t *testing.T) {
					var results, sizes sync.Map
					cfg := elasticCfg(dir.ranks, 6, 2)
					cfg.Transport = tp.kind
					cfg.Recovery = recovery
					cfg.Faults = &FaultPlan{Script: []Fault{
						{AfterLoop: 6, Node: -1, Rank: victim},
					}}
					rep, err := Run(cfg, elasticApp(iters, resizeAt, dir.target, &results, &sizes))
					if err != nil {
						t.Fatalf("Run: %v", err)
					}
					if rep.FailuresInjected == 0 {
						t.Fatal("the fault never fired")
					}
					checkElastic(t, dir.target, iters, &results, &sizes)
				})
			}
		}
	}
}

// TestViewVersionProperty drives two resizes (grow then shrink) and
// checks the membership safety properties from inside the application:
// every rank's observed view-version sequence is strictly monotonic
// (+1 steps), a version never maps to two different world sizes, and
// all launch survivors observe the identical sequence.
func TestViewVersionProperty(t *testing.T) {
	const iters = 14
	hist := view.NewHistory()
	var mu sync.Mutex
	seen := map[int]uint64{} // rank -> last observed version
	app := func(env *Env) error {
		state := make([]byte, 16)
		for {
			n := env.Loop(state)
			if n >= iters {
				break
			}
			v, sz := env.ViewVersion(), env.Size()
			mu.Lock()
			last, ok := seen[env.Rank()]
			if !ok || v != last {
				hist.Observe(env.Rank(), v, sz)
				seen[env.Rank()] = v
			}
			mu.Unlock()
			if env.Rank() == 0 {
				if n == 3 {
					_ = env.Resize(6)
				}
				if n == 8 {
					_ = env.Resize(5)
				}
			}
			if _, err := AllreduceInt64(env.World(), SumInt64(), int64(n)); err != nil {
				continue
			}
			binary.LittleEndian.PutUint64(state[0:], uint64(n+1))
		}
		return env.Finalize()
	}
	if _, err := Run(elasticCfg(4, 4, 2), app); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := hist.Validate(); err != nil {
		t.Fatal(err)
	}
	seqs := hist.Sequences()
	// Launch ranks 0..3 survive both resizes and must agree exactly.
	want := fmt.Sprint(seqs[0])
	if len(seqs[0]) != 3 {
		t.Fatalf("rank 0 observed %v, want 3 versions (launch + 2 resizes)", seqs[0])
	}
	for r := 1; r < 4; r++ {
		if fmt.Sprint(seqs[r]) != want {
			t.Fatalf("rank %d observed %v, rank 0 observed %s", r, seqs[r], want)
		}
	}
}

// TestElasticStoreRebalance submits store objects before a shrink and
// verifies they survive the evacuation of the retiring ranks' nodes.
func TestElasticStoreRebalance(t *testing.T) {
	const iters = 10
	var results, sizes sync.Map
	var loadErr error
	var mu sync.Mutex
	app := func(env *Env) error {
		state := make([]byte, 16)
		for {
			n := env.Loop(state)
			if n >= iters {
				break
			}
			if n == 1 {
				key := fmt.Sprintf("obj/%d", env.Rank())
				if err := env.Store().Submit(key, []byte(fmt.Sprintf("payload-%d", env.Rank()))); err != nil {
					return err
				}
			}
			if n == 3 && env.Rank() == 0 {
				_ = env.Resize(4)
			}
			if n == iters-1 {
				// After the shrink: every object must still be loadable,
				// including those submitted by retired ranks.
				for r := 0; r < 6; r++ {
					key := fmt.Sprintf("obj/%d", r)
					data, err := env.Store().Load(key)
					if err != nil || string(data) != fmt.Sprintf("payload-%d", r) {
						mu.Lock()
						loadErr = fmt.Errorf("rank %d: Load(%s) = %q, %v", env.Rank(), key, data, err)
						mu.Unlock()
					}
				}
			}
			if _, err := AllreduceInt64(env.World(), SumInt64(), 1); err != nil {
				continue
			}
			binary.LittleEndian.PutUint64(state[0:], uint64(n+1))
		}
		results.Store(env.Rank(), int64(iters))
		sizes.Store(env.Rank(), env.Size())
		return env.Finalize()
	}
	if _, err := Run(elasticCfg(6, 2, 2), app); err != nil {
		t.Fatalf("Run: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if loadErr != nil {
		t.Fatal(loadErr)
	}
	checkElastic(t, 4, iters, &results, &sizes)
}

// TestResizeRejectedWhenNotElastic pins the gate: a non-elastic job
// rejects Env.Resize.
func TestResizeRejectedWhenNotElastic(t *testing.T) {
	var gotErr error
	app := func(env *Env) error {
		for {
			n := env.Loop()
			if n >= 2 {
				break
			}
			if env.Rank() == 0 && n == 0 {
				gotErr = env.Resize(8)
			}
		}
		return env.Finalize()
	}
	if _, err := Run(fastCfg(4, 1, 0, 2), app); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if gotErr == nil {
		t.Fatal("Resize on a non-elastic job succeeded, want an error")
	}
}
