package fmi_test

import (
	"encoding/binary"
	"fmt"
	"log"
	"time"

	"fmi"
)

// Example demonstrates the paper's Fig 3 programming model: a
// checkpointed loop that survives a node failure injected mid-run.
// The output is identical to a failure-free run.
func Example() {
	cfg := fmi.Config{
		Ranks:              4,
		ProcsPerNode:       1,
		SpareNodes:         1,
		CheckpointInterval: 2,
		XORGroupSize:       4,
		DetectDelay:        5 * time.Millisecond,
		Timeout:            time.Minute,
		Faults:             &fmi.FaultPlan{Script: []fmi.Fault{{AfterLoop: 3, Node: -1, Rank: 2}}},
	}
	_, err := fmi.Run(cfg, func(env *fmi.Env) error {
		state := make([]byte, 8)
		world := env.World()
		for {
			n := env.Loop(state)
			if n >= 6 {
				break
			}
			sum, err := fmi.AllreduceInt64(world, fmi.SumInt64(), int64(env.Rank()+1))
			if err != nil {
				continue // recover at the next Loop call
			}
			binary.LittleEndian.PutUint64(state, uint64(n+1))
			if env.Rank() == 0 && n == 5 {
				fmt.Printf("final allreduce: %d\n", sum[0])
			}
			_ = sum
		}
		return env.Finalize()
	})
	if err != nil {
		log.Fatal(err)
	}
	// Output: final allreduce: 10
}

// ExampleConfig_localRecovery runs the same failure scenario under
// sender-based message logging (Recovery "local"). Survivors never roll
// back — the timeline carries rollback/restore events only for the
// respawned rank, which replays from its peers' sender logs — yet the
// output still matches the failure-free run.
func ExampleConfig_localRecovery() {
	const failedRank = 2
	cfg := fmi.Config{
		Ranks:              4,
		ProcsPerNode:       1,
		SpareNodes:         1,
		CheckpointInterval: 2,
		XORGroupSize:       4,
		Recovery:           "local",
		DetectDelay:        5 * time.Millisecond,
		Timeout:            time.Minute,
		Faults:             &fmi.FaultPlan{Script: []fmi.Fault{{AfterLoop: 3, Node: -1, Rank: failedRank}}},
	}
	rep, err := fmi.Run(cfg, func(env *fmi.Env) error {
		state := make([]byte, 8)
		world := env.World()
		for {
			n := env.Loop(state)
			if n >= 6 {
				break
			}
			sum, err := fmi.AllreduceInt64(world, fmi.SumInt64(), int64(env.Rank()+1))
			if err != nil {
				continue
			}
			binary.LittleEndian.PutUint64(state, uint64(n+1))
			if env.Rank() == 0 && n == 5 {
				fmt.Printf("final allreduce: %d\n", sum[0])
			}
		}
		return env.Finalize()
	})
	if err != nil {
		log.Fatal(err)
	}
	survivorRollbacks := 0
	for _, e := range rep.Timeline {
		switch string(e.Kind) {
		case "rollback", "restore":
			if e.Rank != failedRank {
				survivorRollbacks++
			}
		}
	}
	fmt.Printf("survivor rollbacks: %d\n", survivorRollbacks)
	// Output:
	// final allreduce: 10
	// survivor rollbacks: 0
}
