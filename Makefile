GO ?= go

.PHONY: tier1 build test race vet lint bench-erasure bench-smoke bench-hotpath bench-serve bench-recovery bench-reconfig all

all: tier1 vet lint

# The acceptance gate: everything builds and every test passes.
tier1: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detect the packages with real concurrency.
race:
	$(GO) test -race ./internal/ckpt/ ./internal/erasure/ ./internal/core/ ./internal/runtime/ ./internal/cluster/ ./internal/experiments/ ./internal/transport/ ./internal/msglog/ ./internal/coll/ ./internal/enc/ ./internal/trace/ ./internal/overlay/ ./internal/bufpool/ ./internal/serve/ ./internal/replica/ ./internal/view/ ./internal/lint/cfg/ .

vet:
	$(GO) vet ./...

# Domain-specific static analysis: the fault-tolerance invariants the
# compiler cannot see (see DESIGN.md §3e and §3j). Stdlib-only; exits
# 1 on any unsuppressed finding. The wall-clock line keeps the CFG
# dataflow engine honest about staying in interactive territory.
lint:
	@start=$$(date +%s%N 2>/dev/null || date +%s000000000); \
	$(GO) run ./cmd/fmilint . ; rc=$$?; \
	end=$$(date +%s%N 2>/dev/null || date +%s000000000); \
	echo "fmilint: $$(( (end - start) / 1000000 )) ms"; \
	exit $$rc

bench-erasure:
	$(GO) test -bench Erasure -benchtime 1x ./internal/erasure/ ./internal/ckpt/

# Hot-path allocation benchmark: allocs/op, B/op, ns/op for the pooled
# transport/pack/checkpoint paths vs pooling off, written to
# BENCH_hotpath.json (the checked-in copy documents the win).
bench-hotpath:
	$(GO) run ./cmd/fmibench -out BENCH_hotpath.json hotpath

# Multi-tenant job-service benchmark: per-tenant p50/p99 submit-to-
# complete latency with Poisson kills aimed at the noisy tenants vs a
# failure-free baseline, written to BENCH_serve.json (the checked-in
# copy documents the cross-tenant isolation).
bench-serve:
	$(GO) run ./cmd/fmibench -out BENCH_serve.json serve

# Recovery-frontier benchmark: global rollback vs local replay vs
# primary/shadow replication on one allreduce workload, failure-free
# and with one primary-node kill, written to BENCH_recovery.json (the
# checked-in copy documents replica's no-rollback promotion latency).
bench-recovery:
	$(GO) run ./cmd/fmibench -out BENCH_recovery.json recovery-frontier

# Online-reconfiguration benchmark: grow and shrink an elastic job
# through the quiescent resize fence under all three recovery
# protocols, against the restart floor (a fresh single-iteration job at
# the target size), written to BENCH_reconfig.json (the checked-in copy
# documents resize committing well below even a bare relaunch).
bench-reconfig:
	$(GO) run ./cmd/fmibench -out BENCH_reconfig.json reconfig

# One pass over every benchmark as a smoke test (CI runs this; real
# measurements want more iterations and an idle machine).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x .
