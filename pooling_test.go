package fmi

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"
)

// poolParityApp runs a mixed workload over every hot path the arena
// touches — p2p sendrecv, collectives (packed multi-block steps
// included), and checkpointing — and records each rank's final state
// bytes so modes can be compared byte for byte.
func poolParityApp(iters int, results *sync.Map) App {
	return func(env *Env) error {
		state := make([]byte, 64)
		world := env.World()
		n := env.Size()
		for {
			id := env.Loop(state)
			if id >= iters {
				break
			}
			// p2p ring exchange.
			right := (env.Rank() + 1) % n
			left := (env.Rank() - 1 + n) % n
			out := make([]byte, 8)
			binary.LittleEndian.PutUint64(out, uint64(id*131+env.Rank()))
			got, err := world.Sendrecv(right, 7, out, left, 7)
			if err != nil {
				continue
			}
			// Collectives: allreduce + allgather (ring algo packs slices).
			sum, err := AllreduceInt64(world, SumInt64(), int64(id+env.Rank()))
			if err != nil {
				continue
			}
			parts, err := world.Allgather(got)
			if err != nil {
				continue
			}
			h := uint64(0)
			for _, p := range parts {
				h = h*1099511628211 + binary.LittleEndian.Uint64(p)
			}
			acc := binary.LittleEndian.Uint64(state[0:]) + uint64(sum[0]) + h
			binary.LittleEndian.PutUint64(state[0:], acc)
			binary.LittleEndian.PutUint64(state[8:], uint64(id+1))
		}
		results.Store(env.Rank(), append([]byte(nil), state...))
		return env.Finalize()
	}
}

// TestPoolingModesByteIdentical proves the acceptance property that
// pooling only changes where buffers come from: the same job produces
// byte-identical per-rank final state with the arena on, off, and in
// debug (leak-checking) mode, with and without an injected failure.
func TestPoolingModesByteIdentical(t *testing.T) {
	for _, fault := range []bool{false, true} {
		fault := fault
		t.Run(fmt.Sprintf("fault=%v", fault), func(t *testing.T) {
			var want map[int][]byte
			for _, mode := range []PoolingMode{PoolingOn, PoolingOff, PoolingDebug} {
				cfg := fastCfg(8, 2, 1, 2)
				cfg.Pooling = mode
				if fault {
					cfg.Faults = &FaultPlan{Script: []Fault{{AfterLoop: 3, Node: -1, Rank: 5}}}
				}
				var results sync.Map
				if _, err := Run(cfg, poolParityApp(7, &results)); err != nil {
					t.Fatalf("mode %d: Run: %v", mode, err)
				}
				got := map[int][]byte{}
				results.Range(func(k, v any) bool {
					got[k.(int)] = v.([]byte)
					return true
				})
				if len(got) != 8 {
					t.Fatalf("mode %d: %d results, want 8", mode, len(got))
				}
				if want == nil {
					want = got
					continue
				}
				for r, w := range want {
					if !bytes.Equal(got[r], w) {
						t.Errorf("mode %d: rank %d state %x, want %x", mode, r, got[r], w)
					}
				}
			}
		})
	}
}

// TestPoolingLocalRecovery exercises the arena under the sender-based
// logging protocol (replay, ride-through, re-executed checkpoint
// exchange) — the paths with the trickiest buffer ownership.
func TestPoolingLocalRecovery(t *testing.T) {
	for _, mode := range []PoolingMode{PoolingOn, PoolingDebug} {
		cfg := fastCfg(8, 2, 1, 2)
		cfg.Recovery = "local"
		cfg.Pooling = mode
		cfg.Faults = &FaultPlan{Script: []Fault{{AfterLoop: 4, Node: -1, Rank: 3}}}
		var results sync.Map
		rep, err := Run(cfg, iterApp(10, &results))
		if err != nil {
			t.Fatalf("mode %d: Run: %v", mode, err)
		}
		if rep.Recoveries == 0 {
			t.Fatalf("mode %d: no recovery happened", mode)
		}
		want := expectedIterSum(8, 10)
		results.Range(func(k, v any) bool {
			if v.(int64) != want {
				t.Errorf("mode %d: rank %v: %d, want %d", mode, k, v, want)
			}
			return true
		})
	}
}

// TestPoolingDebugRS runs Reed-Solomon group redundancy under the
// debug arena: the pipelined MulAddRowInto encode and RecoverInto
// reconstruction must balance every chunk they consume.
func TestPoolingDebugRS(t *testing.T) {
	cfg := Config{
		Ranks: 8, ProcsPerNode: 1, SpareNodes: 2,
		CheckpointInterval: 2, XORGroupSize: 4, Redundancy: 2,
		DetectDelay: 2 * time.Millisecond, PropDelay: time.Millisecond,
		Timeout: 60 * time.Second,
		Pooling: PoolingDebug,
		Faults: &FaultPlan{Script: []Fault{
			{AfterLoop: 3, Node: -1, Rank: 1, CorrelatedRanks: []int{5}},
		}},
	}
	var results sync.Map
	rep, err := Run(cfg, iterApp(8, &results))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Recoveries == 0 {
		t.Fatal("no recovery happened")
	}
	want := expectedIterSum(8, 8)
	results.Range(func(k, v any) bool {
		if v.(int64) != want {
			t.Errorf("rank %v: %d, want %d", k, v, want)
		}
		return true
	})
}
