package fmi

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"fmi/internal/trace"
)

// Replica-recovery acceptance tests (ISSUE 7 tentpole): a primary-node
// kill mid-run must complete with ZERO survivor rollback — no restore,
// no replay, no epoch bump — and exactly one shadow promotion.

// countKinds tallies the timeline events by kind.
func countKinds(evs []TraceEvent) map[trace.Kind]int {
	m := make(map[trace.Kind]int)
	for _, e := range evs {
		m[e.Kind]++
	}
	return m
}

func TestReplicaPrimaryKillNoRollback(t *testing.T) {
	const (
		ranks  = 8
		iters  = 8
		victim = 2
	)
	var results sync.Map
	cfg := fastCfg(ranks, 1, 1, 2)
	cfg.Recovery = "replica"
	cfg.TraceTo = io.Discard // populate Report.Timeline
	cfg.Faults = &FaultPlan{Script: []Fault{{AfterLoop: 4, Node: -1, Rank: victim}}}
	rep, err := Run(cfg, iterApp(iters, &results))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.FailuresInjected == 0 {
		t.Fatal("the fault never fired")
	}
	// The whole point: promotion masks the failure. No recovery epoch,
	// no rollback, no replay anywhere in the job.
	if rep.Recoveries != 0 {
		t.Fatalf("Recoveries = %d, want 0 (promotion must not roll back)", rep.Recoveries)
	}
	kinds := countKinds(rep.Timeline)
	for _, k := range []trace.Kind{trace.KindRestore, trace.KindRollback, trace.KindReplayStart, trace.KindReplayDone, trace.KindEpoch, trace.KindRespawn} {
		if n := kinds[k]; n != 0 {
			t.Errorf("%d %q events recorded, want 0", n, k)
		}
	}
	if n := kinds[trace.KindShadowPromote]; n != 1 {
		t.Errorf("%d shadow-promote events, want exactly 1", n)
	}
	want := expectedIterSum(ranks, iters)
	count := 0
	results.Range(func(k, v any) bool {
		count++
		if v.(int64) != want {
			t.Errorf("rank %v: %d, want %d", k, v, want)
		}
		return true
	})
	if count != ranks {
		t.Fatalf("results = %d ranks, want %d", count, ranks)
	}
}

// TestReplicaShadowKillMasked: losing a shadow is invisible to the
// application; a replacement is provisioned in the background.
func TestReplicaShadowKillMasked(t *testing.T) {
	const (
		ranks  = 6
		iters  = 8
		victim = 3
	)
	var results sync.Map
	cfg := fastCfg(ranks, 1, 1, 2)
	cfg.Recovery = "replica"
	cfg.TraceTo = io.Discard
	cfg.Faults = &FaultPlan{Script: []Fault{{AfterLoop: 3, Node: -1, Rank: victim, Shadow: true}}}
	rep, err := Run(cfg, iterApp(iters, &results))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.FailuresInjected == 0 {
		t.Fatal("the fault never fired")
	}
	if rep.Recoveries != 0 {
		t.Fatalf("Recoveries = %d, want 0 (shadow loss must be masked)", rep.Recoveries)
	}
	kinds := countKinds(rep.Timeline)
	if kinds[trace.KindShadowPromote] != 0 {
		t.Errorf("shadow-promote recorded on a shadow-only kill")
	}
	if kinds[trace.KindShadowReprovision] == 0 {
		t.Errorf("no shadow-reprovision event after a shadow loss")
	}
	want := expectedIterSum(ranks, iters)
	count := 0
	results.Range(func(k, v any) bool {
		count++
		if v.(int64) != want {
			t.Errorf("rank %v: %d, want %d", k, v, want)
		}
		return true
	})
	if count != ranks {
		t.Fatalf("results = %d ranks, want %d", count, ranks)
	}
}

// TestRecoveryValidation pins the Config.Recovery contract: all three
// protocols are accepted and the rejection message enumerates them
// (ISSUE 7 satellite).
func TestRecoveryValidation(t *testing.T) {
	valid := []string{"", "global", "local", "replica"}
	for _, r := range valid {
		t.Run(fmt.Sprintf("valid/%q", r), func(t *testing.T) {
			var results sync.Map
			cfg := fastCfg(2, 1, 0, 2)
			cfg.Recovery = r
			if _, err := Run(cfg, iterApp(2, &results)); err != nil {
				t.Fatalf("Recovery %q rejected: %v", r, err)
			}
		})
	}
	invalid := []string{"Global", "GLOBAL", "rollback", "shadow", "replicas", "none", " "}
	for _, r := range invalid {
		t.Run(fmt.Sprintf("invalid/%q", r), func(t *testing.T) {
			cfg := fastCfg(2, 1, 0, 2)
			cfg.Recovery = r
			_, err := Run(cfg, func(env *Env) error { return env.Finalize() })
			if err == nil {
				t.Fatalf("Recovery %q accepted, want error", r)
			}
			for _, proto := range []string{`"global"`, `"local"`, `"replica"`} {
				if !strings.Contains(err.Error(), proto) {
					t.Errorf("error %q does not mention %s", err, proto)
				}
			}
		})
	}
	t.Run("replica-needs-interval", func(t *testing.T) {
		cfg := fastCfg(2, 1, 0, 0)
		cfg.Recovery = "replica"
		cfg.MTBF = 1e9
		if _, err := Run(cfg, func(env *Env) error { return env.Finalize() }); err == nil {
			t.Fatal("replica with auto-tuned interval accepted, want error")
		}
	})
	t.Run("replica-needs-ppn1", func(t *testing.T) {
		cfg := fastCfg(4, 2, 0, 2)
		cfg.Recovery = "replica"
		if _, err := Run(cfg, func(env *Env) error { return env.Finalize() }); err == nil {
			t.Fatal("replica with ProcsPerNode 2 accepted, want error")
		}
	})
}

// TestEnvStore exercises the ReStore-style replicated store through
// the public API: an object submitted by one rank is loadable by all,
// and survives the failure of a holder node.
func TestEnvStore(t *testing.T) {
	const ranks = 4
	var loaded sync.Map
	cfg := fastCfg(ranks, 1, 1, 2)
	cfg.Recovery = "replica"
	rep, err := Run(cfg, func(env *Env) error {
		state := make([]byte, 8)
		for {
			n := env.Loop(state)
			if n >= 4 {
				break
			}
			if n == 1 && env.Rank() == 0 {
				if err := env.Store().Submit("model", []byte("weights-v1")); err != nil {
					return err
				}
			}
			if err := env.World().Barrier(); err != nil {
				continue
			}
			if n == 2 {
				data, err := env.Store().Load("model")
				if err != nil {
					return fmt.Errorf("rank %d: Load: %w", env.Rank(), err)
				}
				loaded.Store(env.Rank(), string(data))
			}
			state[0] = byte(n + 1)
		}
		return env.Finalize()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	_ = rep
	count := 0
	loaded.Range(func(k, v any) bool {
		count++
		if v.(string) != "weights-v1" {
			t.Errorf("rank %v loaded %q", k, v)
		}
		return true
	})
	if count != ranks {
		t.Fatalf("loads = %d, want %d", count, ranks)
	}
}
