// fmimodel regenerates the paper's data tables and analytic-model
// figures: Table I, Fig 1 (TSUBAME2.0 failure statistics), Table II
// (Sierra specification), Fig 16 (24-hour survival probability) and
// Fig 17 (multilevel C/R efficiency).
//
// Usage:
//
//	fmimodel <table1|fig1|table2|fig16|fig17|all>
package main

import (
	"fmt"
	"os"

	"fmi/internal/experiments"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: fmimodel <table1|fig1|table2|fig16|fig17|all>")
		os.Exit(2)
	}
	scales := []float64{1, 2, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50}
	run := func(name string) {
		switch name {
		case "table1":
			experiments.PrintTable1(os.Stdout)
		case "fig1":
			experiments.PrintFig1(os.Stdout)
		case "table2":
			experiments.PrintTable2(os.Stdout)
		case "fig16":
			experiments.PrintFig16(os.Stdout, experiments.Fig16(scales))
		case "fig17":
			experiments.PrintFig17(os.Stdout, experiments.Fig17(scales))
		default:
			fmt.Fprintf(os.Stderr, "fmimodel: unknown output %q\n", name)
			os.Exit(2)
		}
		fmt.Println()
	}
	if os.Args[1] == "all" {
		for _, name := range []string{"table1", "fig1", "table2", "fig16", "fig17"} {
			run(name)
		}
		return
	}
	run(os.Args[1])
}
