// fmirun launches a built-in FMI application on the simulated cluster,
// mirroring the paper's fmirun process manager (Fig 6). It is the
// quickest way to watch the runtime survive failures:
//
//	fmirun -app himeno -ranks 8 -mtbf 2s -failures 3
//
// Applications: counter (a checkpointed counter with an Allreduce per
// iteration), himeno (the paper's Poisson solver), pi (Monte-Carlo π).
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"

	"fmi"
	"fmi/internal/himeno"
)

func main() {
	var (
		app      = flag.String("app", "counter", "application: counter | himeno | pi")
		ranks    = flag.Int("ranks", 8, "number of FMI ranks")
		ppn      = flag.Int("ppn", 2, "ranks per node")
		spares   = flag.Int("spares", 4, "spare nodes reserved for fault tolerance")
		iters    = flag.Int("iters", 40, "loop iterations")
		interval = flag.Int("interval", 0, "checkpoint interval (0 = Vaidya auto-tune from -mtbf)")
		mtbf     = flag.Duration("mtbf", 2*time.Second, "assumed MTBF (tuning + Poisson injection)")
		failures = flag.Int("failures", 2, "number of Poisson failures to inject (0 disables)")
		seed     = flag.Int64("seed", 1, "failure injection seed")
		grid     = flag.Int("grid", 128, "himeno grid NX (NY=NZ=64)")
		detect   = flag.Duration("detect", 20*time.Millisecond, "failure detection delay")
		l2every  = flag.Int("l2", 0, "flush every k-th checkpoint to the PFS (multilevel C/R; 0 = off)")
		redund   = flag.Int("redundancy", 1, "parity shards per group member (1 = ring-XOR, >= 2 = RS(k,m))")
		blast    = flag.Int("blast", 1, "nodes taken by each injected failure (correlated kill width)")
		recovery = flag.String("recovery", "global", "recovery protocol: global (rollback) | local (message logging) | replica (primary/shadow promotion)")
		doTrace  = flag.Bool("trace", false, "print the recovery timeline after the run")
		traceJS  = flag.String("trace-json", "", "write the recovery timeline as JSON Lines to this file")
		verbose  = flag.Bool("v", true, "print per-iteration progress from rank 0")
	)
	flag.Parse()

	cfg := fmi.Config{
		Ranks: *ranks, ProcsPerNode: *ppn, SpareNodes: *spares,
		CheckpointInterval: *interval, MTBF: *mtbf, XORGroupSize: 4,
		Level2Every: *l2every, Redundancy: *redund,
		Recovery:    *recovery,
		DetectDelay: *detect, PropDelay: *detect / 4,
		Timeout: 10 * time.Minute,
	}
	if *failures > 0 {
		cfg.Faults = &fmi.FaultPlan{MTBF: *mtbf, MaxFailures: *failures, Seed: *seed, Blast: *blast}
	}
	if *doTrace {
		cfg.TraceTo = os.Stderr
	}
	if *traceJS != "" {
		f, err := os.Create(*traceJS)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fmirun:", err)
			os.Exit(1)
		}
		defer f.Close()
		cfg.TraceJSONTo = f
	}

	var body fmi.App
	switch *app {
	case "counter":
		body = counterApp(*iters, *verbose)
	case "himeno":
		body = himenoApp(*ranks, *grid, *iters, *verbose)
	case "pi":
		body = piApp(*iters, *verbose)
	default:
		fmt.Fprintf(os.Stderr, "fmirun: unknown app %q\n", *app)
		os.Exit(2)
	}

	start := time.Now()
	rep, err := fmi.Run(cfg, body)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fmirun:", err)
		os.Exit(1)
	}
	fmt.Printf("\ncompleted in %v: %d checkpoint(s), %d failure(s) injected, %d recovery epoch(s), %d spare node(s) consumed\n",
		time.Since(start).Round(time.Millisecond), rep.Stats.Checkpoints, rep.FailuresInjected, rep.Recoveries, rep.SparesConsumed)
	if *recovery == "local" {
		fmt.Printf("message log: %d replay round(s), %d message(s) replayed, %d entries (%d B) held at exit\n",
			rep.Stats.Replays, rep.Stats.ReplayedMsgs, rep.Stats.LogEntries, rep.Stats.LogBytes)
	}
	if *verbose && len(rep.Stats.Matcher) > 0 {
		rr := make([]int, 0, len(rep.Stats.Matcher))
		for r := range rep.Stats.Matcher {
			rr = append(rr, r)
		}
		sort.Ints(rr)
		for _, r := range rr {
			c := rep.Stats.Matcher[r]
			fmt.Printf("rank %3d: %6d delivered, %4d stale dropped, %4d duplicate(s) suppressed\n",
				r, c.Delivered, c.Dropped, c.DupSuppressed)
			// Per-source lane breakdown; sources the rank never heard
			// from are skipped.
			for src, lc := range c.PerSource {
				if lc.Delivered == 0 && lc.Dropped == 0 && lc.DupSuppressed == 0 {
					continue
				}
				fmt.Printf("  from %3d: %6d delivered, %4d stale dropped, %4d duplicate(s) suppressed\n",
					src, lc.Delivered, lc.Dropped, lc.DupSuppressed)
			}
		}
	}
}

func counterApp(iters int, verbose bool) fmi.App {
	return func(env *fmi.Env) error {
		state := make([]byte, 8)
		world := env.World()
		for {
			n := env.Loop(state)
			if n >= iters {
				break
			}
			sum, err := fmi.AllreduceInt64(world, fmi.SumInt64(), int64(n+env.Rank()))
			if err != nil {
				continue
			}
			binary.LittleEndian.PutUint64(state, uint64(n+1))
			if verbose && env.Rank() == 0 {
				fmt.Printf("iter %3d (epoch %d): allreduce sum = %d\n", n, env.Epoch(), sum[0])
			}
			time.Sleep(20 * time.Millisecond) // make progress visible
		}
		return env.Finalize()
	}
}

func himenoApp(ranks, nx, iters int, verbose bool) fmi.App {
	return func(env *fmi.Env) error {
		s, err := himeno.New(env.Rank(), ranks, nx, 64, 64)
		if err != nil {
			return err
		}
		for {
			it := env.Loop(s.State())
			if it >= iters {
				break
			}
			gosa, err := s.Step(env.World())
			if err != nil {
				continue
			}
			if verbose && env.Rank() == 0 && it%5 == 0 {
				fmt.Printf("iter %3d (epoch %d): gosa = %.6e\n", it, env.Epoch(), gosa)
			}
		}
		return env.Finalize()
	}
}

// piApp estimates π by Monte Carlo; the per-rank RNG state and hit
// counters are checkpointed so the estimate is unaffected by failures.
func piApp(iters int, verbose bool) fmi.App {
	const samplesPerIter = 200000
	return func(env *fmi.Env) error {
		state := make([]byte, 24) // hits, total, rng seed cursor
		world := env.World()
		var result float64
		for {
			n := env.Loop(state)
			if n >= iters {
				break
			}
			hits := int64(binary.LittleEndian.Uint64(state[0:]))
			total := int64(binary.LittleEndian.Uint64(state[8:]))
			// Deterministic per-(rank, iteration) stream: replaying an
			// iteration after rollback regenerates identical samples.
			rng := rand.New(rand.NewSource(int64(env.Rank())<<32 + int64(n)))
			for i := 0; i < samplesPerIter; i++ {
				x, y := rng.Float64(), rng.Float64()
				if x*x+y*y <= 1 {
					hits++
				}
				total++
			}
			binary.LittleEndian.PutUint64(state[0:], uint64(hits))
			binary.LittleEndian.PutUint64(state[8:], uint64(total))
			sums, err := fmi.AllreduceInt64(world, fmi.SumInt64(), hits, total)
			if err != nil {
				continue
			}
			result = 4 * float64(sums[0]) / float64(sums[1])
			if verbose && env.Rank() == 0 && n%5 == 0 {
				fmt.Printf("iter %3d (epoch %d): pi ≈ %.8f\n", n, env.Epoch(), result)
			}
		}
		if env.Rank() == 0 {
			fmt.Printf("final estimate: pi ≈ %.8f\n", result)
		}
		return env.Finalize()
	}
}
