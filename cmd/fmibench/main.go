// fmibench regenerates the measured experiments of the paper's
// evaluation (§VI): Figs 10-15 and Table III, plus two ablations. Each
// subcommand prints the same rows/series the paper reports, measured
// on this machine's simulated cluster (scaled data sizes; paper-scale
// model values printed alongside where the paper's numbers depend on
// Sierra hardware).
//
// Usage:
//
//	fmibench [flags] <experiment>
//
// Experiments: table3, fig10, fig11, fig12, fig13, fig14, fig15,
// fig15-sweep, ablate-k, ablate-group, erasure, msglog, coll, hotpath,
// serve, recovery-frontier, reconfig, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fmi/internal/experiments"
)

func main() {
	var (
		ckptMB   = flag.Int("ckpt-mb", 8, "checkpoint size per rank in MiB (figs 10-12)")
		maxProcs = flag.Int("max-procs", 768, "largest process count in sweeps (figs 12-14)")
		detect   = flag.Duration("detect", 200*time.Millisecond, "failure detect delay (fig 13; paper's ibverbs showed ~0.2s)")
		prop     = flag.Duration("prop", 20*time.Millisecond, "close propagation delay (fig 13)")
		ranks    = flag.Int("ranks", 0, "ranks for fig 15 (0 = calibrated default)")
		iters    = flag.Int("iters", 0, "iterations for fig 15 (0 = calibrated default)")
		grid     = flag.Int("grid", 0, "fig 15 grid first dimension (0 = calibrated default)")
		mtbf     = flag.Duration("mtbf", 0, "fig 15 MTBF (0 = calibrated default; paper used 1 minute at Sierra scale)")
		quick    = flag.Bool("quick", false, "shrink every sweep for a fast smoke run")
		netDelay = flag.Duration("netdelay", 50*time.Microsecond, "simulated per-message wire latency for the coll sweep")
		outPath  = flag.String("out", "", "write the hotpath results as JSON to this file")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fmibench [flags] <table3|fig10|fig11|fig12|fig13|fig14|fig15|fig15-sweep|ablate-k|ablate-group|erasure|msglog|coll|hotpath|serve|recovery-frontier|reconfig|all>")
		os.Exit(2)
	}
	which := flag.Arg(0)

	procSweep := []int{48, 96, 192, 384, 768, 1536} // the paper's x-axis
	var trimmed []int
	for _, n := range procSweep {
		if n <= *maxProcs {
			trimmed = append(trimmed, n)
		}
	}
	procSweep = trimmed
	groupSweep := []int{2, 4, 8, 16, 32, 64}
	if *quick {
		procSweep = []int{16, 48}
		groupSweep = []int{2, 4, 8}
		*ckptMB = 1
		*detect, *prop = 5*time.Millisecond, 2*time.Millisecond
		*ranks, *iters, *grid, *mtbf = 4, 120, 66, 300*time.Millisecond
	}
	ckptBytes := *ckptMB << 20

	run := func(name string) {
		switch name {
		case "table3":
			rows, err := experiments.Table3()
			fatalIf(err)
			experiments.PrintTable3(os.Stdout, rows)
		case "fig10", "fig11":
			rows, err := experiments.XORGroupSweep(groupSweep, ckptBytes)
			fatalIf(err)
			if name == "fig10" {
				experiments.PrintFig10(os.Stdout, rows)
			} else {
				experiments.PrintFig11(os.Stdout, rows)
			}
		case "fig12":
			// Keep the aggregate bounded: on real hardware each rank
			// has its own memory; here they share the host's, so the
			// per-rank size shrinks as the process count grows.
			const aggregate = 128 << 20
			rows, err := experiments.CRThroughputSweepAggregate(procSweep, 16, aggregate)
			fatalIf(err)
			experiments.PrintFig12(os.Stdout, rows)
		case "fig13":
			rows, err := experiments.NotifySweep(procSweep, 2, *detect, *prop)
			fatalIf(err)
			experiments.PrintFig13(os.Stdout, rows, *detect, *prop)
		case "fig14":
			rows, err := experiments.InitSweep(procSweep, 2)
			fatalIf(err)
			experiments.PrintFig14(os.Stdout, rows)
		case "fig15":
			cfg := experiments.DefaultFig15Config()
			if *ranks > 0 {
				cfg.Ranks = *ranks
			}
			if *iters > 0 {
				cfg.Iters = *iters
			}
			if *grid > 0 {
				cfg.NX = *grid
			}
			if *mtbf > 0 {
				cfg.MTBF = *mtbf
			}
			rows, err := experiments.Fig15(cfg)
			fatalIf(err)
			experiments.PrintFig15(os.Stdout, cfg, rows)
		case "fig15-sweep":
			cfg := experiments.DefaultFig15Config()
			cfg.Iters = 150
			if *quick {
				cfg = experiments.Fig15Config{
					Ranks: 4, ProcsPerNode: 2, NX: 66, NY: 64, NZ: 64,
					Iters: 60, MTBF: 400 * time.Millisecond, Spares: 6, Seed: 7,
					DetectDelay: 5 * time.Millisecond, PropDelay: 2 * time.Millisecond,
					Timeout: 10 * time.Minute,
				}
			}
			counts := []int{2, 4, 8, 16}
			if *quick {
				counts = []int{2, 4}
			}
			sweep, err := experiments.Fig15Sweep(cfg, counts)
			fatalIf(err)
			experiments.PrintFig15Sweep(os.Stdout, cfg, sweep)
		case "ablate-k":
			n := 256
			if *quick {
				n = 64
			}
			rows, err := experiments.AblateK(n, []int{2, 4, 8, 16}, *detect, *prop)
			fatalIf(err)
			experiments.PrintAblateK(os.Stdout, n, rows)
		case "ablate-group":
			rows := experiments.AblateGroup(1024, groupSweep)
			experiments.PrintAblateGroup(os.Stdout, 1024, rows)
		case "coll":
			// Schedule-driven collective engine (ISSUE 3): op ×
			// algorithm × payload-size sweep. The headline check is
			// ring allreduce beating the legacy reduce+bcast tree at
			// >= 1 MiB payloads while recursive doubling holds the
			// small-payload end. The simulated wire latency (-netdelay)
			// is what lets round counts matter: with free delivery the
			// in-process substrate only bills per-message CPU, which
			// always favours the minimum-message tree.
			cranks, citers := 16, 32
			sizes := []int{1 << 10, 64 << 10, 1 << 20}
			if *quick {
				cranks, citers = 8, 8
				sizes = []int{1 << 10, 256 << 10}
			}
			rows, err := experiments.CollSweep(cranks, sizes, citers, *netDelay)
			fatalIf(err)
			experiments.PrintColl(os.Stdout, cranks, *netDelay, rows)
		case "msglog":
			// Sender-based message logging (§VIII extension): failure-free
			// logging overhead and the survivor rework that localized
			// recovery removes, global vs local at two process counts.
			rc, it, iv := []int{4, 8}, 30, 4
			if *quick {
				rc, it, iv = []int{4}, 12, 3
			}
			rows, err := experiments.MsgLog(rc, it, iv)
			fatalIf(err)
			experiments.PrintMsgLog(os.Stdout, it, iv, rows)
		case "hotpath":
			// Zero-allocation hot paths: allocs/op for the transport
			// send/recv roundtrip, collective packing, and checkpoint
			// capture+encode, pooled arena on vs off.
			hcfg := experiments.DefaultHotpathConfig()
			if *quick {
				hcfg.CkptBytesPerRank = 256 << 10
			}
			rows, err := experiments.HotpathSweep(hcfg)
			fatalIf(err)
			experiments.PrintHotpath(os.Stdout, hcfg, rows)
			if *outPath != "" {
				doc, err := experiments.HotpathJSON(hcfg, rows)
				fatalIf(err)
				fatalIf(os.WriteFile(*outPath, doc, 0o644))
			}
		case "serve":
			// Multi-tenant job service (ISSUE 6): N tenants x M jobs on
			// one shared cluster + spare pool, Poisson kills aimed at
			// the noisy tenants, p50/p99 submit-to-complete latency per
			// tenant against a failure-free baseline. The headline is
			// the quiet tenant's p99 inflation — how much recovery
			// traffic bleeds across tenants.
			scfg := experiments.DefaultServeExpConfig()
			if *quick {
				scfg.Tenants, scfg.JobsPerTenant = 2, 3
				scfg.Iters, scfg.StepMs = 5, 5
				// Short jobs need a hotter injector for kills to land
				// inside the run window.
				scfg.FailureRate = 50
			}
			sres, err := experiments.ServeExp(scfg)
			fatalIf(err)
			experiments.PrintServeExp(os.Stdout, scfg, sres)
			if *outPath != "" {
				doc, err := experiments.ServeExpJSON(scfg, sres)
				fatalIf(err)
				fatalIf(os.WriteFile(*outPath, doc, 0o644))
			}
		case "recovery-frontier":
			// Recovery frontier (ISSUE 7): the same allreduce job under
			// global rollback, local replay, and primary/shadow
			// replication, failure-free and with one primary-node kill.
			// The headline is replica's recovery latency (promotion, no
			// rollback) sitting below both rollback protocols, with the
			// 2x node footprint and mirrored-send overhead alongside.
			rcfg := experiments.DefaultRecoveryConfig()
			if *quick {
				rcfg = experiments.QuickRecoveryConfig()
			}
			rrows, err := experiments.RecoveryFrontier(rcfg)
			fatalIf(err)
			experiments.PrintRecovery(os.Stdout, rcfg, rrows)
			if *outPath != "" {
				doc, err := experiments.RecoveryJSON(rcfg, rrows)
				fatalIf(err)
				fatalIf(os.WriteFile(*outPath, doc, 0o644))
			}
		case "reconfig":
			// Online reconfiguration (ISSUE 8): an elastic job grows and
			// shrinks through the quiescent resize fence under each
			// recovery protocol. The headline is the resize latency
			// sitting below even the restart floor — a single-iteration
			// relaunch at the target size — before the restart pays any
			// checkpoint replay.
			gcfg := experiments.DefaultReconfigConfig()
			if *quick {
				gcfg = experiments.QuickReconfigConfig()
			}
			grows, err := experiments.ReconfigSweep(gcfg)
			fatalIf(err)
			experiments.PrintReconfig(os.Stdout, gcfg, grows)
			if *outPath != "" {
				doc, err := experiments.ReconfigJSON(gcfg, grows)
				fatalIf(err)
				fatalIf(os.WriteFile(*outPath, doc, 0o644))
			}
		case "erasure":
			// Redundancy sweep (§VIII extension): ring-XOR m=1 against
			// RS(k,m) for m in {2,3} over one group, then the raw
			// GF(2^8) kernel scalar-vs-parallel comparison.
			g, shard, dur := 8, 4<<20, 300*time.Millisecond
			if *quick {
				g, shard, dur = 4, 1<<20, 50*time.Millisecond
			}
			rows, err := experiments.ErasureSweep([]int{1, 2, 3}, g, ckptBytes)
			fatalIf(err)
			experiments.PrintErasure(os.Stdout, rows)
			fmt.Println()
			kern, err := experiments.ErasureKernelBench(shard, [][2]int{{15, 1}, {14, 2}, {13, 3}}, dur)
			fatalIf(err)
			experiments.PrintErasureKernels(os.Stdout, shard, kern)
		default:
			fmt.Fprintf(os.Stderr, "fmibench: unknown experiment %q\n", name)
			os.Exit(2)
		}
		fmt.Println()
	}

	if which == "all" {
		for _, name := range []string{"table3", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "ablate-k", "ablate-group", "erasure", "msglog", "coll", "hotpath", "serve", "recovery-frontier", "reconfig"} {
			run(name)
		}
		return
	}
	run(which)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "fmibench:", err)
		os.Exit(1)
	}
}
