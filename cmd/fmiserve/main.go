// fmiserve runs the multi-tenant FMI job service: an HTTP/JSON
// control plane multiplexing many concurrent fault-tolerant jobs onto
// one shared simulated cluster with a shared spare-node pool.
//
// Usage:
//
//	fmiserve [flags]            serve until interrupted
//	fmiserve -smoke             self-test: boot, drive the API, exit
//
// The API:
//
//	POST /jobs            submit  {"tenant":"a","app":"allreduce","ranks":8}
//	GET  /jobs/{id}       status
//	GET  /jobs/{id}/trace recovery timeline, streamed as NDJSON
//	POST /jobs/{id}/kill  fail the node under a rank (needs -allow-kill)
//	GET  /stats           service-wide counters
//	GET  /healthz         liveness
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fmi/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address")
		compute    = flag.Int("compute", 16, "compute nodes in the shared cluster")
		spares     = flag.Int("spares", 8, "spare nodes in the shared pool")
		queueDepth = flag.Int("queue-depth", 16, "per-tenant pending queue bound")
		maxRunning = flag.Int("max-running", 4, "per-tenant concurrent job cap")
		maxSpares  = flag.Int("max-spares", 4, "per-tenant outstanding lease cap")
		floor      = flag.Int("spare-floor", 2, "spare reserve kept for lease-free tenants")
		jobTimeout = flag.Duration("job-timeout", 60*time.Second, "default per-job timeout")
		allowKill  = flag.Bool("allow-kill", false, "enable POST /jobs/{id}/kill fault injection")
		smoke      = flag.Bool("smoke", false, "boot, drive the API end to end, exit")
	)
	flag.Parse()

	cfg := serve.Config{
		ComputeNodes:        *compute,
		SpareNodes:          *spares,
		QueueDepth:          *queueDepth,
		MaxRunningPerTenant: *maxRunning,
		MaxSparesPerTenant:  *maxSpares,
		SpareFloor:          *floor,
		JobTimeout:          *jobTimeout,
		AllowKill:           *allowKill || *smoke,
	}
	if *smoke {
		if err := runSmoke(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "fmiserve smoke: FAIL: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("fmiserve smoke: OK")
		return
	}

	s := serve.New(cfg)
	bound, err := s.Start(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fmiserve: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("fmiserve listening on %s (%d compute, %d spare nodes; apps: %v)\n",
		bound, *compute, *spares, serve.Apps())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("fmiserve: shutting down")
	s.Close()
}

// runSmoke boots a server on a free port and drives the full API the
// way CI does: two tenants submit concurrently, a node is killed under
// one of them, both jobs must complete, and /stats must parse.
func runSmoke(cfg serve.Config) error {
	s := serve.New(cfg)
	defer s.Close()
	bound, err := s.Start("127.0.0.1:0")
	if err != nil {
		return err
	}
	base := "http://" + bound.String()

	submit := func(spec serve.JobSpec) (string, error) {
		b, _ := json.Marshal(spec)
		resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(b))
		if err != nil {
			return "", err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 202 {
			return "", fmt.Errorf("submit: %d %s", resp.StatusCode, body)
		}
		var out struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(body, &out); err != nil {
			return "", err
		}
		return out.ID, nil
	}
	status := func(id string) (serve.JobStatus, error) {
		var st serve.JobStatus
		resp, err := http.Get(base + "/jobs/" + id)
		if err != nil {
			return st, err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			return st, fmt.Errorf("status: %d %s", resp.StatusCode, body)
		}
		return st, json.Unmarshal(body, &st)
	}

	idA, err := submit(serve.JobSpec{Tenant: "smoke-a", App: "allreduce", Ranks: 4, Iters: 8, Interval: 2, StepMs: 10})
	if err != nil {
		return err
	}
	idB, err := submit(serve.JobSpec{Tenant: "smoke-b", App: "pingpong", Ranks: 4, Iters: 8, StepMs: 10})
	if err != nil {
		return err
	}

	// Wait for job A to run, then kill the node under its rank 1.
	deadline := time.Now().Add(20 * time.Second)
	for {
		st, err := status(idA)
		if err != nil {
			return err
		}
		if st.State == "running" {
			break
		}
		if st.State != "queued" || time.Now().After(deadline) {
			return fmt.Errorf("job A never ran: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	kb, _ := json.Marshal(map[string]int{"rank": 1})
	kresp, err := http.Post(base+"/jobs/"+idA+"/kill", "application/json", bytes.NewReader(kb))
	if err != nil {
		return err
	}
	kbody, _ := io.ReadAll(kresp.Body)
	kresp.Body.Close()
	if kresp.StatusCode != 200 {
		return fmt.Errorf("kill: %d %s", kresp.StatusCode, kbody)
	}

	// Both jobs must complete despite the kill.
	for _, id := range []string{idA, idB} {
		for {
			st, err := status(id)
			if err != nil {
				return err
			}
			if st.State == "done" {
				if id == idA && st.Epochs == 0 {
					return fmt.Errorf("job A finished without recovering: %+v", st)
				}
				break
			}
			if st.State == "failed" {
				return fmt.Errorf("job %s failed: %s", id, st.Err)
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("job %s stuck: %+v", id, st)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// /stats must be well-formed JSON reflecting both tenants.
	resp, err := http.Get(base + "/stats")
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		return fmt.Errorf("stats: %d", resp.StatusCode)
	}
	var stats serve.ServerStats
	if err := json.Unmarshal(body, &stats); err != nil {
		return fmt.Errorf("stats not valid JSON: %v\n%s", err, body)
	}
	for _, tn := range []string{"smoke-a", "smoke-b"} {
		if stats.Tenants[tn].Completed != 1 {
			return fmt.Errorf("tenant %s stats: %+v", tn, stats.Tenants[tn])
		}
	}
	if stats.Spares.Granted == 0 {
		return fmt.Errorf("no spare lease recorded: %+v", stats.Spares)
	}
	fmt.Printf("smoke: A recovered (epochs>0), B clean; spares granted=%d reclaimed=%d\n",
		stats.Spares.Granted, stats.Spares.Reclaimed)
	return nil
}
