// Command fmilint runs the FMI fault-tolerance invariant suite over a
// module tree. It is a domain-specific static analyzer: the invariants
// it checks (trace-kind registration, lock discipline around the epoch
// fence, fault-path error handling, simulated-time isolation) are the
// correctness conditions transparent recovery rests on, and none of
// them are visible to the Go compiler or vet.
//
// Usage:
//
//	fmilint [-json] [module-root]
//
// The root defaults to "." and accepts a trailing /... for
// familiarity. Exit codes: 0 clean, 1 findings, 2 the tree failed to
// load or type-check. With -json the report is a single JSON object
// listing every finding (file/line/analyzer/message/suppressed —
// suppressed findings included, so the suppression inventory is
// auditable); the exit code still counts only unsuppressed findings.
// Suppress an individual finding with
//
//	//fmilint:ignore <analyzer> <reason>
//
// on (or directly above) the flagged line, or before the package
// clause to cover a whole file. The reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"os"

	"fmi/internal/lint"
)

func main() {
	list := flag.Bool("analyzers", false, "list the analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as one JSON object (suppressed findings included)")
	flag.Parse()
	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		return
	}
	root := "."
	if flag.NArg() > 0 {
		root = flag.Arg(0)
	}
	os.Exit(lint.Main(root, os.Stdout, *jsonOut))
}
