package fmi

import (
	"encoding/binary"
	"errors"
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// fastCfg returns a config with millisecond failure observation for
// quick tests.
func fastCfg(ranks, ppn, spares, interval int) Config {
	return Config{
		Ranks: ranks, ProcsPerNode: ppn, SpareNodes: spares,
		CheckpointInterval: interval, XORGroupSize: 4,
		DetectDelay: 2 * time.Millisecond, PropDelay: time.Millisecond,
		Timeout: 60 * time.Second,
	}
}

// iterApp counts iterations with a checkpointed counter and a world
// Allreduce each round; results records each rank's final sum.
func iterApp(iters int, results *sync.Map) App {
	return func(env *Env) error {
		state := make([]byte, 16)
		world := env.World()
		for {
			n := env.Loop(state)
			if n >= iters {
				break
			}
			sum, err := AllreduceInt64(world, SumInt64(), int64(n+env.Rank()))
			if err != nil {
				continue
			}
			acc := int64(binary.LittleEndian.Uint64(state[8:])) + sum[0]
			binary.LittleEndian.PutUint64(state[8:], uint64(acc))
			binary.LittleEndian.PutUint64(state[0:], uint64(n+1))
		}
		results.Store(env.Rank(), int64(binary.LittleEndian.Uint64(state[8:])))
		return env.Finalize()
	}
}

func expectedIterSum(ranks, iters int) int64 {
	var total int64
	for n := 0; n < iters; n++ {
		for r := 0; r < ranks; r++ {
			total += int64(n + r)
		}
	}
	return total
}

func TestRunFailureFree(t *testing.T) {
	var results sync.Map
	rep, err := Run(fastCfg(8, 2, 0, 3), iterApp(9, &results))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := expectedIterSum(8, 9)
	count := 0
	results.Range(func(k, v any) bool {
		count++
		if v.(int64) != want {
			t.Errorf("rank %v: %d, want %d", k, v, want)
		}
		return true
	})
	if count != 8 {
		t.Fatalf("results = %d", count)
	}
	if rep.Recoveries != 0 || rep.FailuresInjected != 0 {
		t.Fatalf("unexpected failures in failure-free run: %+v", rep)
	}
}

func TestRunWithScriptedFault(t *testing.T) {
	var results sync.Map
	cfg := fastCfg(8, 2, 1, 2)
	cfg.Faults = &FaultPlan{Script: []Fault{{AfterLoop: 4, Node: -1, Rank: 3}}}
	rep, err := Run(cfg, iterApp(10, &results))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1", rep.Recoveries)
	}
	want := expectedIterSum(8, 10)
	results.Range(func(k, v any) bool {
		if v.(int64) != want {
			t.Errorf("rank %v: %d, want %d", k, v, want)
		}
		return true
	})
}

func TestRunRedundancy2CorrelatedFault(t *testing.T) {
	// Public-API plumbing for the RS extension: Redundancy 2 plus a
	// correlated fault taking two group-mate nodes in one event still
	// yields the exact answer, recovering both ranks from memory.
	var results sync.Map
	cfg := fastCfg(4, 1, 4, 2)
	cfg.Redundancy = 2
	cfg.Faults = &FaultPlan{Script: []Fault{
		{AfterLoop: 5, Node: 0, CorrelatedNodes: []int{1}},
	}}
	cfg.Timeout = 120 * time.Second
	rep, err := Run(cfg, iterApp(12, &results))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.FailuresInjected != 1 {
		t.Fatalf("failures injected = %d, want 1 (correlated kill is one event)", rep.FailuresInjected)
	}
	if rep.Recoveries == 0 {
		t.Fatal("no recoveries recorded")
	}
	want := expectedIterSum(4, 12)
	count := 0
	results.Range(func(k, v any) bool {
		count++
		if v.(int64) != want {
			t.Errorf("rank %v: %d, want %d", k, v, want)
		}
		return true
	})
	if count != 4 {
		t.Fatalf("results = %d, want 4", count)
	}
}

func TestRunThroughPoissonFailures(t *testing.T) {
	// The headline capability: run through random failures with a
	// short MTBF and still produce the exact answer.
	var results sync.Map
	cfg := fastCfg(8, 2, 4, 2)
	cfg.Faults = &FaultPlan{MTBF: 400 * time.Millisecond, MaxFailures: 3, Seed: 11}
	cfg.Timeout = 120 * time.Second
	app := func(env *Env) error {
		state := make([]byte, 16)
		world := env.World()
		for {
			n := env.Loop(state)
			if n >= 25 {
				break
			}
			sum, err := AllreduceInt64(world, SumInt64(), int64(n+env.Rank()))
			if err != nil {
				continue
			}
			time.Sleep(5 * time.Millisecond) // give failures a window
			acc := int64(binary.LittleEndian.Uint64(state[8:])) + sum[0]
			binary.LittleEndian.PutUint64(state[8:], uint64(acc))
			binary.LittleEndian.PutUint64(state[0:], uint64(n+1))
		}
		results.Store(env.Rank(), int64(binary.LittleEndian.Uint64(state[8:])))
		return env.Finalize()
	}
	rep, err := Run(cfg, app)
	if err != nil {
		t.Fatalf("Run: %v (injected %d)", err, rep.FailuresInjected)
	}
	want := expectedIterSum(8, 25)
	count := 0
	results.Range(func(k, v any) bool {
		count++
		if v.(int64) != want {
			t.Errorf("rank %v: %d, want %d", k, v, want)
		}
		return true
	})
	if count != 8 {
		t.Fatalf("results = %d", count)
	}
	t.Logf("injected=%d recoveries=%d ckpts=%d", rep.FailuresInjected, rep.Recoveries, rep.Stats.Checkpoints)
}

func TestPreLoopBcastSurvivesReplacementReplay(t *testing.T) {
	// Configuration broadcast before the loop must be replayable by a
	// restarted process (coordinator-cached collectives).
	var results sync.Map
	cfg := fastCfg(4, 1, 1, 2)
	cfg.Faults = &FaultPlan{Script: []Fault{{AfterLoop: 3, Node: -1, Rank: 2}}}
	app := func(env *Env) error {
		world := env.World()
		var seed []byte
		if env.Rank() == 0 {
			seed = []byte{42}
		}
		got, err := world.Bcast(0, seed)
		if err != nil {
			return err
		}
		state := make([]byte, 8)
		for {
			n := env.Loop(state)
			if n >= 8 {
				break
			}
			if _, err := AllreduceInt64(world, SumInt64(), int64(n)); err != nil {
				continue
			}
			binary.LittleEndian.PutUint64(state, uint64(n+1))
		}
		results.Store(env.Rank(), got[0])
		return env.Finalize()
	}
	if _, err := Run(cfg, app); err != nil {
		t.Fatalf("Run: %v", err)
	}
	count := 0
	results.Range(func(k, v any) bool {
		count++
		if v.(byte) != 42 {
			t.Errorf("rank %v got config %d, want 42", k, v)
		}
		return true
	})
	if count != 4 {
		t.Fatalf("results = %d", count)
	}
}

func TestMultiSegmentCheckpoint(t *testing.T) {
	// Loop with several segments of different sizes.
	var results sync.Map
	cfg := fastCfg(4, 1, 1, 1)
	cfg.Faults = &FaultPlan{Script: []Fault{{AfterLoop: 2, Node: -1, Rank: 0}}}
	app := func(env *Env) error {
		a := make([]byte, 3)
		b := make([]byte, 1000)
		c := make([]byte, 8)
		for {
			n := env.Loop(a, b, c)
			if n >= 6 {
				break
			}
			if err := env.World().Barrier(); err != nil {
				continue
			}
			a[0] = byte(n + 1)
			b[999] = byte(n * 2)
			binary.LittleEndian.PutUint64(c, uint64(n+1))
		}
		results.Store(env.Rank(), [3]byte{a[0], b[999], c[0]})
		return env.Finalize()
	}
	if _, err := Run(cfg, app); err != nil {
		t.Fatalf("Run: %v", err)
	}
	results.Range(func(k, v any) bool {
		got := v.([3]byte)
		if got[0] != 6 || got[1] != 10 || got[2] != 6 {
			t.Errorf("rank %v state = %v", k, got)
		}
		return true
	})
}

func TestOpsRoundtrips(t *testing.T) {
	f := func(v []float64) bool {
		got := BytesFloat64(Float64Bytes(v))
		if len(got) != len(v) {
			return false
		}
		for i := range v {
			if got[i] != v[i] && !(math.IsNaN(got[i]) && math.IsNaN(v[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	g := func(v []int64) bool {
		got := BytesInt64(Int64Bytes(v))
		if len(got) != len(v) {
			return false
		}
		for i := range v {
			if got[i] != v[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOpsSemantics(t *testing.T) {
	acc := Float64Bytes([]float64{1, 5, -2})
	SumFloat64()(acc, Float64Bytes([]float64{2, -1, 0.5}))
	got := BytesFloat64(acc)
	if got[0] != 3 || got[1] != 4 || got[2] != -1.5 {
		t.Fatalf("sum = %v", got)
	}
	acc = Float64Bytes([]float64{1, 5})
	MaxFloat64()(acc, Float64Bytes([]float64{2, 3}))
	got = BytesFloat64(acc)
	if got[0] != 2 || got[1] != 5 {
		t.Fatalf("max = %v", got)
	}
	acc = Float64Bytes([]float64{1, 5})
	MinFloat64()(acc, Float64Bytes([]float64{2, 3}))
	got = BytesFloat64(acc)
	if got[0] != 1 || got[1] != 3 {
		t.Fatalf("min = %v", got)
	}
	acci := Int64Bytes([]int64{7, -2})
	MaxInt64()(acci, Int64Bytes([]int64{3, 9}))
	goti := BytesInt64(acci)
	if goti[0] != 7 || goti[1] != 9 {
		t.Fatalf("imax = %v", goti)
	}
	accf := Float32Bytes([]float32{1.5})
	SumFloat32()(accf, Float32Bytes([]float32{2.25}))
	if BytesFloat32(accf)[0] != 3.75 {
		t.Fatalf("f32 sum = %v", BytesFloat32(accf))
	}
}

func TestVaidyaAutoTuneThroughPublicAPI(t *testing.T) {
	cfg := fastCfg(4, 1, 0, 0)
	cfg.MTBF = time.Minute
	var intervals sync.Map
	app := func(env *Env) error {
		state := make([]byte, 8)
		for {
			n := env.Loop(state)
			if n >= 20 {
				break
			}
			time.Sleep(2 * time.Millisecond)
			binary.LittleEndian.PutUint64(state, uint64(n+1))
		}
		intervals.Store(env.Rank(), env.CheckpointInterval())
		return env.Finalize()
	}
	if _, err := Run(cfg, app); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// All ranks must agree on the tuned interval.
	var vals []int
	intervals.Range(func(_, v any) bool {
		vals = append(vals, v.(int))
		return true
	})
	for _, v := range vals[1:] {
		if v != vals[0] {
			t.Fatalf("ranks disagree on interval: %v", vals)
		}
	}
	if vals[0] < 1 {
		t.Fatalf("interval = %d", vals[0])
	}
}

func TestMultilevelThroughPublicAPI(t *testing.T) {
	// Level-2 enabled via the public config: two nodes of the same
	// XOR group die at once and the job still completes exactly.
	var results sync.Map
	cfg := fastCfg(4, 1, 3, 2)
	cfg.Level2Every = 1
	cfg.MaxEpochs = 32
	cfg.Faults = &FaultPlan{Script: []Fault{
		{AfterLoop: 4, Node: 0},
		{AfterLoop: 4, Node: 1},
	}}
	rep, err := Run(cfg, iterApp(10, &results))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := expectedIterSum(4, 10)
	count := 0
	results.Range(func(k, v any) bool {
		count++
		if v.(int64) != want {
			t.Errorf("rank %v: %d, want %d", k, v, want)
		}
		return true
	})
	if count != 4 {
		t.Fatalf("results = %d", count)
	}
	if rep.Stats.L2Restores == 0 || rep.Stats.L2Checkpoints == 0 {
		t.Fatalf("level-2 machinery unused: %+v", rep.Stats)
	}
}

func TestRandomizedFailureSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak in -short mode")
	}
	// Several seeds of Poisson failure injection; every run must end
	// with the exact deterministic answer. Level-2 checkpointing is
	// enabled so even two losses inside one XOR group (possible under
	// random timing) stay recoverable.
	for _, seed := range []int64{1, 2, 3} {
		var results sync.Map
		cfg := fastCfg(8, 2, 6, 2)
		cfg.Timeout = 120 * time.Second
		cfg.MaxEpochs = 64
		cfg.Level2Every = 2
		cfg.Faults = &FaultPlan{MTBF: 250 * time.Millisecond, MaxFailures: 4, Seed: seed}
		app := func(env *Env) error {
			state := make([]byte, 16)
			world := env.World()
			for {
				n := env.Loop(state)
				if n >= 20 {
					break
				}
				sum, err := AllreduceInt64(world, SumInt64(), int64(n+env.Rank()))
				if err != nil {
					continue
				}
				time.Sleep(3 * time.Millisecond)
				acc := int64(binary.LittleEndian.Uint64(state[8:])) + sum[0]
				binary.LittleEndian.PutUint64(state[8:], uint64(acc))
				binary.LittleEndian.PutUint64(state[0:], uint64(n+1))
			}
			results.Store(env.Rank(), int64(binary.LittleEndian.Uint64(state[8:])))
			return env.Finalize()
		}
		rep, err := Run(cfg, app)
		if errors.Is(err, ErrUnrecoverable) {
			// Legitimate clean abort: under heavy load (race detector)
			// failures can destroy an XOR group before the first level-2
			// flush completes. The soak's claim is exactness whenever the
			// job survives, and a clean error — not a hang — when not.
			t.Logf("seed %d: aborted cleanly before level 2 existed: %v", seed, err)
			continue
		}
		if err != nil {
			t.Fatalf("seed %d: %v (injected %d)", seed, err, rep.FailuresInjected)
		}
		want := expectedIterSum(8, 20)
		results.Range(func(k, v any) bool {
			if v.(int64) != want {
				t.Errorf("seed %d rank %v: %d, want %d", seed, k, v, want)
			}
			return true
		})
	}
}

func TestTraceTimeline(t *testing.T) {
	var results sync.Map
	var buf syncBuffer
	cfg := fastCfg(4, 1, 1, 2)
	cfg.TraceTo = &buf
	cfg.Faults = &FaultPlan{Script: []Fault{{AfterLoop: 4, Node: -1, Rank: 1}}}
	rep, err := Run(cfg, iterApp(8, &results))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rep.Timeline) == 0 {
		t.Fatal("no timeline recorded")
	}
	kinds := map[string]int{}
	for _, e := range rep.Timeline {
		kinds[string(e.Kind)]++
	}
	for _, want := range []string{"node-failed", "epoch", "spare-allocated", "respawn", "notified", "checkpoint", "rollback", "finalize"} {
		if kinds[want] == 0 {
			t.Fatalf("timeline missing %q events (have %v)", want, kinds)
		}
	}
	// The failure event must precede the first rollback.
	sawFail := false
	for _, e := range rep.Timeline {
		if string(e.Kind) == "node-failed" {
			sawFail = true
		}
		if string(e.Kind) == "rollback" && !sawFail {
			t.Fatal("rollback recorded before the failure")
		}
	}
	if buf.String() == "" {
		t.Fatal("TraceTo received nothing")
	}
}

// syncBuffer is a goroutine-safe bytes buffer for trace output.
type syncBuffer struct {
	mu  sync.Mutex
	buf []byte
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.buf = append(b.buf, p...)
	return len(p), nil
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return string(b.buf)
}
