package fmi

import (
	"encoding/binary"
	"math"
)

// This file provides typed reduction operators and byte-slice
// conversions. FMI's wire payloads are raw bytes (matching the C API's
// void* buffers); these helpers give applications ergonomic numeric
// views over them.

// SumFloat64 returns an Op adding float64 arrays element-wise.
func SumFloat64() Op {
	return func(acc, src []byte) {
		for i := 0; i+8 <= len(acc); i += 8 {
			a := math.Float64frombits(binary.LittleEndian.Uint64(acc[i:]))
			b := math.Float64frombits(binary.LittleEndian.Uint64(src[i:]))
			binary.LittleEndian.PutUint64(acc[i:], math.Float64bits(a+b))
		}
	}
}

// MaxFloat64 returns an Op taking the element-wise maximum.
func MaxFloat64() Op {
	return func(acc, src []byte) {
		for i := 0; i+8 <= len(acc); i += 8 {
			a := math.Float64frombits(binary.LittleEndian.Uint64(acc[i:]))
			b := math.Float64frombits(binary.LittleEndian.Uint64(src[i:]))
			if b > a {
				binary.LittleEndian.PutUint64(acc[i:], math.Float64bits(b))
			}
		}
	}
}

// MinFloat64 returns an Op taking the element-wise minimum.
func MinFloat64() Op {
	return func(acc, src []byte) {
		for i := 0; i+8 <= len(acc); i += 8 {
			a := math.Float64frombits(binary.LittleEndian.Uint64(acc[i:]))
			b := math.Float64frombits(binary.LittleEndian.Uint64(src[i:]))
			if b < a {
				binary.LittleEndian.PutUint64(acc[i:], math.Float64bits(b))
			}
		}
	}
}

// SumFloat32 returns an Op adding float32 arrays element-wise (the
// Himeno benchmark reduces a float32 residual).
func SumFloat32() Op {
	return func(acc, src []byte) {
		for i := 0; i+4 <= len(acc); i += 4 {
			a := math.Float32frombits(binary.LittleEndian.Uint32(acc[i:]))
			b := math.Float32frombits(binary.LittleEndian.Uint32(src[i:]))
			binary.LittleEndian.PutUint32(acc[i:], math.Float32bits(a+b))
		}
	}
}

// SumInt64 returns an Op adding int64 arrays element-wise.
func SumInt64() Op {
	return func(acc, src []byte) {
		for i := 0; i+8 <= len(acc); i += 8 {
			a := int64(binary.LittleEndian.Uint64(acc[i:]))
			b := int64(binary.LittleEndian.Uint64(src[i:]))
			binary.LittleEndian.PutUint64(acc[i:], uint64(a+b))
		}
	}
}

// MaxInt64 returns an Op taking the element-wise maximum of int64s.
func MaxInt64() Op {
	return func(acc, src []byte) {
		for i := 0; i+8 <= len(acc); i += 8 {
			a := int64(binary.LittleEndian.Uint64(acc[i:]))
			b := int64(binary.LittleEndian.Uint64(src[i:]))
			if b > a {
				binary.LittleEndian.PutUint64(acc[i:], uint64(b))
			}
		}
	}
}

// Float64Bytes encodes a float64 slice as little-endian bytes.
func Float64Bytes(v []float64) []byte {
	out := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(x))
	}
	return out
}

// BytesFloat64 decodes little-endian bytes into float64s.
func BytesFloat64(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// Float32Bytes encodes a float32 slice as little-endian bytes.
func Float32Bytes(v []float32) []byte {
	out := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(x))
	}
	return out
}

// BytesFloat32 decodes little-endian bytes into float32s.
func BytesFloat32(b []byte) []float32 {
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// Int64Bytes encodes an int64 slice as little-endian bytes.
func Int64Bytes(v []int64) []byte {
	out := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[8*i:], uint64(x))
	}
	return out
}

// BytesInt64 decodes little-endian bytes into int64s.
func BytesInt64(b []byte) []int64 {
	out := make([]int64, len(b)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// AllreduceFloat64 reduces float64 values across a communicator.
func AllreduceFloat64(c *Comm, op Op, vals ...float64) ([]float64, error) {
	out, err := c.Allreduce(Float64Bytes(vals), op)
	if err != nil {
		return nil, err
	}
	return BytesFloat64(out), nil
}

// AllreduceFloat32 reduces float32 values across a communicator.
func AllreduceFloat32(c *Comm, op Op, vals ...float32) ([]float32, error) {
	out, err := c.Allreduce(Float32Bytes(vals), op)
	if err != nil {
		return nil, err
	}
	return BytesFloat32(out), nil
}

// AllreduceInt64 reduces int64 values across a communicator.
func AllreduceInt64(c *Comm, op Op, vals ...int64) ([]int64, error) {
	out, err := c.Allreduce(Int64Bytes(vals), op)
	if err != nil {
		return nil, err
	}
	return BytesInt64(out), nil
}
