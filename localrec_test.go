package fmi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// execTracker records how many times each rank executed each loop
// iteration, to prove survivors never re-execute under local recovery.
type execTracker struct {
	mu     sync.Mutex
	counts map[int]map[int]int // rank -> iteration -> executions
}

func newExecTracker() *execTracker {
	return &execTracker{counts: map[int]map[int]int{}}
}

func (e *execTracker) record(rank, iter int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	m := e.counts[rank]
	if m == nil {
		m = map[int]int{}
		e.counts[rank] = m
	}
	m[iter]++
}

// trackedApp is iterApp plus per-iteration execution recording.
func trackedApp(iters int, results *sync.Map, tr *execTracker) App {
	return func(env *Env) error {
		state := make([]byte, 16)
		world := env.World()
		for {
			n := env.Loop(state)
			if n >= iters {
				break
			}
			sum, err := AllreduceInt64(world, SumInt64(), int64(n+env.Rank()))
			if err != nil {
				continue
			}
			tr.record(env.Rank(), n)
			acc := int64(binary.LittleEndian.Uint64(state[8:])) + sum[0]
			binary.LittleEndian.PutUint64(state[8:], uint64(acc))
			binary.LittleEndian.PutUint64(state[0:], uint64(n+1))
		}
		results.Store(env.Rank(), int64(binary.LittleEndian.Uint64(state[8:])))
		return env.Finalize()
	}
}

func TestLocalRecoveryNoSurvivorRollback(t *testing.T) {
	const (
		ranks  = 4
		iters  = 10
		failed = 2
	)
	var results sync.Map
	tr := newExecTracker()
	cfg := fastCfg(ranks, 1, 1, 2)
	cfg.Recovery = "local"
	cfg.TraceTo = &syncBuffer{}
	cfg.Faults = &FaultPlan{Script: []Fault{{AfterLoop: 4, Node: -1, Rank: failed}}}
	rep, err := Run(cfg, trackedApp(iters, &results, tr))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Recoveries == 0 {
		t.Fatal("no recovery epoch recorded")
	}

	// Output must be byte-identical to the failure-free answer.
	want := expectedIterSum(ranks, iters)
	count := 0
	results.Range(func(k, v any) bool {
		count++
		if v.(int64) != want {
			t.Errorf("rank %v: %d, want %d", k, v, want)
		}
		return true
	})
	if count != ranks {
		t.Fatalf("results = %d, want %d", count, ranks)
	}

	// Rollback and restore events may appear only on the respawned rank.
	for _, e := range rep.Timeline {
		switch string(e.Kind) {
		case "rollback", "restore":
			if e.Rank != failed {
				t.Errorf("%s event on surviving rank %d: %s", e.Kind, e.Rank, e.Note)
			}
		}
	}

	// Survivors must have executed every iteration exactly once.
	tr.mu.Lock()
	defer tr.mu.Unlock()
	for r := 0; r < ranks; r++ {
		for n := 0; n < iters; n++ {
			c := tr.counts[r][n]
			if r == failed {
				if c < 1 {
					t.Errorf("failed rank %d never completed iteration %d", r, n)
				}
				continue
			}
			if c != 1 {
				t.Errorf("survivor rank %d executed iteration %d %d times", r, n, c)
			}
		}
	}

	// The replay machinery must actually have run.
	kinds := map[string]int{}
	for _, e := range rep.Timeline {
		kinds[string(e.Kind)]++
	}
	if kinds["replay-start"] == 0 || kinds["replay-done"] == 0 {
		t.Errorf("no replay events in timeline: %v", kinds)
	}
	if rep.Stats.ReplayedMsgs == 0 {
		t.Errorf("Stats.ReplayedMsgs = 0, want > 0")
	}
}

func TestLocalRecoveryFailureFreeMatchesGlobal(t *testing.T) {
	// Recovery "local" without failures produces the same answer as the
	// default, and the logs are trimmed at every committed checkpoint so
	// memory stays bounded by one checkpoint interval of traffic.
	const (
		ranks = 4
		iters = 20
	)
	var results sync.Map
	cfg := fastCfg(ranks, 1, 0, 2)
	cfg.Recovery = "local"
	cfg.TraceTo = &syncBuffer{}
	rep, err := Run(cfg, iterApp(iters, &results))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := expectedIterSum(ranks, iters)
	results.Range(func(k, v any) bool {
		if v.(int64) != want {
			t.Errorf("rank %v: %d, want %d", k, v, want)
		}
		return true
	})

	// Every rank logs sends; every committed checkpoint must trim.
	trims := 0
	var logged []int // entries held at each checkpoint, chronological (all ranks)
	for _, e := range rep.Timeline {
		switch string(e.Kind) {
		case "log-trim":
			trims++
		case "msg-logged":
			var entries, bytes, ckpt int
			if _, err := fmt.Sscanf(e.Note, "log holds %d entries (%d B) at checkpoint %d", &entries, &bytes, &ckpt); err == nil {
				logged = append(logged, entries)
			}
		}
	}
	if trims == 0 {
		t.Fatal("no log-trim events: sender logs are never garbage-collected")
	}
	if len(logged) < 4 {
		t.Fatalf("too few msg-logged events: %d", len(logged))
	}
	// Bounded memory: the log at late checkpoints must not have grown
	// past a small multiple of its size at the first few — with trim at
	// every interval it holds at most ~one interval of traffic.
	early := logged[len(logged)/4]
	late := logged[len(logged)-1]
	if early > 0 && late > 3*early+8 {
		t.Errorf("sender log grows without bound: %d entries early vs %d late (all: %v)", early, late, logged)
	}
}

func TestLocalRecoveryTCPTransport(t *testing.T) {
	// The sequenced frame fields survive the wire: same scripted fault
	// as the chan-transport test, over real loopback TCP sockets.
	const (
		ranks  = 4
		iters  = 8
		failed = 1
	)
	var results sync.Map
	cfg := fastCfg(ranks, 1, 1, 2)
	cfg.Recovery = "local"
	cfg.Transport = TCPTransport
	cfg.Faults = &FaultPlan{Script: []Fault{{AfterLoop: 3, Node: -1, Rank: failed}}}
	rep, err := Run(cfg, iterApp(iters, &results))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Recoveries == 0 {
		t.Fatal("no recovery epoch recorded")
	}
	want := expectedIterSum(ranks, iters)
	count := 0
	results.Range(func(k, v any) bool {
		count++
		if v.(int64) != want {
			t.Errorf("rank %v: %d, want %d", k, v, want)
		}
		return true
	})
	if count != ranks {
		t.Fatalf("results = %d, want %d", count, ranks)
	}
}

func TestLocalRecoveryPoissonSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak in -short mode")
	}
	// Repeated random failures under localized recovery must still end
	// in the exact deterministic answer for every seed. Level 2 backstops
	// the runs: under race-detector slowdown two Poisson kills can land
	// before a re-checkpoint protects the first replacement, exceeding
	// level-1 tolerance — the fallback (a global reset in local mode,
	// exercising the log-era path) must still produce the exact answer.
	for _, seed := range []int64{1, 2, 3} {
		var results sync.Map
		cfg := fastCfg(8, 2, 6, 2)
		cfg.Recovery = "local"
		cfg.Timeout = 120 * time.Second
		cfg.MaxEpochs = 64
		cfg.Level2Every = 2
		cfg.Faults = &FaultPlan{MTBF: 250 * time.Millisecond, MaxFailures: 3, Seed: seed}
		app := func(env *Env) error {
			state := make([]byte, 16)
			world := env.World()
			for {
				n := env.Loop(state)
				if n >= 20 {
					break
				}
				sum, err := AllreduceInt64(world, SumInt64(), int64(n+env.Rank()))
				if err != nil {
					continue
				}
				time.Sleep(3 * time.Millisecond)
				acc := int64(binary.LittleEndian.Uint64(state[8:])) + sum[0]
				binary.LittleEndian.PutUint64(state[8:], uint64(acc))
				binary.LittleEndian.PutUint64(state[0:], uint64(n+1))
			}
			results.Store(env.Rank(), int64(binary.LittleEndian.Uint64(state[8:])))
			return env.Finalize()
		}
		rep, err := Run(cfg, app)
		if errors.Is(err, ErrUnrecoverable) {
			// Legitimate clean abort: under heavy load (race detector)
			// failures can destroy an XOR group before the first level-2
			// flush completes. The soak's claim is exactness whenever the
			// job survives, and a clean error — not a hang — when not.
			t.Logf("seed %d: aborted cleanly before level 2 existed: %v", seed, err)
			continue
		}
		if err != nil {
			t.Fatalf("seed %d: %v (injected %d)", seed, err, rep.FailuresInjected)
		}
		want := expectedIterSum(8, 20)
		count := 0
		results.Range(func(k, v any) bool {
			count++
			if v.(int64) != want {
				t.Errorf("seed %d rank %v: %d, want %d", seed, k, v, want)
			}
			return true
		})
		if count != 8 {
			t.Fatalf("seed %d: results = %d", seed, count)
		}
	}
}

func TestRecoveryConfigValidation(t *testing.T) {
	if _, err := Run(Config{Ranks: 2, Recovery: "bogus"}, func(env *Env) error { return env.Finalize() }); err == nil {
		t.Fatal("Run accepted Recovery \"bogus\"")
	}
}
