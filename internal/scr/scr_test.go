package scr

import (
	"bytes"
	"math/rand"
	"testing"

	"fmi/internal/ckpt"
	"fmi/internal/pfs"
)

func fastModel() pfs.Model { return pfs.Model{TimeScale: 0} }

func newTestManager() *Manager {
	return NewManager(fastModel(), pfs.NewShared("pfs", fastModel()))
}

// writeGroupL1 checkpoints a whole XOR group (computing parity
// centrally, as the MPI job would via its communication ring).
func writeGroupL1(t *testing.T, m *Manager, id int, group []int, nodeOf func(int) int, data [][]byte) {
	t.Helper()
	parity, _ := ckpt.EncodeLocal(data)
	for i, r := range group {
		if err := m.WriteL1(nodeOf(r), r, id, data[i], parity[i], nil); err != nil {
			t.Fatal(err)
		}
	}
	m.CommitL1(id, group)
}

func TestL1WriteReadback(t *testing.T) {
	m := newTestManager()
	nodeOf := func(r int) int { return r } // 1 rank per node
	group := []int{0, 1, 2, 3}
	data := [][]byte{{1, 1}, {2, 2}, {3, 3}, {4, 4}}
	writeGroupL1(t, m, 0, group, nodeOf, data)

	if m.LatestL1() != 0 {
		t.Fatalf("LatestL1 = %d", m.LatestL1())
	}
	got, err := m.ReadL1(2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[2]) {
		t.Fatalf("got %v", got)
	}
}

func TestL1RebuildAfterNodeLoss(t *testing.T) {
	m := newTestManager()
	nodeOf := func(r int) int { return r }
	group := []int{0, 1, 2, 3}
	rng := rand.New(rand.NewSource(5))
	data := make([][]byte, 4)
	sizes := make([]int, 4)
	for i := range data {
		data[i] = make([]byte, 100+i*13)
		rng.Read(data[i])
		sizes[i] = len(data[i])
	}
	writeGroupL1(t, m, 0, group, nodeOf, data)

	// Node 1 dies; its tmpfs is wiped. Rank 1 restarts on node 9.
	m.WipeNode(1)
	if m.HasL1(1, 1, 0) {
		t.Fatal("wiped node still has files")
	}
	rebuilt, err := m.RebuildL1(0, group, nodeOf, 1, 9, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rebuilt, data[1]) {
		t.Fatal("rebuild mismatch")
	}
	// Redundancy restored on the new node.
	if !m.HasL1(9, 1, 0) {
		t.Fatal("rebuilt files not written to new node")
	}
}

func TestL1RebuildEveryPosition(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for lost := 0; lost < 5; lost++ {
		m := newTestManager()
		nodeOf := func(r int) int { return r }
		group := []int{0, 1, 2, 3, 4}
		data := make([][]byte, 5)
		sizes := make([]int, 5)
		for i := range data {
			data[i] = make([]byte, 64+rng.Intn(64))
			rng.Read(data[i])
			sizes[i] = len(data[i])
		}
		writeGroupL1(t, m, 3, group, nodeOf, data)
		m.WipeNode(lost)
		rebuilt, err := m.RebuildL1(3, group, nodeOf, lost, 100+lost, sizes)
		if err != nil {
			t.Fatalf("lost=%d: %v", lost, err)
		}
		if !bytes.Equal(rebuilt, data[lost]) {
			t.Fatalf("lost=%d: mismatch", lost)
		}
	}
}

func TestL1TwoLossesUnrecoverable(t *testing.T) {
	m := newTestManager()
	nodeOf := func(r int) int { return r }
	group := []int{0, 1, 2, 3}
	data := [][]byte{{1}, {2}, {3}, {4}}
	writeGroupL1(t, m, 0, group, nodeOf, data)
	m.WipeNode(1)
	m.WipeNode(2)
	if _, err := m.RebuildL1(0, group, nodeOf, 1, 9, []int{1, 1, 1, 1}); err == nil {
		t.Fatal("two losses in one group reported recoverable")
	}
}

func TestL2SurvivesNodeLoss(t *testing.T) {
	m := newTestManager()
	if err := m.WriteL2(3, 7, []byte("global")); err != nil {
		t.Fatal(err)
	}
	m.CommitL2(7)
	m.WipeNode(3) // node loss does not touch the PFS
	got, err := m.ReadL2(3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "global" {
		t.Fatalf("got %q", got)
	}
	if m.LatestL2() != 7 {
		t.Fatalf("LatestL2 = %d", m.LatestL2())
	}
}

func TestLatestLevelsStartEmpty(t *testing.T) {
	m := newTestManager()
	if m.LatestL1() != -1 || m.LatestL2() != -1 {
		t.Fatal("fresh manager reports checkpoints")
	}
}

func TestPolicyLevels(t *testing.T) {
	p := Policy{L2Every: 3}
	cases := map[int]bool{0: true, 1: false, 2: false, 3: true, 6: true, 7: false}
	for id, wantL2 := range cases {
		l1, l2 := p.LevelFor(id)
		if !l1 {
			t.Fatalf("id %d: L1 disabled", id)
		}
		if l2 != wantL2 {
			t.Fatalf("id %d: L2 = %v, want %v", id, l2, wantL2)
		}
	}
	pNo := Policy{}
	if _, l2 := pNo.LevelFor(0); l2 {
		t.Fatal("L2Every=0 should disable level-2")
	}
}

func TestRebuildGroupTooSmall(t *testing.T) {
	m := newTestManager()
	if _, err := m.RebuildL1(0, []int{5}, func(int) int { return 0 }, 0, 1, []int{10}); err == nil {
		t.Fatal("singleton group rebuild should fail")
	}
}
