// Package scr reimplements the core of the Scalable Checkpoint/Restart
// library (SCR, Moody et al. SC'10) that the paper uses as the MPI
// baseline's checkpointer and as FMI's planned multilevel extension:
//
//   - Level-1 checkpoints: each rank's checkpoint plus an XOR parity
//     chain written to *node-local* storage through a file-system
//     interface (tmpfs in the paper's measurements). A single failed
//     node per XOR group is recoverable by rebuilding its files from
//     the group survivors.
//   - Level-2 checkpoints: full checkpoints written to the shared
//     parallel file system; recover anything, slowly.
//
// FMI's own checkpointing (internal/ckpt) uses the same XOR encoding
// but writes straight to memory with memcpy; the file-system pass
// through this package is precisely the overhead Fig 15's "MPI + C"
// series pays relative to "FMI + C".
package scr

import (
	"fmt"
	"sync"

	"fmi/internal/ckpt"
	"fmi/internal/pfs"
)

// Manager coordinates multilevel checkpoints across the job. One
// Manager serves all ranks (it stands in for the per-node SCR daemons
// plus the shared PFS).
type Manager struct {
	mu     sync.Mutex
	local  map[int]*pfs.FS // node id -> node-local storage
	shared *pfs.FS         // parallel file system
	model  pfs.Model       // model for newly created node-local stores

	// latest complete checkpoint ids per level
	l1Complete, l2Complete int
	l1Members              map[int][]int // ckpt id -> world ranks written
}

// NewManager creates a manager with the given node-local storage model
// and shared PFS.
func NewManager(localModel pfs.Model, shared *pfs.FS) *Manager {
	return &Manager{
		local:      make(map[int]*pfs.FS),
		shared:     shared,
		model:      localModel,
		l1Complete: -1,
		l2Complete: -1,
		l1Members:  make(map[int][]int),
	}
}

// NodeFS returns (creating if needed) the node-local storage of a node.
func (m *Manager) NodeFS(node int) *pfs.FS {
	m.mu.Lock()
	defer m.mu.Unlock()
	fs, ok := m.local[node]
	if !ok {
		fs = pfs.New(fmt.Sprintf("tmpfs-node%d", node), m.model)
		m.local[node] = fs
	}
	return fs
}

// Shared returns the parallel file system.
func (m *Manager) Shared() *pfs.FS { return m.shared }

// WipeNode destroys a node's local storage contents (node failure).
func (m *Manager) WipeNode(node int) {
	m.mu.Lock()
	fs := m.local[node]
	m.mu.Unlock()
	if fs != nil {
		fs.Wipe()
	}
}

func l1DataKey(id, rank int) string   { return fmt.Sprintf("scr/l1/%d/rank%d/data", id, rank) }
func l1ParityKey(id, rank int) string { return fmt.Sprintf("scr/l1/%d/rank%d/parity", id, rank) }
func l1MetaKey(id, rank int) string   { return fmt.Sprintf("scr/l1/%d/rank%d/meta", id, rank) }
func l2Key(id, rank int) string       { return fmt.Sprintf("scr/l2/%d/rank%d", id, rank) }

// WriteL1 stores one rank's level-1 checkpoint files on its node:
// the data file, its XOR parity chain, and metadata (the group sizes
// needed for a later rebuild). The caller runs the XOR ring over its
// own communication layer (ckpt.EncodeRing) and passes the result in.
func (m *Manager) WriteL1(node, rank, id int, data, parity []byte, meta []byte) error {
	fs := m.NodeFS(node)
	if err := fs.Write(l1DataKey(id, rank), data); err != nil {
		return err
	}
	if err := fs.Write(l1ParityKey(id, rank), parity); err != nil {
		return err
	}
	return fs.Write(l1MetaKey(id, rank), meta)
}

// CommitL1 marks a level-1 checkpoint id complete once every world
// rank has written (the job calls this after its checkpoint barrier),
// and retires all older level-1 checkpoints — like SCR, only the
// newest complete set is kept on node-local storage.
func (m *Manager) CommitL1(id int, ranks []int) {
	m.mu.Lock()
	if id > m.l1Complete {
		m.l1Complete = id
	}
	m.l1Members[id] = append([]int{}, ranks...)
	var stale []int
	for old := range m.l1Members {
		if old < id {
			stale = append(stale, old)
		}
	}
	locals := make([]*pfs.FS, 0, len(m.local))
	for _, fs := range m.local {
		locals = append(locals, fs)
	}
	m.mu.Unlock()

	for _, old := range stale {
		m.mu.Lock()
		ranksOld := m.l1Members[old]
		delete(m.l1Members, old)
		m.mu.Unlock()
		for _, fs := range locals {
			for _, r := range ranksOld {
				fs.Delete(l1DataKey(old, r))
				fs.Delete(l1ParityKey(old, r))
				fs.Delete(l1MetaKey(old, r))
			}
		}
	}
}

// LatestL1 returns the newest complete level-1 checkpoint id, or -1.
func (m *Manager) LatestL1() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.l1Complete
}

// ReadL1 reads a rank's level-1 data file from its node.
func (m *Manager) ReadL1(node, rank, id int) ([]byte, error) {
	return m.NodeFS(node).Read(l1DataKey(id, rank))
}

// ReadL1Parity reads a rank's stored parity chain.
func (m *Manager) ReadL1Parity(node, rank, id int) ([]byte, error) {
	return m.NodeFS(node).Read(l1ParityKey(id, rank))
}

// ReadL1Meta reads a rank's metadata file.
func (m *Manager) ReadL1Meta(node, rank, id int) ([]byte, error) {
	return m.NodeFS(node).Read(l1MetaKey(id, rank))
}

// WriteL1Meta rewrites a rank's metadata file (after a rebuild).
func (m *Manager) WriteL1Meta(node, rank, id int, meta []byte) error {
	return m.NodeFS(node).Write(l1MetaKey(id, rank), meta)
}

// HasL1 reports whether a rank's level-1 files survive on a node.
func (m *Manager) HasL1(node, rank, id int) bool {
	fs := m.NodeFS(node)
	return fs.Exists(l1DataKey(id, rank)) && fs.Exists(l1ParityKey(id, rank))
}

// RebuildL1 reconstructs the level-1 files of a lost rank from the
// survivors of its XOR group. group lists the member world ranks in
// group order, nodeOf maps rank to the node holding its files, and
// lostIdx is the lost member's index in group. The rebuilt files are
// written to newNode. At most one lost member per group is
// recoverable — two losses return an error (paper §VIII limitation).
func (m *Manager) RebuildL1(id int, group []int, nodeOf func(int) int, lostIdx, newNode int, sizes []int) ([]byte, error) {
	g := len(group)
	if g < 2 {
		return nil, fmt.Errorf("scr: group too small to rebuild (size %d)", g)
	}
	data := make([][]byte, g)
	parity := make([][]byte, g)
	for i, r := range group {
		if i == lostIdx {
			continue
		}
		node := nodeOf(r)
		if !m.HasL1(node, r, id) {
			return nil, fmt.Errorf("scr: two losses in XOR group (ranks %d and %d): level-1 unrecoverable", group[lostIdx], r)
		}
		d, err := m.ReadL1(node, r, id)
		if err != nil {
			return nil, err
		}
		p, err := m.ReadL1Parity(node, r, id)
		if err != nil {
			return nil, err
		}
		data[i], parity[i] = d, p
	}
	maxSize := 0
	for _, s := range sizes {
		if s > maxSize {
			maxSize = s
		}
	}
	chunkLen := ckpt.ChunkLen(maxSize, g)
	rebuilt := ckpt.ReconstructLocal(data, parity, chunkLen, lostIdx, sizes[lostIdx])

	// Restore full redundancy: recompute every chain and rewrite the
	// lost member's files on its new node.
	data[lostIdx] = rebuilt
	allParity, _ := ckpt.EncodeLocal(data)
	lostRank := group[lostIdx]
	if err := m.NodeFS(newNode).Write(l1DataKey(id, lostRank), rebuilt); err != nil {
		return nil, err
	}
	if err := m.NodeFS(newNode).Write(l1ParityKey(id, lostRank), allParity[lostIdx]); err != nil {
		return nil, err
	}
	return rebuilt, nil
}

// WriteL2 stores a rank's full checkpoint on the shared PFS.
func (m *Manager) WriteL2(rank, id int, data []byte) error {
	return m.shared.Write(l2Key(id, rank), data)
}

// CommitL2 marks a level-2 checkpoint complete.
func (m *Manager) CommitL2(id int) {
	m.mu.Lock()
	if id > m.l2Complete {
		m.l2Complete = id
	}
	m.mu.Unlock()
}

// LatestL2 returns the newest complete level-2 id, or -1.
func (m *Manager) LatestL2() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.l2Complete
}

// ReadL2 reads a rank's level-2 checkpoint.
func (m *Manager) ReadL2(rank, id int) ([]byte, error) {
	return m.shared.Read(l2Key(id, rank))
}

// Policy decides which level each checkpoint goes to: every L2Every-th
// checkpoint is additionally flushed to the PFS (SCR's multilevel
// scheduling, simplified).
type Policy struct {
	L2Every int // 0 disables level-2
}

// LevelFor returns (writeL1, writeL2) for the id-th checkpoint.
func (p Policy) LevelFor(id int) (bool, bool) {
	l2 := p.L2Every > 0 && id%p.L2Every == 0
	return true, l2
}
