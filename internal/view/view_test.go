package view

import (
	"math/rand"
	"sync"
	"testing"
)

func TestNewAndNext(t *testing.T) {
	v1 := New(6, 2, 4, nil)
	if v1.Version != 1 || v1.Ranks != 6 {
		t.Fatalf("launch view = %v, want v1 with 6 ranks", v1)
	}
	if len(v1.NodeOf) != 6 || v1.NodeOf[5] != 2 {
		t.Fatalf("block NodeOf = %v", v1.NodeOf)
	}
	if len(v1.Groups) != 6 || len(v1.GIdx) != 6 {
		t.Fatalf("group map not derived: %d groups, %d gidx", len(v1.Groups), len(v1.GIdx))
	}
	v2 := v1.Next(8, 2, 4, append(append([]int{}, v1.NodeOf...), 9, 9))
	if v2.Version != 2 || v2.Ranks != 8 {
		t.Fatalf("next view = %v, want v2 with 8 ranks", v2)
	}
	if v2.NodeOf[6] != 9 || v2.NodeOf[7] != 9 {
		t.Fatalf("grown NodeOf = %v", v2.NodeOf)
	}
	v3 := v2.Next(3, 2, 4, v2.NodeOf[:3])
	if v3.Version != 3 || v3.Ranks != 3 {
		t.Fatalf("shrunk view = %v", v3)
	}
	if !v3.Contains(2) || v3.Contains(3) || v3.Contains(-1) {
		t.Fatalf("Contains wrong on %v", v3)
	}
	// Immutability of the predecessor.
	if v1.Ranks != 6 || v1.Version != 1 {
		t.Fatalf("Next mutated its receiver: %v", v1)
	}
}

func TestHistoryValid(t *testing.T) {
	h := NewHistory()
	for id := 0; id < 4; id++ {
		h.Observe(id, 1, 4)
		h.Observe(id, 2, 6)
		h.Observe(id, 3, 3)
	}
	// A late joiner starts observing at the version it was born into.
	h.Observe(5, 2, 6)
	h.Observe(5, 3, 3)
	if err := h.Validate(); err != nil {
		t.Fatalf("valid history rejected: %v", err)
	}
	seqs := h.Sequences()
	if len(seqs[0]) != 3 || seqs[0][2] != 3 {
		t.Fatalf("sequences = %v", seqs)
	}
}

func TestHistoryRejectsNonMonotonic(t *testing.T) {
	h := NewHistory()
	h.Observe(0, 1, 4)
	h.Observe(0, 3, 6) // gap: skipped version 2
	if err := h.Validate(); err == nil {
		t.Fatal("gap in version sequence not rejected")
	}
	h2 := NewHistory()
	h2.Observe(1, 2, 4)
	h2.Observe(1, 2, 4) // repeat
	if err := h2.Validate(); err == nil {
		t.Fatal("repeated version not rejected")
	}
}

func TestHistoryRejectsSizeDisagreement(t *testing.T) {
	h := NewHistory()
	h.Observe(0, 1, 4)
	h.Observe(1, 1, 5) // same version, different world size
	if err := h.Validate(); err == nil {
		t.Fatal("version/size disagreement not rejected")
	}
}

// TestPropertyChains drives random grow/shrink chains through Next and
// checks the invariants the rest of the stack relies on: versions step
// by one, group maps always cover exactly the view's ranks, and every
// rank's group contains it.
func TestPropertyChains(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		ppn := 1 + rng.Intn(3)
		gs := 2 + rng.Intn(6)
		n := 1 + rng.Intn(12)
		v := New(n, ppn, gs, nil)
		h := NewHistory()
		// A retired-then-regrown rank is a fresh process: give each
		// incarnation its own observer id, as the runtime does.
		incarnation := make(map[int]int)
		prevRanks := 0
		for step := 0; step < 8; step++ {
			for r := prevRanks; r < v.Ranks; r++ {
				incarnation[r]++
			}
			for r := 0; r < v.Ranks; r++ {
				h.Observe(r*1000+incarnation[r], v.Version, v.Ranks)
			}
			prevRanks = v.Ranks
			if len(v.Groups) != v.Ranks || len(v.GIdx) != v.Ranks || len(v.NodeOf) != v.Ranks {
				t.Fatalf("trial %d: maps not sized to view: %v", trial, v)
			}
			for r := 0; r < v.Ranks; r++ {
				g := v.Groups[r]
				if v.GIdx[r] >= len(g) || g[v.GIdx[r]] != r {
					t.Fatalf("trial %d: rank %d not at GIdx in its group %v", trial, r, g)
				}
			}
			next := 1 + rng.Intn(12)
			nv := v.Next(next, ppn, gs, v.NodeOf)
			if nv.Version != v.Version+1 {
				t.Fatalf("trial %d: version %d -> %d", trial, v.Version, nv.Version)
			}
			v = nv
		}
		if err := h.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// TestHistoryConcurrent exercises Observe under contention (the
// runtime records view installs from many rank goroutines).
func TestHistoryConcurrent(t *testing.T) {
	h := NewHistory()
	var wg sync.WaitGroup
	for id := 0; id < 8; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for v := uint64(1); v <= 100; v++ {
				h.Observe(id, v, 8)
			}
		}(id)
	}
	wg.Wait()
	if err := h.Validate(); err != nil {
		t.Fatalf("concurrent observes invalid: %v", err)
	}
}
