// Package view makes group membership a first-class versioned value.
//
// A View is an immutable snapshot of the job's membership: how many
// ranks exist, which node hosts each, and how the ranks are grouped
// for checkpoint encoding. Every subsystem that used to cache a world
// size or a rank array at init time instead holds a *View and swaps it
// atomically at a view-change fence (an epoch boundary where the whole
// job agrees to grow or shrink). Versions are strictly monotonic:
// version v+1 is derived from v by Next, never constructed ad hoc, so
// "same version" always implies "same membership" and a stale version
// stamp on a message, checkpoint, or trace event identifies exactly
// which membership it was produced under.
package view

import (
	"fmt"
	"sync"

	"fmi/internal/ckpt"
)

// View is one immutable membership version. Ranks are dense 0..Ranks-1
// in every view; a shrink retires the top ranks and a grow appends new
// ones, so surviving ranks never renumber (their checkpoints, logs,
// and sequence counters stay valid across the change).
type View struct {
	// Version is the membership version, starting at 1 for the launch
	// view. Strictly monotonic: every committed view change increments
	// it by exactly one.
	Version uint64
	// Ranks is the world size under this view.
	Ranks int
	// NodeOf maps rank -> hosting node id at the moment the view was
	// installed (informational; promotion and respawn move ranks
	// between nodes without a view change).
	NodeOf []int
	// Groups and GIdx are the checkpoint-encoding group map derived
	// from this view's membership: Groups[r] lists the members of r's
	// group, GIdx[r] is r's index within it.
	Groups [][]int
	GIdx   []int
}

// New builds the launch view (version 1) for a world of ranks
// processes placed procsPerNode per node with the given checkpoint
// group size. nodeOf may be nil (block mapping onto node ids 0..n-1).
func New(ranks, procsPerNode, groupSize int, nodeOf []int) *View {
	return build(1, ranks, procsPerNode, groupSize, nodeOf)
}

// Next derives the successor view with a new world size. nodeOf maps
// the new rank space; entries for surviving ranks should carry over
// from the predecessor.
func (v *View) Next(ranks, procsPerNode, groupSize int, nodeOf []int) *View {
	return build(v.Version+1, ranks, procsPerNode, groupSize, nodeOf)
}

func build(version uint64, ranks, procsPerNode, groupSize int, nodeOf []int) *View {
	groups, gidx := ckpt.Groups(ranks, procsPerNode, groupSize)
	no := make([]int, ranks)
	for r := range no {
		if r < len(nodeOf) {
			no[r] = nodeOf[r]
		} else {
			no[r] = r / max(procsPerNode, 1)
		}
	}
	return &View{Version: version, Ranks: ranks, NodeOf: no, Groups: groups, GIdx: gidx}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Contains reports whether rank exists under this view.
func (v *View) Contains(rank int) bool {
	return rank >= 0 && rank < v.Ranks
}

// String renders a compact identity for traces and errors.
func (v *View) String() string {
	return fmt.Sprintf("view v%d (%d ranks)", v.Version, v.Ranks)
}

// observation is one (version, ranks) sighting by one observer.
type observation struct {
	version uint64
	ranks   int
}

// History records the view versions each observer (rank) installs and
// validates the membership safety properties: per-observer versions
// are strictly increasing, every observed sequence is gap-free above
// its first sighting, and one version never maps to two different
// world sizes anywhere in the system. Tests and the runtime's
// property checks feed it from view-change trace events.
type History struct {
	mu  sync.Mutex
	seq map[int][]observation
}

// NewHistory creates an empty history.
func NewHistory() *History {
	return &History{seq: make(map[int][]observation)}
}

// Observe records that observer id installed version with the given
// world size.
func (h *History) Observe(id int, version uint64, ranks int) {
	h.mu.Lock()
	h.seq[id] = append(h.seq[id], observation{version: version, ranks: ranks})
	h.mu.Unlock()
}

// Validate checks the recorded observations: strict per-observer
// monotonicity (+1 steps) and global version/size agreement. It
// returns the first violation found, or nil.
func (h *History) Validate() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	sizeOf := map[uint64]int{}
	for id, obs := range h.seq {
		for i, o := range obs {
			if i > 0 {
				prev := obs[i-1].version
				if o.version != prev+1 {
					return fmt.Errorf("view: observer %d saw version %d after %d (want strictly +1)", id, o.version, prev)
				}
			}
			if want, ok := sizeOf[o.version]; ok && want != o.ranks {
				return fmt.Errorf("view: version %d observed with %d ranks and %d ranks", o.version, want, o.ranks)
			}
			sizeOf[o.version] = o.ranks
		}
	}
	return nil
}

// Sequences returns each observer's observed version sequence (for
// asserting that all ranks saw the same sequence).
func (h *History) Sequences() map[int][]uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[int][]uint64, len(h.seq))
	for id, obs := range h.seq {
		vs := make([]uint64, len(obs))
		for i, o := range obs {
			vs[i] = o.version
		}
		out[id] = vs
	}
	return out
}
