package bufpool

import (
	"strings"
	"sync"
	"testing"
)

func TestClassSizing(t *testing.T) {
	cases := []struct{ n, wantCap int }{
		{1, 64}, {64, 64}, {65, 128}, {128, 128},
		{1000, 1024}, {1 << 20, 1 << 20}, {1<<20 + 1, 1 << 21},
	}
	a := New()
	for _, c := range cases {
		b := a.Get(c.n)
		if len(b) != c.n {
			t.Fatalf("Get(%d): len = %d, want %d", c.n, len(b), c.n)
		}
		if cap(b) != c.wantCap {
			t.Fatalf("Get(%d): cap = %d, want %d", c.n, cap(b), c.wantCap)
		}
		a.Put(b)
	}
	// Outside the pooled span: plain make semantics.
	big := a.Get(1<<maxClassBits + 1)
	if len(big) != 1<<maxClassBits+1 {
		t.Fatalf("oversized Get: len = %d", len(big))
	}
	a.Put(big) // silently dropped
	if b := a.Get(0); b != nil {
		t.Fatalf("Get(0) = %v, want nil", b)
	}
}

func TestReuse(t *testing.T) {
	a := New()
	b := a.Get(100)
	b[0] = 42
	a.Put(b)
	// The very next same-class Get on the same goroutine should hit the
	// per-P pool cache and return the same backing array.
	c := a.Get(100)
	if &b[0] != &c[0] {
		t.Skip("sync.Pool did not reuse (GC ran); not a correctness failure")
	}
	if got := a.Stats(); got.Gets != 2 || got.Puts != 1 {
		t.Fatalf("stats = %+v, want 2 gets / 1 put", got)
	}
}

func TestNilArena(t *testing.T) {
	var a *Arena
	b := a.Get(50)
	if len(b) != 50 {
		t.Fatalf("nil arena Get(50): len = %d", len(b))
	}
	a.Put(b)
	a.Detach(b)
	if s := a.Stats(); s != (Stats{}) {
		t.Fatalf("nil arena stats = %+v", s)
	}
	if a.Outstanding() != 0 || a.Leaks() != nil {
		t.Fatal("nil arena reports leaks")
	}
}

func TestForeignPut(t *testing.T) {
	a := New()
	// Adopt a make()'d buffer: its capacity floors into class 128.
	a.Put(make([]byte, 0, 200))
	b := a.Get(128)
	if cap(b) < 128 {
		t.Fatalf("cap = %d", cap(b))
	}
	a.Put(make([]byte, 10)) // below min class: dropped
	if s := a.Stats(); s.Puts != 1 {
		t.Fatalf("puts = %d, want 1 (tiny buffer must not be adopted)", s.Puts)
	}
}

// TestConcurrentGetPut exercises the arena from many goroutines; run
// under -race this is the pool's data-race regression test.
func TestConcurrentGetPut(t *testing.T) {
	for _, a := range []*Arena{New(), NewDebug()} {
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(seed int) {
				defer wg.Done()
				sizes := []int{1, 64, 300, 4096, 70000}
				for i := 0; i < 500; i++ {
					n := sizes[(seed+i)%len(sizes)]
					b := a.Get(n)
					for j := range b {
						b[j] = byte(seed)
					}
					a.Put(b)
				}
			}(g)
		}
		wg.Wait()
		if got := a.Outstanding(); got != 0 {
			t.Fatalf("outstanding after balanced get/put = %d", got)
		}
	}
}

// TestLeakDetector is the contract the transport tests rely on: a
// pooled frame dropped without Release shows up in Leaks with the
// acquisition site, and releasing or detaching clears it.
func TestLeakDetector(t *testing.T) {
	a := NewDebug()
	leaked := a.Get(256) // this one is never released
	kept := a.Get(256)
	a.Detach(kept) // ownership left the arena: not a leak
	ok := a.Get(256)
	a.Put(ok)

	if got := a.Outstanding(); got != 1 {
		t.Fatalf("outstanding = %d, want 1", got)
	}
	leaks := a.Leaks()
	if len(leaks) != 1 {
		t.Fatalf("leaks = %v, want exactly the dropped buffer", leaks)
	}
	if !strings.Contains(leaks[0].Site, "bufpool_test.go") {
		t.Fatalf("leak site = %q, want this test file", leaks[0].Site)
	}
	a.Put(leaked)
	if got := a.Outstanding(); got != 0 {
		t.Fatalf("outstanding after late release = %d", got)
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	a := NewDebug()
	b := a.Get(64)
	a.Put(b)
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("double Put did not panic in debug mode")
		}
	}()
	a.Put(b)
}

// TestGetPutAllocs pins the steady-state allocation behaviour: once
// the class is warm, Get+Put must not allocate. sync.Pool's per-P
// caches can be cleared by a concurrent GC, so allow a tiny epsilon
// rather than flaking.
func TestGetPutAllocs(t *testing.T) {
	a := New()
	a.Put(a.Get(4096)) // warm the class
	avg := testing.AllocsPerRun(1000, func() {
		b := a.Get(4096)
		a.Put(b)
	})
	if avg > 0.1 {
		t.Fatalf("Get+Put allocs/op = %v, want ~0", avg)
	}
}

func BenchmarkGetPut(b *testing.B) {
	a := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := a.Get(4096)
		a.Put(buf)
	}
}
