// Package bufpool provides the size-classed buffer arena behind the
// runtime's zero-allocation hot paths: transport frame copies,
// collective packing, and checkpoint capture/parity buffers all draw
// from one shared Arena instead of calling make per message.
//
// The design follows the fasthttp/bytebufferpool discipline: buffers
// live in power-of-two size classes, each backed by a sync.Pool, and
// Get/Put recycle them across the whole job (every endpoint of a
// network shares the network's arena, so a frame released by its
// receiver is immediately reusable by any sender).
//
// Ownership contract. A buffer returned by Get is owned by the caller
// until it is handed off or released, and its contents are
// UNINITIALIZED — callers must overwrite the full length before
// reading. Exactly one of the following must eventually happen:
//
//   - Put(buf): the buffer returns to the arena and may be reused
//     immediately. The caller must not touch it afterwards.
//   - Detach(buf): ownership permanently leaves the arena economy
//     (e.g. a payload surfaced to application code that may retain it
//     forever). The buffer is garbage-collected normally.
//
// Put also accepts foreign buffers (allocated by make elsewhere) as
// long as the caller owns them exclusively: they are adopted into the
// class their capacity fits. Never Put a sub-slice that aliases
// retained memory.
//
// A nil *Arena is valid and disables pooling: Get degrades to make,
// Put and Detach are no-ops. This is how fmi.Config.Pooling = off is
// implemented — one code path, two allocation behaviours.
//
// Debug mode (NewDebug) trades the sync.Pool backing for explicit
// free lists plus an outstanding-buffer table keyed by slice base
// pointer: every Get records its call site, Put/Detach clear it, a
// second Put of a pooled buffer panics (double release), and Leaks
// reports every buffer acquired but neither released nor detached —
// the harness behind the transport leak tests.
package bufpool

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

const (
	// minClassBits..maxClassBits span 64 B to 64 MiB; requests outside
	// the span fall back to plain make (Put ignores them).
	minClassBits = 6
	maxClassBits = 26
	numClasses   = maxClassBits - minClassBits + 1
)

// classFor returns the smallest class whose buffers hold n bytes, or
// -1 when n is outside the pooled span.
func classFor(n int) int {
	if n <= 0 || n > 1<<maxClassBits {
		return -1
	}
	c := 0
	for 1<<(minClassBits+c) < n {
		c++
	}
	return c
}

// classSize returns the buffer capacity of class c.
func classSize(c int) int { return 1 << (minClassBits + c) }

// putClassFor returns the largest class whose size fits within cap
// (a buffer may serve any Get up to its class size), or -1.
func putClassFor(capacity int) int {
	if capacity < 1<<minClassBits {
		return -1
	}
	c := numClasses - 1
	for classSize(c) > capacity {
		c--
	}
	return c
}

// wrapper boxes a slice header so sync.Pool traffics only in pointers
// (interface conversion of a pointer does not allocate; a bare []byte
// would box on every Put and defeat the zero-alloc goal).
type wrapper struct{ b []byte }

var wrapperPool = sync.Pool{New: func() any { return new(wrapper) }}

// Stats are the arena's lifetime counters.
type Stats struct {
	Gets   uint64 // Get calls served (pooled or not)
	Puts   uint64 // buffers returned to the arena
	Misses uint64 // Gets that had to allocate (empty class or unpoolable size)
}

// Leak describes one outstanding debug-mode buffer.
type Leak struct {
	Site string // file:line of the Get call
}

// Arena is a size-classed buffer pool. The zero value is NOT ready;
// use New or NewDebug. A nil *Arena disables pooling (see package
// comment).
type Arena struct {
	classes [numClasses]sync.Pool

	gets, puts, misses atomic.Uint64

	dbg *debugState // non-nil in debug mode
}

type debugState struct {
	mu          sync.Mutex
	free        [numClasses][][]byte
	outstanding map[*byte]string // base pointer -> Get site
	pooled      map[*byte]bool   // base pointer is currently in a free list
}

// New returns a production arena backed by sync.Pool classes.
func New() *Arena { return &Arena{} }

// NewDebug returns an arena with leak tracking: buffers are strongly
// referenced (no sync.Pool, so the GC never silently drops one) and
// every Get is charged to its call site until Put or Detach.
func NewDebug() *Arena {
	return &Arena{dbg: &debugState{
		outstanding: make(map[*byte]string),
		pooled:      make(map[*byte]bool),
	}}
}

// Get returns a buffer of length n with capacity at least n. The
// contents are uninitialized. On a nil arena (pooling disabled) it is
// exactly make([]byte, n).
func (a *Arena) Get(n int) []byte {
	if a == nil {
		return make([]byte, n)
	}
	if n <= 0 {
		return nil
	}
	a.gets.Add(1)
	c := classFor(n)
	if c < 0 {
		a.misses.Add(1)
		return make([]byte, n)
	}
	if a.dbg != nil {
		return a.dbg.get(a, c, n)
	}
	if w, _ := a.classes[c].Get().(*wrapper); w != nil {
		b := w.b
		w.b = nil
		wrapperPool.Put(w)
		return b[:n]
	}
	a.misses.Add(1)
	return make([]byte, n, classSize(c))
}

// Put returns buf to the arena for reuse. The caller must own buf
// exclusively (no retained aliases anywhere) and must not use it
// afterwards. Buffers too small or too large to pool, and calls on a
// nil arena, are silently dropped to the GC.
func (a *Arena) Put(buf []byte) {
	if a == nil || cap(buf) == 0 {
		return
	}
	c := putClassFor(cap(buf))
	if c < 0 {
		return
	}
	a.puts.Add(1)
	buf = buf[:cap(buf)]
	if a.dbg != nil {
		a.dbg.put(buf, c)
		return
	}
	w := wrapperPool.Get().(*wrapper)
	w.b = buf
	a.classes[c].Put(w)
}

// Detach removes buf from leak tracking without pooling it: ownership
// has permanently left the arena economy (a payload handed to code
// that may retain it indefinitely). No-op outside debug mode.
func (a *Arena) Detach(buf []byte) {
	if a == nil || a.dbg == nil || cap(buf) == 0 {
		return
	}
	d := a.dbg
	d.mu.Lock()
	delete(d.outstanding, &buf[:1][0])
	d.mu.Unlock()
}

// Stats returns the lifetime counters.
func (a *Arena) Stats() Stats {
	if a == nil {
		return Stats{}
	}
	return Stats{Gets: a.gets.Load(), Puts: a.puts.Load(), Misses: a.misses.Load()}
}

// Outstanding returns how many debug-mode buffers have been acquired
// but neither released nor detached (0 outside debug mode).
func (a *Arena) Outstanding() int {
	if a == nil || a.dbg == nil {
		return 0
	}
	a.dbg.mu.Lock()
	defer a.dbg.mu.Unlock()
	return len(a.dbg.outstanding)
}

// Leaks reports every outstanding debug-mode buffer with the call
// site that acquired it, sorted for stable test output.
func (a *Arena) Leaks() []Leak {
	if a == nil || a.dbg == nil {
		return nil
	}
	a.dbg.mu.Lock()
	defer a.dbg.mu.Unlock()
	var out []Leak
	for _, site := range a.dbg.outstanding {
		out = append(out, Leak{Site: site})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

func (d *debugState) get(a *Arena, c, n int) []byte {
	site := "unknown"
	if _, file, line, ok := runtime.Caller(2); ok {
		site = fmt.Sprintf("%s:%d", file, line)
	}
	d.mu.Lock()
	var b []byte
	if fl := d.free[c]; len(fl) > 0 {
		b = fl[len(fl)-1]
		d.free[c] = fl[:len(fl)-1]
	} else {
		a.misses.Add(1)
		b = make([]byte, classSize(c))
	}
	base := &b[0]
	delete(d.pooled, base)
	d.outstanding[base] = site
	d.mu.Unlock()
	return b[:n]
}

func (d *debugState) put(buf []byte, c int) {
	base := &buf[0]
	d.mu.Lock()
	if d.pooled[base] {
		d.mu.Unlock()
		panic(fmt.Sprintf("bufpool: double release of %d-byte buffer (acquired at %s)",
			cap(buf), d.outstanding[base]))
	}
	delete(d.outstanding, base)
	d.pooled[base] = true
	d.free[c] = append(d.free[c], buf)
	d.mu.Unlock()
}
