package himeno

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fmi/internal/core"
	"fmi/internal/runtime"
	"fmi/internal/transport"
)

func TestSerialConverges(t *testing.T) {
	s, err := New(0, 1, 17, 17, 17)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for it := 0; it < 20; it++ {
		g := s.Jacobi()
		if g <= 0 {
			t.Fatalf("iter %d: gosa = %g", it, g)
		}
		if g >= prev {
			t.Fatalf("iter %d: residual did not decrease (%g -> %g)", it, prev, g)
		}
		prev = g
	}
}

func TestDecompositionCoversGrid(t *testing.T) {
	const nx = 34
	for _, n := range []int{1, 2, 3, 5, 8} {
		total := 0
		firsts := map[int]bool{}
		for r := 0; r < n; r++ {
			s, err := New(r, n, nx, 9, 9)
			if err != nil {
				t.Fatal(err)
			}
			total += s.Rows()
			if firsts[s.firstGlob] {
				t.Fatalf("n=%d: duplicate slab start", n)
			}
			firsts[s.firstGlob] = true
		}
		if total != nx-2 {
			t.Fatalf("n=%d: slabs cover %d planes, want %d", n, total, nx-2)
		}
	}
}

func TestTooManyRanks(t *testing.T) {
	if _, err := New(0, 20, 10, 9, 9); err == nil {
		t.Fatal("expected error when ranks exceed interior planes")
	}
}

func TestStateAliasesGrid(t *testing.T) {
	s, _ := New(0, 1, 10, 8, 8)
	b := s.State()
	if len(b) != 4*len(s.p) {
		t.Fatalf("state bytes = %d", len(b))
	}
	// Writing through the byte view must be visible in the floats.
	s.p[0] = 0
	b[0], b[1], b[2], b[3] = 0, 0, 0x80, 0x3f // float32(1.0) little-endian
	if s.p[0] != 1.0 {
		t.Fatalf("aliasing broken: p[0] = %v", s.p[0])
	}
}

// runParallel executes iters Himeno steps over n FMI ranks and
// returns the per-iteration global residuals (from rank 0).
func runParallel(t *testing.T, n, nx, ny, nz, iters int) []float64 {
	t.Helper()
	var mu sync.Mutex
	var residuals []float64
	_, err := runtime.Run(runtime.Config{
		Ranks: n, ProcsPerNode: 1, Interval: 1 << 30,
		Network: transport.NewChanNetwork(transport.Options{}),
		Timeout: 60 * time.Second,
	}, func(p *core.Proc) error {
		s, err := New(p.Rank(), n, nx, ny, nz)
		if err != nil {
			return err
		}
		for it := 0; it < iters; it++ {
			g, err := s.Step(p.World())
			if err != nil {
				return err
			}
			if p.Rank() == 0 {
				mu.Lock()
				residuals = append(residuals, g)
				mu.Unlock()
			}
		}
		return p.Finalize()
	})
	if err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	return residuals
}

func TestParallelMatchesSerial(t *testing.T) {
	const nx, ny, nz, iters = 18, 11, 11, 8
	// Serial residuals.
	s, _ := New(0, 1, nx, ny, nz)
	var serial []float64
	for it := 0; it < iters; it++ {
		serial = append(serial, s.Jacobi())
	}
	for _, n := range []int{2, 4} {
		par := runParallel(t, n, nx, ny, nz, iters)
		if len(par) != iters {
			t.Fatalf("n=%d: got %d residuals", n, len(par))
		}
		for it := range serial {
			rel := math.Abs(par[it]-serial[it]) / serial[it]
			if rel > 1e-5 {
				t.Fatalf("n=%d iter %d: parallel gosa %g vs serial %g (rel %g)", n, it, par[it], serial[it], rel)
			}
		}
	}
}

func TestFlopsAccounting(t *testing.T) {
	s, _ := New(0, 1, 10, 8, 8)
	want := 8 * 6 * 6 // rows * (ny-2) * (nz-2)
	if got := s.InteriorPoints(); got != want {
		t.Fatalf("InteriorPoints = %d, want %d", got, want)
	}
	if FlopsPerPoint != 34 {
		t.Fatal("canonical Himeno flop count changed")
	}
}

func TestResetRestoresInitialCondition(t *testing.T) {
	s, _ := New(0, 1, 10, 8, 8)
	first := append([]float32{}, s.p...)
	s.Jacobi()
	s.Reset()
	for i := range first {
		if s.p[i] != first[i] {
			t.Fatal("Reset did not restore the initial grid")
		}
	}
}

func TestHimenoThroughFailure(t *testing.T) {
	// The paper's experiment in miniature: run Himeno under FMI with a
	// failure and verify the residual sequence is exactly what a
	// failure-free run produces.
	const n, nx, ny, nz, iters = 4, 18, 11, 11, 10

	failFree := runParallel(t, n, nx, ny, nz, iters)

	var mu sync.Mutex
	got := map[int]float64{} // iteration -> last residual computed for it
	app := func(p *core.Proc) error {
		s, err := New(p.Rank(), n, nx, ny, nz)
		if err != nil {
			return err
		}
		for {
			it := p.Loop([][]byte{s.State()})
			if it >= iters {
				break
			}
			g, err := s.Step(p.World())
			if err != nil {
				continue
			}
			if p.Rank() == 0 {
				mu.Lock()
				got[it] = g
				mu.Unlock()
			}
		}
		return p.Finalize()
	}
	var jref atomic.Pointer[runtime.Job]
	cfgClu := runtime.Config{
		Ranks: n, ProcsPerNode: 1, SpareNodes: 1, Interval: 2, GroupSize: 4,
		Network: transport.NewChanNetwork(transport.Options{DetectDelay: 2 * time.Millisecond, PropDelay: time.Millisecond}),
		Timeout: 60 * time.Second,
	}
	// Inject exactly one failure when loop 5 first completes.
	var fireOnce sync.Once
	cfgClu.OnLoop = func(rank, loopID int) {
		if loopID == 5 && rank == 0 {
			fireOnce.Do(func() {
				if j := jref.Load(); j != nil {
					if nd := j.NodeOfRank(2); nd != nil {
						go nd.Fail()
					}
				}
			})
		}
	}
	j, err := runtime.Launch(cfgClu, app)
	if err != nil {
		t.Fatal(err)
	}
	jref.Store(j)
	if _, err := j.Wait(); err != nil {
		t.Fatalf("run with failure: %v", err)
	}
	for it := 0; it < iters; it++ {
		rel := math.Abs(got[it]-failFree[it]) / failFree[it]
		if rel > 1e-5 {
			t.Fatalf("iter %d: residual %g differs from failure-free %g", it, got[it], failFree[it])
		}
	}
}

func BenchmarkJacobiSweep(b *testing.B) {
	s, _ := New(0, 1, 65, 65, 65)
	pts := s.InteriorPoints()
	b.SetBytes(int64(pts * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Jacobi()
	}
	b.ReportMetric(float64(pts*FlopsPerPoint)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
}
