package himeno

import "unsafe"

// f32bytes reinterprets a float32 slice as its underlying bytes with
// no copy, so the pressure grid itself can be registered as an FMI
// checkpoint segment: Loop's restore memcpy writes straight back into
// the grid. This is the only use of unsafe in the repository and
// relies solely on the layout guarantee that a []float32's backing
// array is 4·len contiguous bytes.
func f32bytes(v []float32) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 4*len(v))
}
