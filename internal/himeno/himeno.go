// Package himeno implements the Himeno benchmark used in the paper's
// application study (§VI-B): a 19-point Jacobi stencil solving the
// pressure Poisson equation on a 3-D grid with float32 arithmetic —
// "a stencil application in which each grid point is iteratively
// updated using only neighbor points", with point-to-point halo
// exchanges and one Allreduce (the residual) per iteration.
//
// The grid is decomposed in 1-D slabs along the first axis; each rank
// holds its slab plus one ghost plane on each side. The pressure array
// doubles as the rank's checkpoint segment (exposed as raw bytes), so
// FMI's Loop can capture and restore it without copies beyond its own
// memcpy.
package himeno

import (
	"fmt"
	"math"

	"fmi/internal/core"
)

// Standard himenobmt coefficients: a0..a2=1, a3=1/6, b*=0 (the grid is
// uniform), c*=1, bnd=1, wrk1=0.
const (
	a0, a1, a2 float32 = 1, 1, 1
	a3         float32 = 1.0 / 6.0
	c0, c1, c2 float32 = 1, 1, 1
	omega      float32 = 0.8
)

// FlopsPerPoint is the canonical Himeno operation count per interior
// grid point per iteration.
const FlopsPerPoint = 34

// Comm is the communication surface the solver needs; both the FMI
// communicator and the baseline MPI process satisfy it.
type Comm interface {
	Sendrecv(dst, sendTag int, data []byte, src, recvTag int) ([]byte, error)
	Allreduce(data []byte, op core.Op) ([]byte, error)
}

// Solver is one rank's slab of the Himeno grid.
type Solver struct {
	rank, n    int
	gnx        int // global first-axis size
	ny, nz     int
	rows       int // interior rows owned by this rank
	lnx        int // local allocation: rows + 2 ghost/boundary planes
	firstGlob  int // global index of local row 1
	p          []float32
	wrk        []float32
	planeBytes int
}

// New creates the solver for rank of n over a global nx×ny×nz grid.
// nx-2 interior planes are distributed as evenly as possible.
func New(rank, n, nx, ny, nz int) (*Solver, error) {
	interior := nx - 2
	if interior < n {
		return nil, fmt.Errorf("himeno: %d interior planes cannot feed %d ranks", interior, n)
	}
	rows := interior / n
	extra := interior % n
	first := 1 + rank*rows + minInt(rank, extra)
	if rank < extra {
		rows++
	}
	s := &Solver{
		rank: rank, n: n, gnx: nx, ny: ny, nz: nz,
		rows: rows, lnx: rows + 2, firstGlob: first,
		planeBytes: ny * nz * 4,
	}
	s.p = make([]float32, s.lnx*ny*nz)
	s.wrk = make([]float32, s.lnx*ny*nz)
	s.Reset()
	return s, nil
}

// Reset installs the standard initial condition p = (k/(nz-1))²
// (himenobmt initialises along the third axis).
func (s *Solver) Reset() {
	for i := 0; i < s.lnx; i++ {
		for j := 0; j < s.ny; j++ {
			for k := 0; k < s.nz; k++ {
				v := float32(k) / float32(s.nz-1)
				s.p[s.idx(i, j, k)] = v * v
			}
		}
	}
}

func (s *Solver) idx(i, j, k int) int { return (i*s.ny+j)*s.nz + k }

// Rows returns the number of interior planes this rank owns.
func (s *Solver) Rows() int { return s.rows }

// InteriorPoints returns this rank's interior point count (for FLOPS
// accounting). Boundary planes in j and k do not count.
func (s *Solver) InteriorPoints() int {
	rows := s.rows
	// Global boundary planes at i=0 and i=gnx-1 are never updated;
	// they live inside the first and last ranks' ghost planes already.
	return rows * (s.ny - 2) * (s.nz - 2)
}

// State exposes the pressure grid as the checkpoint segment. The
// returned slice aliases the solver's float32 storage: restoring bytes
// into it restores the grid.
func (s *Solver) State() []byte { return f32bytes(s.p) }

// Exchange swaps ghost planes with the neighbouring ranks; tags 101
// (upward) and 102 (downward).
func (s *Solver) Exchange(c Comm) error {
	up := s.rank + 1
	down := s.rank - 1
	// Send the top interior plane up, receive the bottom ghost from
	// below (ranks at the edges skip the missing side).
	if up < s.n {
		top := s.planeSlice(s.rows)
		if down >= 0 {
			got, err := c.Sendrecv(up, 101, top, down, 101)
			if err != nil {
				return err
			}
			copy(s.planeSlice(0), got)
		} else {
			if err := sendOnly(c, up, 101, top); err != nil {
				return err
			}
		}
	} else if down >= 0 {
		got, _, err := recvOnly(c, down, 101)
		if err != nil {
			return err
		}
		copy(s.planeSlice(0), got)
	}
	// Send the bottom interior plane down, receive the top ghost from
	// above.
	if down >= 0 {
		bottom := s.planeSlice(1)
		if up < s.n {
			got, err := c.Sendrecv(down, 102, bottom, up, 102)
			if err != nil {
				return err
			}
			copy(s.planeSlice(s.rows+1), got)
		} else {
			if err := sendOnly(c, down, 102, bottom); err != nil {
				return err
			}
		}
	} else if up < s.n {
		got, _, err := recvOnly(c, up, 102)
		if err != nil {
			return err
		}
		copy(s.planeSlice(s.rows+1), got)
	}
	return nil
}

// planeSlice returns plane i of p as bytes (aliasing storage).
func (s *Solver) planeSlice(i int) []byte {
	all := f32bytes(s.p)
	return all[i*s.planeBytes : (i+1)*s.planeBytes]
}

// senders/receivers over the minimal Comm interface.
type sender interface {
	Send(dst, tag int, data []byte) error
}
type receiver interface {
	Recv(src, tag int) ([]byte, int, error)
}

func sendOnly(c Comm, dst, tag int, data []byte) error {
	s, ok := c.(sender)
	if !ok {
		return fmt.Errorf("himeno: comm cannot Send")
	}
	return s.Send(dst, tag, data)
}

func recvOnly(c Comm, src, tag int) ([]byte, int, error) {
	r, ok := c.(receiver)
	if !ok {
		return nil, -1, fmt.Errorf("himeno: comm cannot Recv")
	}
	return r.Recv(src, tag)
}

// Jacobi performs one sweep over the local slab and returns the local
// residual contribution (gosa). Boundary handling follows himenobmt:
// only interior points (in global terms) are updated.
func (s *Solver) Jacobi() float64 {
	ny, nz := s.ny, s.nz
	var gosa float64
	lo, hi := 1, s.rows+1
	// The global boundary planes coincide with the edge ranks' ghost
	// planes and stay fixed; interior ranks use real ghost data.
	for i := lo; i < hi; i++ {
		for j := 1; j < ny-1; j++ {
			base := s.idx(i, j, 0)
			up := s.idx(i+1, j, 0)
			dn := s.idx(i-1, j, 0)
			jp := s.idx(i, j+1, 0)
			jm := s.idx(i, j-1, 0)
			for k := 1; k < nz-1; k++ {
				s0 := a0*s.p[up+k] + a1*s.p[jp+k] + a2*s.p[base+k+1] +
					c0*s.p[dn+k] + c1*s.p[jm+k] + c2*s.p[base+k-1]
				ss := (s0*a3 - s.p[base+k]) // bnd = 1
				gosa += float64(ss) * float64(ss)
				s.wrk[base+k] = s.p[base+k] + omega*ss
			}
		}
	}
	// Copy the sweep back (interior only).
	for i := lo; i < hi; i++ {
		for j := 1; j < ny-1; j++ {
			base := s.idx(i, j, 0)
			copy(s.p[base+1:base+nz-1], s.wrk[base+1:base+nz-1])
		}
	}
	return gosa
}

// Step runs one full iteration: halo exchange, sweep, global residual
// Allreduce. It returns the global gosa.
func (s *Solver) Step(c Comm) (float64, error) {
	if err := s.Exchange(c); err != nil {
		return 0, err
	}
	local := s.Jacobi()
	var buf [8]byte
	putF64(buf[:], local)
	out, err := c.Allreduce(buf[:], sumF64Op)
	if err != nil {
		return 0, err
	}
	return getF64(out), nil
}

func sumF64Op(acc, src []byte) {
	putF64(acc, getF64(acc)+getF64(src))
}

func putF64(b []byte, v float64) {
	u := math.Float64bits(v)
	for i := 0; i < 8; i++ {
		b[i] = byte(u >> (8 * i))
	}
}

func getF64(b []byte) float64 {
	var u uint64
	for i := 0; i < 8; i++ {
		u |= uint64(b[i]) << (8 * i)
	}
	return math.Float64frombits(u)
}

// RunSerial executes the benchmark single-rank (reference for tests).
func RunSerial(nx, ny, nz, iters int) (float64, error) {
	s, err := New(0, 1, nx, ny, nz)
	if err != nil {
		return 0, err
	}
	var gosa float64
	for it := 0; it < iters; it++ {
		gosa = s.Jacobi()
	}
	return gosa, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
