package trace

import (
	"bufio"
	"encoding/json"
	"io"
	"strconv"
	"time"
)

// jsonlEvent is the machine-readable form of an Event: one JSON object
// per line. Times are nanoseconds relative to the recorder's start, so
// two timelines of the same run shape diff cleanly regardless of
// wall-clock.
type jsonlEvent struct {
	TNs   int64  `json:"t_ns"`
	Kind  Kind   `json:"kind"`
	Rank  int    `json:"rank"`
	Epoch uint32 `json:"epoch"`
	View  uint64 `json:"view,omitempty"`
	Note  string `json:"note,omitempty"`
}

// AppendJSONL appends one event to dst in the exact line format
// WriteJSONL emits (a JSON object plus trailing newline, timestamp in
// nanoseconds relative to start) and returns the extended slice. It
// allocates nothing beyond dst's growth, which makes it usable from
// the serving layer's pooled-buffer hot path; ParseJSONL reads the
// result back.
func AppendJSONL(dst []byte, start time.Time, e Event) []byte {
	dst = append(dst, `{"t_ns":`...)
	dst = strconv.AppendInt(dst, e.At.Sub(start).Nanoseconds(), 10)
	dst = append(dst, `,"kind":`...)
	dst = appendJSONString(dst, string(e.Kind))
	dst = append(dst, `,"rank":`...)
	dst = strconv.AppendInt(dst, int64(e.Rank), 10)
	dst = append(dst, `,"epoch":`...)
	dst = strconv.AppendUint(dst, uint64(e.Epoch), 10)
	if e.View != 0 {
		dst = append(dst, `,"view":`...)
		dst = strconv.AppendUint(dst, e.View, 10)
	}
	if e.Note != "" {
		dst = append(dst, `,"note":`...)
		dst = appendJSONString(dst, e.Note)
	}
	dst = append(dst, '}', '\n')
	return dst
}

// appendJSONString appends s as a JSON string literal. Quotes,
// backslashes, and control bytes are escaped; multi-byte UTF-8 passes
// through untouched (JSON strings are UTF-8).
func appendJSONString(dst []byte, s string) []byte {
	const hex = "0123456789abcdef"
	dst = append(dst, '"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '"' || c == '\\':
			dst = append(dst, '\\', c)
		case c == '\n':
			dst = append(dst, '\\', 'n')
		case c == '\t':
			dst = append(dst, '\\', 't')
		case c < 0x20:
			dst = append(dst, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		default:
			dst = append(dst, c)
		}
	}
	return append(dst, '"')
}

// WriteJSONL writes the time-ordered timeline as JSON Lines, one event
// per line, with timestamps relative to the recorder's start.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	start := r.start
	r.mu.Unlock()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range r.Events() {
		je := jsonlEvent{
			TNs:   e.At.Sub(start).Nanoseconds(),
			Kind:  e.Kind,
			Rank:  e.Rank,
			Epoch: e.Epoch,
			View:  e.View,
			Note:  e.Note,
		}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseJSONL reads a timeline written by WriteJSONL back into events.
// The returned events carry their relative offsets re-applied to a
// zero base time, preserving ordering and spacing.
func ParseJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	base := time.Time{}
	dec := json.NewDecoder(r)
	for {
		var je jsonlEvent
		if err := dec.Decode(&je); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, err
		}
		out = append(out, Event{
			At:    base.Add(time.Duration(je.TNs)),
			Kind:  je.Kind,
			Rank:  je.Rank,
			Epoch: je.Epoch,
			View:  je.View,
			Note:  je.Note,
		})
	}
}
