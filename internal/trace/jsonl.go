package trace

import (
	"bufio"
	"encoding/json"
	"io"
	"time"
)

// jsonlEvent is the machine-readable form of an Event: one JSON object
// per line. Times are nanoseconds relative to the recorder's start, so
// two timelines of the same run shape diff cleanly regardless of
// wall-clock.
type jsonlEvent struct {
	TNs   int64  `json:"t_ns"`
	Kind  Kind   `json:"kind"`
	Rank  int    `json:"rank"`
	Epoch uint32 `json:"epoch"`
	Note  string `json:"note,omitempty"`
}

// WriteJSONL writes the time-ordered timeline as JSON Lines, one event
// per line, with timestamps relative to the recorder's start.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	start := r.start
	r.mu.Unlock()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range r.Events() {
		je := jsonlEvent{
			TNs:   e.At.Sub(start).Nanoseconds(),
			Kind:  e.Kind,
			Rank:  e.Rank,
			Epoch: e.Epoch,
			Note:  e.Note,
		}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseJSONL reads a timeline written by WriteJSONL back into events.
// The returned events carry their relative offsets re-applied to a
// zero base time, preserving ordering and spacing.
func ParseJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	base := time.Time{}
	dec := json.NewDecoder(r)
	for {
		var je jsonlEvent
		if err := dec.Decode(&je); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, err
		}
		out = append(out, Event{
			At:    base.Add(time.Duration(je.TNs)),
			Kind:  je.Kind,
			Rank:  je.Rank,
			Epoch: je.Epoch,
			Note:  je.Note,
		})
	}
}
