// Package trace records the runtime's lifecycle events — failures,
// epoch bumps, state transitions, checkpoints, restores — as a
// timeline that can be printed for debugging or asserted on by tests.
// The paper's figures describe *aggregate* behaviour; the trace makes
// a single run's recovery choreography visible (which node died, when
// every rank was notified, how long H1/H2 took, where the job rolled
// back to).
package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Kind classifies an event.
type Kind string

// Event kinds emitted by the runtime.
const (
	KindNodeFailed   Kind = "node-failed"
	KindProcKilled   Kind = "proc-killed"
	KindEpoch        Kind = "epoch"
	KindSpareAlloc   Kind = "spare-allocated"
	KindRespawn      Kind = "respawn"
	KindNotified     Kind = "notified"
	KindState        Kind = "state"
	KindCheckpoint   Kind = "checkpoint"
	KindShardEncode  Kind = "shard-encode"
	KindShardRebuild Kind = "shard-rebuild"
	KindL2Checkpoint Kind = "l2-checkpoint"
	KindRestore      Kind = "restore"
	KindL2Restore    Kind = "l2-restore"
	KindRollback     Kind = "rollback"
	KindFinalize     Kind = "finalize"
	KindAbort        Kind = "abort"

	// Local (message-logging) recovery, ISSUE 2.
	KindMsgLogged   Kind = "msg-logged"   // sender log size at a checkpoint
	KindReplayStart Kind = "replay-start" // a sender starts replaying its log
	KindReplayDone  Kind = "replay-done"  // that sender finished replaying
	KindLogTrim     Kind = "log-trim"     // checkpoint-commit garbage collection

	// Schedule-driven collective engine, ISSUE 3.
	KindCollAlgo Kind = "coll-algo" // algorithm selected for one collective

	// Replication-based recovery and the ReStore-style data store,
	// ISSUE 7.
	KindShadowPromote     Kind = "shadow-promote"     // shadow took over for a dead primary
	KindShadowReprovision Kind = "shadow-reprovision" // fresh shadow spawned from a spare
	KindStoreSubmit       Kind = "store-submit"       // application data replicated into the store
	KindStoreRebuild      Kind = "store-rebuild"      // store re-replicated after a copy loss

	// Versioned membership / online reconfiguration, ISSUE 8.
	KindViewChange   Kind = "view-change"   // a new membership view was installed
	KindShardMigrate Kind = "shard-migrate" // store shards rebalanced onto the new view
)

// Kinds returns every declared event kind, in declaration order. The
// registry is the runtime half of the tracekind invariant: fmilint
// proves each declared kind is emitted somewhere, and the round-trip
// test proves the JSONL codec preserves each one. Keep this list in
// sync with the const block above (TestKindsRegistryComplete enforces
// it).
func Kinds() []Kind {
	return []Kind{
		KindNodeFailed,
		KindProcKilled,
		KindEpoch,
		KindSpareAlloc,
		KindRespawn,
		KindNotified,
		KindState,
		KindCheckpoint,
		KindShardEncode,
		KindShardRebuild,
		KindL2Checkpoint,
		KindRestore,
		KindL2Restore,
		KindRollback,
		KindFinalize,
		KindAbort,
		KindMsgLogged,
		KindReplayStart,
		KindReplayDone,
		KindLogTrim,
		KindCollAlgo,
		KindShadowPromote,
		KindShadowReprovision,
		KindStoreSubmit,
		KindStoreRebuild,
		KindViewChange,
		KindShardMigrate,
	}
}

// Event is one timeline entry.
type Event struct {
	At    time.Time
	Kind  Kind
	Rank  int // -1 for job-level events
	Epoch uint32
	View  uint64 // membership view version in force (0 when unstamped)
	Note  string
}

// Recorder collects events; safe for concurrent use. A nil *Recorder
// is a valid no-op sink, so tracing can be left unwired.
type Recorder struct {
	mu     sync.Mutex
	start  time.Time
	events []Event
}

// New creates a recorder with its zero time at now.
func New() *Recorder {
	return &Recorder{start: time.Now()}
}

// Add records an event at the current time.
func (r *Recorder) Add(kind Kind, rank int, epoch uint32, format string, args ...any) {
	if r == nil {
		return
	}
	e := Event{At: time.Now(), Kind: kind, Rank: rank, Epoch: epoch, Note: fmt.Sprintf(format, args...)}
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// AddView records an event stamped with the membership view version it
// was produced under, so consumers can partition the timeline by view
// and detect stale-view traffic.
func (r *Recorder) AddView(kind Kind, rank int, epoch uint32, view uint64, format string, args ...any) {
	if r == nil {
		return
	}
	e := Event{At: time.Now(), Kind: kind, Rank: rank, Epoch: epoch, View: view, Note: fmt.Sprintf(format, args...)}
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// StartTime returns the recorder's zero time (the base that WriteJSONL
// and AppendJSONL express timestamps relative to). Zero for a nil
// recorder.
func (r *Recorder) StartTime() time.Time {
	if r == nil {
		return time.Time{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.start
}

// Since returns the events recorded at cursor positions >= cursor, in
// append order, together with the next cursor. It is the pull half of
// live trace streaming: a consumer (the fmiserve /jobs/{id}/trace
// endpoint) repeatedly calls Since with the returned cursor and sees
// every event exactly once, without the recorder ever blocking on a
// slow consumer. A nil recorder yields nothing.
func (r *Recorder) Since(cursor int) ([]Event, int) {
	if r == nil {
		return nil, cursor
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if cursor < 0 {
		cursor = 0
	}
	if cursor >= len(r.events) {
		return nil, len(r.events)
	}
	out := make([]Event, len(r.events)-cursor)
	copy(out, r.events[cursor:])
	return out, len(r.events)
}

// Events returns a time-ordered snapshot.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].At.Before(out[j].At) })
	return out
}

// Count returns how many events of the kind were recorded (any kind
// if kind is empty).
func (r *Recorder) Count(kind Kind) int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if kind == "" {
		return len(r.events)
	}
	n := 0
	for _, e := range r.events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// Dump prints the timeline relative to the recorder's start.
func (r *Recorder) Dump(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	start := r.start
	r.mu.Unlock()
	for _, e := range r.Events() {
		who := "job"
		if e.Rank >= 0 {
			who = fmt.Sprintf("rank %d", e.Rank)
		}
		fmt.Fprintf(w, "%10.3fms  e%-2d %-14s %-8s %s\n",
			float64(e.At.Sub(start))/float64(time.Millisecond), e.Epoch, e.Kind, who, e.Note)
	}
}

// Span summarises the time between the first event of kind a and the
// first *subsequent* event of kind b (0 if either is absent).
func (r *Recorder) Span(a, b Kind) time.Duration {
	evs := r.Events()
	var t0 time.Time
	for _, e := range evs {
		if e.Kind == a {
			t0 = e.At
			break
		}
	}
	if t0.IsZero() {
		return 0
	}
	for _, e := range evs {
		if e.Kind == b && !e.At.Before(t0) {
			return e.At.Sub(t0)
		}
	}
	return 0
}
