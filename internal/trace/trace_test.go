package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecorderBasics(t *testing.T) {
	r := New()
	r.Add(KindNodeFailed, -1, 0, "node %d failed", 3)
	r.Add(KindEpoch, -1, 1, "epoch advanced")
	r.Add(KindRollback, 2, 1, "rolled back to loop %d", 4)
	if r.Count("") != 3 {
		t.Fatalf("count = %d", r.Count(""))
	}
	if r.Count(KindEpoch) != 1 || r.Count(KindCheckpoint) != 0 {
		t.Fatal("kind counts wrong")
	}
	evs := r.Events()
	if evs[0].Kind != KindNodeFailed || evs[0].Note != "node 3 failed" {
		t.Fatalf("first event: %+v", evs[0])
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].At.Before(evs[i-1].At) {
			t.Fatal("events not time-ordered")
		}
	}
	var buf bytes.Buffer
	r.Dump(&buf)
	out := buf.String()
	for _, want := range []string{"node-failed", "rank 2", "rolled back to loop 4", "job"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestNilRecorderIsNoop(t *testing.T) {
	var r *Recorder
	r.Add(KindAbort, 0, 0, "x")
	if r.Events() != nil || r.Count("") != 0 {
		t.Fatal("nil recorder not a no-op")
	}
	r.Dump(&bytes.Buffer{})
}

func TestSpan(t *testing.T) {
	r := New()
	r.Add(KindNodeFailed, -1, 0, "dead")
	time.Sleep(5 * time.Millisecond)
	r.Add(KindState, 0, 1, "H3 running")
	span := r.Span(KindNodeFailed, KindState)
	if span < 4*time.Millisecond {
		t.Fatalf("span = %v", span)
	}
	if r.Span(KindAbort, KindState) != 0 {
		t.Fatal("missing start should give 0")
	}
	if r.Span(KindState, KindAbort) != 0 {
		t.Fatal("missing end should give 0")
	}
}

func TestConcurrentAdds(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				r.Add(KindCheckpoint, i, 0, "c%d", j)
			}
		}(i)
	}
	wg.Wait()
	if r.Count(KindCheckpoint) != 800 {
		t.Fatalf("count = %d", r.Count(KindCheckpoint))
	}
}
