package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONLRoundTrip(t *testing.T) {
	r := New()
	r.Add(KindNodeFailed, -1, 0, "node %d failed", 3)
	r.Add(KindMsgLogged, 1, 0, "1024 entries")
	r.Add(KindReplayStart, 2, 1, "replaying 7 msgs to rank 0")
	r.Add(KindReplayDone, 2, 1, "")
	r.Add(KindLogTrim, 1, 1, "released 512 entries")

	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("wrote %d lines, want 5", len(lines))
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "{") || !strings.HasSuffix(line, "}") {
			t.Fatalf("not one JSON object per line: %q", line)
		}
	}

	got, err := ParseJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := r.Events()
	if len(got) != len(want) {
		t.Fatalf("parsed %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Kind != want[i].Kind || got[i].Rank != want[i].Rank ||
			got[i].Epoch != want[i].Epoch || got[i].Note != want[i].Note {
			t.Fatalf("event %d mismatch: got %+v, want %+v", i, got[i], want[i])
		}
		if i > 0 && got[i].At.Before(got[i-1].At) {
			t.Fatal("relative timestamps lost ordering")
		}
	}
}

func TestJSONLNilRecorder(t *testing.T) {
	var r *Recorder
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil recorder wrote %q, err %v", buf.String(), err)
	}
}

func TestParseJSONLEmpty(t *testing.T) {
	evs, err := ParseJSONL(strings.NewReader(""))
	if err != nil || len(evs) != 0 {
		t.Fatalf("empty input: %v, %v", evs, err)
	}
}

// TestAppendJSONLMatchesWriter pins AppendJSONL to WriteJSONL's line
// format: the streaming encoder and the batch encoder must stay
// byte-compatible so ParseJSONL reads either.
func TestAppendJSONLMatchesWriter(t *testing.T) {
	r := New()
	r.Add(KindCheckpoint, 3, 2, "wrote %d bytes", 4096)
	r.Add(KindAbort, -1, 0, `note with "quotes", a \ backslash,
and a newline`)
	r.Add(KindEpoch, 0, 7, "")

	var batch bytes.Buffer
	if err := r.WriteJSONL(&batch); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	var stream []byte
	for _, e := range r.Events() {
		stream = AppendJSONL(stream, r.StartTime(), e)
	}
	if got, want := string(stream), batch.String(); got != want {
		t.Fatalf("AppendJSONL diverged from WriteJSONL:\n got  %q\n want %q", got, want)
	}
	evs, err := ParseJSONL(bytes.NewReader(stream))
	if err != nil {
		t.Fatalf("ParseJSONL(stream): %v", err)
	}
	if len(evs) != 3 || evs[1].Note != r.Events()[1].Note {
		t.Fatalf("round trip lost events/notes: %+v", evs)
	}
}

// TestAppendJSONLAllocations pins the streaming encoder's allocation
// behaviour: appending into a pre-grown buffer allocates nothing.
func TestAppendJSONLAllocations(t *testing.T) {
	r := New()
	r.Add(KindRespawn, 1, 1, "respawned on node 9")
	e := r.Events()[0]
	start := r.StartTime()
	buf := make([]byte, 0, 256)
	allocs := testing.AllocsPerRun(200, func() {
		buf = AppendJSONL(buf[:0], start, e)
	})
	if allocs != 0 {
		t.Fatalf("AppendJSONL allocs/op = %v, want 0", allocs)
	}
}

// TestSinceCursor covers the pull-based streaming API: every event is
// delivered exactly once across repeated calls, and the cursor is
// stable at the tail.
func TestSinceCursor(t *testing.T) {
	r := New()
	r.Add(KindEpoch, -1, 1, "one")
	evs, cur := r.Since(0)
	if len(evs) != 1 || cur != 1 {
		t.Fatalf("Since(0) = %d events, cursor %d; want 1, 1", len(evs), cur)
	}
	r.Add(KindEpoch, -1, 2, "two")
	r.Add(KindEpoch, -1, 3, "three")
	evs, cur = r.Since(cur)
	if len(evs) != 2 || cur != 3 {
		t.Fatalf("Since = %d events, cursor %d; want 2, 3", len(evs), cur)
	}
	if evs[0].Note != "two" || evs[1].Note != "three" {
		t.Fatalf("Since returned wrong events: %+v", evs)
	}
	evs, cur = r.Since(cur)
	if len(evs) != 0 || cur != 3 {
		t.Fatalf("Since at tail = %d events, cursor %d; want 0, 3", len(evs), cur)
	}
	var nilR *Recorder
	if evs, cur := nilR.Since(5); evs != nil || cur != 5 {
		t.Fatalf("nil recorder Since = %v, %d", evs, cur)
	}
}
