package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONLRoundTrip(t *testing.T) {
	r := New()
	r.Add(KindNodeFailed, -1, 0, "node %d failed", 3)
	r.Add(KindMsgLogged, 1, 0, "1024 entries")
	r.Add(KindReplayStart, 2, 1, "replaying 7 msgs to rank 0")
	r.Add(KindReplayDone, 2, 1, "")
	r.Add(KindLogTrim, 1, 1, "released 512 entries")

	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("wrote %d lines, want 5", len(lines))
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "{") || !strings.HasSuffix(line, "}") {
			t.Fatalf("not one JSON object per line: %q", line)
		}
	}

	got, err := ParseJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := r.Events()
	if len(got) != len(want) {
		t.Fatalf("parsed %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Kind != want[i].Kind || got[i].Rank != want[i].Rank ||
			got[i].Epoch != want[i].Epoch || got[i].Note != want[i].Note {
			t.Fatalf("event %d mismatch: got %+v, want %+v", i, got[i], want[i])
		}
		if i > 0 && got[i].At.Before(got[i-1].At) {
			t.Fatal("relative timestamps lost ordering")
		}
	}
}

func TestJSONLNilRecorder(t *testing.T) {
	var r *Recorder
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil recorder wrote %q, err %v", buf.String(), err)
	}
}

func TestParseJSONLEmpty(t *testing.T) {
	evs, err := ParseJSONL(strings.NewReader(""))
	if err != nil || len(evs) != 0 {
		t.Fatalf("empty input: %v, %v", evs, err)
	}
}
