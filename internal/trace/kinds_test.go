package trace

import (
	"bytes"
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// TestKindsRoundTrip writes one event of every registered kind through
// the JSONL codec and checks each kind survives the trip intact.
func TestKindsRoundTrip(t *testing.T) {
	r := New()
	for i, k := range Kinds() {
		r.Add(k, i, uint32(i), "event %d", i)
	}

	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	evs, err := ParseJSONL(&buf)
	if err != nil {
		t.Fatalf("ParseJSONL: %v", err)
	}
	if len(evs) != len(Kinds()) {
		t.Fatalf("round-tripped %d events, want %d", len(evs), len(Kinds()))
	}
	seen := map[Kind]bool{}
	for _, e := range evs {
		seen[e.Kind] = true
	}
	for _, k := range Kinds() {
		if !seen[k] {
			t.Errorf("kind %q lost in JSONL round trip", k)
		}
	}
}

// TestKindsDistinct guards against copy-paste collisions: every
// registered kind must have a unique, non-empty wire string.
func TestKindsDistinct(t *testing.T) {
	seen := map[Kind]bool{}
	for _, k := range Kinds() {
		if k == "" {
			t.Error("empty kind in registry")
		}
		if seen[k] {
			t.Errorf("duplicate kind %q in registry", k)
		}
		seen[k] = true
	}
}

// TestKindsRegistryComplete parses trace.go and checks that every Kind
// constant declared there appears in Kinds() — the registry must not
// drift behind the const block.
func TestKindsRegistryComplete(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "trace.go", nil, 0)
	if err != nil {
		t.Fatalf("parsing trace.go: %v", err)
	}
	registered := map[string]bool{}
	for _, k := range Kinds() {
		registered[string(k)] = true
	}
	declared := 0
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs := spec.(*ast.ValueSpec)
			id, ok := vs.Type.(*ast.Ident)
			if !ok || id.Name != "Kind" {
				continue
			}
			for i, name := range vs.Names {
				declared++
				lit, ok := vs.Values[i].(*ast.BasicLit)
				if !ok {
					t.Errorf("const %s: value is not a string literal", name.Name)
					continue
				}
				val := lit.Value[1 : len(lit.Value)-1] // strip quotes
				if !registered[val] {
					t.Errorf("const %s (%q) is declared but missing from Kinds()", name.Name, val)
				}
			}
		}
	}
	if declared != len(Kinds()) {
		t.Errorf("trace.go declares %d Kind constants but Kinds() registers %d", declared, len(Kinds()))
	}
}
