package core

import (
	"encoding/binary"
	"fmt"

	"fmi/internal/transport"
)

// Op combines src into acc element-wise; acc and src have equal
// length. The public fmi package provides typed constructors.
type Op func(acc, src []byte)

// treeBcast broadcasts data from root (comm rank) down a binomial
// tree; non-roots receive and return the payload (MPICH's classic
// binomial broadcast).
func (c *Comm) treeBcast(tag int32, root int, data []byte) ([]byte, error) {
	n := c.Size()
	if n == 1 {
		return data, nil
	}
	vrank := (c.myIdx - root + n) % n
	abs := func(v int) int { return (v + root) % n }

	mask := 1
	for mask < n {
		if vrank&mask != 0 {
			parentWorld := c.members[abs(vrank-mask)]
			msg, err := c.p.recvRaw(c.ctx, int32(parentWorld), tag)
			if err != nil {
				return nil, err
			}
			data = msg.Data
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if vrank+mask < n {
			childWorld := c.members[abs(vrank+mask)]
			if err := c.p.sendRaw(childWorld, c.ctx, tag, transport.KindColl, data); err != nil {
				return nil, err
			}
		}
		mask >>= 1
	}
	return data, nil
}

// treeReduce folds every rank's data into the root along a binomial
// tree. acc must be a private copy the caller may mutate; the root's
// final accumulation is returned. op may be nil for a pure
// synchronisation (payloads ignored).
func (c *Comm) treeReduce(tag int32, root int, acc []byte, op Op) ([]byte, error) {
	n := c.Size()
	if n == 1 {
		return acc, nil
	}
	vrank := (c.myIdx - root + n) % n
	abs := func(v int) int { return (v + root) % n }

	mask := 1
	for mask < n {
		if vrank&mask == 0 {
			src := vrank + mask
			if src < n {
				srcWorld := c.members[abs(src)]
				msg, err := c.p.recvRaw(c.ctx, int32(srcWorld), tag)
				if err != nil {
					return nil, err
				}
				if op != nil {
					if len(msg.Data) != len(acc) {
						return nil, fmt.Errorf("fmi: reduce payload length mismatch (%d vs %d)", len(msg.Data), len(acc))
					}
					op(acc, msg.Data)
				}
			}
		} else {
			dstWorld := c.members[abs(vrank-mask)]
			if err := c.p.sendRaw(dstWorld, c.ctx, tag, transport.KindColl, acc); err != nil {
				return nil, err
			}
			break
		}
		mask <<= 1
	}
	return acc, nil
}

// coordExchange runs a pre-Loop collective through the coordinator,
// where the result is cached for replay by restarted processes. A
// failure during the initialisation phase cannot be repaired by a
// rollback (there is no checkpoint yet), so the exchange instead rides
// it out: rebuild the generation for the new epoch and retry the same
// cached key — the replacement process replays its initialisation and
// eventually contributes the missing value.
func (c *Comm) coordExchange(op string, contribution []byte) ([][]byte, error) {
	seq := c.collSeq
	c.collSeq++
	key := fmt.Sprintf("coll/%d/%s/%d", c.ctx, op, seq)
	return c.p.coordGather(key, c.myIdx, c.Size(), contribution)
}

// coordGather is the shared retrying coordinator all-gather used by
// replayable operations (pre-Loop collectives and Split).
func (p *Proc) coordGather(key string, idx, n int, val []byte) ([][]byte, error) {
	for {
		vals, err := p.cfg.Ctl.Coordinator().AllGather(key, idx, n, val, p.gen.cancelCh)
		if err == nil {
			return vals, nil
		}
		p.checkAlive()
		if p.ranLoop {
			// Post-Loop callers recover through Loop, not here.
			return nil, ErrFailureDetected
		}
		next, werr := p.cfg.Ctl.AwaitEpoch(p.epoch+1, p.killCh())
		if werr != nil {
			return nil, ErrFailureDetected
		}
		p.epoch = next
		if err := p.rebuildUntilStable(); err != nil {
			p.fatal(err)
		}
	}
}

// preLoop reports whether collectives should take the replayable
// coordinator path (no Loop call has happened yet).
func (c *Comm) preLoop() bool { return !c.p.ranLoop }

// Barrier blocks until every rank of the communicator reaches it.
func (c *Comm) Barrier() error {
	if err := c.p.checkComm(); err != nil {
		return err
	}
	if c.preLoop() {
		_, err := c.coordExchange("barrier", nil)
		return err
	}
	if _, err := c.treeReduce(tagBarrierUp, 0, nil, nil); err != nil {
		return err
	}
	_, err := c.treeBcast(tagBarrierDn, 0, nil)
	return err
}

// Bcast broadcasts the root's buffer to all ranks; every rank returns
// the payload.
func (c *Comm) Bcast(root int, data []byte) ([]byte, error) {
	if err := c.p.checkComm(); err != nil {
		return nil, err
	}
	if root < 0 || root >= c.Size() {
		return nil, fmt.Errorf("%w: bcast root %d", ErrInvalidRank, root)
	}
	if c.preLoop() {
		var contrib []byte
		if c.myIdx == root {
			contrib = data
		}
		vals, err := c.coordExchange("bcast", contrib)
		if err != nil {
			return nil, err
		}
		return vals[root], nil
	}
	return c.treeBcast(tagBcast, root, data)
}

// Reduce combines all ranks' equal-length buffers with op; the root
// returns the result, others return nil.
func (c *Comm) Reduce(root int, data []byte, op Op) ([]byte, error) {
	if err := c.p.checkComm(); err != nil {
		return nil, err
	}
	if root < 0 || root >= c.Size() {
		return nil, fmt.Errorf("%w: reduce root %d", ErrInvalidRank, root)
	}
	if c.preLoop() {
		vals, err := c.coordExchange("reduce", data)
		if err != nil {
			return nil, err
		}
		if c.myIdx != root {
			return nil, nil
		}
		return foldVals(vals, op)
	}
	acc := make([]byte, len(data))
	copy(acc, data)
	res, err := c.treeReduce(tagReduce, root, acc, op)
	if err != nil {
		return nil, err
	}
	if c.myIdx == root {
		return res, nil
	}
	return nil, nil
}

// Allreduce combines all ranks' buffers and returns the result on
// every rank (reduce to rank 0 + broadcast).
func (c *Comm) Allreduce(data []byte, op Op) ([]byte, error) {
	if err := c.p.checkComm(); err != nil {
		return nil, err
	}
	if c.preLoop() {
		vals, err := c.coordExchange("allreduce", data)
		if err != nil {
			return nil, err
		}
		return foldVals(vals, op)
	}
	res, err := c.Reduce(0, data, op)
	if err != nil {
		return nil, err
	}
	return c.treeBcast(tagBcast, 0, res)
}

// foldVals combines gathered contributions in rank order.
func foldVals(vals [][]byte, op Op) ([]byte, error) {
	if len(vals) == 0 {
		return nil, nil
	}
	acc := append([]byte{}, vals[0]...)
	for _, v := range vals[1:] {
		if len(v) != len(acc) {
			return nil, fmt.Errorf("fmi: reduce payload length mismatch (%d vs %d)", len(v), len(acc))
		}
		if op != nil {
			op(acc, v)
		}
	}
	return acc, nil
}

// Gather collects every rank's buffer at the root, which returns them
// indexed by comm rank; other ranks return nil. Buffers may have
// different lengths.
func (c *Comm) Gather(root int, data []byte) ([][]byte, error) {
	if err := c.p.checkComm(); err != nil {
		return nil, err
	}
	if root < 0 || root >= c.Size() {
		return nil, fmt.Errorf("%w: gather root %d", ErrInvalidRank, root)
	}
	if c.preLoop() {
		vals, err := c.coordExchange("gather", data)
		if err != nil {
			return nil, err
		}
		if c.myIdx != root {
			return nil, nil
		}
		return vals, nil
	}
	n := c.Size()
	if c.myIdx != root {
		rootWorld := c.members[root]
		return nil, c.p.sendRaw(rootWorld, c.ctx, tagGather, transport.KindColl, data)
	}
	out := make([][]byte, n)
	out[root] = append([]byte{}, data...)
	for r := 0; r < n; r++ {
		if r == root {
			continue
		}
		msg, err := c.p.recvRaw(c.ctx, int32(c.members[r]), tagGather)
		if err != nil {
			return nil, err
		}
		out[r] = msg.Data
	}
	return out, nil
}

// Allgather collects every rank's buffer on every rank.
func (c *Comm) Allgather(data []byte) ([][]byte, error) {
	if err := c.p.checkComm(); err != nil {
		return nil, err
	}
	if c.preLoop() {
		return c.coordExchange("allgather", data)
	}
	parts, err := c.Gather(0, data)
	if err != nil {
		return nil, err
	}
	var packed []byte
	if c.myIdx == 0 {
		packed = packSlices(parts)
	}
	packed, err = c.treeBcast(tagBcast, 0, packed)
	if err != nil {
		return nil, err
	}
	return unpackSlices(packed)
}

// Scatter distributes parts[i] to comm rank i from the root; every
// rank returns its part. Only the root's parts argument is consulted.
func (c *Comm) Scatter(root int, parts [][]byte) ([]byte, error) {
	if err := c.p.checkComm(); err != nil {
		return nil, err
	}
	n := c.Size()
	if root < 0 || root >= n {
		return nil, fmt.Errorf("%w: scatter root %d", ErrInvalidRank, root)
	}
	if c.preLoop() {
		var contrib []byte
		if c.myIdx == root {
			if len(parts) != n {
				return nil, fmt.Errorf("fmi: scatter needs %d parts, got %d", n, len(parts))
			}
			contrib = packSlices(parts)
		}
		vals, err := c.coordExchange("scatter", contrib)
		if err != nil {
			return nil, err
		}
		all, err := unpackSlices(vals[root])
		if err != nil || len(all) != n {
			return nil, fmt.Errorf("fmi: scatter decode failed: %v", err)
		}
		return all[c.myIdx], nil
	}
	if c.myIdx == root {
		if len(parts) != n {
			return nil, fmt.Errorf("fmi: scatter needs %d parts, got %d", n, len(parts))
		}
		for r := 0; r < n; r++ {
			if r == root {
				continue
			}
			if err := c.p.sendRaw(c.members[r], c.ctx, tagScatter, transport.KindColl, parts[r]); err != nil {
				return nil, err
			}
		}
		return append([]byte{}, parts[root]...), nil
	}
	msg, err := c.p.recvRaw(c.ctx, int32(c.members[root]), tagScatter)
	if err != nil {
		return nil, err
	}
	return msg.Data, nil
}

// Alltoall exchanges parts pairwise: rank i receives parts[i] from
// every rank, returned indexed by source comm rank.
func (c *Comm) Alltoall(parts [][]byte) ([][]byte, error) {
	if err := c.p.checkComm(); err != nil {
		return nil, err
	}
	n := c.Size()
	if len(parts) != n {
		return nil, fmt.Errorf("fmi: alltoall needs %d parts, got %d", n, len(parts))
	}
	if c.preLoop() {
		vals, err := c.coordExchange("alltoall", packSlices(parts))
		if err != nil {
			return nil, err
		}
		out := make([][]byte, n)
		for src, v := range vals {
			theirs, err := unpackSlices(v)
			if err != nil || len(theirs) != n {
				return nil, fmt.Errorf("fmi: alltoall decode failed: %v", err)
			}
			out[src] = theirs[c.myIdx]
		}
		return out, nil
	}
	out := make([][]byte, n)
	out[c.myIdx] = append([]byte{}, parts[c.myIdx]...)
	// Pairwise exchange: at step d, talk to rank me^d style schedule
	// generalised to non-powers of two via (me+d), (me-d).
	for d := 1; d < n; d++ {
		dst := (c.myIdx + d) % n
		src := (c.myIdx - d + n) % n
		if err := c.p.sendRaw(c.members[dst], c.ctx, tagAlltoall, transport.KindColl, parts[dst]); err != nil {
			return nil, err
		}
		msg, err := c.p.recvRaw(c.ctx, int32(c.members[src]), tagAlltoall)
		if err != nil {
			return nil, err
		}
		out[src] = msg.Data
	}
	return out, nil
}

// packSlices and unpackSlices serialise a [][]byte with u32 length
// prefixes (used by Allgather's broadcast leg).
func packSlices(parts [][]byte) []byte {
	total := 0
	for _, p := range parts {
		total += 4 + len(p)
	}
	out := make([]byte, 0, total)
	var hdr [4]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(p)))
		out = append(out, hdr[:]...)
		out = append(out, p...)
	}
	return out
}

func unpackSlices(data []byte) ([][]byte, error) {
	var out [][]byte
	for len(data) > 0 {
		if len(data) < 4 {
			return nil, fmt.Errorf("fmi: truncated slice pack")
		}
		n := binary.LittleEndian.Uint32(data)
		data = data[4:]
		if uint32(len(data)) < n {
			return nil, fmt.Errorf("fmi: truncated slice pack body")
		}
		out = append(out, data[:n:n])
		data = data[n:]
	}
	return out, nil
}
