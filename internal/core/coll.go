package core

import (
	"fmt"

	"fmi/internal/coll"
	"fmi/internal/enc"
	"fmi/internal/trace"
	"fmi/internal/transport"
)

// Op combines src into acc element-wise; acc and src have equal
// length. The operator MUST be commutative and associative: the
// collective engine folds contributions in whatever order its selected
// algorithm dictates (binomial tree, recursive-doubling pairs, ring
// chunks), which is not the rank order used by the pre-Loop
// coordinator path's foldVals. Floating-point sums may therefore
// differ in the last ulp between algorithms — exactly as across MPI
// implementations. The public fmi package provides typed constructors.
type Op func(acc, src []byte)

// Collectives are schedule-driven (internal/coll): each operation asks
// the configured policy for an algorithm, generates that algorithm's
// pure per-rank schedule, and drives it over the p2p layer below. A
// failure mid-schedule surfaces exactly like a failed Recv — the
// executor aborts and the error (ErrFailureDetected for a notified
// failure) unwinds to Loop, which repairs the world by rollback in
// global mode; in local mode survivors ride the epoch fence inside
// recvRaw and the schedule simply continues, since deterministic
// schedules plus per-pair FIFO ordering make the replayed traffic land
// in the same steps.

// collTP adapts one (communicator, tag) pair to the schedule
// executor's transport: schedule peers are comm ranks, translated to
// world ranks here. Sends are eager (the transport copies payloads and
// blocks only under backpressure), which is what lets the executor
// post a whole round of sends before draining its receives.
type collTP struct {
	c   *Comm
	tag int32
}

func (t collTP) Send(peer int, data []byte) error {
	return t.c.p.sendRaw(t.c.members[peer], t.c.ctx, t.tag, transport.KindColl, data)
}

func (t collTP) Recv(peer int) ([]byte, error) {
	msg, err := t.c.p.recvRaw(t.c.ctx, int32(t.c.members[peer]), t.tag)
	if err != nil {
		return nil, err
	}
	return msg.Data, nil
}

// Release implements coll.Releaser: the schedule executor hands back
// every received frame it consumes without retaining (folded reduce
// contributions, sync tokens, unpacked multi-block carriers), keeping
// collective steps allocation-free on the shared arena.
func (t collTP) Release(buf []byte) { t.c.p.pool.Put(buf) }

// selectAlgo consults the policy and records the choice in the trace
// (the coll-algo event), making per-operation algorithm selection
// observable in timelines.
func (c *Comm) selectAlgo(op coll.Opcode, bytes int) coll.Algo {
	algo := c.p.cfg.Coll.Select(op, bytes, c.Size())
	c.p.cfg.Trace.Add(trace.KindCollAlgo, c.p.rank, c.p.epoch,
		"%s algo=%s bytes=%d n=%d", op, algo, bytes, c.Size())
	return algo
}

// exec drives a schedule over this communicator on the given reserved
// tag. Consecutive collectives may share a tag safely: schedules are
// deterministic and the transport delivers per-(sender, receiver) in
// FIFO order, so matched receives cannot cross operation boundaries.
func (c *Comm) exec(tag int32, s *coll.Schedule, blocks [][]byte, op Op) error {
	return coll.Exec(s, collTP{c, tag}, blocks, coll.ReduceFn(op))
}

// agreeBcast is the checkpoint completion wave used by the level-1 and
// level-2 commit protocols: a zero-payload binomial reduce-to-0
// synchronisation followed by a binomial broadcast of the root's
// payload on the same reserved tag (the wire pattern of the original
// hand-rolled trees).
func (c *Comm) agreeBcast(tag int32, payload []byte) ([]byte, error) {
	if c.Size() == 1 {
		return payload, nil
	}
	up, err := coll.Reduce(coll.AlgoBinomial, c.myIdx, c.Size(), 0)
	if err != nil {
		return nil, err
	}
	if err := c.exec(tag, up, [][]byte{nil}, nil); err != nil {
		return nil, err
	}
	dn, err := coll.Bcast(coll.AlgoBinomial, c.myIdx, c.Size(), 0)
	if err != nil {
		return nil, err
	}
	blocks := [][]byte{payload}
	if err := c.exec(tag, dn, blocks, nil); err != nil {
		return nil, err
	}
	return blocks[0], nil
}

// coordExchange runs a pre-Loop collective through the coordinator,
// where the result is cached for replay by restarted processes. A
// failure during the initialisation phase cannot be repaired by a
// rollback (there is no checkpoint yet), so the exchange instead rides
// it out: rebuild the generation for the new epoch and retry the same
// cached key — the replacement process replays its initialisation and
// eventually contributes the missing value.
func (c *Comm) coordExchange(op string, contribution []byte) ([][]byte, error) {
	seq := c.collSeq
	c.collSeq++
	key := fmt.Sprintf("coll/%d/%s/%d", c.ctx, op, seq)
	return c.p.coordGather(key, c.myIdx, c.Size(), contribution)
}

// coordGather is the shared retrying coordinator all-gather used by
// replayable operations (pre-Loop collectives and Split).
func (p *Proc) coordGather(key string, idx, n int, val []byte) ([][]byte, error) {
	for {
		vals, err := p.cfg.Ctl.Coordinator().AllGather(key, idx, n, val, p.gen.cancelCh)
		if err == nil {
			return vals, nil
		}
		p.checkAlive()
		if p.ranLoop {
			// Post-Loop callers recover through Loop, not here.
			return nil, ErrFailureDetected
		}
		next, werr := p.cfg.Ctl.AwaitEpoch(p.epoch+1, p.killCh())
		if werr != nil {
			return nil, ErrFailureDetected
		}
		p.epoch = next
		if err := p.rebuildUntilStable(); err != nil {
			p.fatal(err)
		}
	}
}

// preLoop reports whether collectives should take the replayable
// coordinator path (no Loop call has happened yet).
func (c *Comm) preLoop() bool { return !c.p.ranLoop }

// Barrier blocks until every rank of the communicator reaches it.
func (c *Comm) Barrier() error {
	if err := c.p.checkComm(); err != nil {
		return err
	}
	if c.preLoop() {
		_, err := c.coordExchange("barrier", nil)
		return err
	}
	if c.Size() == 1 {
		return nil
	}
	s, err := coll.Barrier(c.selectAlgo(coll.OpBarrier, 0), c.myIdx, c.Size())
	if err != nil {
		return err
	}
	return c.exec(tagBarrierUp, s, nil, nil)
}

// Bcast broadcasts the root's buffer to all ranks; every rank returns
// the payload.
func (c *Comm) Bcast(root int, data []byte) ([]byte, error) {
	if err := c.p.checkComm(); err != nil {
		return nil, err
	}
	if root < 0 || root >= c.Size() {
		return nil, fmt.Errorf("%w: bcast root %d", ErrInvalidRank, root)
	}
	if c.preLoop() {
		var contrib []byte
		if c.myIdx == root {
			contrib = data
		}
		vals, err := c.coordExchange("bcast", contrib)
		if err != nil {
			return nil, err
		}
		return vals[root], nil
	}
	if c.Size() == 1 {
		return data, nil
	}
	s, err := coll.Bcast(c.selectAlgo(coll.OpBcast, len(data)), c.myIdx, c.Size(), root)
	if err != nil {
		return nil, err
	}
	blocks := [][]byte{nil}
	if c.myIdx == root {
		blocks[0] = data
	}
	if err := c.exec(tagBcast, s, blocks, nil); err != nil {
		return nil, err
	}
	return blocks[0], nil
}

// Reduce combines all ranks' equal-length buffers with op; the root
// returns the result, others return nil. op must be commutative and
// associative (see Op): contributions fold in tree order. A length
// mismatch between ranks is reported by the first rank that folds the
// offending contribution, naming both peers and sizes.
func (c *Comm) Reduce(root int, data []byte, op Op) ([]byte, error) {
	if err := c.p.checkComm(); err != nil {
		return nil, err
	}
	if root < 0 || root >= c.Size() {
		return nil, fmt.Errorf("%w: reduce root %d", ErrInvalidRank, root)
	}
	if c.preLoop() {
		vals, err := c.coordExchange("reduce", data)
		if err != nil {
			return nil, err
		}
		if c.myIdx != root {
			return nil, nil
		}
		return foldVals(vals, op)
	}
	acc := append([]byte(nil), data...)
	if c.Size() > 1 {
		s, err := coll.Reduce(c.selectAlgo(coll.OpReduce, len(data)), c.myIdx, c.Size(), root)
		if err != nil {
			return nil, err
		}
		blocks := [][]byte{acc}
		if err := c.exec(tagReduce, s, blocks, op); err != nil {
			return nil, err
		}
		acc = blocks[0]
	}
	if c.myIdx == root {
		return acc, nil
	}
	return nil, nil
}

// Allreduce combines all ranks' buffers and returns the result on
// every rank. The algorithm is selected by payload size: recursive
// doubling for latency-bound small buffers, a bandwidth-optimal ring
// reduce-scatter + allgather for large ones (and the legacy
// reduce+bcast tree via policy override). op must be commutative and
// associative (see Op); all ranks must pass equal-length buffers.
func (c *Comm) Allreduce(data []byte, op Op) ([]byte, error) {
	if err := c.p.checkComm(); err != nil {
		return nil, err
	}
	if c.preLoop() {
		vals, err := c.coordExchange("allreduce", data)
		if err != nil {
			return nil, err
		}
		return foldVals(vals, op)
	}
	n := c.Size()
	buf := append([]byte(nil), data...)
	if n == 1 {
		return buf, nil
	}
	algo := c.selectAlgo(coll.OpAllreduce, len(data))
	s, err := coll.Allreduce(algo, c.myIdx, n)
	if err != nil {
		return nil, err
	}
	var blocks [][]byte
	if algo == coll.AlgoRing {
		blocks = coll.SplitChunks(buf, n)
	} else {
		blocks = [][]byte{buf}
	}
	if err := c.exec(tagAllreduce, s, blocks, op); err != nil {
		return nil, err
	}
	if algo == coll.AlgoRing {
		return coll.JoinChunks(blocks), nil
	}
	return blocks[0], nil
}

// foldVals combines gathered contributions in rank order (pre-Loop
// coordinator path only; the data-plane engine folds in schedule
// order — both are valid because Op is commutative and associative).
func foldVals(vals [][]byte, op Op) ([]byte, error) {
	if len(vals) == 0 {
		return nil, nil
	}
	acc := append([]byte{}, vals[0]...)
	for i, v := range vals[1:] {
		if len(v) != len(acc) {
			return nil, fmt.Errorf("fmi: reduce payload length mismatch (rank %d contributed %d bytes, rank 0 contributed %d)", i+1, len(v), len(acc))
		}
		if op != nil {
			op(acc, v)
		}
	}
	return acc, nil
}

// Gather collects every rank's buffer at the root, which returns them
// indexed by comm rank; other ranks return nil. Buffers may have
// different lengths. Small communicators send linearly to the root;
// larger ones fold packed subtrees up a binomial tree.
func (c *Comm) Gather(root int, data []byte) ([][]byte, error) {
	if err := c.p.checkComm(); err != nil {
		return nil, err
	}
	if root < 0 || root >= c.Size() {
		return nil, fmt.Errorf("%w: gather root %d", ErrInvalidRank, root)
	}
	if c.preLoop() {
		vals, err := c.coordExchange("gather", data)
		if err != nil {
			return nil, err
		}
		if c.myIdx != root {
			return nil, nil
		}
		return vals, nil
	}
	n := c.Size()
	s, err := coll.Gather(c.selectAlgo(coll.OpGather, len(data)), c.myIdx, n, root)
	if err != nil {
		return nil, err
	}
	blocks := make([][]byte, n)
	blocks[c.myIdx] = append([]byte{}, data...)
	if err := c.exec(tagGather, s, blocks, nil); err != nil {
		return nil, err
	}
	if c.myIdx != root {
		return nil, nil
	}
	return blocks, nil
}

// Allgather collects every rank's buffer on every rank. Power-of-two
// communicators use recursive doubling (log rounds of packed block
// ranges); others rotate blocks around a ring, never repacking.
func (c *Comm) Allgather(data []byte) ([][]byte, error) {
	if err := c.p.checkComm(); err != nil {
		return nil, err
	}
	if c.preLoop() {
		return c.coordExchange("allgather", data)
	}
	n := c.Size()
	s, err := coll.Allgather(c.selectAlgo(coll.OpAllgather, len(data)), c.myIdx, n)
	if err != nil {
		return nil, err
	}
	blocks := make([][]byte, n)
	blocks[c.myIdx] = append([]byte{}, data...)
	if err := c.exec(tagAllgather, s, blocks, nil); err != nil {
		return nil, err
	}
	return blocks, nil
}

// Scatter distributes parts[i] to comm rank i from the root; every
// rank returns its part. Only the root's parts argument is consulted.
func (c *Comm) Scatter(root int, parts [][]byte) ([]byte, error) {
	if err := c.p.checkComm(); err != nil {
		return nil, err
	}
	n := c.Size()
	if root < 0 || root >= n {
		return nil, fmt.Errorf("%w: scatter root %d", ErrInvalidRank, root)
	}
	if c.preLoop() {
		var contrib []byte
		if c.myIdx == root {
			if len(parts) != n {
				return nil, fmt.Errorf("fmi: scatter needs %d parts, got %d", n, len(parts))
			}
			contrib = packSlices(parts)
		}
		vals, err := c.coordExchange("scatter", contrib)
		if err != nil {
			return nil, err
		}
		all, err := unpackSlices(vals[root])
		if err != nil || len(all) != n {
			return nil, fmt.Errorf("fmi: scatter decode failed: %v", err)
		}
		return all[c.myIdx], nil
	}
	var total int
	if c.myIdx == root {
		if len(parts) != n {
			return nil, fmt.Errorf("fmi: scatter needs %d parts, got %d", n, len(parts))
		}
		for _, p := range parts {
			total += len(p)
		}
	}
	s, err := coll.Scatter(c.selectAlgo(coll.OpScatter, total), c.myIdx, n, root)
	if err != nil {
		return nil, err
	}
	blocks := make([][]byte, n)
	if c.myIdx == root {
		copy(blocks, parts)
	}
	if err := c.exec(tagScatter, s, blocks, nil); err != nil {
		return nil, err
	}
	if c.myIdx == root {
		return append([]byte{}, parts[root]...), nil
	}
	return blocks[c.myIdx], nil
}

// Alltoall exchanges parts pairwise: rank i receives parts[i] from
// every rank, returned indexed by source comm rank. Small uniform
// exchanges take Bruck's log-round packed shuffle; large ones run
// nonblocking pairwise rounds (each round's send is posted before its
// receive, so symmetric exchanges cannot deadlock). The size heuristic
// samples the local payload and assumes roughly size-symmetric traffic
// (MPI_Alltoall's uniform-count shape); irregular alltoallv-style
// exchanges should pin an algorithm via the Collectives config.
func (c *Comm) Alltoall(parts [][]byte) ([][]byte, error) {
	if err := c.p.checkComm(); err != nil {
		return nil, err
	}
	n := c.Size()
	if len(parts) != n {
		return nil, fmt.Errorf("fmi: alltoall needs %d parts, got %d", n, len(parts))
	}
	if c.preLoop() {
		vals, err := c.coordExchange("alltoall", packSlices(parts))
		if err != nil {
			return nil, err
		}
		out := make([][]byte, n)
		for src, v := range vals {
			theirs, err := unpackSlices(v)
			if err != nil || len(theirs) != n {
				return nil, fmt.Errorf("fmi: alltoall decode failed: %v", err)
			}
			out[src] = theirs[c.myIdx]
		}
		return out, nil
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	s, err := coll.Alltoall(c.selectAlgo(coll.OpAlltoall, total), c.myIdx, n)
	if err != nil {
		return nil, err
	}
	blocks := make([][]byte, s.Blocks)
	copy(blocks, parts)
	blocks[c.myIdx] = append([]byte{}, parts[c.myIdx]...)
	if s.Blocks == 2*n { // pairwise: staging region for received parts
		blocks[n+c.myIdx] = blocks[c.myIdx]
	}
	if err := c.exec(tagAlltoall, s, blocks, nil); err != nil {
		return nil, err
	}
	return blocks[s.Blocks-n:], nil
}

// packSlices and unpackSlices frame a [][]byte with u32 length
// prefixes; the shared implementation lives in internal/enc (also used
// by the schedule executor for multi-block steps).
func packSlices(parts [][]byte) []byte { return enc.PackSlices(parts) }

func unpackSlices(data []byte) ([][]byte, error) { return enc.UnpackSlices(data) }
