package core

import (
	"errors"
	"fmt"
	"time"

	"fmi/internal/bootstrap"
	"fmi/internal/ckpt"
	"fmi/internal/model"
	"fmi/internal/trace"
	"fmi/internal/transport"
)

// Loop is FMI_Loop (paper §III-B): the single call that makes an
// application fault tolerant. It synchronises checkpointing, writes
// in-memory XOR-encoded checkpoints of the registered segments at the
// configured (or MTBF-auto-tuned) interval, and — when a failure has
// been notified — drives the H1/H2 recovery, restores the last good
// checkpoint into the segments, and returns the loop id it restored.
// In the failure-free path it returns the incrementing loop id.
func (p *Proc) Loop(segs [][]byte) int {
	p.checkAlive()
	if p.finalize {
		panic("fmi: Loop after Finalize")
	}
	if p.ranLoop {
		p.iterEWMA = ewma(p.iterEWMA, time.Since(p.lastLoopAt))
	}
	p.ranLoop = true
	for {
		if p.gen.failed() {
			p.recover()
			continue
		}
		if p.replicaOn() {
			if p.syncPending {
				// Re-provisioned shadow: pull the primary's live state,
				// then fall through to the normal schedule in lockstep.
				p.applyShadowSync(segs)
			} else if !p.cfg.Shadow || p.promotedSelf() {
				// Acting primary: serve a pending replacement-shadow
				// state request before this iteration's checkpoint
				// decision, so the snapshot point is well defined. While
				// a resize fence is armed no NEW sync starts — the shadow
				// re-syncs under the post-fence view instead, keeping the
				// fence's cut point well defined.
				if p.viewCtl == nil || p.viewCtl.ResizePending() == 0 {
					p.serveShadowSync(segs)
				}
			}
			// Fence any shadow flips that registered since the last
			// iteration (after applyShadowSync, so a fresh replacement
			// acks with its adopted — not zero — send counters).
			p.ackShadowFlips()
		}
		// Apply a restore negotiated during recovery (or during Init
		// for a replacement process): a local memcpy back into the
		// registered segments, returning the restored loop id.
		if p.pendingID >= 0 && !p.pendingApplied {
			id, err := p.applyRestore(segs)
			if err != nil {
				p.fatal(err)
			}
			if p.reexecPending {
				// Sender-based logging (local mode): the messaging state
				// was captured at the top of the restore checkpoint, so a
				// replacement re-executes the checkpoint exchange itself.
				// That deterministically regenerates every message the
				// dead incarnation sent after capture — ring shards, group
				// meta, the agree wave — under the original sequence
				// numbers: survivors that consumed the originals suppress
				// the copies, while a survivor still blocked on a message
				// lost with the dead rank (e.g. the commit broadcast)
				// finally receives it. It also re-arms the double buffer
				// and contributes this rank's pending log-trim round.
				p.reexecPending = false
				p.l1Count-- // checkpoint() re-increments to the captured value
				p.reexec = true
				err := p.checkpoint(id, segs)
				p.reexec = false
				if err != nil {
					p.fatal(err)
				}
			}
			p.cfg.Stats.AddLostIterations(p.loopID - (id + 1))
			p.loopID = id + 1
			p.lastLoopAt = time.Now()
			p.cfg.Ctl.ReportLoop(p.rank, id)
			return id
		}
		// Resize fence: while a grow/shrink is armed every rank reports
		// its position here, at the top of an iteration — the only point
		// where no collective or checkpoint is in flight — and parks once
		// it reaches the agreed cut loop.
		if p.joinFence() {
			continue
		}
		id := p.loopID
		if p.needCheckpoint(id) {
			if err := p.checkpoint(id, segs); err != nil {
				continue // failure during C/R: recover on next pass
			}
		}
		// Application code runs next: from here on this rank's state can
		// diverge from the fence cut, so a later failure must negotiate
		// a rollback rather than ride the clean-fence fast path.
		p.fenceClean = false
		p.loopID++
		p.lastLoopAt = time.Now()
		p.cfg.Ctl.ReportLoop(p.rank, id)
		return id
	}
}

// joinFence participates in an armed resize fence. Phase 1: each Loop
// iteration below the cut acknowledges its position and proceeds.
// Phase 2: at the cut loop the rank parks until every participant
// arrives and the runtime commits the new view atomically. Returns true
// when the caller must restart the loop pass — the fence committed and
// this rank just recovered into the new view.
func (p *Proc) joinFence() bool {
	if p.viewCtl == nil {
		return false
	}
	ticket := p.viewCtl.ResizePending()
	if ticket == 0 {
		return false
	}
	observer := p.cfg.Shadow && p.cfg.Replica != nil && !p.promotedSelf()
	out, err := p.viewCtl.JoinResize(ticket, p.rank, p.loopID, observer, p.cfg.KillCh)
	if err != nil {
		p.checkAlive()
		p.fatal(err)
	}
	if out.Retired {
		// This rank's seat is removed by a shrink: its state has been
		// captured in the pre-fence checkpoint wave; park until the
		// runtime reaps the process.
		p.cfg.Trace.Add(trace.KindState, p.rank, p.epoch, "retired by shrink fence")
		<-p.cfg.KillCh
		panic(procKilledPanic{})
	}
	if out.View != nil {
		// Fence committed: rebuild into the new view. Recover explicitly
		// rather than waiting for gen.failed() — the commit's epoch bump
		// reaches the failure watcher asynchronously. This survivor's
		// state sits exactly at the cut, so the restore negotiation can
		// skip the rollback if every other rank is equally clean.
		p.fenceClean = true
		p.recover()
		return true
	}
	return false
}

// fatal reports an unrecoverable condition and waits for the manager
// to kill the job. A kill-cancelled epoch wait (the error wraps
// ErrKilled) is this process dying, not a job failure: unwind without
// aborting the job, exactly like every other blocking call observing
// KillCh.
func (p *Proc) fatal(err error) {
	if !errors.Is(err, ErrKilled) {
		p.cfg.Ctl.Abort(err)
	}
	<-p.cfg.KillCh
	panic(procKilledPanic{})
}

// recover drives the Fig 5 Notified transition: wait for the manager
// to open a new epoch, then rebuild H1/H2 and renegotiate the restore
// point, retrying while further failures interrupt.
func (p *Proc) recover() {
	start := time.Now()
	next, err := p.cfg.Ctl.AwaitEpoch(p.epoch+1, p.killCh())
	if err != nil {
		p.fatal(err)
	}
	p.epoch = next
	if err := p.rebuildUntilStable(); err != nil {
		p.fatal(err)
	}
	p.state = StateRunning
	p.cfg.Trace.Add(trace.KindState, p.rank, p.epoch, "H3 running")
	if p.rank == 0 {
		p.cfg.Stats.AddRecovery(time.Since(start))
	}
}

// applyRestore copies the negotiated snapshot back into the user
// segments and adopts the checkpointed runtime counters.
func (p *Proc) applyRestore(segs [][]byte) (int, error) {
	e := p.committed
	if e == nil || e.Snap.LoopID != p.pendingID {
		return 0, fmt.Errorf("%w: rank %d has no checkpoint for loop %d", ErrUnrecoverable, p.rank, p.pendingID)
	}
	rs := time.Now()
	if err := e.Snap.Restore(segs); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrUnrecoverable, err)
	}
	p.cfg.Trace.Add(trace.KindRestore, p.rank, p.epoch, "restored checkpoint %d into %d segment(s)", e.Snap.LoopID, len(segs))
	p.nextCtx = e.NextCtx
	p.commSeq = e.CommSeq
	p.l1Count = e.L1Count
	p.lastCkpt = e.Snap.LoopID
	p.pendingApplied = true
	p.cfg.Stats.AddRestore(time.Since(rs))
	p.cfg.Trace.Add(trace.KindRollback, p.rank, p.epoch, "rolled back to loop %d", e.Snap.LoopID)
	return e.Snap.LoopID, nil
}

// needCheckpoint applies the paper's rule: the first Loop call always
// checkpoints; afterwards every interval-th iteration does.
func (p *Proc) needCheckpoint(id int) bool {
	// First iteration after a committed view change: every rank
	// checkpoints immediately so the shards re-encode over the new
	// groups (the shard-migration step of a resize).
	if p.viewCkpt {
		return true
	}
	if p.latest() == nil && !p.ckptSeeded {
		return true
	}
	// A shadow that adopted its counters from a sync snapshot has no
	// entry yet but must stay in lockstep with its primary: it neither
	// checkpoints ahead of schedule (the group exchange is collective —
	// alone it would deadlock) nor skips a scheduled wave (every
	// exchange send bumps the mirrored sequence numbers, so sitting one
	// out would desynchronise the pair's streams for good). The adopted
	// lastCkpt/interval put it on exactly the primary's schedule.
	return id-p.lastCkpt >= p.interval
}

// tuneInterval applies Vaidya's model to the measured iteration and
// checkpoint costs (paper §III-B: "FMI dynamically auto-tunes the
// checkpoint interval to maximize efficiency according to the MTBF
// based on Vaidya's model").
func (p *Proc) tuneInterval() int {
	if p.ckptEWMA == 0 || p.iterEWMA == 0 || p.cfg.MTBF == 0 {
		return p.interval
	}
	return model.VaidyaIterations(p.ckptEWMA, p.cfg.MTBF, p.iterEWMA)
}

// negotiateRestore is the epoch's restore agreement, run at the end of
// every generation build: all ranks publish the newest checkpoint they
// hold, agree on the rollback point (the newest id available on every
// survivor), and each XOR group containing a replaced rank
// reconstructs its checkpoint (paper Fig 11: decode + gather).
func (p *Proc) negotiateRestore() error {
	coord := p.cfg.Ctl.Coordinator()
	cancel := p.gen.cancelCh
	key := fmt.Sprintf("avail/%d", p.epoch)
	vals, err := coord.AllGather(key, p.rank, p.n, encodeAvail(p.availNow()), cancel)
	if err != nil {
		return ErrFailureDetected
	}
	infos := make([]availInfo, p.n)
	for r, v := range vals {
		infos[r] = decodeAvail(v)
	}

	restoreID := -2
	// allClean: every rank is either a survivor parked exactly at a
	// committed fence cut or a fresh grow joiner — a clean view change
	// with nobody lost and no app progress since the cut. Any
	// replacement (somebody died) or any rank that resumed application
	// code since the fence makes a rollback necessary: a spurious epoch
	// bump mid-iteration leaves ranks divergent even though no process
	// was replaced.
	allClean := true
	for _, in := range infos {
		if in.IsReplacement {
			allClean = false
			continue
		}
		if in.Fresh {
			// A joiner provisioned by a grow fence holds no checkpoint
			// and must not drag the agreed restore point to -1.
			continue
		}
		if !in.Clean {
			allClean = false
		}
		if restoreID == -2 || int(in.AvailID) < restoreID {
			restoreID = int(in.AvailID)
		}
	}
	// amFresh: this process is a replacement that has not yet restored.
	// In local mode only fresh replacements roll back; survivors keep
	// their live state and merely serve replay.
	amFresh := infos[p.rank].IsReplacement
	if restoreID <= -1 || allClean {
		// Nothing to repair: either the failure hit before the first
		// checkpoint completed anywhere (replacements start fresh), or
		// this is a clean view-change fence — grow/shrink with no rank
		// lost — where survivors keep their live state and never roll
		// back. In local mode survivors still replay their logs so a
		// restarted rank's re-execution receives what it missed.
		if infos[p.rank].Fresh {
			// Fresh joiner: align the checkpoint ordinal, interval, and
			// logging era with the survivors so the level-2 cadence and
			// the log-trim keys stay globally agreed.
			for _, in := range infos {
				if in.Fresh || in.IsReplacement {
					continue
				}
				if int(in.L1Count) > p.l1Count {
					p.l1Count = int(in.L1Count)
					p.interval = int(in.Interval)
				}
				if in.Era > p.logEra {
					p.logEra = in.Era
				}
			}
		}
		if !p.cfg.Local {
			p.recycleEntry(p.staged)
		}
		p.staged = nil
		p.pendingID = -1
		p.pendingApplied = false
		p.reexecPending = false
		if p.cfg.Local {
			if err := p.replayExchange(); err != nil {
				return err
			}
		}
		return p.barrierH3(coord, cancel)
	}
	// If the damage exceeds what the XOR groups can repair, fall back
	// to the newest level-2 (PFS) checkpoint — multilevel C/R, the
	// paper's §VIII future work. Every rank computes the same decision
	// from the shared avail vector.
	if !p.level1Feasible(infos, restoreID) {
		if err := p.restoreL2(); err != nil {
			return err
		}
		if p.cfg.Local {
			// The fallback is a *global* rollback: every rank restarts
			// its message streams from scratch, so all logging state
			// resets and no replay runs. The log era moves to the
			// fallback epoch (job-wide agreed) so pending trim rounds
			// from the abandoned era can never collide with new ones
			// after l1Count rolls back.
			p.log.Reset()
			p.carrySeen, p.carryQueue = nil, nil
			p.gen.m.ResetSeen()
			p.logEra = p.epoch
			p.reexecPending = false
		}
		return p.barrierH3(coord, cancel)
	}

	// Adopt the interval recorded by the lowest-ranked survivor
	// holding the restore point (keeps the checkpoint schedule
	// globally consistent even when a failure interrupted an interval
	// re-tune broadcast). Local-mode survivors skip this: they keep
	// running with their current schedule, and a replacement converges
	// through the replayed re-tune broadcast it re-executes.
	if !p.cfg.Local || amFresh {
		for _, in := range infos {
			if !in.IsReplacement && int(in.AvailID) == restoreID {
				p.interval = int(in.Interval)
				break
			}
		}
	}

	// Select the local entry for restoreID (roll a fully staged entry
	// forward, or discard it). A local-mode survivor blocked inside an
	// in-flight checkpoint call keeps driving that call after recovery,
	// so the roll-forward here is only bookkeeping either way.
	if p.staged != nil {
		if p.staged.Snap.LoopID == restoreID {
			p.recycleEntry(p.committed)
			p.committed = p.staged
		} else if !p.cfg.Local {
			// A local-mode survivor may still be driving the checkpoint
			// call that staged this entry (it commits after riding the
			// fence), so only global mode recycles discarded stages.
			p.recycleEntry(p.staged)
		}
		p.staged = nil
	}

	if err := p.groupRestore(p.groups[p.rank], p.gidx[p.rank], infos, restoreID); err != nil {
		return err
	}
	if p.cfg.Local {
		if amFresh {
			p.pendingID = restoreID
			p.pendingApplied = false
			p.reexecPending = true
		} else {
			p.pendingID = -1
		}
		// Replay after the replacement seeded its restored watermarks
		// (groupRestore), so the gathered vectors are authoritative.
		if err := p.replayExchange(); err != nil {
			return err
		}
	} else {
		p.pendingID = restoreID
		p.pendingApplied = false
	}
	return p.barrierH3(coord, cancel)
}

func (p *Proc) barrierH3(coord *bootstrap.Coordinator, cancel <-chan struct{}) error {
	if err := coord.Barrier(fmt.Sprintf("h3/%d", p.epoch), p.rank, p.n, cancel); err != nil {
		return ErrFailureDetected
	}
	return nil
}

// groupRestore reconstructs the checkpoints of the replaced ranks
// within this process's checkpoint group (paper Fig 11: decode +
// gather, generalised to the configured Coder so RS(k,m) groups repair
// up to m simultaneous losses), then re-encodes so the group regains
// full redundancy.
func (p *Proc) groupRestore(group []int, gi int, infos []availInfo, restoreID int) error {
	g := len(group)
	var lost []int
	for i, r := range group {
		if infos[r].IsReplacement {
			lost = append(lost, i)
		}
	}
	if len(lost) == 0 {
		return nil
	}
	if tol := p.coder.Tolerance(g); len(lost) > tol {
		return fmt.Errorf("%w: %d ranks lost in one group (%s tolerates %d; paper §VIII)",
			ErrUnrecoverable, len(lost), p.coder.Scheme(), tol)
	}
	gc := &groupComm{p, group}
	lostSet := make(map[int]bool, len(lost))
	for _, li := range lost {
		lostSet[li] = true
	}

	// The informant (lowest-indexed survivor) briefs the replacements.
	informant := 0
	for lostSet[informant] {
		informant++
	}

	if !lostSet[gi] {
		e := p.committed
		if e == nil || e.Snap.LoopID != restoreID || e.Parity == nil {
			return fmt.Errorf("%w: survivor rank %d missing checkpoint %d for group decode", ErrUnrecoverable, p.rank, restoreID)
		}
		if gi == informant {
			bf := encodeBrief(brief{
				ChunkLen:  e.ChunkLen,
				RestoreID: restoreID,
				NextCtx:   e.NextCtx,
				CommSeq:   e.CommSeq,
				L1Count:   e.L1Count,
				Sizes:     e.GroupSizes,
				Shapes:    e.GroupShapes,
				MsgStates: e.GroupMsgStates,
			})
			for _, li := range lost {
				if err := p.sendRaw(group[li], ctxWorld, tagCkptMeta, transport.KindCkpt, bf); err != nil {
					return err
				}
			}
		}
		if _, err := p.coder.Reconstruct(gc, gi, g, lost, e.Snap.Data, e.Parity, e.ChunkLen); err != nil {
			return ErrFailureDetected
		}
		// Restore redundancy for the rebuilt members.
		parity, err := p.coder.Encode(gc, gi, g, e.Snap.Data, e.ChunkLen)
		if err != nil {
			return ErrFailureDetected
		}
		if e.pooledParity {
			p.pool.Put(e.Parity)
		}
		e.Parity = parity
		e.pooledParity = p.pool != nil
		return nil
	}

	// This process is a replacement: receive the brief, gather the
	// survivors' shards into the lost checkpoint, re-encode for parity.
	msg, err := p.recvRaw(ctxWorld, int32(group[informant]), tagCkptMeta)
	if err != nil {
		return ErrFailureDetected
	}
	b, err := decodeBrief(msg.Data)
	msg.Release() // decode copied every field
	if err != nil {
		return fmt.Errorf("%w: %v", ErrUnrecoverable, err)
	}
	start := time.Now()
	data, err := p.coder.Reconstruct(gc, gi, g, lost, nil, nil, b.ChunkLen)
	if err != nil {
		return ErrFailureDetected
	}
	mySize := b.Sizes[gi]
	snap := ckpt.FromData(b.RestoreID, data[:mySize], b.Shapes[gi])
	p.cfg.Trace.Add(trace.KindShardRebuild, p.rank, p.epoch,
		"%s rebuild: %d B from in-memory shards in %v (%d lost in group of %d)",
		p.coder.Scheme(), mySize, time.Since(start), len(lost), g)
	parity, err := p.coder.Encode(gc, gi, g, snap.Data, b.ChunkLen)
	if err != nil {
		return ErrFailureDetected
	}
	p.recycleEntry(p.committed)
	p.committed = &entryExt{
		Entry: &ckpt.Entry{
			Snap:       snap,
			Parity:     parity,
			Scheme:     p.coder.Scheme(),
			Shards:     len(parity) / b.ChunkLen,
			ChunkLen:   b.ChunkLen,
			GroupSizes: b.Sizes,
			GroupLoop:  b.RestoreID,
		},
		Interval:       p.interval,
		GroupShapes:    b.Shapes,
		NextCtx:        b.NextCtx,
		CommSeq:        b.CommSeq,
		L1Count:        b.L1Count,
		ViewVersion:    p.viewVersion(),
		GroupMsgStates: b.MsgStates,
		// The rebuilt snapshot aliases the reconstruction buffer (never
		// pooled); the re-encoded parity is pool-recyclable.
		pooledParity: p.pool != nil,
	}
	if p.cfg.Local && gi < len(b.MsgStates) && len(b.MsgStates[gi]) > 0 {
		if err := p.restoreMsgState(b.MsgStates[gi]); err != nil {
			return fmt.Errorf("%w: %v", ErrUnrecoverable, err)
		}
	}
	return nil
}

// restoreMsgState adopts the checkpointed messaging state on a
// respawned rank: send counters resume so re-executed sends reproduce
// their original sequence numbers, receive watermarks suppress already
// -consumed duplicates, and the captured unexpected queue is restored.
// The pending trim round is contributed later, when the re-executed
// checkpoint exchange (Loop's restore path) commits.
func (p *Proc) restoreMsgState(blob []byte) error {
	st, err := decodeMsgState(blob)
	if err != nil {
		return err
	}
	if err := p.log.RestoreSendSeqs(st.SendSeqs); err != nil {
		return err
	}
	p.logEra = st.Era
	p.gen.m.SeedSeen(st.Seen)
	if len(st.Queue) > 0 {
		p.gen.m.Inject(st.Queue)
	}
	return nil
}
