package core

import (
	"encoding/binary"
	"fmt"
	"time"

	"fmi/internal/ckpt"
	"fmi/internal/trace"
	"fmi/internal/transport"
)

// groupComm adapts the FMI transport to ckpt's ring interface for one
// XOR group; peers are group-local indices.
type groupComm struct {
	p       *Proc
	members []int // world ranks
}

func (gc *groupComm) Send(peer int, data []byte) error {
	return gc.p.sendRaw(gc.members[peer], ctxWorld, tagCkptRing, transport.KindCkpt, data)
}

func (gc *groupComm) Recv(peer int) ([]byte, error) {
	msg, err := gc.p.recvRaw(ctxWorld, int32(gc.members[peer]), tagCkptRing)
	if err != nil {
		return nil, err
	}
	return msg.Data, nil
}

// Release implements ckpt.Releaser: the coders hand back every ring
// chain and RS chunk they consume, so the encode/decode exchanges run
// allocation-free over the shared arena. With pooling disabled Put is
// a no-op.
func (gc *groupComm) Release(buf []byte) { gc.p.pool.Put(buf) }

// groupMeta is exchanged within a group at encode time so any survivor
// can brief a restarted member. In local mode it carries the sender's
// serialized messaging state (replicated, not parity-encoded — see
// msgState).
type groupMeta struct {
	TotalSize int
	Shape     []int  // per-segment sizes of this rank's snapshot
	MsgState  []byte // serialized msgState (local mode; nil otherwise)
}

func encodeGroupMeta(m groupMeta) []byte {
	out := make([]byte, 0, 12+4*len(m.Shape)+len(m.MsgState))
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(m.TotalSize))
	out = append(out, b[:]...)
	binary.LittleEndian.PutUint32(b[:], uint32(len(m.Shape)))
	out = append(out, b[:]...)
	for _, s := range m.Shape {
		binary.LittleEndian.PutUint32(b[:], uint32(s))
		out = append(out, b[:]...)
	}
	binary.LittleEndian.PutUint32(b[:], uint32(len(m.MsgState)))
	out = append(out, b[:]...)
	out = append(out, m.MsgState...)
	return out
}

func decodeGroupMeta(data []byte) (groupMeta, error) {
	if len(data) < 8 {
		return groupMeta{}, fmt.Errorf("fmi: truncated group meta")
	}
	m := groupMeta{TotalSize: int(binary.LittleEndian.Uint32(data))}
	k := int(binary.LittleEndian.Uint32(data[4:]))
	data = data[8:]
	if len(data) < 4*k {
		return groupMeta{}, fmt.Errorf("fmi: truncated group meta shape")
	}
	m.Shape = make([]int, k)
	for i := 0; i < k; i++ {
		m.Shape[i] = int(binary.LittleEndian.Uint32(data[4*i:]))
	}
	data = data[4*k:]
	if len(data) < 4 {
		return groupMeta{}, fmt.Errorf("fmi: truncated group meta msgstate")
	}
	ms := int(binary.LittleEndian.Uint32(data))
	data = data[4:]
	if len(data) < ms {
		return groupMeta{}, fmt.Errorf("fmi: truncated group meta msgstate")
	}
	if ms > 0 {
		m.MsgState = make([]byte, ms)
		copy(m.MsgState, data[:ms])
	}
	return m, nil
}

// entryExt extends the ckpt.Entry with the runtime state that must be
// agreed across ranks for a consistent rollback.
type entryExt struct {
	*ckpt.Entry
	Interval    int
	GroupShapes [][]int // segment shape of each group member
	NextCtx     uint32  // communicator context counter at capture time
	CommSeq     int     // communicator creation counter at capture time
	L1Count     int     // level-1 checkpoint ordinal (level-2 cadence)
	// ViewVersion is the membership view the shards were encoded under.
	// A checkpoint from an older view cannot feed a group decode — its
	// parity chain spans the wrong member set — so restores treat it as
	// parity-less until the post-fence checkpoint re-encodes.
	ViewVersion uint64
	// GroupMsgStates holds each group member's serialized msgState at
	// this checkpoint (local mode): replicated so any survivor can hand
	// a respawned member its messaging state along with the brief.
	GroupMsgStates [][]byte
	// pooledSnap/pooledParity mark buffers this runtime drew from the
	// arena (or may safely donate to it): recycleEntry returns them when
	// the entry retires. Entries rebuilt from reconstruction output or
	// level-2 blobs are never flagged — their buffers alias larger
	// allocations the pool must not adopt.
	pooledSnap   bool
	pooledParity bool
}

// recycleEntry returns a retired entry's flagged buffers to the arena.
// Callers must guarantee the entry is unreachable: it has been replaced
// as the committed checkpoint, or discarded from staging in global mode
// (local-mode staged entries may still be driven by an in-flight
// checkpoint call riding through the fence, so they are never recycled
// from the restore path).
func (p *Proc) recycleEntry(e *entryExt) {
	if e == nil {
		return
	}
	if e.pooledSnap && e.Snap != nil {
		p.pool.Put(e.Snap.Data)
		e.Snap = nil
	}
	if e.pooledParity && e.Parity != nil {
		p.pool.Put(e.Parity)
		e.Parity = nil
	}
	e.pooledSnap, e.pooledParity = false, false
}

// brief is what the informant survivor sends a restarted group member.
type brief struct {
	ChunkLen  int
	RestoreID int
	NextCtx   uint32
	CommSeq   int
	L1Count   int
	Sizes     []int    // checkpoint byte sizes per group member
	Shapes    [][]int  // segment shapes per group member
	MsgStates [][]byte // all members' checkpointed msgStates (local mode)
}

func encodeBrief(b brief) []byte {
	var out []byte
	put := func(v uint32) {
		var w [4]byte
		binary.LittleEndian.PutUint32(w[:], v)
		out = append(out, w[:]...)
	}
	put(uint32(b.ChunkLen))
	put(uint32(b.RestoreID))
	put(b.NextCtx)
	put(uint32(b.CommSeq))
	put(uint32(b.L1Count))
	put(uint32(len(b.Sizes)))
	for _, s := range b.Sizes {
		put(uint32(s))
	}
	put(uint32(len(b.Shapes)))
	for _, sh := range b.Shapes {
		put(uint32(len(sh)))
		for _, s := range sh {
			put(uint32(s))
		}
	}
	put(uint32(len(b.MsgStates)))
	for _, ms := range b.MsgStates {
		put(uint32(len(ms)))
		out = append(out, ms...)
	}
	return out
}

func decodeBrief(data []byte) (brief, error) {
	var b brief
	get := func() (uint32, error) {
		if len(data) < 4 {
			return 0, fmt.Errorf("fmi: truncated restore brief")
		}
		v := binary.LittleEndian.Uint32(data)
		data = data[4:]
		return v, nil
	}
	vals := make([]uint32, 6)
	for i := range vals {
		v, err := get()
		if err != nil {
			return b, err
		}
		vals[i] = v
	}
	b.ChunkLen = int(vals[0])
	b.RestoreID = int(int32(vals[1]))
	b.NextCtx = vals[2]
	b.CommSeq = int(vals[3])
	b.L1Count = int(vals[4])
	b.Sizes = make([]int, vals[5])
	for i := range b.Sizes {
		v, err := get()
		if err != nil {
			return b, err
		}
		b.Sizes[i] = int(v)
	}
	nsh, err := get()
	if err != nil {
		return b, err
	}
	b.Shapes = make([][]int, nsh)
	for i := range b.Shapes {
		k, err := get()
		if err != nil {
			return b, err
		}
		b.Shapes[i] = make([]int, k)
		for j := range b.Shapes[i] {
			v, err := get()
			if err != nil {
				return b, err
			}
			b.Shapes[i][j] = int(v)
		}
	}
	nms, err := get()
	if err != nil {
		return b, err
	}
	b.MsgStates = make([][]byte, nms)
	for i := range b.MsgStates {
		ms, err := get()
		if err != nil {
			return b, err
		}
		if len(data) < int(ms) {
			return b, fmt.Errorf("fmi: truncated restore brief msgstate")
		}
		if ms > 0 {
			b.MsgStates[i] = make([]byte, ms)
			copy(b.MsgStates[i], data[:ms])
			data = data[ms:]
		}
	}
	return b, nil
}

// checkpoint captures, encodes, and (on global agreement) commits a
// level-1 checkpoint of the segments at loop id (paper §V-A / Fig 9).
//
// The capture+encode stages are pipelined: the snapshot's size and
// shape are pure functions of the registered segments, so the group
// meta is posted before the memcpy capture — peers overlap their own
// capture with this rank's meta latency — and the capture itself lands
// in a pooled buffer recycled when the entry eventually retires.
func (p *Proc) checkpoint(id int, segs [][]byte) error {
	start := time.Now()
	group := p.groups[p.rank]
	gi := p.gidx[p.rank]
	g := len(group)

	total := ckpt.TotalSize(segs)
	shape := make([]int, len(segs))
	for i, s := range segs {
		shape[i] = len(s)
	}
	msgState, seenAtCapture := p.captureMsgState()

	p.l1Count++
	entry := &entryExt{
		Entry:       &ckpt.Entry{GroupLoop: id},
		Interval:    p.interval,
		NextCtx:     p.nextCtx,
		CommSeq:     p.commSeq,
		L1Count:     p.l1Count,
		ViewVersion: p.viewVersion(),
	}
	if p.cfg.Local {
		entry.GroupMsgStates = make([][]byte, g)
		entry.GroupMsgStates[gi] = msgState
	}

	if g >= 2 {
		// Exchange sizes and segment shapes (plus, in local mode, each
		// member's messaging state) within the group. Posted before the
		// capture so the exchange is in flight while segments copy.
		meta := encodeGroupMeta(groupMeta{TotalSize: total, Shape: shape, MsgState: msgState})
		for i, r := range group {
			if i == gi {
				continue
			}
			if err := p.sendRaw(r, ctxWorld, tagCkptSize, transport.KindCkpt, meta); err != nil {
				return err
			}
		}
	}

	snap := ckpt.CaptureInto(id, segs, p.pool.Get(total))
	entry.Snap = snap
	entry.pooledSnap = p.pool != nil

	if g >= 2 {
		sizes := make([]int, g)
		shapes := make([][]int, g)
		sizes[gi] = total
		shapes[gi] = shape
		for i, r := range group {
			if i == gi {
				continue
			}
			msg, err := p.recvRaw(ctxWorld, int32(r), tagCkptSize)
			if err != nil {
				p.recycleEntry(entry)
				return err
			}
			gm, err := decodeGroupMeta(msg.Data)
			msg.Release() // decode copied every field
			if err != nil {
				p.recycleEntry(entry)
				return err
			}
			sizes[i] = gm.TotalSize
			shapes[i] = gm.Shape
			if p.cfg.Local {
				entry.GroupMsgStates[i] = gm.MsgState
			}
		}
		maxSize := 0
		for _, s := range sizes {
			if s > maxSize {
				maxSize = s
			}
		}
		chunkLen := p.coder.ChunkLen(maxSize, g)
		encStart := time.Now()
		parity, err := p.coder.Encode(&groupComm{p, group}, gi, g, snap.Data, chunkLen)
		if err != nil {
			// The transports copy at Send, so nothing aliases the pooled
			// snapshot once Encode unwinds; recycle before abandoning.
			p.recycleEntry(entry)
			return err
		}
		entry.Parity = parity
		entry.pooledParity = p.pool != nil
		entry.Scheme = p.coder.Scheme()
		entry.Shards = len(parity) / chunkLen
		entry.ChunkLen = chunkLen
		entry.GroupSizes = sizes
		entry.GroupShapes = shapes
		p.cfg.Trace.Add(trace.KindShardEncode, p.rank, p.epoch,
			"%s encode: %d parity shard(s) x %d B in %v (group of %d)",
			entry.Scheme, entry.Shards, chunkLen, time.Since(encStart), g)
	}
	p.stage(entry)

	// Global completion agreement: all ranks must hold the new
	// checkpoint before anyone retires the previous one. Rank 0
	// piggybacks the next auto-tuned interval on the release wave.
	next := p.interval
	if p.rank == 0 && p.autoInterval && !p.reexec {
		// During a replacement's checkpoint re-execution the negotiated
		// (post-agree) interval is rebroadcast verbatim: re-tuning from
		// this incarnation's EWMAs could hand a still-blocked survivor a
		// different value than the original wave delivered.
		next = p.tuneInterval()
	}
	var payload [8]byte
	binary.LittleEndian.PutUint32(payload[:4], uint32(next))
	binary.LittleEndian.PutUint32(payload[4:], uint32(p.l1Count))
	// Note: on failure the fully-encoded staged entry is deliberately
	// retained — if every rank finished encoding before the failure,
	// the restore negotiation will roll forward to it; otherwise it
	// will roll back to the committed one and recovery discards it.
	out, err := p.world.agreeBcast(tagCkptAgree, payload[:])
	if err != nil {
		return err
	}
	p.interval = int(binary.LittleEndian.Uint32(out))
	entry.Interval = p.interval
	if len(out) >= 8 {
		// Adopt the root's checkpoint ordinal: a rank that joined
		// through a grow fence folds onto the survivors' level-2 cadence
		// and log-trim keys regardless of recovery mode.
		p.l1Count = int(binary.LittleEndian.Uint32(out[4:]))
		entry.L1Count = p.l1Count
	}
	// Retirement point: the previous checkpoint is now unreachable on
	// every rank, so its pooled buffers feed the next capture. A
	// local-mode fence may have rolled this very entry forward already —
	// never recycle the entry being committed.
	if p.committed != entry {
		p.recycleEntry(p.committed)
	}
	p.committed = entry
	p.staged = nil
	p.lastCkpt = id
	p.viewCkpt = false // shards now encoded under the current view
	if p.cfg.Local {
		ents, bytes := p.log.Stats()
		p.cfg.Trace.Add(trace.KindMsgLogged, p.rank, p.epoch,
			"log holds %d entries (%d B) at checkpoint %d", ents, bytes, id)
		// Garbage-collect asynchronously: entries every receiver's
		// committed checkpoint acknowledges can never be replayed again.
		go p.trimLog(p.n, entry.L1Count, p.logEra, p.epoch, seenAtCapture)
	}
	if err := p.maybeWriteL2(id); err != nil {
		return err
	}

	d := time.Since(start)
	p.ckptEWMA = ewma(p.ckptEWMA, d)
	p.cfg.Stats.AddCheckpoint(d, len(snap.Data))
	p.cfg.Trace.Add(trace.KindCheckpoint, p.rank, p.epoch, "checkpoint %d (%d B, interval %d)", id, len(snap.Data), p.interval)
	return nil
}

// stage installs a fully-encoded entry as the staging buffer; the
// previously committed checkpoint stays valid until the global
// agreement commits this one (double buffering, paper §V-A).
func (p *Proc) stage(e *entryExt) {
	p.staged = e
}

// latest returns the newest locally available checkpoint: a fully
// staged entry (its encode finished — stage happens only after the
// ring completes) or else the committed one.
func (p *Proc) latest() *entryExt {
	if p.staged != nil {
		return p.staged
	}
	return p.committed
}

// availInfo is this rank's contribution to the restore negotiation.
type availInfo struct {
	AvailID       int32 // newest loop id this rank can restore (-1 none)
	Interval      int32 // interval associated with that checkpoint
	IsReplacement bool
	HasParity     bool   // the entry carries a parity chain decodable under the CURRENT view
	Fresh         bool   // joiner from a grow fence: no checkpoint, nothing lost either
	Clean         bool   // survivor parked at a committed fence cut, no app progress since
	L1Count       uint32 // level-1 checkpoint ordinal (joiners adopt the survivors' max)
	Era           uint32 // logging era (joiners adopt the survivors' max)
}

func (p *Proc) availNow() availInfo {
	e := p.latest()
	info := availInfo{
		AvailID:       -1,
		Interval:      int32(p.interval),
		IsReplacement: e == nil && p.cfg.IsReplacement,
		Fresh:         e == nil && !p.ckptSeeded && !p.cfg.IsReplacement && p.cfg.StartLoop > 0,
		Clean:         p.fenceClean,
		L1Count:       uint32(p.l1Count),
		Era:           p.logEra,
	}
	if e != nil {
		info.AvailID = int32(e.Snap.LoopID)
		info.Interval = int32(e.Interval)
		// Parity encoded under an older membership view spans the wrong
		// group member set: unusable for a decode in this view.
		info.HasParity = e.Parity != nil && e.ViewVersion == p.viewVersion()
	}
	return info
}

func encodeAvail(a availInfo) []byte {
	out := make([]byte, 20)
	binary.LittleEndian.PutUint32(out[0:], uint32(a.AvailID))
	binary.LittleEndian.PutUint32(out[4:], uint32(a.Interval))
	if a.IsReplacement {
		out[8] = 1
	}
	if a.HasParity {
		out[9] = 1
	}
	binary.LittleEndian.PutUint32(out[10:], a.L1Count)
	binary.LittleEndian.PutUint32(out[14:], a.Era)
	if a.Fresh {
		out[18] = 1
	}
	if a.Clean {
		out[19] = 1
	}
	return out
}

func decodeAvail(data []byte) availInfo {
	if len(data) < 20 {
		return availInfo{AvailID: -1}
	}
	return availInfo{
		AvailID:       int32(binary.LittleEndian.Uint32(data[0:])),
		Interval:      int32(binary.LittleEndian.Uint32(data[4:])),
		IsReplacement: data[8] == 1,
		HasParity:     data[9] == 1,
		L1Count:       binary.LittleEndian.Uint32(data[10:]),
		Era:           binary.LittleEndian.Uint32(data[14:]),
		Fresh:         data[18] == 1,
		Clean:         data[19] == 1,
	}
}

func ewma(old, sample time.Duration) time.Duration {
	if old == 0 {
		return sample
	}
	return time.Duration(0.7*float64(old) + 0.3*float64(sample))
}
