package core

import (
	"encoding/binary"
	"fmt"
	"time"

	"fmi/internal/trace"
	"fmi/internal/transport"
)

// Replication-based recovery (ISSUE 7, after FTHP-MPI): every rank is
// a primary/shadow pair on distinct nodes, both executing the same
// deterministic application. Sends resolve through the shared replica
// registry and are mirrored to both endpoints of the destination
// pair; since the pair executes in lockstep, each receiver endpoint
// gets two identically-sequenced copies of every message and the
// matcher's arrival watermarks suppress the second. A primary node
// death is then masked by flipping the registry entry to the shadow —
// no epoch bump, no rollback, no replay — and the runtime
// re-provisions a fresh shadow from a spare in the background, synced
// from the primary's live state via a direct snapshot send.
//
// Replica mode requires an explicit checkpoint interval (the MTBF
// auto-tuner feeds on wall-clock measurements, which diverge between
// the two copies and would desynchronise the pair) and one rank per
// node (so a node death maps to exactly one pair member). Both are
// validated at Launch.

// replicaOn reports whether replicated routing is in force. The flag
// is pinned to the INSTALLED generation, not read live from the
// registry: a replica generation has no endpoint table, so a send that
// observed a mid-collective Deactivate must still resolve through the
// registry (whose Lookup now fails with ErrFailureDetected, aborting
// the collective cleanly) rather than fall into the plain path and
// index an empty table. The proc switches paths only at the rebuild
// boundary, when buildGeneration installs a plain generation for the
// degraded epoch.
func (p *Proc) replicaOn() bool {
	return p.gen != nil && p.gen.replica
}

// promotedSelf reports whether THIS process is the promoted shadow now
// acting as its rank's primary. Registry.Promoted is a seat property
// and stays true once a replacement shadow occupies the seat again, so
// every per-process decision (registration side, sync serving, fence
// observer status, degrade parking) must key by the incarnation this
// process registered under. The repRegistered guard keeps a process
// that has never registered from matching: a fresh replacement's
// zero-value repInc would otherwise collide with a promoted launch
// shadow's incarnation 0 and steal the seat's primary slot.
func (p *Proc) promotedSelf() bool {
	return p.cfg.Shadow && p.cfg.Replica != nil && p.repRegistered &&
		p.cfg.Replica.PromotedSelf(p.rank, p.repInc)
}

// sendReplica is sendRaw's replica-mode path: one sequence number per
// destination rank, the same Msg sent to both endpoints of the pair.
// Transports copy the payload at Send, so the double send shares one
// buffer safely.
func (p *Proc) sendReplica(world int, ctx uint32, tag int32, kind byte, payload []byte) error {
	if world < 0 || world >= p.n {
		return fmt.Errorf("%w: %d", ErrInvalidRank, world)
	}
	prim, shad, inc, ok := p.cfg.Replica.LookupInc(world)
	if !ok {
		return ErrFailureDetected
	}
	if inc != p.flipAck[world] {
		// First send after a replacement shadow registered for world:
		// fence the flip before this (mirrored) send resolves, so the
		// fence is exactly the last sequence number the replacement will
		// never see directly.
		p.cfg.Replica.AckShadow(world, p.rank, inc, p.repSeq[world])
		p.flipAck[world] = inc
	}
	p.repSeq[world]++
	msg := transport.Msg{
		Src:   int32(p.rank),
		Tag:   tag,
		Ctx:   ctx,
		Epoch: p.epoch,
		View:  p.viewVersion(),
		Seq:   p.repSeq[world],
		Kind:  kind,
		Data:  payload,
	}
	err := p.gen.ep.Send(prim, msg)
	if shad != transport.NilAddr {
		if err2 := p.gen.ep.Send(shad, msg); err == nil {
			err = err2
		}
	}
	return err
}

// buildReplicaGeneration is buildGeneration for active replica mode:
// no H1 tree exchange, no H2 ring — endpoints rendezvous through the
// registry instead, and failure *notification* is the control plane
// only (masked failures never notify; a pair loss deactivates the
// registry and bumps the epoch, after which the plain path takes
// over).
func (p *Proc) buildReplicaGeneration() error {
	p.checkAlive()
	p.teardownGen(p.gen)
	p.gen = nil
	p.adoptView()
	p.state = StateBootstrapping
	p.cfg.Trace.Add(trace.KindState, p.rank, p.epoch, "H1 bootstrapping (replica)")

	reg := p.cfg.Replica
	g := &generation{
		epoch:     p.epoch,
		failureCh: make(chan struct{}),
		cancelCh:  make(chan struct{}),
		stop:      make(chan struct{}),
		replica:   true,
	}
	ep, err := newEndpoint(&p.cfg)
	if err != nil {
		return fmt.Errorf("fmi: endpoint: %w", err)
	}
	g.ep = ep
	g.m = transport.NewMatcher(ep)
	g.m.AdvanceEpoch(p.epoch)
	g.m.AdvanceView(p.viewVersion())
	// Mirrored sends arrive twice at every endpoint; arrival-time
	// watermarks keep exactly the first copy of each sequence number.
	g.m.EnableDedup(p.n)

	// A promoted shadow IS its rank's primary now: across a view-change
	// fence it re-registers on the primary side of the pair. The check
	// is per-process (incarnation-keyed), not per-seat: a replacement
	// shadow provisioned after the promotion also sees a promoted seat
	// but must register — and keep acting — as the shadow.
	if p.cfg.Shadow && !p.promotedSelf() {
		p.repInc = reg.SetShadow(p.rank, ep.Addr(), p.syncPending)
		p.repRegistered = true
	} else {
		reg.SetPrimary(p.rank, ep.Addr())
	}

	// The replicated analogue of the bootstrap barrier: every pair
	// fully registered before any send resolves.
	cancel, stopCancel := mergeCancel(p.cfg.KillCh, p.cfg.Ctl.EpochNotify(p.epoch))
	defer stopCancel()
	if err := reg.Ready(cancel); err != nil {
		p.teardownGen(g)
		return p.classify(err)
	}

	// Failure watcher: control plane only. The epoch never advances
	// while failures are being masked, so procs sit in this generation
	// for the whole run unless a pair loss degrades the job.
	ctlCh := p.cfg.Ctl.EpochNotify(p.epoch)
	kill := p.cfg.KillCh
	go func(g *generation) {
		defer close(g.cancelCh)
		select {
		case <-ctlCh:
		case <-kill:
			return
		case <-g.stop:
			return
		}
		g.notifiedAt = time.Now()
		p.cfg.Trace.Add(trace.KindNotified, p.rank, g.epoch, "failure notification received")
		close(g.failureCh)
	}(g)

	p.gen = g
	return nil
}

// finalizeReplica is Finalize while replicated routing is in force.
// There is no ring to quiesce; both members of every pair join the
// coordinator barrier (its gather is keyed by rank, so the duplicate
// contribution is absorbed) and tear down.
func (p *Proc) finalizeReplica() error {
	if p.gen.stop != nil {
		select {
		case <-p.gen.stop:
		default:
			close(p.gen.stop)
		}
	}
	if err := p.cfg.Ctl.Coordinator().Barrier(fmt.Sprintf("finalize/%d", p.epoch), p.rank, p.n, p.cfg.KillCh); err != nil {
		return p.classify(err)
	}
	p.finalize = true
	p.state = StateFinalized
	p.cfg.Trace.Add(trace.KindFinalize, p.rank, p.epoch, "finalized")
	p.teardownGen(p.gen)
	return nil
}

// syncSnapshot is a primary's full live state, shipped to a
// re-provisioned shadow: the application segments as of the top of
// the current Loop iteration, the runtime counters that keep the pair
// scheduling checkpoints in lockstep, and the messaging state (send
// sequences, receive watermarks, accepted-but-unconsumed queue) that
// splices the shadow into the mirrored streams without loss or
// duplication.
type syncSnapshot struct {
	LoopID   int
	LastCkpt int
	L1Count  int
	Interval int
	NextCtx  uint32
	CommSeq  int
	Segs     [][]byte
	Msg      msgState
}

func encodeSyncSnapshot(s syncSnapshot) []byte {
	var out []byte
	put32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		out = append(out, b[:]...)
	}
	put32(uint32(s.LoopID))
	put32(uint32(s.LastCkpt))
	put32(uint32(s.L1Count))
	put32(uint32(s.Interval))
	put32(s.NextCtx)
	put32(uint32(s.CommSeq))
	put32(uint32(len(s.Segs)))
	for _, seg := range s.Segs {
		put32(uint32(len(seg)))
		out = append(out, seg...)
	}
	// The messaging state is the trailing component (its codec is
	// self-describing from the front).
	return append(out, encodeMsgState(s.Msg)...)
}

func decodeSyncSnapshot(data []byte) (syncSnapshot, error) {
	var s syncSnapshot
	bad := fmt.Errorf("fmi: truncated shadow sync snapshot")
	get32 := func() (uint32, error) {
		if len(data) < 4 {
			return 0, bad
		}
		v := binary.LittleEndian.Uint32(data)
		data = data[4:]
		return v, nil
	}
	vals := make([]uint32, 7)
	for i := range vals {
		v, err := get32()
		if err != nil {
			return s, err
		}
		vals[i] = v
	}
	s.LoopID = int(int32(vals[0]))
	s.LastCkpt = int(int32(vals[1]))
	s.L1Count = int(vals[2])
	s.Interval = int(vals[3])
	s.NextCtx = vals[4]
	s.CommSeq = int(int32(vals[5]))
	s.Segs = make([][]byte, vals[6])
	for i := range s.Segs {
		n, err := get32()
		if err != nil {
			return s, err
		}
		if len(data) < int(n) {
			return s, bad
		}
		s.Segs[i] = make([]byte, n)
		copy(s.Segs[i], data[:n])
		data = data[n:]
	}
	st, err := decodeMsgState(data)
	if err != nil {
		return s, err
	}
	s.Msg = st
	return s, nil
}

// ackShadowFlips records this copy's flip fence for every destination
// whose shadow incarnation advanced since the last sweep. Senders also
// ack inline in sendReplica (before their first mirrored send); this
// per-Loop sweep covers ranks that happen not to send to the flipped
// destination, so the primary's fence wait in serveShadowSync always
// terminates within about one iteration. A shadow that is itself
// awaiting its sync snapshot must not ack: its stream only begins at
// the snapshot's sequence numbers, so until those are adopted its
// repSeq would understate the fence.
func (p *Proc) ackShadowFlips() {
	reg := p.cfg.Replica
	gen := reg.ShadowGen()
	if gen == p.flipGen {
		return
	}
	for dst := 0; dst < p.n; dst++ {
		if inc := reg.ShadowInc(dst); inc != p.flipAck[dst] {
			reg.AckShadow(dst, p.rank, inc, p.repSeq[dst])
			p.flipAck[dst] = inc
		}
	}
	p.flipGen = gen
}

// serveShadowSync runs on the acting primary at the top of every Loop
// iteration: if a re-provisioned shadow has requested state, capture
// a snapshot and send it directly (never mirrored) to the shadow's
// endpoint. The capture point — before this iteration's checkpoint
// decision — makes the snapshot consistent: every message consumed so
// far shaped the segments; everything else is in the queue snapshot
// or above the watermarks.
//
// The capture is deferred until every sender has acknowledged its flip
// fence AND this matcher's arrival watermarks cover the fences. Until
// then a message sent before the sender began mirroring could still be
// in flight toward this endpoint only — invisible to both the snapshot
// and the replacement — leaving a sequence gap in the replacement's
// stream. Serving waits (retrying at each Loop top) rather than risk
// shipping an uncoverable snapshot.
func (p *Proc) serveShadowSync(segs [][]byte) {
	reg := p.cfg.Replica
	if !reg.SyncPending(p.rank) {
		return
	}
	fences, ok := reg.SyncFences(p.rank)
	if !ok {
		return // some sender has not fenced the flip yet
	}
	have := p.gen.m.SeenVector()
	for s, f := range fences {
		if s == p.rank {
			continue
		}
		if s < len(have) {
			if have[s] < f {
				return // pre-flip traffic still in flight toward us
			}
		} else if f > 0 {
			return
		}
	}
	addr, ok := reg.TakeSyncRequest(p.rank)
	if !ok {
		return
	}
	seen, queue := p.gen.m.HarvestState()
	blob := encodeSyncSnapshot(syncSnapshot{
		LoopID:   p.loopID,
		LastCkpt: p.lastCkpt,
		L1Count:  p.l1Count,
		Interval: p.interval,
		NextCtx:  p.nextCtx,
		CommSeq:  p.commSeq,
		Segs:     segs,
		Msg: msgState{
			SendSeqs: append([]uint64(nil), p.repSeq...),
			Seen:     seen,
			Queue:    queue,
		},
	})
	//fmilint:ignore faulterr a snapshot lost to the shadow's death is repaired by the next re-provision round, which re-arms the request
	_ = p.gen.ep.Send(addr, transport.Msg{
		Src:   int32(p.rank),
		Tag:   tagShadowSync,
		Ctx:   ctxWorld,
		Epoch: p.epoch,
		Kind:  transport.KindCtl,
		Data:  blob,
	})
}

// applyShadowSync runs on a re-provisioned shadow at its first Loop
// call: block for the primary's snapshot, copy it into the
// application segments, adopt the runtime counters, and splice into
// the mirrored message streams. SeedSeenPurge drops the stale copies
// this shadow queued before the snapshot was harvested (they are
// inside the snapshot queue already); Inject restores the primary's
// unconsumed set. Messages racing the harvest are either at or below
// the snapshot watermarks (suppressed on arrival here) or above them
// (delivered fresh) — exactly-once either way.
//
// Messages sent before a sender flipped to mirroring go only to the
// primary and can still be in TCP flight when the snapshot would be
// harvested; the flip fence (see serveShadowSync and ackShadowFlips)
// defers the harvest until the primary's arrival watermarks cover
// every sender's last un-mirrored sequence number, so the snapshot
// plus the mirrored stream leave no gap at this endpoint.
func (p *Proc) applyShadowSync(segs [][]byte) {
	msg, err := p.gen.m.Recv(ctxWorld, int32(p.rank), tagShadowSync, p.gen.cancelCh)
	if err != nil {
		p.checkAlive()
		if p.cfg.Replica.Active() {
			// The epoch advanced under us — a view-change fence committed
			// while the snapshot was pending — but the job is still
			// replicated: rebuild into the new view (re-registering the
			// sync request) and re-drive the pull from Loop.
			p.recover()
			return
		}
		// Degraded (or killed) while waiting: an unsynced shadow has no
		// seat in the rolled-back world — park until the runtime reaps it.
		<-p.cfg.KillCh
		panic(procKilledPanic{})
	}
	snap, derr := decodeSyncSnapshot(msg.Data)
	msg.Release()
	if derr != nil {
		p.fatal(fmt.Errorf("%w: shadow sync: %v", ErrUnrecoverable, derr))
	}
	if len(snap.Segs) != len(segs) {
		p.fatal(fmt.Errorf("%w: shadow sync: %d segments, primary sent %d", ErrUnrecoverable, len(segs), len(snap.Segs)))
	}
	for i, seg := range snap.Segs {
		if len(seg) != len(segs[i]) {
			p.fatal(fmt.Errorf("%w: shadow sync: segment %d is %d B, primary sent %d B", ErrUnrecoverable, i, len(segs[i]), len(seg)))
		}
		copy(segs[i], seg)
	}
	p.loopID = snap.LoopID
	p.lastCkpt = snap.LastCkpt
	p.l1Count = snap.L1Count
	p.interval = snap.Interval
	p.nextCtx = snap.NextCtx
	p.commSeq = snap.CommSeq
	copy(p.repSeq, snap.Msg.SendSeqs)
	p.gen.m.SeedSeenPurge(snap.Msg.Seen)
	if len(snap.Msg.Queue) > 0 {
		p.gen.m.Inject(snap.Msg.Queue)
	}
	p.ckptSeeded = true
	p.syncPending = false
	p.cfg.Replica.MarkSynced(p.rank)
}
