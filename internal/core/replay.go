package core

import (
	"encoding/binary"
	"fmt"

	"fmi/internal/msglog"
	"fmi/internal/trace"
	"fmi/internal/transport"
)

func encodeSeqVec(v []uint64) []byte {
	out := make([]byte, 8*len(v))
	for i, s := range v {
		binary.LittleEndian.PutUint64(out[8*i:], s)
	}
	return out
}

func decodeSeqVec(data []byte) []uint64 {
	v := make([]uint64, len(data)/8)
	for i := range v {
		v[i] = binary.LittleEndian.Uint64(data[8*i:])
	}
	return v
}

// replayExchange is the localized-recovery replay round, run by every
// rank at the end of the epoch's restore negotiation. Each rank
// publishes its receive watermarks ("the highest sequenced message I
// hold from each of you"); every sender then re-transmits the logged
// entries each receiver is missing — a respawned rank's re-execution
// receives them as if nothing happened, and a survivor recovers
// messages that were in flight to its torn-down endpoint during the
// fence. Replays go out before the H3 barrier releases application
// traffic, so per-pair FIFO ordering places them ahead of all
// post-recovery sends.
func (p *Proc) replayExchange() error {
	coord := p.cfg.Ctl.Coordinator()
	cancel := p.gen.cancelCh
	key := fmt.Sprintf("replay/%d", p.epoch)
	vals, err := coord.AllGather(key, p.rank, p.n, encodeSeqVec(p.gen.m.SeenVector()), cancel)
	if err != nil {
		return ErrFailureDetected
	}
	plan := make([][]msglog.Entry, p.n)
	total := 0
	for dst := 0; dst < p.n; dst++ {
		if dst == p.rank {
			continue
		}
		want := decodeSeqVec(vals[dst])
		if p.rank >= len(want) {
			continue
		}
		ents := p.log.After(dst, want[p.rank])
		plan[dst] = ents
		total += len(ents)
	}
	if total == 0 {
		return nil
	}
	p.cfg.Trace.Add(trace.KindReplayStart, p.rank, p.epoch, "replaying %d logged message(s)", total)
	for dst, ents := range plan {
		if len(ents) == 0 {
			continue
		}
		addr, err := p.addrOf(dst)
		if err != nil {
			continue
		}
		for _, e := range ents {
			// Direct endpoint send: the entry is already logged (same
			// sequence number), and the receiver's watermark filters it
			// if the original actually arrived. Send errors only when
			// *this* endpoint is closed, which means this rank is being
			// torn down — the kill channel, not the error, is the signal.
			//fmilint:ignore faulterr replay resends are fire-and-forget; drops to dead peers are silent (PSM) and a closed own endpoint is surfaced via KillCh
			p.gen.ep.Send(addr, transport.Msg{
				Src:   int32(p.rank),
				Tag:   e.Tag,
				Ctx:   e.Ctx,
				Epoch: p.epoch,
				View:  p.viewVersion(),
				Seq:   e.Seq,
				Kind:  e.Kind,
				Flags: transport.FlagReplay,
				Data:  e.Data,
			})
		}
	}
	p.cfg.Trace.Add(trace.KindReplayDone, p.rank, p.epoch, "replayed %d message(s)", total)
	p.cfg.Stats.AddReplay(total)
	return nil
}

// trimLog garbage-collects the sender log once every rank's committed
// checkpoint acknowledges receipt (the log stays bounded by one
// checkpoint interval of traffic). Runs asynchronously: the all-gather
// completes when the last rank commits the same checkpoint — or, after
// a failure, when the respawned rank re-executes the checkpoint
// exchange and commits it again. The key is scoped by the log era so a
// level-2 fallback (which rolls l1Count back) can never mix a fresh
// round with stale pre-fallback contributions. n, era, and epoch are
// passed by value: the goroutine must not read p.n, p.logEra, or
// p.epoch, which the application thread mutates during recovery and
// view changes.
func (p *Proc) trimLog(n, l1Count int, era, epoch uint32, seen []uint64) {
	vals, err := p.cfg.Ctl.Coordinator().AllGather(
		fmt.Sprintf("trim/%d/%d", era, l1Count), p.rank, n, encodeSeqVec(seen), p.cfg.KillCh)
	if err != nil {
		return
	}
	acked := make([]uint64, n)
	// A checkpoint re-committed after recovery reuses its trim key, and
	// the world may have resized since the original round completed: the
	// cached gather result can be shorter than today's n. Ranks missing
	// from it simply ack nothing — trimming less is always safe.
	for dst := 0; dst < n && dst < len(vals); dst++ {
		if dst == p.rank {
			continue
		}
		v := decodeSeqVec(vals[dst])
		if p.rank < len(v) {
			acked[dst] = v[p.rank]
		}
	}
	ents, bytes := p.log.Trim(acked)
	if ents > 0 {
		p.cfg.Trace.Add(trace.KindLogTrim, p.rank, epoch,
			"released %d entr(ies), %d B (checkpoint %d committed everywhere)", ents, bytes, l1Count)
	}
}
