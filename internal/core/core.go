// Package core implements the FMI runtime proper (paper §III–§V): the
// per-rank process state machine (Bootstrapping H1 → Connecting H2 →
// Running H3), virtual FMI ranks resolved through an epoch-versioned
// endpoint table, MPI-style point-to-point and collective operations
// that fail fast once a failure is notified, and FMI_Loop — the single
// call that checkpoints, detects failures, recovers communicators, and
// rolls the application back transparently.
package core

import (
	"errors"
	"sync"
	"time"

	"fmi/internal/bootstrap"
	"fmi/internal/bufpool"
	"fmi/internal/coll"
	"fmi/internal/replica"
	"fmi/internal/trace"
	"fmi/internal/transport"
	"fmi/internal/view"
)

// Errors surfaced to applications.
var (
	// ErrFailureDetected is returned by every communication call
	// between the moment a failure is notified and the completion of
	// recovery inside Loop (paper §III-B: "all FMI communication calls
	// return an error until recovery is performed in FMI_Loop").
	ErrFailureDetected = errors.New("fmi: failure detected; call Loop to recover")
	// ErrKilled unwinds a killed process; applications never see it.
	ErrKilled = errors.New("fmi: process killed")
	// ErrUnrecoverable reports a failure outside what level-1
	// checkpointing can repair (e.g. two losses in one XOR group).
	ErrUnrecoverable = errors.New("fmi: unrecoverable failure")
	// ErrFinalized is returned by operations after Finalize.
	ErrFinalized = errors.New("fmi: already finalized")
	// ErrInvalidRank reports an out-of-range peer.
	ErrInvalidRank = errors.New("fmi: invalid rank")
)

// State is the process state of Fig 5.
type State int

const (
	// StateBootstrapping (H1): launching/relaunching, exchanging
	// endpoints.
	StateBootstrapping State = iota
	// StateConnecting (H2): building the log-ring overlay.
	StateConnecting
	// StateRunning (H3): executing application code.
	StateRunning
	// StateFinalized: the process has left the job.
	StateFinalized
)

func (s State) String() string {
	switch s {
	case StateBootstrapping:
		return "H1-bootstrapping"
	case StateConnecting:
		return "H2-connecting"
	case StateRunning:
		return "H3-running"
	case StateFinalized:
		return "finalized"
	}
	return "unknown"
}

// Reserved tag space. User tags must be >= 0; the runtime owns the
// negative space.
const (
	tagBcast     int32 = -1
	tagReduce    int32 = -2
	tagGather    int32 = -3
	tagScatter   int32 = -4
	tagAlltoall  int32 = -5
	tagBarrierUp int32 = -6
	tagBarrierDn int32 = -7 // retired: barrier runs as one schedule on tagBarrierUp
	tagAllreduce int32 = -8
	tagAllgather int32 = -9
	tagCkptRing  int32 = -20 // XOR encode/decode ring traffic
	tagCkptSize  int32 = -21 // group size exchange
	tagCkptMeta  int32 = -22 // runtime meta to restarted ranks
	tagCkptChunk int32 = -23 // decode gather chunks
	tagCkptAgree int32 = -24 // checkpoint completion tree
	// tagShadowSync carries a primary's full state snapshot to a
	// re-provisioned shadow (replica recovery); sent directly, never
	// mirrored, with Seq 0 so it bypasses the dedup watermarks.
	tagShadowSync int32 = -25
)

// ctxWorld is the context id of the world communicator; runtime
// -internal traffic shares it with reserved tags.
const ctxWorld uint32 = 1

// AnySource matches any sending rank in Recv.
const AnySource = int(transport.AnySource)

// L2Store is the level-2 (parallel file system) checkpoint target;
// the scr package's Manager implements it.
type L2Store interface {
	WriteL2(rank, id int, data []byte) error
	ReadL2(rank, id int) ([]byte, error)
	CommitL2(id int)
	LatestL2() int
}

// Control is the process's link to the fmirun process manager. The
// runtime package implements it; tests provide lightweight fakes.
type Control interface {
	// Coordinator returns the job's rendezvous service (endpoint
	// exchange, recovery rounds, communicator-creation caching).
	Coordinator() *bootstrap.Coordinator
	// AwaitEpoch blocks until the job epoch is >= min and returns the
	// current epoch.
	AwaitEpoch(min uint32, cancel <-chan struct{}) (uint32, error)
	// EpochNotify returns a channel closed when the job epoch first
	// exceeds e — the control-plane fallback failure notification.
	EpochNotify(e uint32) <-chan struct{}
	// ReportLoop informs the manager (and the fault injector) that
	// rank completed the given loop iteration.
	ReportLoop(rank, loopID int)
	// Abort reports an unrecoverable condition; the manager tears the
	// job down.
	Abort(err error)
}

// ResizeOutcome is JoinResize's verdict for one rank at one Loop
// fence check.
type ResizeOutcome struct {
	// Proceed means the fence is still collecting acks (phase 1): the
	// rank recorded its position and should run this iteration
	// normally, checking again at the next Loop top.
	Proceed bool
	// View is the newly installed membership view once the fence
	// committed (phase 2 release). Nil while Proceed is true.
	View *view.View
	// Retired means this rank is not part of the new view; the proc
	// must stop executing application code and wait to be torn down.
	Retired bool
}

// ViewControl is the optional elastic-membership extension of Control.
// The runtime's Job implements it; the proc discovers it by type
// assertion so fixed-size fakes and baselines need not change.
type ViewControl interface {
	// CurrentView returns the membership view currently in force.
	CurrentView() *view.View
	// ResizePending returns the ticket of the armed resize fence, or 0
	// when no resize is pending.
	ResizePending() uint64
	// JoinResize is called by each rank (and each synced shadow, with
	// observer=true) at the top of Loop while a resize is pending. In
	// phase 1 it records (rank, loopID) and returns Proceed. Once every
	// live participant has acked, the coordinator fixes the cut loop;
	// a rank arriving with loopID == cut blocks here (phase 2) until
	// all participants are parked, the fence commits, and the new view
	// is released to it. cancel aborts the wait (the rank was killed).
	JoinResize(ticket uint64, rank, loopID int, observer bool, cancel <-chan struct{}) (ResizeOutcome, error)
	// RequestResize arms a resize toward n total ranks and returns
	// without waiting for the fence to commit.
	RequestResize(n int) error
	// MarkFinalizing records that rank reached Finalize; an armed,
	// uncommitted resize fence is aborted (a finalizing rank can no
	// longer park at a future loop).
	MarkFinalizing(rank int)
}

// Config configures one rank's runtime.
type Config struct {
	Rank, N       int
	ProcsPerNode  int
	Epoch         uint32 // epoch current at spawn time
	IsReplacement bool   // spawned to replace a failed rank
	// View is the membership view current at spawn time; nil falls
	// back to a fixed world of N ranks (legacy fakes and baselines).
	// When Ctl implements ViewControl the proc re-reads the live view
	// at every recovery fence.
	View *view.View
	// StartLoop is the loop id this proc begins at — non-zero for
	// ranks joining an already-running job through a grow fence.
	StartLoop int
	Interval  int // checkpoint every Interval loops; 0 = auto-tune from MTBF
	MTBF      time.Duration
	GroupSize int // checkpoint group size (paper default 16)
	RingBase  int // log-ring base k (paper default 2)
	// Redundancy is the number of parity shards each group member
	// stores (m): 1 selects the paper's ring-XOR encoding (one loss
	// per group), >= 2 selects Reed-Solomon RS(k,m) tolerating m
	// simultaneous losses per group. 0 defaults to 1.
	Redundancy int
	// L2Every flushes every L2Every-th checkpoint to the parallel
	// file system (multilevel C/R, paper §VIII future work); 0
	// disables level 2. L2 must be set when L2Every > 0.
	L2Every int
	L2      L2Store
	// Local selects localized (message-logging) recovery: survivors
	// keep their state across a failure and serve logged-message replay
	// to respawned ranks, instead of the paper's global rollback.
	Local bool
	// Replica, when non-nil, selects replication-based recovery: the
	// registry routes every send to both endpoints of the destination
	// pair, and the runtime flips it on promotion. Once deactivated
	// (an unmaskable pair loss) the proc falls back to the plain
	// rollback machinery.
	Replica *replica.Registry
	// Shadow marks this proc as the shadow copy of its rank. Shadows
	// execute the application in lockstep with their primary but never
	// report loop progress (until promoted) and never write level-2
	// checkpoints.
	Shadow bool
	// Node is the id of the node hosting this rank. When Network
	// implements transport.NodePlacer the proc's endpoints are created
	// with this placement, which lets the transport route traffic
	// between co-located ranks over its intra-node fast path (per-pair
	// SPSC rings on ChanNetwork). The zero value (node 0) is correct
	// for single-node in-process runs; the runtime scheduler sets real
	// node ids. Set to -1 to opt out of placement entirely.
	Node    int
	Network transport.Network
	Ctl     Control
	KillCh  <-chan struct{}
	Stats   *Stats
	// Trace, when non-nil, records the rank's lifecycle events.
	Trace *trace.Recorder
	// Coll selects collective algorithms; the zero value picks
	// automatically by payload and communicator size.
	Coll coll.Policy
	// Pool is the shared buffer arena for the hot paths (checkpoint
	// capture buffers, parity shards, group-exchange frames). It must be
	// the same arena the transport uses so buffers released here return
	// to the pool frames were drawn from. nil disables pooling — every
	// Get falls back to make and every Put is a no-op.
	Pool *bufpool.Arena
}

func (c *Config) fillDefaults() {
	if c.GroupSize == 0 {
		c.GroupSize = 16
	}
	if c.RingBase == 0 {
		c.RingBase = 2
	}
	if c.Redundancy == 0 {
		c.Redundancy = 1
	}
	if c.ProcsPerNode == 0 {
		c.ProcsPerNode = 1
	}
	if c.Interval == 0 && c.MTBF == 0 {
		c.Interval = 1
	}
}

// Stats collects job-wide runtime statistics; all methods are safe for
// concurrent use. One instance is shared by all ranks.
type Stats struct {
	mu              sync.Mutex
	Checkpoints     int
	CheckpointTime  time.Duration
	CheckpointBytes int64
	Restores        int
	RestoreTime     time.Duration
	Recoveries      int
	RecoveryTime    time.Duration
	NotifyTime      time.Duration
	notifySamples   int
	InitTime        time.Duration
	initSamples     int
	LostIterations  int
	L2Checkpoints   int
	L2Restores      int
	L2RestoreTime   time.Duration
	matcher         map[int]MatcherCounters
	LogEntries      int
	LogBytes        int64
	Replays         int
	ReplayedMsgs    int
}

// MatcherCounters are one rank's accumulated matcher statistics:
// delivered messages, stale-epoch discards (paper §IV-D), and
// duplicates suppressed by local recovery's receive watermarks.
// PerSource breaks the same counters down by sending rank (indexed by
// source rank, from the matcher's per-source lanes); messages from
// out-of-range sources are counted in the totals only.
type MatcherCounters struct {
	Delivered     uint64
	Dropped       uint64
	DupSuppressed uint64
	PerSource     []transport.LaneCounters
}

// AddMatcher accumulates one generation's matcher counters for rank,
// including the per-source lane breakdown.
func (s *Stats) AddMatcher(rank int, delivered, dropped, dupSuppressed uint64, lanes []transport.LaneCounters) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.matcher == nil {
		s.matcher = make(map[int]MatcherCounters)
	}
	c := s.matcher[rank]
	c.Delivered += delivered
	c.Dropped += dropped
	c.DupSuppressed += dupSuppressed
	if len(lanes) > len(c.PerSource) {
		grown := make([]transport.LaneCounters, len(lanes))
		copy(grown, c.PerSource)
		c.PerSource = grown
	}
	for src, lc := range lanes {
		c.PerSource[src].Delivered += lc.Delivered
		c.PerSource[src].Dropped += lc.Dropped
		c.PerSource[src].DupSuppressed += lc.DupSuppressed
	}
	s.matcher[rank] = c
	s.mu.Unlock()
}

// AddLog records a rank's message-log retention at shutdown.
func (s *Stats) AddLog(entries, bytes int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.LogEntries += entries
	s.LogBytes += int64(bytes)
	s.mu.Unlock()
}

// AddReplay records one sender's replay round (msgs re-sent from its log).
func (s *Stats) AddReplay(msgs int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.Replays++
	s.ReplayedMsgs += msgs
	s.mu.Unlock()
}

// AddCheckpoint records one rank's checkpoint.
func (s *Stats) AddCheckpoint(d time.Duration, bytes int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.Checkpoints++
	s.CheckpointTime += d
	s.CheckpointBytes += int64(bytes)
	s.mu.Unlock()
}

// AddRestore records one rank's restore.
func (s *Stats) AddRestore(d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.Restores++
	s.RestoreTime += d
	s.mu.Unlock()
}

// AddRecovery records one completed recovery round (rank 0 reports).
func (s *Stats) AddRecovery(d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.Recoveries++
	s.RecoveryTime += d
	s.mu.Unlock()
}

// AddNotify records a failure-notification latency sample.
func (s *Stats) AddNotify(d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.NotifyTime += d
	s.notifySamples++
	s.mu.Unlock()
}

// AddInit records one rank's Init duration.
func (s *Stats) AddInit(d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.InitTime += d
	s.initSamples++
	s.mu.Unlock()
}

// AddL2Checkpoint records a level-2 flush.
func (s *Stats) AddL2Checkpoint() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.L2Checkpoints++
	s.mu.Unlock()
}

// AddL2Restore records a level-2 fallback restore.
func (s *Stats) AddL2Restore(d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.L2Restores++
	s.L2RestoreTime += d
	s.mu.Unlock()
}

// AddLostIterations counts work discarded by a rollback.
func (s *Stats) AddLostIterations(n int) {
	if s == nil || n <= 0 {
		return
	}
	s.mu.Lock()
	s.LostIterations += n
	s.mu.Unlock()
}

// MeanNotify returns the average failure-notification latency.
func (s *Stats) MeanNotify() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.notifySamples == 0 {
		return 0
	}
	return s.NotifyTime / time.Duration(s.notifySamples)
}

// MeanInit returns the average per-rank Init duration.
func (s *Stats) MeanInit() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.initSamples == 0 {
		return 0
	}
	return s.InitTime / time.Duration(s.initSamples)
}

// StatsSnapshot is a plain copy of the collector's counters, safe to
// copy and embed in reports.
type StatsSnapshot struct {
	Checkpoints     int
	CheckpointTime  time.Duration
	CheckpointBytes int64
	Restores        int
	RestoreTime     time.Duration
	Recoveries      int
	RecoveryTime    time.Duration
	NotifyTime      time.Duration
	InitTime        time.Duration
	LostIterations  int
	MeanNotify      time.Duration
	MeanInit        time.Duration
	L2Checkpoints   int
	L2Restores      int
	L2RestoreTime   time.Duration
	// Matcher maps rank -> accumulated matcher counters across all of
	// the rank's generations.
	Matcher      map[int]MatcherCounters
	LogEntries   int
	LogBytes     int64
	Replays      int
	ReplayedMsgs int
}

// Snapshot returns a copy of the statistics.
func (s *Stats) Snapshot() StatsSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := StatsSnapshot{
		Checkpoints:     s.Checkpoints,
		CheckpointTime:  s.CheckpointTime,
		CheckpointBytes: s.CheckpointBytes,
		Restores:        s.Restores,
		RestoreTime:     s.RestoreTime,
		Recoveries:      s.Recoveries,
		RecoveryTime:    s.RecoveryTime,
		NotifyTime:      s.NotifyTime,
		InitTime:        s.InitTime,
		LostIterations:  s.LostIterations,
		L2Checkpoints:   s.L2Checkpoints,
		L2Restores:      s.L2Restores,
		L2RestoreTime:   s.L2RestoreTime,
		LogEntries:      s.LogEntries,
		LogBytes:        s.LogBytes,
		Replays:         s.Replays,
		ReplayedMsgs:    s.ReplayedMsgs,
	}
	if len(s.matcher) > 0 {
		snap.Matcher = make(map[int]MatcherCounters, len(s.matcher))
		for r, c := range s.matcher {
			// Deep-copy the lane slice: the live one keeps accumulating.
			c.PerSource = append([]transport.LaneCounters(nil), c.PerSource...)
			snap.Matcher[r] = c
		}
	}
	if s.notifySamples > 0 {
		snap.MeanNotify = s.NotifyTime / time.Duration(s.notifySamples)
	}
	if s.initSamples > 0 {
		snap.MeanInit = s.InitTime / time.Duration(s.initSamples)
	}
	return snap
}

// newEndpoint creates one transport endpoint for the configured rank,
// passing node placement through when the network supports it so
// co-located ranks ride the intra-node fast path.
func newEndpoint(cfg *Config) (transport.Endpoint, error) {
	if np, ok := cfg.Network.(transport.NodePlacer); ok && cfg.Node >= 0 {
		return np.NewEndpointOnNode(cfg.Node, cfg.KillCh)
	}
	return cfg.Network.NewEndpoint(cfg.KillCh)
}

// procKilledPanic unwinds the goroutine of a killed process; the
// runtime's spawn wrapper recovers it.
type procKilledPanic struct{}

// KilledPanic is the value paniced when a process is killed; exported
// for the runtime package's recover.
func KilledPanic() any { return procKilledPanic{} }

// IsKilledPanic reports whether a recovered panic value is the
// process-kill unwind.
func IsKilledPanic(v any) bool {
	_, ok := v.(procKilledPanic)
	return ok
}
