package core

import (
	"fmt"
	"time"

	"fmi/internal/bootstrap"
	"fmi/internal/bufpool"
	"fmi/internal/ckpt"
	"fmi/internal/msglog"
	"fmi/internal/overlay"
	"fmi/internal/trace"
	"fmi/internal/transport"
	"fmi/internal/view"
)

// Proc is one FMI rank's runtime. It lives in the rank's goroutine;
// its methods are called only from that goroutine (the failure watcher
// touches only the epoch generation's channels).
type Proc struct {
	cfg Config

	rank, n int
	state   State
	epoch   uint32

	// Versioned membership (elastic jobs). view is the immutable view
	// this rank currently operates under; viewCtl is the control plane's
	// resize interface (nil for fixed-size jobs); viewCkpt forces a
	// checkpoint at the first Loop iteration after a view change so the
	// shards re-encode over the new groups (shard migration).
	view     *view.View
	viewCtl  ViewControl
	viewCkpt bool

	// Per-epoch generation: fresh endpoint, matcher, overlay, table,
	// and failure channel. Replaced wholesale by recovery (paper H1:
	// "update endpoints to transparently recover communicators").
	gen *generation

	// Checkpointing: double-buffered in-memory entries (paper §V-A).
	staged    *entryExt // fully encoded, awaiting global agreement
	committed *entryExt // last globally agreed checkpoint
	pool      *bufpool.Arena
	coder     ckpt.Coder
	groups    [][]int
	gidx      []int
	loopID    int // id the next Loop call returns
	lastCkpt  int // loop id of the last checkpoint taken locally
	interval  int // current checkpoint interval (iterations)
	l1Count   int // level-1 checkpoints committed (level-2 cadence)

	// Restore negotiated for the current epoch: the loop id every rank
	// rolls back to (-1 none). The snapshot is applied to the user
	// segments at the next Loop call (a local memcpy).
	pendingID      int
	pendingApplied bool

	// Vaidya auto-tuning inputs.
	lastLoopAt   time.Time
	iterEWMA     time.Duration
	ckptEWMA     time.Duration
	autoInterval bool
	ranLoop      bool // first Loop call seen (switches collectives to the data plane)

	// Communicator bookkeeping.
	world    *Comm
	nextCtx  uint32
	commSeq  int // count of communicator-creating calls (cache keys)
	finalize bool

	// Localized (message-logging) recovery state, cfg.Local only.
	log       *msglog.Log // sender-based volatile message log
	seqActive bool        // sequencing armed (between negotiate and teardown)
	logEra    uint32      // bumped to the epoch of every level-2 fallback
	// reexecPending marks a fresh replacement that must re-execute the
	// restore checkpoint's exchange after applying the snapshot, so the
	// dead incarnation's post-capture messages are regenerated with
	// their original sequence numbers. reexec is true while that
	// re-execution runs.
	reexecPending bool
	reexec        bool
	// Matcher state carried across an epoch fence on a survivor: the
	// receive watermarks plus accepted-but-unconsumed data-plane
	// messages, harvested from the old generation's matcher and seeded
	// into the new one so nothing is lost or double-delivered.
	carrySeen  []uint64
	carryQueue []transport.Msg

	// Replication-based recovery state, cfg.Replica only (replica.go).
	repSeq        []uint64 // per-destination mirrored send sequence numbers
	flipAck       []uint64 // per-destination shadow incarnation this copy has fenced
	flipGen       uint64   // registry ShadowGen at the last ack sweep
	syncPending   bool     // re-provisioned shadow awaiting its primary's snapshot
	repInc        uint64   // this process's shadow-registration incarnation
	repRegistered bool     // repInc is valid: this process has registered as a shadow
	fenceClean    bool     // epoch bump came from a committed resize fence, no app progress since
	ckptSeeded    bool     // counters adopted from a snapshot: skip the first-Loop checkpoint
}

// generation bundles everything that is rebuilt on recovery.
type generation struct {
	epoch      uint32
	ep         transport.Endpoint
	m          *transport.Matcher
	table      bootstrap.Table
	ring       *overlay.Ring
	failureCh  chan struct{} // closed on failure notification
	cancelCh   chan struct{} // closed on failure notification OR kill
	stop       chan struct{} // stops the watcher
	notifiedAt time.Time
	tornDown   bool // teardown ran (guards double harvest/stat counting)
	replica    bool // built by buildReplicaGeneration (no endpoint table)
}

func (g *generation) failed() bool {
	select {
	case <-g.failureCh:
		return true
	default:
		return false
	}
}

// Init bootstraps the rank: H1 endpoint exchange, H2 log-ring build,
// plus the restore negotiation of the epoch it joins. It corresponds
// to FMI_Init.
func Init(cfg Config) (*Proc, error) {
	cfg.fillDefaults()
	start := time.Now()
	p := &Proc{
		cfg:       cfg,
		rank:      cfg.Rank,
		n:         cfg.N,
		epoch:     cfg.Epoch,
		state:     StateBootstrapping,
		interval:  cfg.Interval,
		nextCtx:   ctxWorld + 1,
		pendingID: -1,
		lastCkpt:  -1,
	}
	if p.interval == 0 {
		p.autoInterval = true
		p.interval = 1 // until measurements exist
	}
	p.pool = cfg.Pool
	p.coder = ckpt.NewCoder(cfg.Redundancy, 0)
	// Membership: prefer the control plane's live view (elastic jobs),
	// then a pinned view from the config, then the legacy static layout.
	if vc, ok := cfg.Ctl.(ViewControl); ok {
		p.viewCtl = vc
	}
	v := cfg.View
	if p.viewCtl != nil {
		if cur := p.viewCtl.CurrentView(); cur != nil {
			v = cur
		}
	}
	if v != nil {
		p.view = v
		p.n = v.Ranks
		p.groups, p.gidx = v.Groups, v.GIdx
	} else {
		p.groups, p.gidx = ckpt.Groups(cfg.N, cfg.ProcsPerNode, cfg.GroupSize)
	}
	// A rank joining mid-run through a grow fence starts at the cut
	// loop, in step with the survivors.
	p.loopID = cfg.StartLoop
	p.world = newWorldComm(p)
	if cfg.Local {
		p.log = msglog.New(p.n)
	}
	if cfg.Replica != nil {
		p.repSeq = make([]uint64, p.n)
		p.flipAck = make([]uint64, p.n)
		// A replacement shadow must pull its primary's live state
		// before it can track the mirrored streams.
		p.syncPending = cfg.Shadow && cfg.IsReplacement
	}

	// A replacement may have been spawned for an epoch that has since
	// advanced; join whatever is current.
	epoch, err := cfg.Ctl.AwaitEpoch(p.epoch, p.killCh())
	if err != nil {
		return nil, err
	}
	p.epoch = epoch
	if err := p.rebuildUntilStable(); err != nil {
		return nil, err
	}
	p.state = StateRunning
	p.lastLoopAt = time.Now()
	cfg.Stats.AddInit(time.Since(start))
	return p, nil
}

// rebuildUntilStable repeats the H1→H2→negotiate cycle until a round
// completes without being interrupted by another failure.
func (p *Proc) rebuildUntilStable() error {
	for {
		err := p.buildGeneration()
		if err == nil {
			return nil
		}
		if isUnrecoverable(err) {
			return err
		}
		// A concurrent failure aborted the round; wait for the next
		// epoch and retry (Fig 5: Notified transition back to H1).
		next, werr := p.cfg.Ctl.AwaitEpoch(p.epoch+1, p.killCh())
		if werr != nil {
			return werr
		}
		p.epoch = next
	}
}

func isUnrecoverable(err error) bool {
	for e := err; e != nil; {
		if e == ErrUnrecoverable {
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}

// killCh returns the process kill channel.
func (p *Proc) killCh() <-chan struct{} { return p.cfg.KillCh }

// checkAlive panics with the kill unwind if the process has been
// killed (a real process would already be gone).
func (p *Proc) checkAlive() {
	select {
	case <-p.cfg.KillCh:
		panic(procKilledPanic{})
	default:
	}
}

// adoptView installs the control plane's current membership view if it
// moved past the one this rank operates under. Runs at the top of every
// generation build — after the old matcher's state was harvested, before
// anything sized by the world is rebuilt — so the whole generation
// (endpoint table, dedup vectors, checkpoint groups, mirrored-stream
// counters) derives from one consistent view. Sets viewCkpt so the next
// Loop iteration re-encodes the checkpoint shards over the new groups.
func (p *Proc) adoptView() {
	if p.viewCtl == nil {
		return
	}
	v := p.viewCtl.CurrentView()
	if v == nil || (p.view != nil && v.Version == p.view.Version) {
		return
	}
	var was uint64
	if p.view != nil {
		was = p.view.Version
	}
	p.view = v
	p.n = v.Ranks
	p.groups, p.gidx = v.Groups, v.GIdx
	p.viewCkpt = true
	// World communicator tracks the live membership; derived (Dup/Split)
	// communicators keep their frozen member lists.
	members := make([]int, p.n)
	for i := range members {
		members[i] = i
	}
	p.world.members = members
	if p.log != nil {
		p.log.Resize(p.n)
	}
	// Carried matcher state: pad watermarks for joiners, drop state for
	// retired ranks (nothing of theirs can arrive again).
	if p.carrySeen != nil {
		cs := make([]uint64, p.n)
		copy(cs, p.carrySeen)
		p.carrySeen = cs
	}
	if len(p.carryQueue) > 0 {
		keep := p.carryQueue[:0]
		for _, m := range p.carryQueue {
			if int(m.Src) < p.n {
				keep = append(keep, m)
			}
		}
		p.carryQueue = keep
	}
	if p.repSeq != nil {
		rs := make([]uint64, p.n)
		copy(rs, p.repSeq)
		p.repSeq = rs
		fa := make([]uint64, p.n)
		copy(fa, p.flipAck)
		p.flipAck = fa
	}
	p.cfg.Trace.AddView(trace.KindViewChange, p.rank, p.epoch, v.Version,
		"adopted %s (was v%d)", v, was)
}

// viewVersion returns the version of the installed view (0 when the job
// is not view-managed).
func (p *Proc) viewVersion() uint64 {
	if p.view == nil {
		return 0
	}
	return p.view.Version
}

// buildGeneration performs H1 (endpoint exchange), H2 (log-ring), and
// the epoch's restore negotiation. On interruption it tears down and
// returns an error; the caller advances the epoch and retries.
func (p *Proc) buildGeneration() error {
	if p.cfg.Replica != nil {
		if p.cfg.Replica.Active() {
			return p.buildReplicaGeneration()
		}
		// The job degraded to plain rollback recovery (pair loss). A
		// shadow that never promoted has no seat in the rebuilt world:
		// park until the runtime reaps it. Promoted shadows ARE their
		// rank now and rebuild normally with the survivors.
		if p.cfg.Shadow && !p.promotedSelf() {
			<-p.cfg.KillCh
			panic(procKilledPanic{})
		}
	}
	p.checkAlive()
	p.seqActive = false // no data-plane sequencing during the fence
	p.teardownGen(p.gen)
	p.gen = nil
	p.adoptView()
	// Note: a fully staged checkpoint (encode finished, commit wave
	// interrupted) is deliberately kept — the restore negotiation
	// rolls it forward when every survivor holds it.
	p.state = StateBootstrapping
	p.cfg.Trace.Add(trace.KindState, p.rank, p.epoch, "H1 bootstrapping")

	g := &generation{
		epoch:     p.epoch,
		failureCh: make(chan struct{}),
		cancelCh:  make(chan struct{}),
		stop:      make(chan struct{}),
	}
	ep, err := newEndpoint(&p.cfg)
	if err != nil {
		return fmt.Errorf("fmi: endpoint: %w", err)
	}
	g.ep = ep
	g.m = transport.NewMatcher(ep)
	g.m.AdvanceEpoch(p.epoch)
	g.m.AdvanceView(p.viewVersion())
	if p.cfg.Local {
		g.m.EnableDedup(p.n)
		// Re-seed state carried over from the previous generation: the
		// receive watermarks keep suppressing replayed duplicates, and
		// accepted-but-unconsumed messages stay deliverable. (The
		// teardown harvest repopulates the carry if this round fails.)
		if p.carrySeen != nil {
			g.m.SeedSeen(p.carrySeen)
		}
		if len(p.carryQueue) > 0 {
			g.m.Inject(p.carryQueue)
		}
		p.carrySeen, p.carryQueue = nil, nil
	}

	// Cancel H1/H2 waits when the process is killed OR the job epoch
	// advances past this round (a further failure made it stale).
	cancel, stopCancel := mergeCancel(p.cfg.KillCh, p.cfg.Ctl.EpochNotify(p.epoch))
	defer stopCancel()

	table, _, err := bootstrap.TreeExchange(bootstrap.Proc{
		Rank: p.rank, N: p.n, Addr: ep.Addr(), EP: ep, M: g.m,
		Coord: p.cfg.Ctl.Coordinator(), Epoch: p.epoch,
		Key:    fmt.Sprintf("h1/%d", p.epoch),
		Cancel: cancel,
	})
	if err != nil {
		p.teardownGen(g)
		return p.classify(err)
	}
	g.table = table

	// H2: log-ring.
	p.state = StateConnecting
	p.cfg.Trace.Add(trace.KindState, p.rank, p.epoch, "H2 connecting")
	ring, err := overlay.Build(ep, p.rank, table, p.cfg.RingBase)
	if err != nil {
		p.teardownGen(g)
		return p.classify(err)
	}
	g.ring = ring

	// Everyone must finish H2 before anything else flows, or an early
	// sender could race the ring construction.
	if err := p.cfg.Ctl.Coordinator().Barrier(fmt.Sprintf("h2/%d", p.epoch), p.rank, p.n, cancel); err != nil {
		p.teardownGen(g)
		return p.classify(err)
	}

	// Arm the failure watcher: ring notification or control-plane
	// epoch bump, whichever lands first. The merged cancel channel
	// additionally wakes on process kill so every blocked receive
	// unwinds promptly.
	ctlCh := p.cfg.Ctl.EpochNotify(p.epoch)
	kill := p.cfg.KillCh
	go func(g *generation) {
		defer close(g.cancelCh)
		select {
		case <-g.ring.Notify():
		case <-ctlCh:
		case <-kill:
			return
		case <-g.stop:
			return
		}
		g.notifiedAt = time.Now()
		p.cfg.Trace.Add(trace.KindNotified, p.rank, g.epoch, "failure notification received")
		close(g.failureCh)
	}(g)

	p.gen = g

	// Restore negotiation: agree on the rollback point and rebuild
	// lost checkpoints within each XOR group. The resulting snapshot
	// is applied to the user segments at the next Loop call.
	if err := p.negotiateRestore(); err != nil {
		p.teardownGen(g)
		p.gen = nil
		return err
	}
	if p.cfg.Local {
		// Sequencing arms only once the generation is fully negotiated;
		// fence-internal traffic stays unsequenced (Seq 0).
		p.seqActive = true
	}
	return nil
}

// mergeCancel returns a channel closed when either input fires; call
// stop to release the watcher once the guarded phase completes.
func mergeCancel(a, b <-chan struct{}) (<-chan struct{}, func()) {
	out := make(chan struct{})
	stop := make(chan struct{})
	go func() {
		select {
		case <-a:
		case <-b:
		case <-stop:
			return
		}
		close(out)
	}()
	return out, func() {
		select {
		case <-stop:
		default:
			close(stop)
		}
	}
}

func (p *Proc) teardownGen(g *generation) {
	if g == nil || g.tornDown {
		return
	}
	g.tornDown = true
	if g.m != nil {
		d, dr, dup := g.m.Stats()
		p.cfg.Stats.AddMatcher(p.rank, d, dr, dup, g.m.LaneStats())
		if p.cfg.Local {
			// Harvest receive-side state for the next generation.
			seen, queued := g.m.HarvestState()
			if len(seen) > 0 {
				p.carrySeen = seen
				p.carryQueue = queued
			}
		}
	}
	if g.stop != nil {
		select {
		case <-g.stop:
		default:
			close(g.stop)
		}
	}
	if g.ring != nil {
		g.ring.Shutdown()
	}
	if g.m != nil {
		g.m.Close()
	}
	if g.ep != nil {
		g.ep.Close()
	}
}

// classify maps low-level errors to runtime errors, checking for kill.
func (p *Proc) classify(err error) error {
	select {
	case <-p.cfg.KillCh:
		panic(procKilledPanic{})
	default:
	}
	return err
}

// Rank returns the process's FMI (virtual) rank.
func (p *Proc) Rank() int { return p.rank }

// Size returns the world size under the currently installed membership
// view. For elastic jobs it changes when a Loop call crosses a
// grow/shrink fence, so callers must re-read it after every Loop rather
// than caching it across iterations.
func (p *Proc) Size() int { return p.n }

// ViewVersion returns the version of the membership view this rank
// currently operates under (0 for fixed-size jobs).
func (p *Proc) ViewVersion() uint64 { return p.viewVersion() }

// RequestResize asks the control plane to reconfigure the job to n
// total ranks. It is asynchronous: validation happens here, but the
// new membership commits only at an upcoming Loop fence that every
// rank reaches — the caller itself participates, so blocking here
// would deadlock the fence. Fails when the job's control plane does
// not support elastic membership.
func (p *Proc) RequestResize(n int) error {
	if p.viewCtl == nil {
		return fmt.Errorf("fmi: this job's control plane does not support online resize")
	}
	return p.viewCtl.RequestResize(n)
}

// Epoch returns the current recovery epoch.
func (p *Proc) Epoch() uint32 { return p.epoch }

// State returns the current process state (Fig 5).
func (p *Proc) State() State { return p.state }

// World returns the world communicator.
func (p *Proc) World() *Comm { return p.world }

// Interval returns the checkpoint interval currently in effect.
func (p *Proc) Interval() int { return p.interval }

// FailureDetected reports whether a failure has been notified in the
// current epoch (communication calls will fail until Loop recovers).
func (p *Proc) FailureDetected() bool {
	return p.gen != nil && p.gen.failed()
}

// failureCh returns the current generation's merged cancel channel.
func (p *Proc) failureCh() <-chan struct{} {
	return p.gen.cancelCh
}

// addrOf resolves a world rank to its current endpoint address.
func (p *Proc) addrOf(rank int) (transport.Addr, error) {
	if rank < 0 || rank >= p.n {
		return transport.NilAddr, fmt.Errorf("%w: %d", ErrInvalidRank, rank)
	}
	return p.gen.table[rank], nil
}

// checkComm guards the start of every communication call. In local
// (message-logging) mode survivors do NOT fail fast on a notification:
// their operations ride through the epoch fence transparently (sends
// to dead peers vanish at the transport and are repaired by replay;
// receives re-post on the rebuilt generation inside recvRaw), so the
// application never observes the failure and never re-executes work.
func (p *Proc) checkComm() error {
	p.checkAlive()
	if p.finalize {
		return ErrFinalized
	}
	if p.cfg.Local && p.seqActive {
		return nil
	}
	if p.gen.failed() {
		return ErrFailureDetected
	}
	return nil
}

// Finalize leaves the job cleanly: quiesce failure detection, final
// coordinator barrier, teardown. Collective.
func (p *Proc) Finalize() error {
	p.checkAlive()
	if p.finalize {
		return ErrFinalized
	}
	// A finalizing rank can no longer join a resize fence; tell the
	// control plane so an armed fence fails fast instead of waiting.
	if p.viewCtl != nil {
		p.viewCtl.MarkFinalizing(p.rank)
	}
	if p.replicaOn() {
		return p.finalizeReplica()
	}
	if p.cfg.Local {
		return p.finalizeLocal()
	}
	// Stop reacting to peers' teardown before anyone starts closing.
	p.gen.ring.Quiesce()
	if p.gen.stop != nil {
		select {
		case <-p.gen.stop:
		default:
			close(p.gen.stop)
		}
	}
	err := p.cfg.Ctl.Coordinator().Barrier(fmt.Sprintf("finalize/%d", p.epoch), p.rank, p.n, p.cfg.KillCh)
	p.finalize = true
	p.state = StateFinalized
	p.cfg.Trace.Add(trace.KindFinalize, p.rank, p.epoch, "finalized")
	p.teardownGen(p.gen)
	return err
}

// finalizeLocal is Finalize for localized recovery. Ranks may sit at
// different epochs (survivors never re-enter H1 unless notified), so
// the exit barrier uses an epoch-independent key, and a failure while
// waiting is ridden through like any other operation: recover the
// generation, re-join the barrier. Failure detection stays armed until
// the barrier passes — a rank that dies *during* finalize is respawned,
// re-executes from its checkpoint, and joins the same barrier.
func (p *Proc) finalizeLocal() error {
	for {
		cancel, stopCancel := mergeCancel(p.cfg.KillCh, p.gen.cancelCh)
		err := p.cfg.Ctl.Coordinator().Barrier("finalize-local", p.rank, p.n, cancel)
		stopCancel()
		if err == nil {
			break
		}
		p.checkAlive()
		p.recover()
	}
	p.gen.ring.Quiesce()
	if p.gen.stop != nil {
		select {
		case <-p.gen.stop:
		default:
			close(p.gen.stop)
		}
	}
	p.finalize = true
	p.seqActive = false
	p.state = StateFinalized
	if p.log != nil {
		p.cfg.Stats.AddLog(p.log.Stats())
	}
	p.cfg.Trace.Add(trace.KindFinalize, p.rank, p.epoch, "finalized")
	p.teardownGen(p.gen)
	return nil
}
