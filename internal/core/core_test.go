package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"fmi/internal/bootstrap"
	"fmi/internal/transport"
)

// fakeCtl is a minimal Control for unit-testing the runtime core
// without the process manager: a single epoch that can be bumped
// manually.
type fakeCtl struct {
	coord *bootstrap.Coordinator

	mu      sync.Mutex
	epoch   uint32
	chans   map[uint32]chan struct{}
	waiters []chan uint32
	aborted error
	loops   [][2]int
}

func newFakeCtl() *fakeCtl {
	return &fakeCtl{coord: bootstrap.NewCoordinator(), chans: make(map[uint32]chan struct{})}
}

func (f *fakeCtl) Coordinator() *bootstrap.Coordinator { return f.coord }

func (f *fakeCtl) AwaitEpoch(min uint32, cancel <-chan struct{}) (uint32, error) {
	f.mu.Lock()
	if f.epoch >= min {
		e := f.epoch
		f.mu.Unlock()
		return e, nil
	}
	ch := make(chan uint32, 1)
	f.waiters = append(f.waiters, ch)
	f.mu.Unlock()
	select {
	case e := <-ch:
		return e, nil
	case <-cancel:
		return 0, ErrKilled
	}
}

func (f *fakeCtl) EpochNotify(e uint32) <-chan struct{} {
	f.mu.Lock()
	defer f.mu.Unlock()
	ch, ok := f.chans[e]
	if !ok {
		ch = make(chan struct{})
		f.chans[e] = ch
		if f.epoch > e {
			close(ch)
		}
	}
	return ch
}

func (f *fakeCtl) bump() {
	f.mu.Lock()
	old := f.epoch
	f.epoch++
	for e, ch := range f.chans {
		if f.epoch > e {
			select {
			case <-ch:
			default:
				close(ch)
			}
		}
	}
	ws := f.waiters
	f.waiters = nil
	e := f.epoch
	f.mu.Unlock()
	for _, w := range ws {
		w <- e
	}
	for _, prefix := range []string{"h1", "h2", "avail", "h3", "finalize"} {
		f.coord.AbortGather(fmt.Sprintf("%s/%d", prefix, old), ErrFailureDetected)
	}
}

func (f *fakeCtl) ReportLoop(rank, loopID int) {
	f.mu.Lock()
	f.loops = append(f.loops, [2]int{rank, loopID})
	f.mu.Unlock()
}

func (f *fakeCtl) Abort(err error) {
	f.mu.Lock()
	if f.aborted == nil {
		f.aborted = err
	}
	f.mu.Unlock()
}

// world spins up n ranks on a fake control and runs fn in each,
// returning per-rank errors.
func world(t *testing.T, n int, fn func(p *Proc) error) []error {
	t.Helper()
	nw := transport.NewChanNetwork(transport.Options{})
	ctl := newFakeCtl()
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil && !IsKilledPanic(v) {
					errs[i] = fmt.Errorf("panic: %v", v)
				}
			}()
			p, err := Init(Config{
				Rank: i, N: n, ProcsPerNode: 1, GroupSize: 4,
				Interval: 1 << 30, Network: nw, Ctl: ctl,
				KillCh: make(chan struct{}),
			})
			if err != nil {
				errs[i] = err
				return
			}
			errs[i] = fn(p)
		}(i)
	}
	wg.Wait()
	return errs
}

func checkErrs(t *testing.T, errs []error) {
	t.Helper()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
}

func sum64(acc, src []byte) {
	for i := 0; i+8 <= len(acc); i += 8 {
		v := int64(leU64(acc[i:])) + int64(leU64(src[i:]))
		lePut64(acc[i:], uint64(v))
	}
}

func leU64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

func lePut64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func enc64(v int64) []byte {
	b := make([]byte, 8)
	lePut64(b, uint64(v))
	return b
}

func TestInitStates(t *testing.T) {
	errs := world(t, 4, func(p *Proc) error {
		if p.State() != StateRunning {
			return fmt.Errorf("state = %v after Init", p.State())
		}
		if p.Rank() < 0 || p.Rank() >= 4 || p.Size() != 4 {
			return fmt.Errorf("rank/size wrong: %d/%d", p.Rank(), p.Size())
		}
		if p.Epoch() != 0 {
			return fmt.Errorf("epoch = %d", p.Epoch())
		}
		return p.Finalize()
	})
	checkErrs(t, errs)
}

func TestCollectivesPostLoop(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			errs := world(t, n, func(p *Proc) error {
				state := make([]byte, 1)
				p.Loop([][]byte{state}) // switch to the data plane
				w := p.World()

				// Allreduce: sum of ranks.
				out, err := w.Allreduce(enc64(int64(p.Rank())), sum64)
				if err != nil {
					return err
				}
				want := int64(n * (n - 1) / 2)
				if got := int64(leU64(out)); got != want {
					return fmt.Errorf("allreduce = %d, want %d", got, want)
				}

				// Bcast from the last rank.
				var payload []byte
				if p.Rank() == n-1 {
					payload = []byte{0xCD}
				}
				b, err := w.Bcast(n-1, payload)
				if err != nil {
					return err
				}
				if len(b) != 1 || b[0] != 0xCD {
					return fmt.Errorf("bcast got %v", b)
				}

				// Reduce to rank 0.
				r, err := w.Reduce(0, enc64(2), sum64)
				if err != nil {
					return err
				}
				if p.Rank() == 0 {
					if got := int64(leU64(r)); got != int64(2*n) {
						return fmt.Errorf("reduce = %d", got)
					}
				} else if r != nil {
					return fmt.Errorf("non-root got reduce result")
				}

				// Gather at rank 0, sizes varying by rank.
				g, err := w.Gather(0, bytes.Repeat([]byte{byte(p.Rank())}, p.Rank()+1))
				if err != nil {
					return err
				}
				if p.Rank() == 0 {
					for r := 0; r < n; r++ {
						if len(g[r]) != r+1 || (r > 0 && g[r][0] != byte(r)) {
							return fmt.Errorf("gather slot %d = %v", r, g[r])
						}
					}
				}

				// Allgather.
				ag, err := w.Allgather([]byte{byte(p.Rank() * 3)})
				if err != nil {
					return err
				}
				for r := 0; r < n; r++ {
					if ag[r][0] != byte(r*3) {
						return fmt.Errorf("allgather slot %d = %v", r, ag[r])
					}
				}

				// Scatter from rank 0.
				var parts [][]byte
				if p.Rank() == 0 {
					for r := 0; r < n; r++ {
						parts = append(parts, []byte{byte(100 + r)})
					}
				}
				sc, err := w.Scatter(0, parts)
				if err != nil {
					return err
				}
				if sc[0] != byte(100+p.Rank()) {
					return fmt.Errorf("scatter = %v", sc)
				}

				// Alltoall: rank i sends i*10+j to rank j.
				parts = nil
				for j := 0; j < n; j++ {
					parts = append(parts, []byte{byte(p.Rank()*10 + j)})
				}
				aa, err := w.Alltoall(parts)
				if err != nil {
					return err
				}
				for src := 0; src < n; src++ {
					if aa[src][0] != byte(src*10+p.Rank()) {
						return fmt.Errorf("alltoall from %d = %v", src, aa[src])
					}
				}

				// Barrier just completes.
				if err := w.Barrier(); err != nil {
					return err
				}
				return p.Finalize()
			})
			checkErrs(t, errs)
		})
	}
}

func TestCollectivesPreLoopCoordinatorPath(t *testing.T) {
	// Before the first Loop, collectives take the cached coordinator
	// path; the results must be identical in semantics.
	errs := world(t, 4, func(p *Proc) error {
		w := p.World()
		out, err := w.Allreduce(enc64(int64(p.Rank()+1)), sum64)
		if err != nil {
			return err
		}
		if got := int64(leU64(out)); got != 10 {
			return fmt.Errorf("pre-loop allreduce = %d", got)
		}
		var seed []byte
		if p.Rank() == 2 {
			seed = []byte{7}
		}
		b, err := w.Bcast(2, seed)
		if err != nil {
			return err
		}
		if b[0] != 7 {
			return fmt.Errorf("pre-loop bcast = %v", b)
		}
		ag, err := w.Allgather([]byte{byte(p.Rank())})
		if err != nil {
			return err
		}
		for r := 0; r < 4; r++ {
			if ag[r][0] != byte(r) {
				return fmt.Errorf("pre-loop allgather = %v", ag)
			}
		}
		var parts [][]byte
		for j := 0; j < 4; j++ {
			parts = append(parts, []byte{byte(p.Rank()*4 + j)})
		}
		aa, err := w.Alltoall(parts)
		if err != nil {
			return err
		}
		for src := 0; src < 4; src++ {
			if aa[src][0] != byte(src*4+p.Rank()) {
				return fmt.Errorf("pre-loop alltoall = %v", aa)
			}
		}
		if err := w.Barrier(); err != nil {
			return err
		}
		return p.Finalize()
	})
	checkErrs(t, errs)
}

func TestPointToPoint(t *testing.T) {
	errs := world(t, 2, func(p *Proc) error {
		w := p.World()
		if p.Rank() == 0 {
			if err := w.Send(1, 5, []byte("ping")); err != nil {
				return err
			}
			data, from, err := w.Recv(1, 6)
			if err != nil {
				return err
			}
			if string(data) != "pong" || from != 1 {
				return fmt.Errorf("got %q from %d", data, from)
			}
			// AnySource receive.
			if err := w.Send(1, 7, nil); err != nil {
				return err
			}
			data, from, err = w.Recv(AnySource, 8)
			if err != nil {
				return err
			}
			if from != 1 || len(data) != 3 {
				return fmt.Errorf("anysource got %q from %d", data, from)
			}
		} else {
			data, _, err := w.Recv(0, 5)
			if err != nil {
				return err
			}
			if string(data) != "ping" {
				return fmt.Errorf("got %q", data)
			}
			if err := w.Send(0, 6, []byte("pong")); err != nil {
				return err
			}
			if _, _, err := w.Recv(0, 7); err != nil {
				return err
			}
			if err := w.Send(0, 8, []byte("abc")); err != nil {
				return err
			}
		}
		return p.Finalize()
	})
	checkErrs(t, errs)
}

func TestIsendIrecvWait(t *testing.T) {
	errs := world(t, 2, func(p *Proc) error {
		w := p.World()
		if p.Rank() == 0 {
			var reqs []*Request
			for i := 0; i < 10; i++ {
				r, err := w.Isend(1, 3, []byte{byte(i)})
				if err != nil {
					return err
				}
				reqs = append(reqs, r)
			}
			if err := WaitAll(reqs...); err != nil {
				return err
			}
		} else {
			var reqs []*Request
			for i := 0; i < 10; i++ {
				r, err := w.Irecv(0, 3)
				if err != nil {
					return err
				}
				reqs = append(reqs, r)
			}
			for i, r := range reqs {
				data, from, err := r.Wait()
				if err != nil {
					return err
				}
				if from != 0 || data[0] != byte(i) {
					return fmt.Errorf("irecv %d got %v from %d (ordering broken)", i, data, from)
				}
			}
		}
		return p.Finalize()
	})
	checkErrs(t, errs)
}

func TestInvalidArguments(t *testing.T) {
	// Only symmetric, purely-local argument errors here; an
	// asymmetric erroneous collective is undefined behaviour in MPI
	// and would (correctly) deadlock the peers.
	errs := world(t, 2, func(p *Proc) error {
		w := p.World()
		if err := w.Send(5, 1, nil); !errors.Is(err, ErrInvalidRank) {
			return fmt.Errorf("send to rank 5: %v", err)
		}
		if err := w.Send(0, -3, nil); err == nil {
			return fmt.Errorf("negative user tag accepted")
		}
		if _, _, err := w.Recv(0, -1); err == nil {
			return fmt.Errorf("negative recv tag accepted")
		}
		if _, err := w.Irecv(0, -1); err == nil {
			return fmt.Errorf("negative irecv tag accepted")
		}
		if _, err := w.Bcast(9, nil); !errors.Is(err, ErrInvalidRank) {
			return fmt.Errorf("bcast root 9: %v", err)
		}
		if _, err := w.Reduce(-1, nil, nil); !errors.Is(err, ErrInvalidRank) {
			return fmt.Errorf("reduce root -1: %v", err)
		}
		if _, err := w.Gather(2, nil); !errors.Is(err, ErrInvalidRank) {
			return fmt.Errorf("gather root 2: %v", err)
		}
		return p.Finalize()
	})
	checkErrs(t, errs)
}

func TestInvalidCollectiveShapes(t *testing.T) {
	// Root-local shape errors, tested single-rank so nobody blocks.
	errs := world(t, 1, func(p *Proc) error {
		w := p.World()
		state := make([]byte, 1)
		p.Loop([][]byte{state})
		if _, err := w.Scatter(0, [][]byte{{1}, {2}}); err == nil {
			return fmt.Errorf("oversized scatter parts accepted")
		}
		if _, err := w.Alltoall([][]byte{{1}, {2}}); err == nil {
			return fmt.Errorf("oversized alltoall parts accepted")
		}
		return p.Finalize()
	})
	checkErrs(t, errs)
}

func TestDupAndSplitSemantics(t *testing.T) {
	errs := world(t, 6, func(p *Proc) error {
		w := p.World()
		dup, err := w.Dup()
		if err != nil {
			return err
		}
		if dup.Size() != 6 || dup.Rank() != p.Rank() {
			return fmt.Errorf("dup shape wrong")
		}
		if dup.Context() == w.Context() {
			return fmt.Errorf("dup shares context id")
		}
		// Split by parity, key ordering by negated rank reverses order.
		half, err := dup.Split(p.Rank()%2, -p.Rank())
		if err != nil {
			return err
		}
		if half.Size() != 3 {
			return fmt.Errorf("half size = %d", half.Size())
		}
		// Highest original rank gets comm rank 0 (lowest key).
		wr, err := half.WorldRank(0)
		if err != nil {
			return err
		}
		wantFirst := 4 + p.Rank()%2
		if wr != wantFirst {
			return fmt.Errorf("half[0] = world %d, want %d", wr, wantFirst)
		}
		if half.Translate(p.Rank()) != half.Rank() {
			return fmt.Errorf("translate inconsistent")
		}
		// Collectives on the split comm work.
		state := make([]byte, 1)
		p.Loop([][]byte{state})
		out, err := half.Allreduce(enc64(1), sum64)
		if err != nil {
			return err
		}
		if got := int64(leU64(out)); got != 3 {
			return fmt.Errorf("half allreduce = %d", got)
		}
		return p.Finalize()
	})
	checkErrs(t, errs)
}

func TestLoopCheckpointCadence(t *testing.T) {
	nw := transport.NewChanNetwork(transport.Options{})
	ctl := newFakeCtl()
	const n, iters, interval = 2, 9, 3
	counts := make([]int, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := Init(Config{
				Rank: i, N: n, GroupSize: 2, Interval: interval,
				Network: nw, Ctl: ctl, KillCh: make(chan struct{}),
			})
			if err != nil {
				errs[i] = err
				return
			}
			state := make([]byte, 4)
			prevCkpt := -1
			for {
				id := p.Loop([][]byte{state})
				if p.lastCkpt != prevCkpt {
					counts[i]++
					prevCkpt = p.lastCkpt
				}
				if id >= iters {
					break
				}
			}
			errs[i] = p.Finalize()
		}(i)
	}
	wg.Wait()
	checkErrs(t, errs)
	// Checkpoints at ids 0, 3, 6, 9 => 4 per rank.
	for i, c := range counts {
		if c != 4 {
			t.Fatalf("rank %d checkpointed %d times, want 4 (ids 0,3,6,9)", i, c)
		}
	}
}

func TestBriefCodecRoundtrip(t *testing.T) {
	in := brief{
		ChunkLen: 77, RestoreID: 5, NextCtx: 9, CommSeq: 3,
		Sizes:  []int{10, 0, 33},
		Shapes: [][]int{{10}, {}, {11, 22}},
	}
	out, err := decodeBrief(encodeBrief(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.ChunkLen != in.ChunkLen || out.RestoreID != in.RestoreID ||
		out.NextCtx != in.NextCtx || out.CommSeq != in.CommSeq {
		t.Fatalf("header mismatch: %+v", out)
	}
	for i := range in.Sizes {
		if out.Sizes[i] != in.Sizes[i] {
			t.Fatalf("sizes mismatch: %v", out.Sizes)
		}
	}
	for i := range in.Shapes {
		if len(out.Shapes[i]) != len(in.Shapes[i]) {
			t.Fatalf("shapes mismatch: %v", out.Shapes)
		}
		for j := range in.Shapes[i] {
			if out.Shapes[i][j] != in.Shapes[i][j] {
				t.Fatalf("shapes mismatch: %v", out.Shapes)
			}
		}
	}
	// Truncations rejected.
	full := encodeBrief(in)
	for _, cut := range []int{1, 5, len(full) - 2} {
		if _, err := decodeBrief(full[:cut]); err == nil {
			t.Fatalf("truncated brief (%d bytes) accepted", cut)
		}
	}
	// Negative restore id survives.
	neg := brief{RestoreID: -1, Sizes: []int{}, Shapes: [][]int{}}
	got, err := decodeBrief(encodeBrief(neg))
	if err != nil || got.RestoreID != -1 {
		t.Fatalf("negative restore id: %+v, %v", got, err)
	}
}

func TestAvailCodec(t *testing.T) {
	for _, in := range []availInfo{
		{AvailID: -1, Interval: 1, IsReplacement: true},
		{AvailID: 42, Interval: 7},
	} {
		out := decodeAvail(encodeAvail(in))
		if out != in {
			t.Fatalf("roundtrip: %+v != %+v", out, in)
		}
	}
	if got := decodeAvail([]byte{1, 2}); got.AvailID != -1 {
		t.Fatalf("short decode: %+v", got)
	}
}

func TestGroupMetaCodec(t *testing.T) {
	in := groupMeta{TotalSize: 1234, Shape: []int{100, 0, 1134}}
	out, err := decodeGroupMeta(encodeGroupMeta(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.TotalSize != in.TotalSize || len(out.Shape) != 3 || out.Shape[2] != 1134 {
		t.Fatalf("roundtrip: %+v", out)
	}
	if _, err := decodeGroupMeta([]byte{1}); err == nil {
		t.Fatal("truncated meta accepted")
	}
}

func TestStatsCollectors(t *testing.T) {
	var s Stats
	s.AddCheckpoint(time.Second, 100)
	s.AddCheckpoint(3*time.Second, 200)
	s.AddRestore(time.Second)
	s.AddRecovery(2 * time.Second)
	s.AddNotify(100 * time.Millisecond)
	s.AddNotify(300 * time.Millisecond)
	s.AddInit(time.Second)
	s.AddLostIterations(5)
	s.AddLostIterations(-3) // ignored
	snap := s.Snapshot()
	if snap.Checkpoints != 2 || snap.CheckpointBytes != 300 {
		t.Fatalf("ckpt stats: %+v", snap)
	}
	if snap.MeanNotify != 200*time.Millisecond {
		t.Fatalf("mean notify = %v", snap.MeanNotify)
	}
	if snap.LostIterations != 5 {
		t.Fatalf("lost iters = %d", snap.LostIterations)
	}
	// nil receiver is a no-op.
	var nilStats *Stats
	nilStats.AddCheckpoint(time.Second, 1)
	nilStats.AddRestore(0)
	nilStats.AddNotify(0)
}

func TestEWMA(t *testing.T) {
	if ewma(0, time.Second) != time.Second {
		t.Fatal("first sample should initialise")
	}
	got := ewma(time.Second, 2*time.Second)
	if got <= time.Second || got >= 2*time.Second {
		t.Fatalf("ewma = %v", got)
	}
}

func TestFinalizeTwice(t *testing.T) {
	errs := world(t, 2, func(p *Proc) error {
		if err := p.Finalize(); err != nil {
			return err
		}
		if err := p.Finalize(); !errors.Is(err, ErrFinalized) {
			return fmt.Errorf("second Finalize: %v", err)
		}
		if err := p.World().Barrier(); !errors.Is(err, ErrFinalized) {
			return fmt.Errorf("post-finalize barrier: %v", err)
		}
		return nil
	})
	checkErrs(t, errs)
}

func TestStateStrings(t *testing.T) {
	for s, want := range map[State]string{
		StateBootstrapping: "H1-bootstrapping",
		StateConnecting:    "H2-connecting",
		StateRunning:       "H3-running",
		StateFinalized:     "finalized",
		State(99):          "unknown",
	} {
		if s.String() != want {
			t.Fatalf("%d.String() = %q", s, s.String())
		}
	}
}

func TestPackUnpackSlices(t *testing.T) {
	in := [][]byte{{1, 2}, {}, {3}}
	out, err := unpackSlices(packSlices(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || !bytes.Equal(out[0], in[0]) || len(out[1]) != 0 || !bytes.Equal(out[2], in[2]) {
		t.Fatalf("roundtrip: %v", out)
	}
	if _, err := unpackSlices([]byte{1, 2}); err == nil {
		t.Fatal("truncated pack accepted")
	}
}

func TestTryRecv(t *testing.T) {
	errs := world(t, 2, func(p *Proc) error {
		w := p.World()
		if p.Rank() == 0 {
			// Nothing can have arrived yet: rank 1 sends only after
			// the barrier below.
			if _, _, ok, err := w.TryRecv(1, 4); err != nil || ok {
				return fmt.Errorf("empty TryRecv: ok=%v err=%v", ok, err)
			}
			if err := w.Barrier(); err != nil {
				return err
			}
			deadline := time.Now().Add(5 * time.Second)
			for {
				data, from, ok, err := w.TryRecv(AnySource, 4)
				if err != nil {
					return err
				}
				if ok {
					if from != 1 || string(data) != "late" {
						return fmt.Errorf("TryRecv got %q from %d", data, from)
					}
					break
				}
				if time.Now().After(deadline) {
					return fmt.Errorf("message never arrived")
				}
				time.Sleep(time.Millisecond)
			}
		} else {
			if err := w.Barrier(); err != nil {
				return err
			}
			if err := w.Send(0, 4, []byte("late")); err != nil {
				return err
			}
		}
		return p.Finalize()
	})
	checkErrs(t, errs)
}

func TestTryRecvInvalidArgs(t *testing.T) {
	errs := world(t, 1, func(p *Proc) error {
		w := p.World()
		if _, _, _, err := w.TryRecv(0, -2); err == nil {
			return fmt.Errorf("negative tag accepted")
		}
		if _, _, _, err := w.TryRecv(9, 1); !errors.Is(err, ErrInvalidRank) {
			return fmt.Errorf("invalid src: %v", err)
		}
		return p.Finalize()
	})
	checkErrs(t, errs)
}

func TestL2HeaderCodec(t *testing.T) {
	h := l2Header{LoopID: 12, Interval: 3, NextCtx: 8, CommSeq: 2, L1Count: 5, Shape: []int{4, 0, 16}}
	data := []byte{9, 8, 7}
	gotH, gotData, err := decodeL2(encodeL2(h, data))
	if err != nil {
		t.Fatal(err)
	}
	if gotH.LoopID != 12 || gotH.Interval != 3 || gotH.NextCtx != 8 || gotH.CommSeq != 2 || gotH.L1Count != 5 {
		t.Fatalf("header: %+v", gotH)
	}
	if len(gotH.Shape) != 3 || gotH.Shape[2] != 16 {
		t.Fatalf("shape: %v", gotH.Shape)
	}
	if !bytes.Equal(gotData, data) {
		t.Fatalf("data: %v", gotData)
	}
	if _, _, err := decodeL2([]byte{1, 2}); err == nil {
		t.Fatal("truncated L2 blob accepted")
	}
}

func TestSpuriousNotificationRecovery(t *testing.T) {
	// The control plane bumps the epoch although nobody died (e.g. a
	// transient false positive). All ranks are survivors: they rebuild
	// H1/H2, agree on the newest common checkpoint, and roll back —
	// the run completes with the exact answer.
	nw := transport.NewChanNetwork(transport.Options{})
	ctl := newFakeCtl()
	const n, iters = 4, 10
	results := make([]uint64, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	var bumped sync.Once
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil && !IsKilledPanic(v) {
					errs[i] = fmt.Errorf("panic: %v", v)
				}
			}()
			p, err := Init(Config{
				Rank: i, N: n, GroupSize: 4, Interval: 2,
				Network: nw, Ctl: ctl, KillCh: make(chan struct{}),
			})
			if err != nil {
				errs[i] = err
				return
			}
			state := make([]byte, 16)
			for {
				id := p.Loop([][]byte{state})
				if id >= iters {
					break
				}
				if id == 5 && i == 0 {
					bumped.Do(func() { go ctl.bump() })
				}
				out, err := p.World().Allreduce(enc64(int64(id+i)), sum64)
				if err != nil {
					continue
				}
				acc := leU64(state[8:]) + leU64(out)
				lePut64(state[8:], acc)
				lePut64(state[0:], uint64(id+1))
			}
			results[i] = leU64(state[8:])
			errs[i] = p.Finalize()
		}(i)
	}
	wg.Wait()
	checkErrs(t, errs)
	var want uint64
	for id := 0; id < iters; id++ {
		for r := 0; r < n; r++ {
			want += uint64(id + r)
		}
	}
	for i, got := range results {
		if got != want {
			t.Fatalf("rank %d: %d, want %d", i, got, want)
		}
	}
}
