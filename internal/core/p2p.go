package core

import (
	"fmt"
	"sync"

	"fmi/internal/transport"
)

// sendRaw transmits payload to a world rank on the given (ctx, tag).
// Messages to dead peers vanish silently at the transport (PSM
// semantics) and are repaired by rollback — or, in local mode, by
// replay from the sender-based message log: every data-plane send is
// assigned a per-(sender, receiver) sequence number and a copy is
// retained until a checkpoint commit acknowledges it.
func (p *Proc) sendRaw(world int, ctx uint32, tag int32, kind byte, payload []byte) error {
	if p.replicaOn() {
		// Replica mode: resolve through the registry and mirror to both
		// endpoints of the destination pair (replica.go).
		return p.sendReplica(world, ctx, tag, kind, payload)
	}
	addr, err := p.addrOf(world)
	if err != nil {
		return err
	}
	var seq uint64
	if p.cfg.Local && p.seqActive && p.log != nil {
		seq = p.log.Record(world, ctx, tag, kind, payload)
	}
	return p.gen.ep.Send(addr, transport.Msg{
		Src:   int32(p.rank),
		Tag:   tag,
		Ctx:   ctx,
		Epoch: p.epoch,
		View:  p.viewVersion(),
		Seq:   seq,
		Kind:  kind,
		Data:  payload,
	})
}

// recvRaw blocks for a matching message, aborting on failure
// notification or kill (via the generation's merged cancel channel).
// In local mode a survivor's receive rides through the epoch fence:
// recover the generation (H1/H2 + replay negotiation), then re-post
// the same receive on the rebuilt matcher — the carried-over watermarks
// and unexpected queue guarantee no loss and no duplicate.
func (p *Proc) recvRaw(ctx uint32, src int32, tag int32) (transport.Msg, error) {
	for {
		msg, err := p.gen.m.Recv(ctx, src, tag, p.gen.cancelCh)
		if err == nil {
			return msg, nil
		}
		p.checkAlive()
		if !p.cfg.Local || !p.seqActive {
			return transport.Msg{}, ErrFailureDetected
		}
		p.recover()
		if p.pendingID >= 0 {
			// The fence fell back to a level-2 restore — a *global*
			// rollback even in local mode. This survivor must unwind to
			// Loop and roll back with everyone else instead of waiting
			// for a message the rolled-back world will never re-send.
			return transport.Msg{}, ErrFailureDetected
		}
	}
}

// Send transmits data to the destination rank of the communicator
// with the given user tag (>= 0). It blocks only under backpressure.
func (c *Comm) Send(dst, tag int, data []byte) error {
	if err := c.p.checkComm(); err != nil {
		return err
	}
	if tag < 0 {
		return fmt.Errorf("fmi: user tags must be >= 0 (got %d)", tag)
	}
	world, err := c.WorldRank(dst)
	if err != nil {
		return err
	}
	return c.p.sendRaw(world, c.ctx, int32(tag), transport.KindUser, data)
}

// Recv blocks until a message with the given tag arrives from src
// (comm rank, or AnySource) and returns its payload. The returned
// source is the comm rank of the sender.
func (c *Comm) Recv(src, tag int) (data []byte, from int, err error) {
	if err := c.p.checkComm(); err != nil {
		return nil, -1, err
	}
	if tag < 0 {
		return nil, -1, fmt.Errorf("fmi: user tags must be >= 0 (got %d)", tag)
	}
	srcWorld := transport.AnySource
	if src != AnySource {
		w, err := c.WorldRank(src)
		if err != nil {
			return nil, -1, err
		}
		srcWorld = int32(w)
	}
	msg, err := c.p.recvRaw(c.ctx, srcWorld, int32(tag))
	if err != nil {
		return nil, -1, err
	}
	// Detach: the payload's ownership passes to the application, so the
	// arena stops tracking the frame (it is reclaimed by the GC, not by
	// a Put the application never issues).
	return msg.Detach(), c.Translate(int(msg.Src)), nil
}

// Sendrecv posts the receive, performs the send, and waits for the
// receive — the deadlock-free exchange stencil codes use for halo
// swaps.
func (c *Comm) Sendrecv(dst, sendTag int, sendData []byte, src, recvTag int) ([]byte, error) {
	req, err := c.Irecv(src, recvTag)
	if err != nil {
		return nil, err
	}
	if err := c.Send(dst, sendTag, sendData); err != nil {
		return nil, err
	}
	data, _, err := req.Wait()
	return data, err
}

// TryRecv performs a non-blocking matched receive: if a message with
// the given tag from src (or AnySource) has already arrived, it is
// consumed and returned with ok=true; otherwise ok=false without
// blocking (an MPI_Iprobe + MPI_Recv combination).
func (c *Comm) TryRecv(src, tag int) (data []byte, from int, ok bool, err error) {
	if err := c.p.checkComm(); err != nil {
		return nil, -1, false, err
	}
	if tag < 0 {
		return nil, -1, false, fmt.Errorf("fmi: user tags must be >= 0 (got %d)", tag)
	}
	srcWorld := transport.AnySource
	if src != AnySource {
		w, err := c.WorldRank(src)
		if err != nil {
			return nil, -1, false, err
		}
		srcWorld = int32(w)
	}
	msg, got := c.p.gen.m.TryRecv(c.ctx, srcWorld, int32(tag))
	if !got {
		return nil, -1, false, nil
	}
	return msg.Detach(), c.Translate(int(msg.Src)), true, nil
}

// Request is a pending nonblocking operation. In local recovery mode
// receives are awaited lazily in Wait (the caller's thread must drive
// the ride-through recovery), so await is non-nil there.
type Request struct {
	done  chan struct{}
	data  []byte
	from  int
	err   error
	await func() ([]byte, int, error)
	once  sync.Once
}

// Wait blocks until the operation completes and returns its result.
func (r *Request) Wait() (data []byte, from int, err error) {
	if r.await != nil {
		r.once.Do(func() {
			r.data, r.from, r.err = r.await()
			close(r.done)
		})
	}
	<-r.done
	return r.data, r.from, r.err
}

// Test reports whether the operation has completed.
func (r *Request) Test() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// Isend starts a nonblocking send. The transport is eager (buffered),
// so the send is issued immediately to preserve ordering with
// subsequent sends from this rank.
func (c *Comm) Isend(dst, tag int, data []byte) (*Request, error) {
	r := &Request{done: make(chan struct{})}
	r.err = c.Send(dst, tag, data)
	close(r.done)
	if r.err != nil {
		return nil, r.err
	}
	return r, nil
}

// Irecv starts a nonblocking receive. The receive is *posted*
// synchronously, so matching follows MPI's posting-order rule even
// when several Irecvs are outstanding.
func (c *Comm) Irecv(src, tag int) (*Request, error) {
	if err := c.p.checkComm(); err != nil {
		return nil, err
	}
	if tag < 0 {
		return nil, fmt.Errorf("fmi: user tags must be >= 0 (got %d)", tag)
	}
	srcWorld := transport.AnySource
	if src != AnySource {
		w, err := c.WorldRank(src)
		if err != nil {
			return nil, err
		}
		srcWorld = int32(w)
	}
	pend, err := c.p.gen.m.PostRecv(c.ctx, srcWorld, int32(tag))
	if err != nil {
		return nil, ErrFailureDetected
	}
	r := &Request{done: make(chan struct{})}
	gen := c.p.gen
	if c.p.cfg.Local {
		// Lazy await: the fence ride-through (recover + re-post) must
		// run on the application thread, so the await happens inside
		// Wait rather than on a goroutine. Test reports false until
		// Wait is called. If the generation is replaced before Wait,
		// the posted receive is re-issued on the new matcher; with
		// several outstanding same-(src,tag) Irecvs a fence can reorder
		// their completion (documented local-mode limitation).
		p := c.p
		r.await = func() ([]byte, int, error) {
			for {
				msg, err := pend.Await(gen.cancelCh)
				if err == nil {
					return msg.Detach(), c.Translate(int(msg.Src)), nil
				}
				p.checkAlive()
				if !p.seqActive {
					return nil, -1, ErrFailureDetected
				}
				p.recover()
				if p.pendingID >= 0 {
					// Level-2 fallback: global rollback, unwind to Loop.
					return nil, -1, ErrFailureDetected
				}
				gen = p.gen
				pend, err = gen.m.PostRecv(c.ctx, srcWorld, int32(tag))
				if err != nil {
					return nil, -1, ErrFailureDetected
				}
			}
		}
		return r, nil
	}
	go func() {
		msg, err := pend.Await(gen.cancelCh)
		if err != nil {
			r.err = ErrFailureDetected
		} else {
			r.data, r.from = msg.Detach(), c.Translate(int(msg.Src))
		}
		close(r.done)
	}()
	return r, nil
}

// WaitAll waits for all requests, returning the first error.
func WaitAll(reqs ...*Request) error {
	var first error
	for _, r := range reqs {
		if r == nil {
			continue
		}
		if _, _, err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
