package core

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Comm is an FMI communicator: an ordered list of world ranks plus a
// context id isolating its message traffic. Because FMI ranks are
// virtual and resolved through the epoch's endpoint table at send
// time, communicators survive failures without any repair (paper
// §IV-D, Fig 8): after recovery the same Comm values simply resolve to
// the replacement processes.
type Comm struct {
	p       *Proc
	ctx     uint32
	members []int // world ranks, ordered; index = rank within the comm
	myIdx   int   // this process's rank within the comm

	// collSeq numbers the collectives issued on this communicator
	// before the first Loop call; those go through the coordinator and
	// are cached so a restarted process can replay its initialisation
	// phase (including any Bcast of configuration data) and obtain the
	// original results.
	collSeq int
}

func newWorldComm(p *Proc) *Comm {
	members := make([]int, p.n)
	for i := range members {
		members[i] = i
	}
	return &Comm{p: p, ctx: ctxWorld, members: members, myIdx: p.rank}
}

// Rank returns the calling process's rank within the communicator.
func (c *Comm) Rank() int { return c.myIdx }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.members) }

// WorldRank translates a communicator rank to a world rank.
func (c *Comm) WorldRank(r int) (int, error) {
	if r < 0 || r >= len(c.members) {
		return -1, fmt.Errorf("%w: %d in comm of size %d", ErrInvalidRank, r, len(c.members))
	}
	return c.members[r], nil
}

// Dup duplicates the communicator (MPI_Comm_dup): same members, fresh
// context id. Collective, but requires no data exchange — every member
// derives the same context id from the shared creation counter.
func (c *Comm) Dup() (*Comm, error) {
	if err := c.p.checkComm(); err != nil {
		return nil, err
	}
	ctx := c.p.nextCtx
	c.p.nextCtx++
	c.p.commSeq++
	return &Comm{p: c.p, ctx: ctx, members: append([]int{}, c.members...), myIdx: c.myIdx}, nil
}

// Split partitions the communicator by color, ordering each partition
// by key then by current rank (MPI_Comm_split). The color/key exchange
// goes through the job coordinator and is cached there, so a restarted
// process replaying its pre-loop communicator construction obtains the
// original result (this is how FMI keeps communicator recovery
// transparent; creation inside nested loops remains a documented
// limitation, as in paper §VIII).
func (c *Comm) Split(color, key int) (*Comm, error) {
	if err := c.p.checkComm(); err != nil {
		return nil, err
	}
	ctx := c.p.nextCtx
	c.p.nextCtx++
	seq := c.p.commSeq
	c.p.commSeq++

	var val [8]byte
	binary.LittleEndian.PutUint32(val[0:], uint32(color))
	binary.LittleEndian.PutUint32(val[4:], uint32(key))
	gatherKey := fmt.Sprintf("split/%d/%d", c.ctx, seq)
	vals, err := c.p.coordGather(gatherKey, c.myIdx, len(c.members), val[:])
	if err != nil {
		return nil, err
	}
	type entry struct{ color, key, commRank int }
	var mine []entry
	myColor := color
	for r, v := range vals {
		cr := int(int32(binary.LittleEndian.Uint32(v[0:])))
		kr := int(int32(binary.LittleEndian.Uint32(v[4:])))
		if cr == myColor {
			mine = append(mine, entry{cr, kr, r})
		}
	}
	sort.Slice(mine, func(i, j int) bool {
		if mine[i].key != mine[j].key {
			return mine[i].key < mine[j].key
		}
		return mine[i].commRank < mine[j].commRank
	})
	members := make([]int, len(mine))
	myIdx := -1
	for i, e := range mine {
		members[i] = c.members[e.commRank]
		if e.commRank == c.myIdx {
			myIdx = i
		}
	}
	return &Comm{p: c.p, ctx: ctx, members: members, myIdx: myIdx}, nil
}

// Translate returns the comm rank of a world rank, or -1.
func (c *Comm) Translate(worldRank int) int {
	for i, m := range c.members {
		if m == worldRank {
			return i
		}
	}
	return -1
}

// Context returns the communicator's context id (diagnostics).
func (c *Comm) Context() uint32 { return c.ctx }
