package core

import (
	"encoding/binary"
	"fmt"
	"time"

	"fmi/internal/ckpt"
	"fmi/internal/trace"
)

// Multilevel checkpoint/restart: the paper's §VIII future work
// ("Future versions of FMI will support multilevel C/R to be able to
// recover from any failures occurring on HPC systems"), implemented
// here. When Config.L2Every > 0 every L2Every-th level-1 checkpoint is
// additionally flushed to the parallel file system through the SCR
// manager. Recovery prefers the fast level-1 path; when level-1 cannot
// repair the damage — two members of one XOR group lost at once, or a
// replacement with no surviving group — every rank falls back to the
// newest complete level-2 checkpoint instead of aborting.

// l2Header prefixes a rank's level-2 object so the restore is fully
// self-describing.
type l2Header struct {
	LoopID   int
	Interval int
	NextCtx  uint32
	CommSeq  int
	L1Count  int
	Shape    []int
}

func encodeL2(h l2Header, data []byte) []byte {
	out := make([]byte, 0, 20+4*len(h.Shape)+len(data))
	var b [4]byte
	put := func(v uint32) {
		binary.LittleEndian.PutUint32(b[:], v)
		out = append(out, b[:]...)
	}
	put(uint32(h.LoopID))
	put(uint32(h.Interval))
	put(h.NextCtx)
	put(uint32(h.CommSeq))
	put(uint32(h.L1Count))
	put(uint32(len(h.Shape)))
	for _, s := range h.Shape {
		put(uint32(s))
	}
	return append(out, data...)
}

func decodeL2(blob []byte) (l2Header, []byte, error) {
	var h l2Header
	get := func() (uint32, error) {
		if len(blob) < 4 {
			return 0, fmt.Errorf("fmi: truncated level-2 checkpoint")
		}
		v := binary.LittleEndian.Uint32(blob)
		blob = blob[4:]
		return v, nil
	}
	vals := make([]uint32, 6)
	for i := range vals {
		v, err := get()
		if err != nil {
			return h, nil, err
		}
		vals[i] = v
	}
	h.LoopID = int(int32(vals[0]))
	h.Interval = int(vals[1])
	h.NextCtx = vals[2]
	h.CommSeq = int(vals[3])
	h.L1Count = int(vals[4])
	h.Shape = make([]int, vals[5])
	for i := range h.Shape {
		v, err := get()
		if err != nil {
			return h, nil, err
		}
		h.Shape[i] = int(v)
	}
	return h, blob, nil
}

// maybeWriteL2 flushes the just-committed checkpoint to the PFS when
// its turn has come. Runs after the level-1 commit so a failure during
// the (slow) PFS write costs nothing beyond the write itself.
func (p *Proc) maybeWriteL2(id int) error {
	if p.cfg.L2Every <= 0 || p.cfg.L2 == nil {
		return nil
	}
	// The cadence counter is part of the checkpointed runtime state
	// (restored on rollback and briefed to replacements), so all ranks
	// agree on which checkpoints flush to level 2.
	if (p.l1Count-1)%p.cfg.L2Every != 0 {
		return nil
	}
	e := p.committed
	if e == nil {
		return nil
	}
	blob := encodeL2(l2Header{
		LoopID:   e.Snap.LoopID,
		Interval: e.Interval,
		NextCtx:  e.NextCtx,
		CommSeq:  e.CommSeq,
		L1Count:  e.L1Count,
		Shape:    e.Snap.Sizes,
	}, e.Snap.Data)
	if err := p.cfg.L2.WriteL2(p.rank, id, blob); err != nil {
		return err
	}
	// Completion agreement mirrors the level-1 wave: the id is only
	// trusted once every rank has written it.
	if _, err := p.world.agreeBcast(tagCkptAgree, nil); err != nil {
		return err
	}
	if p.rank == 0 {
		p.cfg.L2.CommitL2(id)
	}
	p.cfg.Stats.AddL2Checkpoint()
	p.cfg.Trace.Add(trace.KindL2Checkpoint, p.rank, p.epoch, "level-2 checkpoint %d", id)
	return nil
}

// level1Feasible decides — deterministically from the shared avail
// vector — whether the fast in-memory path can repair this epoch's
// damage. Every rank computes the same answer, so no extra round is
// needed.
func (p *Proc) level1Feasible(infos []availInfo, restoreID int) bool {
	if restoreID < 0 {
		return true // nothing to restore; fresh start is always "feasible"
	}
	seen := map[int]bool{}
	for r := 0; r < p.n; r++ {
		group := p.groups[r]
		if len(group) == 0 || seen[group[0]] {
			continue
		}
		seen[group[0]] = true
		lost := 0
		for _, m := range group {
			if infos[m].IsReplacement {
				lost++
			}
		}
		if lost == 0 {
			continue
		}
		// The configured coder bounds repairable damage: 1 loss per
		// group for ring-XOR, m for RS(k,m), 0 for singleton groups.
		if lost > p.coder.Tolerance(len(group)) {
			return false
		}
		// Every survivor of an affected group must hold a decodable
		// (parity-bearing) entry; a group freshly restored from level 2
		// has none until its next checkpoint.
		for _, m := range group {
			if !infos[m].IsReplacement && !infos[m].HasParity {
				return false
			}
		}
	}
	return true
}

// restoreL2 rolls every rank back to the newest complete level-2
// checkpoint.
func (p *Proc) restoreL2() error {
	mgr := p.cfg.L2
	if p.cfg.L2Every <= 0 || mgr == nil {
		return fmt.Errorf("%w: level-1 cannot recover and level-2 checkpointing is disabled (paper §VIII)", ErrUnrecoverable)
	}
	id := mgr.LatestL2()
	if id < 0 {
		return fmt.Errorf("%w: level-1 cannot recover and no level-2 checkpoint exists yet", ErrUnrecoverable)
	}
	start := time.Now()
	blob, err := mgr.ReadL2(p.rank, id)
	if err != nil {
		return fmt.Errorf("%w: level-2 read failed: %v", ErrUnrecoverable, err)
	}
	h, data, err := decodeL2(blob)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrUnrecoverable, err)
	}
	// The fallback entry's data aliases the decoded blob (never pooled);
	// the in-memory entries it displaces are retired for good.
	p.recycleEntry(p.committed)
	if !p.cfg.Local {
		p.recycleEntry(p.staged)
	}
	p.committed = &entryExt{
		Entry: &ckpt.Entry{
			Snap:      ckpt.FromData(h.LoopID, data, h.Shape),
			GroupLoop: h.LoopID,
		},
		Interval: h.Interval,
		NextCtx:  h.NextCtx,
		CommSeq:  h.CommSeq,
		L1Count:  h.L1Count,
	}
	p.staged = nil
	p.interval = h.Interval
	p.pendingID = h.LoopID
	p.pendingApplied = false
	p.cfg.Stats.AddL2Restore(time.Since(start))
	p.cfg.Trace.Add(trace.KindL2Restore, p.rank, p.epoch, "level-2 fallback to loop %d", h.LoopID)
	return nil
}
