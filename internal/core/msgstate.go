package core

import (
	"encoding/binary"
	"fmt"

	"fmi/internal/transport"
)

// msgState is the receive-side messaging state captured with a local
// -mode checkpoint: the sender log's sequence counters, the matcher's
// per-source ingress watermarks, and the sequenced messages accepted
// into the unexpected queue but not yet consumed. A respawned rank
// restores all three so its re-execution reproduces the original
// sequence numbers (duplicate sends suppressed at the receivers) and
// resumes with exactly the messages the failed incarnation held.
//
// The blob is replicated across the checkpoint group alongside the
// size/shape meta rather than parity-encoded: a replacement's state
// diverges from the original the moment it re-executes, so folding it
// into the parity chain would corrupt the group's consistency for a
// later failure.
type msgState struct {
	Era      uint32 // log era: bumped on every level-2 fallback (global reset)
	SendSeqs []uint64
	Seen     []uint64
	Queue    []transport.Msg
}

func encodeMsgState(st msgState) []byte {
	var out []byte
	put32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		out = append(out, b[:]...)
	}
	put64 := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		out = append(out, b[:]...)
	}
	put32(st.Era)
	put32(uint32(len(st.SendSeqs)))
	for _, s := range st.SendSeqs {
		put64(s)
	}
	put32(uint32(len(st.Seen)))
	for _, s := range st.Seen {
		put64(s)
	}
	put32(uint32(len(st.Queue)))
	for _, m := range st.Queue {
		put32(uint32(m.Src))
		put32(uint32(m.Tag))
		put32(m.Ctx)
		put64(m.Seq)
		out = append(out, m.Kind, m.Flags)
		put32(uint32(len(m.Data)))
		out = append(out, m.Data...)
	}
	return out
}

func decodeMsgState(data []byte) (msgState, error) {
	var st msgState
	bad := fmt.Errorf("fmi: truncated message state")
	get32 := func() (uint32, error) {
		if len(data) < 4 {
			return 0, bad
		}
		v := binary.LittleEndian.Uint32(data)
		data = data[4:]
		return v, nil
	}
	get64 := func() (uint64, error) {
		if len(data) < 8 {
			return 0, bad
		}
		v := binary.LittleEndian.Uint64(data)
		data = data[8:]
		return v, nil
	}
	era, err := get32()
	if err != nil {
		return st, err
	}
	st.Era = era
	n, err := get32()
	if err != nil {
		return st, err
	}
	st.SendSeqs = make([]uint64, n)
	for i := range st.SendSeqs {
		if st.SendSeqs[i], err = get64(); err != nil {
			return st, err
		}
	}
	if n, err = get32(); err != nil {
		return st, err
	}
	st.Seen = make([]uint64, n)
	for i := range st.Seen {
		if st.Seen[i], err = get64(); err != nil {
			return st, err
		}
	}
	if n, err = get32(); err != nil {
		return st, err
	}
	st.Queue = make([]transport.Msg, n)
	for i := range st.Queue {
		m := &st.Queue[i]
		var v uint32
		if v, err = get32(); err != nil {
			return st, err
		}
		m.Src = int32(v)
		if v, err = get32(); err != nil {
			return st, err
		}
		m.Tag = int32(v)
		if m.Ctx, err = get32(); err != nil {
			return st, err
		}
		if m.Seq, err = get64(); err != nil {
			return st, err
		}
		if len(data) < 2 {
			return st, bad
		}
		m.Kind, m.Flags = data[0], data[1]
		data = data[2:]
		if v, err = get32(); err != nil {
			return st, err
		}
		if len(data) < int(v) {
			return st, bad
		}
		if v > 0 {
			m.Data = make([]byte, v)
			copy(m.Data, data[:v])
			data = data[v:]
		}
	}
	return st, nil
}

// captureMsgState snapshots this rank's messaging state (local mode
// only; returns nil otherwise). Taken on the application thread at
// checkpoint-capture time, so it is consistent with the user segments:
// every message consumed before this point influenced the captured
// segments; everything after is either in the queue snapshot or above
// the seen watermarks (and therefore replayable).
func (p *Proc) captureMsgState() (blob []byte, seen []uint64) {
	if !p.cfg.Local || p.log == nil {
		return nil, nil
	}
	seen, queue := p.gen.m.HarvestState()
	return encodeMsgState(msgState{
		Era:      p.logEra,
		SendSeqs: p.log.SendSeqs(),
		Seen:     seen,
		Queue:    queue,
	}), seen
}
