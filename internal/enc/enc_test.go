package enc

import (
	"bytes"
	"testing"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	cases := [][][]byte{
		nil,
		{},
		{nil},
		{{}},
		{[]byte("a")},
		{[]byte("hello"), nil, []byte("world"), {}},
		{bytes.Repeat([]byte{0xab}, 1<<16), []byte{1}},
	}
	for i, parts := range cases {
		got, err := UnpackSlices(PackSlices(parts))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if len(got) != len(parts) {
			t.Fatalf("case %d: %d parts, want %d", i, len(got), len(parts))
		}
		for j := range parts {
			if !bytes.Equal(got[j], parts[j]) {
				t.Fatalf("case %d part %d mismatch", i, j)
			}
		}
	}
}

// TestPackSlicesIntoMatchesPackSlices pins the appendable packer to
// the exact bytes of PackSlices and checks PackedLen agrees.
func TestPackSlicesIntoMatchesPackSlices(t *testing.T) {
	cases := [][][]byte{
		nil,
		{nil, {}},
		{[]byte("a")},
		{[]byte("hello"), nil, []byte("world"), {}},
		{bytes.Repeat([]byte{0xab}, 1<<12), []byte{1}},
	}
	scratch := make([]byte, 0, 1<<13)
	for i, parts := range cases {
		want := PackSlices(parts)
		if got := PackedLen(parts); got != len(want) {
			t.Fatalf("case %d: PackedLen = %d, want %d", i, got, len(want))
		}
		got := PackSlicesInto(scratch[:0], parts)
		if !bytes.Equal(got, want) {
			t.Fatalf("case %d: PackSlicesInto bytes differ", i)
		}
		// Appending to a non-empty prefix must leave the prefix intact.
		pre := append(scratch[:0], "pre"...)
		got = PackSlicesInto(pre, parts)
		if !bytes.Equal(got[:3], []byte("pre")) || !bytes.Equal(got[3:], want) {
			t.Fatalf("case %d: append semantics broken", i)
		}
	}
}

// TestPackSlicesIntoAllocs is the satellite pin: packing into a
// pre-sized scratch buffer performs zero allocations.
func TestPackSlicesIntoAllocs(t *testing.T) {
	parts := [][]byte{
		bytes.Repeat([]byte{1}, 512),
		bytes.Repeat([]byte{2}, 256),
		nil,
		bytes.Repeat([]byte{3}, 128),
	}
	scratch := make([]byte, 0, PackedLen(parts))
	avg := testing.AllocsPerRun(1000, func() {
		out := PackSlicesInto(scratch[:0], parts)
		if len(out) != PackedLen(parts) {
			t.Fatal("length mismatch")
		}
	})
	if avg != 0 {
		t.Fatalf("PackSlicesInto allocs/op = %v, want 0", avg)
	}
}

func TestUnpackTruncated(t *testing.T) {
	valid := PackSlices([][]byte{[]byte("abcdef"), []byte("gh")})
	for cut := 1; cut < len(valid); cut++ {
		trunc := valid[:cut]
		// Some prefixes happen to be self-consistent (they end exactly
		// on a part boundary); the rest must error, never panic.
		if parts, err := UnpackSlices(trunc); err == nil {
			repacked := PackSlices(parts)
			if !bytes.Equal(repacked, trunc) {
				t.Fatalf("cut %d: accepted non-canonical input", cut)
			}
		}
	}
	if _, err := UnpackSlices([]byte{0xff, 0xff, 0xff, 0xff}); err == nil {
		t.Fatal("huge declared length accepted")
	}
	if _, err := UnpackSlices([]byte{1, 2}); err == nil {
		t.Fatal("short header accepted")
	}
}

// FuzzUnpackSlices feeds adversarial byte strings to the decoder:
// it must never panic, and any accepted input must round-trip
// Pack(Unpack(x)) == x (the encoding is canonical — one buffer, one
// parse).
func FuzzUnpackSlices(f *testing.F) {
	f.Add([]byte{})
	f.Add(PackSlices([][]byte{[]byte("seed"), nil, []byte("corpus")}))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{4, 0, 0, 0, 1, 2})
	f.Add(PackSlices([][]byte{bytes.Repeat([]byte{7}, 300)})[:100])
	f.Fuzz(func(t *testing.T, data []byte) {
		parts, err := UnpackSlices(data)
		if err != nil {
			return
		}
		if !bytes.Equal(PackSlices(parts), data) {
			t.Fatalf("accepted input does not round-trip (%d bytes, %d parts)", len(data), len(parts))
		}
	})
}

// packBatch is the canonical batch encoder used by the tests: header
// plus one length-prefixed part per slice, exactly what the
// transport's coalescer writes.
func packBatch(parts [][]byte) []byte {
	sizes := make([]int, len(parts))
	for i, p := range parts {
		sizes[i] = len(p)
	}
	out := AppendBatchHeader(make([]byte, 0, BatchLen(sizes)), len(parts))
	for _, p := range parts {
		out = AppendBatchPart(out, p)
	}
	return out
}

func TestBatchRoundTrip(t *testing.T) {
	cases := [][][]byte{
		{},
		{[]byte("one")},
		{[]byte("a"), nil, []byte("ccc")},
		{bytes.Repeat([]byte{0x5a}, 4096), []byte{}, []byte{1}},
	}
	for _, parts := range cases {
		enc := packBatch(parts)
		got, err := UnpackBatch(enc)
		if err != nil {
			t.Fatalf("unpack(%d parts): %v", len(parts), err)
		}
		if len(got) != len(parts) {
			t.Fatalf("got %d parts, want %d", len(got), len(parts))
		}
		for i := range parts {
			if !bytes.Equal(got[i], parts[i]) {
				t.Fatalf("part %d mismatch", i)
			}
		}
	}
}

func TestUnpackBatchRejects(t *testing.T) {
	good := packBatch([][]byte{[]byte("ab"), []byte("c")})
	bad := map[string][]byte{
		"empty":           {},
		"short header":    good[:6],
		"wrong magic":     append([]byte{0, 0, 0, 0}, good[4:]...),
		"truncated part":  good[:len(good)-1],
		"trailing bytes":  append(append([]byte(nil), good...), 0),
		"count too large": func() []byte { b := append([]byte(nil), good...); b[4] = 200; return b }(),
		"count too small": func() []byte { b := append([]byte(nil), good...); b[4] = 1; return b }(),
	}
	for name, data := range bad {
		if _, err := UnpackBatch(data); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// FuzzUnpackBatch mirrors FuzzUnpackSlices for the coalescing batch
// container: no input may panic the decoder, and any accepted input
// must round-trip through the canonical encoder — the framing is
// unambiguous, so a frame cannot be read two ways at ingress.
func FuzzUnpackBatch(f *testing.F) {
	f.Add([]byte{})
	f.Add(packBatch(nil))
	f.Add(packBatch([][]byte{[]byte("seed"), nil, []byte("corpus")}))
	f.Add(packBatch([][]byte{bytes.Repeat([]byte{7}, 300)})[:50])
	f.Add([]byte{0xed, 0x11, 0x7c, 0xb4, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		parts, err := UnpackBatch(data)
		if err != nil {
			return
		}
		if !bytes.Equal(packBatch(parts), data) {
			t.Fatalf("accepted input does not round-trip (%d bytes, %d parts)", len(data), len(parts))
		}
	})
}
