package enc

import (
	"encoding/binary"
	"fmt"
)

// Batch framing: a container for several already-framed messages sent
// as one. The transport's send-side coalescing uses it to amortise
// per-frame overhead (matcher ingress, TCP syscalls) across a burst:
// consecutive small frames are packed into a single batch frame and
// unpacked again at ingress.
//
// Wire format: u32 magic | u32 count | count × (u32 len | bytes),
// all little-endian. The magic guards against a stray non-batch
// payload being unpacked as one; the explicit count lets the decoder
// reject a truncated or padded batch outright instead of silently
// yielding the wrong number of parts.

// batchMagic marks a batch payload. Arbitrary but asymmetric, so a
// zeroed or ASCII payload can never alias it.
const batchMagic = 0xb47c11ed

// BatchHeaderLen is the fixed prefix AppendBatchHeader writes.
const BatchHeaderLen = 8

// BatchPartOverhead is the per-part framing cost inside a batch.
const BatchPartOverhead = 4

// AppendBatchHeader appends the batch prefix for count parts to dst.
func AppendBatchHeader(dst []byte, count int) []byte {
	var hdr [BatchHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], batchMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(count))
	return append(dst, hdr[:]...)
}

// AppendBatchPart appends one length-prefixed part to dst. Exactly
// the count declared in the header must follow it.
func AppendBatchPart(dst []byte, part []byte) []byte {
	var hdr [BatchPartOverhead]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(part)))
	dst = append(dst, hdr[:]...)
	return append(dst, part...)
}

// AppendPartHeader appends just the length prefix for a part of size
// bytes; the caller appends the bytes itself (used when a part is
// assembled piecewise, e.g. frame header + payload).
func AppendPartHeader(dst []byte, size int) []byte {
	var hdr [BatchPartOverhead]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(size))
	return append(dst, hdr[:]...)
}

// BatchLen returns the encoded size of a batch holding parts of the
// given sizes.
func BatchLen(sizes []int) int {
	total := BatchHeaderLen
	for _, n := range sizes {
		total += BatchPartOverhead + n
	}
	return total
}

// UnpackBatch decodes a batch payload. The returned parts alias data
// (no copies). Errors — rather than panics or silent truncation — on
// a missing/wrong magic, a truncated part, a part count that does not
// match the header, or trailing garbage. Declared lengths can never
// force an allocation beyond the input's own size.
func UnpackBatch(data []byte) ([][]byte, error) {
	if len(data) < BatchHeaderLen {
		return nil, fmt.Errorf("enc: batch header truncated (%d bytes)", len(data))
	}
	if m := binary.LittleEndian.Uint32(data); m != batchMagic {
		return nil, fmt.Errorf("enc: bad batch magic %#x", m)
	}
	count := binary.LittleEndian.Uint32(data[4:])
	data = data[BatchHeaderLen:]
	if uint64(count)*BatchPartOverhead > uint64(len(data)) {
		return nil, fmt.Errorf("enc: batch declares %d parts in %d bytes", count, len(data))
	}
	out := make([][]byte, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(data) < BatchPartOverhead {
			return nil, fmt.Errorf("enc: truncated batch part header (%d trailing bytes)", len(data))
		}
		n := binary.LittleEndian.Uint32(data)
		data = data[BatchPartOverhead:]
		if uint64(n) > uint64(len(data)) {
			return nil, fmt.Errorf("enc: truncated batch part body (declared %d, %d left)", n, len(data))
		}
		out = append(out, data[:n:n])
		data = data[n:]
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("enc: %d trailing bytes after %d batch parts", len(data), count)
	}
	return out, nil
}
