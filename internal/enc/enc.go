// Package enc provides the length-prefixed slice framing shared by the
// collective engine (packed multi-block schedule steps), the core
// coordinator exchange paths, and anything else that must move a
// [][]byte through a single message.
//
// Wire format: each part is a u32 little-endian length followed by that
// many payload bytes, concatenated. A nil part and an empty part both
// encode as a zero length and decode as an empty slice.
package enc

import (
	"encoding/binary"
	"fmt"
)

// PackSlices serialises parts with u32 little-endian length prefixes.
// The result decodes with UnpackSlices to the same number of parts with
// the same contents.
func PackSlices(parts [][]byte) []byte {
	total := 0
	for _, p := range parts {
		total += 4 + len(p)
	}
	out := make([]byte, 0, total)
	var hdr [4]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(p)))
		out = append(out, hdr[:]...)
		out = append(out, p...)
	}
	return out
}

// PackedLen returns the encoded size of parts: what PackSlices would
// allocate and what PackSlicesInto will append.
func PackedLen(parts [][]byte) int {
	total := 0
	for _, p := range parts {
		total += 4 + len(p)
	}
	return total
}

// PackSlicesInto appends the PackSlices encoding of parts to dst and
// returns the extended slice, allocating only if dst lacks capacity.
// With dst pre-sized to PackedLen (e.g. a pooled or reused scratch
// buffer, passed as dst[:0]), packing is allocation-free. The output
// bytes are identical to PackSlices.
func PackSlicesInto(dst []byte, parts [][]byte) []byte {
	var hdr [4]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(p)))
		dst = append(dst, hdr[:]...)
		dst = append(dst, p...)
	}
	return dst
}

// UnpackSlices decodes a PackSlices buffer. The returned slices alias
// data (no copies). Truncated input — a header shorter than 4 bytes or
// a declared length running past the buffer — returns an error rather
// than panicking, and the declared lengths can never force an
// allocation larger than the input itself, so adversarial buffers are
// bounded by their own size.
func UnpackSlices(data []byte) ([][]byte, error) {
	var out [][]byte
	for len(data) > 0 {
		if len(data) < 4 {
			return nil, fmt.Errorf("enc: truncated slice pack header (%d trailing bytes)", len(data))
		}
		n := binary.LittleEndian.Uint32(data)
		data = data[4:]
		if uint64(n) > uint64(len(data)) {
			return nil, fmt.Errorf("enc: truncated slice pack body (declared %d, %d left)", n, len(data))
		}
		out = append(out, data[:n:n])
		data = data[n:]
	}
	return out, nil
}
