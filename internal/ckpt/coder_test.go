package ckpt

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"

	"fmi/internal/erasure"
)

func TestNewCoderSelection(t *testing.T) {
	for _, m := range []int{-1, 0, 1} {
		if s := NewCoder(m, 0).Scheme(); s != SchemeXOR {
			t.Fatalf("NewCoder(%d) scheme = %q, want xor", m, s)
		}
	}
	for _, m := range []int{2, 3} {
		c := NewCoder(m, 0)
		if c.Scheme() != SchemeRS {
			t.Fatalf("NewCoder(%d) scheme = %q, want rs", m, c.Scheme())
		}
		if got := c.Tolerance(8); got != m {
			t.Fatalf("NewCoder(%d).Tolerance(8) = %d", m, got)
		}
	}
}

func TestCoderToleranceAndChunkLen(t *testing.T) {
	xor := NewCoder(1, 0)
	if xor.Tolerance(1) != 0 || xor.Tolerance(2) != 1 || xor.Tolerance(8) != 1 {
		t.Fatal("xor tolerance wrong")
	}
	rs := NewCoder(3, 0)
	// Clamped to g-1 so at least one data chunk remains.
	if rs.Tolerance(1) != 0 || rs.Tolerance(2) != 1 || rs.Tolerance(3) != 2 || rs.Tolerance(8) != 3 {
		t.Fatal("rs tolerance wrong")
	}
	// RS(k=g-m): g=5, m=3 -> k=2 -> ceil(100/2)=50.
	if got := rs.ChunkLen(100, 5); got != 50 {
		t.Fatalf("rs ChunkLen(100,5) = %d, want 50", got)
	}
	// Empty checkpoints: both schemes still use 1-byte chunks.
	if xor.ChunkLen(0, 4) != 1 || rs.ChunkLen(0, 4) != 1 {
		t.Fatal("empty-checkpoint chunkLen must be 1")
	}
}

// The m=1 golden-parity gate: the XORRing coder must produce byte-for-
// byte the same stored parity as the seed's EncodeLocal/EncodeRing, so
// Redundancy=1 jobs are wire- and state-identical to the XOR-only
// runtime.
func TestXORRingCoderGoldenParity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	coder := NewCoder(1, 0)
	for _, g := range []int{2, 3, 4, 8} {
		data := randData(rng, g, 600)
		maxSize := 0
		for _, d := range data {
			if len(d) > maxSize {
				maxSize = len(d)
			}
		}
		chunkLen := coder.ChunkLen(maxSize, g)
		if chunkLen != ChunkLen(maxSize, g) {
			t.Fatalf("g=%d: coder chunkLen %d != seed %d", g, chunkLen, ChunkLen(maxSize, g))
		}
		got := runRing(t, g, func(i int, gc GroupComm) ([]byte, error) {
			return coder.Encode(gc, i, g, data[i], chunkLen)
		})
		want, _ := EncodeLocal(data)
		for s := 0; s < g; s++ {
			if !bytes.Equal(got[s], want[s]) {
				t.Fatalf("g=%d: coder parity %d differs from seed ring-XOR", g, s)
			}
		}
	}
}

// rsLocalParity computes each member's expected RS parity centrally
// from the rotated-stripe layout — the reference the distributed
// encode must match.
func rsLocalParity(t *testing.T, data [][]byte, g, m, chunkLen int) [][]byte {
	t.Helper()
	if m > g-1 {
		m = g - 1
	}
	k := g - m
	code, err := erasure.New(k, m)
	if err != nil {
		t.Fatal(err)
	}
	parity := make([][]byte, g)
	for r := 0; r < g; r++ {
		parity[r] = make([]byte, m*chunkLen)
		for j := 0; j < m; j++ {
			s := mod(r-j, g)
			shards := make([][]byte, k)
			for l := 0; l < k; l++ {
				shards[l] = chunk(data[(s+m+l)%g], chunkLen, l+1)
			}
			code.EncodeRowInto(j, shards, parity[r][j*chunkLen:(j+1)*chunkLen], 1)
		}
	}
	return parity
}

func TestRSEncodeMatchesLocalReference(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, g := range []int{2, 3, 4, 5, 8} {
		for _, m := range []int{2, 3} {
			coder := NewRSGroup(m, 1)
			data := randData(rng, g, 500)
			maxSize := 0
			for _, d := range data {
				if len(d) > maxSize {
					maxSize = len(d)
				}
			}
			chunkLen := coder.ChunkLen(maxSize, g)
			got := runRing(t, g, func(i int, gc GroupComm) ([]byte, error) {
				return coder.Encode(gc, i, g, data[i], chunkLen)
			})
			want := rsLocalParity(t, data, g, m, chunkLen)
			for r := 0; r < g; r++ {
				if !bytes.Equal(got[r], want[r]) {
					t.Fatalf("g=%d m=%d: rank %d distributed parity differs from reference", g, m, r)
				}
			}
		}
	}
}

// runReconstruct drives a full group Reconstruct over channels: the
// survivors pass their data+parity, the lost members pass nil, and the
// lost members' outputs are returned (indexed by group-local rank).
func runReconstruct(t *testing.T, coder Coder, g int, lost []int, data, parity [][]byte, chunkLen int) [][]byte {
	t.Helper()
	lostSet := map[int]bool{}
	for _, li := range lost {
		lostSet[li] = true
	}
	return runRing(t, g, func(i int, gc GroupComm) ([]byte, error) {
		if lostSet[i] {
			return coder.Reconstruct(gc, i, g, lost, nil, nil, chunkLen)
		}
		return coder.Reconstruct(gc, i, g, lost, data[i], parity[i], chunkLen)
	})
}

func TestCoderReconstructRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, tc := range []struct{ g, m int }{
		{2, 1}, {3, 1}, {5, 1}, {8, 1},
		{2, 2}, {3, 2}, {4, 2}, {5, 2}, {8, 2},
		{3, 3}, {4, 3}, {5, 3}, {8, 3},
	} {
		coder := NewCoder(tc.m, 1)
		data := randData(rng, tc.g, 700)
		maxSize := 0
		for _, d := range data {
			if len(d) > maxSize {
				maxSize = len(d)
			}
		}
		chunkLen := coder.ChunkLen(maxSize, tc.g)
		parity := runRing(t, tc.g, func(i int, gc GroupComm) ([]byte, error) {
			return coder.Encode(gc, i, tc.g, data[i], chunkLen)
		})
		tol := coder.Tolerance(tc.g)
		for trial := 0; trial < 12; trial++ {
			nLost := 1 + rng.Intn(tol)
			lostSet := map[int]bool{}
			for len(lostSet) < nLost {
				lostSet[rng.Intn(tc.g)] = true
			}
			lost := make([]int, 0, nLost)
			for li := range lostSet {
				lost = append(lost, li)
			}
			sort.Ints(lost)
			out := runReconstruct(t, coder, tc.g, lost, data, parity, chunkLen)
			for _, li := range lost {
				if !bytes.Equal(out[li][:len(data[li])], data[li]) {
					t.Fatalf("g=%d m=%d lost=%v: rank %d rebuilt wrong", tc.g, tc.m, lost, li)
				}
			}
		}
	}
}

// Regression: zero-length checkpoints must encode and reconstruct
// (ChunkLen(0,g) was 0, which made the ring exchange empty frames).
func TestCoderEmptyCheckpoints(t *testing.T) {
	for _, m := range []int{1, 2} {
		coder := NewCoder(m, 1)
		g := 4
		data := make([][]byte, g) // all empty
		for i := range data {
			data[i] = []byte{}
		}
		chunkLen := coder.ChunkLen(0, g)
		if chunkLen != 1 {
			t.Fatalf("m=%d: chunkLen = %d, want 1", m, chunkLen)
		}
		parity := runRing(t, g, func(i int, gc GroupComm) ([]byte, error) {
			return coder.Encode(gc, i, g, data[i], chunkLen)
		})
		out := runReconstruct(t, coder, g, []int{2}, data, parity, chunkLen)
		if len(out[2]) == 0 {
			t.Fatalf("m=%d: no padded output", m)
		}
		if !bytes.Equal(out[2][:0], data[2]) {
			t.Fatalf("m=%d: empty checkpoint not recovered", m)
		}
	}
}

// BenchmarkErasureRingXOR vs BenchmarkErasureRSk1: the two m=1-grade
// encodings over the same 16 x 1 MiB group, MB/s of checkpoint data
// protected per op.
func BenchmarkErasureRingXOR(b *testing.B) {
	data := make([][]byte, 16)
	for i := range data {
		data[i] = make([]byte, 1<<20)
	}
	b.SetBytes(16 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EncodeLocal(data)
	}
}

func BenchmarkErasureRSk1(b *testing.B) {
	code, err := erasure.New(15, 1)
	if err != nil {
		b.Fatal(err)
	}
	data := make([][]byte, 15)
	for i := range data {
		data[i] = make([]byte, 1<<20)
	}
	parity := [][]byte{make([]byte, 1<<20)}
	b.SetBytes(15 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		code.EncodeStriped(data, parity, 0)
	}
}
