package ckpt

import "fmt"

// Scheme names a redundancy encoding; it is carried on every Entry so
// stores, traces, and restores know how a parity buffer was produced.
type Scheme string

const (
	// SchemeXOR is the paper's ring-XOR encoding (Fig 9): one parity
	// chain per member, tolerating one lost rank per group.
	SchemeXOR Scheme = "xor"
	// SchemeRS is systematic Reed-Solomon RS(k,m) over GF(2^8):
	// m parity shards per member, tolerating m lost ranks per group.
	SchemeRS Scheme = "rs"
)

// Coder is a pluggable group redundancy scheme. Both implementations
// are collective: every member of a group calls Encode (and, during
// recovery, Reconstruct) with the same agreed chunkLen, and the calls
// communicate over the GroupComm.
type Coder interface {
	// Scheme identifies the encoding.
	Scheme() Scheme
	// Tolerance returns how many simultaneous member losses a group of
	// size g can repair (0 for singleton groups: no redundancy).
	Tolerance(g int) int
	// ChunkLen returns the shard length all members of a group of size
	// g must agree on, given the group's largest checkpoint size.
	ChunkLen(maxSize, g int) int
	// Encode runs the distributed group encode for member self over
	// its (conceptually chunkLen-padded) checkpoint bytes and returns
	// the parity this member stores.
	Encode(gc GroupComm, self, g int, data []byte, chunkLen int) ([]byte, error)
	// Reconstruct rebuilds the checkpoints of the lost members (sorted
	// group-local indices). Survivors contribute their data and stored
	// parity and return nil; each lost member passes nil data/parity
	// and returns its rebuilt padded checkpoint (the caller trims it
	// to the original size). Parity is NOT restored here — the caller
	// re-runs Encode group-wide afterwards.
	Reconstruct(gc GroupComm, self, g int, lost []int, data, parity []byte, chunkLen int) ([]byte, error)
}

// NewCoder returns the coder for a configured redundancy level m:
// m <= 1 selects the paper's ring-XOR scheme, m >= 2 selects RS(k,m).
// workers bounds the RS kernels' worker pool (<= 0 = GOMAXPROCS).
func NewCoder(m, workers int) Coder {
	if m <= 1 {
		return XORRing{}
	}
	return NewRSGroup(m, workers)
}

// XORRing is the seed scheme: the Fig 9 ring encode unchanged, so with
// redundancy m=1 the parity bytes (and the ring protocol producing
// them) are identical to the original XOR-only runtime.
type XORRing struct{}

// Scheme implements Coder.
func (XORRing) Scheme() Scheme { return SchemeXOR }

// Tolerance implements Coder: one loss per group of at least two.
func (XORRing) Tolerance(g int) int {
	if g < 2 {
		return 0
	}
	return 1
}

// ChunkLen implements Coder.
func (XORRing) ChunkLen(maxSize, g int) int { return ChunkLen(maxSize, g) }

// Encode implements Coder via the Fig 9 ring.
func (XORRing) Encode(gc GroupComm, self, g int, data []byte, chunkLen int) ([]byte, error) {
	return EncodeRing(gc, self, g, data, chunkLen)
}

// Reconstruct implements Coder: survivors run the decode ring and send
// their resulting chunk of the lost checkpoint to the replacement,
// which relays the ring (contributing nothing) and gathers the chunks
// (paper Fig 11: decode + gather).
func (XORRing) Reconstruct(gc GroupComm, self, g int, lost []int, data, parity []byte, chunkLen int) ([]byte, error) {
	if len(lost) != 1 {
		return nil, fmt.Errorf("ckpt: xor ring repairs exactly one loss, got %d", len(lost))
	}
	lostIdx := lost[0]
	rel, _ := gc.(Releaser)
	if self != lostIdx {
		res, err := DecodeRing(gc, self, g, data, chunkLen, parity, true)
		if err != nil {
			return nil, err
		}
		err = gc.Send(lostIdx, res)
		if rel != nil {
			rel.Release(res) // copied by the eager send
		}
		return nil, err
	}
	if relay, err := DecodeRing(gc, self, g, nil, chunkLen, make([]byte, chunkLen), false); err != nil {
		return nil, err
	} else if rel != nil {
		rel.Release(relay) // the replacement's ring result is discarded
	}
	out := make([]byte, (g-1)*chunkLen)
	for i := 0; i < g; i++ {
		if i == lostIdx {
			continue
		}
		c, err := gc.Recv(i)
		if err != nil {
			return nil, err
		}
		k := DecodeChunkIndex(lostIdx, i, g)
		copy(out[(k-1)*chunkLen:], c)
		if rel != nil {
			rel.Release(c) // chunk copied into place
		}
	}
	return out, nil
}
