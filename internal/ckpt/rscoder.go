package ckpt

import (
	"fmt"
	"sync"

	"fmi/internal/erasure"
)

// RSGroup runs systematic Reed-Solomon RS(k,m) redundancy within a
// checkpoint group of G ranks, tolerating up to m simultaneous member
// losses (vs the XOR ring's one). The layout is the rotated-stripe
// generalisation of the Fig 9 chain layout:
//
// Each member's checkpoint is padded and split into k = G-m chunks.
// There are G stripes; stripe s is held by the m "parity holder" ranks
// s, s+1, .., s+m-1 (mod G) and fed by the k "contributor" ranks
// s+m+l (mod G), each contributing its own chunk l (l = 0..k-1).
// Holders and contributors partition the group, so every rank owns
// exactly one shard of every stripe: losing any set of <= m ranks
// removes <= m shards per stripe, which the MDS code repairs. Each
// member stores m parity shards (overhead m/(G-m) of its checkpoint);
// with m=1 the layout degenerates to exactly the XOR chain layout.
//
// Encode is fully asynchronous (chunks are pushed to the holders, then
// parities computed by the striped worker-pool kernels); Reconstruct
// has the survivors push the k deterministically-selected shards of
// each damaged stripe directly to the replacements, which solve the
// k x k system — no ring relay, so multi-loss recovery needs one
// communication round.
type RSGroup struct {
	m       int // configured redundancy (clamped to g-1 per group)
	workers int

	mu    sync.Mutex
	codes map[int]*erasure.Code // per group size
}

// NewRSGroup returns an RS coder with redundancy m >= 1. workers
// bounds the kernel worker pool (<= 0 = GOMAXPROCS).
func NewRSGroup(m, workers int) *RSGroup {
	if m < 1 {
		m = 1
	}
	return &RSGroup{m: m, workers: workers, codes: make(map[int]*erasure.Code)}
}

// Scheme implements Coder.
func (c *RSGroup) Scheme() Scheme { return SchemeRS }

// eff returns the effective (m, k) for a group of size g: m is clamped
// so at least one data chunk remains.
func (c *RSGroup) eff(g int) (m, k int) {
	m = c.m
	if m > g-1 {
		m = g - 1
	}
	return m, g - m
}

// Tolerance implements Coder.
func (c *RSGroup) Tolerance(g int) int {
	if g < 2 {
		return 0
	}
	m, _ := c.eff(g)
	return m
}

// ChunkLen implements Coder: ceil(maxSize/k), never zero so frames are
// non-empty even for empty checkpoints.
func (c *RSGroup) ChunkLen(maxSize, g int) int {
	if g < 2 {
		return maxSize
	}
	_, k := c.eff(g)
	if maxSize <= 0 {
		return 1
	}
	return (maxSize + k - 1) / k
}

func (c *RSGroup) code(g int) (*erasure.Code, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cd, ok := c.codes[g]; ok {
		return cd, nil
	}
	m, k := c.eff(g)
	cd, err := erasure.New(k, m)
	if err != nil {
		return nil, err
	}
	c.codes[g] = cd
	return cd, nil
}

func mod(a, g int) int { return ((a % g) + g) % g }

// paddedChunk returns chunk k (1-based) of data zero-padded to
// chunkLen, using *pad as scratch when padding is required (the eager
// transports copy at Send, so one scratch serves every padded send of
// a call). Unpadded chunks alias data.
func paddedChunk(data []byte, chunkLen, k int, pad *[]byte) []byte {
	lo := (k - 1) * chunkLen
	hi := lo + chunkLen
	if lo < len(data) && hi <= len(data) {
		return data[lo:hi]
	}
	if cap(*pad) < chunkLen {
		*pad = make([]byte, chunkLen)
	}
	p := (*pad)[:chunkLen]
	for i := range p {
		p[i] = 0
	}
	if lo < len(data) {
		copy(p, data[lo:])
	}
	return p
}

// Encode implements Coder: push each of my chunks to the m holders of
// its stripe, then compute the parity shard of each stripe I hold from
// the k chunks pushed to me. Sends all precede receives, which is
// deadlock-free on the asynchronous FMI transports; per peer pair both
// sides traverse stripes in the same (provably monotone) order, so
// FIFO matching suffices.
//
// The parity computation is pipelined: GF(2^8) addition is XOR, so
// shard contributions commute and each arriving chunk folds into its
// parity row immediately (MulAddRowInto) — the striping arithmetic
// overlaps with waiting on the group exchange instead of running
// serially after it, and no k-chunk staging buffer exists. With a
// pooled GroupComm every folded chunk is recycled on the spot.
func (c *RSGroup) Encode(gc GroupComm, self, g int, data []byte, chunkLen int) ([]byte, error) {
	if g < 2 {
		return nil, fmt.Errorf("ckpt: rs encode needs a group of >= 2")
	}
	m, k := c.eff(g)
	code, err := c.code(g)
	if err != nil {
		return nil, err
	}
	rel, _ := gc.(Releaser)
	var pad []byte
	for l := 0; l < k; l++ {
		s := mod(self-m-l, g)
		my := paddedChunk(data, chunkLen, l+1, &pad)
		for j := 0; j < m; j++ {
			if err := gc.Send((s+j)%g, my); err != nil {
				return nil, err
			}
		}
	}
	parity := make([]byte, m*chunkLen) // zeroed: the fold accumulator
	for j := 0; j < m; j++ {
		s := mod(self-j, g)
		row := parity[j*chunkLen : (j+1)*chunkLen]
		for l := 0; l < k; l++ {
			b, err := gc.Recv((s + m + l) % g)
			if err != nil {
				return nil, err
			}
			if len(b) != chunkLen {
				if rel != nil {
					rel.Release(b)
				}
				return nil, fmt.Errorf("ckpt: rs encode: %d-byte shard, want %d", len(b), chunkLen)
			}
			code.MulAddRowInto(j, l, b, row, c.workers)
			if rel != nil {
				rel.Release(b) // folded; the chunk bytes are dead
			}
		}
	}
	return parity, nil
}

// shardOwner returns the group-local rank owning global shard idx of
// stripe s (idx < k: contributor of chunk idx; idx >= k: holder of
// parity idx-k).
func shardOwner(s, idx, g, m, k int) int {
	if idx < k {
		return (s + m + idx) % g
	}
	return (s + idx - k) % g
}

// selectShards returns the first k shard indices of stripe s whose
// owners survive — the deterministic selection every member computes
// identically (data shards preferred, then parity).
func selectShards(s, g, m, k int, lost map[int]bool) []int {
	sel := make([]int, 0, k)
	for idx := 0; idx < g && len(sel) < k; idx++ {
		if !lost[shardOwner(s, idx, g, m, k)] {
			sel = append(sel, idx)
		}
	}
	return sel
}

// Reconstruct implements Coder. Each lost member's chunk l lives in
// stripe s = lost-m-l (mod G); for every such stripe the survivors
// among the selected k shard owners push their shard to the lost
// member, which inverts the corresponding k x k generator submatrix
// to recover its chunk.
func (c *RSGroup) Reconstruct(gc GroupComm, self, g int, lost []int, data, parity []byte, chunkLen int) ([]byte, error) {
	m, k := c.eff(g)
	if len(lost) == 0 || len(lost) > m {
		return nil, fmt.Errorf("ckpt: rs group of %d repairs 1..%d losses, got %d", g, m, len(lost))
	}
	code, err := c.code(g)
	if err != nil {
		return nil, err
	}
	lostSet := make(map[int]bool, len(lost))
	amLost := false
	for _, li := range lost {
		lostSet[li] = true
		if li == self {
			amLost = true
		}
	}

	rel, _ := gc.(Releaser)
	if !amLost {
		// Survivor: push my shard of every damaged stripe that selected it.
		var pad []byte
		for _, li := range lost {
			for l := 0; l < k; l++ {
				s := mod(li-m-l, g)
				for _, idx := range selectShards(s, g, m, k, lostSet) {
					if shardOwner(s, idx, g, m, k) != self {
						continue
					}
					var sh []byte
					if idx < k {
						sh = paddedChunk(data, chunkLen, idx+1, &pad)
					} else {
						j := idx - k // == mod(self-s, g)
						sh = parity[j*chunkLen : (j+1)*chunkLen]
					}
					if err := gc.Send(li, sh); err != nil {
						return nil, err
					}
				}
			}
		}
		return nil, nil
	}

	// Replacement: gather the selected shards of each of my stripes and
	// solve for my chunk — recovered directly into its slot of the
	// rebuilt checkpoint (RecoverInto), no per-stripe scratch + copy.
	out := make([]byte, k*chunkLen)
	shards := make([][]byte, k)
	wantOne := make([]int, 1)
	outOne := make([][]byte, 1)
	for l := 0; l < k; l++ {
		s := mod(self-m-l, g)
		sel := selectShards(s, g, m, k, lostSet)
		if len(sel) < k {
			return nil, fmt.Errorf("ckpt: stripe %d has only %d surviving shards, need %d", s, len(sel), k)
		}
		for i, idx := range sel {
			b, err := gc.Recv(shardOwner(s, idx, g, m, k))
			if err != nil {
				return nil, err
			}
			if len(b) != chunkLen {
				if rel != nil {
					rel.Release(b)
				}
				return nil, fmt.Errorf("ckpt: rs reconstruct: %d-byte shard, want %d", len(b), chunkLen)
			}
			shards[i] = b
		}
		wantOne[0] = l
		outOne[0] = out[l*chunkLen : (l+1)*chunkLen]
		err := code.RecoverInto(sel, shards, wantOne, outOne, c.workers)
		if rel != nil {
			for _, b := range shards {
				rel.Release(b) // solved; gathered shards are dead
			}
		}
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
