package ckpt

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func randData(rng *rand.Rand, g, maxLen int) [][]byte {
	data := make([][]byte, g)
	for i := range data {
		n := 1 + rng.Intn(maxLen)
		data[i] = make([]byte, n)
		rng.Read(data[i])
	}
	return data
}

func TestEncodeLocalReconstructAllRanks(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, g := range []int{2, 3, 4, 5, 8, 16} {
		data := randData(rng, g, 1000)
		parity, chunkLen := EncodeLocal(data)
		for lost := 0; lost < g; lost++ {
			got := ReconstructLocal(data, parity, chunkLen, lost, len(data[lost]))
			if !bytes.Equal(got, data[lost]) {
				t.Fatalf("g=%d lost=%d: reconstruction mismatch", g, lost)
			}
		}
	}
}

func TestEncodeLocalEqualSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := 6
	data := make([][]byte, g)
	for i := range data {
		data[i] = make([]byte, 4096)
		rng.Read(data[i])
	}
	parity, chunkLen := EncodeLocal(data)
	if chunkLen != ChunkLen(4096, g) {
		t.Fatalf("chunkLen = %d", chunkLen)
	}
	for lost := 0; lost < g; lost++ {
		got := ReconstructLocal(data, parity, chunkLen, lost, 4096)
		if !bytes.Equal(got, data[lost]) {
			t.Fatalf("lost=%d mismatch", lost)
		}
	}
}

// Property: for random group sizes and random (unequal) checkpoint
// sizes, any single lost rank is exactly reconstructible.
func TestQuickXORReconstruction(t *testing.T) {
	f := func(seed int64, gRaw uint8, lostRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := 2 + int(gRaw)%15
		lost := int(lostRaw) % g
		data := randData(rng, g, 700)
		parity, chunkLen := EncodeLocal(data)
		got := ReconstructLocal(data, parity, chunkLen, lost, len(data[lost]))
		return bytes.Equal(got, data[lost])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: parity of the parity — XORing a chain with all the chunks
// it covers yields zero.
func TestQuickChainCoverage(t *testing.T) {
	f := func(seed int64, gRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := 2 + int(gRaw)%15
		data := randData(rng, g, 300)
		parity, chunkLen := EncodeLocal(data)
		for s := 0; s < g; s++ {
			c := make([]byte, chunkLen)
			copy(c, parity[s])
			for k := 1; k < g; k++ {
				XorInto(c, chunk(data[(s+k)%g], chunkLen, k))
			}
			for _, b := range c {
				if b != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCoveringChainBijection(t *testing.T) {
	// Every (lost, k) maps to a distinct chain not stored at 'lost'.
	for _, g := range []int{2, 3, 8, 16} {
		for lost := 0; lost < g; lost++ {
			seen := map[int]bool{}
			for k := 1; k < g; k++ {
				s := CoveringChain(lost, k, g)
				if s == lost {
					t.Fatalf("g=%d: chunk %d of rank %d covered only by its own chain", g, k, lost)
				}
				if seen[s] {
					t.Fatalf("g=%d lost=%d: chain %d covers two chunks", g, lost, s)
				}
				seen[s] = true
			}
		}
	}
}

func TestChunkLen(t *testing.T) {
	cases := []struct{ size, g, want int }{
		{100, 2, 100}, {100, 5, 25}, {101, 5, 26}, {7, 8, 1},
		// Empty checkpoints still get 1-byte chunks so the ring never
		// exchanges empty frames (regression: ChunkLen(0,g) was 0).
		{0, 4, 1}, {0, 2, 1}, {-3, 5, 1},
	}
	for _, c := range cases {
		if got := ChunkLen(c.size, c.g); got != c.want {
			t.Fatalf("ChunkLen(%d,%d) = %d, want %d", c.size, c.g, got, c.want)
		}
	}
}

func TestChunkPadding(t *testing.T) {
	data := []byte{1, 2, 3, 4, 5}
	// chunkLen 2, g=4 -> chunks: [1,2], [3,4], [5,0]
	if got := chunk(data, 2, 3); got[0] != 5 || got[1] != 0 {
		t.Fatalf("padded chunk = %v", got)
	}
	// chunk entirely past the end
	if got := chunk(data, 2, 4); got[0] != 0 || got[1] != 0 {
		t.Fatalf("out-of-range chunk = %v", got)
	}
}

// chanGroupComm wires up a group over buffered channels for ring tests.
type chanGroupComm struct {
	self int
	in   []chan []byte // in[peer] receives data sent by peer to self
	out  []*chanGroupComm
}

func newGroup(g int) []*chanGroupComm {
	members := make([]*chanGroupComm, g)
	for i := range members {
		in := make([]chan []byte, g)
		for j := range in {
			in[j] = make(chan []byte, g+2)
		}
		members[i] = &chanGroupComm{self: i, in: in}
	}
	for i := range members {
		members[i].out = members
	}
	return members
}

func (c *chanGroupComm) Send(peer int, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	c.out[peer].in[c.self] <- cp
	return nil
}

func (c *chanGroupComm) Recv(peer int) ([]byte, error) {
	return <-c.in[peer], nil
}

func runRing(t *testing.T, g int, fn func(i int, gc GroupComm) ([]byte, error)) [][]byte {
	t.Helper()
	members := newGroup(g)
	out := make([][]byte, g)
	errs := make([]error, g)
	var wg sync.WaitGroup
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i], errs[i] = fn(i, members[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("member %d: %v", i, err)
		}
	}
	return out
}

func TestEncodeRingMatchesEncodeLocal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, g := range []int{2, 3, 4, 8, 16} {
		data := randData(rng, g, 512)
		maxSize := 0
		for _, d := range data {
			if len(d) > maxSize {
				maxSize = len(d)
			}
		}
		chunkLen := ChunkLen(maxSize, g)
		ringParity := runRing(t, g, func(i int, gc GroupComm) ([]byte, error) {
			return EncodeRing(gc, i, g, data[i], chunkLen)
		})
		wantParity, wantLen := EncodeLocal(data)
		if wantLen != chunkLen {
			t.Fatalf("chunkLen mismatch: %d vs %d", wantLen, chunkLen)
		}
		for s := 0; s < g; s++ {
			if !bytes.Equal(ringParity[s], wantParity[s]) {
				t.Fatalf("g=%d: ring parity %d differs from local", g, s)
			}
		}
	}
}

func TestDecodeRingRecoversLostRank(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, g := range []int{2, 3, 5, 8} {
		data := randData(rng, g, 400)
		maxSize := 0
		for _, d := range data {
			if len(d) > maxSize {
				maxSize = len(d)
			}
		}
		chunkLen := ChunkLen(maxSize, g)
		parity, _ := EncodeLocal(data)
		for lost := 0; lost < g; lost++ {
			lost := lost
			results := runRing(t, g, func(i int, gc GroupComm) ([]byte, error) {
				if i == lost {
					// Restarted rank: no data, fresh zero parity.
					return DecodeRing(gc, i, g, nil, chunkLen, make([]byte, chunkLen), false)
				}
				return DecodeRing(gc, i, g, data[i], chunkLen, parity[i], true)
			})
			// Assemble the lost checkpoint from the survivors' results.
			rebuilt := make([]byte, (g-1)*chunkLen)
			for i := 0; i < g; i++ {
				if i == lost {
					continue
				}
				k := DecodeChunkIndex(lost, i, g)
				if k == 0 {
					t.Fatalf("survivor %d claims chunk 0", i)
				}
				copy(rebuilt[(k-1)*chunkLen:], results[i])
			}
			if !bytes.Equal(rebuilt[:len(data[lost])], data[lost]) {
				t.Fatalf("g=%d lost=%d: ring decode mismatch", g, lost)
			}
		}
	}
}

func TestDecodeChunkIndexCoversAll(t *testing.T) {
	for _, g := range []int{2, 4, 9} {
		for lost := 0; lost < g; lost++ {
			seen := map[int]bool{}
			for i := 0; i < g; i++ {
				if i == lost {
					continue
				}
				k := DecodeChunkIndex(lost, i, g)
				if k < 1 || k >= g {
					t.Fatalf("g=%d lost=%d survivor=%d: chunk index %d out of range", g, lost, i, k)
				}
				if seen[k] {
					t.Fatalf("duplicate chunk index %d", k)
				}
				seen[k] = true
			}
		}
	}
}

func TestXorInto(t *testing.T) {
	a := []byte{0xFF, 0x00, 0xAA}
	b := []byte{0x0F, 0xF0, 0xAA}
	XorInto(a, b)
	if a[0] != 0xF0 || a[1] != 0xF0 || a[2] != 0x00 {
		t.Fatalf("a = %v", a)
	}
	// Shorter src only affects the prefix.
	c := []byte{1, 1}
	XorInto(c, []byte{1})
	if c[0] != 0 || c[1] != 1 {
		t.Fatalf("c = %v", c)
	}
}

func BenchmarkXorInto64MB(b *testing.B) {
	dst := make([]byte, 64<<20)
	src := make([]byte, 64<<20)
	b.SetBytes(64 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		XorInto(dst, src)
	}
}

// BenchmarkXorInto reports the 8-byte word stride against the old byte
// loop on the same buffers.
func BenchmarkXorInto(b *testing.B) {
	dst := make([]byte, 8<<20)
	src := make([]byte, 8<<20)
	b.Run("words", func(b *testing.B) {
		b.SetBytes(8 << 20)
		for i := 0; i < b.N; i++ {
			XorInto(dst, src)
		}
	})
	b.Run("bytes", func(b *testing.B) {
		b.SetBytes(8 << 20)
		for i := 0; i < b.N; i++ {
			xorIntoBytes(dst, src)
		}
	})
}

// The stride rewrite must stay exactly equivalent to the byte loop,
// including ragged lengths and mismatched dst/src sizes.
func TestXorIntoMatchesByteLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 65, 255, 1024} {
		for _, srcN := range []int{n, n / 2, n + 3} {
			a := make([]byte, n)
			s := make([]byte, srcN)
			rng.Read(a)
			rng.Read(s)
			want := append([]byte(nil), a...)
			xorIntoBytes(want, s)
			XorInto(a, s)
			if !bytes.Equal(a, want) {
				t.Fatalf("n=%d srcN=%d: stride XOR differs from byte loop", n, srcN)
			}
		}
	}
}

func BenchmarkEncodeLocalGroup16(b *testing.B) {
	data := make([][]byte, 16)
	for i := range data {
		data[i] = make([]byte, 1<<20)
	}
	b.SetBytes(16 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EncodeLocal(data)
	}
}
