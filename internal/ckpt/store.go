package ckpt

import (
	"errors"
	"fmt"
	"sync"
)

// ErrSizeMismatch is returned when restoring into segments whose
// shapes differ from the captured ones.
var ErrSizeMismatch = errors.New("ckpt: segment sizes do not match checkpoint")

// Snapshot is one rank's checkpoint: the registered segments
// concatenated by memcpy, tagged with the loop id they capture.
type Snapshot struct {
	LoopID int
	Data   []byte
	Sizes  []int
}

// Capture copies the segments into a snapshot (the paper's "write
// checkpoints in memory using memcpy").
func Capture(loopID int, segs [][]byte) *Snapshot {
	return CaptureInto(loopID, segs, make([]byte, TotalSize(segs)))
}

// TotalSize returns the concatenated byte size of the segments — the
// buffer length CaptureInto needs.
func TotalSize(segs [][]byte) int {
	total := 0
	for _, s := range segs {
		total += len(s)
	}
	return total
}

// CaptureInto is Capture writing into a caller-owned buffer (pooled or
// reused across checkpoint intervals): buf must have length
// TotalSize(segs) and is adopted as the snapshot's Data — the caller
// must not reuse it while the snapshot lives.
func CaptureInto(loopID int, segs [][]byte, buf []byte) *Snapshot {
	sizes := make([]int, len(segs))
	off := 0
	for i, s := range segs {
		sizes[i] = len(s)
		off += copy(buf[off:], s)
	}
	return &Snapshot{LoopID: loopID, Data: buf[:off], Sizes: sizes}
}

// Restore copies the snapshot back into the segments, which must have
// exactly the captured shapes.
func (s *Snapshot) Restore(segs [][]byte) error {
	if len(segs) != len(s.Sizes) {
		return fmt.Errorf("%w: %d segments, checkpoint has %d", ErrSizeMismatch, len(segs), len(s.Sizes))
	}
	for i, seg := range segs {
		if len(seg) != s.Sizes[i] {
			return fmt.Errorf("%w: segment %d is %d bytes, checkpoint has %d", ErrSizeMismatch, i, len(seg), s.Sizes[i])
		}
	}
	off := 0
	for _, seg := range segs {
		off += copy(seg, s.Data[off:off+len(seg)])
	}
	return nil
}

// FromData reconstitutes a snapshot from raw restored bytes and the
// segment shape.
func FromData(loopID int, data []byte, sizes []int) *Snapshot {
	return &Snapshot{LoopID: loopID, Data: data, Sizes: sizes}
}

// Entry is a complete protected checkpoint: the local snapshot plus
// this rank's stored parity shards and the group metadata needed to
// reconstruct the lost members the scheme tolerates.
type Entry struct {
	Snap       *Snapshot
	Parity     []byte // parity stored at this rank (Shards slices of ChunkLen each)
	Scheme     Scheme // redundancy encoding that produced Parity
	Shards     int    // parity shards held here (1 XOR chain, or m RS shards)
	ChunkLen   int
	GroupSizes []int // checkpoint sizes of every group member, by group-local rank
	GroupLoop  int   // loop id the group agreed on
}

// Store double-buffers checkpoints: a new entry is staged while the
// previous complete one remains valid, and only an explicit Commit
// retires the old one. A failure during encoding therefore never
// destroys the last good checkpoint (paper §V-A: in-memory checkpoint
// data of non-failed processes "is not flushed").
type Store struct {
	mu       sync.Mutex
	complete *Entry
	staging  *Entry
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{} }

// Stage installs a candidate entry without retiring the current one.
func (st *Store) Stage(e *Entry) {
	st.mu.Lock()
	st.staging = e
	st.mu.Unlock()
}

// Commit promotes the staged entry to complete.
func (st *Store) Commit() {
	st.mu.Lock()
	if st.staging != nil {
		st.complete = st.staging
		st.staging = nil
	}
	st.mu.Unlock()
}

// Abort discards the staged entry (failure mid-encode).
func (st *Store) Abort() {
	st.mu.Lock()
	st.staging = nil
	st.mu.Unlock()
}

// Complete returns the last committed entry, or nil.
func (st *Store) Complete() *Entry {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.complete
}

// Reset drops everything (job teardown).
func (st *Store) Reset() {
	st.mu.Lock()
	st.complete, st.staging = nil, nil
	st.mu.Unlock()
}

// Groups computes the XOR group assignment: the world is split so that
// ranks sharing a node land in different groups (paper §V-A). With the
// block rank-to-node mapping (procsPerNode consecutive ranks per
// node), the ranks {node*P + s : node in a window of groupSize nodes}
// for fixed slot s form one group — one rank per node.
//
// Groups returns, for each rank, the list of world ranks in its group
// (including itself) and its index within that list, as
// groups[rank] = members, index[rank] = i with members[i] == rank.
// Node windows shorter than groupSize (the tail) form smaller groups;
// a singleton group provides no redundancy (every Coder reports
// Tolerance 0 for it) and is reported as is — a rank lost from one is
// beyond level 1, so the runtime falls back to the level-2 (PFS)
// checkpoint or aborts.
func Groups(worldSize, procsPerNode, groupSize int) (groups [][]int, index []int) {
	if procsPerNode < 1 {
		procsPerNode = 1
	}
	if groupSize < 2 {
		groupSize = 2
	}
	nodes := (worldSize + procsPerNode - 1) / procsPerNode
	groups = make([][]int, worldSize)
	index = make([]int, worldSize)
	for base := 0; base < nodes; base += groupSize {
		end := base + groupSize
		if end > nodes {
			end = nodes
		}
		for slot := 0; slot < procsPerNode; slot++ {
			var members []int
			for node := base; node < end; node++ {
				r := node*procsPerNode + slot
				if r < worldSize {
					members = append(members, r)
				}
			}
			for i, r := range members {
				groups[r] = members
				index[r] = i
			}
		}
	}
	return groups, index
}
