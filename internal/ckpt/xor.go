// Package ckpt implements FMI's fast, scalable in-memory
// checkpoint/restart (paper §V): snapshots captured by memcpy into
// process memory, double-buffered so a failure mid-checkpoint is always
// recoverable, and protected by the SCR XOR encoding run over a ring
// within each XOR group (paper Fig 9).
//
// Encoding scheme. For a group of G ranks, each rank's checkpoint is
// divided into G-1 equal chunks (zero-padded); chunk indices run
// 1..G-1. A parity "chain" s starts as zeros at group-local rank s and
// travels around the ring: at step k it sits at rank (s+k) mod G and
// absorbs that rank's chunk k. After G-1 steps plus one final rotation
// the chain returns to rank s, which stores it. Chain s therefore
// covers exactly one chunk of every rank except s itself, and every
// (rank, chunk) pair is covered by exactly one chain — so the loss of
// any single rank in the group (its data and its stored chain) is
// recoverable from the survivors.
package ckpt

import "encoding/binary"

// XorInto computes dst ^= src for the overlapping length. It is the
// hot inner loop shared by both redundancy coders, so it runs 32 bytes
// per step as four independent 8-byte word XORs (byte order cancels;
// the four chains have no data dependency, so they pipeline), with a
// word loop and then a byte loop for the ragged tail.
func XorInto(dst, src []byte) {
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	i := 0
	for ; i+32 <= n; i += 32 {
		d := dst[i : i+32 : i+32]
		s := src[i : i+32 : i+32]
		w0 := binary.LittleEndian.Uint64(d[0:]) ^ binary.LittleEndian.Uint64(s[0:])
		w1 := binary.LittleEndian.Uint64(d[8:]) ^ binary.LittleEndian.Uint64(s[8:])
		w2 := binary.LittleEndian.Uint64(d[16:]) ^ binary.LittleEndian.Uint64(s[16:])
		w3 := binary.LittleEndian.Uint64(d[24:]) ^ binary.LittleEndian.Uint64(s[24:])
		binary.LittleEndian.PutUint64(d[0:], w0)
		binary.LittleEndian.PutUint64(d[8:], w1)
		binary.LittleEndian.PutUint64(d[16:], w2)
		binary.LittleEndian.PutUint64(d[24:], w3)
	}
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:])^binary.LittleEndian.Uint64(src[i:]))
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}

// xorIntoBytes is the pre-word-stride byte loop, kept only so
// BenchmarkXorInto can report the stride speedup.
func xorIntoBytes(dst, src []byte) {
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	for i := 0; i < n; i++ {
		dst[i] ^= src[i]
	}
}

// ChunkLen returns the chunk length for a group of size g whose
// largest member checkpoint is maxSize bytes: ceil(maxSize/(g-1)).
// An empty (or degenerate) checkpoint still yields 1-byte chunks so
// the encode/decode rings never exchange empty frames.
func ChunkLen(maxSize, g int) int {
	if g < 2 {
		return maxSize
	}
	if maxSize <= 0 {
		return 1
	}
	return (maxSize + g - 2) / (g - 1)
}

// chunk returns chunk k (1-based) of data, zero-padded to chunkLen.
// The returned slice aliases data when no padding is needed.
func chunk(data []byte, chunkLen, k int) []byte {
	lo := (k - 1) * chunkLen
	hi := lo + chunkLen
	if lo >= len(data) {
		return make([]byte, chunkLen)
	}
	if hi <= len(data) {
		return data[lo:hi]
	}
	out := make([]byte, chunkLen)
	copy(out, data[lo:])
	return out
}

// chunkCopy returns a freshly-owned copy of chunk k (1-based) of
// data, zero-padded to chunkLen. Unlike chunk it never aliases data —
// the caller will mutate and send the buffer — and the full-chunk fast
// path allocates via append, which skips the make-time zero fill that
// a copy would immediately overwrite.
func chunkCopy(data []byte, chunkLen, k int) []byte {
	lo := (k - 1) * chunkLen
	hi := lo + chunkLen
	if lo < len(data) && hi <= len(data) {
		return append([]byte(nil), data[lo:hi]...)
	}
	out := make([]byte, chunkLen)
	if lo < len(data) {
		copy(out, data[lo:])
	}
	return out
}

// xorChunkInto folds chunk k (1-based) of data into dst without
// materialising a padded chunk: the zero padding is an XOR no-op, so
// only the bytes data actually covers are touched. dst has length
// chunkLen.
func xorChunkInto(dst, data []byte, chunkLen, k int) {
	lo := (k - 1) * chunkLen
	if lo >= len(data) {
		return // chunk is pure padding
	}
	hi := lo + chunkLen
	if hi > len(data) {
		hi = len(data)
	}
	XorInto(dst, data[lo:hi])
}

// CoveringChain returns the chain id (== storing rank) that covers
// chunk k of rank 'lost' in a group of size g.
func CoveringChain(lost, k, g int) int {
	return ((lost-k)%g + g) % g
}

// EncodeLocal computes all G parity chains for a group centrally. It
// is the reference implementation used by tests, by the restart
// rebuild, and by benchmarks that don't need the communication ring.
// parity[s] is the chain stored at group-local rank s.
func EncodeLocal(data [][]byte) (parity [][]byte, chunkLen int) {
	g := len(data)
	if g < 2 {
		return nil, 0
	}
	maxSize := 0
	for _, d := range data {
		if len(d) > maxSize {
			maxSize = len(d)
		}
	}
	chunkLen = ChunkLen(maxSize, g)
	parity = make([][]byte, g)
	for s := 0; s < g; s++ {
		p := make([]byte, chunkLen)
		for k := 1; k < g; k++ {
			XorInto(p, chunk(data[(s+k)%g], chunkLen, k))
		}
		parity[s] = p
	}
	return parity, chunkLen
}

// ReconstructLocal rebuilds the checkpoint of group-local rank 'lost'
// from the survivors' data and parity chains. size is the lost
// checkpoint's original length.
func ReconstructLocal(data [][]byte, parity [][]byte, chunkLen, lost, size int) []byte {
	g := len(data)
	out := make([]byte, (g-1)*chunkLen)
	for k := 1; k < g; k++ {
		s := CoveringChain(lost, k, g)
		c := make([]byte, chunkLen)
		copy(c, parity[s])
		for kp := 1; kp < g; kp++ {
			r := (s + kp) % g
			if r == lost {
				continue
			}
			XorInto(c, chunk(data[r], chunkLen, kp))
		}
		copy(out[(k-1)*chunkLen:], c)
	}
	return out[:size]
}

// GroupComm abstracts the ring communication used by the distributed
// encode/decode: Send and Recv address group-local peer indices. The
// core runtime implements it over the FMI transport.
type GroupComm interface {
	Send(peer int, data []byte) error
	Recv(peer int) ([]byte, error)
}

// Releaser is optionally implemented by GroupComms whose Recv returns
// pooled buffers. The coders type-assert it and recycle every buffer
// they consume without retaining — ring chains that have been passed
// on, RS chunks already folded into parity. GroupComms without pooling
// (tests, the MPI baseline) simply don't implement it.
type Releaser interface {
	Release(buf []byte)
}

// EncodeRing runs the Fig 9 ring algorithm for one group member. It
// returns this rank's stored parity chain. chunkLen must be agreed
// group-wide (from the group's maximum checkpoint size).
//
// The first hop of the textbook walk exchanges all-zero chains: chain
// c after step 1 is exactly rank c+1's chunk 1. So instead of
// allocating a zeroed chain and sending it around, each member starts
// from a copy of its own chunk 1 and runs steps 2..G-1 plus the final
// rotation — one fewer exchange, no zero-fill, and one XOR pass
// replaced by a plain copy. Every member must use the same variant
// (all callers run EncodeRing group-wide, so they do).
func EncodeRing(gc GroupComm, self, g int, data []byte, chunkLen int) ([]byte, error) {
	if g < 2 {
		return ringPass(gc, self, g, data, chunkLen, make([]byte, chunkLen), true)
	}
	rel, _ := gc.(Releaser)
	right := (self + 1) % g
	left := (self - 1 + g) % g
	held := chunkCopy(data, chunkLen, 1)
	for k := 2; k < g; k++ {
		if err := gc.Send(right, held); err != nil {
			return nil, err
		}
		recv, err := gc.Recv(left)
		if err != nil {
			return nil, err
		}
		if rel != nil {
			rel.Release(held)
		}
		held = recv
		xorChunkInto(held, data, chunkLen, k)
	}
	// Final rotation brings chain 'self' back to its storing rank.
	if err := gc.Send(right, held); err != nil {
		return nil, err
	}
	if rel != nil {
		rel.Release(held)
	}
	return gc.Recv(left)
}

// DecodeRing runs the same ring over the survivors: each member starts
// from its stored parity chain and XORs its chunks back out; the lost
// rank's chunks remain. Member i ends holding chunk ((lost-i) mod G)
// of the lost checkpoint (the lost rank itself, passed hasData=false,
// ends holding zeros). The caller then gathers the chunks to the
// restarted rank.
func DecodeRing(gc GroupComm, self, g int, data []byte, chunkLen int, storedParity []byte, hasData bool) ([]byte, error) {
	start := make([]byte, chunkLen)
	copy(start, storedParity)
	if !hasData {
		data = nil
	}
	return ringPass(gc, self, g, data, chunkLen, start, hasData)
}

// ringPass performs the shared ring walk: at step k (1..G-1) send the
// held buffer right, receive from the left, and XOR own chunk k (if
// contributing); the final step is a pure rotation returning chain
// 'self' home.
//
// The walk is inherently pipelined — each XOR overlaps with the
// neighbours' exchanges — and with a pooled GroupComm it is also
// allocation-free: every received chain replaces the held buffer,
// whose storage is handed straight back to the arena (the transport
// copied it at Send), and contributions fold in via xorChunkInto, so
// no padded chunk is ever materialised.
func ringPass(gc GroupComm, self, g int, data []byte, chunkLen int, held []byte, contribute bool) ([]byte, error) {
	rel, _ := gc.(Releaser)
	right := (self + 1) % g
	left := (self - 1 + g) % g
	for k := 1; k < g; k++ {
		if err := gc.Send(right, held); err != nil {
			return nil, err
		}
		recv, err := gc.Recv(left)
		if err != nil {
			return nil, err
		}
		if rel != nil {
			rel.Release(held) // sent and copied; the old chain is dead
		}
		held = recv
		if contribute {
			xorChunkInto(held, data, chunkLen, k)
		}
	}
	// Final rotation brings chain 'self' back to its storing rank.
	if err := gc.Send(right, held); err != nil {
		return nil, err
	}
	if rel != nil {
		rel.Release(held)
	}
	return gc.Recv(left)
}

// DecodeChunkIndex returns which chunk of the lost checkpoint member i
// holds after DecodeRing.
func DecodeChunkIndex(lost, i, g int) int {
	return ((lost-i)%g + g) % g
}
