package ckpt

import (
	"testing"
	"testing/quick"
)

// Property: for random world shapes, the group assignment always
// covers every rank, keeps same-node ranks in distinct groups, and is
// agreed by all members.
func TestQuickGroupsInvariants(t *testing.T) {
	f := func(worldRaw, ppnRaw, gsRaw uint8) bool {
		world := 1 + int(worldRaw)%200
		ppn := 1 + int(ppnRaw)%8
		gs := 2 + int(gsRaw)%30
		groups, index := Groups(world, ppn, gs)
		for r := 0; r < world; r++ {
			members := groups[r]
			if len(members) == 0 || members[index[r]] != r {
				return false
			}
			nodes := map[int]bool{}
			for i, m := range members {
				if m < 0 || m >= world {
					return false
				}
				// Agreement: every member has the identical group.
				peer := groups[m]
				if len(peer) != len(members) || peer[i] != m || index[m] != i {
					return false
				}
				node := m / ppn
				if nodes[node] {
					return false // two ranks of one node share a group
				}
				nodes[node] = true
			}
			if len(members) > gs {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the groups partition the world — iterating the distinct
// groups (identified by their first member) visits every rank exactly
// once.
func TestQuickGroupsPartition(t *testing.T) {
	f := func(worldRaw, ppnRaw, gsRaw uint8) bool {
		world := 1 + int(worldRaw)%150
		ppn := 1 + int(ppnRaw)%6
		gs := 2 + int(gsRaw)%20
		groups, _ := Groups(world, ppn, gs)
		counted := map[int]bool{} // group leader -> visited
		hits := make([]int, world)
		for r := 0; r < world; r++ {
			leader := groups[r][0]
			if counted[leader] {
				continue
			}
			counted[leader] = true
			for _, m := range groups[r] {
				hits[m]++
			}
		}
		for r := 0; r < world; r++ {
			if hits[r] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: ring-encoded parity always reconstructs any single lost
// member even when the group mixes empty and large checkpoints.
func TestQuickExtremalSizes(t *testing.T) {
	f := func(gRaw, lostRaw uint8, bigLen uint16) bool {
		g := 2 + int(gRaw)%10
		lost := int(lostRaw) % g
		data := make([][]byte, g)
		for i := range data {
			switch i % 3 {
			case 0:
				data[i] = []byte{} // empty checkpoint
			case 1:
				data[i] = make([]byte, 1+int(bigLen)%2000)
				for j := range data[i] {
					data[i][j] = byte(i + j)
				}
			default:
				data[i] = []byte{byte(i)}
			}
		}
		parity, chunkLen := EncodeLocal(data)
		got := ReconstructLocal(data, parity, chunkLen, lost, len(data[lost]))
		if len(got) != len(data[lost]) {
			return false
		}
		for j := range got {
			if got[j] != data[lost][j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
