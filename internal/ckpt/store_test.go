package ckpt

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestCaptureRestoreRoundtrip(t *testing.T) {
	a := []byte{1, 2, 3}
	b := []byte{4, 5}
	snap := Capture(7, [][]byte{a, b})
	if snap.LoopID != 7 {
		t.Fatalf("LoopID = %d", snap.LoopID)
	}
	// Mutate the live segments, then restore.
	a[0], b[1] = 99, 99
	if err := snap.Restore([][]byte{a, b}); err != nil {
		t.Fatal(err)
	}
	if a[0] != 1 || b[1] != 5 {
		t.Fatalf("restore failed: a=%v b=%v", a, b)
	}
}

func TestCaptureIsACopy(t *testing.T) {
	a := []byte{1, 2, 3}
	snap := Capture(0, [][]byte{a})
	a[0] = 42
	if snap.Data[0] != 1 {
		t.Fatal("snapshot aliases live segment")
	}
}

func TestRestoreSizeMismatch(t *testing.T) {
	snap := Capture(0, [][]byte{{1, 2}})
	if err := snap.Restore([][]byte{{1, 2, 3}}); !errors.Is(err, ErrSizeMismatch) {
		t.Fatalf("err = %v", err)
	}
	if err := snap.Restore([][]byte{{1}, {2}}); !errors.Is(err, ErrSizeMismatch) {
		t.Fatalf("err = %v", err)
	}
}

func TestEmptySegments(t *testing.T) {
	snap := Capture(1, [][]byte{{}, {9}})
	segs := [][]byte{{}, {0}}
	if err := snap.Restore(segs); err != nil {
		t.Fatal(err)
	}
	if segs[1][0] != 9 {
		t.Fatal("restore with empty segment broken")
	}
}

func TestQuickCaptureRestore(t *testing.T) {
	f := func(s1, s2, s3 []byte) bool {
		segs := [][]byte{s1, s2, s3}
		snap := Capture(0, segs)
		dst := [][]byte{make([]byte, len(s1)), make([]byte, len(s2)), make([]byte, len(s3))}
		if err := snap.Restore(dst); err != nil {
			return false
		}
		return bytes.Equal(dst[0], s1) && bytes.Equal(dst[1], s2) && bytes.Equal(dst[2], s3)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStoreDoubleBuffering(t *testing.T) {
	st := NewStore()
	if st.Complete() != nil {
		t.Fatal("fresh store not empty")
	}
	e1 := &Entry{Snap: Capture(1, [][]byte{{1}})}
	st.Stage(e1)
	if st.Complete() != nil {
		t.Fatal("staged entry visible as complete")
	}
	st.Commit()
	if st.Complete() != e1 {
		t.Fatal("commit did not promote staging")
	}
	// Stage a second, then abort: e1 must survive.
	e2 := &Entry{Snap: Capture(2, [][]byte{{2}})}
	st.Stage(e2)
	st.Abort()
	if st.Complete() != e1 {
		t.Fatal("abort destroyed the committed entry")
	}
	st.Commit() // nothing staged: no-op
	if st.Complete() != e1 {
		t.Fatal("empty commit changed state")
	}
	st.Reset()
	if st.Complete() != nil {
		t.Fatal("reset did not clear")
	}
}

func TestGroupsOneRankPerNode(t *testing.T) {
	// 8 nodes, 2 procs/node, group size 4: each group must contain at
	// most one rank per node.
	world, ppn, gs := 16, 2, 4
	groups, index := Groups(world, ppn, gs)
	for r := 0; r < world; r++ {
		members := groups[r]
		if members[index[r]] != r {
			t.Fatalf("rank %d: index inconsistent", r)
		}
		nodes := map[int]bool{}
		for _, m := range members {
			node := m / ppn
			if nodes[node] {
				t.Fatalf("rank %d group has two ranks on node %d: %v", r, node, members)
			}
			nodes[node] = true
		}
		if len(members) != gs {
			t.Fatalf("rank %d group size = %d, want %d", r, len(members), gs)
		}
	}
}

func TestGroupsConsistency(t *testing.T) {
	// Every member of a group must agree on the group.
	groups, _ := Groups(24, 3, 4)
	for r := 0; r < 24; r++ {
		for _, m := range groups[r] {
			if len(groups[m]) != len(groups[r]) {
				t.Fatalf("ranks %d and %d disagree on group size", r, m)
			}
			for i := range groups[m] {
				if groups[m][i] != groups[r][i] {
					t.Fatalf("ranks %d and %d have different groups", r, m)
				}
			}
		}
	}
}

func TestGroupsTailWindow(t *testing.T) {
	// 5 nodes, 1 proc/node, group size 4: tail group has 1 member.
	groups, _ := Groups(5, 1, 4)
	if len(groups[4]) != 1 || groups[4][0] != 4 {
		t.Fatalf("tail group = %v", groups[4])
	}
	if len(groups[0]) != 4 {
		t.Fatalf("first group = %v", groups[0])
	}
}

func TestGroupsSingletonTail(t *testing.T) {
	// 9 nodes, group size 4: windows [0,4), [4,8), [8,9) — the last
	// node's ranks land in singleton groups, which no coder can protect
	// (Tolerance 0, so the runtime falls back to level 2 for them).
	groups, index := Groups(18, 2, 4)
	for _, r := range []int{16, 17} {
		if len(groups[r]) != 1 || groups[r][0] != r || index[r] != 0 {
			t.Fatalf("rank %d: group = %v, index = %d, want singleton", r, groups[r], index[r])
		}
		for _, m := range []int{1, 2} {
			if NewCoder(m, 0).Tolerance(len(groups[r])) != 0 {
				t.Fatalf("singleton group reported redundancy under m=%d", m)
			}
		}
	}
	if len(groups[0]) != 4 || len(groups[8]) != 4 {
		t.Fatalf("full windows wrong: %v, %v", groups[0], groups[8])
	}
}

func TestGroupsWorldNotDivisibleByProcsPerNode(t *testing.T) {
	// 7 ranks at 3 per node: nodes 0,1 are full, node 2 hosts only
	// rank 6. Slot-wise groups must skip the missing ranks, keep one
	// rank per node, and still cover everyone.
	world, ppn, gs := 7, 3, 2
	groups, index := Groups(world, ppn, gs)
	for r := 0; r < world; r++ {
		members := groups[r]
		if members == nil || members[index[r]] != r {
			t.Fatalf("rank %d unassigned or index broken (%v, %d)", r, members, index[r])
		}
		nodes := map[int]bool{}
		for _, m := range members {
			if m < 0 || m >= world {
				t.Fatalf("rank %d group contains ghost rank %d", r, m)
			}
			node := m / ppn
			if nodes[node] {
				t.Fatalf("rank %d group has two ranks on node %d: %v", r, node, members)
			}
			nodes[node] = true
		}
	}
	// Slots 1 and 2 of the window {node 2, ...} have no partner rank on
	// node 2, so ranks 4 and 5 of node 1... — concretely: rank 6 pairs
	// with rank 3 (slot 0 of nodes 2's window starts at node 2). With
	// gs=2 windows are [0,2) and [2,3): rank 6 is slot 0 of node 2 and
	// forms a singleton group.
	if len(groups[6]) != 1 {
		t.Fatalf("rank 6 group = %v, want singleton (tail window)", groups[6])
	}
	// Ranks 4 and 5 (slots 1,2 of node 1) pair with slots 1,2 of node 0.
	if len(groups[4]) != 2 || len(groups[5]) != 2 {
		t.Fatalf("slot groups wrong: %v, %v", groups[4], groups[5])
	}
}

func TestGroupsCoverAllRanks(t *testing.T) {
	for _, tc := range []struct{ world, ppn, gs int }{
		{48, 12, 16}, {10, 2, 4}, {7, 1, 2}, {1, 1, 2}, {100, 4, 8},
	} {
		groups, index := Groups(tc.world, tc.ppn, tc.gs)
		for r := 0; r < tc.world; r++ {
			if groups[r] == nil {
				t.Fatalf("world=%d ppn=%d gs=%d: rank %d unassigned", tc.world, tc.ppn, tc.gs, r)
			}
			if groups[r][index[r]] != r {
				t.Fatalf("rank %d index broken", r)
			}
		}
	}
}

func TestGroupsPaperConfiguration(t *testing.T) {
	// Paper Fig 6/8: 5 nodes with 2 procs/node (8 compute ranks on 4
	// nodes + spare). With groupSize 4 and 4 nodes in use:
	groups, _ := Groups(8, 2, 4)
	// Group of rank 0 = slot-0 ranks on nodes 0..3 = {0, 2, 4, 6}.
	want := []int{0, 2, 4, 6}
	for i, m := range groups[0] {
		if m != want[i] {
			t.Fatalf("group of rank 0 = %v, want %v", groups[0], want)
		}
	}
	// Group of rank 1 = slot-1 ranks = {1, 3, 5, 7}.
	want = []int{1, 3, 5, 7}
	for i, m := range groups[1] {
		if m != want[i] {
			t.Fatalf("group of rank 1 = %v, want %v", groups[1], want)
		}
	}
}
