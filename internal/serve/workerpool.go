package serve

import (
	"net"
	"sync"
)

// workerPool serves accepted connections on a bounded set of reused
// goroutines — the fasthttp workerpool.go idiom. Ready workers are
// kept in a LIFO stack so the most recently parked goroutine (hottest
// stack, warmest caches) is handed the next connection, and workers
// idle past maxIdleNanos are reaped by a periodic sweep instead of
// dying after every connection. Compared to a goroutine per
// connection this bounds concurrency and removes the spawn/teardown
// churn from the accept hot loop.
type workerPool struct {
	// serveConn handles one connection to completion.
	serveConn func(net.Conn)
	// maxWorkers bounds concurrent connections; beyond it Serve
	// reports failure and the caller closes the connection.
	maxWorkers int
	// maxIdleNanos is how long a parked worker survives between
	// connections before the sweep retires it.
	maxIdleNanos int64
	clock        *coarseClock

	mu      sync.Mutex
	ready   []*workerChan // LIFO stack of parked workers
	count   int           // live workers (parked + busy)
	stopped bool
}

// workerChan is one parked worker: a handoff channel and the coarse
// timestamp of when it parked.
type workerChan struct {
	lastUse int64
	ch      chan net.Conn
}

// Serve hands the connection to a worker, spawning one if the pool is
// below maxWorkers. It returns false when the pool is saturated or
// stopped; the caller owns the connection then.
func (wp *workerPool) Serve(c net.Conn) bool {
	ch := wp.getCh()
	if ch == nil {
		return false
	}
	ch.ch <- c
	return true
}

// getCh pops a parked worker or starts a new one.
func (wp *workerPool) getCh() *workerChan {
	wp.mu.Lock()
	if wp.stopped {
		wp.mu.Unlock()
		return nil
	}
	if n := len(wp.ready); n > 0 {
		ch := wp.ready[n-1]
		wp.ready[n-1] = nil
		wp.ready = wp.ready[:n-1]
		wp.mu.Unlock()
		return ch
	}
	if wp.count >= wp.maxWorkers {
		wp.mu.Unlock()
		return nil
	}
	wp.count++
	wp.mu.Unlock()
	ch := &workerChan{ch: make(chan net.Conn, 1)}
	go wp.workerLoop(ch)
	return ch
}

// workerLoop serves connections handed to ch until the channel is
// closed (by Stop or the idle sweep).
func (wp *workerPool) workerLoop(ch *workerChan) {
	for c := range ch.ch {
		wp.serveConn(c)
		if !wp.release(ch) {
			break
		}
	}
	wp.mu.Lock()
	wp.count--
	wp.mu.Unlock()
}

// release parks the worker back on the ready stack; false means the
// pool stopped and the worker must exit.
func (wp *workerPool) release(ch *workerChan) bool {
	ch.lastUse = wp.clock.NowNanos()
	wp.mu.Lock()
	if wp.stopped {
		wp.mu.Unlock()
		return false
	}
	wp.ready = append(wp.ready, ch)
	wp.mu.Unlock()
	return true
}

// SweepIdle retires workers parked longer than maxIdleNanos. The ready
// stack is LIFO, so idle workers accumulate at the bottom: everything
// below the first fresh entry is stale.
func (wp *workerPool) SweepIdle() {
	cutoff := wp.clock.NowNanos() - wp.maxIdleNanos
	var stale []*workerChan
	wp.mu.Lock()
	n := 0
	for n < len(wp.ready) && wp.ready[n].lastUse < cutoff {
		n++
	}
	if n > 0 {
		stale = append(stale, wp.ready[:n]...)
		wp.ready = append(wp.ready[:0], wp.ready[n:]...)
	}
	wp.mu.Unlock()
	for _, ch := range stale {
		close(ch.ch)
	}
}

// Stop retires every parked worker and marks the pool closed; busy
// workers exit after finishing their current connection.
func (wp *workerPool) Stop() {
	wp.mu.Lock()
	if wp.stopped {
		wp.mu.Unlock()
		return
	}
	wp.stopped = true
	ready := wp.ready
	wp.ready = nil
	wp.mu.Unlock()
	for _, ch := range ready {
		close(ch.ch)
	}
}
