package serve

import (
	"sync/atomic"
	"time"
)

// coarseClock amortizes wall-clock reads for hot loops, the
// fasthttp coarseTime idiom: one background goroutine samples
// time.Now at a fixed resolution into an atomic, and every reader
// pays a single atomic load instead of a vDSO call. The serving
// layer's per-request timestamps (status rendering, worker-pool
// idle accounting) do not need sub-millisecond precision, so the
// ~5 ms staleness is free throughput.
type coarseClock struct {
	nanos  atomic.Int64
	stopCh chan struct{}
	stop   func()
}

// newCoarseClock starts a clock ticking at the given resolution.
// Callers must Stop it when done.
func newCoarseClock(res time.Duration) *coarseClock {
	if res <= 0 {
		res = 5 * time.Millisecond
	}
	c := &coarseClock{stopCh: make(chan struct{})}
	var once atomic.Bool
	c.stop = func() {
		if once.CompareAndSwap(false, true) {
			close(c.stopCh)
		}
	}
	c.nanos.Store(time.Now().UnixNano())
	go func() {
		t := time.NewTicker(res)
		defer t.Stop()
		for {
			select {
			case now := <-t.C:
				c.nanos.Store(now.UnixNano())
			case <-c.stopCh:
				return
			}
		}
	}()
	return c
}

// NowNanos returns the amortized wall clock in Unix nanoseconds,
// stale by at most the clock's resolution.
func (c *coarseClock) NowNanos() int64 { return c.nanos.Load() }

// Stop halts the sampling goroutine. Idempotent.
func (c *coarseClock) Stop() { c.stop() }
