// Package serve is the fmiserve job service: an HTTP/JSON control
// plane that multiplexes many concurrent FMI jobs onto one shared
// simulated cluster. Tenants submit jobs against a registry of
// built-in apps; each job gets a disjoint machinefile carved from the
// shared compute pool and recovers from failures by leasing spare
// nodes from a shared broker (per-tenant caps, global floor), so one
// tenant's failure storm cannot roll back or starve another tenant's
// jobs. The request path borrows fasthttp's serving idioms — a
// goroutine-reusing worker pool, pooled response buffers from
// internal/bufpool, and a coarse amortized clock — so status polling
// stays allocation-free under load.
package serve

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"fmi/internal/bufpool"
	"fmi/internal/cluster"
	"fmi/internal/runtime"
	"fmi/internal/trace"
	"fmi/internal/transport"
)

// Errors surfaced through the HTTP layer.
var (
	ErrBadSpec      = errors.New("serve: invalid job spec")
	ErrQueueFull    = errors.New("serve: tenant queue full")
	ErrNotFound     = errors.New("serve: no such job")
	ErrKillDisabled = errors.New("serve: fault injection disabled")
	ErrClosed       = errors.New("serve: server closed")
	ErrNotElastic   = errors.New("serve: job is not elastic")
	ErrNoCapacity   = errors.New("serve: not enough free compute nodes")
	ErrResize       = errors.New("serve: resize failed")
)

// Config sizes the shared cluster and the service's admission policy.
type Config struct {
	ComputeNodes int // shared compute pool (default 16)
	SpareNodes   int // shared spare pool (default 8)
	// QueueDepth bounds each tenant's pending queue; submissions
	// beyond it are rejected with ErrQueueFull / HTTP 429.
	QueueDepth int // default 16
	// MaxRunningPerTenant bounds a tenant's concurrently running jobs.
	MaxRunningPerTenant int // default 4
	// MaxSparesPerTenant caps one tenant's outstanding spare leases.
	MaxSparesPerTenant int // default 4
	// SpareFloor is the reserve tenants holding leases may not dip
	// into (a tenant with zero leases may, so recovery can always
	// start).
	SpareFloor int // default 2
	// DetectDelay/PropDelay configure each job's simulated network.
	DetectDelay time.Duration // default 2ms
	PropDelay   time.Duration // default 1ms
	// JobTimeout is the default per-job timeout (a JobSpec may
	// override it).
	JobTimeout time.Duration // default 60s
	// AllowKill enables POST /jobs/{id}/kill fault injection.
	AllowKill bool
	// MaxWorkers bounds concurrent HTTP connections (default 256).
	MaxWorkers int
	// ClockRes is the coarse clock resolution (default 5ms).
	ClockRes time.Duration
}

func (c *Config) setDefaults() {
	if c.ComputeNodes <= 0 {
		c.ComputeNodes = 16
	}
	if c.SpareNodes <= 0 {
		c.SpareNodes = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.MaxRunningPerTenant <= 0 {
		c.MaxRunningPerTenant = 4
	}
	if c.MaxSparesPerTenant <= 0 {
		c.MaxSparesPerTenant = 4
	}
	if c.SpareFloor < 0 || c.SpareFloor >= c.SpareNodes {
		c.SpareFloor = min(2, c.SpareNodes-1)
	}
	if c.DetectDelay <= 0 {
		c.DetectDelay = 2 * time.Millisecond
	}
	if c.PropDelay <= 0 {
		c.PropDelay = time.Millisecond
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 60 * time.Second
	}
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = 256
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Job states.
const (
	stateQueued uint8 = iota
	stateRunning
	stateDone
	stateFailed
)

var stateNames = [...]string{"queued", "running", "done", "failed"}

// jobRec is the server-side record of one submitted job.
type jobRec struct {
	id     string
	tenant string
	spec   JobSpec
	rec    *trace.Recorder
	rm     *cluster.ResourceManager
	tn     *tenant

	finished atomic.Bool
	waitCh   chan struct{} // closed when the job reaches done/failed
	leases   atomic.Int32  // lifetime spare leases granted to this job

	mu          sync.Mutex
	state       uint8
	job         *runtime.Job
	held        map[int]*cluster.Node // compute-pool nodes this job currently owns
	rep         *runtime.Report
	err         error
	errStr      string // err.Error() rendered once, for the alloc-free hot path
	submittedNs int64
	startedNs   int64
	doneNs      int64
}

// JobStatus is the externally visible job state (GET /jobs/{id}).
type JobStatus struct {
	ID          string `json:"id"`
	Tenant      string `json:"tenant"`
	App         string `json:"app"`
	State       string `json:"state"`
	Ranks       int    `json:"ranks"`
	ViewVersion uint64 `json:"view_version"`
	Epochs      uint32 `json:"epochs"`
	SparesUsed  int    `json:"spares_used"`
	QueuedMs    int64  `json:"queued_ms"`
	RunningMs   int64  `json:"running_ms"`
	Err         string `json:"error,omitempty"`
}

// tenant is one tenant's admission state: a bounded pending queue, a
// running-jobs semaphore, and counters. Backpressure is per tenant —
// a full queue rejects that tenant's submissions and nobody else's.
type tenant struct {
	name      string
	queue     chan *jobRec
	sem       chan struct{}
	submitted atomic.Int64
	rejected  atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
}

// Server is the fmiserve control plane.
type Server struct {
	cfg    Config
	clu    *cluster.Cluster
	nodes  *nodePool
	broker *broker
	pool   *bufpool.Arena
	clock  *coarseClock
	wp     *workerPool

	startNs int64
	seq     atomic.Int64
	resizes atomic.Int64 // lifetime committed online resizes
	closed  chan struct{}
	closing atomic.Bool
	wg      sync.WaitGroup

	lnMu sync.Mutex
	ln   net.Listener

	mu        sync.RWMutex
	jobs      map[string]*jobRec
	tenants   map[string]*tenant
	nodeOwner map[int]*jobRec // node id -> job currently entitled to it
}

// New builds a server over a freshly provisioned shared cluster.
func New(cfg Config) *Server {
	cfg.setDefaults()
	clu := cluster.New(cfg.ComputeNodes + cfg.SpareNodes)
	compute := make([]*cluster.Node, 0, cfg.ComputeNodes)
	spares := make([]*cluster.Node, 0, cfg.SpareNodes)
	for i := 0; i < cfg.ComputeNodes; i++ {
		compute = append(compute, clu.Node(i))
	}
	for i := cfg.ComputeNodes; i < cfg.ComputeNodes+cfg.SpareNodes; i++ {
		spares = append(spares, clu.Node(i))
	}
	s := &Server{
		cfg:       cfg,
		clu:       clu,
		nodes:     newNodePool(compute),
		pool:      bufpool.New(),
		clock:     newCoarseClock(cfg.ClockRes),
		startNs:   time.Now().UnixNano(),
		closed:    make(chan struct{}),
		jobs:      make(map[string]*jobRec),
		tenants:   make(map[string]*tenant),
		nodeOwner: make(map[int]*jobRec),
	}
	s.broker = newBroker(clu, spares, cfg.SpareFloor, cfg.MaxSparesPerTenant)
	s.broker.onLease = s.registerLease
	s.wp = &workerPool{
		serveConn:    s.serveConn,
		maxWorkers:   cfg.MaxWorkers,
		maxIdleNanos: (10 * time.Second).Nanoseconds(),
		clock:        s.clock,
	}
	// Node failures are the broker's demand signal: route each to the
	// owning job. The cluster invokes callbacks synchronously from
	// Fail, so hop to a goroutine before taking any server lock.
	clu.OnNodeFailure(func(nd *cluster.Node) {
		go s.onNodeFailure(nd)
	})
	s.wg.Add(1)
	go s.sweepLoop()
	return s
}

// sweepLoop periodically reaps idle HTTP workers.
func (s *Server) sweepLoop() {
	defer s.wg.Done()
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.wp.SweepIdle()
		case <-s.closed:
			return
		}
	}
}

// Close shuts the server down: stop accepting, abort running jobs,
// and wait for job goroutines to drain.
func (s *Server) Close() {
	if !s.closing.CompareAndSwap(false, true) {
		return
	}
	close(s.closed)
	s.closeListener()
	s.wp.Stop()
	s.wg.Wait()
	s.clock.Stop()
}

// Submit validates and enqueues a job, returning its id. A full
// tenant queue rejects with ErrQueueFull (HTTP 429): bounded
// admission is the backpressure contract.
func (s *Server) Submit(spec JobSpec) (string, error) {
	if err := spec.normalize(); err != nil {
		return "", err
	}
	if n := spec.nodesNeeded(); n > s.cfg.ComputeNodes {
		return "", fmt.Errorf("%w: needs %d nodes, cluster has %d", ErrBadSpec, n, s.cfg.ComputeNodes)
	}
	if s.closing.Load() {
		return "", ErrClosed
	}
	tn := s.tenantFor(spec.Tenant)
	jr := &jobRec{
		id:          fmt.Sprintf("j-%d", s.seq.Add(1)),
		tenant:      spec.Tenant,
		spec:        spec,
		tn:          tn,
		waitCh:      make(chan struct{}),
		submittedNs: time.Now().UnixNano(),
	}
	s.mu.Lock()
	s.jobs[jr.id] = jr
	s.mu.Unlock()
	select {
	case tn.queue <- jr:
		tn.submitted.Add(1)
		return jr.id, nil
	default:
		tn.rejected.Add(1)
		s.mu.Lock()
		delete(s.jobs, jr.id)
		s.mu.Unlock()
		return "", fmt.Errorf("%w: tenant %q has %d jobs pending", ErrQueueFull, spec.Tenant, cap(tn.queue))
	}
}

// tenantFor returns (creating on first use) the tenant record and its
// dispatcher goroutine.
func (s *Server) tenantFor(name string) *tenant {
	s.mu.Lock()
	defer s.mu.Unlock()
	tn, ok := s.tenants[name]
	if !ok {
		tn = &tenant{
			name:  name,
			queue: make(chan *jobRec, s.cfg.QueueDepth),
			sem:   make(chan struct{}, s.cfg.MaxRunningPerTenant),
		}
		s.tenants[name] = tn
		s.wg.Add(1)
		go s.dispatch(tn)
	}
	return tn
}

// dispatch drains one tenant's queue, holding its running-jobs
// semaphore across each job. Tenants dispatch independently: one
// tenant exhausting its run slots stalls only its own queue.
func (s *Server) dispatch(tn *tenant) {
	defer s.wg.Done()
	for {
		select {
		case jr := <-tn.queue:
			select {
			case tn.sem <- struct{}{}:
			case <-s.closed:
				jr.finish(nil, ErrClosed)
				return
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer func() { <-tn.sem }()
				s.runJob(jr)
			}()
		case <-s.closed:
			return
		}
	}
}

// runJob owns one job's lifecycle: carve a machinefile from the
// compute pool, launch on the shared cluster with a lease-only
// resource manager, wait, then return every node it held.
func (s *Server) runJob(jr *jobRec) {
	nNodes := jr.spec.nodesNeeded()
	machine, ok := s.nodes.acquire(nNodes, s.closed)
	if !ok {
		jr.finish(nil, ErrClosed)
		return
	}
	// The job's RM never creates capacity: on node loss it parks in
	// Allocate until the broker leases a spare in via AddSpare.
	rm := cluster.NewResourceManager(s.clu, nil)
	rm.Provision = false
	rm.WaitForSpare = true
	rec := trace.New()
	jr.mu.Lock()
	jr.rm = rm
	jr.rec = rec
	jr.held = make(map[int]*cluster.Node, len(machine))
	for _, nd := range machine {
		jr.held[nd.ID] = nd
	}
	jr.mu.Unlock()
	s.mu.Lock()
	for _, nd := range machine {
		s.nodeOwner[nd.ID] = jr
	}
	s.mu.Unlock()

	timeout := s.cfg.JobTimeout
	if jr.spec.TimeoutMs > 0 {
		timeout = time.Duration(jr.spec.TimeoutMs) * time.Millisecond
	}
	job, err := runtime.Launch(runtime.Config{
		Ranks:        jr.spec.Ranks,
		ProcsPerNode: jr.spec.ProcsPerNode,
		Interval:     jr.spec.Interval,
		Redundancy:   jr.spec.Redundancy,
		Recovery:     jr.spec.Recovery,
		Elastic:      jr.spec.Elastic,
		// A shrink frees nodes at the fence: compute-pool nodes return
		// to the shared pool immediately (other tenants can place on
		// them), broker leases stay with the job until it finishes.
		OnNodeRetired: func(nd *cluster.Node) bool { return s.reclaimRetired(jr, nd) },
		Network: transport.NewChanNetwork(transport.Options{
			DetectDelay: s.cfg.DetectDelay,
			PropDelay:   s.cfg.PropDelay,
		}),
		Cluster: s.clu,
		RM:      rm,
		Machine: machine,
		Trace:   rec,
		Timeout: timeout,
		Pool:    s.pool,
	}, registry[jr.spec.App](jr.spec))
	if err != nil {
		s.releaseNodes(jr)
		jr.finish(nil, fmt.Errorf("launch: %w", err))
		return
	}
	jr.setRunning(job)
	select {
	case <-job.Done():
	case <-s.closed:
		job.Abort(ErrClosed)
		<-job.Done()
	}
	rep, werr := job.Wait()
	s.releaseNodes(jr)
	jr.finish(rep, werr)
}

// releaseNodes returns a finished job's compute nodes to the pool and
// its leases to the broker, and clears its node ownership. The held
// set — not the launch machinefile — is what goes back: grows add to
// it and shrinks drain it, so release matches what the job owns now.
func (s *Server) releaseNodes(jr *jobRec) {
	jr.finished.Store(true)
	jr.mu.Lock()
	nodes := make([]*cluster.Node, 0, len(jr.held))
	for _, nd := range jr.held {
		nodes = append(nodes, nd)
	}
	jr.held = nil
	jr.mu.Unlock()
	s.mu.Lock()
	for id, owner := range s.nodeOwner {
		if owner == jr {
			delete(s.nodeOwner, id)
		}
	}
	s.mu.Unlock()
	s.nodes.release(s.clu, nodes)
	s.broker.release(jr)
}

// reclaimRetired is the job's OnNodeRetired hook: a shrink fence freed
// the node. Compute-pool nodes the job holds go straight back to the
// shared pool; anything else (a broker-leased spare hosting a
// recovered rank) stays with the job's RM and is reclaimed by the
// broker when the job finishes.
func (s *Server) reclaimRetired(jr *jobRec, nd *cluster.Node) bool {
	jr.mu.Lock()
	_, mine := jr.held[nd.ID]
	if mine {
		delete(jr.held, nd.ID)
	}
	jr.mu.Unlock()
	if !mine {
		return false
	}
	s.mu.Lock()
	delete(s.nodeOwner, nd.ID)
	s.mu.Unlock()
	s.nodes.release(s.clu, []*cluster.Node{nd})
	return true
}

// ResizeResult is the outcome of a committed online resize
// (POST /jobs/{id}/resize).
type ResizeResult struct {
	ID          string `json:"id"`
	Ranks       int    `json:"ranks"`
	ViewVersion uint64 `json:"view_version"`
	ResizeMs    int64  `json:"resize_ms"`
}

// Resize grows or shrinks a running elastic job to ranks without
// restarting it, blocking until the new membership view commits. A
// grow carves the extra machinefile slots from the shared compute
// pool first (failing fast with ErrNoCapacity rather than parking the
// request); a shrink returns the freed slots through reclaimRetired.
func (s *Server) Resize(jobID string, ranks int) (ResizeResult, error) {
	s.mu.RLock()
	jr := s.jobs[jobID]
	s.mu.RUnlock()
	if jr == nil {
		return ResizeResult{}, ErrNotFound
	}
	if ranks <= 0 {
		return ResizeResult{}, fmt.Errorf("%w: ranks must be positive", ErrBadSpec)
	}
	if !jr.spec.Elastic {
		return ResizeResult{}, fmt.Errorf("%w: job %s", ErrNotElastic, jobID)
	}
	jr.mu.Lock()
	job := jr.job
	running := jr.state == stateRunning
	jr.mu.Unlock()
	if !running || job == nil {
		return ResizeResult{}, fmt.Errorf("%w: job %s is not running", ErrBadSpec, jobID)
	}
	// The job's RM never creates capacity, so a grow must be funded up
	// front: one compute node per new machinefile slot, injected as
	// spares for the runtime's fence provisioning to consume.
	ppn := jr.spec.ProcsPerNode
	cur := job.CurrentView()
	if newSlots := (ranks-1)/ppn - (cur.Ranks-1)/ppn; newSlots > 0 {
		extra, ok := s.nodes.tryAcquire(newSlots)
		if !ok {
			return ResizeResult{}, fmt.Errorf("%w: grow to %d ranks needs %d more", ErrNoCapacity, ranks, newSlots)
		}
		jr.mu.Lock()
		if jr.held == nil { // job finished while we were acquiring
			jr.mu.Unlock()
			s.nodes.release(s.clu, extra)
			return ResizeResult{}, fmt.Errorf("%w: job %s is not running", ErrBadSpec, jobID)
		}
		for _, nd := range extra {
			jr.held[nd.ID] = nd
		}
		jr.mu.Unlock()
		s.mu.Lock()
		for _, nd := range extra {
			s.nodeOwner[nd.ID] = jr
		}
		s.mu.Unlock()
		for _, nd := range extra {
			jr.rm.AddSpare(nd)
		}
	}
	start := time.Now()
	if err := job.Resize(ranks); err != nil {
		// A failed grow leaves its funded nodes in the job's RM spare
		// pool; they are still in held and return at job end.
		return ResizeResult{}, fmt.Errorf("%w: %v", ErrResize, err)
	}
	v := job.CurrentView()
	s.resizes.Add(1)
	return ResizeResult{
		ID:          jobID,
		Ranks:       v.Ranks,
		ViewVersion: v.Version,
		ResizeMs:    time.Since(start).Milliseconds(),
	}, nil
}

// onNodeFailure routes a node failure to the broker as spare demand
// from the owning job.
func (s *Server) onNodeFailure(nd *cluster.Node) {
	s.mu.RLock()
	jr := s.nodeOwner[nd.ID]
	s.mu.RUnlock()
	if jr == nil || jr.finished.Load() {
		return
	}
	s.broker.demand(jr)
}

// registerLease records that a spare node now belongs to the job (the
// broker's onLease hook, called before the node is injected).
func (s *Server) registerLease(jr *jobRec, nd *cluster.Node) {
	s.mu.Lock()
	s.nodeOwner[nd.ID] = jr
	s.mu.Unlock()
	jr.leases.Add(1)
}

// KillRank fails the node currently hosting the rank (fault
// injection; gated by Config.AllowKill at the HTTP layer). It returns
// the failed node's id.
func (s *Server) KillRank(jobID string, rank int) (int, error) {
	s.mu.RLock()
	jr := s.jobs[jobID]
	s.mu.RUnlock()
	if jr == nil {
		return 0, ErrNotFound
	}
	jr.mu.Lock()
	job := jr.job
	running := jr.state == stateRunning
	jr.mu.Unlock()
	if !running || job == nil {
		return 0, fmt.Errorf("%w: job %s is not running", ErrBadSpec, jobID)
	}
	nd := job.NodeOfRank(rank)
	if nd == nil {
		return 0, fmt.Errorf("%w: job %s has no rank %d", ErrBadSpec, jobID, rank)
	}
	nd.Fail()
	return nd.ID, nil
}

// lookup returns the job record for an id held in a byte slice. The
// map index on string(b) compiles to a no-copy lookup, keeping the
// status hot path allocation-free.
func (s *Server) lookup(id []byte) *jobRec {
	s.mu.RLock()
	jr := s.jobs[string(id)]
	s.mu.RUnlock()
	return jr
}

// Status returns the externally visible state of a job.
func (s *Server) Status(jobID string) (JobStatus, error) {
	s.mu.RLock()
	jr := s.jobs[jobID]
	s.mu.RUnlock()
	if jr == nil {
		return JobStatus{}, ErrNotFound
	}
	return jr.status(time.Now().UnixNano()), nil
}

// Await blocks until the job finishes (or the timeout fires) and
// returns its final status.
func (s *Server) Await(jobID string, timeout time.Duration) (JobStatus, error) {
	s.mu.RLock()
	jr := s.jobs[jobID]
	s.mu.RUnlock()
	if jr == nil {
		return JobStatus{}, ErrNotFound
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-jr.waitCh:
		return jr.status(time.Now().UnixNano()), nil
	case <-t.C:
		return jr.status(time.Now().UnixNano()), fmt.Errorf("serve: job %s still %s after %v", jobID, stateNames[jr.stateNow()], timeout)
	}
}

// Trace returns the recorder of a job (nil while queued).
func (s *Server) Trace(jobID string) (*trace.Recorder, error) {
	s.mu.RLock()
	jr := s.jobs[jobID]
	s.mu.RUnlock()
	if jr == nil {
		return nil, ErrNotFound
	}
	jr.mu.Lock()
	defer jr.mu.Unlock()
	return jr.rec, nil
}

func (jr *jobRec) setRunning(job *runtime.Job) {
	jr.mu.Lock()
	jr.job = job
	jr.state = stateRunning
	jr.startedNs = time.Now().UnixNano()
	jr.mu.Unlock()
}

func (jr *jobRec) finish(rep *runtime.Report, err error) {
	jr.finished.Store(true)
	jr.mu.Lock()
	if jr.state == stateDone || jr.state == stateFailed {
		jr.mu.Unlock()
		return
	}
	jr.rep = rep
	jr.err = err
	if err != nil {
		jr.errStr = err.Error()
		jr.state = stateFailed
	} else {
		jr.state = stateDone
	}
	jr.doneNs = time.Now().UnixNano()
	jr.mu.Unlock()
	close(jr.waitCh)
	if err != nil {
		jr.tn.failed.Add(1)
	} else {
		jr.tn.completed.Add(1)
	}
}

func (jr *jobRec) stateNow() uint8 {
	jr.mu.Lock()
	defer jr.mu.Unlock()
	return jr.state
}

// status snapshots the record; nowNs supplies "now" for in-flight
// durations (callers on the hot path pass the coarse clock).
func (jr *jobRec) status(nowNs int64) JobStatus {
	jr.mu.Lock()
	st := JobStatus{
		ID:         jr.id,
		Tenant:     jr.tenant,
		App:        jr.spec.App,
		State:      stateNames[jr.state],
		Ranks:      jr.spec.Ranks,
		SparesUsed: int(jr.leases.Load()),
	}
	if jr.job != nil {
		st.Epochs = jr.job.Epoch()
		// A launched job's membership view — not the submitted spec —
		// is the truth about its world size: resizes move it.
		if v := jr.job.CurrentView(); v != nil {
			st.Ranks = v.Ranks
			st.ViewVersion = v.Version
		}
	}
	st.QueuedMs, st.RunningMs = jr.phaseMs(nowNs)
	if jr.err != nil {
		st.Err = jr.err.Error()
	}
	jr.mu.Unlock()
	return st
}

// phaseMs computes time spent queued and running, in ms. Caller holds
// jr.mu.
func (jr *jobRec) phaseMs(nowNs int64) (queued, running int64) {
	switch {
	case jr.startedNs == 0:
		queued = nowNs - jr.submittedNs
	case jr.doneNs == 0:
		queued = jr.startedNs - jr.submittedNs
		running = nowNs - jr.startedNs
	default:
		queued = jr.startedNs - jr.submittedNs
		running = jr.doneNs - jr.startedNs
	}
	return queued / 1e6, running / 1e6
}

// TenantStats is one tenant's slice of /stats.
type TenantStats struct {
	Submitted    int64 `json:"submitted"`
	Rejected     int64 `json:"rejected"`
	Completed    int64 `json:"completed"`
	Failed       int64 `json:"failed"`
	Queued       int   `json:"queued"`
	Running      int   `json:"running"`
	SparesLeased int   `json:"spares_leased"`
}

// ServerStats is the GET /stats document.
type ServerStats struct {
	UptimeMs     int64                  `json:"uptime_ms"`
	Jobs         map[string]int         `json:"jobs"`
	ComputeFree  int                    `json:"compute_free"`
	ComputeTotal int                    `json:"compute_total"`
	ResizesTotal int64                  `json:"resizes_total"`
	Spares       brokerStats            `json:"spares"`
	Tenants      map[string]TenantStats `json:"tenants"`
}

// Stats snapshots the whole service.
func (s *Server) Stats() ServerStats {
	st := ServerStats{
		UptimeMs:     (time.Now().UnixNano() - s.startNs) / 1e6,
		Jobs:         map[string]int{"queued": 0, "running": 0, "done": 0, "failed": 0},
		ComputeFree:  s.nodes.freeCount(),
		ComputeTotal: s.nodes.total,
		ResizesTotal: s.resizes.Load(),
		Spares:       s.broker.stats(),
		Tenants:      make(map[string]TenantStats),
	}
	s.mu.RLock()
	jobs := make([]*jobRec, 0, len(s.jobs))
	for _, jr := range s.jobs {
		jobs = append(jobs, jr)
	}
	tenants := make(map[string]*tenant, len(s.tenants))
	for name, tn := range s.tenants {
		tenants[name] = tn
	}
	s.mu.RUnlock()
	for _, jr := range jobs {
		st.Jobs[stateNames[jr.stateNow()]]++
	}
	for name, tn := range tenants {
		st.Tenants[name] = TenantStats{
			Submitted:    tn.submitted.Load(),
			Rejected:     tn.rejected.Load(),
			Completed:    tn.completed.Load(),
			Failed:       tn.failed.Load(),
			Queued:       len(tn.queue),
			Running:      len(tn.sem),
			SparesLeased: s.broker.tenantLeases(name),
		}
	}
	return st
}
