// http.go is fmiserve's request path: a hand-rolled HTTP/1.1 server
// over net.Listener built on the package's worker pool. The status
// endpoint is the hot path — load balancers and clients poll it — so
// it is engineered to the bufpool discipline: one pooled buffer per
// request holds both headers and body, the job lookup indexes the map
// with string(b) (a no-copy conversion the compiler recognizes), and
// timestamps come from the coarse clock. Everything else (submit,
// stats, kill) is cold and uses encoding/json plainly.
package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"time"

	"fmi/internal/trace"
)

// Start listens on addr and serves until Close. It returns the bound
// address (use ":0" to pick a free port).
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.lnMu.Lock()
	s.ln = ln
	s.lnMu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

func (s *Server) closeListener() {
	s.lnMu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	s.lnMu.Unlock()
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return
		}
		if !s.wp.Serve(c) {
			c.Close() // pool saturated or stopped
		}
	}
}

// connState is the per-connection scratch kept across requests and
// pooled across connections: the buffered reader plus copies of the
// request-line tokens (ReadSlice views die on the next fill, so the
// path must be copied out before headers are read).
type connState struct {
	br      *bufio.Reader
	path    [256]byte
	pathLen int
	post    bool
}

var connStatePool = sync.Pool{New: func() any {
	return &connState{br: bufio.NewReaderSize(nil, 4096)}
}}

const maxBody = 64 << 10

// serveConn drives one connection's keep-alive loop; it is the worker
// pool's serve function.
func (s *Server) serveConn(c net.Conn) {
	st := connStatePool.Get().(*connState)
	st.br.Reset(c)
	for {
		if !s.serveRequest(c, st) {
			break
		}
	}
	c.Close()
	st.br.Reset(nil)
	connStatePool.Put(st)
}

// serveRequest reads and answers one request; false closes the
// connection.
func (s *Server) serveRequest(c net.Conn, st *connState) bool {
	// Coarse deadline: idle keep-alive connections expire, at 5 ms
	// granularity, without a time.Now call per request.
	c.SetReadDeadline(time.Unix(0, s.clock.NowNanos()).Add(time.Minute))
	line, err := st.br.ReadSlice('\n')
	if err != nil {
		return false
	}
	sp := bytes.IndexByte(line, ' ')
	if sp < 0 {
		return false
	}
	method := line[:sp]
	rest := line[sp+1:]
	sp = bytes.IndexByte(rest, ' ')
	if sp < 0 || sp > len(st.path) {
		return false
	}
	st.pathLen = copy(st.path[:], rest[:sp])
	switch {
	case bytes.Equal(method, []byte("GET")):
		st.post = false
	case bytes.Equal(method, []byte("POST")):
		st.post = true
	default:
		s.writeError(c, 405, "method not allowed", true)
		return drainHeaders(st.br) == nil
	}

	contentLength, closing, err := readHeaders(st.br)
	if err != nil || contentLength > maxBody {
		return false
	}
	var body []byte
	if st.post && contentLength > 0 {
		body = s.pool.Get(contentLength)
		if _, err := io.ReadFull(st.br, body); err != nil {
			s.pool.Put(body)
			return false
		}
	}
	keep := s.route(c, st, body) && !closing
	if body != nil {
		s.pool.Put(body)
	}
	return keep
}

// readHeaders consumes header lines, extracting Content-Length and
// Connection: close.
func readHeaders(br *bufio.Reader) (contentLength int, closing bool, err error) {
	for {
		line, err := br.ReadSlice('\n')
		if err != nil {
			return 0, false, err
		}
		line = trimCRLF(line)
		if len(line) == 0 {
			return contentLength, closing, nil
		}
		col := bytes.IndexByte(line, ':')
		if col < 0 {
			continue
		}
		key, val := line[:col], bytes.TrimSpace(line[col+1:])
		switch {
		case equalFold(key, "content-length"):
			n, perr := strconv.Atoi(string(val))
			if perr != nil || n < 0 {
				return 0, false, fmt.Errorf("serve: bad content-length")
			}
			contentLength = n
		case equalFold(key, "connection"):
			closing = equalFold(val, "close")
		}
	}
}

func drainHeaders(br *bufio.Reader) error {
	_, _, err := readHeaders(br)
	return err
}

func trimCRLF(b []byte) []byte {
	for len(b) > 0 && (b[len(b)-1] == '\n' || b[len(b)-1] == '\r') {
		b = b[:len(b)-1]
	}
	return b
}

// equalFold is an ASCII case-insensitive compare against a lowercase
// literal, with no allocation.
func equalFold(b []byte, lower string) bool {
	if len(b) != len(lower) {
		return false
	}
	for i := 0; i < len(b); i++ {
		c := b[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != lower[i] {
			return false
		}
	}
	return true
}

// route dispatches one parsed request; it reports whether the
// connection may be kept alive.
func (s *Server) route(c net.Conn, st *connState, body []byte) bool {
	path := st.path[:st.pathLen]
	if !st.post {
		switch {
		case bytes.Equal(path, []byte("/stats")):
			return s.handleStats(c)
		case bytes.Equal(path, []byte("/healthz")):
			return s.writeJSON(c, 200, []byte(`{"ok":true}`))
		case bytes.HasPrefix(path, []byte("/jobs/")):
			id := path[len("/jobs/"):]
			if bytes.HasSuffix(id, []byte("/trace")) {
				s.handleTrace(c, id[:len(id)-len("/trace")])
				return false // streaming responses close the connection
			}
			return s.handleStatus(c, id)
		}
		return s.writeError(c, 404, "not found", true)
	}
	switch {
	case bytes.Equal(path, []byte("/jobs")):
		return s.handleSubmit(c, body)
	case bytes.HasPrefix(path, []byte("/jobs/")) && bytes.HasSuffix(path, []byte("/kill")):
		id := path[len("/jobs/") : len(path)-len("/kill")]
		return s.handleKill(c, id, body)
	case bytes.HasPrefix(path, []byte("/jobs/")) && bytes.HasSuffix(path, []byte("/resize")):
		id := path[len("/jobs/") : len(path)-len("/resize")]
		return s.handleResize(c, id, body)
	}
	return s.writeError(c, 404, "not found", true)
}

// handleStatus is the hot path: GET /jobs/{id}. One pooled buffer
// carries headers and body; the body is rendered by hand at a fixed
// offset and memmoved flush against the headers for a single write.
func (s *Server) handleStatus(c net.Conn, id []byte) bool {
	jr := s.lookup(id)
	if jr == nil {
		return s.writeError(c, 404, "no such job", true)
	}
	const bodyOff = 512 // room for the header block before it
	buf := s.pool.Get(4096)
	body := jr.appendStatus(buf[bodyOff:bodyOff], s.clock.NowNanos())
	hdr := appendHeader(buf[:0], status200, ctJSON, len(body), true)
	var n int
	if len(hdr)+len(body) <= cap(buf) {
		// body may still sit inside buf; copy is memmove-safe for the
		// overlapping case.
		n = copy(buf[len(hdr):cap(buf)], body)
		n += len(hdr)
	} else {
		// Body outgrew the buffer (append reallocated): slow path.
		out := append(hdr, body...)
		_, err := c.Write(out)
		s.pool.Put(buf)
		return err == nil
	}
	_, err := c.Write(buf[:n])
	s.pool.Put(buf)
	return err == nil
}

// appendStatus renders the job's status JSON. All strings embedded
// raw are charset-restricted (id, tenant, app, state); only the error
// text needs escaping.
func (jr *jobRec) appendStatus(dst []byte, nowNs int64) []byte {
	jr.mu.Lock()
	dst = append(dst, `{"id":"`...)
	dst = append(dst, jr.id...)
	dst = append(dst, `","tenant":"`...)
	dst = append(dst, jr.tenant...)
	dst = append(dst, `","app":"`...)
	dst = append(dst, jr.spec.App...)
	dst = append(dst, `","state":"`...)
	dst = append(dst, stateNames[jr.state]...)
	dst = append(dst, `","ranks":`...)
	ranks := jr.spec.Ranks
	var viewVer uint64
	var epochs uint32
	if jr.job != nil {
		epochs = jr.job.Epoch()
		// Live world size comes from the membership view, not the
		// submitted spec: an elastic job may have resized since launch.
		if v := jr.job.CurrentView(); v != nil {
			ranks = v.Ranks
			viewVer = v.Version
		}
	}
	dst = strconv.AppendInt(dst, int64(ranks), 10)
	dst = append(dst, `,"view_version":`...)
	dst = strconv.AppendUint(dst, viewVer, 10)
	dst = append(dst, `,"epochs":`...)
	dst = strconv.AppendUint(dst, uint64(epochs), 10)
	dst = append(dst, `,"spares_used":`...)
	dst = strconv.AppendInt(dst, int64(jr.leases.Load()), 10)
	queued, running := jr.phaseMs(nowNs)
	dst = append(dst, `,"queued_ms":`...)
	dst = strconv.AppendInt(dst, queued, 10)
	dst = append(dst, `,"running_ms":`...)
	dst = strconv.AppendInt(dst, running, 10)
	if jr.errStr != "" {
		dst = append(dst, `,"error":`...)
		dst = appendJSONString(dst, jr.errStr)
	}
	dst = append(dst, '}')
	jr.mu.Unlock()
	return dst
}

// appendJSONString appends s as a JSON string literal with the
// mandatory escapes.
func appendJSONString(dst []byte, s string) []byte {
	const hex = "0123456789abcdef"
	dst = append(dst, '"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '"' || c == '\\':
			dst = append(dst, '\\', c)
		case c == '\n':
			dst = append(dst, '\\', 'n')
		case c == '\t':
			dst = append(dst, '\\', 't')
		case c < 0x20:
			dst = append(dst, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		default:
			dst = append(dst, c)
		}
	}
	return append(dst, '"')
}

// Response header building blocks.
const (
	ctJSON   = "application/json"
	ctNDJSON = "application/x-ndjson"

	status200 = "200 OK"
	status202 = "202 Accepted"
	status400 = "400 Bad Request"
	status403 = "403 Forbidden"
	status404 = "404 Not Found"
	status405 = "405 Method Not Allowed"
	status409 = "409 Conflict"
	status429 = "429 Too Many Requests"
	status500 = "500 Internal Server Error"
	status503 = "503 Service Unavailable"
)

func statusLine(code int) string {
	switch code {
	case 200:
		return status200
	case 202:
		return status202
	case 400:
		return status400
	case 403:
		return status403
	case 404:
		return status404
	case 405:
		return status405
	case 409:
		return status409
	case 429:
		return status429
	case 503:
		return status503
	default:
		return status500
	}
}

// appendHeader appends a full response header block.
func appendHeader(dst []byte, status, contentType string, contentLength int, keepAlive bool) []byte {
	dst = append(dst, "HTTP/1.1 "...)
	dst = append(dst, status...)
	dst = append(dst, "\r\nContent-Type: "...)
	dst = append(dst, contentType...)
	dst = append(dst, "\r\nContent-Length: "...)
	dst = strconv.AppendInt(dst, int64(contentLength), 10)
	if !keepAlive {
		dst = append(dst, "\r\nConnection: close"...)
	}
	return append(dst, "\r\n\r\n"...)
}

// writeJSON writes a small JSON response through a pooled buffer.
func (s *Server) writeJSON(c net.Conn, code int, body []byte) bool {
	buf := s.pool.Get(256 + len(body))
	out := appendHeader(buf[:0], statusLine(code), ctJSON, len(body), true)
	out = append(out, body...)
	_, err := c.Write(out)
	s.pool.Put(buf)
	return err == nil
}

// writeError writes {"error":...} with the given status.
func (s *Server) writeError(c net.Conn, code int, msg string, keepAlive bool) bool {
	buf := s.pool.Get(512)
	body := append(buf[256:256], `{"error":`...)
	body = appendJSONString(body, msg)
	body = append(body, '}')
	out := appendHeader(buf[:0], statusLine(code), ctJSON, len(body), keepAlive)
	out = append(out, body...)
	_, err := c.Write(out)
	s.pool.Put(buf)
	return err == nil && keepAlive
}

// handleSubmit is POST /jobs.
func (s *Server) handleSubmit(c net.Conn, body []byte) bool {
	var spec JobSpec
	if err := json.Unmarshal(body, &spec); err != nil {
		return s.writeError(c, 400, "bad json: "+err.Error(), true)
	}
	id, err := s.Submit(spec)
	if err != nil {
		return s.writeError(c, errCode(err), err.Error(), true)
	}
	return s.writeJSON(c, 202, []byte(`{"id":"`+id+`"}`))
}

// errCode maps service errors to HTTP statuses.
func errCode(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return 429
	case errors.Is(err, ErrBadSpec):
		return 400
	case errors.Is(err, ErrNotFound):
		return 404
	case errors.Is(err, ErrKillDisabled):
		return 403
	case errors.Is(err, ErrClosed):
		return 503
	case errors.Is(err, ErrNotElastic), errors.Is(err, ErrResize):
		return 409
	case errors.Is(err, ErrNoCapacity):
		return 429
	default:
		return 500
	}
}

// handleResize is POST /jobs/{id}/resize with body {"ranks":N}: online
// grow/shrink of a running elastic job. The response is written after
// the new view commits, so a 200 means the job is already running at
// the new size.
func (s *Server) handleResize(c net.Conn, id []byte, body []byte) bool {
	var req struct {
		Ranks int `json:"ranks"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		return s.writeError(c, 400, "bad json: "+err.Error(), true)
	}
	res, err := s.Resize(string(id), req.Ranks)
	if err != nil {
		return s.writeError(c, errCode(err), err.Error(), true)
	}
	out, err := json.Marshal(res)
	if err != nil {
		return s.writeError(c, 500, err.Error(), true)
	}
	return s.writeJSON(c, 200, out)
}

// handleKill is POST /jobs/{id}/kill with body {"rank":N}.
func (s *Server) handleKill(c net.Conn, id []byte, body []byte) bool {
	if !s.cfg.AllowKill {
		return s.writeError(c, 403, ErrKillDisabled.Error(), true)
	}
	var req struct {
		Rank int `json:"rank"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		return s.writeError(c, 400, "bad json: "+err.Error(), true)
	}
	node, err := s.KillRank(string(id), req.Rank)
	if err != nil {
		return s.writeError(c, errCode(err), err.Error(), true)
	}
	return s.writeJSON(c, 200, []byte(`{"killed_node":`+strconv.Itoa(node)+`}`))
}

// handleStats is GET /stats.
func (s *Server) handleStats(c net.Conn) bool {
	body, err := json.Marshal(s.Stats())
	if err != nil {
		return s.writeError(c, 500, err.Error(), true)
	}
	return s.writeJSON(c, 200, body)
}

// handleTrace streams the job's timeline as NDJSON: replay everything
// recorded so far, then follow live events until the job finishes.
// The connection closes when the stream ends.
func (s *Server) handleTrace(c net.Conn, id []byte) {
	jr := s.lookup(id)
	if jr == nil {
		s.writeError(c, 404, "no such job", false)
		return
	}
	jr.mu.Lock()
	rec := jr.rec
	jr.mu.Unlock()
	if rec == nil {
		s.writeError(c, 409, "job not started", false)
		return
	}
	hdr := "HTTP/1.1 200 OK\r\nContent-Type: " + ctNDJSON + "\r\nConnection: close\r\n\r\n"
	if _, err := c.Write([]byte(hdr)); err != nil {
		return
	}
	start := rec.StartTime()
	buf := s.pool.Get(8 << 10)
	defer s.pool.Put(buf)
	cursor := 0
	for {
		// Read finished before draining: events recorded before the
		// flag flipped are then guaranteed to be seen.
		done := jr.finished.Load()
		evs, next := rec.Since(cursor)
		cursor = next
		if len(evs) > 0 {
			out := buf[:0]
			for _, e := range evs {
				out = trace.AppendJSONL(out, start, e)
				if len(out) >= 4<<10 {
					if _, err := c.Write(out); err != nil {
						return
					}
					out = buf[:0]
				}
			}
			if len(out) > 0 {
				if _, err := c.Write(out); err != nil {
					return
				}
			}
			continue
		}
		if done {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
}
