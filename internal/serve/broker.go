// broker.go is the shared spare-node pool: one reserve of spare nodes
// serving every job of every tenant, leased out on node failure and
// reclaimed when the borrowing job completes. ReStore's observation
// motivates the shape — recovery resources are provisioned *ahead* of
// failures and shared, instead of each job reserving its own worst
// case — and the per-tenant cap plus global floor are what keep the
// sharing safe: one tenant's failure storm can drain its own
// allowance, never the whole pool.
package serve

import (
	"sync"

	"fmi/internal/cluster"
)

// broker owns the spare pool. Leases are granted per failure event and
// tracked per job; releasing a job returns its healthy leased nodes to
// the pool and replaces dead ones with freshly provisioned nodes, so
// pool capacity is constant across any failure history.
type broker struct {
	clu *cluster.Cluster
	// floor is the reserve kept for tenants that hold no lease yet: a
	// tenant already holding leases may not take the pool below floor,
	// but a tenant with none may (so every tenant can always start
	// recovering, even during another tenant's storm).
	floor int
	// perTenant caps the leases one tenant may hold at once.
	perTenant int
	// onLease is invoked (outside the broker lock) for every granted
	// lease; the server registers node ownership through it.
	onLease func(jr *jobRec, nd *cluster.Node)

	mu        sync.Mutex
	pool      []*cluster.Node
	byTenant  map[string]int              // tenant -> outstanding leases
	byJob     map[*jobRec][]*cluster.Node // job -> leased nodes
	pending   []*jobRec                   // FIFO of ungranted demands
	granted   int                         // lifetime leases handed out
	reclaimed int                         // lifetime nodes returned/replaced
	denied    int                         // demands that had to queue
}

func newBroker(clu *cluster.Cluster, spares []*cluster.Node, floor, perTenant int) *broker {
	return &broker{
		clu:       clu,
		floor:     floor,
		perTenant: perTenant,
		pool:      append([]*cluster.Node{}, spares...),
		byTenant:  make(map[string]int),
		byJob:     make(map[*jobRec][]*cluster.Node),
	}
}

// demand requests one spare lease for the job (one failed node). If
// admission allows it the lease is granted immediately — the node is
// injected into the job's resource manager, waking its blocked
// Allocate; otherwise the demand queues until capacity frees up. The
// job meanwhile stays parked inside the runtime's allocation wait, so
// backpressure is confinement: the starved job stalls, nobody else
// does.
func (b *broker) demand(jr *jobRec) {
	b.mu.Lock()
	if !b.canGrantLocked(jr.tenant) {
		b.denied++
		b.pending = append(b.pending, jr)
		b.mu.Unlock()
		return
	}
	nd := b.grantLocked(jr)
	b.mu.Unlock()
	b.deliver(jr, nd)
}

// canGrantLocked applies the admission rule: pool non-empty, tenant
// under its cap, and the floor honoured (a tenant holding leases may
// not dig into the reserve).
func (b *broker) canGrantLocked(tenant string) bool {
	if len(b.pool) == 0 || b.byTenant[tenant] >= b.perTenant {
		return false
	}
	return len(b.pool) > b.floor || b.byTenant[tenant] == 0
}

// grantLocked pops a pool node and records the lease.
func (b *broker) grantLocked(jr *jobRec) *cluster.Node {
	nd := b.pool[len(b.pool)-1]
	b.pool = b.pool[:len(b.pool)-1]
	b.byTenant[jr.tenant]++
	b.byJob[jr] = append(b.byJob[jr], nd)
	b.granted++
	return nd
}

// deliver hands a granted node to the job outside the broker lock.
func (b *broker) deliver(jr *jobRec, nd *cluster.Node) {
	if b.onLease != nil {
		b.onLease(jr, nd)
	}
	jr.rm.AddSpare(nd)
}

// release reclaims every lease the job holds: healthy nodes return to
// the pool, dead ones are replaced by freshly provisioned nodes (the
// simulated resource manager delivering replacement hardware), and any
// queued demand that the freed capacity now admits is granted.
func (b *broker) release(jr *jobRec) {
	b.mu.Lock()
	leased := b.byJob[jr]
	delete(b.byJob, jr)
	b.byTenant[jr.tenant] -= len(leased)
	if b.byTenant[jr.tenant] <= 0 {
		delete(b.byTenant, jr.tenant)
	}
	for _, nd := range leased {
		b.reclaimed++
		if nd.Failed() {
			nd = b.clu.AddNode()
		}
		b.pool = append(b.pool, nd)
	}
	// Drop queued demands of finished jobs, then grant what now fits.
	keep := b.pending[:0]
	for _, p := range b.pending {
		if !p.finished.Load() {
			keep = append(keep, p)
		}
	}
	b.pending = keep
	type grant struct {
		jr *jobRec
		nd *cluster.Node
	}
	var grants []grant
	for idx := b.nextGrantLocked(); idx >= 0; idx = b.nextGrantLocked() {
		p := b.pending[idx]
		b.pending = append(b.pending[:idx], b.pending[idx+1:]...)
		grants = append(grants, grant{p, b.grantLocked(p)})
	}
	b.mu.Unlock()
	for _, g := range grants {
		b.deliver(g.jr, g.nd)
	}
}

// nextGrantLocked returns the index of the first queued demand the
// pool can admit under the current caps, or -1 when none fits.
func (b *broker) nextGrantLocked() int {
	for i, p := range b.pending {
		if b.canGrantLocked(p.tenant) {
			return i
		}
	}
	return -1
}

// brokerStats is the /stats snapshot of the spare economy.
type brokerStats struct {
	Free      int            `json:"free"`
	Floor     int            `json:"floor"`
	Leased    int            `json:"leased"`
	Pending   int            `json:"pending"`
	Granted   int            `json:"granted_total"`
	Reclaimed int            `json:"reclaimed_total"`
	Queued    int            `json:"queued_demands_total"`
	ByTenant  map[string]int `json:"leased_by_tenant"`
}

func (b *broker) stats() brokerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := brokerStats{
		Free:      len(b.pool),
		Floor:     b.floor,
		Pending:   len(b.pending),
		Granted:   b.granted,
		Reclaimed: b.reclaimed,
		Queued:    b.denied,
		ByTenant:  make(map[string]int, len(b.byTenant)),
	}
	for t, n := range b.byTenant {
		st.ByTenant[t] = n
		st.Leased += n
	}
	return st
}

// tenantLeases returns the tenant's outstanding lease count.
func (b *broker) tenantLeases(tenant string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.byTenant[tenant]
}

// jobLeases returns how many nodes the job currently holds on lease.
func (b *broker) jobLeases(jr *jobRec) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.byJob[jr])
}

// nodePool is the compute-node side of the shared cluster: the free
// nodes jobs are placed on. Acquisition is all-or-nothing (a job takes
// its whole machinefile or waits), which keeps two half-placed jobs
// from deadlocking each other.
type nodePool struct {
	mu      sync.Mutex
	free    []*cluster.Node
	arrival chan struct{} // closed and replaced on every release
	total   int
}

func newNodePool(nodes []*cluster.Node) *nodePool {
	return &nodePool{
		free:    append([]*cluster.Node{}, nodes...),
		arrival: make(chan struct{}),
		total:   len(nodes),
	}
}

// acquire takes n healthy nodes, blocking until they are available or
// cancel fires.
func (p *nodePool) acquire(n int, cancel <-chan struct{}) ([]*cluster.Node, bool) {
	for {
		p.mu.Lock()
		// Compact failed nodes out (a pool node can only have failed if
		// something killed it while idle; replace to keep capacity).
		keep := p.free[:0]
		for _, nd := range p.free {
			if !nd.Failed() {
				keep = append(keep, nd)
			}
		}
		p.free = keep
		if len(p.free) >= n {
			out := append([]*cluster.Node{}, p.free[len(p.free)-n:]...)
			p.free = p.free[:len(p.free)-n]
			p.mu.Unlock()
			return out, true
		}
		arrival := p.arrival
		p.mu.Unlock()
		select {
		case <-arrival:
		case <-cancel:
			return nil, false
		}
	}
}

// tryAcquire takes n healthy nodes without blocking: a resize grow
// either gets its nodes now or fails fast, so an HTTP resize request
// never parks inside the compute pool.
func (p *nodePool) tryAcquire(n int) ([]*cluster.Node, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	keep := p.free[:0]
	for _, nd := range p.free {
		if !nd.Failed() {
			keep = append(keep, nd)
		}
	}
	p.free = keep
	if len(p.free) < n {
		return nil, false
	}
	out := append([]*cluster.Node{}, p.free[len(p.free)-n:]...)
	p.free = p.free[:len(p.free)-n]
	return out, true
}

// release returns nodes to the pool, substituting fresh nodes for dead
// ones, and wakes waiting acquisitions.
func (p *nodePool) release(clu *cluster.Cluster, nds []*cluster.Node) {
	p.mu.Lock()
	for _, nd := range nds {
		if nd.Failed() {
			nd = clu.AddNode()
		}
		p.free = append(p.free, nd)
	}
	close(p.arrival)
	p.arrival = make(chan struct{})
	p.mu.Unlock()
}

// freeCount returns the number of free compute nodes.
func (p *nodePool) freeCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}
