// registry.go holds the built-in applications a job submission can
// name. Each app is a deterministic FMI program that verifies its own
// result before finalizing, so a job that survives failures but
// computes the wrong answer reports as failed instead of silently
// completing — the service's isolation guarantees are only meaningful
// if correctness is checked end to end.
package serve

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"fmi/internal/core"
	"fmi/internal/runtime"
)

// JobSpec is a job submission: the POST /jobs body.
type JobSpec struct {
	Tenant string `json:"tenant"`
	App    string `json:"app"`
	Ranks  int    `json:"ranks"`
	// ProcsPerNode controls placement density (default 2).
	ProcsPerNode int `json:"procs_per_node,omitempty"`
	// Iters is the application's iteration count (default 10).
	Iters int `json:"iters,omitempty"`
	// Interval is the checkpoint interval in iterations (default 3).
	Interval int `json:"interval,omitempty"`
	// Redundancy is the parity shard count (1 = XOR, >=2 = RS).
	Redundancy int `json:"redundancy,omitempty"`
	// Recovery is "global" (default) or "local".
	Recovery string `json:"recovery,omitempty"`
	// PayloadBytes sizes the allreduce payload (default 1024).
	PayloadBytes int `json:"payload_bytes,omitempty"`
	// StepMs simulates per-iteration compute time in milliseconds
	// (default 0: iterate as fast as the collectives allow). Without
	// it a toy job finishes in microseconds and nothing interesting —
	// failures, queueing, leases — ever overlaps it.
	StepMs int `json:"step_ms,omitempty"`
	// TimeoutMs overrides the server's default per-job timeout.
	TimeoutMs int `json:"timeout_ms,omitempty"`
	// Elastic permits online grow/shrink while the job runs, via
	// POST /jobs/{id}/resize. Non-elastic jobs reject resizes.
	Elastic bool `json:"elastic,omitempty"`
}

// normalize fills defaults and validates the spec.
func (s *JobSpec) normalize() error {
	if s.Tenant == "" {
		return fmt.Errorf("%w: missing tenant", ErrBadSpec)
	}
	if len(s.Tenant) > 64 {
		return fmt.Errorf("%w: tenant name too long", ErrBadSpec)
	}
	for i := 0; i < len(s.Tenant); i++ {
		c := s.Tenant[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-' || c == '_' || c == '.'
		if !ok {
			// Restricting the charset lets the status hot path embed the
			// name in JSON without escaping.
			return fmt.Errorf("%w: tenant name must be [A-Za-z0-9._-]", ErrBadSpec)
		}
	}
	if _, ok := registry[s.App]; !ok {
		return fmt.Errorf("%w: unknown app %q (have %v)", ErrBadSpec, s.App, Apps())
	}
	if s.Ranks <= 0 {
		return fmt.Errorf("%w: ranks must be positive", ErrBadSpec)
	}
	if s.ProcsPerNode <= 0 {
		s.ProcsPerNode = 2
	}
	if s.Iters <= 0 {
		s.Iters = 10
	}
	if s.Interval <= 0 {
		s.Interval = 3
	}
	if s.Redundancy <= 0 {
		s.Redundancy = 1
	}
	switch s.Recovery {
	case "":
		s.Recovery = "global"
	case "global", "local":
	default:
		return fmt.Errorf("%w: recovery must be global or local", ErrBadSpec)
	}
	if s.PayloadBytes <= 0 {
		s.PayloadBytes = 1024
	}
	s.PayloadBytes = (s.PayloadBytes + 7) &^ 7 // whole uint64 words
	if s.StepMs < 0 || s.StepMs > 1000 {
		return fmt.Errorf("%w: step_ms must be in [0,1000]", ErrBadSpec)
	}
	return nil
}

// step simulates the iteration's compute phase.
func (s *JobSpec) step() {
	if s.StepMs > 0 {
		time.Sleep(time.Duration(s.StepMs) * time.Millisecond)
	}
}

// nodesNeeded is the machinefile size the spec requires.
func (s *JobSpec) nodesNeeded() int {
	return (s.Ranks + s.ProcsPerNode - 1) / s.ProcsPerNode
}

// appFunc builds a runtime.App from a normalized spec.
type appFunc func(spec JobSpec) runtime.App

var registry = map[string]appFunc{
	"noop":      noopApp,
	"allreduce": allreduceApp,
	"pingpong":  pingpongApp,
}

// Apps lists the registered application names, sorted.
func Apps() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func sumWords(acc, src []byte) {
	for i := 0; i+8 <= len(acc); i += 8 {
		binary.LittleEndian.PutUint64(acc[i:], binary.LittleEndian.Uint64(acc[i:])+binary.LittleEndian.Uint64(src[i:]))
	}
}

// noopApp iterates through Loop with a tiny checkpointed counter and
// no communication: the cheapest possible tenant workload.
func noopApp(spec JobSpec) runtime.App {
	iters := spec.Iters
	return func(p *core.Proc) error {
		state := make([]byte, 8)
		for {
			n := p.Loop([][]byte{state})
			if n >= iters {
				break
			}
			spec.step()
			binary.LittleEndian.PutUint64(state, uint64(n+1))
		}
		if got := binary.LittleEndian.Uint64(state); got != uint64(iters) {
			return fmt.Errorf("noop: counter %d, want %d", got, iters)
		}
		return p.Finalize()
	}
}

// allreduceApp is the checksum workload: every iteration all ranks
// contribute (n + rank + 1) in word 0 of a payload-sized buffer to an
// Allreduce and fold the sum into a checkpointed running checksum.
// Any rollback inconsistency — including one caused by another
// tenant's recovery bleeding into this job — corrupts the checksum
// and fails the job.
func allreduceApp(spec JobSpec) runtime.App {
	iters, payload := spec.Iters, spec.PayloadBytes
	return func(p *core.Proc) error {
		state := make([]byte, 16) // [0:8] next iteration, [8:16] checksum
		contrib := make([]byte, payload)
		world := p.World()
		for {
			n := p.Loop([][]byte{state})
			if n >= iters {
				break
			}
			spec.step()
			for i := range contrib {
				contrib[i] = 0
			}
			binary.LittleEndian.PutUint64(contrib, uint64(n+p.Rank()+1))
			sum, err := world.Allreduce(contrib, sumWords)
			if err != nil {
				continue // failure: next Loop call recovers
			}
			cs := binary.LittleEndian.Uint64(state[8:]) + binary.LittleEndian.Uint64(sum)*uint64(n+1)
			binary.LittleEndian.PutUint64(state[8:], cs)
			binary.LittleEndian.PutUint64(state[0:], uint64(n+1))
		}
		if got, want := binary.LittleEndian.Uint64(state[8:]), allreduceChecksum(p.Size(), iters); got != want {
			return fmt.Errorf("allreduce: checksum %d, want %d", got, want)
		}
		return p.Finalize()
	}
}

// allreduceChecksum is the value every rank of a correct run ends with.
func allreduceChecksum(ranks, iters int) uint64 {
	var cs uint64
	for n := 0; n < iters; n++ {
		var sum uint64
		for r := 0; r < ranks; r++ {
			sum += uint64(n + r + 1)
		}
		cs += sum * uint64(n+1)
	}
	return cs
}

// pingpongApp pairs rank r with r^1 and exchanges a counter each
// iteration, verifying the partner's value; the odd rank out (when
// the world size is odd) just iterates. Exercises the point-to-point
// path and message-logging recovery rather than collectives.
func pingpongApp(spec JobSpec) runtime.App {
	iters := spec.Iters
	return func(p *core.Proc) error {
		state := make([]byte, 16) // [0:8] next iteration, [8:16] checksum
		buf := make([]byte, 8)
		world := p.World()
		partner := p.Rank() ^ 1
		for {
			n := p.Loop([][]byte{state})
			if n >= iters {
				break
			}
			spec.step()
			var got uint64
			// Re-read the world size after Loop: a resize fence commits
			// there, and whether the partner seat exists can change.
			if partner < p.Size() {
				binary.LittleEndian.PutUint64(buf, uint64(n+p.Rank()+1))
				echo, err := world.Sendrecv(partner, 7, buf, partner, 7)
				if err != nil {
					continue // failure: next Loop call recovers
				}
				got = binary.LittleEndian.Uint64(echo)
				if got != uint64(n+partner+1) {
					return fmt.Errorf("pingpong: iter %d got %d from rank %d, want %d", n, got, partner, n+partner+1)
				}
			}
			binary.LittleEndian.PutUint64(state[8:], binary.LittleEndian.Uint64(state[8:])+got)
			binary.LittleEndian.PutUint64(state[0:], uint64(n+1))
		}
		want := pingpongChecksum(p.Rank(), p.Size(), iters)
		if got := binary.LittleEndian.Uint64(state[8:]); got != want {
			return fmt.Errorf("pingpong: checksum %d, want %d", got, want)
		}
		return p.Finalize()
	}
}

// pingpongChecksum is rank's expected sum of partner echoes.
func pingpongChecksum(rank, size, iters int) uint64 {
	partner := rank ^ 1
	if partner >= size {
		return 0
	}
	var cs uint64
	for n := 0; n < iters; n++ {
		cs += uint64(n + partner + 1)
	}
	return cs
}
