package serve

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"fmi/internal/cluster"
)

// testConfig is a small, fast shared cluster for tests.
func testConfig() Config {
	return Config{
		ComputeNodes:        8,
		SpareNodes:          4,
		QueueDepth:          8,
		MaxRunningPerTenant: 2,
		MaxSparesPerTenant:  3,
		SpareFloor:          1,
		JobTimeout:          30 * time.Second,
		AllowKill:           true,
	}
}

func submitOK(t *testing.T, s *Server, spec JobSpec) string {
	t.Helper()
	id, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("Submit(%+v): %v", spec, err)
	}
	return id
}

func awaitDone(t *testing.T, s *Server, id string) JobStatus {
	t.Helper()
	st, err := s.Await(id, 30*time.Second)
	if err != nil {
		t.Fatalf("Await(%s): %v", id, err)
	}
	return st
}

// TestSingleJob runs one job through the service end to end.
func TestSingleJob(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	id := submitOK(t, s, JobSpec{Tenant: "t0", App: "allreduce", Ranks: 4, Iters: 5})
	st := awaitDone(t, s, id)
	if st.State != "done" {
		t.Fatalf("state = %s (err %q), want done", st.State, st.Err)
	}
	if st.Epochs != 0 || st.SparesUsed != 0 {
		t.Fatalf("failure-free job: epochs=%d spares=%d, want 0/0", st.Epochs, st.SparesUsed)
	}
	// All nodes returned.
	if free := s.nodes.freeCount(); free != 8 {
		t.Fatalf("compute free = %d, want 8", free)
	}
}

// TestTenantIsolation is the acceptance scenario: two tenants run
// concurrent jobs, a failure storm hits only tenant A, and tenant B's
// jobs complete with zero recovery activity — no cross-tenant
// rollback, no stalled queue — while A's jobs all recover and finish
// correctly on leased spares.
func TestTenantIsolation(t *testing.T) {
	s := New(testConfig())
	defer s.Close()

	specA := JobSpec{Tenant: "acme", App: "allreduce", Ranks: 4, Iters: 8, Interval: 2, StepMs: 10}
	specB := JobSpec{Tenant: "bloom", App: "allreduce", Ranks: 4, Iters: 8, Interval: 2, StepMs: 10}
	aIDs := []string{submitOK(t, s, specA), submitOK(t, s, specA)}
	bIDs := []string{submitOK(t, s, specB), submitOK(t, s, specB)}

	// Failure storm against tenant A only: kill a node under each of
	// its jobs once the job is running.
	for _, id := range aIDs {
		id := id
		go func() {
			deadline := time.Now().Add(10 * time.Second)
			for time.Now().Before(deadline) {
				st, err := s.Status(id)
				if err == nil && st.State == "running" {
					if _, err := s.KillRank(id, 1); err == nil {
						return
					}
				}
				time.Sleep(5 * time.Millisecond)
			}
		}()
	}

	for _, id := range bIDs {
		st := awaitDone(t, s, id)
		if st.State != "done" {
			t.Fatalf("tenant B job %s: state=%s err=%q", id, st.State, st.Err)
		}
		if st.Epochs != 0 {
			t.Errorf("tenant B job %s rolled back: epochs=%d, want 0", id, st.Epochs)
		}
		if st.SparesUsed != 0 {
			t.Errorf("tenant B job %s leased spares: %d, want 0", id, st.SparesUsed)
		}
	}
	recovered := 0
	for _, id := range aIDs {
		st := awaitDone(t, s, id)
		if st.State != "done" {
			t.Fatalf("tenant A job %s: state=%s err=%q", id, st.State, st.Err)
		}
		if st.Epochs > 0 {
			recovered++
			if st.SparesUsed == 0 {
				t.Errorf("tenant A job %s recovered (epochs=%d) without a lease", id, st.Epochs)
			}
		}
	}
	if recovered == 0 {
		t.Fatal("no tenant A job recorded a recovery; the storm missed")
	}

	// Every node accounted for: compute pool full, spare pool full.
	if free := s.nodes.freeCount(); free != 8 {
		t.Errorf("compute free = %d, want 8", free)
	}
	if bst := s.broker.stats(); bst.Free != 4 || bst.Leased != 0 {
		t.Errorf("spare pool free=%d leased=%d, want 4/0", bst.Free, bst.Leased)
	}
	stats := s.Stats()
	if stats.Tenants["bloom"].Failed != 0 || stats.Tenants["acme"].Failed != 0 {
		t.Errorf("unexpected failures: %+v", stats.Tenants)
	}
}

// TestQueueOverflow pins the backpressure contract: beyond QueueDepth
// pending jobs a tenant's submissions fail with ErrQueueFull, and
// other tenants are unaffected.
func TestQueueOverflow(t *testing.T) {
	cfg := testConfig()
	cfg.QueueDepth = 2
	cfg.MaxRunningPerTenant = 1
	s := New(cfg)
	defer s.Close()

	// Long-ish jobs so the queue stays occupied.
	spec := JobSpec{Tenant: "glut", App: "allreduce", Ranks: 4, Iters: 10, StepMs: 10}
	var ids []string
	full := 0
	for i := 0; i < 8; i++ {
		id, err := s.Submit(spec)
		switch {
		case err == nil:
			ids = append(ids, id)
		case errors.Is(err, ErrQueueFull):
			full++
		default:
			t.Fatalf("Submit: %v", err)
		}
	}
	if full == 0 {
		t.Fatal("no submission hit ErrQueueFull")
	}
	// A different tenant still gets in.
	other := submitOK(t, s, JobSpec{Tenant: "calm", App: "noop", Ranks: 2, Iters: 3})
	if st := awaitDone(t, s, other); st.State != "done" {
		t.Fatalf("other tenant blocked by backpressure: %+v", st)
	}
	for _, id := range ids {
		if st := awaitDone(t, s, id); st.State != "done" {
			t.Fatalf("admitted job %s: %+v", id, st)
		}
	}
	if got := s.Stats().Tenants["glut"].Rejected; got != int64(full) {
		t.Errorf("rejected counter = %d, want %d", got, full)
	}
}

// TestBrokerTenantCap pins the per-tenant lease cap: demands beyond
// the cap queue instead of granting.
func TestBrokerTenantCap(t *testing.T) {
	clu := cluster.New(4)
	spares := []*cluster.Node{clu.Node(0), clu.Node(1), clu.Node(2)}
	b := newBroker(clu, spares, 0, 1)
	jr := fakeJob(clu, "solo")
	b.demand(jr)
	b.demand(jr)
	if got := b.tenantLeases("solo"); got != 1 {
		t.Fatalf("leases = %d, want 1 (cap)", got)
	}
	if st := b.stats(); st.Pending != 1 {
		t.Fatalf("pending = %d, want 1", st.Pending)
	}
	if jr.rm.SpareCount() != 1 {
		t.Fatalf("rm spares = %d, want 1", jr.rm.SpareCount())
	}
	// Release frees the cap slot, but the pending demand belongs to a
	// finished job and must be dropped, not granted.
	jr.finished.Store(true)
	b.release(jr)
	if st := b.stats(); st.Pending != 0 || st.Free != 3 {
		t.Fatalf("after release: pending=%d free=%d, want 0/3", st.Pending, st.Free)
	}
}

// TestBrokerFloor pins the global floor: a tenant already holding
// leases may not drain the reserve, but a fresh tenant may.
func TestBrokerFloor(t *testing.T) {
	clu := cluster.New(4)
	spares := []*cluster.Node{clu.Node(0), clu.Node(1)}
	b := newBroker(clu, spares, 1, 5)
	jrA := fakeJob(clu, "a")
	jrB := fakeJob(clu, "b")
	b.demand(jrA) // pool 2 -> 1 (== floor)
	if got := b.tenantLeases("a"); got != 1 {
		t.Fatalf("a leases = %d, want 1", got)
	}
	b.demand(jrA) // a holds a lease, pool at floor: must queue
	if st := b.stats(); st.Pending != 1 {
		t.Fatalf("pending = %d, want 1 (floor protected)", st.Pending)
	}
	b.demand(jrB) // b holds nothing: may take the reserve
	if got := b.tenantLeases("b"); got != 1 {
		t.Fatalf("b leases = %d, want 1", got)
	}
	// Releasing b only refills the pool back to the floor, so a's
	// queued demand must stay queued: the reserve is still protected.
	b.release(jrB)
	if st := b.stats(); st.Pending != 1 || st.Free != 1 {
		t.Fatalf("after b release: pending=%d free=%d, want 1/1", st.Pending, st.Free)
	}
	// Releasing a's lease zeroes its count; its queued demand may now
	// take the reserve and drains.
	b.release(jrA)
	if got := b.tenantLeases("a"); got != 1 {
		t.Fatalf("a leases after drain = %d, want 1", got)
	}
	if st := b.stats(); st.Pending != 0 {
		t.Fatalf("pending = %d, want 0", st.Pending)
	}
}

// fakeJob builds the minimal jobRec the broker needs.
func fakeJob(clu *cluster.Cluster, tenant string) *jobRec {
	rm := cluster.NewResourceManager(clu, nil)
	rm.Provision = false
	rm.WaitForSpare = true
	return &jobRec{id: "j-test", tenant: tenant, rm: rm, waitCh: make(chan struct{})}
}

// TestStatusHotPathAllocs pins the acceptance criterion: rendering a
// status response — id lookup, JSON body, header block — allocates at
// most one buffer per request, and that buffer comes from the arena.
func TestStatusHotPathAllocs(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	id := submitOK(t, s, JobSpec{Tenant: "hot", App: "noop", Ranks: 2, Iters: 3})
	awaitDone(t, s, id)
	idB := []byte(id)
	// Warm the arena's size class.
	for i := 0; i < 8; i++ {
		s.pool.Put(s.pool.Get(4096))
	}
	allocs := testing.AllocsPerRun(200, func() {
		jr := s.lookup(idB)
		if jr == nil {
			t.Fatal("lookup failed")
		}
		buf := s.pool.Get(4096)
		body := jr.appendStatus(buf[512:512], s.clock.NowNanos())
		hdr := appendHeader(buf[:0], status200, ctJSON, len(body), true)
		n := copy(buf[len(hdr):cap(buf)], body)
		_ = buf[:len(hdr)+n]
		s.pool.Put(buf)
	})
	if allocs > 1 {
		t.Fatalf("status hot path allocates %.1f/request, budget is 1", allocs)
	}
}

// TestStatusRendersValidJSON cross-checks the hand-rolled renderer
// against the structured Status for a failed job (the error-string
// branch included).
func TestStatusRendersValidJSON(t *testing.T) {
	cfg := testConfig()
	cfg.JobTimeout = 200 * time.Millisecond
	s := New(cfg)
	defer s.Close()
	// A job that cannot finish in time: iterations far beyond the
	// timeout budget ensure a timeout abort and an error status.
	id := submitOK(t, s, JobSpec{Tenant: "sad", App: "allreduce", Ranks: 4, Iters: 100000, TimeoutMs: 200})
	st, _ := s.Await(id, 30*time.Second)
	if st.State != "failed" || st.Err == "" {
		t.Fatalf("want failed state with error, got %+v", st)
	}
	jr := s.lookup([]byte(id))
	body := jr.appendStatus(nil, s.clock.NowNanos())
	var decoded JobStatus
	if err := json.Unmarshal(body, &decoded); err != nil {
		t.Fatalf("hot-path JSON invalid: %v\n%s", err, body)
	}
	if decoded.State != "failed" || decoded.Err == "" || decoded.ID != id {
		t.Fatalf("decoded = %+v", decoded)
	}
}

// TestKillDisabled pins the AllowKill gate at the service layer.
func TestKillDisabled(t *testing.T) {
	cfg := testConfig()
	cfg.AllowKill = false
	s := New(cfg)
	defer s.Close()
	id := submitOK(t, s, JobSpec{Tenant: "t", App: "noop", Ranks: 2, Iters: 3})
	awaitDone(t, s, id)
	// The HTTP layer gates on AllowKill; exercised in http_test.go. At
	// the Go API layer killing a finished job must refuse cleanly too.
	if _, err := s.KillRank(id, 0); err == nil {
		t.Fatal("KillRank on finished job succeeded")
	}
}

// awaitRunning polls until the job reports running.
func awaitRunning(t *testing.T, s *Server, id string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, err := s.Status(id)
		if err != nil {
			t.Fatalf("Status(%s): %v", id, err)
		}
		if st.State == "running" {
			return
		}
		if st.State == "done" || st.State == "failed" {
			t.Fatalf("job %s finished before it was observed running: %+v", id, st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never observed running", id)
}

// TestElasticResize grows and then shrinks a running elastic job
// through the service API, checking the membership view advances, the
// job completes, and every compute node is accounted for afterwards.
func TestElasticResize(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	id := submitOK(t, s, JobSpec{Tenant: "el", App: "noop", Ranks: 2, Iters: 60, StepMs: 10, Elastic: true})
	awaitRunning(t, s, id)

	grown, err := s.Resize(id, 4)
	if err != nil {
		t.Fatalf("grow: %v", err)
	}
	if grown.Ranks != 4 || grown.ViewVersion != 2 {
		t.Fatalf("grow result = %+v, want ranks 4 view 2", grown)
	}
	if st, _ := s.Status(id); st.Ranks != 4 || st.ViewVersion != 2 {
		t.Fatalf("status after grow = %+v, want live ranks 4 view 2", st)
	}

	shrunk, err := s.Resize(id, 2)
	if err != nil {
		t.Fatalf("shrink: %v", err)
	}
	if shrunk.Ranks != 2 || shrunk.ViewVersion != 3 {
		t.Fatalf("shrink result = %+v, want ranks 2 view 3", shrunk)
	}
	// The grow's extra node came back through the shrink fence: only
	// the original machinefile slot is still out.
	if free := s.nodes.freeCount(); free != 7 {
		t.Fatalf("compute free after shrink = %d, want 7", free)
	}

	st := awaitDone(t, s, id)
	if st.State != "done" {
		t.Fatalf("state = %s (err %q), want done", st.State, st.Err)
	}
	if free := s.nodes.freeCount(); free != 8 {
		t.Fatalf("compute free after completion = %d, want 8", free)
	}
	if got := s.Stats().ResizesTotal; got != 2 {
		t.Fatalf("resizes_total = %d, want 2", got)
	}
}

// TestResizeRejections pins the resize error surface: unknown job,
// non-elastic job, bad target, and insufficient compute capacity.
func TestResizeRejections(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	if _, err := s.Resize("j-999", 4); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown job: %v, want ErrNotFound", err)
	}
	rigid := submitOK(t, s, JobSpec{Tenant: "r", App: "noop", Ranks: 2, Iters: 40, StepMs: 10})
	awaitRunning(t, s, rigid)
	if _, err := s.Resize(rigid, 4); !errors.Is(err, ErrNotElastic) {
		t.Errorf("non-elastic: %v, want ErrNotElastic", err)
	}
	el := submitOK(t, s, JobSpec{Tenant: "r", App: "noop", Ranks: 2, Iters: 40, StepMs: 10, Elastic: true})
	awaitRunning(t, s, el)
	if _, err := s.Resize(el, 0); !errors.Is(err, ErrBadSpec) {
		t.Errorf("zero target: %v, want ErrBadSpec", err)
	}
	// An 8-node pool cannot fund a grow to 100 ranks.
	if _, err := s.Resize(el, 100); !errors.Is(err, ErrNoCapacity) {
		t.Errorf("oversized grow: %v, want ErrNoCapacity", err)
	}
	for _, id := range []string{rigid, el} {
		if st := awaitDone(t, s, id); st.State != "done" {
			t.Fatalf("job %s: %+v", id, st)
		}
	}
}

// TestBadSpecs pins validation errors.
func TestBadSpecs(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	cases := []JobSpec{
		{Tenant: "", App: "noop", Ranks: 2},
		{Tenant: "t", App: "nope", Ranks: 2},
		{Tenant: "t", App: "noop", Ranks: 0},
		{Tenant: "t", App: "noop", Ranks: 1000},        // larger than cluster
		{Tenant: "bad tenant!", App: "noop", Ranks: 2}, // charset
		{Tenant: strings.Repeat("x", 65), App: "noop", Ranks: 2},
		{Tenant: "t", App: "noop", Ranks: 2, Recovery: "psychic"},
	}
	for _, spec := range cases {
		if _, err := s.Submit(spec); !errors.Is(err, ErrBadSpec) {
			t.Errorf("Submit(%+v) err = %v, want ErrBadSpec", spec, err)
		}
	}
}
