package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"fmi/internal/trace"
)

// startHTTP boots a server on a free port and returns its base URL.
func startHTTP(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	s := New(cfg)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(s.Close)
	return s, "http://" + addr.String()
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, data
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if v != nil {
		if err := json.Unmarshal(data, v); err != nil {
			t.Fatalf("GET %s: bad json %q: %v", url, data, err)
		}
	}
	return resp
}

// TestHTTPEndToEnd drives the whole API over a real socket: submit,
// poll status, stream the trace, read stats, inject a kill.
func TestHTTPEndToEnd(t *testing.T) {
	s, base := startHTTP(t, testConfig())
	_ = s

	// Health first.
	var health struct {
		OK bool `json:"ok"`
	}
	if resp := getJSON(t, base+"/healthz", &health); resp.StatusCode != 200 || !health.OK {
		t.Fatalf("healthz: %d %+v", resp.StatusCode, health)
	}

	// Submit a job that will be killed mid-run.
	resp, body := postJSON(t, base+"/jobs", JobSpec{
		Tenant: "web", App: "allreduce", Ranks: 4, Iters: 8, Interval: 2, StepMs: 10,
	})
	if resp.StatusCode != 202 {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var submitted struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &submitted); err != nil || submitted.ID == "" {
		t.Fatalf("submit response %q: %v", body, err)
	}
	id := submitted.ID

	// Wait for it to start, then kill rank 1's node over HTTP.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var st JobStatus
		getJSON(t, base+"/jobs/"+id, &st)
		if st.State == "running" {
			break
		}
		if st.State == "done" || time.Now().After(deadline) {
			t.Fatalf("job never observed running: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	kresp, kbody := postJSON(t, base+"/jobs/"+id+"/kill", map[string]int{"rank": 1})
	if kresp.StatusCode != 200 {
		t.Fatalf("kill: %d %s", kresp.StatusCode, kbody)
	}

	// Poll to completion.
	var final JobStatus
	for {
		getJSON(t, base+"/jobs/"+id, &final)
		if final.State == "done" || final.State == "failed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck: %+v", final)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if final.State != "done" || final.Epochs == 0 || final.SparesUsed == 0 {
		t.Fatalf("final status %+v: want done with recovery evidence", final)
	}

	// Stream the trace; it must parse as JSONL and contain the
	// recovery choreography.
	tresp, err := http.Get(base + "/jobs/" + id + "/trace")
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	tbody, err := io.ReadAll(tresp.Body)
	tresp.Body.Close()
	if err != nil {
		t.Fatalf("trace read: %v", err)
	}
	if ct := tresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("trace content-type %q", ct)
	}
	events, err := trace.ParseJSONL(bytes.NewReader(tbody))
	if err != nil {
		t.Fatalf("trace parse: %v\n%s", err, tbody)
	}
	kinds := map[trace.Kind]int{}
	for _, e := range events {
		kinds[e.Kind]++
	}
	for _, want := range []trace.Kind{trace.KindNodeFailed, trace.KindEpoch, trace.KindSpareAlloc, trace.KindRespawn} {
		if kinds[want] == 0 {
			t.Errorf("trace missing %s events (have %v)", want, kinds)
		}
	}

	// Stats must be well-formed and reflect the completed job.
	var stats ServerStats
	if resp := getJSON(t, base+"/stats", &stats); resp.StatusCode != 200 {
		t.Fatalf("stats: %d", resp.StatusCode)
	}
	if stats.Jobs["done"] == 0 {
		t.Errorf("stats jobs = %v, want a done job", stats.Jobs)
	}
	if ts := stats.Tenants["web"]; ts.Submitted != 1 || ts.Completed != 1 {
		t.Errorf("tenant stats = %+v", ts)
	}
	if stats.Spares.Granted == 0 || stats.Spares.Leased != 0 {
		t.Errorf("spare stats = %+v: want granted>0, leased back to 0", stats.Spares)
	}
}

// TestHTTPErrors pins the error-path status codes.
func TestHTTPErrors(t *testing.T) {
	cfg := testConfig()
	cfg.AllowKill = false
	cfg.QueueDepth = 1
	cfg.MaxRunningPerTenant = 1
	_, base := startHTTP(t, cfg)

	// Unknown job: 404.
	resp := getJSON(t, base+"/jobs/j-999", nil)
	if resp.StatusCode != 404 {
		t.Errorf("unknown job: %d, want 404", resp.StatusCode)
	}
	// Unknown route: 404.
	if resp := getJSON(t, base+"/nope", nil); resp.StatusCode != 404 {
		t.Errorf("unknown route: %d, want 404", resp.StatusCode)
	}
	// Bad spec: 400.
	if resp, _ := postJSON(t, base+"/jobs", JobSpec{Tenant: "t", App: "nope", Ranks: 2}); resp.StatusCode != 400 {
		t.Errorf("bad app: %d, want 400", resp.StatusCode)
	}
	// Malformed JSON: 400.
	mresp, err := http.Post(base+"/jobs", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	io.Copy(io.Discard, mresp.Body)
	mresp.Body.Close()
	if mresp.StatusCode != 400 {
		t.Errorf("malformed json: %d, want 400", mresp.StatusCode)
	}
	// Kill disabled: 403.
	spec := JobSpec{Tenant: "t", App: "allreduce", Ranks: 4, Iters: 20, StepMs: 25}
	_, body := postJSON(t, base+"/jobs", spec)
	var submitted struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &submitted); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if resp, _ := postJSON(t, base+"/jobs/"+submitted.ID+"/kill", map[string]int{"rank": 0}); resp.StatusCode != 403 {
		t.Errorf("kill disabled: %d, want 403", resp.StatusCode)
	}
	// Queue overflow: fill the single queue slot behind the running
	// job, then expect 429.
	saw429 := false
	for i := 0; i < 6 && !saw429; i++ {
		resp, _ := postJSON(t, base+"/jobs", spec)
		if resp.StatusCode == 429 {
			saw429 = true
		} else if resp.StatusCode != 202 {
			t.Fatalf("submit %d: %d", i, resp.StatusCode)
		}
	}
	if !saw429 {
		t.Error("queue overflow never returned 429")
	}
}

// TestHTTPResize drives an online grow over the wire: submit an
// elastic job, resize it mid-run, and watch the status and stats
// documents track the new membership view.
func TestHTTPResize(t *testing.T) {
	s, base := startHTTP(t, testConfig())
	_ = s
	resp, body := postJSON(t, base+"/jobs", JobSpec{
		Tenant: "web", App: "noop", Ranks: 2, Iters: 60, StepMs: 10, Elastic: true,
	})
	if resp.StatusCode != 202 {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var submitted struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &submitted); err != nil || submitted.ID == "" {
		t.Fatalf("submit response %q: %v", body, err)
	}
	id := submitted.ID
	deadline := time.Now().Add(10 * time.Second)
	for {
		var st JobStatus
		getJSON(t, base+"/jobs/"+id, &st)
		if st.State == "running" {
			break
		}
		if st.State == "done" || time.Now().After(deadline) {
			t.Fatalf("job never observed running: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}

	rresp, rbody := postJSON(t, base+"/jobs/"+id+"/resize", map[string]int{"ranks": 4})
	if rresp.StatusCode != 200 {
		t.Fatalf("resize: %d %s", rresp.StatusCode, rbody)
	}
	var res ResizeResult
	if err := json.Unmarshal(rbody, &res); err != nil {
		t.Fatalf("resize response %q: %v", rbody, err)
	}
	if res.Ranks != 4 || res.ViewVersion != 2 {
		t.Fatalf("resize result = %+v, want ranks 4 view 2", res)
	}
	var st JobStatus
	getJSON(t, base+"/jobs/"+id, &st)
	if st.Ranks != 4 || st.ViewVersion != 2 {
		t.Fatalf("status after resize = %+v, want ranks 4 view 2", st)
	}

	// Resizing a non-elastic job over HTTP is a 409.
	_, b2 := postJSON(t, base+"/jobs", JobSpec{Tenant: "web", App: "noop", Ranks: 2, Iters: 40, StepMs: 10})
	var j2 struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(b2, &j2); err != nil {
		t.Fatal(err)
	}
	for {
		var st2 JobStatus
		getJSON(t, base+"/jobs/"+j2.ID, &st2)
		if st2.State == "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("second job never running: %+v", st2)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if resp, _ := postJSON(t, base+"/jobs/"+j2.ID+"/resize", map[string]int{"ranks": 4}); resp.StatusCode != 409 {
		t.Errorf("non-elastic resize: %d, want 409", resp.StatusCode)
	}

	for _, jid := range []string{id, j2.ID} {
		for {
			var fs JobStatus
			getJSON(t, base+"/jobs/"+jid, &fs)
			if fs.State == "done" {
				break
			}
			if fs.State == "failed" || time.Now().After(deadline) {
				t.Fatalf("job %s: %+v", jid, fs)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	var stats ServerStats
	getJSON(t, base+"/stats", &stats)
	if stats.ResizesTotal != 1 {
		t.Errorf("stats resizes_total = %d, want 1", stats.ResizesTotal)
	}
}

// TestHTTPKeepAlive pins that one connection serves many requests:
// the worker-pool path reuses the goroutine and the pooled reader.
func TestHTTPKeepAlive(t *testing.T) {
	s, base := startHTTP(t, testConfig())
	id := submitOK(t, s, JobSpec{Tenant: "ka", App: "noop", Ranks: 2, Iters: 3})
	awaitDone(t, s, id)

	// A single client connection, many sequential polls.
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 1}}
	for i := 0; i < 50; i++ {
		resp, err := client.Get(base + "/jobs/" + id)
		if err != nil {
			t.Fatalf("poll %d: %v", i, err)
		}
		var st JobStatus
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatalf("poll %d: bad json %q", i, data)
		}
		if st.ID != id || st.State != "done" {
			t.Fatalf("poll %d: %+v", i, st)
		}
	}
	// All 50 requests should have flowed through at most a few workers.
	s.wp.mu.Lock()
	workers := s.wp.count
	s.wp.mu.Unlock()
	if workers > 4 {
		t.Errorf("worker count = %d after sequential polling, want <= 4", workers)
	}
}

// TestTraceOfQueuedJob pins the 409 for jobs that have not started.
func TestTraceOfQueuedJob(t *testing.T) {
	cfg := testConfig()
	cfg.MaxRunningPerTenant = 1
	_, base := startHTTP(t, cfg)
	// First job occupies the only slot; second stays queued.
	_, b1 := postJSON(t, base+"/jobs", JobSpec{Tenant: "q", App: "allreduce", Ranks: 4, Iters: 50, StepMs: 25})
	_, b2 := postJSON(t, base+"/jobs", JobSpec{Tenant: "q", App: "noop", Ranks: 2, Iters: 3})
	var j1, j2 struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(b1, &j1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b2, &j2); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(fmt.Sprintf("%s/jobs/%s/trace", base, j2.ID))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 409 {
		t.Fatalf("trace of queued job: %d, want 409", resp.StatusCode)
	}
}
