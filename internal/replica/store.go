package replica

import (
	"fmt"
	"sort"
	"sync"

	"fmi/internal/cluster"
	"fmi/internal/trace"
)

// Store is the ReStore-style in-memory replicated data store
// (PAPERS.md: "ReStore: In-Memory REplicated STORagE for Rapid
// Recovery in Fault-Tolerant Algorithms"). Applications Submit named
// byte objects once; the store keeps R in-memory copies on distinct
// cluster nodes, prunes copies when their node dies, and immediately
// re-replicates back to R from any survivor — so after a failure the
// application re-fetches its input data with Load instead of
// re-reading it from the parallel file system or re-computing it.
//
// The replica count is fixed at 2 to match the protocol's
// primary/shadow pairing: one node loss never loses data, and the
// same correlated pair loss that degrades the protocol is the event
// that can lose a store object.
type Store struct {
	clu *cluster.Cluster
	rec *trace.Recorder

	mu      sync.Mutex
	objects map[string]*object
}

// StoreReplicas is the number of in-memory copies kept per object.
const StoreReplicas = 2

type object struct {
	data  []byte
	nodes []int // cluster node ids currently holding a copy
}

// NewStore creates a store over the cluster and subscribes to node
// failures so lost copies are re-replicated as soon as the failure is
// observed.
func NewStore(clu *cluster.Cluster, rec *trace.Recorder) *Store {
	s := &Store{clu: clu, rec: rec, objects: make(map[string]*object)}
	// The callback must not block (cluster contract); map surgery and
	// re-placement are pure in-memory bookkeeping here, so rebuilding
	// synchronously keeps the recovery window at zero instead of
	// racing a background goroutine against the next failure.
	clu.OnNodeFailure(func(nd *cluster.Node) { s.pruneNode(nd.ID) })
	return s
}

// pickNodes returns up to want healthy node ids not already in have,
// lowest id first (deterministic placement).
func (s *Store) pickNodes(have []int, want int) []int {
	taken := make(map[int]bool, len(have))
	for _, id := range have {
		taken[id] = true
	}
	var out []int
	for _, nd := range s.clu.Alive() {
		if !taken[nd.ID] {
			out = append(out, nd.ID)
		}
	}
	sort.Ints(out)
	if len(out) > want {
		out = out[:want]
	}
	return out
}

// Submit stores (or replaces) the object under key with StoreReplicas
// copies on distinct healthy nodes. The data is copied; the caller
// may reuse the slice.
func (s *Store) Submit(key string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	nodes := s.pickNodes(nil, StoreReplicas)
	if len(nodes) == 0 {
		return fmt.Errorf("fmi: store submit %q: no healthy nodes", key)
	}
	s.objects[key] = &object{data: append([]byte(nil), data...), nodes: nodes}
	s.rec.Add(trace.KindStoreSubmit, -1, 0, "store submit %q (%d B) -> nodes %v", key, len(data), nodes)
	return nil
}

// Load returns a copy of the object under key, as long as at least
// one holder node is still alive.
func (s *Store) Load(key string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	obj, ok := s.objects[key]
	if !ok {
		return nil, fmt.Errorf("fmi: store load %q: not found", key)
	}
	if len(obj.nodes) == 0 {
		return nil, fmt.Errorf("fmi: store load %q: all copies lost", key)
	}
	return append([]byte(nil), obj.data...), nil
}

// Rebuild re-replicates every surviving object back up to
// StoreReplicas copies and returns how many new copies were placed.
// It runs automatically after every node failure; the public entry
// point lets applications force a pass (e.g. after growing the
// cluster).
func (s *Store) Rebuild() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rebuildLocked()
}

func (s *Store) rebuildLocked() int {
	created := 0
	for key, obj := range s.objects {
		if len(obj.nodes) == 0 || len(obj.nodes) >= StoreReplicas {
			continue
		}
		fresh := s.pickNodes(obj.nodes, StoreReplicas-len(obj.nodes))
		if len(fresh) == 0 {
			continue
		}
		obj.nodes = append(obj.nodes, fresh...)
		created += len(fresh)
		s.rec.Add(trace.KindStoreRebuild, -1, 0, "store rebuild %q: +%d copies -> nodes %v", key, len(fresh), obj.nodes)
	}
	return created
}

// pruneNode drops node id's copies and immediately re-replicates the
// affected objects from their survivors.
func (s *Store) pruneNode(id int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	touched := false
	for _, obj := range s.objects {
		keep := obj.nodes[:0]
		for _, n := range obj.nodes {
			if n != id {
				keep = append(keep, n)
			} else {
				touched = true
			}
		}
		obj.nodes = keep
	}
	if touched {
		s.rebuildLocked()
	}
}

// Copies reports how many live copies of key exist (0 if absent).
func (s *Store) Copies(key string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	obj, ok := s.objects[key]
	if !ok {
		return 0
	}
	return len(obj.nodes)
}
