package replica

import (
	"fmt"
	"sort"
	"sync"

	"fmi/internal/cluster"
	"fmi/internal/trace"
	"fmi/internal/view"
)

// Store is the ReStore-style in-memory replicated data store
// (PAPERS.md: "ReStore: In-Memory REplicated STORagE for Rapid
// Recovery in Fault-Tolerant Algorithms"). Applications Submit named
// byte objects once; the store keeps R in-memory copies per shard on
// distinct cluster nodes, prunes copies when their node dies, and
// immediately re-replicates back to R from any survivor — so after a
// failure the application re-fetches its input data with Load instead
// of re-reading it from the parallel file system or re-computing it.
//
// Placement has two modes. Without a membership view installed the
// store replicates whole objects (the original behaviour). Once the
// runtime installs a view with SetView, objects are split into one
// contiguous shard per checkpoint-encoding group and each shard's
// copies are placed on that group's nodes — the same group map the
// checkpoint encoder uses, so a view change (grow/shrink) triggers a
// shard rebalance onto the new group structure, and Evacuate migrates
// copies off retiring nodes before the runtime releases them.
type Store struct {
	clu *cluster.Cluster
	rec *trace.Recorder

	mu      sync.Mutex
	objects map[string]*object
	view    *view.View
	groups  [][]int // distinct groups of the installed view, in rank order
}

// StoreReplicas is the number of in-memory copies kept per object (or
// per shard, once a view is installed).
const StoreReplicas = 2

// shard is one contiguous slice of an object's bytes with its own
// replica set.
type shard struct {
	off, n int
	nodes  []int // cluster node ids currently holding a copy
}

type object struct {
	data   []byte
	nodes  []int   // whole-object mode (no view installed)
	shards []shard // sharded mode (view installed)
}

// NewStore creates a store over the cluster and subscribes to node
// failures so lost copies are re-replicated as soon as the failure is
// observed.
func NewStore(clu *cluster.Cluster, rec *trace.Recorder) *Store {
	s := &Store{clu: clu, rec: rec, objects: make(map[string]*object)}
	// The callback must not block (cluster contract); map surgery and
	// re-placement are pure in-memory bookkeeping here, so rebuilding
	// synchronously keeps the recovery window at zero instead of
	// racing a background goroutine against the next failure.
	clu.OnNodeFailure(func(nd *cluster.Node) { s.pruneNode(nd.ID) })
	return s
}

// SetView installs (or replaces) the membership view and rebalances
// every object's shards onto the new group structure. Survivor shards
// that already sit on a node of their new group stay put; everything
// else migrates. Returns the number of shard copies placed or moved.
func (s *Store) SetView(v *view.View) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.view = v
	s.groups = distinctGroups(v)
	moved := 0
	// Sorted order keeps the migration trace deterministic: replay
	// validation compares trace streams run-to-run, and map order
	// would shuffle them.
	for _, key := range s.sortedKeysLocked() {
		obj := s.objects[key]
		m := s.reshardLocked(obj)
		if m > 0 {
			s.rec.AddView(trace.KindShardMigrate, -1, 0, v.Version,
				"store reshard %q: %d shard copies placed across %d groups", key, m, len(s.groups))
		}
		moved += m
	}
	return moved
}

// sortedKeysLocked returns the object keys in sorted order, so every
// pass over the store visits objects deterministically. Caller holds
// s.mu.
func (s *Store) sortedKeysLocked() []string {
	keys := make([]string, 0, len(s.objects))
	for k := range s.objects {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// distinctGroups collapses the per-rank group map into the list of
// distinct groups, ordered by their lowest member rank.
func distinctGroups(v *view.View) [][]int {
	var out [][]int
	for r := 0; r < v.Ranks; r++ {
		g := v.Groups[r]
		if len(g) > 0 && g[0] == r {
			out = append(out, g)
		}
	}
	if len(out) == 0 {
		out = [][]int{{0}}
	}
	return out
}

// pickNodes returns up to want healthy node ids not already in have,
// preferring the given candidates (a group's nodes), then any healthy
// node lowest id first (deterministic placement).
func (s *Store) pickNodes(prefer, have []int, want int) []int {
	taken := make(map[int]bool, len(have))
	for _, id := range have {
		taken[id] = true
	}
	alive := make(map[int]bool)
	var pool []int
	for _, nd := range s.clu.Alive() {
		alive[nd.ID] = true
		pool = append(pool, nd.ID)
	}
	sort.Ints(pool)
	var out []int
	add := func(id int) {
		if len(out) < want && alive[id] && !taken[id] {
			taken[id] = true
			out = append(out, id)
		}
	}
	for _, id := range prefer {
		add(id)
	}
	for _, id := range pool {
		add(id)
	}
	return out
}

// groupNodes returns the node ids hosting group gi's ranks under the
// installed view.
func (s *Store) groupNodes(gi int) []int {
	if s.view == nil || gi >= len(s.groups) {
		return nil
	}
	var out []int
	for _, r := range s.groups[gi] {
		if r < len(s.view.NodeOf) {
			out = append(out, s.view.NodeOf[r])
		}
	}
	return out
}

// reshardLocked (re)computes obj's shard layout for the installed
// view, keeping copies that already sit on a node of the shard's new
// group. Returns how many copies were newly placed.
func (s *Store) reshardLocked(obj *object) int {
	k := len(s.groups)
	chunk := (len(obj.data) + k - 1) / k
	if chunk == 0 {
		chunk = 1
	}
	old := obj.shards
	obj.shards = make([]shard, 0, k)
	obj.nodes = nil
	placed := 0
	for i := 0; i < k; i++ {
		off := i * chunk
		if off > len(obj.data) {
			off = len(obj.data)
		}
		n := chunk
		if off+n > len(obj.data) {
			n = len(obj.data) - off
		}
		want := s.groupNodes(i)
		wantSet := make(map[int]bool, len(want))
		for _, id := range want {
			wantSet[id] = true
		}
		var keep []int
		if i < len(old) {
			for _, id := range old[i].nodes {
				if wantSet[id] && len(keep) < StoreReplicas {
					keep = append(keep, id)
				}
			}
		}
		fresh := s.pickNodes(want, keep, StoreReplicas-len(keep))
		placed += len(fresh)
		obj.shards = append(obj.shards, shard{off: off, n: n, nodes: append(keep, fresh...)})
	}
	return placed
}

// Submit stores (or replaces) the object under key with StoreReplicas
// copies per shard on distinct healthy nodes. The data is copied; the
// caller may reuse the slice.
func (s *Store) Submit(key string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	obj := &object{data: append([]byte(nil), data...)}
	if s.view != nil {
		if s.reshardLocked(obj) == 0 {
			return fmt.Errorf("fmi: store submit %q: no healthy nodes", key)
		}
		s.objects[key] = obj
		s.rec.AddView(trace.KindStoreSubmit, -1, 0, s.view.Version,
			"store submit %q (%d B) -> %d shards", key, len(data), len(obj.shards))
		return nil
	}
	nodes := s.pickNodes(nil, nil, StoreReplicas)
	if len(nodes) == 0 {
		return fmt.Errorf("fmi: store submit %q: no healthy nodes", key)
	}
	obj.nodes = nodes
	s.objects[key] = obj
	s.rec.Add(trace.KindStoreSubmit, -1, 0, "store submit %q (%d B) -> nodes %v", key, len(data), nodes)
	return nil
}

// Load returns a copy of the object under key, as long as every shard
// (or the whole object, in unsharded mode) still has a living holder.
func (s *Store) Load(key string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	obj, ok := s.objects[key]
	if !ok {
		return nil, fmt.Errorf("fmi: store load %q: not found", key)
	}
	if obj.shards != nil {
		for i, sh := range obj.shards {
			if len(sh.nodes) == 0 {
				return nil, fmt.Errorf("fmi: store load %q: shard %d lost all copies", key, i)
			}
		}
		return append([]byte(nil), obj.data...), nil
	}
	if len(obj.nodes) == 0 {
		return nil, fmt.Errorf("fmi: store load %q: all copies lost", key)
	}
	return append([]byte(nil), obj.data...), nil
}

// Rebuild re-replicates every surviving object (or shard) back up to
// StoreReplicas copies and returns how many new copies were placed.
// It runs automatically after every node failure; the public entry
// point lets applications force a pass (e.g. after growing the
// cluster).
func (s *Store) Rebuild() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rebuildLocked()
}

func (s *Store) rebuildLocked() int {
	created := 0
	// Sorted order: rebuild placement consumes pickNodes' load-ordered
	// pool and emits trace entries, both of which must not depend on
	// map iteration order.
	for _, key := range s.sortedKeysLocked() {
		obj := s.objects[key]
		if obj.shards != nil {
			for i := range obj.shards {
				sh := &obj.shards[i]
				if len(sh.nodes) == 0 || len(sh.nodes) >= StoreReplicas {
					continue
				}
				fresh := s.pickNodes(s.groupNodes(i), sh.nodes, StoreReplicas-len(sh.nodes))
				if len(fresh) == 0 {
					continue
				}
				sh.nodes = append(sh.nodes, fresh...)
				created += len(fresh)
				s.rec.Add(trace.KindStoreRebuild, -1, 0, "store rebuild %q shard %d: +%d copies -> nodes %v", key, i, len(fresh), sh.nodes)
			}
			continue
		}
		if len(obj.nodes) == 0 || len(obj.nodes) >= StoreReplicas {
			continue
		}
		fresh := s.pickNodes(nil, obj.nodes, StoreReplicas-len(obj.nodes))
		if len(fresh) == 0 {
			continue
		}
		obj.nodes = append(obj.nodes, fresh...)
		created += len(fresh)
		s.rec.Add(trace.KindStoreRebuild, -1, 0, "store rebuild %q: +%d copies -> nodes %v", key, len(fresh), obj.nodes)
	}
	return created
}

// Evacuate migrates every copy off the given nodes (ranks retiring at
// a shrink fence) while they are still healthy, so releasing them
// back to the spare pool can never lose data. Returns the number of
// copies moved.
func (s *Store) Evacuate(nodeIDs []int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	leaving := make(map[int]bool, len(nodeIDs))
	for _, id := range nodeIDs {
		leaving[id] = true
	}
	touched := false
	for _, obj := range s.objects {
		for i := range obj.shards {
			sh := &obj.shards[i]
			keep := sh.nodes[:0]
			for _, id := range sh.nodes {
				if !leaving[id] {
					keep = append(keep, id)
				} else {
					touched = true
				}
			}
			sh.nodes = keep
		}
		keep := obj.nodes[:0]
		for _, id := range obj.nodes {
			if !leaving[id] {
				keep = append(keep, id)
			} else {
				touched = true
			}
		}
		obj.nodes = keep
	}
	if !touched {
		return 0
	}
	moved := s.rebuildLocked()
	ver := uint64(0)
	if s.view != nil {
		ver = s.view.Version
	}
	s.rec.AddView(trace.KindShardMigrate, -1, 0, ver, "store evacuate nodes %v: %d copies migrated", nodeIDs, moved)
	return moved
}

// pruneNode drops node id's copies and immediately re-replicates the
// affected objects from their survivors.
func (s *Store) pruneNode(id int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	touched := false
	for _, obj := range s.objects {
		for i := range obj.shards {
			sh := &obj.shards[i]
			keep := sh.nodes[:0]
			for _, n := range sh.nodes {
				if n != id {
					keep = append(keep, n)
				} else {
					touched = true
				}
			}
			sh.nodes = keep
		}
		keep := obj.nodes[:0]
		for _, n := range obj.nodes {
			if n != id {
				keep = append(keep, n)
			} else {
				touched = true
			}
		}
		obj.nodes = keep
	}
	if touched {
		s.rebuildLocked()
	}
}

// Copies reports how many live copies of key exist (0 if absent). In
// sharded mode it is the minimum copy count over the object's shards
// — the number of simultaneous node losses the object survives.
func (s *Store) Copies(key string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	obj, ok := s.objects[key]
	if !ok {
		return 0
	}
	if obj.shards != nil {
		min := -1
		for _, sh := range obj.shards {
			if min < 0 || len(sh.nodes) < min {
				min = len(sh.nodes)
			}
		}
		if min < 0 {
			min = 0
		}
		return min
	}
	return len(obj.nodes)
}
