package replica

import (
	"testing"

	"fmi/internal/cluster"
	"fmi/internal/trace"
	"fmi/internal/transport"
)

func TestRegistryLifecycle(t *testing.T) {
	r := NewRegistry(2)
	if _, _, ok := r.Lookup(0); ok {
		t.Fatal("Lookup ok before any registration")
	}
	r.SetPrimary(0, "p0")
	r.SetShadow(0, "s0", false)
	r.SetPrimary(1, "p1")
	r.SetShadow(1, "s1", false)
	if err := r.Ready(nil); err != nil {
		t.Fatalf("Ready: %v", err)
	}
	prim, shad, ok := r.Lookup(0)
	if !ok || prim != "p0" || shad != "s0" {
		t.Fatalf("Lookup(0) = %q %q %v", prim, shad, ok)
	}

	// Promotion flips routing in place and leaves the rank unprotected.
	if !r.Promote(0) {
		t.Fatal("Promote(0) failed")
	}
	prim, shad, ok = r.Lookup(0)
	if !ok || prim != "s0" || shad != transport.NilAddr {
		t.Fatalf("after promote: Lookup(0) = %q %q %v", prim, shad, ok)
	}
	if !r.Promoted(0) || r.Promoted(1) {
		t.Fatalf("Promoted = %v %v", r.Promoted(0), r.Promoted(1))
	}
	if r.Promote(0) {
		t.Fatal("second Promote(0) succeeded with no shadow")
	}

	// A re-provisioned shadow is not promotable until synced.
	r.SetShadow(0, "s0b", true)
	if r.Promote(0) {
		t.Fatal("Promote of an unsynced shadow succeeded")
	}
	addr, ok := r.TakeSyncRequest(0)
	if !ok || addr != "s0b" {
		t.Fatalf("TakeSyncRequest = %q %v", addr, ok)
	}
	if _, ok := r.TakeSyncRequest(0); ok {
		t.Fatal("TakeSyncRequest not cleared")
	}
	r.MarkSynced(0)
	if !r.Promote(0) {
		t.Fatal("Promote of a synced replacement failed")
	}

	// Deactivation drops routing but preserves promotion history.
	r.Deactivate()
	if _, _, ok := r.Lookup(1); ok {
		t.Fatal("Lookup ok after Deactivate")
	}
	if !r.Promoted(0) {
		t.Fatal("Promoted(0) lost after Deactivate")
	}
	if err := r.Ready(nil); err != ErrInactive {
		t.Fatalf("Ready after Deactivate: %v", err)
	}
}

func TestRegistryReadyCancel(t *testing.T) {
	r := NewRegistry(1)
	cancel := make(chan struct{})
	close(cancel)
	if err := r.Ready(cancel); err != ErrCancelled {
		t.Fatalf("Ready with fired cancel: %v", err)
	}
}

func TestRegistryDropShadow(t *testing.T) {
	r := NewRegistry(1)
	r.SetPrimary(0, "p")
	r.SetShadow(0, "s", false)
	r.DropShadow(0)
	prim, shad, ok := r.Lookup(0)
	if !ok || prim != "p" || shad != transport.NilAddr {
		t.Fatalf("after DropShadow: %q %q %v", prim, shad, ok)
	}
	if r.Promote(0) {
		t.Fatal("Promote succeeded with no shadow")
	}
}

func TestStoreSubmitLoadRebuild(t *testing.T) {
	clu := cluster.New(4)
	rec := trace.New()
	s := NewStore(clu, rec)
	if err := s.Submit("grid", []byte("payload")); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if got := s.Copies("grid"); got != StoreReplicas {
		t.Fatalf("copies = %d, want %d", got, StoreReplicas)
	}
	got, err := s.Load("grid")
	if err != nil || string(got) != "payload" {
		t.Fatalf("Load = %q, %v", got, err)
	}

	// Killing a holder node prunes its copy and re-replicates
	// synchronously from the survivor.
	clu.Node(0).Fail()
	if got := s.Copies("grid"); got != StoreReplicas {
		t.Fatalf("copies after failure = %d, want %d", got, StoreReplicas)
	}
	if rec.Count(trace.KindStoreRebuild) == 0 {
		t.Fatal("no store-rebuild event recorded")
	}
	got, err = s.Load("grid")
	if err != nil || string(got) != "payload" {
		t.Fatalf("Load after failure = %q, %v", got, err)
	}

	// Both holders lost in one sweep: the object is gone and says so.
	for _, nd := range clu.Alive() {
		nd.Fail()
	}
	if _, err := s.Load("grid"); err == nil {
		t.Fatal("Load succeeded with every node dead")
	}
	if _, err := s.Load("missing"); err == nil {
		t.Fatal("Load of an absent key succeeded")
	}
}
