// Package replica implements the third recovery protocol on the
// paper's frontier: replication-based recovery in the style of
// FTHP-MPI (PAPERS.md). Every rank runs as a primary/shadow pair on
// distinct nodes; sends are mirrored to both endpoints of the
// destination pair and deduplicated by the transport matcher's
// arrival watermarks, so the shadow tracks the primary's message
// stream in real time. When the primary's node dies the runtime flips
// the pair's routing entry — the shadow is promoted in place, with no
// epoch rollback and no replay exchange — and re-provisions a fresh
// shadow from a spare in the background.
//
// The package also hosts the ReStore-style in-memory data store
// (store.go): replicated application data that survives the same node
// failures the protocol masks.
//
// replica deliberately sits below internal/core in the import graph
// (core holds a *Registry in its Config), so nothing here may import
// core or runtime.
package replica

import (
	"errors"
	"sync"

	"fmi/internal/transport"
)

// ErrInactive is returned by Ready when the registry is deactivated
// (pair loss degraded the job to rollback recovery) before every pair
// registered.
var ErrInactive = errors.New("replica: registry deactivated")

// ErrCancelled is returned by Ready when the caller's cancel channel
// fires first.
var ErrCancelled = errors.New("replica: wait cancelled")

// Registry is the shared routing table of a replicated job: for each
// rank, the transport addresses of its primary and shadow endpoints.
// Procs resolve every send through it, the runtime mutates it on
// promotion/re-provisioning, and Deactivate flips the whole job back
// to plain (non-mirrored) routing after an unmaskable pair loss.
type Registry struct {
	mu      sync.Mutex
	n       int
	active  bool
	prim    []transport.Addr
	shad    []transport.Addr
	hasPrim []bool
	hasShad []bool
	// expectShad marks ranks whose shadow is expected to register:
	// Ready only waits for expected shadows, so a rank legitimately
	// running unprotected (shadow dropped, promotion, replacement still
	// provisioning) cannot deadlock a post-fence world rebuild.
	expectShad []bool
	synced     []bool // shadow state matches the primary's (promotable)
	promoted   []bool // rank's current primary is a promoted shadow
	// promotedInc is the incarnation of the shadow that was promoted
	// (valid while promoted is set). Seat-level promoted cannot tell the
	// acting primary apart from a replacement shadow provisioned on the
	// same rank afterwards; PromotedSelf keys the answer by incarnation.
	promotedInc []uint64
	syncReq     []bool // shadow asked its primary for a state snapshot
	changed     chan struct{}

	// Flip-fence bookkeeping for mid-run shadow registrations. A
	// replacement shadow joins the mirrored streams mid-flight: each
	// sender flips from single- to double-endpoint routing at an
	// arbitrary point in its sequence stream, and anything it sent
	// before the flip exists only as an in-flight copy toward the
	// acting primary. The primary must not harvest the sync snapshot
	// until all of that pre-flip traffic has landed — otherwise the
	// replacement's stream has a sequence gap covered by neither the
	// snapshot nor its own endpoint. incGen/shadowInc number the
	// registrations; fenceInc/fenceSeq record, per (rank, sender), the
	// last pre-flip sequence number each sender acknowledged.
	incGen    uint64
	shadowInc []uint64
	fenceInc  [][]uint64
	fenceSeq  [][]uint64
}

// NewRegistry creates an active registry for n ranks with no
// endpoints registered yet.
func NewRegistry(n int) *Registry {
	r := &Registry{
		n:           n,
		active:      true,
		prim:        make([]transport.Addr, n),
		shad:        make([]transport.Addr, n),
		hasPrim:     make([]bool, n),
		hasShad:     make([]bool, n),
		expectShad:  make([]bool, n),
		synced:      make([]bool, n),
		promoted:    make([]bool, n),
		promotedInc: make([]uint64, n),
		syncReq:     make([]bool, n),
		changed:     make(chan struct{}),
		shadowInc:   make([]uint64, n),
		fenceInc:    make([][]uint64, n),
		fenceSeq:    make([][]uint64, n),
	}
	for i := range r.fenceInc {
		r.fenceInc[i] = make([]uint64, n)
		r.fenceSeq[i] = make([]uint64, n)
	}
	for i := range r.expectShad {
		r.expectShad[i] = true // every launch rank starts with a shadow
	}
	return r
}

// N returns the rank count.
func (r *Registry) N() int { return r.n }

func (r *Registry) bump() {
	close(r.changed)
	r.changed = make(chan struct{})
}

// SetPrimary registers (or replaces) the primary endpoint of rank.
func (r *Registry) SetPrimary(rank int, addr transport.Addr) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.prim[rank] = addr
	r.hasPrim[rank] = true
	r.bump()
}

// SetShadow registers (or replaces) the shadow endpoint of rank. A
// launch-time shadow starts from the same initial state as its
// primary and is synced (promotable) immediately; a re-provisioned
// replacement (needSync) must first pull a state snapshot from its
// primary and is held un-promotable until MarkSynced. The returned
// incarnation identifies this registration: the process keeps it and
// presents it to PromotedSelf after a later promotion.
func (r *Registry) SetShadow(rank int, addr transport.Addr, needSync bool) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.shad[rank] = addr
	r.hasShad[rank] = true
	r.expectShad[rank] = true
	r.synced[rank] = !needSync
	r.syncReq[rank] = needSync
	if needSync {
		// Mid-run registration: advance the incarnation so every sender
		// re-acknowledges its flip fence (stale acks are keyed by the
		// old incarnation and ignored). Launch shadows stay at
		// incarnation zero — senders mirror from their first message,
		// so there is no pre-flip traffic to fence.
		r.shadowInc[rank]++
		r.incGen++
	}
	r.bump()
	return r.shadowInc[rank]
}

// Ready blocks until every rank has both a primary and a shadow
// registered (the replicated analogue of the bootstrap barrier), the
// registry is deactivated, or cancel fires.
func (r *Registry) Ready(cancel <-chan struct{}) error {
	for {
		r.mu.Lock()
		if !r.active {
			r.mu.Unlock()
			return ErrInactive
		}
		done := true
		for i := 0; i < r.n; i++ {
			if !r.hasPrim[i] || (r.expectShad[i] && !r.hasShad[i]) {
				done = false
				break
			}
		}
		ch := r.changed
		r.mu.Unlock()
		if done {
			return nil
		}
		select {
		case <-ch:
		case <-cancel:
			return ErrCancelled
		}
	}
}

// Lookup resolves rank to its current primary and shadow endpoints.
// ok is false once the registry is deactivated (callers fall back to
// the generation's plain routing table). The shadow address is
// transport.NilAddr while the rank runs unprotected (shadow lost,
// replacement not yet registered).
func (r *Registry) Lookup(rank int) (prim, shad transport.Addr, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.active || rank < 0 || rank >= r.n || !r.hasPrim[rank] {
		return transport.NilAddr, transport.NilAddr, false
	}
	prim = r.prim[rank]
	if r.hasShad[rank] {
		shad = r.shad[rank]
	} else {
		shad = transport.NilAddr
	}
	return prim, shad, true
}

// Promote flips rank's routing to its shadow: the shadow endpoint
// becomes the primary and the rank runs unprotected until a
// replacement shadow registers. It fails if the registry is inactive,
// no shadow is registered, or the shadow never finished syncing —
// the caller must then fall back to rollback recovery.
func (r *Registry) Promote(rank int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.active || !r.hasShad[rank] || !r.synced[rank] {
		return false
	}
	r.prim[rank] = r.shad[rank]
	r.hasShad[rank] = false
	r.expectShad[rank] = false
	r.shad[rank] = transport.NilAddr
	r.synced[rank] = false
	r.syncReq[rank] = false
	r.promoted[rank] = true
	r.promotedInc[rank] = r.shadowInc[rank]
	r.bump()
	return true
}

// Promoted reports whether rank's current primary is a promoted
// shadow. It keeps answering after Deactivate: a promoted shadow
// must keep acting as the primary through a later degrade.
func (r *Registry) Promoted(rank int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.promoted[rank]
}

// PromotedSelf reports whether the shadow registration identified by
// inc is the one whose promotion made it rank's acting primary. A
// replacement shadow provisioned on the same seat after the promotion
// carries a newer incarnation and is not the acting primary — it must
// keep behaving as a shadow even though Promoted(rank) is true.
func (r *Registry) PromotedSelf(rank int, inc uint64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.promoted[rank] && r.promotedInc[rank] == inc
}

// DropShadow removes rank's shadow endpoint (its node died); the rank
// keeps running unprotected until a replacement registers.
func (r *Registry) DropShadow(rank int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hasShad[rank] = false
	r.expectShad[rank] = false
	r.shad[rank] = transport.NilAddr
	r.synced[rank] = false
	r.syncReq[rank] = false
	r.bump()
}

// TakeSyncRequest returns (and clears) a pending state-snapshot
// request from rank's re-provisioned shadow. The primary polls this
// at the top of each Loop.
func (r *Registry) TakeSyncRequest(rank int) (transport.Addr, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.active || !r.syncReq[rank] || !r.hasShad[rank] {
		return transport.NilAddr, false
	}
	r.syncReq[rank] = false
	return r.shad[rank], true
}

// SyncPending reports whether rank's shadow has an outstanding
// state-snapshot request, without consuming it — the primary checks
// this before its (possibly deferred) fence wait.
func (r *Registry) SyncPending(rank int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.active && r.syncReq[rank] && r.hasShad[rank]
}

// LookupInc is Lookup plus rank's shadow incarnation, read atomically:
// a sender that observes a new incarnation must acknowledge its flip
// fence (AckShadow) before the first send it mirrors to the new
// endpoint.
func (r *Registry) LookupInc(rank int) (prim, shad transport.Addr, inc uint64, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.active || rank < 0 || rank >= r.n || !r.hasPrim[rank] {
		return transport.NilAddr, transport.NilAddr, 0, false
	}
	prim = r.prim[rank]
	if r.hasShad[rank] {
		shad = r.shad[rank]
	} else {
		shad = transport.NilAddr
	}
	return prim, shad, r.shadowInc[rank], true
}

// ShadowGen returns a counter that advances whenever ANY rank's shadow
// incarnation does — a cheap change detector for the per-Loop ack
// sweep (procs rescan the per-rank incarnations only when it moves).
func (r *Registry) ShadowGen() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.incGen
}

// ShadowInc returns rank's current shadow incarnation: zero for the
// launch registration, advancing once per mid-run replacement.
func (r *Registry) ShadowInc(rank int) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if rank < 0 || rank >= r.n {
		return 0
	}
	return r.shadowInc[rank]
}

// AckShadow records a sender's flip fence for incarnation inc of
// rank's shadow: seq is the last sequence number this copy of the
// sender put on the wire toward rank's pair BEFORE it began mirroring
// to the replacement endpoint. Both copies of a sender share one slot;
// the minimum fence wins, which is safe because each copy's mirrored
// stream covers everything above its own fence — the union therefore
// covers everything above the minimum.
func (r *Registry) AckShadow(rank, sender int, inc, seq uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if rank < 0 || rank >= r.n || sender < 0 || sender >= r.n {
		return
	}
	if inc != r.shadowInc[rank] {
		return // stale: a newer replacement superseded this flip
	}
	if r.fenceInc[rank][sender] == inc {
		if seq < r.fenceSeq[rank][sender] {
			r.fenceSeq[rank][sender] = seq
		}
		return
	}
	r.fenceInc[rank][sender] = inc
	r.fenceSeq[rank][sender] = seq
}

// SyncFences returns the per-sender flip fences for rank's current
// shadow incarnation, or ok=false while some sender rank has not
// acknowledged the flip yet. The acting primary defers the snapshot
// harvest until its arrival watermarks cover every fence: at that
// point all pre-flip traffic has landed here, so the snapshot
// (segments + watermarks + unconsumed queue) covers the replacement's
// entire pre-mirror prefix and its direct streams splice in gap-free.
func (r *Registry) SyncFences(rank int) ([]uint64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if rank < 0 || rank >= r.n {
		return nil, false
	}
	cur := r.shadowInc[rank]
	fences := make([]uint64, r.n)
	for s := 0; s < r.n; s++ {
		if s == rank {
			continue // a rank does not message itself over the transport
		}
		if r.fenceInc[rank][s] != cur {
			return nil, false
		}
		fences[s] = r.fenceSeq[rank][s]
	}
	return fences, true
}

// MarkSynced flags rank's shadow as promotable (its state snapshot
// has been applied).
func (r *Registry) MarkSynced(rank int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.hasShad[rank] {
		r.synced[rank] = true
	}
	r.bump()
}

// ShadowState reports rank's shadow bookkeeping atomically:
// registered, synced (promotable), and whether a state-snapshot
// request is still pending (taken requests report reqPending=false —
// the snapshot is in flight). The resize fence uses it to decide
// which shadows must park as observers before a view change commits.
func (r *Registry) ShadowState(rank int) (registered, synced, reqPending bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if rank < 0 || rank >= r.n || !r.active {
		return false, false, false
	}
	return r.hasShad[rank], r.synced[rank], r.syncReq[rank]
}

// BeginEpoch re-keys the registry for a new world size at a
// view-change fence. Every endpoint registration is cleared — all
// surviving procs rebuild their generations across the fence and
// re-register, and Ready blocks until the whole new world has —
// while the identity state that must survive the fence is kept:
// promotion flags (a promoted shadow keeps acting as primary) and
// shadow incarnations (resized, prefix preserved, so flip-fence acks
// from before the fence stay stale-keyed rather than colliding).
func (r *Registry) BeginEpoch(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.active {
		return
	}
	promoted := make([]bool, n)
	promotedInc := make([]uint64, n)
	shadowInc := make([]uint64, n)
	copy(promoted, r.promoted)
	copy(promotedInc, r.promotedInc)
	copy(shadowInc, r.shadowInc)
	expect := make([]bool, n)
	for i := 0; i < n; i++ {
		if i < len(r.hasShad) {
			// A surviving shadow crosses the fence only if it was synced
			// (parked as a fence observer); anything else re-registers on
			// its own schedule and must not gate Ready.
			expect[i] = r.hasShad[i] && r.synced[i]
		} else {
			expect[i] = true // grow joiners launch with a shadow
		}
	}
	r.n = n
	r.prim = make([]transport.Addr, n)
	r.shad = make([]transport.Addr, n)
	r.hasPrim = make([]bool, n)
	r.hasShad = make([]bool, n)
	r.expectShad = expect
	r.synced = make([]bool, n)
	r.syncReq = make([]bool, n)
	r.promoted = promoted
	r.promotedInc = promotedInc
	r.shadowInc = shadowInc
	r.fenceInc = make([][]uint64, n)
	r.fenceSeq = make([][]uint64, n)
	for i := range r.fenceInc {
		r.fenceInc[i] = make([]uint64, n)
		r.fenceSeq[i] = make([]uint64, n)
	}
	r.bump()
}

// Active reports whether replicated routing is still in force.
func (r *Registry) Active() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.active
}

// Deactivate permanently flips the job to plain routing (a pair was
// lost in one event — replication cannot mask it) and wakes any
// Ready waiter with ErrInactive.
func (r *Registry) Deactivate() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.active {
		return
	}
	r.active = false
	r.bump()
}
