// Package model implements the paper's analytic performance models:
//
//   - the XOR checkpoint/restart time model of §V-B,
//   - Vaidya's optimal checkpoint interval used by FMI_Loop's MTBF
//     auto-tuning (§III-B),
//   - the 24-hour continuous-run probability of Fig 16, and
//   - the multilevel C/R efficiency model of Fig 17.
package model

import (
	"math"
	"time"
)

// SierraSpec captures Table II: the machine parameters the paper's
// models are evaluated with.
type SierraSpec struct {
	ComputeNodes int
	TotalNodes   int
	CoresPerNode int
	MemoryBytes  float64
	MemBW        float64 // peak CPU memory bandwidth, bytes/s
	NetBW        float64 // InfiniBand QDR effective bandwidth, bytes/s
}

// Sierra returns the paper's Table II values (QDR IB effective
// point-to-point bandwidth ≈ 3.2 GB/s, matching Table III).
func Sierra() SierraSpec {
	return SierraSpec{
		ComputeNodes: 1856,
		TotalNodes:   1944,
		CoresPerNode: 12,
		MemoryBytes:  24e9,
		MemBW:        32e9,
		NetBW:        3.2e9,
	}
}

// XORCheckpointTime models the level-1 checkpoint time for s bytes per
// node with XOR group size g (§V-B):
//
//	s/mem_bw + (s + s/(g-1))/net_bw + s/mem_bw
//
// (one memcpy to capture, the ring transfer of data plus the parity
// chunk, and the XOR pass, which is memory-bound).
func XORCheckpointTime(s float64, g int, memBW, netBW float64) float64 {
	if g < 2 {
		return s / memBW
	}
	return s/memBW + (s+s/float64(g-1))/netBW + s/memBW
}

// XORRestartTime models the restart: the decode mirrors the encode and
// the restarted rank then gathers its reconstructed chunks, adding
// s/net_bw (§V-B).
func XORRestartTime(s float64, g int, memBW, netBW float64) float64 {
	return XORCheckpointTime(s, g, memBW, netBW) + s/netBW
}

// ParityOverhead returns the parity chunk size as a fraction of the
// checkpoint (§V-C reports 6.6% at group size 16).
func ParityOverhead(g int) float64 {
	if g < 2 {
		return 0
	}
	return 1 / float64(g-1)
}

// VaidyaInterval returns the checkpoint interval that minimises
// expected run time for checkpoint overhead c and failure rate 1/mtbf,
// using Vaidya's first-order optimum (equivalently Young's formula)
// t = sqrt(2·c·MTBF). The interval is the *compute* time between
// checkpoints, excluding the checkpoint itself.
func VaidyaInterval(ckptCost, mtbf time.Duration) time.Duration {
	if ckptCost <= 0 || mtbf <= 0 {
		return 0
	}
	c := ckptCost.Seconds()
	m := mtbf.Seconds()
	t := math.Sqrt(2 * c * m)
	return time.Duration(t * float64(time.Second))
}

// VaidyaIterations converts the Vaidya interval into a loop-iteration
// count given the measured per-iteration compute time.
func VaidyaIterations(ckptCost, mtbf, iterTime time.Duration) int {
	if iterTime <= 0 {
		return 1
	}
	n := int(VaidyaInterval(ckptCost, mtbf) / iterTime)
	if n < 1 {
		n = 1
	}
	return n
}

// SurvivalProb is the probability that a job runs for duration T
// without an unrecoverable failure, with failures Poisson at rate
// lambda (per hour): e^(−λT).
func SurvivalProb(lambdaPerHour, hours float64) float64 {
	return math.Exp(-lambdaPerHour * hours)
}

// CoastalRates holds the LLNL Coastal failure analysis used by
// Figs 16–17: level-1 failures (recoverable by XOR) with MTBF 130 h
// and level-2 failures (unrecoverable without the PFS) with MTBF 650 h.
type CoastalRates struct {
	Lambda1PerHour float64 // 1/130
	Lambda2PerHour float64 // 1/650
}

// Coastal returns the paper's observed base rates.
func Coastal() CoastalRates {
	return CoastalRates{Lambda1PerHour: 1.0 / 130.0, Lambda2PerHour: 1.0 / 650.0}
}

// Fig16Point computes the two Fig 16 series at one failure-scale
// factor: the probability of running 24 h continuously with FMI
// (only level-2 failures terminate the run) and without FMI (any
// failure terminates the run).
func Fig16Point(r CoastalRates, scale float64) (withFMI, withoutFMI float64) {
	l1 := r.Lambda1PerHour * scale
	l2 := r.Lambda2PerHour * scale
	withFMI = SurvivalProb(l2, 24)
	withoutFMI = SurvivalProb(l1+l2, 24)
	return withFMI, withoutFMI
}

// DalyExpectedTime is the first-order Markov (Daly) expected wall time
// to complete t seconds of useful work followed by a checkpoint of
// cost c, under Poisson failures at rate lambda (per second) with
// restart cost r; each failure loses the in-progress segment:
//
//	E = (1/λ + r)·(e^{λ(t+c)} − 1)
func DalyExpectedTime(t, c, r, lambda float64) float64 {
	if lambda <= 0 {
		return t + c
	}
	return (1/lambda + r) * (math.Exp(lambda*(t+c)) - 1)
}

// DalyOptimal returns the segment length minimising expected time per
// unit of useful work, with the resulting efficiency t/E(t).
func DalyOptimal(c, r, lambda float64) (t, eff float64) {
	if lambda <= 0 {
		return math.Inf(1), 1
	}
	best, bestT := 0.0, 0.0
	for _, cand := range logspace(1e-2, 100/lambda, 400) {
		e := cand / DalyExpectedTime(cand, c, r, lambda)
		if e > best {
			best, bestT = e, cand
		}
	}
	return bestT, best
}

// InflatedTime is the expected time to complete an uninterruptible
// operation of length d when failures at rate lambda force it to
// restart from scratch: (e^{λd} − 1)/λ.
func InflatedTime(d, lambda float64) float64 {
	if lambda <= 0 || d <= 0 {
		return d
	}
	return (math.Exp(lambda*d) - 1) / lambda
}

// MultilevelParams parameterise the Fig 17 efficiency model.
type MultilevelParams struct {
	Lambda1PerHour float64 // rate of failures recoverable at level 1
	Lambda2PerHour float64 // rate of failures needing level 2
	C1Seconds      float64 // level-1 checkpoint cost
	C2Seconds      float64 // level-2 checkpoint cost (asynchronous drain charged as overhead)
	R1Seconds      float64 // level-1 restart cost
	R2Seconds      float64 // level-2 restart cost
}

// Efficiency evaluates the expected fraction of time spent on useful
// computation for level-1 interval t1 and level-2 interval t2 (both in
// seconds of compute between checkpoints), using a renewal
// approximation: per unit of useful time the job pays checkpoint
// overhead c1/t1 + c2/t2 and, at each failure, the restart cost plus
// an average of half an interval of lost work.
func (p MultilevelParams) Efficiency(t1, t2 float64) float64 {
	if t1 <= 0 || t2 <= 0 {
		return 0
	}
	l1 := p.Lambda1PerHour / 3600
	l2 := p.Lambda2PerHour / 3600
	overhead := p.C1Seconds/t1 + p.C2Seconds/t2 +
		l1*(p.R1Seconds+t1/2) +
		l2*(p.R2Seconds+t2/2)
	if overhead < 0 {
		return 0
	}
	return 1 / (1 + overhead)
}

// OptimalEfficiency searches the (t1, t2) interval space and returns
// the best achievable efficiency with the optimising intervals. The
// search uses a log-spaced grid refined around the best cell; the
// level-2 interval is constrained to a multiple of the level-1
// interval (SCR schedules level-2 checkpoints on level-1 boundaries).
func (p MultilevelParams) OptimalEfficiency() (eff, t1, t2 float64) {
	best := -1.0
	bestT1, bestK := 0.0, 1
	for _, t1c := range logspace(1, 1e6, 120) {
		for k := 1; k <= 4096; k *= 2 {
			e := p.Efficiency(t1c, t1c*float64(k))
			if e > best {
				best, bestT1, bestK = e, t1c, k
			}
		}
	}
	// Refine t1 around the winner.
	startK := bestK / 2
	if startK < 1 {
		startK = 1
	}
	endK := bestK * 2
	for _, t1c := range logspace(bestT1/4, bestT1*4, 200) {
		for k := startK; k <= endK; k *= 2 {
			e := p.Efficiency(t1c, t1c*float64(k))
			if e > best {
				best, bestT1, bestK = e, t1c, k
			}
		}
	}
	return best, bestT1, bestT1 * float64(bestK)
}

func logspace(lo, hi float64, n int) []float64 {
	if lo <= 0 {
		lo = 1e-3
	}
	out := make([]float64, n)
	llo, lhi := math.Log(lo), math.Log(hi)
	for i := range out {
		out[i] = math.Exp(llo + (lhi-llo)*float64(i)/float64(n-1))
	}
	return out
}

// Fig17Config fixes the machine-side constants of the Fig 17 model.
type Fig17Config struct {
	Nodes        int     // Coastal-like cluster size
	PFSWriteBW   float64 // bytes/s aggregate (paper: 50 GB/s Lustre)
	MemBW, NetBW float64 // for the level-1 model
	GroupSize    int
}

// DefaultFig17Config matches the paper's setting.
func DefaultFig17Config() Fig17Config {
	return Fig17Config{Nodes: 1088, PFSWriteBW: 50e9, MemBW: 32e9, NetBW: 3.2e9, GroupSize: 16}
}

// HierarchicalEfficiency composes the two levels with Daly's exact
// expected-time model:
//
//  1. The level-1 loop runs at its Daly-optimal interval against
//     level-1 failures, yielding an inner efficiency eff1.
//  2. A level-2 checkpoint write is an uninterruptible operation
//     exposed to level-1 failures (a node failure rolls the job back
//     to a level-1 checkpoint, abandoning the in-progress PFS write),
//     so its cost inflates to InflatedTime(C2, λ1).
//  3. Level-2 recovery reads the PFS with *no* level-1 protection
//     (the node-local checkpoints died with the job), so any failure
//     restarts it: InflatedTime(R2, λ1+λ2).
//  4. The outer loop delivers useful work at rate eff1 and picks its
//     Daly-optimal level-2 interval against level-2 failures.
//
// This reproduces the ordering and collapse of the paper's Fig 17; the
// paper's full Markov model (refs [4], [16]) compounds recovery
// failures further and bottoms out below ours at the extreme corner
// (documented in EXPERIMENTS.md).
func (p MultilevelParams) HierarchicalEfficiency() float64 {
	l1 := p.Lambda1PerHour / 3600
	l2 := p.Lambda2PerHour / 3600
	_, eff1 := DalyOptimal(p.C1Seconds, p.R1Seconds, l1)
	if eff1 <= 0 {
		return 0
	}
	c2eff := InflatedTime(p.C2Seconds, l1)
	r2eff := InflatedTime(p.R2Seconds, l1+l2)
	if l2 <= 0 {
		// No level-2 failures: only the periodic flush cost matters;
		// flush as rarely as you like, so eff1 bounds the efficiency.
		return eff1
	}
	best := 0.0
	for _, t2 := range logspace(1, 1000/l2, 500) {
		wall := DalyExpectedTime(t2/eff1, c2eff, r2eff, l2)
		if e := t2 / wall; e > best {
			best = e
		}
	}
	return best
}

// Fig17Point computes the optimal multilevel efficiency at one scale
// factor. ckptPerNode is bytes per node (1 or 10 GB in the paper);
// scaleL2Rate selects the "L1&2" series (both rates scale) versus the
// "L1" series (only level-1 failures scale). Level-2 cost also scales
// with the factor (the paper: "we only increase level-2 C/R time" as
// systems grow).
func Fig17Point(cfg Fig17Config, base CoastalRates, ckptPerNode float64, scale float64, scaleL2Rate bool) float64 {
	c1 := XORCheckpointTime(ckptPerNode, cfg.GroupSize, cfg.MemBW, cfg.NetBW)
	r1 := XORRestartTime(ckptPerNode, cfg.GroupSize, cfg.MemBW, cfg.NetBW)
	aggregate := ckptPerNode * float64(cfg.Nodes)
	c2base := aggregate / cfg.PFSWriteBW
	r2base := aggregate / cfg.PFSWriteBW
	p := MultilevelParams{
		Lambda1PerHour: base.Lambda1PerHour * scale,
		Lambda2PerHour: base.Lambda2PerHour,
		C1Seconds:      c1,
		C2Seconds:      c2base * scale,
		R1Seconds:      r1,
		R2Seconds:      r2base * scale,
	}
	if scaleL2Rate {
		p.Lambda2PerHour = base.Lambda2PerHour * scale
	}
	return p.HierarchicalEfficiency()
}
