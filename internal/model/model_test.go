package model

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestXORCheckpointTimeDecreasesWithGroupSize(t *testing.T) {
	s := Sierra()
	const bytes = 6e9 // paper: 6 GB/node
	prev := math.Inf(1)
	for _, g := range []int{2, 4, 8, 16, 32, 64} {
		ct := XORCheckpointTime(bytes, g, s.MemBW, s.NetBW)
		if ct >= prev {
			t.Fatalf("g=%d: checkpoint time %v did not decrease", g, ct)
		}
		prev = ct
	}
}

func TestXORTimeSaturates(t *testing.T) {
	// Paper §V-C: C/R time starts to saturate around group size 16 —
	// the marginal gain from 16→64 is much smaller than from 2→16.
	s := Sierra()
	const bytes = 6e9
	gain2to16 := XORCheckpointTime(bytes, 2, s.MemBW, s.NetBW) - XORCheckpointTime(bytes, 16, s.MemBW, s.NetBW)
	gain16to64 := XORCheckpointTime(bytes, 16, s.MemBW, s.NetBW) - XORCheckpointTime(bytes, 64, s.MemBW, s.NetBW)
	if gain16to64 > gain2to16/10 {
		t.Fatalf("no saturation: gain 2→16 = %v, 16→64 = %v", gain2to16, gain16to64)
	}
}

func TestXORTimesMatchPaperMagnitude(t *testing.T) {
	// Fig 10: with 6 GB/node, checkpoint time falls from ~8 s (g=2) to
	// ~2.5 s (g=16) on Sierra's 32 GB/s memory and QDR IB.
	s := Sierra()
	ct2 := XORCheckpointTime(6e9, 2, s.MemBW, s.NetBW)
	ct16 := XORCheckpointTime(6e9, 16, s.MemBW, s.NetBW)
	if ct2 < 3 || ct2 > 9 {
		t.Fatalf("g=2 checkpoint time = %.2f s, want 3–9 s", ct2)
	}
	if ct16 < 1.5 || ct16 > 4 {
		t.Fatalf("g=16 checkpoint time = %.2f s, want 1.5–4 s", ct16)
	}
}

func TestRestartSlowerThanCheckpoint(t *testing.T) {
	s := Sierra()
	for _, g := range []int{2, 8, 16, 64} {
		c := XORCheckpointTime(6e9, g, s.MemBW, s.NetBW)
		r := XORRestartTime(6e9, g, s.MemBW, s.NetBW)
		if r <= c {
			t.Fatalf("g=%d: restart (%v) not slower than checkpoint (%v)", g, r, c)
		}
	}
}

func TestParityOverheadPaperValue(t *testing.T) {
	// §V-C: parity chunk is 6.6% of the checkpoint at group size 16.
	got := ParityOverhead(16)
	if math.Abs(got-0.0667) > 0.001 {
		t.Fatalf("ParityOverhead(16) = %.4f, want ≈0.066", got)
	}
	if ParityOverhead(1) != 0 {
		t.Fatal("singleton group should have zero overhead")
	}
}

func TestVaidyaInterval(t *testing.T) {
	// sqrt(2 * 1s * 60s) ≈ 10.95 s
	got := VaidyaInterval(time.Second, time.Minute)
	want := math.Sqrt(2*60) * float64(time.Second)
	if math.Abs(float64(got)-want) > float64(10*time.Millisecond) {
		t.Fatalf("VaidyaInterval = %v", got)
	}
	if VaidyaInterval(0, time.Minute) != 0 {
		t.Fatal("zero cost should return zero")
	}
}

func TestVaidyaMonotonic(t *testing.T) {
	f := func(cMs, mMs uint16) bool {
		c := time.Duration(cMs+1) * time.Millisecond
		m := time.Duration(mMs+1) * time.Millisecond
		// Interval grows with both MTBF and checkpoint cost.
		return VaidyaInterval(c, 2*m) >= VaidyaInterval(c, m) &&
			VaidyaInterval(2*c, m) >= VaidyaInterval(c, m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVaidyaIterations(t *testing.T) {
	// ckpt 0.1 s, MTBF 60 s -> interval ~3.46 s; at 0.5 s/iter -> 6.
	n := VaidyaIterations(100*time.Millisecond, time.Minute, 500*time.Millisecond)
	if n < 5 || n > 8 {
		t.Fatalf("iterations = %d, want ~6-7", n)
	}
	if VaidyaIterations(time.Second, time.Hour, 0) != 1 {
		t.Fatal("zero iter time should clamp to 1")
	}
	// Interval never below one iteration.
	if VaidyaIterations(time.Nanosecond, time.Nanosecond, time.Hour) != 1 {
		t.Fatal("clamp to 1 broken")
	}
}

func TestSurvivalProb(t *testing.T) {
	if p := SurvivalProb(0, 24); p != 1 {
		t.Fatalf("no failures should survive with p=1, got %f", p)
	}
	// λ=1/24 per hour over 24h: e^-1.
	if p := SurvivalProb(1.0/24, 24); math.Abs(p-math.Exp(-1)) > 1e-9 {
		t.Fatalf("p = %f", p)
	}
}

func TestFig16PaperClaims(t *testing.T) {
	r := Coastal()
	// "With FMI, 80% of executions can run for 24 hours with even 6×
	// higher failure rates."
	withFMI, _ := Fig16Point(r, 6)
	if withFMI < 0.78 {
		t.Fatalf("P(24h) with FMI at 6x = %.3f, want >= ~0.80", withFMI)
	}
	// "At failure rates 10× higher than today's, 70% of FMI executions
	// can run continuously for 24 hours, while only 10% of non-FMI
	// executions can do the same."
	withFMI10, without10 := Fig16Point(r, 10)
	if withFMI10 < 0.65 || withFMI10 > 0.75 {
		t.Fatalf("P with FMI at 10x = %.3f, want ~0.70", withFMI10)
	}
	if without10 > 0.15 {
		t.Fatalf("P without FMI at 10x = %.3f, want ~0.10", without10)
	}
	// FMI dominates at every scale.
	for s := 1.0; s <= 50; s += 7 {
		w, wo := Fig16Point(r, s)
		if w < wo {
			t.Fatalf("scale %.0f: FMI (%.3f) below non-FMI (%.3f)", s, w, wo)
		}
	}
}

func TestEfficiencyBounds(t *testing.T) {
	p := MultilevelParams{Lambda1PerHour: 0.1, Lambda2PerHour: 0.01, C1Seconds: 2, C2Seconds: 100, R1Seconds: 3, R2Seconds: 100}
	e := p.Efficiency(100, 1000)
	if e <= 0 || e >= 1 {
		t.Fatalf("efficiency = %f, want in (0,1)", e)
	}
	if p.Efficiency(0, 100) != 0 || p.Efficiency(100, 0) != 0 {
		t.Fatal("degenerate intervals should give 0")
	}
}

func TestOptimalEfficiencyBeatsArbitraryPoints(t *testing.T) {
	p := MultilevelParams{Lambda1PerHour: 0.5, Lambda2PerHour: 0.05, C1Seconds: 1, C2Seconds: 60, R1Seconds: 2, R2Seconds: 120}
	best, t1, t2 := p.OptimalEfficiency()
	if t2 < t1 {
		t.Fatalf("optimal t2 (%f) below t1 (%f)", t2, t1)
	}
	for _, tc := range []struct{ t1, t2 float64 }{{10, 10}, {100, 1000}, {1000, 10000}, {30, 300}} {
		if e := p.Efficiency(tc.t1, tc.t2); e > best+1e-9 {
			t.Fatalf("grid point (%v) beats 'optimal' (%v)", e, best)
		}
	}
}

func TestFig17Shape(t *testing.T) {
	cfg := DefaultFig17Config()
	base := Coastal()
	// Efficiency decreases as failure rates scale up.
	prev := 1.0
	for _, s := range []float64{1, 10, 25, 50} {
		e := Fig17Point(cfg, base, 10e9, s, true)
		if e > prev+1e-9 {
			t.Fatalf("scale %.0f: efficiency %f increased", s, e)
		}
		prev = e
	}
	// Paper: with both rates scaled 50× and 10 GB/node, efficiency
	// collapses (their Markov model reports <2%; our hierarchical Daly
	// model bottoms out near 20% — see EXPERIMENTS.md); with only L1
	// scaled and 1 GB/node it stays high.
	worst := Fig17Point(cfg, base, 10e9, 50, true)
	if worst > 0.30 {
		t.Fatalf("L1&2 10GB at 50x = %.3f, want a collapse below 0.30", worst)
	}
	bestCase := Fig17Point(cfg, base, 1e9, 50, false)
	if bestCase < 0.90 {
		t.Fatalf("L1-only 1GB at 50x = %.3f, want fairly high", bestCase)
	}
	if worst > bestCase/3 {
		t.Fatalf("collapse not pronounced: worst %.3f vs best %.3f", worst, bestCase)
	}
	// Bigger checkpoints are never better.
	if Fig17Point(cfg, base, 10e9, 25, true) > Fig17Point(cfg, base, 1e9, 25, true)+1e-9 {
		t.Fatal("10GB/node outperformed 1GB/node")
	}
	// Scaling both rates is never better than scaling only L1.
	if Fig17Point(cfg, base, 1e9, 25, true) > Fig17Point(cfg, base, 1e9, 25, false)+1e-9 {
		t.Fatal("L1&2 outperformed L1-only")
	}
}

func TestSierraSpec(t *testing.T) {
	s := Sierra()
	if s.ComputeNodes != 1856 || s.TotalNodes != 1944 || s.CoresPerNode != 12 {
		t.Fatalf("Sierra spec wrong: %+v", s)
	}
	if s.MemBW != 32e9 {
		t.Fatalf("MemBW = %g", s.MemBW)
	}
}
