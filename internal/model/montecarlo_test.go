package model

import (
	"math"
	"testing"
	"time"
)

func TestSimulateSurvivalMatchesAnalytic(t *testing.T) {
	r := Coastal()
	for _, scale := range []float64{1, 6, 10, 25} {
		wantFMI, wantNo := Fig16Point(r, scale)
		gotFMI, gotNo := SimulateSurvival(r, scale, 24, 200000, 42)
		if math.Abs(gotFMI-wantFMI) > 0.01 {
			t.Fatalf("scale %.0f: MC with-FMI %.3f vs analytic %.3f", scale, gotFMI, wantFMI)
		}
		if math.Abs(gotNo-wantNo) > 0.01 {
			t.Fatalf("scale %.0f: MC without-FMI %.3f vs analytic %.3f", scale, gotNo, wantNo)
		}
	}
}

func TestSimulateRunEfficiencySanity(t *testing.T) {
	// No failures within any plausible horizon: efficiency is just the
	// checkpoint overhead.
	eff := SimulateRunEfficiency(100, 10, 1, 5, time.Duration(1e18), 50, 1)
	// 100s work + 9 checkpoints of 1s => 100/109 (the final segment
	// needs no checkpoint).
	want := 100.0 / 109.0
	if math.Abs(eff-want) > 0.02 {
		t.Fatalf("failure-free efficiency = %.3f, want %.3f", eff, want)
	}
	// With failures, efficiency drops.
	withFail := SimulateRunEfficiency(100, 10, 1, 5, 50*time.Second, 2000, 2)
	if withFail >= eff {
		t.Fatalf("failures did not reduce efficiency: %.3f vs %.3f", withFail, eff)
	}
	if withFail < 0.2 {
		t.Fatalf("efficiency implausibly low: %.3f", withFail)
	}
}

func TestSimulateRunAgreesWithDaly(t *testing.T) {
	// The simulated efficiency should land near the Daly expected-time
	// prediction for matching parameters.
	const (
		interval = 20.0
		ckpt     = 1.0
		restart  = 3.0
	)
	mtbf := 200 * time.Second
	lambda := 1.0 / mtbf.Seconds()
	sim := SimulateRunEfficiency(2000, interval, ckpt, restart, mtbf, 3000, 7)
	daly := interval / DalyExpectedTime(interval, ckpt, restart, lambda)
	if math.Abs(sim-daly)/daly > 0.1 {
		t.Fatalf("simulated %.3f vs Daly %.3f differ by >10%%", sim, daly)
	}
}
