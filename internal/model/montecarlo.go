package model

import (
	"math/rand"
	"time"
)

// SimulateSurvival cross-validates the Fig 16 analytic curves by
// Monte-Carlo simulation: draw Poisson failure sequences at the given
// per-hour rates and count the fraction of trials in which no
// *terminating* failure lands within the window. With FMI, level-1
// failures are absorbed (recovery cost is negligible at these
// timescales, paper §VI-B) and only level-2 failures terminate;
// without FMI any failure does.
func SimulateSurvival(r CoastalRates, scale float64, hours float64, trials int, seed int64) (withFMI, withoutFMI float64) {
	rng := rand.New(rand.NewSource(seed))
	l1 := r.Lambda1PerHour * scale
	l2 := r.Lambda2PerHour * scale
	surviveFMI, surviveAny := 0, 0
	for t := 0; t < trials; t++ {
		// First level-2 arrival decides the FMI outcome.
		t2 := rng.ExpFloat64() / l2
		if t2 >= hours {
			surviveFMI++
		}
		// First arrival of either class decides the non-FMI outcome.
		t1 := rng.ExpFloat64() / l1
		if t1 >= hours && t2 >= hours {
			surviveAny++
		}
	}
	return float64(surviveFMI) / float64(trials), float64(surviveAny) / float64(trials)
}

// SimulateRunEfficiency estimates, by discrete-event simulation, the
// efficiency of a checkpointed run under Poisson failures — an
// independent check on the renewal/Daly formulas. The job needs
// 'work' seconds of useful compute; it checkpoints every interval
// seconds at cost ckpt; each failure costs the restart plus the work
// since the last checkpoint.
func SimulateRunEfficiency(work, interval, ckpt, restart float64, mtbf time.Duration, trials int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	lambda := 1.0 / mtbf.Seconds()
	var totalWall float64
	for t := 0; t < trials; t++ {
		var wall, done, sinceCkpt float64
		nextFail := rng.ExpFloat64() / lambda
		for done < work {
			// Time to the next event: completing the current segment
			// or failing first.
			segRemaining := interval - sinceCkpt
			if remaining := work - done; remaining < segRemaining {
				segRemaining = remaining
			}
			if wall+segRemaining < nextFail {
				wall += segRemaining
				done += segRemaining
				sinceCkpt += segRemaining
				if sinceCkpt >= interval && done < work {
					wall += ckpt
					sinceCkpt = 0
				}
				continue
			}
			// Failure strikes mid-segment: lose the work since the
			// last checkpoint, pay the restart.
			progressed := nextFail - wall
			if progressed > 0 {
				done += progressed
				wall = nextFail
			}
			lost := sinceCkpt + progressed
			if lost > done {
				lost = done
			}
			done -= lost
			sinceCkpt = 0
			wall += restart
			nextFail = wall + rng.ExpFloat64()/lambda
		}
		totalWall += wall
	}
	return work * float64(trials) / totalWall
}
