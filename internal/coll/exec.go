package coll

import (
	"fmt"

	"fmi/internal/enc"
)

// Transport is the point-to-point substrate a schedule executes over.
// Send must be eager (copy the payload; block only under backpressure,
// never waiting for the receiver to post) — both the core chan/TCP
// endpoints and the MPI baseline satisfy this, which is what makes a
// round's symmetric exchanges deadlock-free. Errors from either method
// abort the collective and are returned from Exec unwrapped, so the
// core's failure sentinels (e.g. ErrFailureDetected) flow through to
// Loop intact.
type Transport interface {
	Send(peer int, data []byte) error
	Recv(peer int) ([]byte, error)
}

// ReduceFn folds src into acc element-wise; acc and src have equal
// length. It must be commutative and associative: schedules combine
// contributions in tree or ring order, not rank order.
type ReduceFn func(acc, src []byte)

// Exec drives a schedule over tp, mutating blocks in place: sends read
// from the block table, receives overwrite entries, and reduce steps
// fold into them. len(blocks) must equal s.Blocks. op is required only
// when the schedule contains OpRecvReduce steps with blocks; a nil op
// turns those steps into pure synchronisation (payloads discarded),
// which the barrier and agreement schedules rely on.
func Exec(s *Schedule, tp Transport, blocks [][]byte, op ReduceFn) error {
	if len(blocks) != s.Blocks {
		return fmt.Errorf("coll: %s needs %d blocks, got %d", s, s.Blocks, len(blocks))
	}
	permute(blocks, s.InPerm)
	for _, round := range s.Rounds {
		// Post every send of the round first; the eager transport
		// copies the payload, so later reduce steps may mutate the
		// same blocks without corrupting in-flight messages.
		for _, st := range round {
			if st.Op != OpSend {
				continue
			}
			if err := tp.Send(st.Peer, packStep(blocks, st.Blks)); err != nil {
				return err
			}
		}
		for _, st := range round {
			if st.Op == OpSend {
				continue
			}
			data, err := tp.Recv(st.Peer)
			if err != nil {
				return err
			}
			if err := applyRecv(s, blocks, st, data, op); err != nil {
				return err
			}
		}
	}
	permute(blocks, s.OutPerm)
	return nil
}

// packStep builds the wire payload for a send step: no blocks → empty
// payload, one block → the raw block, several → length-prefix packed.
func packStep(blocks [][]byte, blks []int) []byte {
	switch len(blks) {
	case 0:
		return nil
	case 1:
		return blocks[blks[0]]
	}
	parts := make([][]byte, len(blks))
	for i, b := range blks {
		parts[i] = blocks[b]
	}
	return enc.PackSlices(parts)
}

func applyRecv(s *Schedule, blocks [][]byte, st Step, data []byte, op ReduceFn) error {
	if st.Op == OpRecvReduce {
		if len(st.Blks) != 1 {
			return fmt.Errorf("coll: %s: reduce step needs exactly one block, got %d", s, len(st.Blks))
		}
		if op == nil {
			return nil // pure synchronisation (barrier / agreement waves)
		}
		b := st.Blks[0]
		if len(data) != len(blocks[b]) {
			return fmt.Errorf("coll: %s: rank %d received a %d-byte reduce contribution from rank %d, want %d — reductions require equal-length buffers on every rank",
				s, s.Rank, len(data), st.Peer, len(blocks[b]))
		}
		op(blocks[b], data)
		return nil
	}
	switch len(st.Blks) {
	case 0:
		return nil // synchronisation payload, discard
	case 1:
		blocks[st.Blks[0]] = data
		return nil
	}
	parts, err := enc.UnpackSlices(data)
	if err != nil {
		return fmt.Errorf("coll: %s: from rank %d: %w", s, st.Peer, err)
	}
	if len(parts) != len(st.Blks) {
		return fmt.Errorf("coll: %s: rank %d expected %d packed blocks from rank %d, got %d",
			s, s.Rank, len(st.Blks), st.Peer, len(parts))
	}
	for i, b := range st.Blks {
		blocks[b] = parts[i]
	}
	return nil
}

func permute(blocks [][]byte, perm []int) {
	if perm == nil {
		return
	}
	tmp := make([][]byte, len(blocks))
	for i, p := range perm {
		tmp[i] = blocks[p]
	}
	copy(blocks, tmp)
}
