package coll

import (
	"fmt"

	"fmi/internal/enc"
)

// Transport is the point-to-point substrate a schedule executes over.
// Send must be eager (copy the payload; block only under backpressure,
// never waiting for the receiver to post) — both the core chan/TCP
// endpoints and the MPI baseline satisfy this, which is what makes a
// round's symmetric exchanges deadlock-free. Errors from either method
// abort the collective and are returned from Exec unwrapped, so the
// core's failure sentinels (e.g. ErrFailureDetected) flow through to
// Loop intact.
type Transport interface {
	Send(peer int, data []byte) error
	Recv(peer int) ([]byte, error)
}

// Releaser is optionally implemented by transports whose Recv returns
// pooled buffers. Exec type-asserts it and hands back every payload it
// consumes without retaining (reduce contributions, sync barriers);
// payloads installed into the caller's block table are never released.
// Transports without pooling (the MPI baseline, test fakes) simply
// don't implement it.
type Releaser interface {
	Release(buf []byte)
}

// ReduceFn folds src into acc element-wise; acc and src have equal
// length. It must be commutative and associative: schedules combine
// contributions in tree or ring order, not rank order.
type ReduceFn func(acc, src []byte)

// Exec drives a schedule over tp, mutating blocks in place: sends read
// from the block table, receives overwrite entries, and reduce steps
// fold into them. len(blocks) must equal s.Blocks. op is required only
// when the schedule contains OpRecvReduce steps with blocks; a nil op
// turns those steps into pure synchronisation (payloads discarded),
// which the barrier and agreement schedules rely on.
func Exec(s *Schedule, tp Transport, blocks [][]byte, op ReduceFn) error {
	if len(blocks) != s.Blocks {
		return fmt.Errorf("coll: %s needs %d blocks, got %d", s, s.Blocks, len(blocks))
	}
	rel, _ := tp.(Releaser)
	// Pack scratch reused across every multi-block send of the
	// schedule: the eager transport copies the payload before Send
	// returns, so the next step may overwrite it.
	var ex execScratch
	permute(blocks, s.InPerm)
	for _, round := range s.Rounds {
		// Post every send of the round first; the eager transport
		// copies the payload, so later reduce steps may mutate the
		// same blocks without corrupting in-flight messages.
		for _, st := range round {
			if st.Op != OpSend {
				continue
			}
			if err := tp.Send(st.Peer, ex.packStep(blocks, st.Blks)); err != nil {
				return err
			}
		}
		for _, st := range round {
			if st.Op == OpSend {
				continue
			}
			data, err := tp.Recv(st.Peer)
			if err != nil {
				return err
			}
			if err := applyRecv(s, blocks, st, data, op, rel); err != nil {
				return err
			}
		}
	}
	permute(blocks, s.OutPerm)
	return nil
}

// execScratch holds the reusable multi-block packing buffers of one
// Exec invocation.
type execScratch struct {
	buf   []byte
	parts [][]byte
}

// packStep builds the wire payload for a send step: no blocks → empty
// payload, one block → the raw block, several → length-prefix packed
// into the reused scratch (grown once, then allocation-free).
func (ex *execScratch) packStep(blocks [][]byte, blks []int) []byte {
	switch len(blks) {
	case 0:
		return nil
	case 1:
		return blocks[blks[0]]
	}
	if cap(ex.parts) < len(blks) {
		ex.parts = make([][]byte, len(blks))
	}
	parts := ex.parts[:len(blks)]
	for i, b := range blks {
		parts[i] = blocks[b]
	}
	if need := enc.PackedLen(parts); cap(ex.buf) < need {
		ex.buf = make([]byte, 0, need)
	}
	ex.buf = enc.PackSlicesInto(ex.buf[:0], parts)
	return ex.buf
}

// applyRecv consumes one received payload. Payloads that are folded or
// discarded are handed back to the transport's pool via rel; payloads
// installed into the block table are retained and must NOT be
// released.
func applyRecv(s *Schedule, blocks [][]byte, st Step, data []byte, op ReduceFn, rel Releaser) error {
	release := func() {
		if rel != nil {
			rel.Release(data)
		}
	}
	if st.Op == OpRecvReduce {
		if len(st.Blks) != 1 {
			release()
			return fmt.Errorf("coll: %s: reduce step needs exactly one block, got %d", s, len(st.Blks))
		}
		if op == nil {
			release() // pure synchronisation (barrier / agreement waves)
			return nil
		}
		b := st.Blks[0]
		if len(data) != len(blocks[b]) {
			release()
			return fmt.Errorf("coll: %s: rank %d received a %d-byte reduce contribution from rank %d, want %d — reductions require equal-length buffers on every rank",
				s, s.Rank, len(data), st.Peer, len(blocks[b]))
		}
		op(blocks[b], data)
		release() // contribution folded; the bytes are dead
		return nil
	}
	switch len(st.Blks) {
	case 0:
		release() // synchronisation payload, discard
		return nil
	case 1:
		blocks[st.Blks[0]] = data // retained
		return nil
	}
	parts, err := enc.UnpackSlices(data)
	if err != nil {
		release()
		return fmt.Errorf("coll: %s: from rank %d: %w", s, st.Peer, err)
	}
	if len(parts) != len(st.Blks) {
		release()
		return fmt.Errorf("coll: %s: rank %d expected %d packed blocks from rank %d, got %d",
			s, s.Rank, len(st.Blks), st.Peer, len(parts))
	}
	for i, b := range st.Blks {
		blocks[b] = parts[i] // parts alias data: retained
	}
	return nil
}

func permute(blocks [][]byte, perm []int) {
	if perm == nil {
		return
	}
	tmp := make([][]byte, len(blocks))
	for i, p := range perm {
		tmp[i] = blocks[p]
	}
	copy(blocks, tmp)
}
