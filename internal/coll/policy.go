package coll

import "fmt"

// Default selection thresholds.
const (
	// DefaultRingBytes is the per-rank buffer size at which an
	// allreduce switches from recursive doubling (log-round,
	// latency-bound) to the ring (bandwidth-optimal).
	DefaultRingBytes = 64 << 10
	// DefaultBruckBytes is the per-destination part size below which
	// an alltoall uses Bruck's log-round shuffle instead of pairwise
	// exchange.
	DefaultBruckBytes = 1 << 10
)

// Policy selects an algorithm per operation. A non-empty per-op field
// forces that family; empty fields fall back to the built-in
// size/comm-size heuristics. The zero Policy is the default ("auto
// everywhere").
//
// Selection must reach the same verdict on every rank of the
// communicator. For allreduce/reduce/bcast this is guaranteed by the
// equal-length buffer contract; allgather/gather/scatter are selected
// on communicator size alone (their per-rank lengths may legally
// differ); alltoall's size heuristic samples the local payload and so
// assumes roughly size-symmetric exchanges (MPI_Alltoall's uniform
// count contract) — irregular, alltoallv-style traffic should force an
// algorithm explicitly.
type Policy struct {
	Bcast, Reduce, Barrier, Allreduce, Allgather, Alltoall, Gather, Scatter Algo

	// RingBytes and BruckBytes override the switching thresholds;
	// zero means the defaults above.
	RingBytes  int
	BruckBytes int
}

func (p Policy) ringBytes() int {
	if p.RingBytes > 0 {
		return p.RingBytes
	}
	return DefaultRingBytes
}

func (p Policy) bruckBytes() int {
	if p.BruckBytes > 0 {
		return p.BruckBytes
	}
	return DefaultBruckBytes
}

func (p Policy) forced(op Opcode) Algo {
	switch op {
	case OpBcast:
		return p.Bcast
	case OpReduce:
		return p.Reduce
	case OpBarrier:
		return p.Barrier
	case OpAllreduce:
		return p.Allreduce
	case OpAllgather:
		return p.Allgather
	case OpAlltoall:
		return p.Alltoall
	case OpGather:
		return p.Gather
	case OpScatter:
		return p.Scatter
	}
	return AlgoAuto
}

// Select picks the algorithm for op given the local payload size in
// bytes and the communicator size n. Forced choices win, with one
// deterministic substitution: rec-dbl allgather degrades to ring on
// non-power-of-two communicators (the generator would reject it, and
// n is the same everywhere so all ranks degrade together).
func (p Policy) Select(op Opcode, bytes, n int) Algo {
	if a := p.forced(op); a != AlgoAuto {
		if op == OpAllgather && a == AlgoRecDbl && !isPow2(n) {
			return AlgoRing
		}
		return a
	}
	switch op {
	case OpBcast, OpReduce:
		return AlgoBinomial
	case OpBarrier:
		return AlgoRecDbl
	case OpAllreduce:
		if n >= 4 && bytes >= p.ringBytes() {
			return AlgoRing
		}
		return AlgoRecDbl
	case OpAllgather:
		if isPow2(n) {
			return AlgoRecDbl
		}
		return AlgoRing
	case OpAlltoall:
		if n >= 4 && bytes/n <= p.bruckBytes() {
			return AlgoBruck
		}
		return AlgoPairwise
	case OpGather, OpScatter:
		if n >= 8 {
			return AlgoBinomial
		}
		return AlgoLinear
	}
	return AlgoBinomial
}

// validAlgos lists the families each operation implements.
var validAlgos = map[Opcode][]Algo{
	OpBcast:     {AlgoBinomial},
	OpReduce:    {AlgoBinomial},
	OpBarrier:   {AlgoBinomial, AlgoRecDbl},
	OpAllreduce: {AlgoTree, AlgoRecDbl, AlgoRing},
	OpAllgather: {AlgoRecDbl, AlgoRing},
	OpAlltoall:  {AlgoBruck, AlgoPairwise},
	OpGather:    {AlgoLinear, AlgoBinomial},
	OpScatter:   {AlgoLinear, AlgoBinomial},
}

// ParseAlgo validates a user-supplied algorithm name for op. The empty
// string and "auto" mean automatic selection.
func ParseAlgo(op Opcode, name string) (Algo, error) {
	if name == "" || name == "auto" {
		return AlgoAuto, nil
	}
	for _, a := range validAlgos[op] {
		if string(a) == name {
			return a, nil
		}
	}
	return AlgoAuto, fmt.Errorf("coll: unknown %s algorithm %q (valid: auto, %v)", op, name, validAlgos[op])
}

// Validate checks every forced choice in the policy.
func (p Policy) Validate() error {
	for _, c := range []struct {
		op Opcode
		a  Algo
	}{
		{OpBcast, p.Bcast}, {OpReduce, p.Reduce}, {OpBarrier, p.Barrier},
		{OpAllreduce, p.Allreduce}, {OpAllgather, p.Allgather},
		{OpAlltoall, p.Alltoall}, {OpGather, p.Gather}, {OpScatter, p.Scatter},
	} {
		if _, err := ParseAlgo(c.op, string(c.a)); err != nil {
			return err
		}
	}
	return nil
}
