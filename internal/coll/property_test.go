package coll

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// fakeNet is the in-memory substrate for property tests: one buffered
// channel per (src, dst) pair. Send copies the payload, mirroring the
// eager-copy semantics of the real transports (schedules mutate blocks
// after sending them).
type fakeNet struct{ chs [][]chan []byte }

func newFakeNet(n int) *fakeNet {
	net := &fakeNet{chs: make([][]chan []byte, n)}
	for i := range net.chs {
		net.chs[i] = make([]chan []byte, n)
		for j := range net.chs[i] {
			net.chs[i][j] = make(chan []byte, 4096)
		}
	}
	return net
}

type fakeTP struct {
	net  *fakeNet
	rank int
}

func (t fakeTP) Send(peer int, data []byte) error {
	cp := append([]byte(nil), data...)
	t.net.chs[t.rank][peer] <- cp
	return nil
}

func (t fakeTP) Recv(peer int) ([]byte, error) {
	return <-t.net.chs[peer][t.rank], nil
}

// addOp is a commutative, associative byte-wise reduction (mod-256 sum).
func addOp(acc, src []byte) {
	for i := range acc {
		acc[i] += src[i]
	}
}

// runRanks executes fn concurrently for every rank over a shared fake
// network and fails the test on any per-rank error.
func runRanks(t *testing.T, n int, fn func(rank int, tp Transport) error) {
	t.Helper()
	net := newFakeNet(n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = fn(r, fakeTP{net, r})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func randBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}

// commSizes is the property-test sweep: every small size plus random
// draws up to 64 ranks.
func commSizes(rng *rand.Rand) []int {
	ns := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 12, 13, 16, 17}
	for i := 0; i < 6; i++ {
		ns = append(ns, 18+rng.Intn(47)) // 18..64
	}
	return ns
}

func TestPropertyAllreduce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range commSizes(rng) {
		for _, algo := range []Algo{AlgoTree, AlgoRecDbl, AlgoRing} {
			l := rng.Intn(3 * n) // exercises empty ring chunks too
			inputs := make([][]byte, n)
			want := make([]byte, l)
			for r := range inputs {
				inputs[r] = randBytes(rng, l)
				addOp(want, inputs[r])
			}
			results := make([][]byte, n)
			runRanks(t, n, func(rank int, tp Transport) error {
				s, err := Allreduce(algo, rank, n)
				if err != nil {
					return err
				}
				buf := append([]byte(nil), inputs[rank]...)
				var blocks [][]byte
				if algo == AlgoRing {
					blocks = SplitChunks(buf, n)
				} else {
					blocks = [][]byte{buf}
				}
				if err := Exec(s, tp, blocks, addOp); err != nil {
					return err
				}
				if algo == AlgoRing {
					results[rank] = JoinChunks(blocks)
				} else {
					results[rank] = blocks[0]
				}
				return nil
			})
			for r := range results {
				if !bytes.Equal(results[r], want) {
					t.Fatalf("allreduce %s n=%d len=%d rank %d: wrong result", algo, n, l, r)
				}
			}
		}
	}
}

func TestPropertyBcastReduce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range commSizes(rng) {
		root := rng.Intn(n)
		payload := randBytes(rng, 1+rng.Intn(64))

		bcastOut := make([][]byte, n)
		runRanks(t, n, func(rank int, tp Transport) error {
			s, err := Bcast(AlgoBinomial, rank, n, root)
			if err != nil {
				return err
			}
			blocks := [][]byte{nil}
			if rank == root {
				blocks[0] = payload
			}
			if err := Exec(s, tp, blocks, nil); err != nil {
				return err
			}
			bcastOut[rank] = blocks[0]
			return nil
		})
		for r := range bcastOut {
			if !bytes.Equal(bcastOut[r], payload) {
				t.Fatalf("bcast n=%d root=%d rank %d: wrong payload", n, root, r)
			}
		}

		inputs := make([][]byte, n)
		want := make([]byte, len(payload))
		for r := range inputs {
			inputs[r] = randBytes(rng, len(payload))
			addOp(want, inputs[r])
		}
		var rootGot []byte
		runRanks(t, n, func(rank int, tp Transport) error {
			s, err := Reduce(AlgoBinomial, rank, n, root)
			if err != nil {
				return err
			}
			blocks := [][]byte{append([]byte(nil), inputs[rank]...)}
			if err := Exec(s, tp, blocks, addOp); err != nil {
				return err
			}
			if rank == root {
				rootGot = blocks[0]
			}
			return nil
		})
		if !bytes.Equal(rootGot, want) {
			t.Fatalf("reduce n=%d root=%d: wrong result", n, root)
		}
	}
}

func TestPropertyAllgather(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range commSizes(rng) {
		for _, algo := range []Algo{AlgoRing, AlgoRecDbl} {
			if algo == AlgoRecDbl && !isPow2(n) {
				continue
			}
			inputs := make([][]byte, n)
			for r := range inputs {
				inputs[r] = randBytes(rng, rng.Intn(18)) // lengths may differ per rank
			}
			results := make([][][]byte, n)
			runRanks(t, n, func(rank int, tp Transport) error {
				s, err := Allgather(algo, rank, n)
				if err != nil {
					return err
				}
				blocks := make([][]byte, n)
				blocks[rank] = append([]byte(nil), inputs[rank]...)
				if err := Exec(s, tp, blocks, nil); err != nil {
					return err
				}
				results[rank] = blocks
				return nil
			})
			for r := range results {
				for j := range inputs {
					if !bytes.Equal(results[r][j], inputs[j]) {
						t.Fatalf("allgather %s n=%d rank %d block %d mismatch", algo, n, r, j)
					}
				}
			}
		}
	}
}

func TestPropertyAlltoall(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range commSizes(rng) {
		for _, algo := range []Algo{AlgoBruck, AlgoPairwise} {
			// parts[s][d]: payload from rank s to rank d, asymmetric lengths.
			parts := make([][][]byte, n)
			for s := range parts {
				parts[s] = make([][]byte, n)
				for d := range parts[s] {
					parts[s][d] = randBytes(rng, rng.Intn(9))
				}
			}
			results := make([][][]byte, n)
			runRanks(t, n, func(rank int, tp Transport) error {
				s, err := Alltoall(algo, rank, n)
				if err != nil {
					return err
				}
				blocks := make([][]byte, s.Blocks)
				for d := 0; d < n; d++ {
					blocks[d] = append([]byte(nil), parts[rank][d]...)
				}
				if algo == AlgoPairwise {
					blocks[n+rank] = blocks[rank]
				}
				if err := Exec(s, tp, blocks, nil); err != nil {
					return err
				}
				results[rank] = blocks[s.Blocks-n:]
				return nil
			})
			for d := range results {
				for s := range results[d] {
					if !bytes.Equal(results[d][s], parts[s][d]) {
						t.Fatalf("alltoall %s n=%d: dest %d got wrong part from %d", algo, n, d, s)
					}
				}
			}
		}
	}
}

func TestPropertyGatherScatter(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range commSizes(rng) {
		root := rng.Intn(n)
		for _, algo := range []Algo{AlgoLinear, AlgoBinomial} {
			inputs := make([][]byte, n)
			for r := range inputs {
				inputs[r] = randBytes(rng, 1+rng.Intn(13))
			}
			var rootGot [][]byte
			runRanks(t, n, func(rank int, tp Transport) error {
				s, err := Gather(algo, rank, n, root)
				if err != nil {
					return err
				}
				blocks := make([][]byte, n)
				blocks[rank] = inputs[rank]
				if err := Exec(s, tp, blocks, nil); err != nil {
					return err
				}
				if rank == root {
					rootGot = blocks
				}
				return nil
			})
			for j := range inputs {
				if !bytes.Equal(rootGot[j], inputs[j]) {
					t.Fatalf("gather %s n=%d root=%d block %d mismatch", algo, n, root, j)
				}
			}

			scatterOut := make([][]byte, n)
			runRanks(t, n, func(rank int, tp Transport) error {
				s, err := Scatter(algo, rank, n, root)
				if err != nil {
					return err
				}
				blocks := make([][]byte, n)
				if rank == root {
					copy(blocks, inputs)
				}
				if err := Exec(s, tp, blocks, nil); err != nil {
					return err
				}
				scatterOut[rank] = blocks[rank]
				return nil
			})
			for r := range scatterOut {
				if !bytes.Equal(scatterOut[r], inputs[r]) {
					t.Fatalf("scatter %s n=%d root=%d rank %d mismatch", algo, n, root, r)
				}
			}
		}
	}
}

func TestPropertyBarrier(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range commSizes(rng) {
		for _, algo := range []Algo{AlgoBinomial, AlgoRecDbl} {
			done := make([]bool, n)
			runRanks(t, n, func(rank int, tp Transport) error {
				s, err := Barrier(algo, rank, n)
				if err != nil {
					return err
				}
				if err := Exec(s, tp, nil, nil); err != nil {
					return err
				}
				done[rank] = true
				return nil
			})
			for r, ok := range done {
				if !ok {
					t.Fatalf("barrier %s n=%d rank %d did not complete", algo, n, r)
				}
			}
		}
	}
}

// TestGeneratorsDeterministic: same inputs, same schedule — byte for
// byte. Purity (no I/O) is structural; determinism is what replay and
// the message-log replay protocol depend on.
func TestGeneratorsDeterministic(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8, 13, 32} {
		for rank := 0; rank < n; rank++ {
			a1, _ := Allreduce(AlgoRing, rank, n)
			a2, _ := Allreduce(AlgoRing, rank, n)
			if !reflect.DeepEqual(a1, a2) {
				t.Fatalf("ring allreduce n=%d rank=%d not deterministic", n, rank)
			}
			b1, _ := Alltoall(AlgoBruck, rank, n)
			b2, _ := Alltoall(AlgoBruck, rank, n)
			if !reflect.DeepEqual(b1, b2) {
				t.Fatalf("bruck n=%d rank=%d not deterministic", n, rank)
			}
		}
	}
}

// TestReduceLengthMismatch: with matching schedules but unequal buffer
// lengths, both sides of a recursive-doubling exchange detect the
// mismatch on their first fold and report which peer sent what.
func TestReduceLengthMismatch(t *testing.T) {
	n := 2
	lens := []int{8, 4}
	net := newFakeNet(n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			s, err := Allreduce(AlgoRecDbl, r, n)
			if err != nil {
				errs[r] = err
				return
			}
			errs[r] = Exec(s, fakeTP{net, r}, [][]byte{make([]byte, lens[r])}, addOp)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err == nil {
			t.Fatalf("rank %d: mismatched reduce lengths not detected", r)
		}
		if want := "reduce contribution"; !strings.Contains(err.Error(), want) {
			t.Fatalf("rank %d: error %q does not mention %q", r, err, want)
		}
	}
}

func TestSplitJoinChunks(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 7, 16} {
		for _, l := range []int{0, 1, n - 1, n, n + 1, 10 * n} {
			if l < 0 {
				continue
			}
			data := randBytes(rng, l)
			chunks := SplitChunks(data, n)
			if len(chunks) != n {
				t.Fatalf("n=%d l=%d: %d chunks", n, l, len(chunks))
			}
			if !bytes.Equal(JoinChunks(chunks), data) {
				t.Fatalf("n=%d l=%d: join != original", n, l)
			}
		}
	}
}

func TestPolicySelect(t *testing.T) {
	var p Policy
	cases := []struct {
		op    Opcode
		bytes int
		n     int
		want  Algo
	}{
		{OpAllreduce, 8, 16, AlgoRecDbl},
		{OpAllreduce, 1 << 20, 16, AlgoRing},
		{OpAllreduce, 1 << 20, 2, AlgoRecDbl},
		{OpAllgather, 1 << 20, 16, AlgoRecDbl},
		{OpAllgather, 8, 6, AlgoRing},
		{OpAlltoall, 16 * 8, 16, AlgoBruck},
		{OpAlltoall, 16 << 20, 16, AlgoPairwise},
		{OpGather, 8, 4, AlgoLinear},
		{OpGather, 8, 32, AlgoBinomial},
		{OpBarrier, 0, 9, AlgoRecDbl},
		{OpBcast, 1 << 20, 64, AlgoBinomial},
	}
	for _, c := range cases {
		if got := p.Select(c.op, c.bytes, c.n); got != c.want {
			t.Errorf("Select(%s, %d, %d) = %s, want %s", c.op, c.bytes, c.n, got, c.want)
		}
	}
	forced := Policy{Allreduce: AlgoRing, Allgather: AlgoRecDbl}
	if got := forced.Select(OpAllreduce, 8, 2); got != AlgoRing {
		t.Errorf("forced allreduce: got %s", got)
	}
	if got := forced.Select(OpAllgather, 8, 6); got != AlgoRing {
		t.Errorf("forced rec-dbl allgather on n=6 should degrade to ring, got %s", got)
	}
	if err := (Policy{Bcast: "ring"}).Validate(); err == nil {
		t.Error("ring bcast accepted by Validate")
	}
	if err := (Policy{Allreduce: AlgoRing, Alltoall: AlgoBruck}).Validate(); err != nil {
		t.Errorf("valid policy rejected: %v", err)
	}
	if _, err := ParseAlgo(OpAllreduce, "auto"); err != nil {
		t.Errorf("auto rejected: %v", err)
	}
	if _, err := ParseAlgo(OpAllreduce, "quantum"); err == nil {
		t.Error("unknown algorithm accepted")
	}
}
