package coll

import "fmt"

// Generators. Every function here is pure: given (algo, rank, n[, root])
// it deterministically computes a schedule without touching the network,
// the clock, or any shared state. All generators accept arbitrary
// communicator sizes n >= 1 unless noted (rec-dbl allgather requires a
// power of two); n == 1 always yields an empty schedule.
//
// Block conventions per operation:
//
//	bcast, reduce, tree/rec-dbl allreduce, barrier: 1 block (block 0)
//	ring allreduce:  n chunks of the buffer (SplitChunks boundaries)
//	allgather, alltoall, gather, scatter: n blocks indexed by comm rank
//	  (alltoall block j = the part travelling to/from rank j)

func unsupported(op Opcode, algo Algo) error {
	return fmt.Errorf("coll: no %s algorithm %q", op, algo)
}

func newSchedule(op Opcode, algo Algo, rank, n, blocks int) *Schedule {
	return &Schedule{Op: op, Algo: algo, Rank: rank, NRanks: n, Blocks: blocks}
}

// Bcast generates a broadcast of block 0 from root to every rank.
func Bcast(algo Algo, rank, n, root int) (*Schedule, error) {
	if algo != AlgoBinomial {
		return nil, unsupported(OpBcast, algo)
	}
	s := newSchedule(OpBcast, algo, rank, n, 1)
	s.Rounds = bcastRounds(rank, n, root, []int{0})
	return s, nil
}

// bcastRounds emits the classic binomial broadcast down-sweep in
// root-relative virtual rank space: in round t (mask n/2 … 1) every
// rank that already holds the data sends to vrank+mask. blks is the
// block list carried on every hop (nil for barrier down-sweeps).
func bcastRounds(rank, n, root int, blks []int) []Round {
	if n <= 1 {
		return nil
	}
	v := (rank - root + n) % n
	abs := func(u int) int { return (u + root) % n }
	lb := lowbit(v, n)
	var rounds []Round
	r := ceilLog2(n)
	for t := 0; t < r; t++ {
		mask := 1 << (r - 1 - t)
		switch {
		case v != 0 && mask == lb:
			rounds = append(rounds, Round{{Op: OpRecv, Peer: abs(v - mask), Blks: blks}})
		case mask < lb && v+mask < n:
			rounds = append(rounds, Round{{Op: OpSend, Peer: abs(v + mask), Blks: blks}})
		}
	}
	return rounds
}

// lowbit returns the lowest set bit of v, or a value above any mask for
// v == 0 (the root of a virtual-rank tree, which only ever sends).
func lowbit(v, n int) int {
	if v == 0 {
		return 2 << ceilLog2(n)
	}
	return v & -v
}

// Reduce generates a reduction of block 0 into root. Combination
// follows tree order, hence the commutative+associative ReduceFn
// contract.
func Reduce(algo Algo, rank, n, root int) (*Schedule, error) {
	if algo != AlgoBinomial {
		return nil, unsupported(OpReduce, algo)
	}
	s := newSchedule(OpReduce, algo, rank, n, 1)
	s.Rounds = reduceRounds(rank, n, root, []int{0})
	return s, nil
}

// reduceRounds emits the binomial up-sweep: in round t (mask 1, 2, …)
// vrank v receives-and-folds from v+mask while v&mask == 0, then sends
// its accumulation to v-mask and goes idle.
func reduceRounds(rank, n, root int, blks []int) []Round {
	if n <= 1 {
		return nil
	}
	v := (rank - root + n) % n
	abs := func(u int) int { return (u + root) % n }
	var rounds []Round
	for mask := 1; mask < n; mask <<= 1 {
		if v&mask != 0 {
			rounds = append(rounds, Round{{Op: OpSend, Peer: abs(v - mask), Blks: blks}})
			break
		}
		if v+mask < n {
			rounds = append(rounds, Round{{Op: OpRecvReduce, Peer: abs(v + mask), Blks: blks}})
		}
	}
	return rounds
}

// Barrier generates a zero-payload synchronisation: binomial is the
// classic reduce-to-0 + broadcast up-down sweep; rec-dbl is the
// dissemination barrier (log rounds, works for any n).
func Barrier(algo Algo, rank, n int) (*Schedule, error) {
	s := newSchedule(OpBarrier, algo, rank, n, 0)
	switch algo {
	case AlgoBinomial:
		up := reduceRounds(rank, n, 0, nil)
		// A blockless RecvReduce is just a Recv-and-discard; keep the
		// schedule honest about it.
		for _, round := range up {
			for i := range round {
				if round[i].Op == OpRecvReduce {
					round[i].Op = OpRecv
				}
			}
		}
		s.Rounds = append(up, bcastRounds(rank, n, 0, nil)...)
	case AlgoRecDbl:
		for d := 1; d < n; d <<= 1 {
			s.Rounds = append(s.Rounds, Round{
				{Op: OpSend, Peer: (rank + d) % n},
				{Op: OpRecv, Peer: (rank - d + n) % n},
			})
		}
	default:
		return nil, unsupported(OpBarrier, algo)
	}
	return s, nil
}

// Allreduce generates an all-reduce. AlgoTree is the legacy
// reduce-to-0 + broadcast baseline (1 block); AlgoRecDbl is recursive
// doubling with the MPICH remainder trick for any n (1 block); AlgoRing
// is the bandwidth-optimal reduce-scatter + allgather ring over n
// chunks of the buffer (n blocks, SplitChunks boundaries — short
// buffers work, they just ride empty chunks).
func Allreduce(algo Algo, rank, n int) (*Schedule, error) {
	switch algo {
	case AlgoTree:
		s := newSchedule(OpAllreduce, algo, rank, n, 1)
		s.Rounds = append(reduceRounds(rank, n, 0, []int{0}), bcastRounds(rank, n, 0, []int{0})...)
		return s, nil
	case AlgoRecDbl:
		return allreduceRecDbl(rank, n), nil
	case AlgoRing:
		return allreduceRing(rank, n), nil
	}
	return nil, unsupported(OpAllreduce, algo)
}

// allreduceRecDbl is MPICH's recursive-doubling allreduce. For
// non-power-of-two n, let pof2 be the largest power of two <= n and
// rem = n - pof2. The first 2*rem ranks pair up (even donates to odd,
// odd participates as newrank = rank/2), ranks >= 2*rem participate as
// newrank = rank-rem, and after log2(pof2) exchange rounds each odd
// rank hands the result back to its even partner.
func allreduceRecDbl(rank, n int) *Schedule {
	s := newSchedule(OpAllreduce, AlgoRecDbl, rank, n, 1)
	if n <= 1 {
		return s
	}
	pof2 := 1
	for pof2*2 <= n {
		pof2 *= 2
	}
	rem := n - pof2
	blk := []int{0}
	newrank := rank - rem
	if rank < 2*rem {
		if rank%2 == 0 {
			s.Rounds = append(s.Rounds, Round{{Op: OpSend, Peer: rank + 1, Blks: blk}})
			newrank = -1
		} else {
			s.Rounds = append(s.Rounds, Round{{Op: OpRecvReduce, Peer: rank - 1, Blks: blk}})
			newrank = rank / 2
		}
	}
	if newrank >= 0 {
		for mask := 1; mask < pof2; mask <<= 1 {
			np := newrank ^ mask
			peer := np + rem
			if np < rem {
				peer = np*2 + 1
			}
			s.Rounds = append(s.Rounds, Round{
				{Op: OpSend, Peer: peer, Blks: blk},
				{Op: OpRecvReduce, Peer: peer, Blks: blk},
			})
		}
	}
	if rank < 2*rem {
		if rank%2 == 0 {
			s.Rounds = append(s.Rounds, Round{{Op: OpRecv, Peer: rank + 1, Blks: blk}})
		} else {
			s.Rounds = append(s.Rounds, Round{{Op: OpSend, Peer: rank - 1, Blks: blk}})
		}
	}
	return s
}

// allreduceRing: phase one reduce-scatters the n chunks around the ring
// (after round k each rank holds the full reduction of chunk
// (rank-k-1) mod n … eventually chunk (rank+1) mod n is complete at
// rank); phase two allgathers the completed chunks the rest of the way
// around. Each rank sends and receives exactly 2(n-1) chunk-sized
// messages — bandwidth-optimal for large buffers.
func allreduceRing(rank, n int) *Schedule {
	s := newSchedule(OpAllreduce, AlgoRing, rank, n, n)
	if n <= 1 {
		return s
	}
	right := (rank + 1) % n
	left := (rank - 1 + n) % n
	m := func(x int) int { return ((x % n) + n) % n }
	for k := 0; k < n-1; k++ {
		s.Rounds = append(s.Rounds, Round{
			{Op: OpSend, Peer: right, Blks: []int{m(rank - k)}},
			{Op: OpRecvReduce, Peer: left, Blks: []int{m(rank - k - 1)}},
		})
	}
	for k := 0; k < n-1; k++ {
		s.Rounds = append(s.Rounds, Round{
			{Op: OpSend, Peer: right, Blks: []int{m(rank + 1 - k)}},
			{Op: OpRecv, Peer: left, Blks: []int{m(rank - k)}},
		})
	}
	return s
}

// Allgather generates an allgather over n blocks indexed by comm rank;
// each rank starts with its own block populated. AlgoRing rotates
// blocks around the ring (any n, blocks never repacked); AlgoRecDbl
// exchanges doubling block ranges in log rounds and requires n to be a
// power of two. Per-rank block lengths may differ.
func Allgather(algo Algo, rank, n int) (*Schedule, error) {
	s := newSchedule(OpAllgather, algo, rank, n, n)
	switch algo {
	case AlgoRing:
		if n <= 1 {
			return s, nil
		}
		right := (rank + 1) % n
		left := (rank - 1 + n) % n
		m := func(x int) int { return ((x % n) + n) % n }
		for k := 0; k < n-1; k++ {
			s.Rounds = append(s.Rounds, Round{
				{Op: OpSend, Peer: right, Blks: []int{m(rank - k)}},
				{Op: OpRecv, Peer: left, Blks: []int{m(rank - k - 1)}},
			})
		}
		return s, nil
	case AlgoRecDbl:
		if !isPow2(n) {
			return nil, fmt.Errorf("coll: rec-dbl allgather requires a power-of-two communicator (n=%d)", n)
		}
		for mask := 1; mask < n; mask <<= 1 {
			peer := rank ^ mask
			s.Rounds = append(s.Rounds, Round{
				{Op: OpSend, Peer: peer, Blks: blockRange(rank&^(mask-1), mask)},
				{Op: OpRecv, Peer: peer, Blks: blockRange(peer&^(mask-1), mask)},
			})
		}
		return s, nil
	}
	return nil, unsupported(OpAllgather, algo)
}

func blockRange(lo, count int) []int {
	out := make([]int, count)
	for i := range out {
		out[i] = lo + i
	}
	return out
}

// Alltoall generates a personalised exchange. AlgoPairwise runs n-1
// symmetric send/recv rounds against ranks (rank±d) mod n over 2n
// blocks: 0..n-1 are the outgoing parts, n..2n-1 the received parts
// (the caller seeds block n+rank with its own part and reads the
// result from blocks[n:]) — the split regions keep round d's receive
// from clobbering a part that round n-d must still send. AlgoBruck
// runs ceil(log2 n) rounds of packed shuffles over n in-place blocks
// (block j = the part for/from rank j): after rotating block j to
// local index (rank+j) mod n, phase k forwards every index with bit k
// set to rank+2^k, and a final inverse rotation sorts the received
// parts by source. Both handle any n and any per-part lengths.
func Alltoall(algo Algo, rank, n int) (*Schedule, error) {
	s := newSchedule(OpAlltoall, algo, rank, n, n)
	switch algo {
	case AlgoPairwise:
		s.Blocks = 2 * n
		for d := 1; d < n; d++ {
			dst := (rank + d) % n
			src := (rank - d + n) % n
			s.Rounds = append(s.Rounds, Round{
				{Op: OpSend, Peer: dst, Blks: []int{dst}},
				{Op: OpRecv, Peer: src, Blks: []int{n + src}},
			})
		}
		return s, nil
	case AlgoBruck:
		if n <= 1 {
			return s, nil
		}
		s.InPerm = make([]int, n)
		s.OutPerm = make([]int, n)
		for j := 0; j < n; j++ {
			s.InPerm[j] = (rank + j) % n
			s.OutPerm[j] = (rank - j + n) % n
		}
		for bit := 1; bit < n; bit <<= 1 {
			var idxs []int
			for j := 0; j < n; j++ {
				if j&bit != 0 {
					idxs = append(idxs, j)
				}
			}
			s.Rounds = append(s.Rounds, Round{
				{Op: OpSend, Peer: (rank + bit) % n, Blks: idxs},
				{Op: OpRecv, Peer: (rank - bit + n) % n, Blks: idxs},
			})
		}
		return s, nil
	}
	return nil, unsupported(OpAlltoall, algo)
}

// Gather collects every rank's block at root (n blocks indexed by comm
// rank; each rank starts with its own populated). AlgoLinear has every
// rank send directly to the root; AlgoBinomial folds subtrees upward in
// log rounds, forwarding packed block ranges.
func Gather(algo Algo, rank, n, root int) (*Schedule, error) {
	s := newSchedule(OpGather, algo, rank, n, n)
	if n <= 1 {
		return s, nil
	}
	v := (rank - root + n) % n
	abs := func(u int) int { return (u + root) % n }
	switch algo {
	case AlgoLinear:
		if rank == root {
			var round Round
			for u := 1; u < n; u++ {
				round = append(round, Step{Op: OpRecv, Peer: abs(u), Blks: []int{abs(u)}})
			}
			s.Rounds = []Round{round}
		} else {
			s.Rounds = []Round{{{Op: OpSend, Peer: root, Blks: []int{rank}}}}
		}
		return s, nil
	case AlgoBinomial:
		for mask := 1; mask < n; mask <<= 1 {
			if v&mask != 0 {
				s.Rounds = append(s.Rounds, Round{{Op: OpSend, Peer: abs(v - mask), Blks: vrangeBlocks(v, v+mask, n, root)}})
				break
			}
			if v+mask < n {
				s.Rounds = append(s.Rounds, Round{{Op: OpRecv, Peer: abs(v + mask), Blks: vrangeBlocks(v+mask, v+2*mask, n, root)}})
			}
		}
		return s, nil
	}
	return nil, unsupported(OpGather, algo)
}

// vrangeBlocks maps the virtual-rank subtree [lo, min(hi, n)) to comm
// block indices, in ascending virtual order (both sides of a packed
// transfer derive the same list).
func vrangeBlocks(lo, hi, n, root int) []int {
	if hi > n {
		hi = n
	}
	out := make([]int, 0, hi-lo)
	for u := lo; u < hi; u++ {
		out = append(out, (u+root)%n)
	}
	return out
}

// Scatter distributes the root's n blocks to their ranks. AlgoLinear
// sends each block directly; AlgoBinomial halves the block range down
// the broadcast tree so the root posts only log n packed sends.
func Scatter(algo Algo, rank, n, root int) (*Schedule, error) {
	s := newSchedule(OpScatter, algo, rank, n, n)
	if n <= 1 {
		return s, nil
	}
	v := (rank - root + n) % n
	abs := func(u int) int { return (u + root) % n }
	switch algo {
	case AlgoLinear:
		if rank == root {
			var round Round
			for u := 1; u < n; u++ {
				round = append(round, Step{Op: OpSend, Peer: abs(u), Blks: []int{abs(u)}})
			}
			s.Rounds = []Round{round}
		} else {
			s.Rounds = []Round{{{Op: OpRecv, Peer: root, Blks: []int{rank}}}}
		}
		return s, nil
	case AlgoBinomial:
		lb := lowbit(v, n)
		r := ceilLog2(n)
		for t := 0; t < r; t++ {
			mask := 1 << (r - 1 - t)
			switch {
			case v != 0 && mask == lb:
				s.Rounds = append(s.Rounds, Round{{Op: OpRecv, Peer: abs(v - mask), Blks: vrangeBlocks(v, v+mask, n, root)}})
			case mask < lb && v+mask < n:
				s.Rounds = append(s.Rounds, Round{{Op: OpSend, Peer: abs(v + mask), Blks: vrangeBlocks(v+mask, v+2*mask, n, root)}})
			}
		}
		return s, nil
	}
	return nil, unsupported(OpScatter, algo)
}
