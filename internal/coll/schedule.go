// Package coll represents collective operations as generated
// communication *schedules*: pure, deterministic per-rank lists of
// send/recv/reduce steps over communicator ranks. Generators in this
// package perform no I/O — they only compute who talks to whom, in
// which round, moving which logical blocks — so the same schedule can
// be driven over the survivable core transport, the fail-stop MPI
// baseline, or an in-memory fake for property testing.
//
// The executor (Exec) walks the schedule round by round, posting every
// send of a round before draining its receives. Because the underlying
// transports are eager (a send copies the payload and never blocks on
// the receiver posting), this gives deadlock-free pairwise exchanges
// and overlaps all of a round's traffic.
package coll

import "fmt"

// Algo names an algorithm family. The empty string means "auto": let
// the Policy pick by payload size and communicator size.
type Algo string

const (
	AlgoAuto     Algo = ""
	AlgoBinomial Algo = "binomial" // binomial tree (bcast/reduce/barrier up-down, gather/scatter)
	AlgoRecDbl   Algo = "rec-dbl"  // recursive doubling / dissemination
	AlgoRing     Algo = "ring"     // ring reduce-scatter + allgather
	AlgoBruck    Algo = "bruck"    // Bruck log-round alltoall
	AlgoPairwise Algo = "pairwise" // nonblocking pairwise alltoall
	AlgoLinear   Algo = "linear"   // direct to/from the root
	AlgoTree     Algo = "tree"     // allreduce as binomial reduce + bcast (legacy baseline)
)

// Opcode identifies the collective operation a schedule implements,
// for algorithm selection and tracing.
type Opcode string

const (
	OpBcast     Opcode = "bcast"
	OpReduce    Opcode = "reduce"
	OpBarrier   Opcode = "barrier"
	OpAllreduce Opcode = "allreduce"
	OpAllgather Opcode = "allgather"
	OpAlltoall  Opcode = "alltoall"
	OpGather    Opcode = "gather"
	OpScatter   Opcode = "scatter"
)

// StepOp is the action one step performs.
type StepOp uint8

const (
	// OpSend transmits the listed blocks to Peer (packed with
	// length prefixes when more than one block is listed).
	OpSend StepOp = iota
	// OpRecv receives from Peer and overwrites the listed blocks
	// (or discards the payload when no blocks are listed).
	OpRecv
	// OpRecvReduce receives a single block from Peer and folds it
	// into the local block with the reduction operator.
	OpRecvReduce
)

func (o StepOp) String() string {
	switch o {
	case OpSend:
		return "send"
	case OpRecv:
		return "recv"
	case OpRecvReduce:
		return "recv-reduce"
	}
	return "?"
}

// Step is one communication action: an operation against a peer
// (communicator rank) moving the listed logical blocks. Blks indexes
// the block table handed to Exec; an empty list means an empty payload
// (pure synchronisation).
type Step struct {
	Op   StepOp
	Peer int
	Blks []int
}

// Round groups steps that may be in flight together: the executor
// posts every send in the round before draining the round's receives,
// so a symmetric exchange (send+recv against the same peer) never
// deadlocks and independent transfers overlap.
type Round []Step

// Schedule is the full per-rank plan for one collective. InPerm and
// OutPerm, when non-nil, permute the block table before the first and
// after the last round (blocks[i] = blocks[perm[i]]), which lets
// rotation-based algorithms like Bruck keep their steps in local index
// space.
type Schedule struct {
	Op     Opcode
	Algo   Algo
	Rank   int
	NRanks int
	Blocks int // size of the block table Exec expects
	Rounds []Round
	InPerm  []int
	OutPerm []int
}

func (s *Schedule) String() string {
	return fmt.Sprintf("%s/%s rank %d/%d (%d rounds)", s.Op, s.Algo, s.Rank, s.NRanks, len(s.Rounds))
}

// SplitChunks slices data into n contiguous chunks using the boundary
// convention shared by the ring generators: chunk i is
// data[i*len/n : (i+1)*len/n]. Short payloads simply yield some empty
// chunks; JoinChunks reassembles the original length.
func SplitChunks(data []byte, n int) [][]byte {
	out := make([][]byte, n)
	l := len(data)
	for i := 0; i < n; i++ {
		out[i] = data[i*l/n : (i+1)*l/n]
	}
	return out
}

// JoinChunks concatenates blocks into one buffer.
func JoinChunks(blocks [][]byte) []byte {
	total := 0
	for _, b := range blocks {
		total += len(b)
	}
	out := make([]byte, 0, total)
	for _, b := range blocks {
		out = append(out, b...)
	}
	return out
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// ceilLog2 returns the number of rounds a binomial/doubling pattern
// needs for n ranks: the smallest k with 1<<k >= n.
func ceilLog2(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}
