// Package mpi implements the paper's baseline: a conventional
// fail-stop MPI-style runtime (modelled on MVAPICH2 over SLURM) paired
// with SCR-style multilevel checkpointing.
//
// Semantics (paper §I): "On failure, all processes in the MPI job are
// terminated … the current job is terminated, and the application is
// relaunched as a new job that restarts from the last checkpoint."
// Run drives exactly that outer loop: launch, run until success or any
// process death, tear everything down, replace the failed node,
// relaunch, and let the application restore from the last complete SCR
// checkpoint (rebuilding a lost node's files from its XOR group).
//
// Initialisation uses the PMI-style key-value exchange
// (bootstrap.KVSExchange) whose n² coordinator operations are what
// make MPI_Init slower than FMI_Init in Fig 14.
package mpi

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"fmi/internal/bootstrap"
	"fmi/internal/cluster"
	"fmi/internal/pfs"
	"fmi/internal/scr"
	"fmi/internal/transport"
)

// App is the application body; it must begin by attempting Restore.
type App func(p *Proc) error

// Config configures a fail-stop MPI job.
type Config struct {
	Ranks        int
	ProcsPerNode int
	SpareNodes   int
	GroupSize    int // XOR group size for SCR level-1
	Network      transport.Network
	Cluster      *cluster.Cluster
	LocalModel   pfs.Model // node-local storage model (SCR level-1 target)
	SharedFS     *pfs.FS   // PFS for level-2 (optional)
	MaxRelaunch  int       // abort after this many relaunches (default 64)
	Timeout      time.Duration
}

// Errors.
var (
	ErrJobFailed   = errors.New("mpi: job terminated by failure")
	ErrUnrecovered = errors.New("mpi: checkpoint unrecoverable")
)

// Report summarises the whole campaign (all relaunches). Its
// accumulators are safe for concurrent use by the ranks.
type Report struct {
	mu          sync.Mutex
	Relaunches  int
	WallTime    time.Duration
	InitTime    time.Duration // total time spent in MPI_Init across launches
	RestoreTime time.Duration
	CkptTime    time.Duration
	Checkpoints int
	Restores    int
	LocalStats  pfs.Stats // aggregate node-local file-system traffic
}

func (r *Report) addInit(d time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.InitTime += d
	r.mu.Unlock()
}

func (r *Report) addCkpt(d time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.CkptTime += d
	r.Checkpoints++
	r.mu.Unlock()
}

func (r *Report) addRestore(d time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.RestoreTime += d
	r.Restores++
	r.mu.Unlock()
}

// Run executes the fail-stop campaign.
func Run(cfg Config, app App) (*Report, error) {
	if cfg.Ranks <= 0 {
		return nil, fmt.Errorf("mpi: Ranks must be positive")
	}
	if cfg.ProcsPerNode <= 0 {
		cfg.ProcsPerNode = 1
	}
	if cfg.GroupSize == 0 {
		cfg.GroupSize = 16
	}
	if cfg.MaxRelaunch == 0 {
		cfg.MaxRelaunch = 64
	}
	if cfg.Network == nil {
		cfg.Network = transport.NewChanNetwork(transport.Options{})
	}
	nodes := (cfg.Ranks + cfg.ProcsPerNode - 1) / cfg.ProcsPerNode
	clu := cfg.Cluster
	if clu == nil {
		clu = cluster.New(nodes + cfg.SpareNodes)
	}
	var spares []*cluster.Node
	for i := nodes; ; i++ {
		nd := clu.Node(i)
		if nd == nil {
			break
		}
		spares = append(spares, nd)
	}
	rm := cluster.NewResourceManager(clu, spares)

	mgr := scr.NewManager(cfg.LocalModel, cfg.SharedFS)
	rep := &Report{}
	start := time.Now()
	deadline := time.Time{}
	if cfg.Timeout > 0 {
		deadline = start.Add(cfg.Timeout)
	}

	// Initial placement: block mapping.
	placement := make([]*cluster.Node, cfg.Ranks)
	for r := 0; r < cfg.Ranks; r++ {
		placement[r] = clu.Node(r / cfg.ProcsPerNode)
	}
	prevNodeOf := func(r int) int { return placement[r].ID } // updated per launch

	for attempt := 0; ; attempt++ {
		if attempt > cfg.MaxRelaunch {
			return rep, fmt.Errorf("%w: %d relaunches", ErrJobFailed, attempt)
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return rep, fmt.Errorf("%w: timeout", ErrJobFailed)
		}
		// Replace failed nodes with spares before launching.
		prev := make([]int, cfg.Ranks)
		for r := range placement {
			prev[r] = placement[r].ID
		}
		for _, nd := range placement {
			if nd.Failed() {
				repl, err := rm.Allocate(nil)
				if err != nil {
					return rep, fmt.Errorf("%w: no replacement node: %v", ErrJobFailed, err)
				}
				// Move every rank of the failed node together.
				for r2, nd2 := range placement {
					if nd2 == nd {
						placement[r2] = repl
					}
				}
			}
		}
		prevNodeOf = func(r int) int { return prev[r] }

		err := runOnce(cfg, clu, mgr, placement, prevNodeOf, app, rep)
		if err == nil {
			rep.Relaunches = attempt
			rep.WallTime = time.Since(start)
			for _, nd := range uniqueNodes(placement) {
				st := mgr.NodeFS(nd).Stats()
				rep.LocalStats.Writes += st.Writes
				rep.LocalStats.Reads += st.Reads
				rep.LocalStats.BytesWritten += st.BytesWritten
				rep.LocalStats.BytesRead += st.BytesRead
				rep.LocalStats.TimeCharged += st.TimeCharged
			}
			return rep, nil
		}
		if errors.Is(err, ErrUnrecovered) {
			return rep, err
		}
		// Fail-stop: wipe nothing on survivors (their tmpfs persists);
		// failed nodes lost their contents with the hardware.
	}
}

func uniqueNodes(placement []*cluster.Node) []int {
	seen := map[int]bool{}
	var out []int
	for _, nd := range placement {
		if !seen[nd.ID] {
			seen[nd.ID] = true
			out = append(out, nd.ID)
		}
	}
	return out
}

// runOnce launches one MPI job instance and waits for it to finish or
// fail.
func runOnce(cfg Config, clu *cluster.Cluster, mgr *scr.Manager,
	placement []*cluster.Node, prevNodeOf func(int) int, app App, rep *Report) error {

	coord := bootstrap.NewCoordinator()
	type result struct {
		rank int
		err  error
	}
	resCh := make(chan result, cfg.Ranks)
	failCh := make(chan int, cfg.Ranks)
	cps := make([]*cluster.Proc, cfg.Ranks)

	for r := 0; r < cfg.Ranks; r++ {
		cp, err := placement[r].Spawn()
		if err != nil {
			return fmt.Errorf("mpi: spawn rank %d: %w", r, err)
		}
		cps[r] = cp
		p := &Proc{
			rank: r, n: cfg.Ranks, ppn: cfg.ProcsPerNode,
			groupSize: cfg.GroupSize,
			killCh:    cp.KillCh(),
			coord:     coord,
			nw:        cfg.Network,
			mgr:       mgr,
			node:      placement[r].ID,
			prevNode:  prevNodeOf,
			rep:       rep,
		}
		// fail-stop watchdog
		go func(r int, cp *cluster.Proc) {
			<-cp.KillCh()
			failCh <- r
		}(r, cp)
		go func(r int, p *Proc, cp *cluster.Proc) {
			defer func() {
				if v := recover(); v != nil {
					if _, ok := v.(killedPanic); ok {
						return
					}
					resCh <- result{r, fmt.Errorf("mpi: rank %d panicked: %v", r, v)}
					return
				}
			}()
			if err := p.init(); err != nil {
				resCh <- result{r, err}
				return
			}
			resCh <- result{r, app(p)}
			cp.Exit(nil)
		}(r, p, cp)
	}

	done := 0
	var firstErr error
	for done < cfg.Ranks {
		select {
		case res := <-resCh:
			done++
			if res.err != nil && firstErr == nil {
				firstErr = res.err
			}
		case <-failCh:
			// Fail-stop: mpirun terminates every process in the job.
			for _, cp := range cps {
				cp.Kill()
			}
			return ErrJobFailed
		}
	}
	for _, cp := range cps {
		cp.Exit(nil)
	}
	if firstErr != nil {
		if errors.Is(firstErr, ErrUnrecovered) {
			return firstErr
		}
		return fmt.Errorf("mpi: app error: %w", firstErr)
	}
	return nil
}

// killedPanic unwinds killed processes.
type killedPanic struct{}

// Proc is one MPI rank.
type Proc struct {
	rank, n   int
	ppn       int
	groupSize int
	node      int
	killCh    <-chan struct{}
	coord     *bootstrap.Coordinator
	nw        transport.Network
	mgr       *scr.Manager
	prevNode  func(int) int
	rep       *Report

	ep    transport.Endpoint
	m     *transport.Matcher
	table bootstrap.Table
}

// init performs MPI_Init: endpoint creation plus the PMI key-value
// exchange.
func (p *Proc) init() error {
	start := time.Now()
	ep, err := p.nw.NewEndpoint(p.killCh)
	if err != nil {
		return err
	}
	p.ep = ep
	p.m = transport.NewMatcher(ep)
	table, _, err := bootstrap.KVSExchange(bootstrap.Proc{
		Rank: p.rank, N: p.n, Addr: ep.Addr(), EP: ep, M: p.m,
		Coord: p.coord, Key: "pmi", Cancel: p.killCh,
	})
	if err != nil {
		p.checkAlive()
		return err
	}
	p.table = table
	p.rep.addInit(time.Since(start))
	return nil
}

func (p *Proc) checkAlive() {
	select {
	case <-p.killCh:
		panic(killedPanic{})
	default:
	}
}

// Rank returns the process rank; Size the world size.
func (p *Proc) Rank() int { return p.rank }

// Size returns the number of ranks.
func (p *Proc) Size() int { return p.n }
