package mpi

import (
	"encoding/binary"
	"fmt"
	"time"

	"fmi/internal/ckpt"
)

// groupComm adapts the MPI transport to the XOR ring.
type groupComm struct {
	p       *Proc
	members []int
}

func (gc *groupComm) Send(peer int, data []byte) error {
	return gc.p.sendRaw(gc.members[peer], tagCkptRing, data)
}

func (gc *groupComm) Recv(peer int) ([]byte, error) {
	msg, err := gc.p.recvRaw(int32(gc.members[peer]), tagCkptRing)
	if err != nil {
		return nil, err
	}
	return msg.Data, nil
}

// ckptMeta is stored alongside every level-1 file so any survivor can
// drive a rebuild: the group's checkpoint sizes and segment shapes.
type ckptMeta struct {
	Sizes  []int
	Shapes [][]int
}

func encodeCkptMeta(m ckptMeta) []byte {
	var out []byte
	put := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		out = append(out, b[:]...)
	}
	put(uint32(len(m.Sizes)))
	for _, s := range m.Sizes {
		put(uint32(s))
	}
	put(uint32(len(m.Shapes)))
	for _, sh := range m.Shapes {
		put(uint32(len(sh)))
		for _, s := range sh {
			put(uint32(s))
		}
	}
	return out
}

func decodeCkptMeta(data []byte) (ckptMeta, error) {
	var m ckptMeta
	get := func() (uint32, error) {
		if len(data) < 4 {
			return 0, fmt.Errorf("mpi: truncated checkpoint meta")
		}
		v := binary.LittleEndian.Uint32(data)
		data = data[4:]
		return v, nil
	}
	n, err := get()
	if err != nil {
		return m, err
	}
	m.Sizes = make([]int, n)
	for i := range m.Sizes {
		v, err := get()
		if err != nil {
			return m, err
		}
		m.Sizes[i] = int(v)
	}
	ns, err := get()
	if err != nil {
		return m, err
	}
	m.Shapes = make([][]int, ns)
	for i := range m.Shapes {
		k, err := get()
		if err != nil {
			return m, err
		}
		m.Shapes[i] = make([]int, k)
		for j := range m.Shapes[i] {
			v, err := get()
			if err != nil {
				return m, err
			}
			m.Shapes[i][j] = int(v)
		}
	}
	return m, nil
}

// group returns this rank's XOR group and its index within it.
func (p *Proc) group() ([]int, int) {
	groups, gidx := ckpt.Groups(p.n, p.ppn, p.groupSize)
	return groups[p.rank], gidx[p.rank]
}

// Checkpoint writes an SCR level-1 checkpoint of the segments at the
// given id: capture, group size/shape exchange, XOR ring encode, and
// the file-system writes that distinguish the MPI+SCR baseline from
// FMI's direct-memory path.
func (p *Proc) Checkpoint(id int, segs ...[]byte) error {
	start := time.Now()
	snap := ckpt.Capture(id, segs)
	group, gi := p.group()
	g := len(group)

	var parity []byte
	meta := ckptMeta{Sizes: []int{len(snap.Data)}, Shapes: [][]int{snap.Sizes}}
	if g >= 2 {
		// Exchange size + shape within the group.
		own := encodeCkptMeta(ckptMeta{Sizes: []int{len(snap.Data)}, Shapes: [][]int{snap.Sizes}})
		for i, r := range group {
			if i == gi {
				continue
			}
			if err := p.sendRaw(r, tagCkptSize, own); err != nil {
				return err
			}
		}
		sizes := make([]int, g)
		shapes := make([][]int, g)
		sizes[gi] = len(snap.Data)
		shapes[gi] = snap.Sizes
		for i, r := range group {
			if i == gi {
				continue
			}
			msg, err := p.recvRaw(int32(r), tagCkptSize)
			if err != nil {
				return err
			}
			gm, err := decodeCkptMeta(msg.Data)
			if err != nil {
				return err
			}
			sizes[i] = gm.Sizes[0]
			shapes[i] = gm.Shapes[0]
		}
		maxSize := 0
		for _, s := range sizes {
			if s > maxSize {
				maxSize = s
			}
		}
		chunkLen := ckpt.ChunkLen(maxSize, g)
		var err error
		parity, err = ckpt.EncodeRing(&groupComm{p, group}, gi, g, snap.Data, chunkLen)
		if err != nil {
			return err
		}
		meta = ckptMeta{Sizes: sizes, Shapes: shapes}
	}

	if err := p.mgr.WriteL1(p.node, p.rank, id, snap.Data, parity, encodeCkptMeta(meta)); err != nil {
		return err
	}
	if err := p.Barrier(); err != nil {
		return err
	}
	if p.rank == 0 {
		ranks := make([]int, p.n)
		for i := range ranks {
			ranks[i] = i
		}
		p.mgr.CommitL1(id, ranks)
	}
	p.rep.addCkpt(time.Since(start))
	return nil
}

// CheckpointL2 additionally flushes the segments to the parallel file
// system (SCR level-2).
func (p *Proc) CheckpointL2(id int, segs ...[]byte) error {
	snap := ckpt.Capture(id, segs)
	if err := p.mgr.WriteL2(p.rank, id, snap.Data); err != nil {
		return err
	}
	if err := p.Barrier(); err != nil {
		return err
	}
	if p.rank == 0 {
		p.mgr.CommitL2(id)
	}
	return nil
}

// Restore loads the newest complete level-1 checkpoint into the
// segments, rebuilding this rank's files from its XOR group if its
// previous node was lost. It returns the restored loop id and whether
// a checkpoint existed.
func (p *Proc) Restore(segs ...[]byte) (int, bool, error) {
	id := p.mgr.LatestL1()
	if id < 0 {
		return 0, false, nil
	}
	start := time.Now()
	group, gi := p.group()

	prevNode := p.prevNode(p.rank)
	var data []byte
	var shape []int
	if p.mgr.HasL1(prevNode, p.rank, id) {
		d, err := p.mgr.ReadL1(prevNode, p.rank, id)
		if err != nil {
			return 0, false, err
		}
		mb, err := p.mgr.ReadL1Meta(prevNode, p.rank, id)
		if err != nil {
			return 0, false, err
		}
		m, err := decodeCkptMeta(mb)
		if err != nil {
			return 0, false, err
		}
		data = d
		if len(m.Shapes) == len(group) {
			shape = m.Shapes[gi]
		} else {
			shape = m.Shapes[0] // singleton group stores only its own
		}
	} else {
		// Our node died: rebuild from the XOR group survivors.
		if len(group) < 2 {
			return 0, false, fmt.Errorf("%w: rank %d lost with no XOR group", ErrUnrecovered, p.rank)
		}
		var meta ckptMeta
		found := false
		for i, r := range group {
			if i == gi {
				continue
			}
			nd := p.prevNode(r)
			if mb, err := p.mgr.ReadL1Meta(nd, r, id); err == nil {
				if m, err := decodeCkptMeta(mb); err == nil && len(m.Sizes) == len(group) {
					meta, found = m, true
					break
				}
			}
		}
		if !found {
			return 0, false, fmt.Errorf("%w: no group metadata for rank %d", ErrUnrecovered, p.rank)
		}
		rebuilt, err := p.mgr.RebuildL1(id, group, p.prevNode, gi, p.node, meta.Sizes)
		if err != nil {
			return 0, false, fmt.Errorf("%w: %v", ErrUnrecovered, err)
		}
		// Re-write the metadata next to the rebuilt files.
		if err := p.mgr.WriteL1Meta(p.node, p.rank, id, encodeCkptMeta(meta)); err != nil {
			return 0, false, err
		}
		data = rebuilt
		shape = meta.Shapes[gi]
	}

	snap := ckpt.FromData(id, data, shape)
	if err := snap.Restore(segs); err != nil {
		return 0, false, err
	}
	p.rep.addRestore(time.Since(start))
	return id, true, nil
}
