package mpi

import (
	"fmt"

	"fmi/internal/coll"
	"fmi/internal/core"
	"fmi/internal/transport"
)

// Reserved tags (user tags must be >= 0).
const (
	tagBcast     int32 = -1
	tagReduce    int32 = -2
	tagGather    int32 = -3
	tagScatter   int32 = -4
	tagAlltoall  int32 = -5
	tagBarrierUp int32 = -6
	tagAllreduce int32 = -8
	tagAllgather int32 = -9
	tagCkptRing  int32 = -20
	tagCkptSize  int32 = -21
)

const ctxWorld uint32 = 1

func (p *Proc) sendRaw(dst int, tag int32, data []byte) error {
	if dst < 0 || dst >= p.n {
		return fmt.Errorf("mpi: invalid rank %d", dst)
	}
	p.checkAlive()
	return p.ep.Send(p.table[dst], transport.Msg{
		Src: int32(p.rank), Tag: tag, Ctx: ctxWorld, Data: data,
	})
}

func (p *Proc) recvRaw(src int32, tag int32) (transport.Msg, error) {
	msg, err := p.m.Recv(ctxWorld, src, tag, p.killCh)
	if err != nil {
		p.checkAlive()
		return transport.Msg{}, err
	}
	return msg, nil
}

// Send transmits data to dst with a user tag.
func (p *Proc) Send(dst, tag int, data []byte) error {
	if tag < 0 {
		return fmt.Errorf("mpi: user tags must be >= 0")
	}
	return p.sendRaw(dst, int32(tag), data)
}

// Recv blocks for a message from src (or transport.AnySource via -1).
func (p *Proc) Recv(src, tag int) ([]byte, int, error) {
	if tag < 0 {
		return nil, -1, fmt.Errorf("mpi: user tags must be >= 0")
	}
	s := int32(src)
	if src < 0 {
		s = transport.AnySource
	}
	msg, err := p.recvRaw(s, int32(tag))
	if err != nil {
		return nil, -1, err
	}
	return msg.Data, int(msg.Src), nil
}

// Sendrecv posts the receive, sends, then completes the receive
// (posting-order matching, as in the FMI runtime).
func (p *Proc) Sendrecv(dst, sendTag int, data []byte, src, recvTag int) ([]byte, error) {
	if sendTag < 0 || recvTag < 0 {
		return nil, fmt.Errorf("mpi: user tags must be >= 0")
	}
	s := int32(src)
	if src < 0 {
		s = transport.AnySource
	}
	pend, err := p.m.PostRecv(ctxWorld, s, int32(recvTag))
	if err != nil {
		return nil, err
	}
	if err := p.Send(dst, sendTag, data); err != nil {
		return nil, err
	}
	msg, err := pend.Await(p.killCh)
	if err != nil {
		p.checkAlive()
		return nil, err
	}
	return msg.Data, nil
}

// Collectives execute the same internal/coll schedules as the FMI
// runtime (identical algorithms and selection policy, minus the fault
// handling), keeping FMI-vs-MPI comparisons apples-to-apples.

// mpiPolicy is the automatic selection policy (no overrides).
var mpiPolicy coll.Policy

// mpiTP adapts the baseline's matcher/endpoint pair to the schedule
// executor on one reserved tag.
type mpiTP struct {
	p   *Proc
	tag int32
}

func (t mpiTP) Send(peer int, data []byte) error { return t.p.sendRaw(peer, t.tag, data) }

func (t mpiTP) Recv(peer int) ([]byte, error) {
	msg, err := t.p.recvRaw(int32(peer), t.tag)
	if err != nil {
		return nil, err
	}
	return msg.Data, nil
}

func (p *Proc) exec(tag int32, s *coll.Schedule, blocks [][]byte, op core.Op) error {
	return coll.Exec(s, mpiTP{p, tag}, blocks, coll.ReduceFn(op))
}

// Bcast broadcasts the root's buffer (binomial tree).
func (p *Proc) Bcast(root int, data []byte) ([]byte, error) {
	if p.n == 1 {
		return data, nil
	}
	s, err := coll.Bcast(mpiPolicy.Select(coll.OpBcast, len(data), p.n), p.rank, p.n, root)
	if err != nil {
		return nil, err
	}
	blocks := [][]byte{nil}
	if p.rank == root {
		blocks[0] = data
	}
	if err := p.exec(tagBcast, s, blocks, nil); err != nil {
		return nil, err
	}
	return blocks[0], nil
}

// Reduce folds equal-length buffers to the root.
func (p *Proc) Reduce(root int, data []byte, op core.Op) ([]byte, error) {
	acc := append([]byte(nil), data...)
	if p.n > 1 {
		s, err := coll.Reduce(mpiPolicy.Select(coll.OpReduce, len(data), p.n), p.rank, p.n, root)
		if err != nil {
			return nil, err
		}
		blocks := [][]byte{acc}
		if err := p.exec(tagReduce, s, blocks, op); err != nil {
			return nil, err
		}
		acc = blocks[0]
	}
	if p.rank == root {
		return acc, nil
	}
	return nil, nil
}

// Allreduce folds and redistributes (recursive doubling or ring by
// payload size, like the FMI runtime).
func (p *Proc) Allreduce(data []byte, op core.Op) ([]byte, error) {
	buf := append([]byte(nil), data...)
	if p.n == 1 {
		return buf, nil
	}
	algo := mpiPolicy.Select(coll.OpAllreduce, len(data), p.n)
	s, err := coll.Allreduce(algo, p.rank, p.n)
	if err != nil {
		return nil, err
	}
	var blocks [][]byte
	if algo == coll.AlgoRing {
		blocks = coll.SplitChunks(buf, p.n)
	} else {
		blocks = [][]byte{buf}
	}
	if err := p.exec(tagAllreduce, s, blocks, op); err != nil {
		return nil, err
	}
	if algo == coll.AlgoRing {
		return coll.JoinChunks(blocks), nil
	}
	return blocks[0], nil
}

// Allgather collects every rank's buffer on every rank.
func (p *Proc) Allgather(data []byte) ([][]byte, error) {
	s, err := coll.Allgather(mpiPolicy.Select(coll.OpAllgather, len(data), p.n), p.rank, p.n)
	if err != nil {
		return nil, err
	}
	blocks := make([][]byte, p.n)
	blocks[p.rank] = append([]byte{}, data...)
	if err := p.exec(tagAllgather, s, blocks, nil); err != nil {
		return nil, err
	}
	return blocks, nil
}

// Alltoall exchanges parts pairwise; parts[i] travels to rank i and
// the result is indexed by source rank.
func (p *Proc) Alltoall(parts [][]byte) ([][]byte, error) {
	if len(parts) != p.n {
		return nil, fmt.Errorf("mpi: alltoall needs %d parts, got %d", p.n, len(parts))
	}
	total := 0
	for _, part := range parts {
		total += len(part)
	}
	s, err := coll.Alltoall(mpiPolicy.Select(coll.OpAlltoall, total, p.n), p.rank, p.n)
	if err != nil {
		return nil, err
	}
	blocks := make([][]byte, s.Blocks)
	copy(blocks, parts)
	blocks[p.rank] = append([]byte{}, parts[p.rank]...)
	if s.Blocks == 2*p.n { // pairwise staging region
		blocks[p.n+p.rank] = blocks[p.rank]
	}
	if err := p.exec(tagAlltoall, s, blocks, nil); err != nil {
		return nil, err
	}
	return blocks[s.Blocks-p.n:], nil
}

// Barrier synchronises all ranks (dissemination).
func (p *Proc) Barrier() error {
	if p.n == 1 {
		return nil
	}
	s, err := coll.Barrier(mpiPolicy.Select(coll.OpBarrier, 0, p.n), p.rank, p.n)
	if err != nil {
		return err
	}
	return p.exec(tagBarrierUp, s, nil, nil)
}
