package mpi

import (
	"fmt"

	"fmi/internal/core"
	"fmi/internal/transport"
)

// Reserved tags (user tags must be >= 0).
const (
	tagBcast     int32 = -1
	tagReduce    int32 = -2
	tagBarrierUp int32 = -6
	tagBarrierDn int32 = -7
	tagCkptRing  int32 = -20
	tagCkptSize  int32 = -21
)

const ctxWorld uint32 = 1

func (p *Proc) sendRaw(dst int, tag int32, data []byte) error {
	if dst < 0 || dst >= p.n {
		return fmt.Errorf("mpi: invalid rank %d", dst)
	}
	p.checkAlive()
	return p.ep.Send(p.table[dst], transport.Msg{
		Src: int32(p.rank), Tag: tag, Ctx: ctxWorld, Data: data,
	})
}

func (p *Proc) recvRaw(src int32, tag int32) (transport.Msg, error) {
	msg, err := p.m.Recv(ctxWorld, src, tag, p.killCh)
	if err != nil {
		p.checkAlive()
		return transport.Msg{}, err
	}
	return msg, nil
}

// Send transmits data to dst with a user tag.
func (p *Proc) Send(dst, tag int, data []byte) error {
	if tag < 0 {
		return fmt.Errorf("mpi: user tags must be >= 0")
	}
	return p.sendRaw(dst, int32(tag), data)
}

// Recv blocks for a message from src (or transport.AnySource via -1).
func (p *Proc) Recv(src, tag int) ([]byte, int, error) {
	if tag < 0 {
		return nil, -1, fmt.Errorf("mpi: user tags must be >= 0")
	}
	s := int32(src)
	if src < 0 {
		s = transport.AnySource
	}
	msg, err := p.recvRaw(s, int32(tag))
	if err != nil {
		return nil, -1, err
	}
	return msg.Data, int(msg.Src), nil
}

// Sendrecv posts the receive, sends, then completes the receive
// (posting-order matching, as in the FMI runtime).
func (p *Proc) Sendrecv(dst, sendTag int, data []byte, src, recvTag int) ([]byte, error) {
	if sendTag < 0 || recvTag < 0 {
		return nil, fmt.Errorf("mpi: user tags must be >= 0")
	}
	s := int32(src)
	if src < 0 {
		s = transport.AnySource
	}
	pend, err := p.m.PostRecv(ctxWorld, s, int32(recvTag))
	if err != nil {
		return nil, err
	}
	if err := p.Send(dst, sendTag, data); err != nil {
		return nil, err
	}
	msg, err := pend.Await(p.killCh)
	if err != nil {
		p.checkAlive()
		return nil, err
	}
	return msg.Data, nil
}

// Bcast broadcasts the root's buffer (binomial tree).
func (p *Proc) Bcast(root int, data []byte) ([]byte, error) {
	n := p.n
	if n == 1 {
		return data, nil
	}
	vrank := (p.rank - root + n) % n
	abs := func(v int) int { return (v + root) % n }
	mask := 1
	for mask < n {
		if vrank&mask != 0 {
			msg, err := p.recvRaw(int32(abs(vrank-mask)), tagBcast)
			if err != nil {
				return nil, err
			}
			data = msg.Data
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if vrank+mask < n {
			if err := p.sendRaw(abs(vrank+mask), tagBcast, data); err != nil {
				return nil, err
			}
		}
		mask >>= 1
	}
	return data, nil
}

// Reduce folds equal-length buffers to the root.
func (p *Proc) Reduce(root int, data []byte, op core.Op) ([]byte, error) {
	n := p.n
	acc := make([]byte, len(data))
	copy(acc, data)
	if n == 1 {
		return acc, nil
	}
	vrank := (p.rank - root + n) % n
	abs := func(v int) int { return (v + root) % n }
	mask := 1
	for mask < n {
		if vrank&mask == 0 {
			src := vrank + mask
			if src < n {
				msg, err := p.recvRaw(int32(abs(src)), tagReduce)
				if err != nil {
					return nil, err
				}
				if op != nil {
					op(acc, msg.Data)
				}
			}
		} else {
			if err := p.sendRaw(abs(vrank-mask), tagReduce, acc); err != nil {
				return nil, err
			}
			break
		}
		mask <<= 1
	}
	if p.rank == root {
		return acc, nil
	}
	return nil, nil
}

// Allreduce folds and redistributes.
func (p *Proc) Allreduce(data []byte, op core.Op) ([]byte, error) {
	res, err := p.Reduce(0, data, op)
	if err != nil {
		return nil, err
	}
	return p.bcastTag(0, res, tagBcast)
}

func (p *Proc) bcastTag(root int, data []byte, tag int32) ([]byte, error) {
	n := p.n
	if n == 1 {
		return data, nil
	}
	vrank := (p.rank - root + n) % n
	abs := func(v int) int { return (v + root) % n }
	mask := 1
	for mask < n {
		if vrank&mask != 0 {
			msg, err := p.recvRaw(int32(abs(vrank-mask)), tag)
			if err != nil {
				return nil, err
			}
			data = msg.Data
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if vrank+mask < n {
			if err := p.sendRaw(abs(vrank+mask), tag, data); err != nil {
				return nil, err
			}
		}
		mask >>= 1
	}
	return data, nil
}

// Barrier synchronises all ranks.
func (p *Proc) Barrier() error {
	n := p.n
	if n == 1 {
		return nil
	}
	vrank := p.rank
	mask := 1
	for mask < n {
		if vrank&mask == 0 {
			if src := vrank + mask; src < n {
				if _, err := p.recvRaw(int32(src), tagBarrierUp); err != nil {
					return err
				}
			}
		} else {
			if err := p.sendRaw(vrank-mask, tagBarrierUp, nil); err != nil {
				return err
			}
			break
		}
		mask <<= 1
	}
	_, err := p.bcastTag(0, nil, tagBarrierDn)
	return err
}
