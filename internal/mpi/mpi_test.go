package mpi

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fmi/internal/cluster"
	"fmi/internal/pfs"
	"fmi/internal/transport"
)

func fastModel() pfs.Model { return pfs.Model{TimeScale: 0} }

func sumOp(acc, src []byte) {
	for i := 0; i+8 <= len(acc); i += 8 {
		binary.LittleEndian.PutUint64(acc[i:], binary.LittleEndian.Uint64(acc[i:])+binary.LittleEndian.Uint64(src[i:]))
	}
}

// ckptApp is the MPI-style fault tolerant pattern: restore at start,
// checkpoint every interval.
func ckptApp(iters, interval int, results *sync.Map) App {
	return func(p *Proc) error {
		state := make([]byte, 16)
		start := 0
		if id, ok, err := p.Restore(state); err != nil {
			return err
		} else if ok {
			start = id + 1
		}
		for n := start; n < iters; n++ {
			contrib := make([]byte, 8)
			binary.LittleEndian.PutUint64(contrib, uint64(n+p.Rank()+1))
			sum, err := p.Allreduce(contrib, sumOp)
			if err != nil {
				return err
			}
			cs := binary.LittleEndian.Uint64(state[8:]) + binary.LittleEndian.Uint64(sum)*uint64(n+1)
			binary.LittleEndian.PutUint64(state[8:], cs)
			binary.LittleEndian.PutUint64(state[0:], uint64(n+1))
			if n%interval == 0 {
				if err := p.Checkpoint(n, state); err != nil {
					return err
				}
			}
		}
		results.Store(p.Rank(), binary.LittleEndian.Uint64(state[8:]))
		return nil
	}
}

func expectedChecksum(ranks, iters int) uint64 {
	var cs uint64
	for n := 0; n < iters; n++ {
		var sum uint64
		for r := 0; r < ranks; r++ {
			sum += uint64(n + r + 1)
		}
		cs += sum * uint64(n+1)
	}
	return cs
}

func TestMPIFailureFree(t *testing.T) {
	var results sync.Map
	rep, err := Run(Config{
		Ranks: 8, ProcsPerNode: 2, GroupSize: 4,
		LocalModel: fastModel(), Timeout: 30 * time.Second,
	}, ckptApp(10, 2, &results))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Relaunches != 0 {
		t.Fatalf("relaunches = %d", rep.Relaunches)
	}
	want := expectedChecksum(8, 10)
	count := 0
	results.Range(func(k, v any) bool {
		count++
		if v.(uint64) != want {
			t.Errorf("rank %v: %d != %d", k, v, want)
		}
		return true
	})
	if count != 8 {
		t.Fatalf("results = %d", count)
	}
	if rep.Checkpoints == 0 || rep.LocalStats.Writes == 0 {
		t.Fatal("no SCR activity recorded")
	}
}

func TestMPIFailStopRelaunch(t *testing.T) {
	// A node failure mid-run terminates the whole job; the relaunch
	// restores from SCR (rebuilding the lost node's files) and still
	// produces the exact answer.
	var results sync.Map
	clu := cluster.New(4 + 2)
	cfg := Config{
		Ranks: 8, ProcsPerNode: 2, SpareNodes: 2, GroupSize: 4,
		Cluster: clu, LocalModel: fastModel(), Timeout: 60 * time.Second,
		Network: transport.NewChanNetwork(transport.Options{}),
	}
	// Kill node 1 shortly after launch (while iterations run).
	var once sync.Once
	go func() {
		time.Sleep(30 * time.Millisecond)
		once.Do(func() { clu.Node(1).Fail() })
	}()
	app := func(p *Proc) error {
		state := make([]byte, 16)
		start := 0
		if id, ok, err := p.Restore(state); err != nil {
			return err
		} else if ok {
			start = id + 1
		}
		for n := start; n < 20; n++ {
			contrib := make([]byte, 8)
			binary.LittleEndian.PutUint64(contrib, uint64(n+p.Rank()+1))
			sum, err := p.Allreduce(contrib, sumOp)
			if err != nil {
				return err
			}
			cs := binary.LittleEndian.Uint64(state[8:]) + binary.LittleEndian.Uint64(sum)*uint64(n+1)
			binary.LittleEndian.PutUint64(state[8:], cs)
			binary.LittleEndian.PutUint64(state[0:], uint64(n+1))
			time.Sleep(2 * time.Millisecond) // give the fault a window
			if n%2 == 0 {
				if err := p.Checkpoint(n, state); err != nil {
					return err
				}
			}
		}
		results.Store(p.Rank(), binary.LittleEndian.Uint64(state[8:]))
		return nil
	}
	rep, err := Run(cfg, app)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Relaunches < 1 {
		t.Fatalf("relaunches = %d, want >= 1", rep.Relaunches)
	}
	want := expectedChecksum(8, 20)
	count := 0
	results.Range(func(k, v any) bool {
		count++
		if v.(uint64) != want {
			t.Errorf("rank %v: %d != %d", k, v, want)
		}
		return true
	})
	if count != 8 {
		t.Fatalf("results = %d", count)
	}
	if rep.Restores == 0 {
		t.Fatal("no restores recorded")
	}
}

func TestMPIP2PAndCollectives(t *testing.T) {
	var results sync.Map
	_, err := Run(Config{
		Ranks: 4, GroupSize: 4, LocalModel: fastModel(), Timeout: 30 * time.Second,
	}, func(p *Proc) error {
		// Ring Sendrecv.
		right := (p.Rank() + 1) % p.Size()
		left := (p.Rank() - 1 + p.Size()) % p.Size()
		payload := []byte{byte(p.Rank())}
		got, err := p.Sendrecv(right, 3, payload, left, 3)
		if err != nil {
			return err
		}
		// Bcast.
		var seed []byte
		if p.Rank() == 0 {
			seed = []byte{9}
		}
		b, err := p.Bcast(0, seed)
		if err != nil {
			return err
		}
		if err := p.Barrier(); err != nil {
			return err
		}
		results.Store(p.Rank(), [2]byte{got[0], b[0]})
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	results.Range(func(k, v any) bool {
		r := k.(int)
		got := v.([2]byte)
		left := byte((r + 3) % 4)
		if got[0] != left || got[1] != 9 {
			t.Errorf("rank %d: %v", r, got)
		}
		return true
	})
}

func TestMPILevel2Checkpoint(t *testing.T) {
	shared := pfs.NewShared("pfs", fastModel())
	var wrote atomic.Bool
	_, err := Run(Config{
		Ranks: 2, GroupSize: 2, LocalModel: fastModel(), SharedFS: shared,
		Timeout: 30 * time.Second,
	}, func(p *Proc) error {
		state := []byte{byte(p.Rank())}
		if err := p.Checkpoint(0, state); err != nil {
			return err
		}
		if err := p.CheckpointL2(0, state); err != nil {
			return err
		}
		wrote.Store(true)
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !wrote.Load() || shared.Stats().Writes == 0 {
		t.Fatal("level-2 checkpoint did not reach the PFS")
	}
}

func TestMPIRestoreWithoutCheckpoint(t *testing.T) {
	_, err := Run(Config{
		Ranks: 2, LocalModel: fastModel(), Timeout: 30 * time.Second,
	}, func(p *Proc) error {
		state := make([]byte, 8)
		id, ok, err := p.Restore(state)
		if err != nil {
			return err
		}
		if ok || id != 0 {
			t.Errorf("fresh job restored id=%d ok=%v", id, ok)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}
