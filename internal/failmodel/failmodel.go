// Package failmodel embeds the failure statistics the paper builds on
// (Table I and Fig 1: TSUBAME2.0, November 2010 – April 2012) and
// provides the failure-process arithmetic used across the experiments.
//
// Table I is reproduced exactly from the paper. The Fig 1 per-component
// rates are read off the published bar chart (the paper gives no
// table for it), chosen to be consistent with Table I's aggregate
// rows; they are approximations and documented as such in
// EXPERIMENTS.md.
package failmodel

import (
	"math"
	"math/rand"
	"time"
)

// HoursPerYear converts failures/year to MTBF.
const HoursPerYear = 24 * 365.25

// FailureType is one row of Table I.
type FailureType struct {
	Name            string
	AffectedNodes   int
	FailuresPerYear float64
}

// MTBFDays derives the row's MTBF in days from its rate.
func (ft FailureType) MTBFDays() float64 {
	return 365.25 / ft.FailuresPerYear
}

// RatePerSecond returns the failure rate in failures/second.
func (ft FailureType) RatePerSecond() float64 {
	return ft.FailuresPerYear / (HoursPerYear * 3600)
}

// TSUBAME2Types returns Table I: failure types on TSUBAME2.0.
func TSUBAME2Types() []FailureType {
	return []FailureType{
		{"PFS, Core switch", 1408, 5.61},
		{"Rack", 32, 4.20},
		{"Edge switch", 16, 21.02},
		{"PSU", 4, 12.61},
		{"Compute node", 1, 554.10},
	}
}

// Component is one bar of Fig 1: a failing component, the failure
// level (1–5, the paper's severity buckets keyed to affected-node
// count) and its rate in failures/second ×10⁻⁶.
type Component struct {
	Name         string
	Level        int
	RatePerSecE6 float64 // failures/second × 10⁻⁶
}

// TSUBAME2Components returns the Fig 1 breakdown. Level-1 component
// rates sum to the Table I compute-node row (554.1/yr ≈ 17.6×10⁻⁶/s);
// the individual splits are read off the published chart.
func TSUBAME2Components() []Component {
	return []Component{
		{"CPU", 1, 7.2},
		{"Disk", 1, 2.5},
		{"OtherSW", 1, 2.3},
		{"Unknown", 1, 2.0},
		{"M/B", 1, 1.4},
		{"Memory", 1, 1.0},
		{"OtherHW", 1, 0.7},
		{"GPU", 1, 0.5},
		{"PSU", 2, 0.40},
		{"Rack", 3, 0.13},
		{"Edge switch", 4, 0.67},
		{"PFS", 5, 0.12},
		{"Core switch", 5, 0.06},
	}
}

// SingleNodeFraction returns the fraction of failures that affect a
// single node, computed from Table I (the paper reports ~92%).
func SingleNodeFraction(types []FailureType) float64 {
	total, single := 0.0, 0.0
	for _, ft := range types {
		total += ft.FailuresPerYear
		if ft.AffectedNodes <= 1 {
			single += ft.FailuresPerYear
		}
	}
	if total == 0 {
		return 0
	}
	return single / total
}

// MultiNodeFraction returns the fraction of failures affecting more
// than the given number of nodes.
func MultiNodeFraction(types []FailureType, moreThan int) float64 {
	total, multi := 0.0, 0.0
	for _, ft := range types {
		total += ft.FailuresPerYear
		if ft.AffectedNodes > moreThan {
			multi += ft.FailuresPerYear
		}
	}
	if total == 0 {
		return 0
	}
	return multi / total
}

// SystemMTBF aggregates independent Poisson failure sources: the
// combined rate is the sum of rates.
func SystemMTBF(types []FailureType) time.Duration {
	rate := 0.0
	for _, ft := range types {
		rate += ft.RatePerSecond()
	}
	if rate == 0 {
		return 0
	}
	return time.Duration(1 / rate * float64(time.Second))
}

// ScaledNodeMTBF extrapolates a single-node MTBF to a system of n
// nodes (the paper's 17-minute estimate for 100,000 nodes uses this).
func ScaledNodeMTBF(singleNodeMTBF time.Duration, n int) time.Duration {
	if n <= 0 {
		return 0
	}
	return singleNodeMTBF / time.Duration(n)
}

// Process generates Poisson failure arrival times with the given MTBF.
type Process struct {
	MTBF time.Duration
	rng  *rand.Rand
}

// NewProcess creates a deterministic Poisson failure process.
func NewProcess(mtbf time.Duration, seed int64) *Process {
	return &Process{MTBF: mtbf, rng: rand.New(rand.NewSource(seed))}
}

// Next draws the next inter-arrival time (exponential with mean MTBF).
func (p *Process) Next() time.Duration {
	return time.Duration(p.rng.ExpFloat64() * float64(p.MTBF))
}

// Schedule draws arrival times until horizon.
func (p *Process) Schedule(horizon time.Duration) []time.Duration {
	var out []time.Duration
	t := time.Duration(0)
	for {
		t += p.Next()
		if t >= horizon {
			return out
		}
		out = append(out, t)
	}
}

// ExpectedFailures returns the expected number of failures in the
// window for a Poisson process with the given MTBF.
func ExpectedFailures(mtbf, window time.Duration) float64 {
	if mtbf <= 0 {
		return math.Inf(1)
	}
	return float64(window) / float64(mtbf)
}
