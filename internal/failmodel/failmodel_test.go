package failmodel

import (
	"math"
	"testing"
	"time"
)

func TestTable1MTBFs(t *testing.T) {
	// Table I prints MTBFs derived from the rates; verify we derive
	// the same values.
	want := map[string]float64{
		"PFS, Core switch": 65.10,
		"Rack":             86.90,
		"Edge switch":      17.37,
		"PSU":              28.94,
		"Compute node":     0.658,
	}
	for _, ft := range TSUBAME2Types() {
		w := want[ft.Name]
		got := ft.MTBFDays()
		if math.Abs(got-w)/w > 0.02 {
			t.Fatalf("%s: MTBF %.3f days, paper says %.3f", ft.Name, got, w)
		}
	}
}

func TestSingleNodeFractionPaperClaim(t *testing.T) {
	// Paper: "about 92% of failures affect a single node".
	f := SingleNodeFraction(TSUBAME2Types())
	if f < 0.90 || f > 0.94 {
		t.Fatalf("single-node fraction = %.3f, want ≈0.92", f)
	}
}

func TestMultiNodeFractionPaperClaim(t *testing.T) {
	// Paper: "only about 5% of failures affect more than 4 nodes".
	f := MultiNodeFraction(TSUBAME2Types(), 4)
	if f < 0.03 || f > 0.08 {
		t.Fatalf("multi-node (>4) fraction = %.3f, want ≈0.05", f)
	}
}

func TestComponentsConsistentWithTable1(t *testing.T) {
	// Sum of level-1 component rates should match the compute-node row
	// of Table I (554.1 failures/year ≈ 17.6e-6 /s), within chart-read
	// tolerance.
	var sumE6 float64
	for _, c := range TSUBAME2Components() {
		if c.Level == 1 {
			sumE6 += c.RatePerSecE6
		}
	}
	nodeRateE6 := FailureType{FailuresPerYear: 554.10}.RatePerSecond() * 1e6
	if math.Abs(sumE6-nodeRateE6)/nodeRateE6 > 0.05 {
		t.Fatalf("level-1 component sum %.2fe-6 vs Table I %.2fe-6", sumE6, nodeRateE6)
	}
}

func TestComponentLevels(t *testing.T) {
	for _, c := range TSUBAME2Components() {
		if c.Level < 1 || c.Level > 5 {
			t.Fatalf("%s: level %d out of range", c.Name, c.Level)
		}
		if c.RatePerSecE6 <= 0 {
			t.Fatalf("%s: non-positive rate", c.Name)
		}
	}
}

func TestSystemMTBF(t *testing.T) {
	// Combined rate of two sources halves the MTBF.
	types := []FailureType{
		{FailuresPerYear: 365.25}, // 1/day
		{FailuresPerYear: 365.25},
	}
	got := SystemMTBF(types)
	if math.Abs(got.Hours()-12) > 0.1 {
		t.Fatalf("SystemMTBF = %v, want 12h", got)
	}
	if SystemMTBF(nil) != 0 {
		t.Fatal("empty types should give 0")
	}
}

func TestScaledNodeMTBFPaperClaim(t *testing.T) {
	// Paper §I: extrapolating single-node failure rates to 100,000
	// nodes gives an estimated MTBF of 17 minutes. That corresponds to
	// a single-node MTBF of ~3.2 years.
	single := time.Duration(3.2 * 365.25 * 24 * float64(time.Hour))
	sys := ScaledNodeMTBF(single, 100000)
	if sys < 14*time.Minute || sys > 20*time.Minute {
		t.Fatalf("scaled MTBF = %v, want ≈17 min", sys)
	}
	if ScaledNodeMTBF(time.Hour, 0) != 0 {
		t.Fatal("n=0 should give 0")
	}
}

func TestPoissonProcessDeterministic(t *testing.T) {
	a := NewProcess(time.Second, 42)
	b := NewProcess(time.Second, 42)
	for i := 0; i < 10; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed gave different schedules")
		}
	}
}

func TestPoissonProcessMean(t *testing.T) {
	p := NewProcess(time.Second, 7)
	var sum time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		sum += p.Next()
	}
	mean := float64(sum) / n / float64(time.Second)
	if mean < 0.95 || mean > 1.05 {
		t.Fatalf("mean inter-arrival = %.3f s, want ≈1 s", mean)
	}
}

func TestSchedule(t *testing.T) {
	p := NewProcess(100*time.Millisecond, 3)
	sched := p.Schedule(2 * time.Second)
	if len(sched) == 0 {
		t.Fatal("no failures in 20 MTBFs")
	}
	prev := time.Duration(0)
	for _, at := range sched {
		if at <= prev || at >= 2*time.Second {
			t.Fatalf("schedule not increasing within horizon: %v", sched)
		}
		prev = at
	}
}

func TestExpectedFailures(t *testing.T) {
	if got := ExpectedFailures(time.Minute, time.Hour); math.Abs(got-60) > 1e-9 {
		t.Fatalf("got %f", got)
	}
	if !math.IsInf(ExpectedFailures(0, time.Hour), 1) {
		t.Fatal("zero MTBF should be +Inf")
	}
}
