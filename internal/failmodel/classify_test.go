package failmodel

import "testing"

// TestClassifyMatrix pins the protocol × fault-scope classification:
// the replication protocol masks single-copy losses and detects only
// the correlated pair loss, which degrades through global rollback to
// the L2 fallback; the rollback protocols detect everything.
func TestClassifyMatrix(t *testing.T) {
	want := []struct {
		p        Protocol
		s        Scope
		outcome  Outcome
		rollback bool
		fallback string
	}{
		{ProtocolGlobal, ScopeNode, Detected, true, ""},
		{ProtocolGlobal, ScopeGroup, Detected, true, "L2"},
		{ProtocolLocal, ScopeNode, Detected, false, ""},
		{ProtocolLocal, ScopeGroup, Detected, true, "L2"},
		{ProtocolReplica, ScopePrimary, Masked, false, ""},
		{ProtocolReplica, ScopeShadow, Masked, false, ""},
		{ProtocolReplica, ScopePair, Detected, true, "global+L2"},
	}
	m := Matrix()
	if len(m) != len(want) {
		t.Fatalf("Matrix has %d cells, want %d", len(m), len(want))
	}
	for i, w := range want {
		got, ok := Classify(w.p, w.s)
		if !ok {
			t.Fatalf("Classify(%s, %s): not in matrix", w.p, w.s)
		}
		if got != m[i] {
			t.Errorf("Classify(%s, %s) disagrees with Matrix order", w.p, w.s)
		}
		if got.Outcome != w.outcome || got.Rollback != w.rollback || got.Fallback != w.fallback {
			t.Errorf("Classify(%s, %s) = {%s rollback=%v fallback=%q}, want {%s rollback=%v fallback=%q}",
				w.p, w.s, got.Outcome, got.Rollback, got.Fallback, w.outcome, w.rollback, w.fallback)
		}
		if got.Action == "" {
			t.Errorf("Classify(%s, %s): empty Action", w.p, w.s)
		}
	}
}

// TestClassifyInvalidCombos: scopes a protocol cannot produce are
// rejected rather than defaulted.
func TestClassifyInvalidCombos(t *testing.T) {
	invalid := []struct {
		p Protocol
		s Scope
	}{
		{ProtocolGlobal, ScopePrimary},
		{ProtocolGlobal, ScopeShadow},
		{ProtocolGlobal, ScopePair},
		{ProtocolLocal, ScopePrimary},
		{ProtocolLocal, ScopePair},
		{ProtocolReplica, ScopeNode},
		{ProtocolReplica, ScopeGroup},
		{Protocol("none"), ScopeNode},
	}
	for _, c := range invalid {
		if got, ok := Classify(c.p, c.s); ok {
			t.Errorf("Classify(%s, %s) = %+v, want not-ok", c.p, c.s, got)
		}
	}
}

// TestMaskedFraction: only replication masks failures. With the
// TSUBAME2 mix (~92%% single-node) and perfectly anti-correlated pairs
// (pairProb 0), replication masks everything; with pairProb 1 it masks
// exactly the single-node fraction.
func TestMaskedFraction(t *testing.T) {
	types := TSUBAME2Types()
	if got := MaskedFraction(ProtocolGlobal, types, 0.5); got != 0 {
		t.Errorf("global masks %v, want 0", got)
	}
	if got := MaskedFraction(ProtocolLocal, types, 0.5); got != 0 {
		t.Errorf("local masks %v, want 0", got)
	}
	single := SingleNodeFraction(types)
	if single < 0.9 || single > 0.95 {
		t.Fatalf("SingleNodeFraction = %v, want ~0.92", single)
	}
	if got := MaskedFraction(ProtocolReplica, types, 0); got != 1 {
		t.Errorf("replica with pairProb 0 masks %v, want 1", got)
	}
	if got := MaskedFraction(ProtocolReplica, types, 1); got != single {
		t.Errorf("replica with pairProb 1 masks %v, want %v", got, single)
	}
	mid := MaskedFraction(ProtocolReplica, types, 0.5)
	if mid <= single || mid >= 1 {
		t.Errorf("replica with pairProb 0.5 masks %v, want in (%v, 1)", mid, single)
	}
}
