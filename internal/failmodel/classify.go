package failmodel

// Fault classification: what each recovery protocol does when a fault
// of a given scope hits the job. The rollback protocols (global, local)
// detect every node loss and pay a rollback or replay; the replication
// protocol masks single-copy losses entirely — a primary loss promotes
// the shadow in place, a shadow loss re-provisions in the background —
// and only a correlated pair loss is detected, at which point the job
// degrades to the rollback path, whose own level-1 feasibility check
// may further fall back to the level-2 (PFS) checkpoint.

// Protocol identifies a Config.Recovery protocol.
type Protocol string

const (
	// ProtocolGlobal is coordinated in-memory C/R: every rank rolls
	// back to the newest checkpoint available on all survivors.
	ProtocolGlobal Protocol = "global"
	// ProtocolLocal is sender-based message logging: only replacements
	// roll back; survivors keep their live state and replay their logs.
	ProtocolLocal Protocol = "local"
	// ProtocolReplica is primary/shadow rank replication: copy losses
	// are masked by promotion or re-provisioning, never rolled back.
	ProtocolReplica Protocol = "replica"
)

// Scope is the extent of a fault relative to the protocol's redundancy.
type Scope string

const (
	// ScopeNode is the loss of one compute node's ranks (the rollback
	// protocols hold exactly one copy of each rank, so any node loss
	// has this scope).
	ScopeNode Scope = "node"
	// ScopePrimary is the loss of a replica pair's active copy.
	ScopePrimary Scope = "primary"
	// ScopeShadow is the loss of a replica pair's passive copy.
	ScopeShadow Scope = "shadow"
	// ScopePair is the correlated loss of both copies of one rank —
	// the replication protocol's only unmasked fault.
	ScopePair Scope = "pair"
	// ScopeGroup is damage exceeding one checkpoint group's erasure
	// tolerance, forcing the level-2 (PFS) fallback.
	ScopeGroup Scope = "group-exceeded"
)

// Outcome is the application-visible effect of the fault.
type Outcome string

const (
	// Masked: the job continues with no rollback, no replay, and no
	// lost iterations; the application cannot observe the fault.
	Masked Outcome = "masked"
	// Detected: the runtime opens a recovery epoch and the job pays a
	// rollback, replay, or restart cost.
	Detected Outcome = "detected"
)

// Classification is one cell of the protocol × scope matrix.
type Classification struct {
	Protocol Protocol
	Scope    Scope
	Outcome  Outcome
	// Rollback reports whether any surviving rank loses iterations.
	Rollback bool
	// Fallback names the protocol or level recovery degrades to, empty
	// when the protocol handles the fault natively.
	Fallback string
	// Action is the recovery mechanism, phrased as in DESIGN.md.
	Action string
}

// Matrix returns the full protocol × fault-scope classification, in a
// fixed order so tests can pin it.
func Matrix() []Classification {
	return []Classification{
		{ProtocolGlobal, ScopeNode, Detected, true, "",
			"all ranks roll back to the newest globally available L1 checkpoint"},
		{ProtocolGlobal, ScopeGroup, Detected, true, "L2",
			"XOR/RS group unrecoverable: every rank restarts from the newest L2 (PFS) checkpoint"},
		{ProtocolLocal, ScopeNode, Detected, false, "",
			"replacements roll back and re-execute; survivors replay sender logs without losing state"},
		{ProtocolLocal, ScopeGroup, Detected, true, "L2",
			"XOR/RS group unrecoverable: logs reset and every rank restarts from the newest L2 (PFS) checkpoint"},
		{ProtocolReplica, ScopePrimary, Masked, false, "",
			"shadow promoted in place; a fresh shadow is re-provisioned from a spare in the background"},
		{ProtocolReplica, ScopeShadow, Masked, false, "",
			"primary continues; a fresh shadow is re-provisioned from a spare in the background"},
		{ProtocolReplica, ScopePair, Detected, true, "global+L2",
			"both copies lost: replication degrades to global rollback, itself subject to the L1 feasibility check and L2 fallback"},
	}
}

// Classify looks up the matrix cell for a protocol and fault scope.
// ok is false for combinations the protocol cannot produce (a replica
// job never sees a bare node scope — anti-affinity means one node
// holds primaries or shadows, classified per copy — and the rollback
// protocols have no primary/shadow/pair distinction).
func Classify(p Protocol, s Scope) (Classification, bool) {
	for _, c := range Matrix() {
		if c.Protocol == p && c.Scope == s {
			return c, true
		}
	}
	return Classification{}, false
}

// MaskedFraction returns the fraction of failures a protocol masks
// outright, given the Table I failure mix and the replica pair
// correlation: pairProb is the probability that a fault wide enough to
// hit several nodes takes out both copies of at least one rank.
// Rollback protocols mask nothing; replication masks every single-node
// failure (one copy of some ranks) and multi-node failures that happen
// to miss one copy of every pair.
func MaskedFraction(p Protocol, types []FailureType, pairProb float64) float64 {
	if p != ProtocolReplica {
		return 0
	}
	single := SingleNodeFraction(types)
	return single + (1-single)*(1-pairProb)
}
