package erasure

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// The acceptance target: the striped worker-pool encoder must beat the
// single-goroutine scalar encoder by >= 2x on >= 4 cores. Run with
//
//	go test -bench Erasure ./internal/erasure ./internal/ckpt
//
// MB/s is reported via SetBytes (data bytes encoded per op).

const benchShardLen = 4 << 20

func benchCode(b *testing.B, k, m int) (*Code, [][]byte, [][]byte) {
	b.Helper()
	c, err := New(k, m)
	if err != nil {
		b.Fatal(err)
	}
	data := make([][]byte, k)
	for i := range data {
		data[i] = make([]byte, benchShardLen)
		for j := range data[i] {
			data[i][j] = byte(i*31 + j)
		}
	}
	parity := make([][]byte, m)
	for j := range parity {
		parity[j] = make([]byte, benchShardLen)
	}
	b.SetBytes(int64(k * benchShardLen))
	return c, data, parity
}

func BenchmarkErasureEncodeScalar(b *testing.B) {
	for _, km := range [][2]int{{14, 2}, {13, 3}} {
		b.Run(fmt.Sprintf("rs(%d,%d)", km[0], km[1]), func(b *testing.B) {
			c, data, parity := benchCode(b, km[0], km[1])
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Encode(data, parity)
			}
		})
	}
}

func BenchmarkErasureEncodeParallel(b *testing.B) {
	for _, km := range [][2]int{{14, 2}, {13, 3}} {
		b.Run(fmt.Sprintf("rs(%d,%d)x%d", km[0], km[1], runtime.GOMAXPROCS(0)), func(b *testing.B) {
			c, data, parity := benchCode(b, km[0], km[1])
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.EncodeStriped(data, parity, 0)
			}
		})
	}
}

func BenchmarkErasureRecover(b *testing.B) {
	c, data, parity := benchCode(b, 14, 2)
	c.Encode(data, parity)
	// Lose the first two data shards; recover from 12 data + 2 parity.
	idx := make([]int, 14)
	shards := make([][]byte, 14)
	for i := 2; i < 14; i++ {
		idx[i-2] = i
		shards[i-2] = data[i]
	}
	idx[12], idx[13] = 14, 15
	shards[12], shards[13] = parity[0], parity[1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Recover(idx, shards, []int{0, 1}, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// TestStripedSpeedup is an informative gate on the tentpole's parallel
// claim: on >= 4 cores the striped encoder should be clearly ahead of
// the scalar one. The threshold is deliberately below the 2x bench
// target so a loaded CI box doesn't flake, but a broken worker pool
// (e.g. running serially) still fails.
func TestStripedSpeedup(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skip("needs >= 4 cores")
	}
	if testing.Short() {
		t.Skip("timing test")
	}
	c, err := New(13, 3)
	if err != nil {
		t.Fatal(err)
	}
	data := make([][]byte, 13)
	for i := range data {
		data[i] = make([]byte, 8<<20)
	}
	parity := make([][]byte, 3)
	for j := range parity {
		parity[j] = make([]byte, 8<<20)
	}
	scalar := minDuration(3, func() { c.Encode(data, parity) })
	striped := minDuration(3, func() { c.EncodeStriped(data, parity, 0) })
	speedup := float64(scalar) / float64(striped)
	t.Logf("scalar %v, striped %v, speedup %.2fx on %d cores", scalar, striped, speedup, runtime.GOMAXPROCS(0))
	if speedup < 1.3 {
		t.Fatalf("striped encoder only %.2fx the scalar one", speedup)
	}
}

func minDuration(trials int, f func()) time.Duration {
	best := time.Duration(1 << 62)
	for i := 0; i < trials; i++ {
		t0 := time.Now()
		f()
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	return best
}
