package erasure

import (
	"bytes"
	"math/rand"
	"testing"
)

// refMulAdd is the trivially-correct reference: dst ^= coef*src one
// product-table lookup at a time. The wide kernels are golden-tested
// against it byte for byte.
func refMulAdd(dst, src []byte, coef byte) {
	for i := range src {
		dst[i] ^= mulTable[coef][src[i]]
	}
}

// TestNibbleTablesMatchMulTable proves the low/high nibble split is a
// faithful decomposition: nibLo[a][b&15] ^ nibHi[a][b>>4] == a*b for
// every pair of bytes.
func TestNibbleTablesMatchMulTable(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			got := nibLo[a][b&15] ^ nibHi[a][b>>4]
			if got != mulTable[a][b] {
				t.Fatalf("nibble split %d*%d = %d, want %d", a, b, got, mulTable[a][b])
			}
		}
	}
}

// TestWideKernelsBitIdentical golden-tests every wide kernel and the
// dispatching mulAddRange against the byte-at-a-time 256x256-table
// reference for all 256 coefficients, across sizes that exercise word
// alignment, ragged tails, and both sides of the dispatch cutover.
func TestWideKernelsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(0x51ce8))
	sizes := []int{1, 3, 7, 8, 9, 15, 16, 31, nibbleMax - 1, nibbleMax, nibbleMax + 5, 1024, 4093}
	for _, size := range sizes {
		src := make([]byte, size)
		base := make([]byte, size)
		rng.Read(src)
		rng.Read(base)
		kernels := map[string]func(dst, src []byte, coef byte){
			"mulAddW8": mulAddW8,
			"mulAddS8": mulAddS8,
			"mulAddS4": mulAddS4,
			"mulAddRange": func(dst, src []byte, coef byte) {
				mulAddRange(dst, src, coef, 0, len(src))
			},
		}
		for coef := 0; coef < 256; coef++ {
			want := append([]byte(nil), base...)
			refMulAdd(want, src, byte(coef))
			for name, kern := range kernels {
				got := append([]byte(nil), base...)
				kern(got, src, byte(coef))
				if !bytes.Equal(got, want) {
					t.Fatalf("%s coef=%d size=%d diverges from reference", name, coef, size)
				}
			}
		}
	}
}

// TestPairKernelBitIdentical golden-tests the pair-fused kernel (and
// the row fold built on it) against two sequential reference passes,
// including zero and identity coefficients.
func TestPairKernelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(0xab))
	const size = 1031
	a := make([]byte, size)
	b := make([]byte, size)
	base := make([]byte, size)
	rng.Read(a)
	rng.Read(b)
	rng.Read(base)
	coefs := []byte{0, 1, 2, 29, 142, 255}
	for _, ca := range coefs {
		for _, cb := range coefs {
			want := append([]byte(nil), base...)
			refMulAdd(want, a, ca)
			refMulAdd(want, b, cb)

			got := append([]byte(nil), base...)
			mulAddPairRange(got, a, b, ca, cb, 0, size)
			if !bytes.Equal(got, want) {
				t.Fatalf("mulAddPairRange ca=%d cb=%d diverges from reference", ca, cb)
			}
		}
	}

	// Odd shard counts exercise the single-shard remainder of the fold.
	for _, nShards := range []int{1, 2, 3, 5, 8} {
		shards := make([][]byte, nShards)
		row := make([]byte, nShards)
		for i := range shards {
			shards[i] = make([]byte, size)
			rng.Read(shards[i])
			row[i] = byte(rng.Intn(256))
		}
		want := append([]byte(nil), base...)
		for i := range shards {
			refMulAdd(want, shards[i], row[i])
		}
		got := append([]byte(nil), base...)
		mulAddRowRange(got, shards, row, 0, size)
		if !bytes.Equal(got, want) {
			t.Fatalf("mulAddRowRange over %d shards diverges from reference", nShards)
		}
	}
}

// TestMulAddRangeSubrange checks the ranged entry point only touches
// [lo,hi) and still matches the reference inside it, including ranges
// that straddle the dispatch cutover and hi clamped to len(src).
func TestMulAddRangeSubrange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const size = 2048
	src := make([]byte, size)
	base := make([]byte, size)
	rng.Read(src)
	rng.Read(base)
	ranges := [][2]int{{0, size}, {5, 13}, {100, 100 + nibbleMax + 3}, {size - 9, size}, {size - 3, size + 50}, {17, 17}}
	for _, coef := range []byte{0, 1, 2, 29, 255} {
		for _, r := range ranges {
			lo, hi := r[0], r[1]
			want := append([]byte(nil), base...)
			clamped := hi
			if clamped > size {
				clamped = size
			}
			refMulAdd(want[lo:clamped], src[lo:clamped], coef)

			got := append([]byte(nil), base...)
			mulAddRange(got, src, coef, lo, hi)
			if !bytes.Equal(got, want) {
				t.Fatalf("mulAddRange coef=%d range=[%d,%d) diverges from reference", coef, lo, hi)
			}
		}
	}
}

func benchMulAdd(b *testing.B, f func(dst, src []byte, coef byte)) {
	src := make([]byte, stripeLen)
	dst := make([]byte, stripeLen)
	rand.New(rand.NewSource(1)).Read(src)
	b.SetBytes(stripeLen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f(dst, src, 0x8e)
	}
}

func BenchmarkMulAddByteTable(b *testing.B) {
	benchMulAdd(b, func(dst, src []byte, coef byte) {
		tab := &mulTable[coef]
		for i := range src {
			dst[i] ^= tab[src[i]]
		}
	})
}

func BenchmarkMulAddW8(b *testing.B) { benchMulAdd(b, mulAddW8) }
func BenchmarkMulAddS4(b *testing.B) { benchMulAdd(b, mulAddS4) }
func BenchmarkMulAddS8(b *testing.B) { benchMulAdd(b, mulAddS8) }

func BenchmarkMulAddPair(b *testing.B) {
	a1 := make([]byte, stripeLen)
	a2 := make([]byte, stripeLen)
	dst := make([]byte, stripeLen)
	rng := rand.New(rand.NewSource(1))
	rng.Read(a1)
	rng.Read(a2)
	b.SetBytes(2 * stripeLen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mulAddPairRange(dst, a1, a2, 0x8e, 0x2b, 0, stripeLen)
	}
}
