package erasure

import "fmt"

// matrix is a dense row-major matrix over GF(2^8).
type matrix [][]byte

func newMatrix(rows, cols int) matrix {
	m := make(matrix, rows)
	for i := range m {
		m[i] = make([]byte, cols)
	}
	return m
}

// vandermonde returns the rows x cols matrix V[i][j] = (alpha^i)^j.
// The evaluation points alpha^i are pairwise distinct for i < 255, so
// any cols of the rows form an invertible square Vandermonde matrix.
func vandermonde(rows, cols int) matrix {
	v := newMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			v[i][j] = Exp(i * j)
		}
	}
	return v
}

// mul returns a*b.
func (a matrix) mul(b matrix) matrix {
	rows, inner, cols := len(a), len(b), len(b[0])
	out := newMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			var acc byte
			for t := 0; t < inner; t++ {
				acc ^= mulTable[a[i][t]][b[t][j]]
			}
			out[i][j] = acc
		}
	}
	return out
}

// invert returns the inverse of a square matrix via Gauss-Jordan
// elimination, or an error if the matrix is singular.
func (a matrix) invert() (matrix, error) {
	n := len(a)
	// Augment [a | I] and reduce in place on a working copy.
	w := newMatrix(n, 2*n)
	for i := 0; i < n; i++ {
		copy(w[i], a[i])
		w[i][n+i] = 1
	}
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if w[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, fmt.Errorf("erasure: singular matrix")
		}
		w[col], w[pivot] = w[pivot], w[col]
		if inv := Inv(w[col][col]); inv != 1 {
			row := w[col]
			for j := 0; j < 2*n; j++ {
				row[j] = mulTable[inv][row[j]]
			}
		}
		for r := 0; r < n; r++ {
			if r == col || w[r][col] == 0 {
				continue
			}
			f := w[r][col]
			for j := 0; j < 2*n; j++ {
				w[r][j] ^= mulTable[f][w[col][j]]
			}
		}
	}
	out := make(matrix, n)
	for i := range out {
		out[i] = w[i][n:]
	}
	return out, nil
}
