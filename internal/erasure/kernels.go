package erasure

import (
	"encoding/binary"
	"runtime"
	"sync"
	"sync/atomic"
)

// stripeLen is the unit of work handed to the pool: large enough to
// amortise dispatch, small enough that a shard stripe plus its product
// table stays in L1/L2 cache while every coefficient pass runs over it.
const stripeLen = 32 << 10

// nibbleMax is the size cutover between the nibble-table kernels and
// the row-table kernels. Short ranges are dominated by table warm-up,
// where the 32-byte per-coefficient nibble tables cost one cache line
// against up to four for a 256-byte product row; past the cutover the
// row stays hot and its single lookup per byte wins over the nibble
// kernels' two (measured: BenchmarkMulAdd* in kernels_test.go).
const nibbleMax = 64

// mulAddRange computes dst[lo:hi] ^= coef * src[lo:hi] in GF(2^8).
// coef==1 degenerates to XOR and runs 8-byte words; short general
// ranges run the cache-compact slice-by-4 nibble kernel, long ones the
// slice-by-8 row kernel (8 bytes per step, one dst access per word).
func mulAddRange(dst, src []byte, coef byte, lo, hi int) {
	if coef == 0 {
		return
	}
	if hi > len(src) {
		hi = len(src)
	}
	if lo >= hi {
		return
	}
	if coef == 1 {
		i := lo
		for ; i+8 <= hi; i += 8 {
			binary.LittleEndian.PutUint64(dst[i:],
				binary.LittleEndian.Uint64(dst[i:])^binary.LittleEndian.Uint64(src[i:]))
		}
		for ; i < hi; i++ {
			dst[i] ^= src[i]
		}
		return
	}
	if hi-lo <= nibbleMax {
		mulAddS4(dst[lo:hi], src[lo:hi], coef)
		return
	}
	mulAddW8(dst[lo:hi], src[lo:hi], coef)
}

// mulAddPairRange folds two source shards into dst in one pass:
// dst[lo:hi] ^= ca*a[lo:hi] ^ cb*b[lo:hi]. The two product-table
// lookup streams are independent, so they pipeline where back-to-back
// mulAddRange calls would serialise, and dst is read and written once
// instead of twice. This is the kernel the encode and recover loops
// drive for every pair of shards (see encodeRange).
func mulAddPairRange(dst, a, b []byte, ca, cb byte, lo, hi int) {
	if ca == 0 {
		mulAddRange(dst, b, cb, lo, hi)
		return
	}
	if cb == 0 {
		mulAddRange(dst, a, ca, lo, hi)
		return
	}
	if hi > len(a) {
		hi = len(a)
	}
	if hi > len(b) {
		hi = len(b)
	}
	if lo >= hi {
		return
	}
	ta := &mulTable[ca]
	tb := &mulTable[cb]
	d := dst[lo:hi]
	x := a[lo:hi:hi]
	y := b[lo:hi:hi]
	for i := range d {
		d[i] ^= ta[x[i]] ^ tb[y[i]]
	}
}

// mulAddW8 is the slice-by-8 row-table kernel: dst ^= coef * src,
// 8 bytes per step. Each 64-bit word of src is split into eight bytes
// looked up in the coefficient's product row; the products are
// reassembled into one word and folded into dst with a single XOR
// load/store pair, cutting dst memory traffic 8x against the byte
// loop. len(dst) must equal len(src).
func mulAddW8(dst, src []byte, coef byte) {
	tab := &mulTable[coef]
	n := len(src) &^ 7
	for i := 0; i < n; i += 8 {
		s := binary.LittleEndian.Uint64(src[i:])
		p := uint64(tab[s&255]) |
			uint64(tab[s>>8&255])<<8 |
			uint64(tab[s>>16&255])<<16 |
			uint64(tab[s>>24&255])<<24 |
			uint64(tab[s>>32&255])<<32 |
			uint64(tab[s>>40&255])<<40 |
			uint64(tab[s>>48&255])<<48 |
			uint64(tab[s>>56])<<56
		binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(dst[i:])^p)
	}
	for i := n; i < len(src); i++ {
		dst[i] ^= tab[src[i]]
	}
}

// mulAddS8 is the slice-by-8 nibble kernel: dst ^= coef * src, 8 bytes
// per step through the 32-byte low/high nibble tables (see gf.go). Two
// lookups per byte make it slower than mulAddW8 once the product row
// is cached, so the dispatch prefers it only where table footprint
// dominates; it doubles as the independent implementation the golden
// tests cross-check the row kernels against.
func mulAddS8(dst, src []byte, coef byte) {
	lo4 := &nibLo[coef]
	hi4 := &nibHi[coef]
	n := len(src) &^ 7
	for i := 0; i < n; i += 8 {
		s := binary.LittleEndian.Uint64(src[i:])
		p := uint64(lo4[s&15]^hi4[s>>4&15]) |
			uint64(lo4[s>>8&15]^hi4[s>>12&15])<<8 |
			uint64(lo4[s>>16&15]^hi4[s>>20&15])<<16 |
			uint64(lo4[s>>24&15]^hi4[s>>28&15])<<24 |
			uint64(lo4[s>>32&15]^hi4[s>>36&15])<<32 |
			uint64(lo4[s>>40&15]^hi4[s>>44&15])<<40 |
			uint64(lo4[s>>48&15]^hi4[s>>52&15])<<48 |
			uint64(lo4[s>>56&15]^hi4[s>>60&15])<<56
		binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(dst[i:])^p)
	}
	for i := n; i < len(src); i++ {
		dst[i] ^= lo4[src[i]&15] ^ hi4[src[i]>>4]
	}
}

// mulAddS4 is the slice-by-4 nibble variant: 32-bit words, eight
// nibble lookups per step. The short-range dispatch entry point — its
// whole table footprint is 32 bytes, so a cold call touches one cache
// line pair where the row kernels may fault in four.
func mulAddS4(dst, src []byte, coef byte) {
	lo4 := &nibLo[coef]
	hi4 := &nibHi[coef]
	n := len(src) &^ 3
	for i := 0; i < n; i += 4 {
		s := binary.LittleEndian.Uint32(src[i:])
		p := uint32(lo4[s&15]^hi4[s>>4&15]) |
			uint32(lo4[s>>8&15]^hi4[s>>12&15])<<8 |
			uint32(lo4[s>>16&15]^hi4[s>>20&15])<<16 |
			uint32(lo4[s>>24&15]^hi4[s>>28&15])<<24
		binary.LittleEndian.PutUint32(dst[i:], binary.LittleEndian.Uint32(dst[i:])^p)
	}
	for i := n; i < len(src); i++ {
		dst[i] ^= lo4[src[i]&15] ^ hi4[src[i]>>4]
	}
}

// parallelStripes splits [0,n) into stripeLen ranges pulled from a
// shared counter by `workers` goroutines (<= 0 means GOMAXPROCS). Small
// inputs and workers==1 run inline: the parallel path must never be
// slower than the scalar one on data that fits a single stripe.
func parallelStripes(n, workers int, f func(lo, hi int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	stripes := (n + stripeLen - 1) / stripeLen
	if workers > stripes {
		workers = stripes
	}
	if workers <= 1 {
		if n > 0 {
			f(0, n)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				s := int(next.Add(1)) - 1
				lo := s * stripeLen
				if lo >= n {
					return
				}
				hi := lo + stripeLen
				if hi > n {
					hi = n
				}
				f(lo, hi)
			}
		}()
	}
	wg.Wait()
}
