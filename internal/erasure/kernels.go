package erasure

import (
	"encoding/binary"
	"runtime"
	"sync"
	"sync/atomic"
)

// stripeLen is the unit of work handed to the pool: large enough to
// amortise dispatch, small enough that a shard stripe plus its product
// table stays in L1/L2 cache while every coefficient pass runs over it.
const stripeLen = 32 << 10

// mulAddRange computes dst[lo:hi] ^= coef * src[lo:hi] in GF(2^8).
// coef==1 degenerates to XOR and runs 8-byte words; the general case
// is one product-table lookup per byte.
func mulAddRange(dst, src []byte, coef byte, lo, hi int) {
	if coef == 0 {
		return
	}
	if hi > len(src) {
		hi = len(src)
	}
	if coef == 1 {
		i := lo
		for ; i+8 <= hi; i += 8 {
			binary.LittleEndian.PutUint64(dst[i:],
				binary.LittleEndian.Uint64(dst[i:])^binary.LittleEndian.Uint64(src[i:]))
		}
		for ; i < hi; i++ {
			dst[i] ^= src[i]
		}
		return
	}
	tab := &mulTable[coef]
	for i := lo; i < hi; i++ {
		dst[i] ^= tab[src[i]]
	}
}

// parallelStripes splits [0,n) into stripeLen ranges pulled from a
// shared counter by `workers` goroutines (<= 0 means GOMAXPROCS). Small
// inputs and workers==1 run inline: the parallel path must never be
// slower than the scalar one on data that fits a single stripe.
func parallelStripes(n, workers int, f func(lo, hi int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	stripes := (n + stripeLen - 1) / stripeLen
	if workers > stripes {
		workers = stripes
	}
	if workers <= 1 {
		if n > 0 {
			f(0, n)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				s := int(next.Add(1)) - 1
				lo := s * stripeLen
				if lo >= n {
					return
				}
				hi := lo + stripeLen
				if hi > n {
					hi = n
				}
				f(lo, hi)
			}
		}()
	}
	wg.Wait()
}
