package erasure

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestGFAxioms(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a, b, c := byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))
		if Mul(a, b) != Mul(b, a) {
			t.Fatalf("Mul not commutative at %d,%d", a, b)
		}
		if Mul(a, Mul(b, c)) != Mul(Mul(a, b), c) {
			t.Fatalf("Mul not associative at %d,%d,%d", a, b, c)
		}
		if Mul(a, b^c) != Mul(a, b)^Mul(a, c) {
			t.Fatalf("Mul not distributive at %d,%d,%d", a, b, c)
		}
		if a != 0 {
			if Mul(a, Inv(a)) != 1 {
				t.Fatalf("Inv(%d) wrong", a)
			}
			if Div(Mul(a, b), a) != b {
				t.Fatalf("Div inconsistent at %d,%d", a, b)
			}
		}
	}
	if Mul(0, 7) != 0 || Mul(7, 0) != 0 || Mul(1, 133) != 133 {
		t.Fatal("identity/zero products wrong")
	}
}

func TestGeneratorSystematic(t *testing.T) {
	for _, km := range [][2]int{{1, 1}, {2, 2}, {4, 3}, {13, 3}, {16, 1}} {
		c, err := New(km[0], km[1])
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < c.K; i++ {
			for j := 0; j < c.K; j++ {
				want := byte(0)
				if i == j {
					want = 1
				}
				if c.gen[i][j] != want {
					t.Fatalf("RS(%d,%d): generator top is not the identity at (%d,%d)", c.K, c.M, i, j)
				}
			}
		}
	}
}

// Every k-subset of generator rows must be invertible (the MDS
// property); exhaustive for small codes.
func TestGeneratorMDS(t *testing.T) {
	for _, km := range [][2]int{{2, 2}, {3, 3}, {4, 2}, {5, 3}} {
		c, err := New(km[0], km[1])
		if err != nil {
			t.Fatal(err)
		}
		n, k := c.K+c.M, c.K
		var rec func(start int, rows []int)
		rec = func(start int, rows []int) {
			if len(rows) == k {
				sub := newMatrix(k, k)
				for i, r := range rows {
					copy(sub[i], c.gen[r])
				}
				if _, err := sub.invert(); err != nil {
					t.Fatalf("RS(%d,%d): rows %v singular", c.K, c.M, rows)
				}
				return
			}
			for r := start; r < n; r++ {
				rec(r+1, append(rows, r))
			}
		}
		rec(0, nil)
	}
}

func randShards(rng *rand.Rand, k, n int) [][]byte {
	data := make([][]byte, k)
	for i := range data {
		data[i] = make([]byte, n)
		rng.Read(data[i])
	}
	return data
}

func TestEncodeRecoverAllLossPatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, km := range [][2]int{{1, 1}, {2, 1}, {2, 2}, {3, 2}, {5, 3}, {13, 3}} {
		k, m := km[0], km[1]
		c, err := New(k, m)
		if err != nil {
			t.Fatal(err)
		}
		const n = 257 // odd length exercises the word-stride tails
		data := randShards(rng, k, n)
		parity := make([][]byte, m)
		for j := range parity {
			parity[j] = make([]byte, n)
		}
		c.Encode(data, parity)

		// Knock out every subset of up to m shards (sampled for big codes).
		total := k + m
		for trial := 0; trial < 200; trial++ {
			nLost := 1 + rng.Intn(m)
			lost := map[int]bool{}
			for len(lost) < nLost {
				lost[rng.Intn(total)] = true
			}
			shards := make([][]byte, total)
			for i := 0; i < k; i++ {
				if !lost[i] {
					shards[i] = data[i]
				}
			}
			for j := 0; j < m; j++ {
				if !lost[k+j] {
					shards[k+j] = parity[j]
				}
			}
			if err := c.Reconstruct(shards, 1); err != nil {
				t.Fatalf("RS(%d,%d) lost %v: %v", k, m, lost, err)
			}
			for i := 0; i < k; i++ {
				if !bytes.Equal(shards[i], data[i]) {
					t.Fatalf("RS(%d,%d) lost %v: data shard %d wrong", k, m, lost, i)
				}
			}
			for j := 0; j < m; j++ {
				if !bytes.Equal(shards[k+j], parity[j]) {
					t.Fatalf("RS(%d,%d) lost %v: parity shard %d wrong", k, m, lost, j)
				}
			}
		}
	}
}

func TestEncodeStripedMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c, err := New(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	n := 3*stripeLen + 17 // force several stripes plus a ragged tail
	data := randShards(rng, 6, n)
	want := make([][]byte, 3)
	got := make([][]byte, 3)
	one := make([][]byte, 3)
	for j := 0; j < 3; j++ {
		want[j] = make([]byte, n)
		got[j] = make([]byte, n)
		one[j] = make([]byte, n)
	}
	c.Encode(data, want)
	c.EncodeStriped(data, got, 4)
	for j := 0; j < 3; j++ {
		if !bytes.Equal(got[j], want[j]) {
			t.Fatalf("striped parity %d differs from scalar", j)
		}
		c.EncodeRowInto(j, data, one[j], 4)
		if !bytes.Equal(one[j], want[j]) {
			t.Fatalf("EncodeRowInto parity %d differs from scalar", j)
		}
	}
}

func TestRecoverFromParityOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c, err := New(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := randShards(rng, 2, 100)
	parity := [][]byte{make([]byte, 100), make([]byte, 100)}
	c.Encode(data, parity)
	got, err := c.Recover([]int{2, 3}, parity, []int{0, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if !bytes.Equal(got[i], data[i]) {
			t.Fatalf("data shard %d not recovered from parity alone", i)
		}
	}
}

func TestNewRejectsBadParams(t *testing.T) {
	for _, km := range [][2]int{{0, 1}, {1, 0}, {-1, 2}, {200, 100}} {
		if _, err := New(km[0], km[1]); err == nil {
			t.Fatalf("New(%d,%d) accepted", km[0], km[1])
		}
	}
}
