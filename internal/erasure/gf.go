// Package erasure implements systematic Reed–Solomon erasure coding
// RS(k,m) over GF(2^8): any m of the k+m shards may be lost and the
// data is still exactly recoverable. The checkpoint layer (internal/
// ckpt) uses it to protect a group's checkpoints against multi-node
// loss, generalising the paper's single-failure XOR encoding (§V-A) in
// the direction ReStore and FTHP-MPI argue for: richer in-memory
// redundancy so correlated failures never force a slow PFS restart.
//
// The field is GF(2^8) with the AES/QR-code reducing polynomial
// x^8+x^4+x^3+x^2+1 (0x11d). Arithmetic uses log/exp tables; the bulk
// encode/decode kernels use a precomputed 256x256 product table so the
// inner loop per coefficient is a single table-indexed XOR, and split
// their buffers into cache-friendly stripes fanned out to a worker
// pool (see kernels.go).
package erasure

// polynomial 0x11d: x^8 + x^4 + x^3 + x^2 + 1, generator alpha = 2.
const poly = 0x11d

var (
	// expTable[i] = alpha^i, doubled so exp(log a + log b) needs no mod.
	expTable [510]byte
	// logTable[x] = log_alpha x for x != 0.
	logTable [256]byte
	// mulTable[a][b] = a*b in GF(2^8); 64 KiB, built once at init.
	mulTable [256][256]byte
	// nibLo[a][n] = a*n and nibHi[a][n] = a*(n<<4): the low/high-nibble
	// split of multiplication by a. GF addition is XOR and
	// multiplication distributes over it, so for any byte b,
	// a*b = nibLo[a][b&15] ^ nibHi[a][b>>4]. The wide (slice-by-4/8)
	// kernels in kernels.go run on these 32-byte per-coefficient
	// tables: the whole working set of a coefficient pass lives in a
	// fraction of one cache line pair instead of a 256-byte row.
	// 8 KiB total, built once at init alongside mulTable.
	nibLo [256][16]byte
	nibHi [256][16]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		expTable[i] = byte(x)
		expTable[i+255] = byte(x)
		logTable[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= poly
		}
	}
	for a := 1; a < 256; a++ {
		la := int(logTable[a])
		for b := 1; b < 256; b++ {
			mulTable[a][b] = expTable[la+int(logTable[b])]
		}
	}
	for a := 1; a < 256; a++ {
		for n := 1; n < 16; n++ {
			nibLo[a][n] = mulTable[a][n]
			nibHi[a][n] = mulTable[a][n<<4]
		}
	}
}

// Mul returns a*b in GF(2^8).
func Mul(a, b byte) byte { return mulTable[a][b] }

// Div returns a/b in GF(2^8); b must be nonzero.
func Div(a, b byte) byte {
	if b == 0 {
		panic("erasure: division by zero in GF(2^8)")
	}
	if a == 0 {
		return 0
	}
	return expTable[int(logTable[a])+255-int(logTable[b])]
}

// Inv returns the multiplicative inverse of a; a must be nonzero.
func Inv(a byte) byte { return Div(1, a) }

// Exp returns alpha^n for n >= 0.
func Exp(n int) byte { return expTable[n%255] }
