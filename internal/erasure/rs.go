package erasure

import "fmt"

// Code is a systematic RS(k,m) code: k data shards, m parity shards,
// all equal length; any k of the k+m shards reconstruct the data.
//
// The generator is G = V · Vtop⁻¹ where V is the (k+m)×k Vandermonde
// matrix over distinct points alpha^i: the top k rows of G are the
// identity (systematic) and any k rows of G are invertible (MDS),
// because any k rows of V are a Vandermonde square.
type Code struct {
	K, M int
	gen  matrix // (k+m) x k; rows 0..k-1 are the identity
}

// New builds an RS(k,m) code. k >= 1, m >= 1, k+m <= 255.
func New(k, m int) (*Code, error) {
	if k < 1 || m < 1 {
		return nil, fmt.Errorf("erasure: need k >= 1 and m >= 1, got RS(%d,%d)", k, m)
	}
	if k+m > 255 {
		return nil, fmt.Errorf("erasure: k+m = %d exceeds the 255 distinct points of GF(2^8)", k+m)
	}
	v := vandermonde(k+m, k)
	top := matrix(v[:k])
	inv, err := top.invert()
	if err != nil {
		return nil, err // unreachable: Vandermonde squares are invertible
	}
	return &Code{K: k, M: m, gen: v.mul(inv)}, nil
}

// ParityRow returns the k coefficients of parity shard j (a row of the
// non-identity part of the generator).
func (c *Code) ParityRow(j int) []byte { return c.gen[c.K+j] }

// Encode computes the m parity shards from the k data shards with a
// single goroutine (the scalar reference kernel). parity[j] must be
// pre-allocated to the shard length and is overwritten.
func (c *Code) Encode(data, parity [][]byte) {
	c.encodeRange(data, parity, 0, len(parity[0]))
}

// EncodeStriped is Encode with the shard buffers split into
// cache-friendly stripes processed by a worker pool (workers <= 0 uses
// GOMAXPROCS).
func (c *Code) EncodeStriped(data, parity [][]byte, workers int) {
	parallelStripes(len(parity[0]), workers, func(lo, hi int) {
		c.encodeRange(data, parity, lo, hi)
	})
}

func (c *Code) encodeRange(data, parity [][]byte, lo, hi int) {
	for j := range parity {
		row := c.gen[c.K+j]
		p := parity[j]
		for i := lo; i < hi; i++ {
			p[i] = 0
		}
		mulAddRowRange(p, data, row, lo, hi)
	}
}

// mulAddRowRange folds every shard into the accumulator, two shards
// per pass through the pair-fused kernel so the parity row is read and
// written half as often as one mulAddRange call per shard would.
func mulAddRowRange(acc []byte, shards [][]byte, coefs []byte, lo, hi int) {
	l := 0
	for ; l+1 < len(shards); l += 2 {
		mulAddPairRange(acc, shards[l], shards[l+1], coefs[l], coefs[l+1], lo, hi)
	}
	if l < len(shards) {
		mulAddRange(acc, shards[l], coefs[l], lo, hi)
	}
}

// EncodeRowInto computes only parity shard j into out (used when the
// m shards of one stripe live on different ranks and each rank computes
// just its own).
func (c *Code) EncodeRowInto(j int, data [][]byte, out []byte, workers int) {
	row := c.gen[c.K+j]
	parallelStripes(len(out), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = 0
		}
		mulAddRowRange(out, data, row, lo, hi)
	})
}

// MulAddRowInto folds one shard into a parity accumulator:
// out ^= coef · data over GF(2^8). Addition in GF(2^8) is XOR, so
// contributions commute — a parity row may be built up one shard at a
// time, in whatever order the shards arrive. out must be zeroed before
// the first fold; coef is gen[k+j][l] for parity j, shard l (see
// ParityRow). This is the incremental half of EncodeRowInto, used by
// the pipelined checkpoint encode to overlap parity math with the
// group exchange.
func (c *Code) MulAddRowInto(j, l int, data, out []byte, workers int) {
	coef := c.gen[c.K+j][l]
	parallelStripes(len(out), workers, func(lo, hi int) {
		mulAddRange(out, data, coef, lo, hi)
	})
}

// Recover reconstructs the data shards listed in want from any k
// surviving shards. idx[i] is the global shard index of shards[i]
// (0..k-1 data, k..k+m-1 parity); exactly k shards must be supplied.
// The result buffers are freshly allocated; RecoverInto is the
// allocation-free variant.
func (c *Code) Recover(idx []int, shards [][]byte, want []int, workers int) ([][]byte, error) {
	out := make([][]byte, len(want))
	if len(shards) > 0 && len(shards[0]) > 0 {
		// One slab for all recovered shards instead of a make per
		// repair-loop iteration.
		n := len(shards[0])
		slab := make([]byte, n*len(want))
		for i := range out {
			out[i] = slab[i*n : (i+1)*n]
		}
	} else {
		for i := range out {
			out[i] = []byte{}
		}
	}
	if err := c.RecoverInto(idx, shards, want, out, workers); err != nil {
		return nil, err
	}
	return out, nil
}

// RecoverInto reconstructs the data shards listed in want, writing
// shard want[i] into out[i] (caller-owned, len == shard length,
// overwritten). It allocates only the small decode matrix, so callers
// repairing into pooled or pre-placed buffers avoid both the per-shard
// make and the follow-up copy.
func (c *Code) RecoverInto(idx []int, shards [][]byte, want []int, out [][]byte, workers int) error {
	if len(idx) != c.K || len(shards) != c.K {
		return fmt.Errorf("erasure: Recover needs exactly k=%d shards, got %d", c.K, len(idx))
	}
	if len(out) != len(want) {
		return fmt.Errorf("erasure: RecoverInto needs %d output buffers, got %d", len(want), len(out))
	}
	sub := newMatrix(c.K, c.K)
	for i, id := range idx {
		if id < 0 || id >= c.K+c.M {
			return fmt.Errorf("erasure: shard index %d out of range", id)
		}
		copy(sub[i], c.gen[id])
	}
	inv, err := sub.invert()
	if err != nil {
		return err // unreachable for an MDS generator
	}
	n := len(shards[0])
	for wi, w := range want {
		if w < 0 || w >= c.K {
			return fmt.Errorf("erasure: can only recover data shards, want %d", w)
		}
		buf := out[wi]
		if len(buf) != n {
			return fmt.Errorf("erasure: RecoverInto output %d has length %d, want %d", wi, len(buf), n)
		}
		row := inv[w]
		parallelStripes(n, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				buf[i] = 0
			}
			mulAddRowRange(buf, shards, row, lo, hi)
		})
	}
	return nil
}

// Reconstruct fills the nil entries of shards (length k+m, shard order
// data then parity) in place from the survivors. It is the convenience
// wrapper used by tests and local tooling; the distributed checkpoint
// path drives Recover directly.
func (c *Code) Reconstruct(shards [][]byte, workers int) error {
	if len(shards) != c.K+c.M {
		return fmt.Errorf("erasure: Reconstruct needs %d shards, got %d", c.K+c.M, len(shards))
	}
	var idx []int
	var present [][]byte
	for i, sh := range shards {
		if sh != nil && len(idx) < c.K {
			idx = append(idx, i)
			present = append(present, sh)
		}
	}
	if len(idx) < c.K {
		return fmt.Errorf("erasure: only %d of the %d shards needed survive", len(idx), c.K)
	}
	var lostData []int
	for i := 0; i < c.K; i++ {
		if shards[i] == nil {
			lostData = append(lostData, i)
		}
	}
	rec, err := c.Recover(idx, present, lostData, workers)
	if err != nil {
		return err
	}
	for i, w := range lostData {
		shards[w] = rec[i]
	}
	// Lost parity is recomputed from the now-complete data, all rows
	// carved from one hoisted slab instead of a make per iteration.
	var lostParity []int
	for j := 0; j < c.M; j++ {
		if shards[c.K+j] == nil {
			lostParity = append(lostParity, j)
		}
	}
	if len(lostParity) > 0 {
		n := len(present[0])
		slab := make([]byte, n*len(lostParity))
		for i, j := range lostParity {
			out := slab[i*n : (i+1)*n]
			c.EncodeRowInto(j, shards[:c.K], out, workers)
			shards[c.K+j] = out
		}
	}
	return nil
}
