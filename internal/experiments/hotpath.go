package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"testing"
	"text/tabwriter"

	"fmi/internal/bufpool"
	"fmi/internal/ckpt"
	"fmi/internal/enc"
	"fmi/internal/transport"
)

// Hot-path allocation benchmark (perf ablation): measures ns/op, B/op
// and allocs/op for the three paths the buffer arena threads through —
// the chan-transport send/recv roundtrip, collective slice packing,
// and checkpoint capture + encode — with pooling on and off. The
// headline acceptance number is the allocs/op reduction pooling buys
// on the send and checkpoint paths.

// HotpathConfig sizes the three benchmarks.
type HotpathConfig struct {
	PayloadBytes     int `json:"payload_bytes"`       // chan-send message size
	PackParts        int `json:"pack_parts"`          // slices per packed frame
	PackPartBytes    int `json:"pack_part_bytes"`     // bytes per packed slice
	GroupSize        int `json:"group_size"`          // XOR group size for ckpt-encode
	CkptBytesPerRank int `json:"ckpt_bytes_per_rank"` // snapshot size per member
}

// DefaultHotpathConfig mirrors a mid-size collective/checkpoint load:
// 16 KiB eager messages, 8-part packed frames, a 4-member XOR group
// checkpointing 1 MiB per rank.
func DefaultHotpathConfig() HotpathConfig {
	return HotpathConfig{
		PayloadBytes:     16 << 10,
		PackParts:        8,
		PackPartBytes:    2 << 10,
		GroupSize:        4,
		CkptBytesPerRank: 1 << 20,
	}
}

// HotpathPoint is one (path, pooling) cell of the sweep.
type HotpathPoint struct {
	Path        string  `json:"path"`
	Pooling     bool    `json:"pooling"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

func point(path string, pooling bool, r testing.BenchmarkResult) HotpathPoint {
	return HotpathPoint{
		Path:        path,
		Pooling:     pooling,
		NsPerOp:     float64(r.NsPerOp()),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// HotpathSweep runs every (path, pooling) combination and returns the
// six cells. Pooling off is expressed the way the runtime expresses it:
// a nil arena, so the measured path is byte-for-byte the production
// code in both modes.
func HotpathSweep(cfg HotpathConfig) ([]HotpathPoint, error) {
	var out []HotpathPoint
	for _, pooling := range []bool{false, true} {
		var pool *bufpool.Arena
		if pooling {
			pool = bufpool.New()
		}
		r, err := benchChanSend(cfg.PayloadBytes, pool)
		if err != nil {
			return nil, err
		}
		out = append(out, point("chan-send", pooling, r))

		out = append(out, point("coll-pack", pooling, benchPack(cfg.PackParts, cfg.PackPartBytes, pooling)))

		r, err = benchCkptEncode(cfg.GroupSize, cfg.CkptBytesPerRank, pool)
		if err != nil {
			return nil, err
		}
		out = append(out, point("ckpt-encode", pooling, r))
	}
	return out, nil
}

// benchChanSend measures one eager send + matched receive + release
// over the in-process transport, the inner loop of every p2p exchange
// and collective round.
func benchChanSend(payload int, pool *bufpool.Arena) (testing.BenchmarkResult, error) {
	nw := transport.NewChanNetwork(transport.Options{Pool: pool})
	src, err := nw.NewEndpoint(nil)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	dst, err := nw.NewEndpoint(nil)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	m := transport.NewMatcher(dst)
	defer func() { m.Close(); dst.Close(); src.Close() }()
	buf := make([]byte, payload)
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := src.Send(dst.Addr(), transport.Msg{Src: 0, Tag: 1, Data: buf}); err != nil {
				benchErr = err
				return
			}
			msg, err := m.Recv(0, 0, 1, nil)
			if err != nil {
				benchErr = err
				return
			}
			msg.Release()
		}
	})
	return res, benchErr
}

// benchPack measures multi-block schedule-step framing: PackSlices
// (fresh buffer per call) against PackSlicesInto over a reused scratch
// buffer, which is how the collective engine packs when pooling is on.
func benchPack(parts, partBytes int, pooled bool) testing.BenchmarkResult {
	ps := make([][]byte, parts)
	for i := range ps {
		ps[i] = make([]byte, partBytes)
	}
	scratch := make([]byte, 0, enc.PackedLen(ps))
	var sink byte
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if pooled {
				scratch = enc.PackSlicesInto(scratch[:0], ps)
				sink ^= scratch[0]
			} else {
				out := enc.PackSlices(ps)
				sink ^= out[0]
			}
		}
	})
	_ = sink
	return res
}

// pooledGC is a ckpt.GroupComm over a pooled ring world that recycles
// consumed ring chunks, the way the runtime's groupComm does.
type pooledGC struct {
	wgc
	pool *bufpool.Arena
}

func (g *pooledGC) Release(buf []byte) { g.pool.Put(buf) }

// benchCkptEncode measures one full group checkpoint — capture memcpy
// plus the collective XOR encode ring — across all g members. Workers
// are persistent so the measurement is the checkpoint itself, not
// goroutine churn.
func benchCkptEncode(g, bytesPerRank int, pool *bufpool.Arena) (testing.BenchmarkResult, error) {
	nw := transport.NewChanNetwork(transport.Options{Pool: pool})
	w := &ringWorld{}
	for i := 0; i < g; i++ {
		ep, err := nw.NewEndpoint(nil)
		if err != nil {
			return testing.BenchmarkResult{}, err
		}
		w.eps = append(w.eps, ep)
		w.ms = append(w.ms, transport.NewMatcher(ep))
	}
	defer w.close()
	members := make([]int, g)
	data := make([][]byte, g)
	for i := range members {
		members[i] = i
		data[i] = make([]byte, bytesPerRank)
		for j := 0; j < bytesPerRank; j += 4096 {
			data[i][j] = byte(i*37 + j)
		}
	}
	coder := ckpt.NewCoder(1, 0)
	chunkLen := coder.ChunkLen(bytesPerRank, g)

	start := make([]chan struct{}, g)
	done := make(chan error, g)
	for i := 0; i < g; i++ {
		start[i] = make(chan struct{})
		go func(i int) {
			var gc ckpt.GroupComm
			base := wgc{w: w, self: i, members: members, meIdx: i, tag: 1}
			if pool != nil {
				gc = &pooledGC{wgc: base, pool: pool}
			} else {
				gc = &base
			}
			segs := [][]byte{data[i]}
			for range start[i] {
				var snap *ckpt.Snapshot
				if pool != nil {
					snap = ckpt.CaptureInto(0, segs, pool.Get(ckpt.TotalSize(segs)))
				} else {
					snap = ckpt.Capture(0, segs)
				}
				parity, err := coder.Encode(gc, i, g, snap.Data, chunkLen)
				if pool != nil {
					pool.Put(parity)
					pool.Put(snap.Data)
				}
				done <- err
			}
		}(i)
	}
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, ch := range start {
				ch <- struct{}{}
			}
			for j := 0; j < g; j++ {
				if err := <-done; err != nil && benchErr == nil {
					benchErr = err
				}
			}
			if benchErr != nil {
				return
			}
		}
	})
	for _, ch := range start {
		close(ch)
	}
	return res, benchErr
}

// HotpathReductions returns, per path, the fraction of allocs/op that
// pooling removes (0.5 = half the allocations gone).
func HotpathReductions(rows []HotpathPoint) map[string]float64 {
	off := map[string]int64{}
	on := map[string]int64{}
	for _, r := range rows {
		if r.Pooling {
			on[r.Path] = r.AllocsPerOp
		} else {
			off[r.Path] = r.AllocsPerOp
		}
	}
	red := map[string]float64{}
	for path, base := range off {
		if base <= 0 {
			red[path] = 0
			continue
		}
		red[path] = 1 - float64(on[path])/float64(base)
	}
	return red
}

// hotpathReport is the BENCH_hotpath.json schema.
type hotpathReport struct {
	Experiment string             `json:"experiment"`
	Config     HotpathConfig      `json:"config"`
	Results    []HotpathPoint     `json:"results"`
	Reductions map[string]float64 `json:"allocs_reduction"`
}

// HotpathJSON renders the sweep as the BENCH_hotpath.json document.
func HotpathJSON(cfg HotpathConfig, rows []HotpathPoint) ([]byte, error) {
	doc, err := json.MarshalIndent(hotpathReport{
		Experiment: "hotpath",
		Config:     cfg,
		Results:    rows,
		Reductions: HotpathReductions(rows),
	}, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(doc, '\n'), nil
}

// PrintHotpath renders the sweep as a table plus the per-path
// allocation reductions.
func PrintHotpath(w io.Writer, cfg HotpathConfig, rows []HotpathPoint) {
	fmt.Fprintf(w, "Hot-path allocation benchmark (payload %d B, %d x %d B pack, group %d x %d B ckpt)\n",
		cfg.PayloadBytes, cfg.PackParts, cfg.PackPartBytes, cfg.GroupSize, cfg.CkptBytesPerRank)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "path\tpooling\tns/op\tB/op\tallocs/op")
	for _, r := range rows {
		mode := "off"
		if r.Pooling {
			mode = "on"
		}
		fmt.Fprintf(tw, "%s\t%s\t%.0f\t%d\t%d\n", r.Path, mode, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	tw.Flush()
	for _, path := range []string{"chan-send", "coll-pack", "ckpt-encode"} {
		if red, ok := HotpathReductions(rows)[path]; ok {
			fmt.Fprintf(w, "%s: pooling removes %.0f%% of allocs/op\n", path, red*100)
		}
	}
}
