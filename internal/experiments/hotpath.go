package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"testing"
	"text/tabwriter"

	"fmi/internal/bufpool"
	"fmi/internal/ckpt"
	"fmi/internal/enc"
	"fmi/internal/transport"
)

// Hot-path allocation benchmark (perf ablation): measures ns/op, B/op
// and allocs/op for the paths the buffer arena and the transport fast
// path thread through — the chan-transport send/recv roundtrip (both
// the channel path and the co-located SPSC ring path), send-side
// coalescing under load, matcher ingress under multi-sender
// contention, collective slice packing, and checkpoint capture +
// encode — with pooling on and off. The headline acceptance numbers
// are the allocs/op reduction pooling buys on the send and checkpoint
// paths, and the ns/op the ring path shaves off chan-send.

// HotpathConfig sizes the three benchmarks.
type HotpathConfig struct {
	PayloadBytes     int `json:"payload_bytes"`       // chan-send message size
	PackParts        int `json:"pack_parts"`          // slices per packed frame
	PackPartBytes    int `json:"pack_part_bytes"`     // bytes per packed slice
	GroupSize        int `json:"group_size"`          // XOR group size for ckpt-encode
	CkptBytesPerRank int `json:"ckpt_bytes_per_rank"` // snapshot size per member
}

// DefaultHotpathConfig mirrors a mid-size collective/checkpoint load:
// 16 KiB eager messages, 8-part packed frames, a 4-member XOR group
// checkpointing 1 MiB per rank.
func DefaultHotpathConfig() HotpathConfig {
	return HotpathConfig{
		PayloadBytes:     16 << 10,
		PackParts:        8,
		PackPartBytes:    2 << 10,
		GroupSize:        4,
		CkptBytesPerRank: 1 << 20,
	}
}

// HotpathPoint is one (path, pooling) cell of the sweep.
type HotpathPoint struct {
	Path        string  `json:"path"`
	Pooling     bool    `json:"pooling"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

func point(path string, pooling bool, r testing.BenchmarkResult) HotpathPoint {
	return HotpathPoint{
		Path:        path,
		Pooling:     pooling,
		NsPerOp:     float64(r.NsPerOp()),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// pointN is point for benchmarks whose op covers perOp messages; the
// cell is normalised to per-message cost.
func pointN(path string, pooling bool, r testing.BenchmarkResult, perOp int) HotpathPoint {
	return HotpathPoint{
		Path:        path,
		Pooling:     pooling,
		NsPerOp:     float64(r.NsPerOp()) / float64(perOp),
		BytesPerOp:  r.AllocedBytesPerOp() / int64(perOp),
		AllocsPerOp: r.AllocsPerOp() / int64(perOp),
	}
}

// HotpathSweep runs every (path, pooling) combination and returns the
// six cells. Pooling off is expressed the way the runtime expresses it:
// a nil arena, so the measured path is byte-for-byte the production
// code in both modes.
func HotpathSweep(cfg HotpathConfig) ([]HotpathPoint, error) {
	var out []HotpathPoint
	for _, pooling := range []bool{false, true} {
		var pool *bufpool.Arena
		if pooling {
			pool = bufpool.New()
		}
		r, err := benchChanSend(cfg.PayloadBytes, pool)
		if err != nil {
			return nil, err
		}
		out = append(out, point("chan-send", pooling, r))

		r, err = benchRingSend(cfg.PayloadBytes, pool)
		if err != nil {
			return nil, err
		}
		out = append(out, point("ring-send", pooling, r))

		r, err = benchBatchedSend(cfg.PackPartBytes, pool)
		if err != nil {
			return nil, err
		}
		out = append(out, point("batched-send", pooling, r))

		r, err = benchMatcherContention(cfg.PackPartBytes, pool)
		if err != nil {
			return nil, err
		}
		out = append(out, pointN("matcher-contention", pooling, r, contentionSenders))

		out = append(out, point("coll-pack", pooling, benchPack(cfg.PackParts, cfg.PackPartBytes, pooling)))

		r, err = benchCkptEncode(cfg.GroupSize, cfg.CkptBytesPerRank, pool)
		if err != nil {
			return nil, err
		}
		out = append(out, point("ckpt-encode", pooling, r))
	}
	return out, nil
}

// benchChanSend measures one eager send + matched receive + release
// over the in-process transport, the inner loop of every p2p exchange
// and collective round.
func benchChanSend(payload int, pool *bufpool.Arena) (testing.BenchmarkResult, error) {
	nw := transport.NewChanNetwork(transport.Options{Pool: pool})
	src, err := nw.NewEndpoint(nil)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	dst, err := nw.NewEndpoint(nil)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	m := transport.NewMatcher(dst)
	defer func() { m.Close(); dst.Close(); src.Close() }()
	buf := make([]byte, payload)
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := src.Send(dst.Addr(), transport.Msg{Src: 0, Tag: 1, Data: buf}); err != nil {
				benchErr = err
				return
			}
			msg, err := m.Recv(0, 0, 1, nil)
			if err != nil {
				benchErr = err
				return
			}
			msg.Release()
		}
	})
	return res, benchErr
}

// benchRingSend is benchChanSend with both endpoints placed on the
// same node, so Send takes the per-pair SPSC ring and Recv drains it
// inline — no demux goroutine hand-off on the critical path.
func benchRingSend(payload int, pool *bufpool.Arena) (testing.BenchmarkResult, error) {
	nw := transport.NewChanNetwork(transport.Options{Pool: pool, Endpoints: 2})
	src, err := nw.NewEndpointOnNode(0, nil)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	dst, err := nw.NewEndpointOnNode(0, nil)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	m := transport.NewMatcher(dst)
	defer func() { m.Close(); dst.Close(); src.Close() }()
	buf := make([]byte, payload)
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := src.Send(dst.Addr(), transport.Msg{Src: 0, Tag: 1, Data: buf}); err != nil {
				benchErr = err
				return
			}
			msg, err := m.Recv(0, 0, 1, nil)
			if err != nil {
				benchErr = err
				return
			}
			msg.Release()
		}
	})
	return res, benchErr
}

// benchBatchedSend measures per-message cost of a sustained small-frame
// flood over the ring path. The ring is kept deliberately short so the
// producer outruns the consumer, the overflow batch coalesces frames,
// and flushes publish them as multi-message KindBatch frames — the
// syscall-coalescing shape TCPNetwork sees under load.
func benchBatchedSend(payload int, pool *bufpool.Arena) (testing.BenchmarkResult, error) {
	nw := transport.NewChanNetwork(transport.Options{Pool: pool, Endpoints: 2, RingSlots: 16})
	src, err := nw.NewEndpointOnNode(0, nil)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	dst, err := nw.NewEndpointOnNode(0, nil)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	m := transport.NewMatcher(dst)
	defer func() { m.Close(); dst.Close(); src.Close() }()
	buf := make([]byte, payload)
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		sendErr := make(chan error, 1)
		go func() {
			for i := 0; i < b.N; i++ {
				if err := src.Send(dst.Addr(), transport.Msg{Src: 0, Tag: 1, Data: buf}); err != nil {
					sendErr <- err
					return
				}
			}
			sendErr <- nil
		}()
		for i := 0; i < b.N; i++ {
			msg, err := m.Recv(0, 0, 1, nil)
			if err != nil {
				benchErr = err
				return
			}
			msg.Release()
		}
		if err := <-sendErr; err != nil {
			benchErr = err
		}
	})
	return res, benchErr
}

// contentionSenders is the sender fan-in for the matcher-contention
// row: one benchmark op is one message from each sender.
const contentionSenders = 8

// benchMatcherContention measures matcher ingress with 8 concurrent
// senders feeding one receiver, the shape a rank sees at the peak of
// an all-to-all round. Per-source lanes keep the senders from
// serialising on a single ingress mutex; the receiver drains the
// lanes round-robin.
func benchMatcherContention(payload int, pool *bufpool.Arena) (testing.BenchmarkResult, error) {
	nw := transport.NewChanNetwork(transport.Options{Pool: pool, Endpoints: contentionSenders + 1})
	dst, err := nw.NewEndpoint(nil)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	srcs := make([]transport.Endpoint, contentionSenders)
	for i := range srcs {
		if srcs[i], err = nw.NewEndpoint(nil); err != nil {
			return testing.BenchmarkResult{}, err
		}
	}
	m := transport.NewMatcher(dst)
	defer func() {
		m.Close()
		dst.Close()
		for _, s := range srcs {
			s.Close()
		}
	}()
	buf := make([]byte, payload)
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		sendErr := make(chan error, contentionSenders)
		for s := 0; s < contentionSenders; s++ {
			go func(s int) {
				for i := 0; i < b.N; i++ {
					if err := srcs[s].Send(dst.Addr(), transport.Msg{Src: int32(s), Tag: 1, Data: buf}); err != nil {
						sendErr <- err
						return
					}
				}
				sendErr <- nil
			}(s)
		}
		// One op = one message from every sender; drain round-robin so
		// each lane's unexpected queue stays bounded.
		for i := 0; i < b.N; i++ {
			for s := 0; s < contentionSenders; s++ {
				msg, err := m.Recv(0, int32(s), 1, nil)
				if err != nil {
					benchErr = err
					return
				}
				msg.Release()
			}
		}
		for s := 0; s < contentionSenders; s++ {
			if err := <-sendErr; err != nil && benchErr == nil {
				benchErr = err
			}
		}
	})
	return res, benchErr
}

// benchPack measures multi-block schedule-step framing: PackSlices
// (fresh buffer per call) against PackSlicesInto over a reused scratch
// buffer, which is how the collective engine packs when pooling is on.
func benchPack(parts, partBytes int, pooled bool) testing.BenchmarkResult {
	ps := make([][]byte, parts)
	for i := range ps {
		ps[i] = make([]byte, partBytes)
	}
	scratch := make([]byte, 0, enc.PackedLen(ps))
	var sink byte
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if pooled {
				scratch = enc.PackSlicesInto(scratch[:0], ps)
				sink ^= scratch[0]
			} else {
				out := enc.PackSlices(ps)
				sink ^= out[0]
			}
		}
	})
	_ = sink
	return res
}

// pooledGC is a ckpt.GroupComm over a pooled ring world that recycles
// consumed ring chunks, the way the runtime's groupComm does.
type pooledGC struct {
	wgc
	pool *bufpool.Arena
}

func (g *pooledGC) Release(buf []byte) { g.pool.Put(buf) }

// benchCkptEncode measures one full group checkpoint — capture memcpy
// plus the collective XOR encode ring — across all g members. Workers
// are persistent so the measurement is the checkpoint itself, not
// goroutine churn.
func benchCkptEncode(g, bytesPerRank int, pool *bufpool.Arena) (testing.BenchmarkResult, error) {
	nw := transport.NewChanNetwork(transport.Options{Pool: pool})
	w := &ringWorld{}
	for i := 0; i < g; i++ {
		ep, err := nw.NewEndpoint(nil)
		if err != nil {
			return testing.BenchmarkResult{}, err
		}
		w.eps = append(w.eps, ep)
		w.ms = append(w.ms, transport.NewMatcher(ep))
	}
	defer w.close()
	members := make([]int, g)
	data := make([][]byte, g)
	for i := range members {
		members[i] = i
		data[i] = make([]byte, bytesPerRank)
		for j := 0; j < bytesPerRank; j += 4096 {
			data[i][j] = byte(i*37 + j)
		}
	}
	coder := ckpt.NewCoder(1, 0)
	chunkLen := coder.ChunkLen(bytesPerRank, g)

	start := make([]chan struct{}, g)
	done := make(chan error, g)
	for i := 0; i < g; i++ {
		start[i] = make(chan struct{})
		go func(i int) {
			var gc ckpt.GroupComm
			base := wgc{w: w, self: i, members: members, meIdx: i, tag: 1}
			if pool != nil {
				gc = &pooledGC{wgc: base, pool: pool}
			} else {
				gc = &base
			}
			segs := [][]byte{data[i]}
			for range start[i] {
				var snap *ckpt.Snapshot
				if pool != nil {
					snap = ckpt.CaptureInto(0, segs, pool.Get(ckpt.TotalSize(segs)))
				} else {
					snap = ckpt.Capture(0, segs)
				}
				parity, err := coder.Encode(gc, i, g, snap.Data, chunkLen)
				if pool != nil {
					pool.Put(parity)
					pool.Put(snap.Data)
				}
				done <- err
			}
		}(i)
	}
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, ch := range start {
				ch <- struct{}{}
			}
			for j := 0; j < g; j++ {
				if err := <-done; err != nil && benchErr == nil {
					benchErr = err
				}
			}
			if benchErr != nil {
				return
			}
		}
	})
	for _, ch := range start {
		close(ch)
	}
	return res, benchErr
}

// HotpathReductions returns, per path, the fraction of allocs/op that
// pooling removes (0.5 = half the allocations gone).
func HotpathReductions(rows []HotpathPoint) map[string]float64 {
	off := map[string]int64{}
	on := map[string]int64{}
	for _, r := range rows {
		if r.Pooling {
			on[r.Path] = r.AllocsPerOp
		} else {
			off[r.Path] = r.AllocsPerOp
		}
	}
	red := map[string]float64{}
	for path, base := range off {
		if base <= 0 {
			red[path] = 0
			continue
		}
		red[path] = 1 - float64(on[path])/float64(base)
	}
	return red
}

// hotpathReport is the BENCH_hotpath.json schema.
type hotpathReport struct {
	Experiment string             `json:"experiment"`
	Config     HotpathConfig      `json:"config"`
	Results    []HotpathPoint     `json:"results"`
	Reductions map[string]float64 `json:"allocs_reduction"`
}

// HotpathJSON renders the sweep as the BENCH_hotpath.json document.
func HotpathJSON(cfg HotpathConfig, rows []HotpathPoint) ([]byte, error) {
	doc, err := json.MarshalIndent(hotpathReport{
		Experiment: "hotpath",
		Config:     cfg,
		Results:    rows,
		Reductions: HotpathReductions(rows),
	}, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(doc, '\n'), nil
}

// PrintHotpath renders the sweep as a table plus the per-path
// allocation reductions.
func PrintHotpath(w io.Writer, cfg HotpathConfig, rows []HotpathPoint) {
	fmt.Fprintf(w, "Hot-path allocation benchmark (payload %d B, %d x %d B pack, group %d x %d B ckpt)\n",
		cfg.PayloadBytes, cfg.PackParts, cfg.PackPartBytes, cfg.GroupSize, cfg.CkptBytesPerRank)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "path\tpooling\tns/op\tB/op\tallocs/op")
	for _, r := range rows {
		mode := "off"
		if r.Pooling {
			mode = "on"
		}
		fmt.Fprintf(tw, "%s\t%s\t%.0f\t%d\t%d\n", r.Path, mode, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	tw.Flush()
	for _, path := range []string{"chan-send", "ring-send", "batched-send", "matcher-contention", "coll-pack", "ckpt-encode"} {
		if red, ok := HotpathReductions(rows)[path]; ok {
			fmt.Fprintf(w, "%s: pooling removes %.0f%% of allocs/op\n", path, red*100)
		}
	}
}
