package experiments

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"fmi"
)

// Online reconfiguration (ISSUE 8): a running elastic job grows or
// shrinks through the two-phase resize fence, without restarting and
// without survivors rolling back. The measurement is the resize
// latency — from rank 0's Resize request to the first Loop return
// under the new view — against the only alternative a non-elastic
// runtime has: tearing the job down and relaunching it at the new
// size. Checkpoints are laid out per rank, so a non-elastic runtime
// cannot restore them into a different world size: reconfigure-by-
// restart relaunches from scratch and re-executes every iteration
// completed so far. That relaunch-plus-redo wall is the baseline; it
// is still a floor (teardown and scheduler requeue cost nothing here).

// ReconfigConfig sizes the workload.
type ReconfigConfig struct {
	Ranks    int `json:"ranks"`
	GrowTo   int `json:"grow_to"`
	ShrinkTo int `json:"shrink_to"`
	Iters    int `json:"iters"`
	Interval int `json:"checkpoint_interval"`
	// ResizeAt is the iteration at which rank 0 requests the resize.
	ResizeAt  int           `json:"resize_at_iter"`
	ComputeMs int           `json:"compute_ms_per_iter"`
	Timeout   time.Duration `json:"timeout_ns"`
}

// DefaultReconfigConfig resizes mid-run with checkpointed progress on
// both sides of the fence.
func DefaultReconfigConfig() ReconfigConfig {
	return ReconfigConfig{Ranks: 4, GrowTo: 6, ShrinkTo: 2, Iters: 24, Interval: 4, ResizeAt: 12, ComputeMs: 2, Timeout: 5 * time.Minute}
}

// QuickReconfigConfig shrinks the workload for a CI smoke run.
func QuickReconfigConfig() ReconfigConfig {
	return ReconfigConfig{Ranks: 4, GrowTo: 6, ShrinkTo: 2, Iters: 10, Interval: 3, ResizeAt: 4, ComputeMs: 1, Timeout: 2 * time.Minute}
}

// ReconfigRow is one (protocol, direction) cell.
type ReconfigRow struct {
	Protocol  string `json:"protocol"`
	Direction string `json:"direction"` // grow | shrink
	FromRanks int    `json:"from_ranks"`
	ToRanks   int    `json:"to_ranks"`
	// ResizeLatency spans rank 0's Resize request to its first Loop
	// return under the new view: the tail of the in-flight iteration
	// (the quiescence the fence waits for), spare provisioning and
	// joiner bootstrap on a grow, shard/store migration on a shrink,
	// and the schedule/group re-derivation on commit.
	ResizeLatency time.Duration `json:"resize_latency_ns"`
	// JobWall is the whole elastic run, for scale.
	JobWall time.Duration `json:"job_wall_ns"`
	// RestartWall is the wall of reconfigure-by-restart: a fresh job
	// at ToRanks under the same protocol re-executing the iterations
	// the elastic job had already completed when it resized (per-rank
	// checkpoints do not restore across a different world size).
	RestartWall time.Duration `json:"restart_wall_ns"`
	// RestartOverResize is RestartWall / ResizeLatency.
	RestartOverResize float64 `json:"restart_over_resize"`
}

// reconfigApp is the elastic allreduce workload. Every iteration
// verifies the size-dependent world checksum inline, so a rank
// computing with a stale membership fails the run instead of skewing
// the measurement. At resizeAt, rank 0 stamps t0 and requests the
// resize; the first Loop return with a newer view version closes the
// span into latNS.
func reconfigApp(iters, resizeAt, target int, compute time.Duration, latNS *int64) fmi.App {
	return func(env *fmi.Env) error {
		state := make([]byte, 16)
		var t0 time.Time
		var baseVer uint64
		for {
			n := env.Loop(state)
			if n >= iters {
				break
			}
			if env.Rank() == 0 {
				if !t0.IsZero() && atomic.LoadInt64(latNS) == 0 && env.ViewVersion() > baseVer {
					atomic.StoreInt64(latNS, int64(time.Since(t0)))
				}
				if n == resizeAt && t0.IsZero() {
					baseVer = env.ViewVersion()
					t0 = time.Now()
					// The error is deliberately dropped: in replica mode
					// this line also runs on rank 0's lockstep shadow,
					// whose duplicate request is rejected while the fence
					// is armed. A genuinely failed resize is caught after
					// the run, when no view change was ever observed.
					_ = env.Resize(target)
				}
			}
			sz := env.Size()
			sum, err := fmi.AllreduceInt64(env.World(), fmi.SumInt64(), int64(n*1000+env.Rank()+1))
			if err != nil {
				continue // failure: next Loop call recovers
			}
			if want := int64(sz)*int64(n*1000) + int64(sz)*int64(sz+1)/2; sum[0] != want {
				return fmt.Errorf("rank %d iter %d (size %d): sum %d, want %d",
					env.Rank(), n, sz, sum[0], want)
			}
			if compute > 0 {
				time.Sleep(compute)
			}
			binary.LittleEndian.PutUint64(state, uint64(n+1))
		}
		return env.Finalize()
	}
}

// runReconfig executes one elastic run and returns (job wall, resize
// latency). The spare pool is sized for the worst case: a grow under
// replication provisions a primary and a shadow node per new rank.
func runReconfig(cfg ReconfigConfig, protocol string, target int) (time.Duration, time.Duration, error) {
	spares := 0
	if target > cfg.Ranks {
		spares = 2 * (target - cfg.Ranks)
	}
	rcfg := fmi.Config{
		Ranks: cfg.Ranks, ProcsPerNode: 1,
		CheckpointInterval: cfg.Interval, XORGroupSize: 4,
		Recovery: protocol, Elastic: true,
		SpareNodes:  spares,
		DetectDelay: 2 * time.Millisecond, PropDelay: time.Millisecond,
		Timeout: cfg.Timeout,
	}
	var latNS int64
	start := time.Now()
	_, err := fmi.Run(rcfg, reconfigApp(cfg.Iters, cfg.ResizeAt, target, time.Duration(cfg.ComputeMs)*time.Millisecond, &latNS))
	wall := time.Since(start)
	if err != nil {
		return 0, 0, err
	}
	lat := time.Duration(atomic.LoadInt64(&latNS))
	if lat <= 0 {
		return 0, 0, fmt.Errorf("resize to %d ranks never committed (no view change observed)", target)
	}
	return wall, lat, nil
}

// runRestartWall times reconfigure-by-restart: a fresh job at the
// target size redoing the iterations already completed at the resize
// point. No teardown or requeue cost is charged, so this is a floor.
func runRestartWall(cfg ReconfigConfig, protocol string, target int) (time.Duration, error) {
	rcfg := fmi.Config{
		Ranks: target, ProcsPerNode: 1,
		CheckpointInterval: cfg.Interval, XORGroupSize: 4,
		Recovery:    protocol,
		DetectDelay: 2 * time.Millisecond, PropDelay: time.Millisecond,
		Timeout: cfg.Timeout,
	}
	var latNS int64
	start := time.Now()
	_, err := fmi.Run(rcfg, reconfigApp(cfg.ResizeAt+1, -1, 0, time.Duration(cfg.ComputeMs)*time.Millisecond, &latNS))
	return time.Since(start), err
}

// ReconfigSweep measures grow and shrink under every recovery protocol.
func ReconfigSweep(cfg ReconfigConfig) ([]ReconfigRow, error) {
	dirs := []struct {
		name   string
		target int
	}{
		{"grow", cfg.GrowTo},
		{"shrink", cfg.ShrinkTo},
	}
	var out []ReconfigRow
	for _, protocol := range []string{"global", "local", "replica"} {
		for _, d := range dirs {
			row := ReconfigRow{Protocol: protocol, Direction: d.name, FromRanks: cfg.Ranks, ToRanks: d.target}
			var err error
			if row.JobWall, row.ResizeLatency, err = runReconfig(cfg, protocol, d.target); err != nil {
				return nil, fmt.Errorf("reconfig %s/%s: %w", protocol, d.name, err)
			}
			if row.RestartWall, err = runRestartWall(cfg, protocol, d.target); err != nil {
				return nil, fmt.Errorf("reconfig %s/%s restart: %w", protocol, d.name, err)
			}
			row.RestartOverResize = float64(row.RestartWall) / float64(row.ResizeLatency)
			out = append(out, row)
		}
	}
	return out, nil
}

// reconfigReport is the BENCH_reconfig.json schema.
type reconfigReport struct {
	Experiment string         `json:"experiment"`
	Config     ReconfigConfig `json:"config"`
	Results    []ReconfigRow  `json:"results"`
	// OnlineBeatsRestart is the acceptance headline: every cell's
	// resize latency sits below the relaunch-plus-redo wall.
	OnlineBeatsRestart bool `json:"online_beats_restart"`
}

// onlineBeatsRestart reports whether every row resized faster than
// reconfigure-by-restart.
func onlineBeatsRestart(rows []ReconfigRow) bool {
	if len(rows) == 0 {
		return false
	}
	for _, r := range rows {
		if r.ResizeLatency >= r.RestartWall {
			return false
		}
	}
	return true
}

// ReconfigJSON renders the sweep as the BENCH_reconfig.json document.
func ReconfigJSON(cfg ReconfigConfig, rows []ReconfigRow) ([]byte, error) {
	doc, err := json.MarshalIndent(reconfigReport{
		Experiment:         "reconfig",
		Config:             cfg,
		Results:            rows,
		OnlineBeatsRestart: onlineBeatsRestart(rows),
	}, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(doc, '\n'), nil
}

// PrintReconfig renders the sweep with the headline comparison.
func PrintReconfig(w io.Writer, cfg ReconfigConfig, rows []ReconfigRow) {
	fmt.Fprintf(w, "Online reconfiguration: %d ranks, resize at iteration %d of %d, checkpoint every %d\n",
		cfg.Ranks, cfg.ResizeAt, cfg.Iters, cfg.Interval)
	fmt.Fprintf(w, "%8s %7s %11s %12s %12s %9s\n",
		"protocol", "dir", "ranks", "resize(ms)", "restart(ms)", "ratio")
	for _, r := range rows {
		fmt.Fprintf(w, "%8s %7s %5d->%-4d %12.2f %12.2f %8.1fx\n",
			r.Protocol, r.Direction, r.FromRanks, r.ToRanks,
			float64(r.ResizeLatency)/1e6, float64(r.RestartWall)/1e6, r.RestartOverResize)
	}
	if onlineBeatsRestart(rows) {
		fmt.Fprintln(w, "every resize committed faster than relaunching at the target size and redoing the completed work")
	} else {
		fmt.Fprintln(w, "WARNING: some resize was NOT faster than reconfigure-by-restart on this run")
	}
	fmt.Fprintln(w, "per-rank checkpoints do not restore across world sizes, so a restart re-executes from scratch;")
	fmt.Fprintln(w, "teardown and requeue are charged at zero, making the restart wall a floor")
}
