package experiments

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"fmi"
)

// CollPoint is one cell of the collective-algorithm sweep: the mean
// per-operation wall time of `Iters` back-to-back data-plane
// collectives at the given payload size, with the algorithm pinned via
// Config.Collectives.
type CollPoint struct {
	Op    string
	Algo  string
	Ranks int
	Bytes int // per-rank payload (see MeasureColl for per-op meaning)
	Iters int
	PerOp time.Duration
}

// byteSum is a commutative+associative reduction for the benchmarks.
var byteSum = fmi.Op(func(acc, src []byte) {
	for i := range acc {
		acc[i] += src[i]
	}
})

// MeasureColl times one (op, algo, ranks, bytes) cell. Bytes is the
// per-rank traffic scale: allreduce/bcast use a bytes-sized buffer;
// allgather contributes bytes/ranks per rank (the assembled result is
// ~bytes); alltoall sends bytes/ranks to each destination (~bytes sent
// per rank). Rank 0 measures wall time for iters operations between
// two barriers; the mean per-op latency is returned.
//
// netDelay is the simulated per-message wire latency (Config.NetDelay).
// Zero is honest wall time on the free in-process substrate, but there
// every message costs only CPU, so the comparison degenerates to total
// message count; a realistic latency term (tens of µs, like a fast
// interconnect) is what makes round counts — the thing the algorithms
// actually trade on — show up in the measurement.
func MeasureColl(op, algo string, ranks, bytes, iters int, netDelay time.Duration) (time.Duration, error) {
	cfg := fmi.Config{
		Ranks: ranks, ProcsPerNode: 1,
		CheckpointInterval: 1000, XORGroupSize: 4,
		DetectDelay: 2 * time.Millisecond, PropDelay: time.Millisecond,
		NetDelay: netDelay,
		Timeout:  5 * time.Minute,
	}
	switch op {
	case "allreduce":
		cfg.Collectives.Allreduce = algo
	case "allgather":
		cfg.Collectives.Allgather = algo
	case "alltoall":
		cfg.Collectives.Alltoall = algo
	case "bcast":
		cfg.Collectives.Bcast = algo
	case "barrier":
		cfg.Collectives.Barrier = algo
	default:
		return 0, fmt.Errorf("coll: unknown op %q", op)
	}
	var elapsedNS int64
	app := func(env *fmi.Env) error {
		world := env.World()
		state := make([]byte, 8)
		for env.Loop(state) < 1 {
			n := env.Size()
			data := make([]byte, bytes)
			for i := range data {
				data[i] = byte(env.Rank() + i)
			}
			part := make([]byte, bytes/n)
			parts := make([][]byte, n)
			for d := range parts {
				parts[d] = part
			}
			if err := world.Barrier(); err != nil {
				return err
			}
			start := time.Now()
			for it := 0; it < iters; it++ {
				var err error
				switch op {
				case "allreduce":
					_, err = world.Allreduce(data, byteSum)
				case "allgather":
					_, err = world.Allgather(part)
				case "alltoall":
					_, err = world.Alltoall(parts)
				case "bcast":
					_, err = world.Bcast(0, data)
				case "barrier":
					err = world.Barrier()
				}
				if err != nil {
					return err
				}
			}
			if err := world.Barrier(); err != nil {
				return err
			}
			if env.Rank() == 0 {
				atomic.StoreInt64(&elapsedNS, int64(time.Since(start)))
			}
			state[0] = 1
		}
		return env.Finalize()
	}
	if _, err := fmi.Run(cfg, app); err != nil {
		return 0, err
	}
	return time.Duration(atomic.LoadInt64(&elapsedNS)) / time.Duration(iters), nil
}

// collCells is the op × algorithm matrix the sweep exercises.
var collCells = []struct {
	Op    string
	Algos []string
}{
	{"allreduce", []string{"tree", "rec-dbl", "ring"}},
	{"allgather", []string{"rec-dbl", "ring"}},
	{"alltoall", []string{"bruck", "pairwise"}},
	{"bcast", []string{"binomial"}},
}

// CollSweep measures every op × algorithm × payload-size cell at one
// process count. iters is the per-cell repetition budget at small
// sizes; large payloads are scaled down to keep wall time bounded.
func CollSweep(ranks int, sizes []int, iters int, netDelay time.Duration) ([]CollPoint, error) {
	var out []CollPoint
	for _, bytes := range sizes {
		it := iters
		if bytes >= 1<<20 {
			it = max(3, iters/8)
		} else if bytes >= 64<<10 {
			it = max(4, iters/4)
		}
		for _, cell := range collCells {
			for _, algo := range cell.Algos {
				per, err := MeasureColl(cell.Op, algo, ranks, bytes, it, netDelay)
				if err != nil {
					return nil, fmt.Errorf("coll %s/%s n=%d bytes=%d: %w", cell.Op, algo, ranks, bytes, err)
				}
				out = append(out, CollPoint{
					Op: cell.Op, Algo: algo, Ranks: ranks, Bytes: bytes, Iters: it, PerOp: per,
				})
			}
		}
	}
	return out, nil
}

// PrintColl prints the sweep as a flat table plus the headline
// comparison the schedule engine exists for: ring vs reduce+bcast
// allreduce at the largest payload, and recursive doubling vs the tree
// at the smallest.
func PrintColl(w io.Writer, ranks int, netDelay time.Duration, rows []CollPoint) {
	fmt.Fprintf(w, "Collective algorithms: %d ranks, per-op wall time (data plane, no failures, %v simulated wire latency)\n", ranks, netDelay)
	fmt.Fprintf(w, "%-10s %-9s %10s %7s %12s %12s\n", "op", "algo", "bytes", "iters", "per-op(us)", "MB/s")
	for _, r := range rows {
		us := float64(r.PerOp) / 1e3
		mbs := 0.0
		if r.PerOp > 0 {
			mbs = float64(r.Bytes) / r.PerOp.Seconds() / 1e6
		}
		fmt.Fprintf(w, "%-10s %-9s %10d %7d %12.1f %12.1f\n", r.Op, r.Algo, r.Bytes, r.Iters, us, mbs)
	}
	perOp := func(op, algo string, bytes int) time.Duration {
		for _, r := range rows {
			if r.Op == op && r.Algo == algo && r.Bytes == bytes {
				return r.PerOp
			}
		}
		return 0
	}
	small, large := -1, -1
	for _, r := range rows {
		if r.Op != "allreduce" {
			continue
		}
		if small == -1 || r.Bytes < small {
			small = r.Bytes
		}
		if r.Bytes > large {
			large = r.Bytes
		}
	}
	if large > 0 {
		tree, ring := perOp("allreduce", "tree", large), perOp("allreduce", "ring", large)
		if tree > 0 && ring > 0 {
			fmt.Fprintf(w, "allreduce %d B: ring %.2fx vs reduce+bcast tree (%.1f vs %.1f us)\n",
				large, float64(tree)/float64(ring), float64(ring)/1e3, float64(tree)/1e3)
		}
		tree, rd := perOp("allreduce", "tree", small), perOp("allreduce", "rec-dbl", small)
		if tree > 0 && rd > 0 {
			fmt.Fprintf(w, "allreduce %d B: rec-dbl %.2fx vs reduce+bcast tree (%.1f vs %.1f us)\n",
				small, float64(tree)/float64(rd), float64(rd)/1e3, float64(tree)/1e3)
		}
	}
}
