package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestXORGroupSweepShape(t *testing.T) {
	rows, err := XORGroupSweep([]int{2, 4, 8}, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.CheckpointTotal <= 0 || r.RestartTotal <= 0 {
			t.Fatalf("non-positive timings: %+v", r)
		}
		// Paper §V-B: restart includes the extra gather, so the model
		// restart exceeds the model checkpoint.
		if r.ModelRestSierra <= r.ModelCkptSierra {
			t.Fatalf("model restart not slower than checkpoint: %+v", r)
		}
	}
	// Model checkpoint time decreases with group size (Fig 10 shape).
	if rows[2].ModelCkptSierra >= rows[0].ModelCkptSierra {
		t.Fatal("model time did not decrease with group size")
	}
	var buf bytes.Buffer
	PrintFig10(&buf, rows)
	PrintFig11(&buf, rows)
	if !strings.Contains(buf.String(), "Fig 10") || !strings.Contains(buf.String(), "Fig 11") {
		t.Fatal("printers broken")
	}
}

func TestCRThroughputSweep(t *testing.T) {
	rows, err := CRThroughputSweep([]int{8, 16}, 4, 1<<18)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.CkptGBps <= 0 || r.RestartGBps <= 0 {
			t.Fatalf("non-positive throughput: %+v", r)
		}
	}
	var buf bytes.Buffer
	PrintFig12(&buf, rows)
	if !strings.Contains(buf.String(), "Fig 12") {
		t.Fatal("printer broken")
	}
}

func TestNotifySweep(t *testing.T) {
	rows, err := NotifySweep([]int{8, 32}, 2, 2*time.Millisecond, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.MaxSeconds <= 0 {
			t.Fatalf("no notification time measured: %+v", r)
		}
		if r.Hops > r.Bound {
			t.Fatalf("hops %d exceed paper bound %d", r.Hops, r.Bound)
		}
		// The detect delay is a floor (paper: constant ~0.2s before
		// propagation starts).
		if r.MaxSeconds < 0.002 {
			t.Fatalf("notification faster than the detect delay: %+v", r)
		}
	}
	var buf bytes.Buffer
	PrintFig13(&buf, rows, 2*time.Millisecond, time.Millisecond)
	if !strings.Contains(buf.String(), "Fig 13") {
		t.Fatal("printer broken")
	}
}

func TestInitSweep(t *testing.T) {
	rows, err := InitSweep([]int{8, 32}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// The KVS exchange serves ~n² coordinator ops vs the tree's n.
		if r.KVSCoordOps <= r.TreeCoordOps {
			t.Fatalf("KVS ops (%d) should exceed tree ops (%d)", r.KVSCoordOps, r.TreeCoordOps)
		}
		if r.ModelMPISeconds <= r.ModelFMISeconds {
			t.Fatalf("model MPI init should exceed FMI init: %+v", r)
		}
	}
	// KVS coordinator load grows quadratically: 4x procs => ~16x ops.
	if rows[1].KVSCoordOps < 8*rows[0].KVSCoordOps {
		t.Fatalf("KVS ops not superlinear: %d -> %d", rows[0].KVSCoordOps, rows[1].KVSCoordOps)
	}
	var buf bytes.Buffer
	PrintFig14(&buf, rows)
	if !strings.Contains(buf.String(), "Fig 14") {
		t.Fatal("printer broken")
	}
}

func TestTable3SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("ping-pong measurement in -short mode")
	}
	rows, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.LatencyUsec <= 0 || r.BandwidthGBps <= 0 {
			t.Fatalf("bad measurement: %+v", r)
		}
	}
	// The headline claim: FMI messaging ≈ MPI messaging. Allow a wide
	// factor since this is a shared CI machine.
	var fmiLat, mpiLat float64
	for _, r := range rows {
		if r.Transport == "chan" {
			if r.System == "FMI" {
				fmiLat = r.LatencyUsec
			} else {
				mpiLat = r.LatencyUsec
			}
		}
	}
	if fmiLat > 5*mpiLat || mpiLat > 5*fmiLat {
		t.Fatalf("FMI (%.2fus) and MPI (%.2fus) latency differ wildly", fmiLat, mpiLat)
	}
	var buf bytes.Buffer
	PrintTable3(&buf, rows)
	if !strings.Contains(buf.String(), "Table III") {
		t.Fatal("printer broken")
	}
}

func TestFig15Small(t *testing.T) {
	if testing.Short() {
		t.Skip("application study in -short mode")
	}
	c := Fig15Config{
		Ranks: 4, ProcsPerNode: 1, NX: 66, NY: 64, NZ: 64,
		Iters: 80, MTBF: 60 * time.Millisecond, Spares: 6, Seed: 3,
		DetectDelay: 2 * time.Millisecond, PropDelay: time.Millisecond,
		Timeout:     5 * time.Minute,
		ScriptLoops: []int{20, 50}, // deterministic failures
	}
	rows, err := Fig15(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("series = %d", len(rows))
	}
	byName := map[string]Fig15Row{}
	for _, r := range rows {
		if r.GFLOPS <= 0 {
			t.Fatalf("series %s has no throughput", r.Series)
		}
		byName[r.Series] = r
	}
	// Structural claims: checkpointing costs something; failures cost
	// more. (Exact ratios are machine-dependent.)
	if byName["FMI + C"].Checkpoints == 0 {
		t.Fatal("FMI + C took no checkpoints")
	}
	if byName["FMI + C/R"].Failures == 0 {
		t.Fatal("FMI + C/R saw no failures (increase run length or rate)")
	}
	if byName["FMI + C/R"].GFLOPS > byName["FMI"].GFLOPS {
		t.Fatal("running through failures should not be faster than failure-free")
	}
	var buf bytes.Buffer
	PrintFig15(&buf, c, rows)
	if !strings.Contains(buf.String(), "Fig 15") {
		t.Fatal("printer broken")
	}
}

func TestMsgLogSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("recovery comparison in -short mode")
	}
	rows, err := MsgLog([]int{4}, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.FFGlobal <= 0 || r.FFLocal <= 0 || r.FailGlobal <= 0 || r.FailLocal <= 0 {
		t.Fatalf("non-positive walls: %+v", r)
	}
	// The headline claim: localized recovery removes survivor rework
	// entirely, while global rollback forces some.
	if r.ReworkLocal != 0 {
		t.Fatalf("local recovery caused %d survivor re-executions", r.ReworkLocal)
	}
	if r.ReworkGlobal == 0 {
		t.Fatal("global rollback caused no survivor rework (failure too late?)")
	}
	if r.Replayed == 0 {
		t.Fatal("local failure run replayed no messages")
	}
	var buf bytes.Buffer
	PrintMsgLog(&buf, 12, 3, rows)
	if !strings.Contains(buf.String(), "Message logging") {
		t.Fatal("printer broken")
	}
}

func TestModelPrinters(t *testing.T) {
	var buf bytes.Buffer
	PrintTable1(&buf)
	PrintFig1(&buf)
	PrintTable2(&buf)
	PrintFig16(&buf, Fig16([]float64{1, 10, 50}))
	PrintFig17(&buf, Fig17([]float64{1, 25, 50}))
	out := buf.String()
	for _, want := range []string{"Table I", "Fig 1", "Table II", "Fig 16", "Fig 17", "Compute node", "554.10"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q", want)
		}
	}
}

func TestAblateGroup(t *testing.T) {
	rows := AblateGroup(64, []int{2, 4, 8, 16, 32, 64})
	prevOverhead := 1e9
	prevFatal := -1.0
	for _, r := range rows {
		if r.ParityOverheadPc >= prevOverhead {
			t.Fatal("parity overhead should fall with group size")
		}
		if r.TwoLossFatalPc <= prevFatal {
			t.Fatal("two-loss fatality should rise with group size")
		}
		prevOverhead, prevFatal = r.ParityOverheadPc, r.TwoLossFatalPc
	}
	// Paper §V-C: at group 16, parity is ~6.6%.
	for _, r := range rows {
		if r.GroupSize == 16 && (r.ParityOverheadPc < 6 || r.ParityOverheadPc > 7) {
			t.Fatalf("group 16 parity overhead = %.1f%%", r.ParityOverheadPc)
		}
	}
	var buf bytes.Buffer
	PrintAblateGroup(&buf, 64, rows)
	if !strings.Contains(buf.String(), "Ablation") {
		t.Fatal("printer broken")
	}
}

func TestErasureSweepShape(t *testing.T) {
	rows, err := ErasureSweep([]int{1, 2, 3}, 4, 1<<18)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.EncodeSeconds <= 0 || r.RecoverSeconds <= 0 || r.EncodeMBps <= 0 {
			t.Fatalf("non-positive timings: %+v", r)
		}
		if r.Losses != r.M || r.K != r.GroupSize-r.M {
			t.Fatalf("geometry wrong: %+v", r)
		}
		if i > 0 && r.OverheadPc <= rows[i-1].OverheadPc {
			t.Fatal("parity overhead should grow with m")
		}
	}
	if rows[0].Scheme != "xor" || rows[1].Scheme != "rs" {
		t.Fatalf("scheme selection wrong: %q, %q", rows[0].Scheme, rows[1].Scheme)
	}
	kern, err := ErasureKernelBench(1<<18, [][2]int{{7, 1}, {6, 2}}, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range kern {
		if k.ScalarMBps <= 0 || k.ParallelMBps <= 0 {
			t.Fatalf("kernel bench broken: %+v", k)
		}
	}
	var buf bytes.Buffer
	PrintErasure(&buf, rows)
	PrintErasureKernels(&buf, 1<<18, kern)
	if !strings.Contains(buf.String(), "Erasure") || !strings.Contains(buf.String(), "RS( 7,1)") {
		t.Fatal("printers broken")
	}
}

func TestAblateK(t *testing.T) {
	rows, err := AblateK(64, []int{2, 4, 8}, time.Millisecond, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].ConnsPerProc <= rows[2].ConnsPerProc {
		t.Fatal("base 2 should need more connections than base 8")
	}
	if rows[0].Hops > rows[2].Hops {
		// Larger bases reach fewer nodes per hop in the BFS sense only
		// when counting undirected edges; allow equality but not a
		// strict inversion both ways.
		t.Logf("hops: k=2 %d, k=8 %d", rows[0].Hops, rows[2].Hops)
	}
	var buf bytes.Buffer
	PrintAblateK(&buf, 64, rows)
	if !strings.Contains(buf.String(), "Ablation") {
		t.Fatal("printer broken")
	}
}

func TestServeExpSmall(t *testing.T) {
	cfg := DefaultServeExpConfig()
	cfg.Tenants, cfg.JobsPerTenant = 2, 2
	cfg.Iters, cfg.StepMs = 4, 5
	cfg.FailureRate = 20
	res, err := ServeExp(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, pass := range [][]ServeTenantRow{res.Baseline, res.Faulted} {
		if len(pass) != cfg.Tenants {
			t.Fatalf("pass has %d rows, want %d", len(pass), cfg.Tenants)
		}
		for _, row := range pass {
			if row.Jobs != cfg.JobsPerTenant || row.Failed != 0 {
				t.Fatalf("tenant %s: %+v, want %d clean jobs", row.Tenant, row, cfg.JobsPerTenant)
			}
			if row.P50Ms <= 0 || row.P99Ms < row.P50Ms {
				t.Fatalf("tenant %s: bad percentiles %+v", row.Tenant, row)
			}
		}
	}
	if quiet := res.Faulted[cfg.Tenants-1]; quiet.Noisy || quiet.Epochs != 0 {
		t.Fatalf("quiet tenant saw recovery traffic: %+v", quiet)
	}
	doc, err := ServeExpJSON(cfg, res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(doc, []byte(`"quiet_p99_inflation"`)) {
		t.Fatalf("JSON missing interference field:\n%s", doc)
	}
	var buf bytes.Buffer
	PrintServeExp(&buf, cfg, res)
	if !strings.Contains(buf.String(), "quiet-tenant p99 inflation") {
		t.Fatalf("printer output missing headline:\n%s", buf.String())
	}
}
