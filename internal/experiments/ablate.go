package experiments

import (
	"fmt"
	"io"
	"time"

	"fmi/internal/overlay"
)

// AblateKRow sweeps the log-ring base k (paper §IV-C: "The value of k
// in log_k(n) connections is a tunable parameter in FMI … we leave the
// optimization of k for future work"). This ablation does that
// exploration: connection count (establishment cost) versus
// propagation hops (detection cost).
type AblateKRow struct {
	Base          int
	ConnsPerProc  int
	Hops          int
	BuildSeconds  float64
	NotifySeconds float64
}

// AblateK measures, for one process count, how the log-ring base
// trades establishment against notification.
func AblateK(n int, bases []int, detect, prop time.Duration) ([]AblateKRow, error) {
	var out []AblateKRow
	for _, k := range bases {
		buildStart := time.Now()
		rows, err := NotifySweep([]int{n}, k, detect, prop)
		if err != nil {
			return nil, err
		}
		out = append(out, AblateKRow{
			Base:          k,
			ConnsPerProc:  len(overlay.OutNeighbors(0, n, k)),
			Hops:          overlay.NotifyHops(n, k, 0),
			BuildSeconds:  time.Since(buildStart).Seconds() - rows[0].MaxSeconds,
			NotifySeconds: rows[0].MaxSeconds,
		})
	}
	return out, nil
}

// PrintAblateK prints the sweep.
func PrintAblateK(w io.Writer, n int, rows []AblateKRow) {
	fmt.Fprintf(w, "Ablation: log-ring base k at n=%d (paper leaves k tuning as future work)\n", n)
	fmt.Fprintf(w, "%6s %12s %6s %12s %12s\n", "k", "conns/proc", "hops", "build(s)", "notify(s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%6d %12d %6d %12.4f %12.4f\n", r.Base, r.ConnsPerProc, r.Hops, r.BuildSeconds, r.NotifySeconds)
	}
}

// AblateGroupRow sweeps the XOR group size against survivability: the
// probability that two random simultaneous node failures land in the
// same group (unrecoverable, paper §VIII) versus the parity memory
// overhead (§V-C trade-off).
type AblateGroupRow struct {
	GroupSize        int
	ParityOverheadPc float64
	TwoLossFatalPc   float64 // P(two random node losses share a group)
}

// AblateGroup computes the trade-off analytically for a cluster of
// nodes nodes (1 rank/node).
func AblateGroup(nodes int, groupSizes []int) []AblateGroupRow {
	var out []AblateGroupRow
	for _, g := range groupSizes {
		if g > nodes {
			continue
		}
		// Nodes are partitioned into windows of g; two distinct random
		// nodes collide iff they fall in the same window:
		// P = (g-1)/(nodes-1) for full windows.
		p := float64(g-1) / float64(nodes-1)
		out = append(out, AblateGroupRow{
			GroupSize:        g,
			ParityOverheadPc: 100.0 / float64(g-1),
			TwoLossFatalPc:   100 * p,
		})
	}
	return out
}

// PrintAblateGroup prints the trade-off table.
func PrintAblateGroup(w io.Writer, nodes int, rows []AblateGroupRow) {
	fmt.Fprintf(w, "Ablation: XOR group size trade-off on %d nodes (paper §V-C picks 16)\n", nodes)
	fmt.Fprintf(w, "%8s %16s %22s\n", "group", "parity overhead", "P(2 losses fatal)")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %15.1f%% %21.2f%%\n", r.GroupSize, r.ParityOverheadPc, r.TwoLossFatalPc)
	}
}
