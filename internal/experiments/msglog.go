package experiments

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"fmi"
)

// MsgLogRow compares the two recovery protocols at one process count:
// the failure-free cost of sender-side logging (Recovery "local" vs the
// default global rollback) and, with one scripted mid-run failure, the
// rework each protocol forces on the surviving ranks. Under global
// rollback every survivor re-executes from the last checkpoint; under
// message logging only the respawned rank replays, so survivor rework
// must be zero.
type MsgLogRow struct {
	Ranks int

	// Failure-free walls: the logging overhead is FFLocal vs FFGlobal.
	FFGlobal, FFLocal time.Duration

	// One scripted failure: wall plus iterations re-executed by ranks
	// that did not fail.
	FailGlobal, FailLocal   time.Duration
	ReworkGlobal, ReworkLocal int

	// Local-mode telemetry from the failure run.
	Replayed   int // messages re-sent from sender logs during recovery
	LogEntries int // entries still held at exit (bounded by trimming)
}

// msglogApp is a fixed-work Allreduce loop; execs[rank] counts every
// completed iteration so re-execution (rework) is directly observable.
// The per-iteration sleep stands in for compute, making rollback cost
// visible in wall time.
func msglogApp(iters int, sleep time.Duration, execs []int64) fmi.App {
	return func(env *fmi.Env) error {
		state := make([]byte, 8)
		world := env.World()
		for {
			n := env.Loop(state)
			if n >= iters {
				break
			}
			if _, err := fmi.AllreduceInt64(world, fmi.SumInt64(), int64(n+env.Rank())); err != nil {
				continue
			}
			atomic.AddInt64(&execs[env.Rank()], 1)
			if sleep > 0 {
				time.Sleep(sleep)
			}
			binary.LittleEndian.PutUint64(state, uint64(n+1))
		}
		return env.Finalize()
	}
}

// runMsgLog executes one cell: the given recovery mode, optionally with
// a single node kill halfway through. Returned rework is the number of
// iterations re-executed by ranks other than the killed one.
func runMsgLog(ranks, iters, interval int, recovery string, fail bool) (time.Duration, int, *fmi.Report, error) {
	execs := make([]int64, ranks)
	cfg := fmi.Config{
		Ranks: ranks, ProcsPerNode: 1,
		CheckpointInterval: interval, XORGroupSize: 4,
		Recovery:    recovery,
		DetectDelay: 2 * time.Millisecond, PropDelay: time.Millisecond,
		Timeout: 5 * time.Minute,
	}
	failed := -1
	if fail {
		cfg.SpareNodes = 1
		failed = ranks / 2
		// Kill one iteration short of the next checkpoint so the global
		// protocol has a full interval of progress to roll back — the
		// worst case message logging is designed to avoid.
		failAt := (iters/2/interval)*interval + interval - 1
		cfg.Faults = &fmi.FaultPlan{Script: []fmi.Fault{{AfterLoop: failAt, Node: -1, Rank: failed}}}
	}
	start := time.Now()
	rep, err := fmi.Run(cfg, msglogApp(iters, 2*time.Millisecond, execs))
	wall := time.Since(start)
	if err != nil {
		return wall, 0, rep, err
	}
	rework := 0
	for rank := range execs {
		if rank == failed {
			continue
		}
		if extra := int(atomic.LoadInt64(&execs[rank])) - iters; extra > 0 {
			rework += extra
		}
	}
	return wall, rework, rep, nil
}

// MsgLog runs the four cells (global/local × failure-free/one-failure)
// at each process count.
func MsgLog(rankCounts []int, iters, interval int) ([]MsgLogRow, error) {
	var out []MsgLogRow
	for _, n := range rankCounts {
		row := MsgLogRow{Ranks: n}
		var err error
		if row.FFGlobal, _, _, err = runMsgLog(n, iters, interval, "global", false); err != nil {
			return nil, fmt.Errorf("msglog n=%d global ff: %w", n, err)
		}
		if row.FFLocal, _, _, err = runMsgLog(n, iters, interval, "local", false); err != nil {
			return nil, fmt.Errorf("msglog n=%d local ff: %w", n, err)
		}
		if row.FailGlobal, row.ReworkGlobal, _, err = runMsgLog(n, iters, interval, "global", true); err != nil {
			return nil, fmt.Errorf("msglog n=%d global fail: %w", n, err)
		}
		var rep *fmi.Report
		if row.FailLocal, row.ReworkLocal, rep, err = runMsgLog(n, iters, interval, "local", true); err != nil {
			return nil, fmt.Errorf("msglog n=%d local fail: %w", n, err)
		}
		row.Replayed = rep.Stats.ReplayedMsgs
		row.LogEntries = rep.Stats.LogEntries
		out = append(out, row)
	}
	return out, nil
}

// PrintMsgLog prints the comparison with the headline ratios: the
// failure-free logging overhead and the survivor rework eliminated by
// localized recovery.
func PrintMsgLog(w io.Writer, iters, interval int, rows []MsgLogRow) {
	fmt.Fprintf(w, "Message logging vs global rollback: %d iterations, checkpoint every %d\n", iters, interval)
	fmt.Fprintf(w, "%6s %12s %12s %9s %12s %12s %8s %8s %8s %8s\n",
		"ranks", "ff-glob(ms)", "ff-local(ms)", "log-ovh", "fail-glob", "fail-local",
		"rwk-glob", "rwk-loc", "replayed", "logheld")
	for _, r := range rows {
		ovh := 0.0
		if r.FFGlobal > 0 {
			ovh = 100 * (float64(r.FFLocal)/float64(r.FFGlobal) - 1)
		}
		fmt.Fprintf(w, "%6d %12.1f %12.1f %8.1f%% %12.1f %12.1f %8d %8d %8d %8d\n",
			r.Ranks,
			float64(r.FFGlobal)/1e6, float64(r.FFLocal)/1e6, ovh,
			float64(r.FailGlobal)/1e6, float64(r.FailLocal)/1e6,
			r.ReworkGlobal, r.ReworkLocal, r.Replayed, r.LogEntries)
	}
	fmt.Fprintln(w, "rwk-*: iterations re-executed by surviving ranks after one failure")
	fmt.Fprintln(w, "localized recovery keeps survivor rework at zero; only the respawned rank replays")
}
