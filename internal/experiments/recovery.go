package experiments

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"fmi"
	"fmi/internal/trace"
)

// Recovery frontier (ISSUE 7): the same fixed-work allreduce job run
// under each recovery protocol — global rollback, sender-logged local
// replay, and primary/shadow replication — once failure-free and once
// with a single primary-node kill. The headline is the frontier the
// related work draws: replication's recovery latency (shadow promotion,
// no rollback, no replay) sits far below both rollback protocols, paid
// for honestly with a doubled node footprint and mirrored-send
// steady-state overhead.

// RecoveryConfig sizes the workload.
type RecoveryConfig struct {
	Ranks     int           `json:"ranks"`
	Iters     int           `json:"iters"`
	Interval  int           `json:"checkpoint_interval"`
	ComputeMs int           `json:"compute_ms_per_iter"`
	Timeout   time.Duration `json:"timeout_ns"`
}

// DefaultRecoveryConfig is sized so the kill lands mid-run with a full
// checkpoint interval of progress at risk.
func DefaultRecoveryConfig() RecoveryConfig {
	return RecoveryConfig{Ranks: 6, Iters: 30, Interval: 4, ComputeMs: 2, Timeout: 5 * time.Minute}
}

// QuickRecoveryConfig shrinks the workload for a CI smoke run.
func QuickRecoveryConfig() RecoveryConfig {
	return RecoveryConfig{Ranks: 4, Iters: 12, Interval: 3, ComputeMs: 1, Timeout: 2 * time.Minute}
}

// RecoveryRow is one protocol's measurements.
type RecoveryRow struct {
	Protocol string `json:"protocol"`
	// Nodes is the compute-node footprint (spares excluded): the
	// replication protocol pays 2x here, reported alongside its
	// latency win rather than hidden.
	Nodes int `json:"nodes"`
	// FFWall / FailWall are the failure-free and one-failure walls.
	FFWall   time.Duration `json:"ff_wall_ns"`
	FailWall time.Duration `json:"fail_wall_ns"`
	// OverheadPct is the steady-state (failure-free) wall overhead
	// relative to the global-rollback baseline.
	OverheadPct float64 `json:"steady_state_overhead_pct"`
	// RecoveryLatency is what the failure cost when it fired: for the
	// rollback protocols, mean recovery epoch time (H1/H2 rebuild +
	// restore negotiation); for replication, the node-failed ->
	// shadow-promote trace span.
	RecoveryLatency time.Duration `json:"recovery_latency_ns"`
	// LostIterations counts rolled-back progress; Masked reports
	// whether the application ever observed the failure.
	LostIterations int  `json:"lost_iterations"`
	Masked         bool `json:"masked"`
}

// recoveryApp is the shared fixed-work allreduce loop; the per-
// iteration sleep stands in for compute so rollback cost shows up in
// wall time.
func recoveryApp(iters int, compute time.Duration) fmi.App {
	return func(env *fmi.Env) error {
		state := make([]byte, 8)
		world := env.World()
		for {
			n := env.Loop(state)
			if n >= iters {
				break
			}
			if _, err := fmi.AllreduceInt64(world, fmi.SumInt64(), int64(n+env.Rank())); err != nil {
				continue
			}
			if compute > 0 {
				time.Sleep(compute)
			}
			binary.LittleEndian.PutUint64(state, uint64(n+1))
		}
		return env.Finalize()
	}
}

// runRecovery executes one (protocol, fail?) cell and returns the wall
// plus the run report with its timeline.
func runRecovery(cfg RecoveryConfig, protocol string, fail bool) (time.Duration, *fmi.Report, error) {
	rcfg := fmi.Config{
		Ranks: cfg.Ranks, ProcsPerNode: 1,
		CheckpointInterval: cfg.Interval, XORGroupSize: 4,
		Recovery:    protocol,
		DetectDelay: 2 * time.Millisecond, PropDelay: time.Millisecond,
		Timeout: cfg.Timeout,
		TraceTo: io.Discard, // populate Report.Timeline for the span
	}
	if fail {
		rcfg.SpareNodes = 2
		// Kill one iteration short of the next checkpoint: the worst
		// case for rollback (a full interval of progress lost), the
		// case replication masks entirely.
		failAt := (cfg.Iters/2/cfg.Interval)*cfg.Interval + cfg.Interval - 1
		rcfg.Faults = &fmi.FaultPlan{Script: []fmi.Fault{{AfterLoop: failAt, Node: -1, Rank: cfg.Ranks / 2}}}
	}
	start := time.Now()
	rep, err := fmi.Run(rcfg, recoveryApp(cfg.Iters, time.Duration(cfg.ComputeMs)*time.Millisecond))
	return time.Since(start), rep, err
}

// timelineSpan returns first(b) - first(a) from a run timeline, or 0
// if either kind never fired.
func timelineSpan(events []fmi.TraceEvent, a, b trace.Kind) time.Duration {
	var ta, tb time.Time
	for _, e := range events {
		if e.Kind == a && ta.IsZero() {
			ta = e.At
		}
		if e.Kind == b && tb.IsZero() {
			tb = e.At
		}
	}
	if ta.IsZero() || tb.IsZero() {
		return 0
	}
	return tb.Sub(ta)
}

// RecoveryFrontier measures all three protocols on the same workload.
func RecoveryFrontier(cfg RecoveryConfig) ([]RecoveryRow, error) {
	var out []RecoveryRow
	var baseline time.Duration
	for _, protocol := range []string{"global", "local", "replica"} {
		row := RecoveryRow{Protocol: protocol, Nodes: cfg.Ranks}
		if protocol == "replica" {
			row.Nodes = 2 * cfg.Ranks
		}
		var err error
		if row.FFWall, _, err = runRecovery(cfg, protocol, false); err != nil {
			return nil, fmt.Errorf("recovery-frontier %s ff: %w", protocol, err)
		}
		if protocol == "global" {
			baseline = row.FFWall
		}
		if baseline > 0 {
			row.OverheadPct = 100 * (float64(row.FFWall)/float64(baseline) - 1)
		}
		var rep *fmi.Report
		if row.FailWall, rep, err = runRecovery(cfg, protocol, true); err != nil {
			return nil, fmt.Errorf("recovery-frontier %s fail: %w", protocol, err)
		}
		if rep.FailuresInjected == 0 {
			return nil, fmt.Errorf("recovery-frontier %s: scripted kill never fired", protocol)
		}
		row.LostIterations = rep.Stats.LostIterations
		if protocol == "replica" {
			// No recovery epoch ran: the failure's entire footprint is
			// the promotion handoff, measured on the trace timeline.
			row.Masked = rep.Stats.Recoveries == 0
			row.RecoveryLatency = timelineSpan(rep.Timeline, trace.KindNodeFailed, trace.KindShadowPromote)
			if !row.Masked {
				return nil, fmt.Errorf("recovery-frontier replica: primary kill was not masked (%d recovery epochs)", rep.Stats.Recoveries)
			}
			if row.RecoveryLatency <= 0 {
				return nil, fmt.Errorf("recovery-frontier replica: no node-failed -> shadow-promote span in timeline")
			}
		} else {
			if rep.Stats.Recoveries == 0 {
				return nil, fmt.Errorf("recovery-frontier %s: kill fired but no recovery epoch ran", protocol)
			}
			row.RecoveryLatency = rep.Stats.RecoveryTime / time.Duration(rep.Stats.Recoveries)
		}
		out = append(out, row)
	}
	return out, nil
}

// recoveryReport is the BENCH_recovery.json schema.
type recoveryReport struct {
	Experiment string         `json:"experiment"`
	Config     RecoveryConfig `json:"config"`
	Results    []RecoveryRow  `json:"results"`
	// ReplicaFastestRecovery is the acceptance headline: replication's
	// recovery latency is strictly below both rollback protocols'.
	ReplicaFastestRecovery bool `json:"replica_fastest_recovery"`
}

// replicaFastest reports whether the replica row's recovery latency is
// strictly below every rollback row's.
func replicaFastest(rows []RecoveryRow) bool {
	var replica time.Duration
	for _, r := range rows {
		if r.Protocol == "replica" {
			replica = r.RecoveryLatency
		}
	}
	if replica <= 0 {
		return false
	}
	for _, r := range rows {
		if r.Protocol != "replica" && r.RecoveryLatency <= replica {
			return false
		}
	}
	return true
}

// RecoveryJSON renders the sweep as the BENCH_recovery.json document.
func RecoveryJSON(cfg RecoveryConfig, rows []RecoveryRow) ([]byte, error) {
	doc, err := json.MarshalIndent(recoveryReport{
		Experiment:             "recovery-frontier",
		Config:                 cfg,
		Results:                rows,
		ReplicaFastestRecovery: replicaFastest(rows),
	}, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(doc, '\n'), nil
}

// PrintRecovery renders the frontier with the headline comparison.
func PrintRecovery(w io.Writer, cfg RecoveryConfig, rows []RecoveryRow) {
	fmt.Fprintf(w, "Recovery frontier: %d ranks, %d iterations, checkpoint every %d, one primary-node kill\n",
		cfg.Ranks, cfg.Iters, cfg.Interval)
	fmt.Fprintf(w, "%8s %6s %11s %9s %11s %13s %9s %7s\n",
		"protocol", "nodes", "ff-wall(ms)", "ovh", "fail(ms)", "recovery(ms)", "lost-its", "masked")
	for _, r := range rows {
		fmt.Fprintf(w, "%8s %6d %11.1f %8.1f%% %11.1f %13.3f %9d %7v\n",
			r.Protocol, r.Nodes,
			float64(r.FFWall)/1e6, r.OverheadPct, float64(r.FailWall)/1e6,
			float64(r.RecoveryLatency)/1e6, r.LostIterations, r.Masked)
	}
	if replicaFastest(rows) {
		fmt.Fprintln(w, "replica recovery latency is strictly below both rollback protocols (promotion, no rollback)")
	} else {
		fmt.Fprintln(w, "WARNING: replica recovery latency did NOT beat both rollback protocols on this run")
	}
	fmt.Fprintln(w, "the price is the doubled node footprint and the mirrored-send steady-state overhead above")
}
