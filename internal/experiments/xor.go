// Package experiments implements the benchmark harness that
// regenerates every table and figure of the paper's evaluation
// (§VI). Each experiment returns typed rows plus a printer, so the
// fmibench/fmimodel commands and the root bench_test.go share one
// implementation. Data sizes are scaled down from the paper's 6
// GB/node (this substrate is a laptop, not Sierra); the *shape* of
// each result is what is reproduced, and the paper-scale analytic
// model values are printed alongside for comparison.
package experiments

import (
	"fmt"
	"io"
	"sync"
	"time"

	"fmi/internal/ckpt"
	"fmi/internal/model"
	"fmi/internal/transport"
)

// ringWorld wires n participants over a chan network for raw XOR ring
// experiments (no full runtime: this isolates exactly the quantities
// of Figs 10-12).
type ringWorld struct {
	eps []transport.Endpoint
	ms  []*transport.Matcher
}

func newRingWorld(n int) (*ringWorld, error) {
	nw := transport.NewChanNetwork(transport.Options{})
	w := &ringWorld{}
	for i := 0; i < n; i++ {
		ep, err := nw.NewEndpoint(nil)
		if err != nil {
			return nil, err
		}
		w.eps = append(w.eps, ep)
		w.ms = append(w.ms, transport.NewMatcher(ep))
	}
	return w, nil
}

func (w *ringWorld) close() {
	for i := range w.eps {
		w.ms[i].Close()
		w.eps[i].Close()
	}
}

// wgc is a ckpt.GroupComm over the ring world for one member.
type wgc struct {
	w       *ringWorld
	self    int   // global index of this member
	members []int // global indices of the group, in group order
	meIdx   int   // my index within members
	tag     int32
}

func (g *wgc) Send(peer int, data []byte) error {
	return g.w.eps[g.self].Send(g.w.eps[g.members[peer]].Addr(), transport.Msg{
		Src: int32(g.self), Tag: g.tag, Data: data,
	})
}

func (g *wgc) Recv(peer int) ([]byte, error) {
	msg, err := g.w.ms[g.self].Recv(0, int32(g.members[peer]), g.tag, nil)
	if err != nil {
		return nil, err
	}
	return msg.Data, nil
}

// XORPoint is one row of Figs 10/11: measured checkpoint and restart
// times for a group size, with the paper-scale model values (Sierra
// bandwidths, 6 GB/node) alongside.
type XORPoint struct {
	GroupSize        int
	MemcpySeconds    float64 // capture memcpy
	EncodeSeconds    float64 // ring communication + XOR
	CheckpointTotal  float64
	DecodeSeconds    float64 // survivors' decode ring
	GatherSeconds    float64 // chunk gather + reassembly + restore memcpy
	RestartTotal     float64
	ModelCkptSierra  float64 // §V-B model at 6 GB/node on Sierra
	ModelRestSierra  float64
	BytesPerRank     int
	ParityOverheadPc float64
}

// XORGroupSweep measures in-memory XOR checkpoint and restart against
// group size (Figs 10 and 11). bytesPerRank is the per-rank checkpoint
// size (the paper used 6 GB/node).
func XORGroupSweep(groupSizes []int, bytesPerRank int) ([]XORPoint, error) {
	var out []XORPoint
	sierra := model.Sierra()
	for _, g := range groupSizes {
		w, err := newRingWorld(g)
		if err != nil {
			return nil, err
		}
		members := make([]int, g)
		for i := range members {
			members[i] = i
		}
		data := make([][]byte, g)
		for i := range data {
			data[i] = make([]byte, bytesPerRank)
			for j := 0; j < bytesPerRank; j += 4096 {
				data[i][j] = byte(i*31 + j)
			}
		}
		chunkLen := ckpt.ChunkLen(bytesPerRank, g)

		// --- Checkpoint (Fig 10): capture memcpy + encode ring.
		var mu sync.Mutex
		var memcpyMax, encodeMax float64
		parities := make([][]byte, g)
		snaps := make([]*ckpt.Snapshot, g)
		var wg sync.WaitGroup
		ckptStart := time.Now()
		for i := 0; i < g; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				t0 := time.Now()
				snap := ckpt.Capture(0, [][]byte{data[i]})
				t1 := time.Now()
				gc := &wgc{w: w, self: i, members: members, meIdx: i, tag: 1}
				parity, err := ckpt.EncodeRing(gc, i, g, snap.Data, chunkLen)
				t2 := time.Now()
				if err != nil {
					return
				}
				mu.Lock()
				snaps[i], parities[i] = snap, parity
				if d := t1.Sub(t0).Seconds(); d > memcpyMax {
					memcpyMax = d
				}
				if d := t2.Sub(t1).Seconds(); d > encodeMax {
					encodeMax = d
				}
				mu.Unlock()
			}(i)
		}
		wg.Wait()
		ckptTotal := time.Since(ckptStart).Seconds()

		// --- Restart (Fig 11): lose member 0; survivors decode and
		// send chunks; the replacement gathers, reassembles, restores.
		const lost = 0
		var decodeMax, gatherSec float64
		restartStart := time.Now()
		for i := 0; i < g; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				gc := &wgc{w: w, self: i, members: members, meIdx: i, tag: 2}
				if i != lost {
					t0 := time.Now()
					res, err := ckpt.DecodeRing(gc, i, g, snaps[i].Data, chunkLen, parities[i], true)
					if err != nil {
						return
					}
					d := time.Since(t0).Seconds()
					if err := gc.Send(lost, res); err != nil {
						return
					}
					mu.Lock()
					if d > decodeMax {
						decodeMax = d
					}
					mu.Unlock()
					return
				}
				// The restarted member.
				t0 := time.Now()
				if _, err := ckpt.DecodeRing(gc, i, g, nil, chunkLen, make([]byte, chunkLen), false); err != nil {
					return
				}
				tDecode := time.Since(t0).Seconds()
				t1 := time.Now()
				rebuilt := make([]byte, (g-1)*chunkLen)
				for s := 0; s < g; s++ {
					if s == lost {
						continue
					}
					chunk, err := gc.Recv(s)
					if err != nil {
						return
					}
					k := ckpt.DecodeChunkIndex(lost, s, g)
					copy(rebuilt[(k-1)*chunkLen:], chunk)
				}
				// Restore memcpy back into the application segment.
				seg := make([]byte, bytesPerRank)
				snap := ckpt.FromData(0, rebuilt[:bytesPerRank], []int{bytesPerRank})
				if err := snap.Restore([][]byte{seg}); err != nil {
					return
				}
				mu.Lock()
				gatherSec = time.Since(t1).Seconds()
				if tDecode > decodeMax {
					decodeMax = tDecode
				}
				mu.Unlock()
			}(i)
		}
		wg.Wait()
		restartTotal := time.Since(restartStart).Seconds()
		w.close()

		out = append(out, XORPoint{
			GroupSize:        g,
			MemcpySeconds:    memcpyMax,
			EncodeSeconds:    encodeMax,
			CheckpointTotal:  ckptTotal,
			DecodeSeconds:    decodeMax,
			GatherSeconds:    gatherSec,
			RestartTotal:     restartTotal,
			ModelCkptSierra:  model.XORCheckpointTime(6e9, g, sierra.MemBW, sierra.NetBW),
			ModelRestSierra:  model.XORRestartTime(6e9, g, sierra.MemBW, sierra.NetBW),
			BytesPerRank:     bytesPerRank,
			ParityOverheadPc: model.ParityOverhead(g) * 100,
		})
	}
	return out, nil
}

// PrintFig10 prints the checkpoint-time sweep.
func PrintFig10(w io.Writer, rows []XORPoint) {
	fmt.Fprintf(w, "Fig 10: XOR checkpoint time vs group size (measured at %s/rank; model at 6 GB/node on Sierra)\n",
		fmtBytes(rows[0].BytesPerRank))
	fmt.Fprintf(w, "%8s %12s %12s %12s %14s %10s\n", "group", "memcpy(s)", "encode(s)", "total(s)", "model-6GB(s)", "parity%")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %12.4f %12.4f %12.4f %14.2f %10.1f\n",
			r.GroupSize, r.MemcpySeconds, r.EncodeSeconds, r.CheckpointTotal, r.ModelCkptSierra, r.ParityOverheadPc)
	}
}

// PrintFig11 prints the restart-time sweep.
func PrintFig11(w io.Writer, rows []XORPoint) {
	fmt.Fprintf(w, "Fig 11: XOR restart time vs group size (measured at %s/rank; model at 6 GB/node on Sierra)\n",
		fmtBytes(rows[0].BytesPerRank))
	fmt.Fprintf(w, "%8s %12s %12s %12s %14s\n", "group", "decode(s)", "gather(s)", "total(s)", "model-6GB(s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %12.4f %12.4f %12.4f %14.2f\n",
			r.GroupSize, r.DecodeSeconds, r.GatherSeconds, r.RestartTotal, r.ModelRestSierra)
	}
}

// ThroughputPoint is one row of Fig 12.
type ThroughputPoint struct {
	Procs          int
	CkptSeconds    float64
	RestartSeconds float64
	CkptGBps       float64
	RestartGBps    float64
	BytesPerRank   int
}

// CRThroughputSweep measures aggregate checkpoint/restart throughput
// against process count (Fig 12): every XOR group encodes in parallel;
// for restart every group loses one member and decodes in parallel.
func CRThroughputSweep(procCounts []int, groupSize, bytesPerRank int) ([]ThroughputPoint, error) {
	var out []ThroughputPoint
	for _, n := range procCounts {
		w, err := newRingWorld(n)
		if err != nil {
			return nil, err
		}
		groups, gidx := ckpt.Groups(n, 1, groupSize)
		data := make([][]byte, n)
		for i := range data {
			data[i] = make([]byte, bytesPerRank)
			for j := 0; j < bytesPerRank; j += 4096 {
				data[i][j] = byte(i + j)
			}
		}
		parities := make([][]byte, n)
		snaps := make([]*ckpt.Snapshot, n)
		chunkOf := func(r int) int { return ckpt.ChunkLen(bytesPerRank, len(groups[r])) }

		var wg sync.WaitGroup
		start := time.Now()
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				snap := ckpt.Capture(0, [][]byte{data[i]})
				gc := &wgc{w: w, self: i, members: groups[i], meIdx: gidx[i], tag: 1}
				parity, err := ckpt.EncodeRing(gc, gidx[i], len(groups[i]), snap.Data, chunkOf(i))
				if err != nil {
					return
				}
				snaps[i], parities[i] = snap, parity
			}(i)
		}
		wg.Wait()
		ckptSec := time.Since(start).Seconds()

		// Restart: group-local member 0 of every group is "lost".
		start = time.Now()
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				g := len(groups[i])
				if g < 2 {
					return
				}
				gi := gidx[i]
				cl := chunkOf(i)
				gc := &wgc{w: w, self: i, members: groups[i], meIdx: gi, tag: 2}
				const lost = 0
				if gi != lost {
					res, err := ckpt.DecodeRing(gc, gi, g, snaps[i].Data, cl, parities[i], true)
					if err != nil {
						return
					}
					if err := gc.Send(lost, res); err != nil {
						return
					}
					return
				}
				if _, err := ckpt.DecodeRing(gc, gi, g, nil, cl, make([]byte, cl), false); err != nil {
					return
				}
				rebuilt := make([]byte, (g-1)*cl)
				for s := 0; s < g; s++ {
					if s == lost {
						continue
					}
					chunk, err := gc.Recv(s)
					if err != nil {
						return
					}
					k := ckpt.DecodeChunkIndex(lost, s, g)
					copy(rebuilt[(k-1)*cl:], chunk)
				}
				seg := make([]byte, bytesPerRank)
				copy(seg, rebuilt[:bytesPerRank])
			}(i)
		}
		wg.Wait()
		restSec := time.Since(start).Seconds()
		w.close()

		total := float64(n) * float64(bytesPerRank)
		out = append(out, ThroughputPoint{
			Procs:       n,
			CkptSeconds: ckptSec, RestartSeconds: restSec,
			CkptGBps:     total / ckptSec / 1e9,
			RestartGBps:  total / restSec / 1e9,
			BytesPerRank: bytesPerRank,
		})
	}
	return out, nil
}

// CRThroughputSweepAggregate runs the Fig 12 sweep holding the
// aggregate checkpoint volume constant (per-rank size shrinks with
// process count), which is the honest framing on a single host whose
// memory bandwidth stands in for all the nodes' memories.
func CRThroughputSweepAggregate(procCounts []int, groupSize, aggregateBytes int) ([]ThroughputPoint, error) {
	var out []ThroughputPoint
	for _, n := range procCounts {
		per := aggregateBytes / n
		if per < 64<<10 {
			per = 64 << 10
		}
		rows, err := CRThroughputSweep([]int{n}, groupSize, per)
		if err != nil {
			return nil, err
		}
		out = append(out, rows[0])
	}
	return out, nil
}

// PrintFig12 prints the throughput sweep.
func PrintFig12(w io.Writer, rows []ThroughputPoint) {
	fmt.Fprintln(w, "Fig 12: C/R throughput vs process count (XOR group encode/decode)")
	fmt.Fprintf(w, "%8s %12s %12s %12s %14s %14s\n", "procs", "per-rank", "ckpt(s)", "restart(s)", "ckpt(GB/s)", "restart(GB/s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %12s %12.4f %12.4f %14.2f %14.2f\n",
			r.Procs, fmtBytes(r.BytesPerRank), r.CkptSeconds, r.RestartSeconds, r.CkptGBps, r.RestartGBps)
	}
}

func fmtBytes(n int) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}
