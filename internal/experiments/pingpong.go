package experiments

import (
	"fmt"
	"io"
	"sync"
	"time"

	"fmi/internal/core"
	"fmi/internal/mpi"
	"fmi/internal/runtime"
	"fmi/internal/transport"
)

// Table3Row compares FMI and the MPI baseline on ping-pong latency
// (1-byte) and bandwidth (8 MB), per transport. The paper's Table III
// shows FMI within noise of MVAPICH2 — here both run the identical
// engine, so the claim is that FMI's fault tolerance adds negligible
// messaging overhead.
type Table3Row struct {
	System        string // "FMI" or "MPI"
	Transport     string // "chan" or "tcp"
	LatencyUsec   float64
	BandwidthGBps float64
}

const (
	ppSmallIters = 2000
	ppLargeIters = 20
	ppLargeBytes = 8 << 20
)

// pingPong runs the canonical loop between ranks 0 and 1 and returns
// (one-way latency seconds, bandwidth bytes/sec). send/recv abstract
// the two runtimes (the same source drives both, as in the paper,
// which compiled one ping-pong source against both libraries).
func pingPong(rank int, send func(dst, tag int, data []byte) error,
	recv func(src, tag int) ([]byte, error)) (float64, float64, error) {

	small := []byte{0xAB}
	// Warm up the path.
	for i := 0; i < 50; i++ {
		if rank == 0 {
			if err := send(1, 1, small); err != nil {
				return 0, 0, err
			}
			if _, err := recv(1, 1); err != nil {
				return 0, 0, err
			}
		} else {
			if _, err := recv(0, 1); err != nil {
				return 0, 0, err
			}
			if err := send(0, 1, small); err != nil {
				return 0, 0, err
			}
		}
	}
	// Latency: round trips of 1 byte.
	start := time.Now()
	for i := 0; i < ppSmallIters; i++ {
		if rank == 0 {
			if err := send(1, 1, small); err != nil {
				return 0, 0, err
			}
			if _, err := recv(1, 1); err != nil {
				return 0, 0, err
			}
		} else {
			if _, err := recv(0, 1); err != nil {
				return 0, 0, err
			}
			if err := send(0, 1, small); err != nil {
				return 0, 0, err
			}
		}
	}
	lat := time.Since(start).Seconds() / float64(ppSmallIters) / 2

	// Bandwidth: 8 MB round trips.
	big := make([]byte, ppLargeBytes)
	start = time.Now()
	for i := 0; i < ppLargeIters; i++ {
		if rank == 0 {
			if err := send(1, 2, big); err != nil {
				return 0, 0, err
			}
			if _, err := recv(1, 2); err != nil {
				return 0, 0, err
			}
		} else {
			if _, err := recv(0, 2); err != nil {
				return 0, 0, err
			}
			if err := send(0, 2, big); err != nil {
				return 0, 0, err
			}
		}
	}
	elapsed := time.Since(start).Seconds()
	bw := float64(2*ppLargeIters*ppLargeBytes) / elapsed / 2 // one-way bytes over one-way time

	return lat, bw, nil
}

// PingPongFMI measures the FMI runtime.
func PingPongFMI(nw transport.Network, name string) (Table3Row, error) {
	var mu sync.Mutex
	var lat, bw float64
	_, err := runtime.Run(runtime.Config{
		Ranks: 2, ProcsPerNode: 1, Interval: 1 << 30,
		Network: nw, Timeout: 120 * time.Second,
	}, func(p *core.Proc) error {
		world := p.World()
		// One Loop call so collectives and p2p use the data plane.
		state := make([]byte, 1)
		p.Loop([][]byte{state})
		l, b, err := pingPong(p.Rank(),
			func(dst, tag int, data []byte) error { return world.Send(dst, tag, data) },
			func(src, tag int) ([]byte, error) {
				d, _, err := world.Recv(src, tag)
				return d, err
			})
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			mu.Lock()
			lat, bw = l, b
			mu.Unlock()
		}
		return p.Finalize()
	})
	if err != nil {
		return Table3Row{}, err
	}
	return Table3Row{System: "FMI", Transport: name, LatencyUsec: lat * 1e6, BandwidthGBps: bw / 1e9}, nil
}

// PingPongMPI measures the fail-stop baseline.
func PingPongMPI(nw transport.Network, name string) (Table3Row, error) {
	var mu sync.Mutex
	var lat, bw float64
	_, err := mpi.Run(mpi.Config{
		Ranks: 2, Network: nw, Timeout: 120 * time.Second,
	}, func(p *mpi.Proc) error {
		l, b, err := pingPong(p.Rank(),
			func(dst, tag int, data []byte) error { return p.Send(dst, tag, data) },
			func(src, tag int) ([]byte, error) {
				d, _, err := p.Recv(src, tag)
				return d, err
			})
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			mu.Lock()
			lat, bw = l, b
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return Table3Row{}, err
	}
	return Table3Row{System: "MPI", Transport: name, LatencyUsec: lat * 1e6, BandwidthGBps: bw / 1e9}, nil
}

// Table3 runs the full comparison over both transports.
func Table3() ([]Table3Row, error) {
	var rows []Table3Row
	for _, tr := range []struct {
		name string
		mk   func() transport.Network
	}{
		{"chan", func() transport.Network { return transport.NewChanNetwork(transport.Options{}) }},
		{"tcp", func() transport.Network { return transport.NewTCPNetwork(transport.Options{}) }},
	} {
		fr, err := PingPongFMI(tr.mk(), tr.name)
		if err != nil {
			return nil, fmt.Errorf("fmi/%s: %w", tr.name, err)
		}
		rows = append(rows, fr)
		mr, err := PingPongMPI(tr.mk(), tr.name)
		if err != nil {
			return nil, fmt.Errorf("mpi/%s: %w", tr.name, err)
		}
		rows = append(rows, mr)
	}
	return rows, nil
}

// PrintTable3 prints the comparison (paper: MPI 3.555 us / 3.227 GB/s,
// FMI 3.573 us / 3.211 GB/s on Sierra's QDR InfiniBand).
func PrintTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintln(w, "Table III: ping-pong 1-byte latency and 8 MB bandwidth")
	fmt.Fprintf(w, "%6s %10s %16s %18s\n", "system", "transport", "latency (usec)", "bandwidth (GB/s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%6s %10s %16.3f %18.3f\n", r.System, r.Transport, r.LatencyUsec, r.BandwidthGBps)
	}
}
