package experiments

import (
	"fmt"
	"io"
	"sync"
	"time"

	"fmi/internal/bootstrap"
	"fmi/internal/overlay"
	"fmi/internal/transport"
)

// InitPoint is one row of Fig 14: FMI_Init (bootstrapping + log-ring)
// versus the MVAPICH2/SLURM MPI_Init, both actually executed at this
// process count, plus the calibrated paper-scale model values.
type InitPoint struct {
	Procs           int
	TreeSeconds     float64 // measured PMGR-style tree bootstrap (H1)
	LogRingSeconds  float64 // measured overlay build (H2)
	KVSSeconds      float64 // measured PMI-style exchange (MPI_Init)
	ModelFMISeconds float64 // CostModel at paper scale
	ModelMPISeconds float64
	TreeCoordOps    int
	KVSCoordOps     int
}

// InitSweep measures both bootstrap paths at each process count. The
// KVS path's n² coordinator gets are executed for real, which is the
// paper's explanation for MPI_Init being slower.
func InitSweep(procCounts []int, base int) ([]InitPoint, error) {
	cm := bootstrap.DefaultCostModel()
	var out []InitPoint
	for _, n := range procCounts {
		// --- FMI path: tree exchange + log-ring.
		w, err := newRingWorld(n)
		if err != nil {
			return nil, err
		}
		coord := bootstrap.NewCoordinator()
		var wg sync.WaitGroup
		tables := make([]bootstrap.Table, n)
		costs := make([]bootstrap.Cost, n)
		errs := make([]error, n)
		start := time.Now()
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				tables[i], costs[i], errs[i] = bootstrap.TreeExchange(bootstrap.Proc{
					Rank: i, N: n, Addr: w.eps[i].Addr(), EP: w.eps[i], M: w.ms[i],
					Coord: coord, Key: "h1",
				})
			}(i)
		}
		wg.Wait()
		treeSec := time.Since(start).Seconds()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		treeOps := 0
		for _, c := range costs {
			treeOps += c.CoordOps
		}

		// H2: build the log-ring on the exchanged table.
		rings := make([]*overlay.Ring, n)
		start = time.Now()
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				addrs := make([]transport.Addr, n)
				copy(addrs, tables[i])
				rings[i], errs[i] = overlay.Build(w.eps[i], i, addrs, base)
			}(i)
		}
		wg.Wait()
		ringSec := time.Since(start).Seconds()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		for _, r := range rings {
			r.Quiesce()
		}
		for _, r := range rings {
			r.Shutdown()
		}
		w.close()

		// --- MPI path: PMI KVS exchange (n puts, n fences, n² gets).
		w2, err := newRingWorld(n)
		if err != nil {
			return nil, err
		}
		coord2 := bootstrap.NewCoordinator()
		kvsCosts := make([]bootstrap.Cost, n)
		start = time.Now()
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				_, kvsCosts[i], errs[i] = bootstrap.KVSExchange(bootstrap.Proc{
					Rank: i, N: n, Addr: w2.eps[i].Addr(), EP: w2.eps[i], M: w2.ms[i],
					Coord: coord2, Key: "pmi",
				})
			}(i)
		}
		wg.Wait()
		kvsSec := time.Since(start).Seconds()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		kvsOps := 0
		for _, c := range kvsCosts {
			kvsOps += c.CoordOps
		}
		w2.close()

		out = append(out, InitPoint{
			Procs:           n,
			TreeSeconds:     treeSec,
			LogRingSeconds:  ringSec,
			KVSSeconds:      kvsSec,
			ModelFMISeconds: cm.FMIInitTime(n, base).Seconds(),
			ModelMPISeconds: cm.MPIInitTime(n).Seconds(),
			TreeCoordOps:    treeOps,
			KVSCoordOps:     kvsOps,
		})
	}
	return out, nil
}

// PrintFig14 prints the init sweep.
func PrintFig14(w io.Writer, rows []InitPoint) {
	fmt.Fprintln(w, "Fig 14: FMI_Init (bootstrap + log-ring) vs MPI_Init (SLURM/MVAPICH2 PMI)")
	fmt.Fprintf(w, "%8s %12s %12s %12s | %12s %12s | %10s %10s\n",
		"procs", "tree(s)", "logring(s)", "kvs(s)", "modelFMI(s)", "modelMPI(s)", "treeOps", "kvsOps")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %12.5f %12.5f %12.5f | %12.2f %12.2f | %10d %10d\n",
			r.Procs, r.TreeSeconds, r.LogRingSeconds, r.KVSSeconds,
			r.ModelFMISeconds, r.ModelMPISeconds, r.TreeCoordOps, r.KVSCoordOps)
	}
}
