package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"fmi/internal/ckpt"
	"fmi/internal/erasure"
)

// ErasurePoint is one row of the redundancy sweep: distributed group
// encode and multi-loss recovery for one redundancy level m over a
// single checkpoint group (§VIII's proposed multi-failure extension).
type ErasurePoint struct {
	M              int // configured redundancy (losses tolerated)
	GroupSize      int
	K              int // data shards per stripe (g - m')
	Scheme         string
	EncodeSeconds  float64
	EncodeMBps     float64 // aggregate group data / encode time
	RecoverSeconds float64
	Losses         int // simultaneous losses repaired
	ParityBytes    int // per-rank parity held in memory
	OverheadPc     float64
	BytesPerRank   int
}

// ErasureSweep measures the redundancy trade-off: for each m, all g
// members of one group encode their checkpoints through the configured
// coder (ring-XOR for m=1, RS(k,m) for m>=2), then m members are
// declared lost and the group repairs them from the in-memory shards.
func ErasureSweep(ms []int, groupSize, bytesPerRank int) ([]ErasurePoint, error) {
	var out []ErasurePoint
	g := groupSize
	members := make([]int, g)
	for i := range members {
		members[i] = i
	}
	for _, m := range ms {
		coder := ckpt.NewCoder(m, 0)
		tol := coder.Tolerance(g)
		if tol < 1 {
			return nil, fmt.Errorf("experiments: group size %d gives tolerance 0 for m=%d", g, m)
		}
		w, err := newRingWorld(g)
		if err != nil {
			return nil, err
		}
		data := make([][]byte, g)
		for i := range data {
			data[i] = make([]byte, bytesPerRank)
			for j := 0; j < bytesPerRank; j += 512 {
				data[i][j] = byte(i*131 + j*7 + m)
			}
		}
		chunkLen := coder.ChunkLen(bytesPerRank, g)

		// --- Encode: every member runs the collective encode.
		parities := make([][]byte, g)
		errs := make([]error, g)
		var wg sync.WaitGroup
		start := time.Now()
		for i := 0; i < g; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				gc := &wgc{w: w, self: i, members: members, meIdx: i, tag: 1}
				parities[i], errs[i] = coder.Encode(gc, i, g, data[i], chunkLen)
			}(i)
		}
		wg.Wait()
		encSec := time.Since(start).Seconds()
		for i, err := range errs {
			if err != nil {
				w.close()
				return nil, fmt.Errorf("experiments: encode m=%d member %d: %w", m, i, err)
			}
		}

		// --- Recover: members 0..tol-1 are lost; survivors contribute,
		// replacements rebuild from the surviving in-memory shards.
		lost := make([]int, tol)
		lostSet := map[int]bool{}
		for l := range lost {
			lost[l] = l
			lostSet[l] = true
		}
		start = time.Now()
		for i := 0; i < g; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				gc := &wgc{w: w, self: i, members: members, meIdx: i, tag: 2}
				if lostSet[i] {
					_, errs[i] = coder.Reconstruct(gc, i, g, lost, nil, nil, chunkLen)
					return
				}
				_, errs[i] = coder.Reconstruct(gc, i, g, lost, data[i], parities[i], chunkLen)
			}(i)
		}
		wg.Wait()
		recSec := time.Since(start).Seconds()
		w.close()
		for i, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("experiments: recover m=%d member %d: %w", m, i, err)
			}
		}

		out = append(out, ErasurePoint{
			M: m, GroupSize: g, K: g - tol, Scheme: string(coder.Scheme()),
			EncodeSeconds: encSec,
			EncodeMBps:    float64(g) * float64(bytesPerRank) / encSec / 1e6,
			RecoverSeconds: recSec, Losses: tol,
			ParityBytes:  len(parities[g-1]),
			OverheadPc:   float64(len(parities[g-1])) / float64(bytesPerRank) * 100,
			BytesPerRank: bytesPerRank,
		})
	}
	return out, nil
}

// PrintErasure prints the redundancy sweep.
func PrintErasure(w io.Writer, rows []ErasurePoint) {
	fmt.Fprintf(w, "Erasure: redundancy sweep, group of %d at %s/rank (m losses repaired from in-memory shards)\n",
		rows[0].GroupSize, fmtBytes(rows[0].BytesPerRank))
	fmt.Fprintf(w, "%4s %8s %4s %12s %12s %8s %12s %10s\n",
		"m", "scheme", "k", "encode(s)", "enc(MB/s)", "losses", "recover(s)", "parity%")
	for _, r := range rows {
		fmt.Fprintf(w, "%4d %8s %4d %12.4f %12.1f %8d %12.4f %10.1f\n",
			r.M, r.Scheme, r.K, r.EncodeSeconds, r.EncodeMBps, r.Losses, r.RecoverSeconds, r.OverheadPc)
	}
}

// KernelPoint compares the scalar and striped-parallel GF(2^8) encode
// kernels for one RS(k,m) geometry.
type KernelPoint struct {
	K, M         int
	Workers      int
	ScalarMBps   float64
	ParallelMBps float64
	SpeedupX     float64
}

// ErasureKernelBench times Code.Encode (one goroutine) against
// Code.EncodeStriped (GOMAXPROCS workers) over shardLen-byte shards for
// each (k,m) geometry, running each kernel for at least minDur.
func ErasureKernelBench(shardLen int, geometries [][2]int, minDur time.Duration) ([]KernelPoint, error) {
	workers := runtime.GOMAXPROCS(0)
	var out []KernelPoint
	for _, km := range geometries {
		k, m := km[0], km[1]
		code, err := erasure.New(k, m)
		if err != nil {
			return nil, err
		}
		data := make([][]byte, k)
		for i := range data {
			data[i] = make([]byte, shardLen)
			for j := 0; j < shardLen; j += 128 {
				data[i][j] = byte(i + j)
			}
		}
		parity := make([][]byte, m)
		for j := range parity {
			parity[j] = make([]byte, shardLen)
		}
		measure := func(f func()) float64 {
			// Throughput of the data volume consumed per encode.
			iters, elapsed := 0, time.Duration(0)
			for elapsed < minDur {
				t0 := time.Now()
				f()
				elapsed += time.Since(t0)
				iters++
			}
			return float64(iters) * float64(k) * float64(shardLen) / elapsed.Seconds() / 1e6
		}
		scalar := measure(func() { code.Encode(data, parity) })
		par := measure(func() { code.EncodeStriped(data, parity, workers) })
		out = append(out, KernelPoint{
			K: k, M: m, Workers: workers,
			ScalarMBps: scalar, ParallelMBps: par, SpeedupX: par / scalar,
		})
	}
	return out, nil
}

// PrintErasureKernels prints the kernel comparison.
func PrintErasureKernels(w io.Writer, shardLen int, rows []KernelPoint) {
	fmt.Fprintf(w, "Erasure kernels: scalar vs striped-parallel GF(2^8) encode (%s shards, %d workers)\n",
		fmtBytes(shardLen), rows[0].Workers)
	fmt.Fprintf(w, "%10s %14s %14s %10s\n", "RS(k,m)", "scalar(MB/s)", "striped(MB/s)", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "  RS(%2d,%d) %14.1f %14.1f %9.2fx\n", r.K, r.M, r.ScalarMBps, r.ParallelMBps, r.SpeedupX)
	}
}
