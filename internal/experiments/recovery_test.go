package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestRecoveryFrontierSmall runs the frontier at smoke size and checks
// the acceptance shape: all three protocols measured, the replica row
// masked with zero lost iterations and a strictly lower recovery
// latency than both rollback protocols, and the JSON document carrying
// the headline flag.
func TestRecoveryFrontierSmall(t *testing.T) {
	cfg := QuickRecoveryConfig()
	rows, err := RecoveryFrontier(cfg)
	if err != nil {
		t.Fatalf("RecoveryFrontier: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	byProto := map[string]RecoveryRow{}
	for _, r := range rows {
		byProto[r.Protocol] = r
		if r.FFWall <= 0 || r.FailWall <= 0 || r.RecoveryLatency <= 0 {
			t.Errorf("%s: non-positive measurement %+v", r.Protocol, r)
		}
	}
	rep := byProto["replica"]
	if !rep.Masked || rep.LostIterations != 0 {
		t.Errorf("replica row not masked: %+v", rep)
	}
	if rep.Nodes != 2*cfg.Ranks {
		t.Errorf("replica nodes = %d, want %d (doubled footprint reported honestly)", rep.Nodes, 2*cfg.Ranks)
	}
	for _, p := range []string{"global", "local"} {
		if byProto[p].Masked {
			t.Errorf("%s row claims masked", p)
		}
		if byProto[p].RecoveryLatency <= rep.RecoveryLatency {
			t.Errorf("%s recovery %v not above replica %v", p, byProto[p].RecoveryLatency, rep.RecoveryLatency)
		}
	}

	doc, err := RecoveryJSON(cfg, rows)
	if err != nil {
		t.Fatalf("RecoveryJSON: %v", err)
	}
	var parsed struct {
		Experiment             string `json:"experiment"`
		ReplicaFastestRecovery bool   `json:"replica_fastest_recovery"`
	}
	if err := json.Unmarshal(doc, &parsed); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if parsed.Experiment != "recovery-frontier" || !parsed.ReplicaFastestRecovery {
		t.Errorf("JSON headline = %+v, want recovery-frontier with replica_fastest_recovery", parsed)
	}

	var buf bytes.Buffer
	PrintRecovery(&buf, cfg, rows)
	if !strings.Contains(buf.String(), "strictly below both rollback protocols") {
		t.Errorf("PrintRecovery missing headline:\n%s", buf.String())
	}
}
