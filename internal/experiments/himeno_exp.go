package experiments

import (
	"fmt"
	"io"
	"time"

	"fmi"
	"fmi/internal/himeno"
	"fmi/internal/model"
	"fmi/internal/mpi"
	"fmi/internal/pfs"
)

// Fig15Config parameterises the Himeno application study (paper
// §VI-B, Fig 15). The paper ran up to 1536 processes with 821 MB/node
// checkpoints and MTBF = 1 minute; defaults here are laptop-scaled.
type Fig15Config struct {
	Ranks        int
	ProcsPerNode int
	NX, NY, NZ   int
	Iters        int
	MTBF         time.Duration // failure rate for the C/R series and interval tuning
	Spares       int
	Seed         int64
	DetectDelay  time.Duration
	PropDelay    time.Duration
	Timeout      time.Duration
	// ScriptLoops, if non-empty, replaces Poisson injection in the
	// C/R series with deterministic node kills fired when these loop
	// ids complete (used by tests).
	ScriptLoops []int
}

// DefaultFig15Config returns a configuration that runs in tens of
// seconds on a multicore laptop while preserving the figure's
// structure: each series runs ~8-10 s of compute (≈20 ms per
// iteration), so an MTBF of 2 s injects several failures into the C/R
// series, mirroring the paper's one-minute MTBF against multi-minute
// runs.
func DefaultFig15Config() Fig15Config {
	return Fig15Config{
		Ranks: 8, ProcsPerNode: 2,
		NX: 258, NY: 128, NZ: 128,
		Iters: 400, MTBF: 2 * time.Second, Spares: 8, Seed: 7,
		DetectDelay: 5 * time.Millisecond, PropDelay: 2 * time.Millisecond,
		Timeout: 30 * time.Minute,
	}
}

// Fig15Row is one series of the figure.
type Fig15Row struct {
	Series      string
	GFLOPS      float64
	WallSeconds float64
	Checkpoints int
	Failures    int
	Recoveries  int
	Interval    int

	meanCkpt time.Duration // per-rank mean checkpoint cost (calibration)
}

// usefulFlops is the work the run must complete regardless of
// failures; dividing it by wall time yields the paper's "useful
// progress" FLOPS metric (recomputation and C/R time lower it).
func (c Fig15Config) usefulFlops() float64 {
	pts := float64((c.NX - 2) * (c.NY - 2) * (c.NZ - 2))
	return pts * himeno.FlopsPerPoint * float64(c.Iters)
}

// fmiApp builds the FMI Himeno application.
func fmiApp(c Fig15Config) fmi.App {
	return func(env *fmi.Env) error {
		s, err := himeno.New(env.Rank(), c.Ranks, c.NX, c.NY, c.NZ)
		if err != nil {
			return err
		}
		for {
			it := env.Loop(s.State())
			if it >= c.Iters {
				break
			}
			if _, err := s.Step(env.World()); err != nil {
				continue
			}
		}
		return env.Finalize()
	}
}

// runFMI executes one FMI series.
func runFMI(c Fig15Config, interval int, faults *fmi.FaultPlan) (Fig15Row, error) {
	cfg := fmi.Config{
		Ranks: c.Ranks, ProcsPerNode: c.ProcsPerNode, SpareNodes: c.Spares,
		CheckpointInterval: interval, MTBF: c.MTBF, XORGroupSize: 4,
		DetectDelay: c.DetectDelay, PropDelay: c.PropDelay,
		Faults: faults, Timeout: c.Timeout,
	}
	start := time.Now()
	rep, err := fmi.Run(cfg, fmiApp(c))
	if err != nil {
		return Fig15Row{}, err
	}
	wall := time.Since(start).Seconds()
	row := Fig15Row{
		GFLOPS:      c.usefulFlops() / wall / 1e9,
		WallSeconds: wall,
		Checkpoints: rep.Stats.Checkpoints,
		Failures:    rep.FailuresInjected,
		Recoveries:  rep.Recoveries,
		Interval:    interval,
	}
	if rep.Stats.Checkpoints > 0 {
		row.meanCkpt = rep.Stats.CheckpointTime / time.Duration(rep.Stats.Checkpoints)
	}
	return row, nil
}

// runMPI executes one MPI series; interval <= 0 disables
// checkpointing.
func runMPI(c Fig15Config, interval int) (Fig15Row, error) {
	cfg := mpi.Config{
		Ranks: c.Ranks, ProcsPerNode: c.ProcsPerNode, SpareNodes: c.Spares,
		GroupSize: 4, LocalModel: pfs.SierraTmpfs(), Timeout: c.Timeout,
	}
	start := time.Now()
	rep, err := mpi.Run(cfg, func(p *mpi.Proc) error {
		s, err := himeno.New(p.Rank(), c.Ranks, c.NX, c.NY, c.NZ)
		if err != nil {
			return err
		}
		startIt := 0
		if id, ok, err := p.Restore(s.State()); err != nil {
			return err
		} else if ok {
			startIt = id + 1
		}
		for n := startIt; n < c.Iters; n++ {
			if _, err := s.Step(p); err != nil {
				return err
			}
			if interval > 0 && n%interval == 0 {
				if err := p.Checkpoint(n, s.State()); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return Fig15Row{}, err
	}
	wall := time.Since(start).Seconds()
	return Fig15Row{
		GFLOPS:      c.usefulFlops() / wall / 1e9,
		WallSeconds: wall,
		Checkpoints: rep.Checkpoints,
		Interval:    interval,
	}, nil
}

// Fig15 runs all five series: MPI, FMI (failure-free, no checkpoints),
// MPI+C, FMI+C (checkpointing, no failures), FMI+C/R (checkpointing
// with Poisson failures at the configured MTBF).
func Fig15(c Fig15Config) ([]Fig15Row, error) {
	// Calibration probe: a short FMI run with interval 1 measures the
	// per-iteration and per-checkpoint costs, from which Vaidya's model
	// (paper §III-B) fixes the interval used by every checkpointing
	// series.
	probeCfg := c
	probeCfg.Iters = 4
	probeRow, err := runFMI(probeCfg, 1, nil)
	if err != nil {
		return nil, fmt.Errorf("fig15 probe: %w", err)
	}
	iterTime := time.Duration(probeRow.WallSeconds / float64(probeCfg.Iters) * float64(time.Second))
	ckptTime := probeRow.meanCkpt
	if ckptTime <= 0 {
		ckptTime = iterTime / 3
	}
	interval := model.VaidyaIterations(ckptTime, c.MTBF, iterTime)

	type series struct {
		name string
		run  func() (Fig15Row, error)
	}
	runs := []series{
		{"MPI", func() (Fig15Row, error) { return runMPI(c, 0) }},
		{"FMI", func() (Fig15Row, error) { return runFMI(c, 1<<30, nil) }},
		{"MPI + C", func() (Fig15Row, error) { return runMPI(c, interval) }},
		{"FMI + C", func() (Fig15Row, error) { return runFMI(c, interval, nil) }},
		{"FMI + C/R", func() (Fig15Row, error) {
			plan := &fmi.FaultPlan{MTBF: c.MTBF, Seed: c.Seed, MaxFailures: maxFailures(c)}
			if len(c.ScriptLoops) > 0 {
				plan = &fmi.FaultPlan{Seed: c.Seed}
				for i, id := range c.ScriptLoops {
					plan.Script = append(plan.Script, fmi.Fault{AfterLoop: id, Node: -1, Rank: i % c.Ranks})
				}
			}
			return runFMI(c, interval, plan)
		}},
	}
	var rows []Fig15Row
	for _, s := range runs {
		row, err := s.run()
		if err != nil {
			return nil, fmt.Errorf("fig15 %s: %w", s.name, err)
		}
		row.Series = s.name
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig15SweepRow is one (process count, series) cell of the full
// figure, whose x-axis in the paper is the process count (48-1536 on
// Sierra).
type Fig15SweepRow struct {
	Ranks int
	Rows  []Fig15Row
}

// Fig15Sweep runs the five series at several process counts over a
// fixed global grid (strong scaling). On a single host the GFLOPS
// ceiling is the machine's core count rather than the cluster size, so
// the reproduced claim is the per-point *ordering* of the five series,
// not linear scaling.
func Fig15Sweep(base Fig15Config, rankCounts []int) ([]Fig15SweepRow, error) {
	var out []Fig15SweepRow
	for _, n := range rankCounts {
		cfg := base
		cfg.Ranks = n
		if cfg.ProcsPerNode > n {
			cfg.ProcsPerNode = n
		}
		rows, err := Fig15(cfg)
		if err != nil {
			return nil, fmt.Errorf("fig15 sweep n=%d: %w", n, err)
		}
		out = append(out, Fig15SweepRow{Ranks: n, Rows: rows})
	}
	return out, nil
}

// PrintFig15Sweep prints the sweep as a series-by-procs matrix.
func PrintFig15Sweep(w io.Writer, c Fig15Config, sweep []Fig15SweepRow) {
	fmt.Fprintf(w, "Fig 15 (full sweep): Himeno %dx%dx%d GFLOPS by process count, MTBF=%v\n",
		c.NX, c.NY, c.NZ, c.MTBF)
	fmt.Fprintf(w, "%12s", "series")
	for _, p := range sweep {
		fmt.Fprintf(w, " %10s", fmt.Sprintf("%d ranks", p.Ranks))
	}
	fmt.Fprintln(w)
	if len(sweep) == 0 {
		return
	}
	for i := range sweep[0].Rows {
		fmt.Fprintf(w, "%12s", sweep[0].Rows[i].Series)
		for _, p := range sweep {
			fmt.Fprintf(w, " %10.3f", p.Rows[i].GFLOPS)
		}
		fmt.Fprintln(w)
	}
}

// maxFailures bounds Poisson injection so the job can still finish
// within the spare budget.
func maxFailures(c Fig15Config) int {
	if c.Spares > 0 {
		return c.Spares
	}
	return 3
}

// PrintFig15 prints the series with the efficiency ratios the paper
// reports (FMI+C/R at 72% of FMI ⇒ 28% overhead; FMI+C ~10% above
// MPI+C).
func PrintFig15(w io.Writer, c Fig15Config, rows []Fig15Row) {
	fmt.Fprintf(w, "Fig 15: Himeno %dx%dx%d, %d ranks, %d iters, MTBF=%v\n",
		c.NX, c.NY, c.NZ, c.Ranks, c.Iters, c.MTBF)
	fmt.Fprintf(w, "%10s %10s %10s %8s %8s %8s %8s\n", "series", "GFLOPS", "wall(s)", "ckpts", "fails", "recov", "intvl")
	var fmiBase, fmiCR, mpiC, fmiC float64
	for _, r := range rows {
		fmt.Fprintf(w, "%10s %10.3f %10.2f %8d %8d %8d %8d\n",
			r.Series, r.GFLOPS, r.WallSeconds, r.Checkpoints, r.Failures, r.Recoveries, r.Interval)
		switch r.Series {
		case "FMI":
			fmiBase = r.GFLOPS
		case "FMI + C/R":
			fmiCR = r.GFLOPS
		case "MPI + C":
			mpiC = r.GFLOPS
		case "FMI + C":
			fmiC = r.GFLOPS
		}
	}
	if fmiBase > 0 && fmiCR > 0 {
		fmt.Fprintf(w, "FMI+C/R efficiency vs FMI: %.1f%% (paper: 72%%, i.e. 28%% overhead at MTBF=1min)\n",
			100*fmiCR/fmiBase)
	}
	if mpiC > 0 && fmiC > 0 {
		fmt.Fprintf(w, "FMI+C vs MPI+C: %+.1f%% (paper: +10.3%%)\n", 100*(fmiC/mpiC-1))
	}
}
