package experiments

import (
	"fmt"
	"io"
	"sync"
	"time"

	"fmi/internal/overlay"
	"fmi/internal/transport"
)

// NotifyPoint is one row of Fig 13: time for every process to be
// notified of a failure through the log-ring overlay.
type NotifyPoint struct {
	Procs       int
	MaxSeconds  float64 // slowest process (the figure's metric)
	MeanSeconds float64
	Hops        int // BFS propagation hops for this topology
	Bound       int // paper bound ceil(ceil(log2 n)/2)
}

// NotifySweep builds a log-ring over n real endpoints, kills process
// 0, and measures the wall time until every survivor observes the
// failure. detect/prop model the ibverbs disconnect delays (the paper
// observed ~0.2 s detect; pass smaller values for quick runs).
func NotifySweep(procCounts []int, base int, detect, prop time.Duration) ([]NotifyPoint, error) {
	var out []NotifyPoint
	for _, n := range procCounts {
		nw := transport.NewChanNetwork(transport.Options{DetectDelay: detect, PropDelay: prop})
		eps := make([]transport.Endpoint, n)
		dies := make([]chan struct{}, n)
		table := make([]transport.Addr, n)
		for i := 0; i < n; i++ {
			dies[i] = make(chan struct{})
			ep, err := nw.NewEndpoint(dies[i])
			if err != nil {
				return nil, err
			}
			eps[i] = ep
			table[i] = ep.Addr()
		}
		rings := make([]*overlay.Ring, n)
		var wg sync.WaitGroup
		errs := make([]error, n)
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				rings[i], errs[i] = overlay.Build(eps[i], i, table, base)
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}

		const victim = 0
		start := time.Now()
		close(dies[victim])
		var mu sync.Mutex
		var maxD, sumD time.Duration
		for i := 0; i < n; i++ {
			if i == victim {
				continue
			}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				<-rings[i].Notify()
				d := time.Since(start)
				mu.Lock()
				if d > maxD {
					maxD = d
				}
				sumD += d
				mu.Unlock()
			}(i)
		}
		wg.Wait()
		for i, r := range rings {
			if i != victim {
				r.Shutdown()
			}
		}
		for i, ep := range eps {
			if i != victim {
				ep.Close()
			}
		}
		out = append(out, NotifyPoint{
			Procs:       n,
			MaxSeconds:  maxD.Seconds(),
			MeanSeconds: (sumD / time.Duration(n-1)).Seconds(),
			Hops:        overlay.NotifyHops(n, base, victim),
			Bound:       overlay.TheoreticalMaxHops(n),
		})
	}
	return out, nil
}

// PrintFig13 prints the notification sweep.
func PrintFig13(w io.Writer, rows []NotifyPoint, detect, prop time.Duration) {
	fmt.Fprintf(w, "Fig 13: global failure notification time, log-ring overlay (detect=%v, prop=%v)\n", detect, prop)
	fmt.Fprintf(w, "%8s %12s %12s %6s %14s\n", "procs", "max(s)", "mean(s)", "hops", "paper bound")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %12.4f %12.4f %6d %14d\n", r.Procs, r.MaxSeconds, r.MeanSeconds, r.Hops, r.Bound)
	}
}
