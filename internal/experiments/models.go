package experiments

import (
	"fmt"
	"io"

	"fmi/internal/failmodel"
	"fmi/internal/model"
)

// PrintTable1 reproduces Table I (TSUBAME2.0 failure types), deriving
// the MTBF column from the published rates.
func PrintTable1(w io.Writer) {
	fmt.Fprintln(w, "Table I: TSUBAME2.0 failure types")
	fmt.Fprintf(w, "%-18s %14s %16s %12s\n", "failure type", "affected nodes", "failures/year", "MTBF (days)")
	for _, ft := range failmodel.TSUBAME2Types() {
		fmt.Fprintf(w, "%-18s %14d %16.2f %12.3f\n", ft.Name, ft.AffectedNodes, ft.FailuresPerYear, ft.MTBFDays())
	}
	fmt.Fprintf(w, "single-node fraction: %.1f%% (paper: ~92%%); >4-node fraction: %.1f%% (paper: ~5%%)\n",
		100*failmodel.SingleNodeFraction(failmodel.TSUBAME2Types()),
		100*failmodel.MultiNodeFraction(failmodel.TSUBAME2Types(), 4))
}

// PrintFig1 reproduces the Fig 1 failure breakdown as an ASCII bar
// chart (failures/second ×10⁻⁶ per component, annotated with failure
// level).
func PrintFig1(w io.Writer) {
	fmt.Fprintln(w, "Fig 1: TSUBAME2.0 failure breakdown (failures/second x 10^-6)")
	for _, c := range failmodel.TSUBAME2Components() {
		bar := ""
		for i := 0.0; i < c.RatePerSecE6; i += 0.25 {
			bar += "#"
		}
		fmt.Fprintf(w, "%-12s L%-2d %6.2f %s\n", c.Name, c.Level, c.RatePerSecE6, bar)
	}
}

// PrintTable2 reproduces Table II (Sierra cluster specification).
func PrintTable2(w io.Writer) {
	s := model.Sierra()
	fmt.Fprintln(w, "Table II: Sierra cluster specification (modelled parameters)")
	fmt.Fprintf(w, "Nodes        %d compute (%d total)\n", s.ComputeNodes, s.TotalNodes)
	fmt.Fprintf(w, "CPU          2.8 GHz Intel Xeon EP X5660 x 2 (%d cores)\n", s.CoresPerNode)
	fmt.Fprintf(w, "Memory       %.0f GB (peak CPU memory bandwidth: %.0f GB/s)\n", s.MemoryBytes/1e9, s.MemBW/1e9)
	fmt.Fprintf(w, "Interconnect QLogic InfiniBand QDR (effective p2p: %.1f GB/s)\n", s.NetBW/1e9)
}

// Fig16Row is one scale-factor point of the 24-hour survival figure,
// with a Monte-Carlo cross-check of the analytic values.
type Fig16Row struct {
	Scale                float64
	WithFMI, WithoutFMI  float64
	MCWithFMI, MCWithout float64
}

// Fig16 evaluates the survival probabilities over scale factors 1-50
// using the Coastal failure rates (level-1 MTBF 130 h, level-2 650 h),
// cross-validated by simulating Poisson failure sequences.
func Fig16(scales []float64) []Fig16Row {
	r := model.Coastal()
	var out []Fig16Row
	for _, s := range scales {
		w, wo := model.Fig16Point(r, s)
		mw, mwo := model.SimulateSurvival(r, s, 24, 50000, 42)
		out = append(out, Fig16Row{Scale: s, WithFMI: w, WithoutFMI: wo, MCWithFMI: mw, MCWithout: mwo})
	}
	return out
}

// PrintFig16 prints the survival curves.
func PrintFig16(w io.Writer, rows []Fig16Row) {
	fmt.Fprintln(w, "Fig 16: probability of running 24h continuously (Coastal rates; MC = Monte-Carlo check)")
	fmt.Fprintf(w, "%8s %12s %12s %10s %10s\n", "scale", "with FMI", "without FMI", "MC-with", "MC-without")
	for _, r := range rows {
		fmt.Fprintf(w, "%8.0f %12.3f %12.3f %10.3f %10.3f\n", r.Scale, r.WithFMI, r.WithoutFMI, r.MCWithFMI, r.MCWithout)
	}
	w6, _ := model.Fig16Point(model.Coastal(), 6)
	w10, wo10 := model.Fig16Point(model.Coastal(), 10)
	fmt.Fprintf(w, "claims: P(24h|FMI, 6x) = %.2f (paper ~0.80); P(24h|FMI, 10x) = %.2f vs %.2f without (paper 0.70 vs 0.10)\n",
		w6, w10, wo10)
}

// Fig17Row is one scale-factor point of the multilevel-efficiency
// figure's four series.
type Fig17Row struct {
	Scale                                    float64
	L1Only1GB, L1Only10GB, Both1GB, Both10GB float64
}

// Fig17 evaluates the multilevel C/R efficiency model over scale
// factors for the four paper series.
func Fig17(scales []float64) []Fig17Row {
	cfg := model.DefaultFig17Config()
	base := model.Coastal()
	var out []Fig17Row
	for _, s := range scales {
		out = append(out, Fig17Row{
			Scale:      s,
			L1Only1GB:  model.Fig17Point(cfg, base, 1e9, s, false),
			L1Only10GB: model.Fig17Point(cfg, base, 10e9, s, false),
			Both1GB:    model.Fig17Point(cfg, base, 1e9, s, true),
			Both10GB:   model.Fig17Point(cfg, base, 10e9, s, true),
		})
	}
	return out
}

// PrintFig17 prints the efficiency series.
func PrintFig17(w io.Writer, rows []Fig17Row) {
	fmt.Fprintln(w, "Fig 17: multilevel C/R efficiency vs failure/cost scale (Coastal base, 50 GB/s PFS)")
	fmt.Fprintf(w, "%8s %12s %12s %12s %12s\n", "scale", "L1-1GB", "L1-10GB", "L1&2-1GB", "L1&2-10GB")
	for _, r := range rows {
		fmt.Fprintf(w, "%8.0f %12.3f %12.3f %12.3f %12.3f\n",
			r.Scale, r.L1Only1GB, r.L1Only10GB, r.Both1GB, r.Both10GB)
	}
	fmt.Fprintln(w, "note: our hierarchical Daly model reproduces the ordering and collapse; the paper's")
	fmt.Fprintln(w, "full Markov model bottoms out below 2% at the extreme corner (see EXPERIMENTS.md).")
}
