package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"text/tabwriter"
	"time"

	"fmi/internal/serve"
)

// Multi-tenant job-service experiment (ISSUE 6): N tenants each stream
// M jobs through one shared serve.Server while a Poisson fault
// injector kills nodes under the "noisy" tenants' running jobs. The
// last tenant stays quiet — nobody shoots at it — so comparing its
// submit-to-complete latency distribution against a failure-free
// baseline run measures cross-tenant interference: how much of the
// noisy tenants' recovery traffic (spare leases, respawns, queueing)
// bleeds into a tenant that did nothing wrong.

// ServeExpConfig sizes the experiment.
type ServeExpConfig struct {
	Tenants       int     `json:"tenants"`         // total tenants; the last is the quiet one
	JobsPerTenant int     `json:"jobs_per_tenant"` // M jobs each tenant submits up front
	Ranks         int     `json:"ranks"`           // ranks per job
	Iters         int     `json:"iters"`           // iterations per job
	StepMs        int     `json:"step_ms"`         // simulated compute per iteration
	FailureRate   float64 `json:"failure_rate_hz"` // Poisson kill rate aimed at noisy tenants
	Seed          int64   `json:"seed"`

	Server serve.Config `json:"-"`
}

// DefaultServeExpConfig is sized so the full run (baseline + faulted)
// finishes in a few seconds: three tenants, two of them under fire.
func DefaultServeExpConfig() ServeExpConfig {
	return ServeExpConfig{
		Tenants:       3,
		JobsPerTenant: 6,
		Ranks:         4,
		Iters:         8,
		StepMs:        10,
		FailureRate:   8,
		Seed:          1,
		Server: serve.Config{
			ComputeNodes:        12,
			SpareNodes:          6,
			QueueDepth:          8,
			MaxRunningPerTenant: 2,
			MaxSparesPerTenant:  3,
			SpareFloor:          1,
			DetectDelay:         2 * time.Millisecond,
			PropDelay:           time.Millisecond,
			JobTimeout:          60 * time.Second,
			AllowKill:           true,
		},
	}
}

// ServeTenantRow is one tenant's latency distribution in one pass.
type ServeTenantRow struct {
	Tenant     string  `json:"tenant"`
	Noisy      bool    `json:"noisy"`
	Jobs       int     `json:"jobs"`
	Failed     int     `json:"failed"`
	P50Ms      float64 `json:"p50_ms"`
	P99Ms      float64 `json:"p99_ms"`
	Epochs     uint32  `json:"recovery_epochs"`
	SparesUsed int     `json:"spares_used"`
}

// ServeExpResult pairs the faulted pass with its failure-free baseline.
type ServeExpResult struct {
	Baseline []ServeTenantRow `json:"baseline"`
	Faulted  []ServeTenantRow `json:"faulted"`
	Kills    int              `json:"kills_injected"`
	// QuietInterference is quiet-tenant faulted p99 over baseline p99:
	// 1.0 means the noisy tenants' failures cost the quiet tenant
	// nothing at the tail.
	QuietInterference float64 `json:"quiet_p99_inflation"`
}

// ServeExp runs the two passes and computes the interference ratio.
func ServeExp(cfg ServeExpConfig) (ServeExpResult, error) {
	if cfg.Tenants < 2 {
		return ServeExpResult{}, fmt.Errorf("serve experiment needs >= 2 tenants (one must stay quiet)")
	}
	base, _, err := serveExpPass(cfg, 0)
	if err != nil {
		return ServeExpResult{}, fmt.Errorf("baseline pass: %w", err)
	}
	faulted, kills, err := serveExpPass(cfg, cfg.FailureRate)
	if err != nil {
		return ServeExpResult{}, fmt.Errorf("faulted pass: %w", err)
	}
	res := ServeExpResult{Baseline: base, Faulted: faulted, Kills: kills}
	quiet := cfg.Tenants - 1
	if base[quiet].P99Ms > 0 {
		res.QuietInterference = faulted[quiet].P99Ms / base[quiet].P99Ms
	}
	return res, nil
}

// serveExpPass boots a fresh server, streams every tenant's jobs, and
// (at rate > 0) runs the Poisson injector against the noisy tenants.
func serveExpPass(cfg ServeExpConfig, rate float64) ([]ServeTenantRow, int, error) {
	s := serve.New(cfg.Server)
	defer s.Close()

	// In-flight noisy job IDs, the injector's target list.
	var tmu sync.Mutex
	targets := map[string]bool{}
	addTarget := func(id string) { tmu.Lock(); targets[id] = true; tmu.Unlock() }
	dropTarget := func(id string) { tmu.Lock(); delete(targets, id); tmu.Unlock() }

	kills := 0
	stop := make(chan struct{})
	var inj sync.WaitGroup
	if rate > 0 {
		rng := rand.New(rand.NewSource(cfg.Seed))
		inj.Add(1)
		go func() {
			defer inj.Done()
			for {
				wait := time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
				select {
				case <-stop:
					return
				case <-time.After(wait):
				}
				tmu.Lock()
				ids := make([]string, 0, len(targets))
				for id := range targets {
					ids = append(ids, id)
				}
				tmu.Unlock()
				// One kill per Poisson event: queued (not yet running)
				// jobs reject the kill, so walk the targets in random
				// order until one lands. A killed job leaves the target
				// list — at most one failure per job keeps the demand
				// for spares below the per-tenant lease cap, so jobs
				// recover instead of deadlocking against the broker.
				for _, i := range rng.Perm(len(ids)) {
					if _, err := s.KillRank(ids[i], rng.Intn(cfg.Ranks)); err == nil {
						kills++
						dropTarget(ids[i])
						break
					}
				}
			}
		}()
	}

	type jobDone struct {
		tenant int
		ms     float64
		st     serve.JobStatus
		err    error
	}
	results := make(chan jobDone, cfg.Tenants*cfg.JobsPerTenant)
	var wg sync.WaitGroup
	for t := 0; t < cfg.Tenants; t++ {
		noisy := t < cfg.Tenants-1
		name := fmt.Sprintf("noisy-%d", t)
		if !noisy {
			name = "quiet"
		}
		for j := 0; j < cfg.JobsPerTenant; j++ {
			wg.Add(1)
			go func(t int, name string, noisy bool) {
				defer wg.Done()
				start := time.Now()
				id, err := s.Submit(serve.JobSpec{
					Tenant: name, App: "allreduce",
					Ranks: cfg.Ranks, Iters: cfg.Iters, StepMs: cfg.StepMs,
				})
				if err != nil {
					results <- jobDone{tenant: t, err: err}
					return
				}
				if noisy {
					addTarget(id)
					defer dropTarget(id)
				}
				st, err := s.Await(id, cfg.Server.JobTimeout+10*time.Second)
				results <- jobDone{tenant: t, ms: float64(time.Since(start).Microseconds()) / 1000, st: st, err: err}
			}(t, name, noisy)
		}
	}
	wg.Wait()
	close(stop)
	inj.Wait()
	close(results)

	rows := make([]ServeTenantRow, cfg.Tenants)
	lat := make([][]float64, cfg.Tenants)
	for t := range rows {
		rows[t] = ServeTenantRow{Tenant: fmt.Sprintf("noisy-%d", t), Noisy: true}
		if t == cfg.Tenants-1 {
			rows[t].Tenant, rows[t].Noisy = "quiet", false
		}
	}
	for r := range results {
		row := &rows[r.tenant]
		row.Jobs++
		if r.err != nil || r.st.State != "done" {
			row.Failed++
			continue
		}
		lat[r.tenant] = append(lat[r.tenant], r.ms)
		row.Epochs += r.st.Epochs
		row.SparesUsed += r.st.SparesUsed
	}
	for t := range rows {
		rows[t].P50Ms = percentile(lat[t], 50)
		rows[t].P99Ms = percentile(lat[t], 99)
	}
	return rows, kills, nil
}

// percentile returns the pth percentile of xs (nearest-rank).
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	idx := int(p/100*float64(len(s))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

type serveExpReport struct {
	Experiment string           `json:"experiment"`
	Config     ServeExpConfig   `json:"config"`
	Server     serveServerBrief `json:"server"`
	Result     ServeExpResult   `json:"result"`
}

// serveServerBrief is the subset of serve.Config worth recording.
type serveServerBrief struct {
	ComputeNodes        int `json:"compute_nodes"`
	SpareNodes          int `json:"spare_nodes"`
	QueueDepth          int `json:"queue_depth"`
	MaxRunningPerTenant int `json:"max_running_per_tenant"`
	MaxSparesPerTenant  int `json:"max_spares_per_tenant"`
	SpareFloor          int `json:"spare_floor"`
}

// ServeExpJSON renders the result as the BENCH_serve.json document.
func ServeExpJSON(cfg ServeExpConfig, res ServeExpResult) ([]byte, error) {
	doc, err := json.MarshalIndent(serveExpReport{
		Experiment: "serve",
		Config:     cfg,
		Server: serveServerBrief{
			ComputeNodes:        cfg.Server.ComputeNodes,
			SpareNodes:          cfg.Server.SpareNodes,
			QueueDepth:          cfg.Server.QueueDepth,
			MaxRunningPerTenant: cfg.Server.MaxRunningPerTenant,
			MaxSparesPerTenant:  cfg.Server.MaxSparesPerTenant,
			SpareFloor:          cfg.Server.SpareFloor,
		},
		Result: res,
	}, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(doc, '\n'), nil
}

// PrintServeExp renders both passes side by side plus the headline
// interference ratio.
func PrintServeExp(w io.Writer, cfg ServeExpConfig, res ServeExpResult) {
	fmt.Fprintf(w, "Multi-tenant job service: %d tenants x %d jobs (%d ranks, %d iters, %d ms/iter), Poisson kills at %.1f/s on noisy tenants\n",
		cfg.Tenants, cfg.JobsPerTenant, cfg.Ranks, cfg.Iters, cfg.StepMs, cfg.FailureRate)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "tenant\tpass\tjobs\tfailed\tp50 ms\tp99 ms\tepochs\tspares")
	for i := range res.Baseline {
		for _, pass := range []struct {
			name string
			row  ServeTenantRow
		}{{"baseline", res.Baseline[i]}, {"faulted", res.Faulted[i]}} {
			fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%.1f\t%.1f\t%d\t%d\n",
				pass.row.Tenant, pass.name, pass.row.Jobs, pass.row.Failed,
				pass.row.P50Ms, pass.row.P99Ms, pass.row.Epochs, pass.row.SparesUsed)
		}
	}
	tw.Flush()
	fmt.Fprintf(w, "kills injected: %d; quiet-tenant p99 inflation: %.2fx (1.0 = zero cross-tenant interference)\n",
		res.Kills, res.QuietInterference)
}
