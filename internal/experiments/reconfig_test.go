package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestReconfigSmall runs the sweep at smoke size and checks the
// acceptance shape: every protocol resized in both directions (a
// positive latency means the fence actually committed a view change),
// and the JSON document carries the headline flag. The timing
// comparison itself is asserted only in the checked-in
// BENCH_reconfig.json — smoke hardware is too noisy to gate on it.
func TestReconfigSmall(t *testing.T) {
	cfg := QuickReconfigConfig()
	rows, err := ReconfigSweep(cfg)
	if err != nil {
		t.Fatalf("ReconfigSweep: %v", err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6 (3 protocols x 2 directions)", len(rows))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		seen[r.Protocol+"/"+r.Direction] = true
		if r.ResizeLatency <= 0 || r.JobWall <= 0 || r.RestartWall <= 0 {
			t.Errorf("%s/%s: non-positive measurement %+v", r.Protocol, r.Direction, r)
		}
		want := cfg.GrowTo
		if r.Direction == "shrink" {
			want = cfg.ShrinkTo
		}
		if r.ToRanks != want || r.FromRanks != cfg.Ranks {
			t.Errorf("%s/%s: ranks %d->%d, want %d->%d", r.Protocol, r.Direction, r.FromRanks, r.ToRanks, cfg.Ranks, want)
		}
	}
	for _, p := range []string{"global", "local", "replica"} {
		for _, d := range []string{"grow", "shrink"} {
			if !seen[p+"/"+d] {
				t.Errorf("missing cell %s/%s", p, d)
			}
		}
	}

	doc, err := ReconfigJSON(cfg, rows)
	if err != nil {
		t.Fatalf("ReconfigJSON: %v", err)
	}
	var parsed struct {
		Experiment string        `json:"experiment"`
		Results    []ReconfigRow `json:"results"`
	}
	if err := json.Unmarshal(doc, &parsed); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if parsed.Experiment != "reconfig" || len(parsed.Results) != 6 {
		t.Errorf("JSON = %q with %d results, want reconfig with 6", parsed.Experiment, len(parsed.Results))
	}

	var buf bytes.Buffer
	PrintReconfig(&buf, cfg, rows)
	if !strings.Contains(buf.String(), "restart(ms)") {
		t.Errorf("PrintReconfig missing table header:\n%s", buf.String())
	}
}
