package overlay

import (
	"testing"
	"testing/quick"
)

// Property: for random sizes, bases, and victims, the log-ring graph
// always notifies every process, within the base-2 paper bound when
// base is 2, and out/in neighbour sets are consistent duals.
func TestQuickLogRingProperties(t *testing.T) {
	f := func(nRaw uint16, baseRaw, victimRaw uint8) bool {
		n := 2 + int(nRaw)%512
		base := 2 + int(baseRaw)%7
		victim := int(victimRaw) % n

		hops := NotifyHops(n, base, victim)
		if hops < 0 {
			return false // disconnected
		}
		if base == 2 && hops > TheoreticalMaxHops(n) {
			return false
		}
		// Duality: r is an out-neighbour of s iff s is an in-neighbour
		// of r.
		for _, o := range OutNeighbors(victim, n, base) {
			found := false
			for _, i := range InNeighbors(o, n, base) {
				if i == victim {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the number of out-neighbours is ceil(log_base(n)).
func TestQuickConnectionCount(t *testing.T) {
	f := func(nRaw uint16, baseRaw uint8) bool {
		n := 2 + int(nRaw)%4096
		base := 2 + int(baseRaw)%7
		want := 0
		for d := 1; d < n; d *= base {
			want++
		}
		return len(OutNeighbors(0, n, base)) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: notification hops never exceed the diameter implied by
// doubling reach: each hop at least doubles the notified set, so
// hops <= ceil(log2(n)).
func TestQuickHopsLogarithmic(t *testing.T) {
	f := func(nRaw uint16) bool {
		n := 3 + int(nRaw)%1024
		hops := NotifyHops(n, 2, 0)
		log2 := 0
		for v := n - 1; v > 0; v >>= 1 {
			log2++
		}
		return hops >= 0 && hops <= log2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
