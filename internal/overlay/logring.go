// Package overlay implements the paper's log-ring overlay network for
// scalable failure detection and notification (§IV-C).
//
// In a log-ring each of the n processes opens monitored connections to
// the neighbours base^j positions to its right on the ring (for every
// base^j < n), giving O(log n) connections per process. When a process
// dies, the peers holding connections to it observe disconnect events
// (after the transport's DetectDelay, modelling ibverbs); each notified
// process then closes all of its remaining overlay connections, which
// its neighbours observe as disconnects in turn. The notification
// therefore floods the ring along log-ring edges and reaches every
// process within ⌈⌈log2 n⌉/2⌉ hops.
package overlay

import (
	"fmt"
	"sync"

	"fmi/internal/transport"
)

// OutNeighbors returns the ranks rank+base^j (mod n) for base^j < n —
// the connections a process initiates. base must be >= 2.
func OutNeighbors(rank, n, base int) []int {
	if n <= 1 {
		return nil
	}
	var out []int
	for d := 1; d < n; d *= base {
		out = append(out, (rank+d)%n)
	}
	return out
}

// InNeighbors returns the ranks that initiate connections to rank.
func InNeighbors(rank, n, base int) []int {
	if n <= 1 {
		return nil
	}
	var in []int
	for d := 1; d < n; d *= base {
		in = append(in, ((rank-d)%n+n)%n)
	}
	return in
}

// NotifyHops computes, by BFS over the undirected log-ring graph, the
// number of propagation hops needed for a failure at 'failed' to reach
// every process. Hop 0 notifies the direct neighbours of the failed
// process.
func NotifyHops(n, base, failed int) int {
	if n <= 2 {
		return 0
	}
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	frontier := []int{}
	seed := func(r int) {
		if r != failed && dist[r] < 0 {
			dist[r] = 0
			frontier = append(frontier, r)
		}
	}
	for _, r := range OutNeighbors(failed, n, base) {
		seed(r)
	}
	for _, r := range InNeighbors(failed, n, base) {
		seed(r)
	}
	max := 0
	for len(frontier) > 0 {
		var next []int
		for _, r := range frontier {
			for _, nb := range append(OutNeighbors(r, n, base), InNeighbors(r, n, base)...) {
				if nb != failed && dist[nb] < 0 {
					dist[nb] = dist[r] + 1
					if dist[nb] > max {
						max = dist[nb]
					}
					next = append(next, nb)
				}
			}
		}
		frontier = next
	}
	for r, d := range dist {
		if r != failed && d < 0 {
			return -1 // disconnected; cannot happen for base >= 2
		}
	}
	return max
}

// TheoreticalMaxHops is the paper's bound ⌈⌈log2 n⌉/2⌉ on the number
// of hops to notify all processes (for base 2).
func TheoreticalMaxHops(n int) int {
	if n <= 2 {
		return 0
	}
	log2 := 0
	for v := n - 1; v > 0; v >>= 1 {
		log2++
	}
	return (log2 + 1) / 2
}

// Notification reports a detected failure.
type Notification struct {
	// Direct is true if the disconnect was observed on a connection to
	// the failed process itself (hop 0) rather than via propagation.
	// The overlay cannot distinguish the two cases (ibverbs semantics),
	// so Direct is always false here; it is kept for the runtime's
	// control-plane notifications.
	Direct bool
}

// Ring is one generation of the log-ring overlay for one process. A
// Ring is built per recovery epoch (H2 state) on a fresh endpoint and
// never reused after a notification or Shutdown.
type Ring struct {
	rank, n, base int

	mu       sync.Mutex
	conns    []transport.Conn
	shut     bool
	notified bool

	notifyCh chan Notification // capacity 1; receives at most one event
	stopCh   chan struct{}
	wg       sync.WaitGroup
}

// Build connects the log-ring for rank over ep, given the endpoint
// table of the current epoch. It initiates connections to the
// out-neighbours and watches both initiated and accepted connections.
//
// Build returns once all outgoing connections are established. An
// unreachable out-neighbour is reported as an error: the caller (the
// recovery protocol) treats it as a concurrent failure and retries the
// recovery round.
func Build(ep transport.Endpoint, rank int, table []transport.Addr, base int) (*Ring, error) {
	if base < 2 {
		base = 2
	}
	n := len(table)
	r := &Ring{
		rank:     rank,
		n:        n,
		base:     base,
		notifyCh: make(chan Notification, 1),
		stopCh:   make(chan struct{}),
	}
	for _, nb := range OutNeighbors(rank, n, base) {
		conn, err := ep.Connect(table[nb])
		if err != nil {
			r.Shutdown()
			return nil, fmt.Errorf("overlay: connect to rank %d: %w", nb, err)
		}
		r.watch(conn)
	}
	// Watch incoming connections for the lifetime of the ring.
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		for {
			select {
			case conn, ok := <-ep.Accept():
				if !ok {
					return
				}
				r.watch(conn)
			case <-r.stopCh:
				return
			}
		}
	}()
	return r, nil
}

// ConnCount returns the number of connections currently watched.
func (r *Ring) ConnCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.conns)
}

// Notify returns the channel on which at most one failure notification
// is delivered.
func (r *Ring) Notify() <-chan Notification { return r.notifyCh }

func (r *Ring) watch(conn transport.Conn) {
	r.mu.Lock()
	if r.shut {
		r.mu.Unlock()
		conn.Close()
		return
	}
	r.conns = append(r.conns, conn)
	r.mu.Unlock()

	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		select {
		case <-conn.Closed():
			r.onDisconnect()
		case <-r.stopCh:
		}
	}()
}

// onDisconnect handles a disconnect event: the first one marks the
// ring notified, emits the notification, and closes every remaining
// connection to propagate the event along the ring.
func (r *Ring) onDisconnect() {
	r.mu.Lock()
	if r.shut || r.notified {
		r.mu.Unlock()
		return
	}
	r.notified = true
	conns := append([]transport.Conn{}, r.conns...)
	r.mu.Unlock()

	select {
	case r.notifyCh <- Notification{}:
	default:
	}
	for _, c := range conns {
		c.Close()
	}
}

// Notified reports whether the ring has observed a failure.
func (r *Ring) Notified() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.notified
}

// Shutdown tears the ring down. Peers observe the closes; if they are
// not themselves shutting down they will interpret them as failure
// propagation, which is harmless during recovery (everyone is heading
// to the same place) and prevented during finalize by shutting all
// rings down only after a final barrier.
func (r *Ring) Shutdown() {
	r.mu.Lock()
	if r.shut {
		r.mu.Unlock()
		return
	}
	r.shut = true
	conns := r.conns
	r.conns = nil
	close(r.stopCh)
	r.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// Quiesce stops reacting to disconnect events without closing the
// connections; used right before the finalize barrier so that peers'
// endpoint teardown is not mistaken for a failure.
func (r *Ring) Quiesce() {
	r.mu.Lock()
	r.shut = true
	r.mu.Unlock()
}
