package overlay

import (
	"testing"
	"time"

	"fmi/internal/transport"
)

func TestOutNeighbors(t *testing.T) {
	// Paper example: n=16, base=2 — process 0 connects to 1, 2, 4, 8.
	got := OutNeighbors(0, 16, 2)
	want := []int{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// Wraparound.
	got = OutNeighbors(14, 16, 2)
	want = []int{15, 0, 2, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank 14: got %v, want %v", got, want)
		}
	}
}

func TestInNeighbors(t *testing.T) {
	// Paper example: process 0 receives connections from 8, 12, 14, 15.
	got := InNeighbors(0, 16, 2)
	wantSet := map[int]bool{15: true, 14: true, 12: true, 8: true}
	if len(got) != 4 {
		t.Fatalf("got %v", got)
	}
	for _, r := range got {
		if !wantSet[r] {
			t.Fatalf("unexpected in-neighbor %d (got %v)", r, got)
		}
	}
}

func TestNeighborCountsLogarithmic(t *testing.T) {
	for _, n := range []int{2, 3, 16, 100, 1024, 1536} {
		got := len(OutNeighbors(0, n, 2))
		want := 0
		for d := 1; d < n; d *= 2 {
			want++
		}
		if got != want {
			t.Fatalf("n=%d: %d out-neighbors, want %d", n, got, want)
		}
	}
	// Base 4 gives fewer connections.
	if a, b := len(OutNeighbors(0, 1024, 4)), len(OutNeighbors(0, 1024, 2)); a >= b {
		t.Fatalf("base 4 (%d conns) should need fewer than base 2 (%d)", a, b)
	}
}

func TestNotifyHopsWithinPaperBound(t *testing.T) {
	// Paper: all processes notified within ceil(ceil(log2 n)/2) hops.
	for _, n := range []int{4, 16, 48, 96, 192, 384, 768, 1536} {
		for _, failed := range []int{0, 1, n / 2, n - 1} {
			hops := NotifyHops(n, 2, failed)
			if hops < 0 {
				t.Fatalf("n=%d failed=%d: graph disconnected", n, failed)
			}
			if bound := TheoreticalMaxHops(n); hops > bound {
				t.Fatalf("n=%d failed=%d: hops=%d exceeds paper bound %d", n, failed, hops, bound)
			}
		}
	}
}

func TestNotifyHopsPaperExample(t *testing.T) {
	// Figure 7: n=16, process 0 fails, all notified within 2 hops.
	if hops := NotifyHops(16, 2, 0); hops > 2 {
		t.Fatalf("n=16: hops=%d, want <= 2", hops)
	}
}

func TestTheoreticalMaxHops(t *testing.T) {
	cases := map[int]int{2: 0, 16: 2, 1536: 6, 1024: 5}
	for n, want := range cases {
		if got := TheoreticalMaxHops(n); got != want {
			t.Fatalf("TheoreticalMaxHops(%d) = %d, want %d", n, got, want)
		}
	}
}

// buildRings constructs a full overlay over a chan network and returns
// endpoints, rings, and the die channels used to kill processes.
func buildRings(t *testing.T, n int, opts transport.Options) ([]transport.Endpoint, []*Ring, []chan struct{}) {
	t.Helper()
	nw := transport.NewChanNetwork(opts)
	eps := make([]transport.Endpoint, n)
	dies := make([]chan struct{}, n)
	table := make([]transport.Addr, n)
	for i := 0; i < n; i++ {
		dies[i] = make(chan struct{})
		ep, err := nw.NewEndpoint(dies[i])
		if err != nil {
			t.Fatal(err)
		}
		eps[i] = ep
		table[i] = ep.Addr()
	}
	rings := make([]*Ring, n)
	done := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			r, err := Build(eps[i], i, table, 2)
			rings[i] = r
			done <- err
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	return eps, rings, dies
}

func TestGlobalNotificationOnDeath(t *testing.T) {
	const n = 32
	_, rings, dies := buildRings(t, n, transport.Options{DetectDelay: time.Millisecond, PropDelay: time.Millisecond})
	defer func() {
		for _, r := range rings {
			if r != nil {
				r.Shutdown()
			}
		}
	}()

	const victim = 5
	close(dies[victim])

	for i := 0; i < n; i++ {
		if i == victim {
			continue
		}
		select {
		case <-rings[i].Notify():
		case <-time.After(5 * time.Second):
			t.Fatalf("rank %d never notified of failure", i)
		}
	}
}

func TestNoSpuriousNotificationWhenHealthy(t *testing.T) {
	const n = 8
	_, rings, _ := buildRings(t, n, transport.Options{})
	defer func() {
		for _, r := range rings {
			r.Quiesce()
		}
		for _, r := range rings {
			r.Shutdown()
		}
	}()
	time.Sleep(50 * time.Millisecond)
	for i, r := range rings {
		select {
		case <-r.Notify():
			t.Fatalf("rank %d got spurious notification", i)
		default:
		}
	}
}

func TestQuiesceSuppressesNotifications(t *testing.T) {
	const n = 8
	_, rings, dies := buildRings(t, n, transport.Options{DetectDelay: time.Millisecond})
	for _, r := range rings {
		r.Quiesce()
	}
	close(dies[3])
	time.Sleep(50 * time.Millisecond)
	for i, r := range rings {
		if i == 3 {
			continue
		}
		select {
		case <-r.Notify():
			t.Fatalf("rank %d notified after Quiesce", i)
		default:
		}
	}
	for _, r := range rings {
		r.Shutdown()
	}
}

func TestShutdownIdempotent(t *testing.T) {
	_, rings, _ := buildRings(t, 4, transport.Options{})
	for _, r := range rings {
		r.Quiesce()
	}
	for _, r := range rings {
		r.Shutdown()
		r.Shutdown()
	}
}

func TestConnCount(t *testing.T) {
	const n = 16
	_, rings, _ := buildRings(t, n, transport.Options{})
	defer func() {
		for _, r := range rings {
			r.Quiesce()
		}
		for _, r := range rings {
			r.Shutdown()
		}
	}()
	// With n=16 base=2 each rank initiates 4 and receives 4: total
	// watched should converge to 8 per rank.
	deadline := time.Now().Add(2 * time.Second)
	for {
		total := 0
		for _, r := range rings {
			total += r.ConnCount()
		}
		if total == n*8 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("total watched conns = %d, want %d", total, n*8)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBuildFailsWhenNeighborDead(t *testing.T) {
	nw := transport.NewChanNetwork(transport.Options{})
	die0 := make(chan struct{})
	ep0, _ := nw.NewEndpoint(die0)
	ep1, _ := nw.NewEndpoint(nil)
	table := []transport.Addr{ep0.Addr(), ep1.Addr()}
	close(die0)
	time.Sleep(10 * time.Millisecond)
	if _, err := Build(ep1, 1, table, 2); err == nil {
		t.Fatal("Build should fail when an out-neighbour is dead")
	}
}
