package bootstrap

import (
	"encoding/binary"
	"fmt"

	"fmi/internal/transport"
)

// Reserved message-plane identifiers for bootstrap traffic.
const (
	CtxBootstrap uint32 = 0xFFFF0001
	tagGather    int32  = -101
	tagBcast     int32  = -102
)

// Table is the endpoint table of a job epoch: Table[rank] is the
// address of the process currently bound to that FMI rank.
type Table []transport.Addr

// Cost records what an exchange consumed; the Fig 14 harness converts
// counts into modelled times via CostModel.
type Cost struct {
	CoordOps  int // operations served by the central coordinator
	ProcMsgs  int // messages sent proc-to-proc (this process)
	ProcBytes int // bytes sent proc-to-proc (this process)
	Rounds    int // tree rounds traversed (this process)
}

// Proc bundles what one process needs to participate in an exchange.
type Proc struct {
	Rank, N int
	Addr    transport.Addr
	EP      transport.Endpoint
	M       *transport.Matcher
	Coord   *Coordinator
	Epoch   uint32
	Key     string          // unique per exchange round, e.g. "h1/epoch3"
	Cancel  <-chan struct{} // aborts the exchange
}

// treeParent and treeChildren define the binary gather/bcast tree.
func treeParent(r int) int { return (r - 1) / 2 }

func treeChildren(r, n int) []int {
	var ch []int
	if c := 2*r + 1; c < n {
		ch = append(ch, c)
	}
	if c := 2*r + 2; c < n {
		ch = append(ch, c)
	}
	return ch
}

// TreeExchange performs the PMGR-style exchange: register with the
// coordinator (learning only the tree-neighbour addresses), gather
// address fragments up the binary tree over the process transport,
// and broadcast the complete table back down. This is FMI's H1
// bootstrap path.
func TreeExchange(p Proc) (Table, Cost, error) {
	var cost Cost
	// Registration: the coordinator sees one op per process and hands
	// back the full gather result, but the tree path below is what
	// carries the table at scale; we deliberately use only our tree
	// neighbours' addresses from the registration.
	regVals, err := p.Coord.AllGather(p.Key+"/reg", p.Rank, p.N, []byte(p.Addr), p.Cancel)
	if err != nil {
		return nil, cost, err
	}
	cost.CoordOps = 1
	addrOf := func(r int) transport.Addr { return transport.Addr(regVals[r]) }

	children := treeChildren(p.Rank, p.N)
	// Gather phase: collect fragments from children, merge with own.
	frag := map[int]transport.Addr{p.Rank: p.Addr}
	for range children {
		msg, err := p.M.Recv(CtxBootstrap, transport.AnySource, tagGather, p.Cancel)
		if err != nil {
			return nil, cost, err
		}
		if err := decodeFrag(msg.Data, frag); err != nil {
			return nil, cost, err
		}
		cost.Rounds++
	}
	var table Table
	if p.Rank == 0 {
		table = make(Table, p.N)
		for r, a := range frag {
			table[r] = a
		}
		for r, a := range table {
			if a == transport.NilAddr {
				return nil, cost, fmt.Errorf("bootstrap: rank %d missing from gathered table", r)
			}
		}
	} else {
		data := encodeFrag(frag)
		if err := p.EP.Send(addrOf(treeParent(p.Rank)), transport.Msg{
			Src: int32(p.Rank), Tag: tagGather, Ctx: CtxBootstrap, Epoch: p.Epoch,
			Kind: transport.KindCtl, Data: data,
		}); err != nil {
			return nil, cost, err
		}
		cost.ProcMsgs++
		cost.ProcBytes += len(data)

		// Bcast phase: receive the full table from the parent.
		msg, err := p.M.Recv(CtxBootstrap, int32(treeParent(p.Rank)), tagBcast, p.Cancel)
		if err != nil {
			return nil, cost, err
		}
		cost.Rounds++
		full := map[int]transport.Addr{}
		if err := decodeFrag(msg.Data, full); err != nil {
			return nil, cost, err
		}
		table = make(Table, p.N)
		for r, a := range full {
			table[r] = a
		}
	}

	// Forward the table to children.
	if len(children) > 0 {
		full := map[int]transport.Addr{}
		for r, a := range table {
			full[r] = a
		}
		data := encodeFrag(full)
		for _, c := range children {
			if err := p.EP.Send(addrOf(c), transport.Msg{
				Src: int32(p.Rank), Tag: tagBcast, Ctx: CtxBootstrap, Epoch: p.Epoch,
				Kind: transport.KindCtl, Data: data,
			}); err != nil {
				return nil, cost, err
			}
			cost.ProcMsgs++
			cost.ProcBytes += len(data)
		}
	}
	return table, cost, nil
}

// KVSExchange performs the PMI-style exchange used by the MPI
// baseline: put own endpoint, fence, then one get per peer. The n²
// aggregate coordinator operations are what make MPI_Init slower than
// FMI_Init in Fig 14.
func KVSExchange(p Proc) (Table, Cost, error) {
	var cost Cost
	p.Coord.Put(fmt.Sprintf("%s/kvs/%d", p.Key, p.Rank), []byte(p.Addr))
	cost.CoordOps++
	if err := p.Coord.Barrier(p.Key+"/fence", p.Rank, p.N, p.Cancel); err != nil {
		return nil, cost, err
	}
	cost.CoordOps++
	table := make(Table, p.N)
	for r := 0; r < p.N; r++ {
		v, err := p.Coord.Get(fmt.Sprintf("%s/kvs/%d", p.Key, r), p.Cancel)
		if err != nil {
			return nil, cost, err
		}
		cost.CoordOps++
		table[r] = transport.Addr(v)
	}
	return table, cost, nil
}

// encodeFrag serialises rank→addr pairs as
// (u32 rank | u32 len | addr bytes)*.
func encodeFrag(frag map[int]transport.Addr) []byte {
	var out []byte
	var hdr [8]byte
	for r, a := range frag {
		binary.LittleEndian.PutUint32(hdr[0:], uint32(r))
		binary.LittleEndian.PutUint32(hdr[4:], uint32(len(a)))
		out = append(out, hdr[:]...)
		out = append(out, a...)
	}
	return out
}

func decodeFrag(data []byte, into map[int]transport.Addr) error {
	for len(data) > 0 {
		if len(data) < 8 {
			return fmt.Errorf("bootstrap: truncated fragment header")
		}
		r := binary.LittleEndian.Uint32(data[0:])
		n := binary.LittleEndian.Uint32(data[4:])
		data = data[8:]
		if uint32(len(data)) < n {
			return fmt.Errorf("bootstrap: truncated fragment body")
		}
		into[int(r)] = transport.Addr(data[:n])
		data = data[n:]
	}
	return nil
}
