// Package bootstrap implements job bootstrapping: the exchange of
// endpoint addresses among the processes of a job so that every rank
// can reach every other.
//
// Two exchange algorithms are provided, mirroring the paper's Fig 14
// comparison:
//
//   - Tree (PMGR_COLLECTIVE-style, used by FMI): each process registers
//     its endpoint with the coordinator once, learns its binomial-tree
//     parent and children, then the full endpoint table is gathered up
//     and broadcast down the tree over the processes' own transport.
//     Coordinator load is O(1) small messages per process; the table
//     traverses O(log n) rounds.
//
//   - KVS (PMI-style, used by the MVAPICH2/SLURM baseline): each
//     process Puts its endpoint into a central key-value space, Fences,
//     and then issues one Get per peer — n Gets per process, n² total
//     coordinator operations, which is what makes MPI_Init visibly
//     slower than FMI_Init in Fig 14.
//
// Both are really executed (real messages, real contention); a CostModel
// additionally converts the measured operation counts into modelled
// wall-clock series at the paper's scale.
package bootstrap

import (
	"errors"
	"sync"
)

// ErrCancelled is returned when a bootstrap participant is cancelled
// (its process died or recovery was aborted).
var ErrCancelled = errors.New("bootstrap: cancelled")

// Coordinator is the rendezvous service owned by the process manager
// (fmirun). It provides keyed all-gathers (used for endpoint exchange
// each recovery round) and a PMI-like key-value space.
type Coordinator struct {
	mu      sync.Mutex
	gathers map[string]*gatherState
	kvs     map[string][]byte
	kvWait  map[string][]chan []byte
	ops     uint64 // total coordinator-side operations served
}

type gatherState struct {
	n       int
	vals    map[int][]byte
	waiters []chan gatherResult
	done    bool
	result  [][]byte
	aborted error
}

type gatherResult struct {
	vals [][]byte
	err  error
}

// NewCoordinator creates an empty coordinator.
func NewCoordinator() *Coordinator {
	return &Coordinator{
		gathers: make(map[string]*gatherState),
		kvs:     make(map[string][]byte),
		kvWait:  make(map[string][]chan []byte),
	}
}

// Ops returns the number of operations the coordinator has served;
// bootstrap cost accounting uses it to compare algorithms.
func (c *Coordinator) Ops() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ops
}

// AllGather contributes val for rank under the given key and blocks
// until all n participants have contributed, returning the values
// indexed by rank. All participants must agree on n. cancel aborts the
// wait.
func (c *Coordinator) AllGather(key string, rank, n int, val []byte, cancel <-chan struct{}) ([][]byte, error) {
	c.mu.Lock()
	c.ops++
	g := c.gathers[key]
	if g == nil {
		g = &gatherState{n: n, vals: make(map[int][]byte)}
		c.gathers[key] = g
	}
	if g.aborted != nil {
		err := g.aborted
		c.mu.Unlock()
		return nil, err
	}
	if g.done {
		res := g.result
		c.mu.Unlock()
		return res, nil
	}
	g.vals[rank] = val
	if len(g.vals) == g.n {
		res := make([][]byte, g.n)
		for r, v := range g.vals {
			res[r] = v
		}
		g.done = true
		g.result = res
		waiters := g.waiters
		g.waiters = nil
		c.mu.Unlock()
		for _, w := range waiters {
			w <- gatherResult{vals: res}
		}
		return res, nil
	}
	ch := make(chan gatherResult, 1)
	g.waiters = append(g.waiters, ch)
	c.mu.Unlock()

	select {
	case res := <-ch:
		return res.vals, res.err
	case <-cancel:
		return nil, ErrCancelled
	}
}

// AbortGather fails a pending gather: current and future participants
// of the key receive err. The process manager uses this to unblock
// recovery rounds that were overtaken by another failure.
func (c *Coordinator) AbortGather(key string, err error) {
	c.mu.Lock()
	g := c.gathers[key]
	if g == nil {
		g = &gatherState{aborted: err}
		c.gathers[key] = g
		c.mu.Unlock()
		return
	}
	if g.done || g.aborted != nil {
		c.mu.Unlock()
		return
	}
	g.aborted = err
	waiters := g.waiters
	g.waiters = nil
	c.mu.Unlock()
	for _, w := range waiters {
		w <- gatherResult{err: err}
	}
}

// Barrier blocks until n participants have arrived at key.
func (c *Coordinator) Barrier(key string, rank, n int, cancel <-chan struct{}) error {
	_, err := c.AllGather(key, rank, n, nil, cancel)
	return err
}

// Drop discards the state of a completed or abandoned gather so the
// key can be reused (recovery rounds use fresh keys; Drop is for
// memory hygiene in long jobs).
func (c *Coordinator) Drop(key string) {
	c.mu.Lock()
	delete(c.gathers, key)
	c.mu.Unlock()
}

// Put stores a key-value pair (PMI put).
func (c *Coordinator) Put(key string, val []byte) {
	c.mu.Lock()
	c.ops++
	c.kvs[key] = val
	waiters := c.kvWait[key]
	delete(c.kvWait, key)
	c.mu.Unlock()
	for _, w := range waiters {
		w <- val
	}
}

// Get retrieves a value, blocking until it is Put (PMI get).
func (c *Coordinator) Get(key string, cancel <-chan struct{}) ([]byte, error) {
	c.mu.Lock()
	c.ops++
	if v, ok := c.kvs[key]; ok {
		c.mu.Unlock()
		return v, nil
	}
	ch := make(chan []byte, 1)
	c.kvWait[key] = append(c.kvWait[key], ch)
	c.mu.Unlock()
	select {
	case v := <-ch:
		return v, nil
	case <-cancel:
		return nil, ErrCancelled
	}
}
