package bootstrap

import (
	"math"
	"time"
)

// CostModel converts exchange structure into modelled wall-clock time
// at paper scale. The constants are calibrated so that the modelled
// curves land in the same range as the paper's Fig 14 measurements on
// Sierra (FMI_Init ≈ 2 s and MVAPICH2 MPI_Init ≈ 4.5 s at 1536
// processes); only the *shape* — FMI roughly 2× faster, both growing
// with process count, log-ring cost negligible — is claimed, as the
// absolute values depend on the machine.
type CostModel struct {
	// Setup is the fixed job-launch overhead (allocation handshake,
	// binary/library load from the shared file system).
	Setup time.Duration
	// SpawnPerProc is the serialized per-process launch cost at the
	// manager.
	SpawnPerProc time.Duration
	// CoordPerOp is the coordinator's service time per small PMI op
	// (put/get/fence).
	CoordPerOp time.Duration
	// HopLatency is one proc-to-proc message latency in the tree.
	HopLatency time.Duration
	// ConnectCost is the cost of establishing one monitored (log-ring)
	// connection.
	ConnectCost time.Duration
	// ExtraMPISetup reflects MVAPICH2's heavier per-job initialisation
	// (shared-memory segments, rendezvous protocol setup).
	ExtraMPISetup time.Duration
}

// DefaultCostModel returns the calibration used for the Fig 14
// reproduction.
func DefaultCostModel() CostModel {
	return CostModel{
		Setup:         250 * time.Millisecond,
		SpawnPerProc:  1200 * time.Microsecond,
		CoordPerOp:    1 * time.Microsecond,
		HopLatency:    1 * time.Millisecond,
		ConnectCost:   5 * time.Millisecond,
		ExtraMPISetup: 250 * time.Millisecond,
	}
}

func log2ceil(n int) int {
	if n <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(n))))
}

// TreeBootstrapTime models the FMI H1 bootstrap (PMGR tree) for n
// processes: spawn + registration + 2·depth tree rounds.
func (cm CostModel) TreeBootstrapTime(n int) time.Duration {
	depth := log2ceil(n)
	return cm.Setup +
		time.Duration(n)*cm.SpawnPerProc +
		time.Duration(n)*cm.CoordPerOp + // one registration each
		time.Duration(2*depth)*cm.HopLatency
}

// LogRingTime models the H2 state: each process opens ⌈log2 n⌉
// monitored connections, all processes in parallel.
func (cm CostModel) LogRingTime(n, base int) time.Duration {
	if base < 2 {
		base = 2
	}
	conns := 0
	for d := 1; d < n; d *= base {
		conns++
	}
	return time.Duration(conns) * cm.ConnectCost
}

// FMIInitTime models the complete FMI_Init: H1 bootstrap + H2 log-ring.
func (cm CostModel) FMIInitTime(n, base int) time.Duration {
	return cm.TreeBootstrapTime(n) + cm.LogRingTime(n, base)
}

// MPIInitTime models MVAPICH2's MPI_Init over SLURM/PMI: spawn +
// n puts + n fences + n² gets through the coordinator + heavier setup.
func (cm CostModel) MPIInitTime(n int) time.Duration {
	coordOps := time.Duration(2*n) * cm.CoordPerOp
	gets := time.Duration(n) * time.Duration(n) * cm.CoordPerOp
	return cm.Setup + cm.ExtraMPISetup +
		time.Duration(n)*cm.SpawnPerProc + coordOps + gets
}
