package bootstrap

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"fmi/internal/transport"
)

// runExchange spawns n participants over a chan network and runs the
// given exchange function in each, returning the tables and costs.
func runExchange(t *testing.T, n int,
	fn func(Proc) (Table, Cost, error)) ([]Table, []Cost) {
	t.Helper()
	nw := transport.NewChanNetwork(transport.Options{})
	coord := NewCoordinator()
	eps := make([]transport.Endpoint, n)
	ms := make([]*transport.Matcher, n)
	for i := 0; i < n; i++ {
		ep, err := nw.NewEndpoint(nil)
		if err != nil {
			t.Fatal(err)
		}
		eps[i] = ep
		ms[i] = transport.NewMatcher(ep)
	}
	t.Cleanup(func() {
		for i := 0; i < n; i++ {
			ms[i].Close()
			eps[i].Close()
		}
	})
	tables := make([]Table, n)
	costs := make([]Cost, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tables[i], costs[i], errs[i] = fn(Proc{
				Rank: i, N: n, Addr: eps[i].Addr(), EP: eps[i], M: ms[i],
				Coord: coord, Key: "t0",
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
	return tables, costs
}

func checkTables(t *testing.T, tables []Table, n int, eps func(int) transport.Addr) {
	t.Helper()
	for i, tbl := range tables {
		if len(tbl) != n {
			t.Fatalf("rank %d table len = %d, want %d", i, len(tbl), n)
		}
		for r := 0; r < n; r++ {
			if tbl[r] != eps(r) {
				t.Fatalf("rank %d table[%d] = %v, want %v", i, r, tbl[r], eps(r))
			}
		}
	}
}

func TestTreeExchange(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16, 33} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			var addrs []transport.Addr
			var mu sync.Mutex
			tables, _ := runExchange(t, n, func(p Proc) (Table, Cost, error) {
				mu.Lock()
				addrs = append(addrs, p.Addr)
				mu.Unlock()
				return TreeExchange(p)
			})
			// every table consistent with itself and rank-indexed
			seen := map[transport.Addr]bool{}
			for _, a := range tables[0] {
				if seen[a] {
					t.Fatalf("duplicate addr %v in table", a)
				}
				seen[a] = true
			}
			for i := 1; i < n; i++ {
				for r := 0; r < n; r++ {
					if tables[i][r] != tables[0][r] {
						t.Fatalf("tables disagree at rank %d", r)
					}
				}
			}
		})
	}
}

func TestKVSExchange(t *testing.T) {
	tables, costs := runExchange(t, 8, KVSExchange)
	for i := 1; i < 8; i++ {
		for r := 0; r < 8; r++ {
			if tables[i][r] != tables[0][r] {
				t.Fatalf("tables disagree at rank %d", r)
			}
		}
	}
	// KVS: each proc performs 1 put + 1 fence + n gets.
	for i, c := range costs {
		if c.CoordOps != 2+8 {
			t.Fatalf("rank %d coord ops = %d, want %d", i, c.CoordOps, 10)
		}
	}
}

func TestTreeCheaperAtCoordinator(t *testing.T) {
	const n = 16
	_, treeCosts := runExchange(t, n, TreeExchange)
	_, kvsCosts := runExchange(t, n, KVSExchange)
	treeOps, kvsOps := 0, 0
	for i := 0; i < n; i++ {
		treeOps += treeCosts[i].CoordOps
		kvsOps += kvsCosts[i].CoordOps
	}
	if treeOps >= kvsOps {
		t.Fatalf("tree coordinator ops (%d) should be well below KVS (%d)", treeOps, kvsOps)
	}
}

func TestExchangesAgree(t *testing.T) {
	const n = 9
	tablesA, _ := runExchange(t, n, TreeExchange)
	// KVS over a separate network necessarily yields different addrs,
	// so just verify structural properties on the tree result.
	for r := 0; r < n; r++ {
		if tablesA[0][r] == transport.NilAddr {
			t.Fatalf("rank %d missing addr", r)
		}
	}
}

func TestAllGatherRendezvous(t *testing.T) {
	coord := NewCoordinator()
	const n = 5
	var wg sync.WaitGroup
	results := make([][][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := coord.AllGather("k", i, n, []byte{byte(i * 2)}, nil)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		for r := 0; r < n; r++ {
			if results[i][r][0] != byte(r*2) {
				t.Fatalf("participant %d slot %d = %d", i, r, results[i][r][0])
			}
		}
	}
}

func TestAllGatherLateJoinerGetsResult(t *testing.T) {
	coord := NewCoordinator()
	done := make(chan [][]byte, 1)
	go func() {
		res, _ := coord.AllGather("k", 0, 2, []byte("a"), nil)
		done <- res
	}()
	time.Sleep(5 * time.Millisecond)
	res, err := coord.AllGather("k", 1, 2, []byte("b"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(res[0]) != "a" || string(res[1]) != "b" {
		t.Fatalf("res = %q", res)
	}
	<-done
	// A third arrival after completion sees the cached result.
	res2, err := coord.AllGather("k", 1, 2, []byte("late"), nil)
	if err != nil || string(res2[1]) != "b" {
		t.Fatalf("cached result broken: %q, %v", res2, err)
	}
}

func TestAllGatherCancel(t *testing.T) {
	coord := NewCoordinator()
	cancel := make(chan struct{})
	errCh := make(chan error, 1)
	go func() {
		_, err := coord.AllGather("k", 0, 3, nil, cancel)
		errCh <- err
	}()
	time.Sleep(5 * time.Millisecond)
	close(cancel)
	if err := <-errCh; err != ErrCancelled {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
}

func TestKVSGetBlocksUntilPut(t *testing.T) {
	coord := NewCoordinator()
	got := make(chan []byte, 1)
	go func() {
		v, _ := coord.Get("x", nil)
		got <- v
	}()
	time.Sleep(5 * time.Millisecond)
	select {
	case <-got:
		t.Fatal("Get returned before Put")
	default:
	}
	coord.Put("x", []byte("v"))
	select {
	case v := <-got:
		if string(v) != "v" {
			t.Fatalf("got %q", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Get never unblocked")
	}
}

func TestFragCodecRoundtrip(t *testing.T) {
	in := map[int]transport.Addr{0: "a", 5: "longer-address:1234", 7: ""}
	out := map[int]transport.Addr{}
	if err := decodeFrag(encodeFrag(in), out); err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len = %d", len(out))
	}
	for r, a := range in {
		if out[r] != a {
			t.Fatalf("rank %d: %q != %q", r, out[r], a)
		}
	}
}

func TestFragDecodeErrors(t *testing.T) {
	if err := decodeFrag([]byte{1, 2, 3}, map[int]transport.Addr{}); err == nil {
		t.Fatal("truncated header accepted")
	}
	bad := encodeFrag(map[int]transport.Addr{1: "abcdef"})
	if err := decodeFrag(bad[:len(bad)-2], map[int]transport.Addr{}); err == nil {
		t.Fatal("truncated body accepted")
	}
}

func TestCostModelShape(t *testing.T) {
	cm := DefaultCostModel()
	// MPI_Init should be slower than FMI_Init at every paper scale,
	// by roughly 2x at the top end (paper Fig 14).
	for _, n := range []int{48, 96, 192, 384, 768, 1536} {
		fmi := cm.FMIInitTime(n, 2)
		mpi := cm.MPIInitTime(n)
		if mpi <= fmi {
			t.Fatalf("n=%d: MPIInit (%v) should exceed FMIInit (%v)", n, mpi, fmi)
		}
	}
	ratio := float64(cm.MPIInitTime(1536)) / float64(cm.FMIInitTime(1536, 2))
	if ratio < 1.5 || ratio > 4 {
		t.Fatalf("MPI/FMI init ratio at 1536 = %.2f, want ~2x", ratio)
	}
	// Log-ring establishment is small and logarithmic.
	if cm.LogRingTime(1536, 2) > 200*time.Millisecond {
		t.Fatalf("log-ring time too large: %v", cm.LogRingTime(1536, 2))
	}
	// Both init curves grow with n.
	if cm.FMIInitTime(1536, 2) <= cm.FMIInitTime(48, 2) {
		t.Fatal("FMIInit not growing with n")
	}
}

func TestTreeTopology(t *testing.T) {
	if treeParent(1) != 0 || treeParent(2) != 0 || treeParent(5) != 2 {
		t.Fatal("treeParent wrong")
	}
	ch := treeChildren(0, 6)
	if len(ch) != 2 || ch[0] != 1 || ch[1] != 2 {
		t.Fatalf("children of 0 = %v", ch)
	}
	if len(treeChildren(3, 6)) != 0 {
		t.Fatal("leaf has children")
	}
	if got := treeChildren(2, 6); len(got) != 1 || got[0] != 5 {
		t.Fatalf("children of 2 = %v", got)
	}
}
