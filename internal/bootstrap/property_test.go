package bootstrap

import (
	"testing"
	"testing/quick"
)

// Property: the gather/bcast tree is a well-formed spanning tree —
// every non-root has exactly one parent, parent/children relations are
// duals, and following parents always reaches the root.
func TestQuickTreeIsSpanning(t *testing.T) {
	f := func(nRaw uint16) bool {
		n := 1 + int(nRaw)%2000
		for r := 1; r < n; r++ {
			p := treeParent(r)
			if p < 0 || p >= n || p == r {
				return false
			}
			found := false
			for _, c := range treeChildren(p, n) {
				if c == r {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		// Path to root terminates (depth bounded by log2 n + 1).
		for r := 0; r < n; r += 1 + n/17 {
			steps := 0
			for v := r; v != 0; v = treeParent(v) {
				steps++
				if steps > 64 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: children lists partition 1..n-1 exactly once.
func TestQuickTreeChildrenPartition(t *testing.T) {
	f := func(nRaw uint16) bool {
		n := 1 + int(nRaw)%1000
		seen := make([]int, n)
		for p := 0; p < n; p++ {
			for _, c := range treeChildren(p, n) {
				if c <= 0 || c >= n {
					return false
				}
				seen[c]++
			}
		}
		for r := 1; r < n; r++ {
			if seen[r] != 1 {
				return false
			}
		}
		return seen[0] == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the cost model's MPI/FMI ordering holds at every scale.
func TestQuickCostModelOrdering(t *testing.T) {
	cm := DefaultCostModel()
	f := func(nRaw uint16) bool {
		n := 2 + int(nRaw)%4000
		return cm.MPIInitTime(n) > cm.FMIInitTime(n, 2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
