package pfs

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"
)

func fastModel() Model {
	return Model{WriteLatency: 0, ReadLatency: 0, TimeScale: 0}
}

func TestWriteReadRoundtrip(t *testing.T) {
	fs := New("t", fastModel())
	want := []byte("checkpoint")
	if err := fs.Write("k", want); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Read("k")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %q", got)
	}
}

func TestReadMissing(t *testing.T) {
	fs := New("t", fastModel())
	if _, err := fs.Read("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestWriteIsACopy(t *testing.T) {
	fs := New("t", fastModel())
	data := []byte{1, 2, 3}
	fs.Write("k", data)
	data[0] = 9
	got, _ := fs.Read("k")
	if got[0] != 1 {
		t.Fatal("FS aliased caller's buffer on write")
	}
	got[1] = 9
	got2, _ := fs.Read("k")
	if got2[1] != 2 {
		t.Fatal("FS aliased internal buffer on read")
	}
}

func TestWipe(t *testing.T) {
	fs := New("t", fastModel())
	fs.Write("a", []byte{1})
	fs.Write("b", []byte{2})
	fs.Wipe()
	if fs.Exists("a") || fs.Exists("b") {
		t.Fatal("wipe left objects")
	}
	// Still usable after wipe (new node's empty tmpfs).
	if err := fs.Write("c", []byte{3}); err != nil {
		t.Fatal(err)
	}
}

func TestFail(t *testing.T) {
	fs := New("t", fastModel())
	fs.Write("a", []byte{1})
	fs.Fail()
	if err := fs.Write("b", []byte{2}); err == nil {
		t.Fatal("write to failed FS succeeded")
	}
	if _, err := fs.Read("a"); err == nil {
		t.Fatal("read from failed FS succeeded")
	}
}

func TestDeleteAndKeys(t *testing.T) {
	fs := New("t", fastModel())
	fs.Write("a", nil)
	fs.Write("b", nil)
	fs.Delete("a")
	fs.Delete("missing") // no-op
	keys := fs.Keys()
	if len(keys) != 1 || keys[0] != "b" {
		t.Fatalf("keys = %v", keys)
	}
}

func TestStatsAccounting(t *testing.T) {
	fs := New("t", fastModel())
	fs.Write("a", make([]byte, 100))
	fs.Write("b", make([]byte, 50))
	fs.Read("a")
	st := fs.Stats()
	if st.Writes != 2 || st.BytesWritten != 150 {
		t.Fatalf("writes=%d bytes=%d", st.Writes, st.BytesWritten)
	}
	if st.Reads != 1 || st.BytesRead != 100 {
		t.Fatalf("reads=%d bytes=%d", st.Reads, st.BytesRead)
	}
}

func TestModelChargesTime(t *testing.T) {
	m := Model{WriteLatency: 20 * time.Millisecond, TimeScale: 1.0}
	fs := New("t", m)
	start := time.Now()
	fs.Write("k", []byte{1})
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("write charged %v, want >= ~20ms", d)
	}
}

func TestTimeScaleZeroChargesNothing(t *testing.T) {
	m := Model{WriteLatency: time.Hour, WriteBW: 1, TimeScale: 0}
	fs := New("t", m)
	start := time.Now()
	fs.Write("k", make([]byte, 1000))
	if d := time.Since(start); d > time.Second {
		t.Fatalf("TimeScale=0 write took %v", d)
	}
	if fs.Stats().TimeCharged != 0 {
		t.Fatal("charged time with TimeScale=0")
	}
}

func TestBandwidthCost(t *testing.T) {
	m := Model{WriteBW: 1e9, TimeScale: 1.0} // 1 GB/s
	if d := m.writeCost(100 << 20); d < 90*time.Millisecond || d > 200*time.Millisecond {
		t.Fatalf("100MB at 1GB/s charged %v", d)
	}
}

func TestSharedSerialisesCharging(t *testing.T) {
	m := Model{WriteLatency: 10 * time.Millisecond, TimeScale: 1.0}
	fs := NewShared("pfs", m)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fs.Write("k", []byte{byte(i)})
		}(i)
	}
	wg.Wait()
	if d := time.Since(start); d < 35*time.Millisecond {
		t.Fatalf("4 concurrent writes on shared FS took %v, want >= ~40ms (serialised)", d)
	}
}

func TestConcurrentAccess(t *testing.T) {
	fs := New("t", fastModel())
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := string(rune('a' + i%8))
			fs.Write(key, []byte{byte(i)})
			fs.Read(key)
			fs.Exists(key)
		}(i)
	}
	wg.Wait()
}
