// Package pfs simulates storage targets with explicit performance
// models: a parallel file system (Lustre-like, shared, survives node
// failures) and node-local storage (tmpfs/SSD-like, lost with its
// node). The paper's baseline (MPI + SCR) checkpoints through a file
// system interface even when the backing store is memory (tmpfs),
// paying per-operation latency and an extra copy; FMI writes directly
// to memory with memcpy. This package makes that cost difference — and
// the PFS bandwidth ceiling used in the Fig 17 model — explicit and
// tunable.
package pfs

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrNotFound is returned when reading a missing object.
var ErrNotFound = errors.New("pfs: object not found")

// Model describes a storage target's performance.
type Model struct {
	// WriteLatency/ReadLatency are charged once per operation
	// (syscall + file-system bookkeeping analogue).
	WriteLatency, ReadLatency time.Duration
	// WriteBW/ReadBW in bytes/second; zero means infinitely fast.
	WriteBW, ReadBW float64
	// TimeScale scales the charged delays so experiments can run
	// paper-sized models in laptop time. 1.0 charges full time;
	// 0 charges nothing (pure accounting).
	TimeScale float64
}

// SierraTmpfs approximates node-local tmpfs behind a file-system
// interface: fast, but with per-op overhead and a copy.
func SierraTmpfs() Model {
	return Model{
		WriteLatency: 50 * time.Microsecond,
		ReadLatency:  30 * time.Microsecond,
		WriteBW:      8e9, ReadBW: 10e9,
		TimeScale: 1.0,
	}
}

// LustrePFS approximates the paper's 50 GB/s aggregate Lustre file
// system shared by the whole job.
func LustrePFS() Model {
	return Model{
		WriteLatency: 5 * time.Millisecond,
		ReadLatency:  3 * time.Millisecond,
		WriteBW:      50e9, ReadBW: 50e9,
		TimeScale: 1.0,
	}
}

func (m Model) writeCost(n int) time.Duration {
	d := m.WriteLatency
	if m.WriteBW > 0 {
		d += time.Duration(float64(n) / m.WriteBW * float64(time.Second))
	}
	return time.Duration(float64(d) * m.TimeScale)
}

func (m Model) readCost(n int) time.Duration {
	d := m.ReadLatency
	if m.ReadBW > 0 {
		d += time.Duration(float64(n) / m.ReadBW * float64(time.Second))
	}
	return time.Duration(float64(d) * m.TimeScale)
}

// Stats accumulates what a file system has served.
type Stats struct {
	Writes, Reads           uint64
	BytesWritten, BytesRead uint64
	TimeCharged             time.Duration
}

// FS is one simulated storage target: a flat object store with a
// performance model. It is safe for concurrent use; bandwidth is
// charged per operation (callers running in parallel therefore see
// aggregate bandwidth proportional to parallelism, matching the
// node-local case; for a shared PFS use Shared to serialise charging).
type FS struct {
	Name  string
	model Model

	mu      sync.Mutex
	objects map[string][]byte
	stats   Stats

	// shared, if true, serialises the time charging across all
	// operations, modelling a single shared resource (the PFS).
	shared bool
	gateMu sync.Mutex
	failed bool
}

// New creates a file system with the given model.
func New(name string, m Model) *FS {
	return &FS{Name: name, model: m, objects: make(map[string][]byte)}
}

// NewShared creates a file system whose bandwidth is a single shared
// resource: concurrent writers queue behind each other.
func NewShared(name string, m Model) *FS {
	fs := New(name, m)
	fs.shared = true
	return fs
}

func (fs *FS) charge(d time.Duration) {
	if d <= 0 {
		return
	}
	if fs.shared {
		fs.gateMu.Lock()
		// Sleeping under gateMu is the model: a single shared resource
		// (the PFS) serves one writer at a time, so concurrent callers
		// must queue behind the sleeping holder.
		//fmilint:ignore lockheld sleeping under gateMu is deliberate: it serialises writers to model the PFS's single shared bandwidth
		time.Sleep(d)
		fs.gateMu.Unlock()
	} else {
		time.Sleep(d)
	}
}

// Write stores a copy of data under key, charging modelled time.
func (fs *FS) Write(key string, data []byte) error {
	fs.mu.Lock()
	if fs.failed {
		fs.mu.Unlock()
		return fmt.Errorf("pfs: %s has failed", fs.Name)
	}
	fs.mu.Unlock()

	cost := fs.model.writeCost(len(data))
	fs.charge(cost)

	cp := make([]byte, len(data))
	copy(cp, data)
	fs.mu.Lock()
	fs.objects[key] = cp
	fs.stats.Writes++
	fs.stats.BytesWritten += uint64(len(data))
	fs.stats.TimeCharged += cost
	fs.mu.Unlock()
	return nil
}

// Read returns a copy of the object at key.
func (fs *FS) Read(key string) ([]byte, error) {
	fs.mu.Lock()
	if fs.failed {
		fs.mu.Unlock()
		return nil, fmt.Errorf("pfs: %s has failed", fs.Name)
	}
	obj, ok := fs.objects[key]
	fs.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	cost := fs.model.readCost(len(obj))
	fs.charge(cost)
	cp := make([]byte, len(obj))
	copy(cp, obj)
	fs.mu.Lock()
	fs.stats.Reads++
	fs.stats.BytesRead += uint64(len(obj))
	fs.stats.TimeCharged += cost
	fs.mu.Unlock()
	return cp, nil
}

// Exists reports whether key is stored.
func (fs *FS) Exists(key string) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, ok := fs.objects[key]
	return ok
}

// Delete removes an object (no-op if absent).
func (fs *FS) Delete(key string) {
	fs.mu.Lock()
	delete(fs.objects, key)
	fs.mu.Unlock()
}

// Wipe destroys all contents — a node failure taking its tmpfs with it.
// The FS remains usable (a *new* node's empty tmpfs) unless failed is
// set via Fail.
func (fs *FS) Wipe() {
	fs.mu.Lock()
	fs.objects = make(map[string][]byte)
	fs.mu.Unlock()
}

// Fail marks the target permanently unusable.
func (fs *FS) Fail() {
	fs.mu.Lock()
	fs.failed = true
	fs.objects = nil
	fs.mu.Unlock()
}

// Stats returns a snapshot of the accumulated statistics.
func (fs *FS) Stats() Stats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.stats
}

// Keys returns all stored keys (for tests and rebuild scans).
func (fs *FS) Keys() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	keys := make([]string, 0, len(fs.objects))
	for k := range fs.objects {
		keys = append(keys, k)
	}
	return keys
}
