package msglog

import (
	"bytes"
	"testing"
)

func TestRecordAssignsPerDestinationSeqs(t *testing.T) {
	l := New(3)
	if got := l.Record(1, 7, 3, 0, []byte("a")); got != 1 {
		t.Fatalf("first seq to dst 1 = %d, want 1", got)
	}
	if got := l.Record(2, 7, 3, 0, []byte("b")); got != 1 {
		t.Fatalf("first seq to dst 2 = %d, want 1", got)
	}
	if got := l.Record(1, 7, 4, 0, []byte("c")); got != 2 {
		t.Fatalf("second seq to dst 1 = %d, want 2", got)
	}
	want := []uint64{0, 2, 1}
	got := l.SendSeqs()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SendSeqs = %v, want %v", got, want)
		}
	}
}

func TestRecordCopiesPayload(t *testing.T) {
	l := New(2)
	buf := []byte("original")
	l.Record(1, 1, 0, 0, buf)
	copy(buf, "mutated!")
	ents := l.After(1, 0)
	if !bytes.Equal(ents[0].Data, []byte("original")) {
		t.Fatalf("logged payload aliased the caller's buffer: %q", ents[0].Data)
	}
}

func TestAfterReturnsOnlyUnacknowledged(t *testing.T) {
	l := New(2)
	for i := 0; i < 5; i++ {
		l.Record(1, 1, int32(i), 0, []byte{byte(i)})
	}
	ents := l.After(1, 3)
	if len(ents) != 2 || ents[0].Seq != 4 || ents[1].Seq != 5 {
		t.Fatalf("After(1,3) = %+v, want seqs [4 5]", ents)
	}
	if got := l.After(1, 5); len(got) != 0 {
		t.Fatalf("After(1,5) = %+v, want empty", got)
	}
}

func TestTrimBoundsMemory(t *testing.T) {
	l := New(2)
	for i := 0; i < 10; i++ {
		l.Record(1, 1, 0, 0, make([]byte, 100))
	}
	entsBefore, bytesBefore := l.Stats()
	if entsBefore != 10 || bytesBefore != 1000 {
		t.Fatalf("pre-trim stats = (%d, %d), want (10, 1000)", entsBefore, bytesBefore)
	}
	n, b := l.Trim([]uint64{0, 7})
	if n != 7 || b != 700 {
		t.Fatalf("Trim released (%d, %d), want (7, 700)", n, b)
	}
	ents, bs := l.Stats()
	if ents != 3 || bs != 300 {
		t.Fatalf("post-trim stats = (%d, %d), want (3, 300)", ents, bs)
	}
	// The surviving entries keep their original sequence numbers, and
	// counters keep advancing from where they were.
	if got := l.After(1, 0); got[0].Seq != 8 {
		t.Fatalf("first surviving entry seq = %d, want 8", got[0].Seq)
	}
	if seq := l.Record(1, 1, 0, 0, nil); seq != 11 {
		t.Fatalf("seq after trim = %d, want 11", seq)
	}
}

func TestRestoreSendSeqsResumesNumbering(t *testing.T) {
	l := New(3)
	if err := l.RestoreSendSeqs([]uint64{5, 0, 9}); err != nil {
		t.Fatal(err)
	}
	if seq := l.Record(0, 1, 0, 0, nil); seq != 6 {
		t.Fatalf("seq to dst 0 after restore = %d, want 6", seq)
	}
	if seq := l.Record(2, 1, 0, 0, nil); seq != 10 {
		t.Fatalf("seq to dst 2 after restore = %d, want 10", seq)
	}
	// A shorter vector is a checkpoint from a smaller membership view:
	// the common prefix is adopted, counters beyond it start over.
	if err := l.RestoreSendSeqs([]uint64{1}); err != nil {
		t.Fatalf("RestoreSendSeqs rejected a smaller-view vector: %v", err)
	}
	if seq := l.Record(0, 1, 0, 0, nil); seq != 2 {
		t.Fatalf("seq to dst 0 after prefix restore = %d, want 2", seq)
	}
	// A longer vector cannot come from any legal view history.
	if err := l.RestoreSendSeqs(make([]uint64, 99)); err == nil {
		t.Fatal("RestoreSendSeqs accepted an oversized vector")
	}
}

func TestResetClearsEverything(t *testing.T) {
	l := New(2)
	l.Record(1, 1, 0, 0, []byte("x"))
	l.Reset()
	if ents, bs := l.Stats(); ents != 0 || bs != 0 {
		t.Fatalf("post-reset stats = (%d, %d), want (0, 0)", ents, bs)
	}
	if seq := l.Record(1, 1, 0, 0, nil); seq != 1 {
		t.Fatalf("seq after reset = %d, want 1", seq)
	}
}
