// Package msglog implements sender-based pessimistic message logging,
// the mechanism behind FMI's localized ("local") recovery mode. Every
// data-plane message a rank sends is assigned a per-(sender, receiver)
// sequence number and a copy is retained in the sender's volatile
// in-memory log. When a node fails, survivors do not roll back:
// respawned ranks restore their checkpoint shard and re-execute, with
// their receives satisfied by replaying the survivors' logs, while
// re-executed duplicate sends are suppressed at the receivers by the
// same sequence numbers (Dichev & Nikolopoulos; ReStore — see
// PAPERS.md). The log is bounded: once a checkpoint commits globally,
// entries every receiver has acknowledged are garbage collected.
package msglog

import (
	"fmt"
	"sync"
)

// Entry is one logged message. Data is a private copy taken at Record
// time, so later mutation of the caller's buffer cannot corrupt a
// replay.
type Entry struct {
	Seq  uint64
	Ctx  uint32
	Tag  int32
	Kind byte
	Data []byte
}

// Log is one rank's send log: per-destination sequence counters plus
// the retained entries, ordered by ascending sequence number. All
// methods are safe for concurrent use (the trim runs asynchronously to
// the sending application thread).
type Log struct {
	mu      sync.Mutex
	n       int
	lastSeq []uint64  // last sequence number assigned per destination
	entries [][]Entry // retained entries per destination, ascending Seq
	bytes   int       // payload bytes currently retained
}

// New creates an empty log for a world of n ranks.
func New(n int) *Log {
	return &Log{n: n, lastSeq: make([]uint64, n), entries: make([][]Entry, n)}
}

// Record assigns the next sequence number for dst, retains a copy of
// the payload, and returns the assigned number (sequence numbers start
// at 1; 0 marks unsequenced control traffic).
func (l *Log) Record(dst int, ctx uint32, tag int32, kind byte, data []byte) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lastSeq[dst]++
	seq := l.lastSeq[dst]
	var cp []byte
	if len(data) > 0 {
		cp = make([]byte, len(data))
		copy(cp, data)
	}
	l.entries[dst] = append(l.entries[dst], Entry{Seq: seq, Ctx: ctx, Tag: tag, Kind: kind, Data: cp})
	l.bytes += len(cp)
	return seq
}

// After returns the retained entries for dst with Seq > seq, in
// sequence order — exactly what a recovering receiver that has
// acknowledged seq still needs replayed.
func (l *Log) After(dst int, seq uint64) []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	ents := l.entries[dst]
	i := 0
	for i < len(ents) && ents[i].Seq <= seq {
		i++
	}
	out := make([]Entry, len(ents)-i)
	copy(out, ents[i:])
	return out
}

// Trim garbage-collects entries every receiver has acknowledged:
// acked[dst] is the highest sequence number dst reported as part of
// its committed checkpoint state; entries at or below it can never be
// requested again. Returns the number of entries and payload bytes
// released.
func (l *Log) Trim(acked []uint64) (entries, bytes int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for dst := 0; dst < l.n && dst < len(acked); dst++ {
		ents := l.entries[dst]
		i := 0
		for i < len(ents) && ents[i].Seq <= acked[dst] {
			bytes += len(ents[i].Data)
			i++
		}
		if i > 0 {
			l.entries[dst] = append([]Entry(nil), ents[i:]...)
			entries += i
		}
	}
	l.bytes -= bytes
	return entries, bytes
}

// SendSeqs returns a copy of the last assigned sequence number per
// destination — part of the rank's checkpointed runtime state.
func (l *Log) SendSeqs() []uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]uint64, l.n)
	copy(out, l.lastSeq)
	return out
}

// RestoreSendSeqs adopts checkpointed counters (a respawned rank
// restoring from its rebuilt shard): re-executed sends then reproduce
// the original sequence numbers, so receivers that already consumed
// them suppress the duplicates. The counters may come from a
// checkpoint taken under a smaller membership view; the common prefix
// is adopted and counters for ranks beyond the old world start at 0.
func (l *Log) RestoreSendSeqs(seqs []uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(seqs) > l.n {
		return fmt.Errorf("msglog: restoring %d counters into a log for %d ranks", len(seqs), l.n)
	}
	copy(l.lastSeq, seqs)
	for i := len(seqs); i < l.n; i++ {
		l.lastSeq[i] = 0
	}
	return nil
}

// Resize adapts the log to a new world size at a view-change fence.
// On grow, fresh destinations start with zero counters and empty
// logs; on shrink, entries and counters for retired ranks are
// dropped (nothing will ever request them again).
func (l *Log) Resize(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n == l.n {
		return
	}
	seqs := make([]uint64, n)
	ents := make([][]Entry, n)
	copy(seqs, l.lastSeq)
	for dst := 0; dst < n && dst < l.n; dst++ {
		ents[dst] = l.entries[dst]
	}
	for dst := n; dst < l.n; dst++ {
		for _, e := range l.entries[dst] {
			l.bytes -= len(e.Data)
		}
	}
	l.n, l.lastSeq, l.entries = n, seqs, ents
}

// Reset drops all entries and zeroes every counter — used when a
// local-mode run falls back to a global rollback (level-2 restore),
// after which every rank re-executes and regenerates all streams from
// scratch in lockstep.
func (l *Log) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := range l.entries {
		l.entries[i] = nil
		l.lastSeq[i] = 0
	}
	l.bytes = 0
}

// Stats returns the number of retained entries and payload bytes.
func (l *Log) Stats() (entries, bytes int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, ents := range l.entries {
		entries += len(ents)
	}
	return entries, l.bytes
}
