package runtime

import (
	"sync"
	"testing"
	"time"

	"fmi/internal/cluster"
	"fmi/internal/trace"
)

// TestRedundancy2SurvivesCorrelatedGroupKill is the tentpole's
// acceptance gate: with RS(k,2) redundancy, a correlated fault killing
// TWO nodes of the same checkpoint group in one event recovers from
// the in-memory shards alone — no level-2/PFS restore, no abort —
// which ring-XOR (m=1) cannot do (TestL2DisabledStillAborts).
func TestRedundancy2SurvivesCorrelatedGroupKill(t *testing.T) {
	var results sync.Map
	rec := trace.New()
	const ranks, iters = 4, 12
	rep, err := runWithFaults(t, Config{
		Ranks: ranks, ProcsPerNode: 1, SpareNodes: 4, Interval: 2,
		GroupSize: 4, Redundancy: 2, Trace: rec,
		Network: fastNet(), Timeout: 60 * time.Second, MaxEpochs: 32,
	}, []cluster.Fault{
		// Nodes 0 and 1 host group-mates; one event takes both.
		{AfterLoop: 5, Node: 0, CorrelatedNodes: []int{1}},
	}, checksumApp(iters, &results))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkResults(t, &results, ranks, iters)
	if rep.Stats.L2Restores != 0 || rec.Count(trace.KindL2Restore) != 0 {
		t.Fatal("two-loss recovery used the level-2 fallback; RS(k,2) should repair in memory")
	}
	if rec.Count(trace.KindAbort) != 0 {
		t.Fatal("job aborted")
	}
	if rec.Count(trace.KindShardRebuild) == 0 {
		t.Fatal("no shard-rebuild events: replacements did not recover from RS shards")
	}
	if rec.Count(trace.KindShardEncode) == 0 {
		t.Fatal("no shard-encode events recorded")
	}
	if rep.Stats.Restores == 0 {
		t.Fatal("no level-1 restores recorded")
	}
}

// Redundancy 3 in a group of 4 clamps to m'=3 (k=1) and survives a
// three-node correlated kill.
func TestRedundancy3SurvivesTripleKill(t *testing.T) {
	var results sync.Map
	const ranks, iters = 4, 10
	rep, err := runWithFaults(t, Config{
		Ranks: ranks, ProcsPerNode: 1, SpareNodes: 6, Interval: 2,
		GroupSize: 4, Redundancy: 3,
		Network: fastNet(), Timeout: 90 * time.Second, MaxEpochs: 64,
	}, []cluster.Fault{
		{AfterLoop: 4, Node: 0, CorrelatedNodes: []int{1, 2}},
	}, checksumApp(iters, &results))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkResults(t, &results, ranks, iters)
	if rep.Stats.L2Restores != 0 {
		t.Fatal("triple-loss recovery used the level-2 fallback")
	}
}

// Without enough redundancy the correlated kill still falls back to
// level 2 (or aborts when disabled) — the coder's tolerance, not the
// scheme name, gates level-1 feasibility.
func TestRedundancy2TripleKillFallsBackToL2(t *testing.T) {
	var results sync.Map
	const ranks, iters = 4, 12
	rep, err := runWithFaults(t, Config{
		Ranks: ranks, ProcsPerNode: 1, SpareNodes: 6, Interval: 2,
		GroupSize: 4, Redundancy: 2, L2Every: 1, SCR: fastSCR(),
		Network: fastNet(), Timeout: 90 * time.Second, MaxEpochs: 64,
	}, []cluster.Fault{
		{AfterLoop: 5, Node: 0, CorrelatedNodes: []int{1, 2}},
	}, checksumApp(iters, &results))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkResults(t, &results, ranks, iters)
	if rep.Stats.L2Restores == 0 {
		t.Fatal("3 losses with m=2 must use the level-2 fallback")
	}
}

// A rank in a singleton tail group has no redundancy under any coder;
// losing it must fall back to level 2 rather than wedging or silently
// corrupting (documented on ckpt.Groups).
func TestSingletonGroupFallsBackToL2(t *testing.T) {
	var results sync.Map
	rec := trace.New()
	const ranks, iters = 3, 10
	// GroupSize 2 over 3 single-rank nodes leaves rank 2 in a
	// singleton group.
	rep, err := runWithFaults(t, Config{
		Ranks: ranks, ProcsPerNode: 1, SpareNodes: 3, Interval: 2,
		GroupSize: 2, Redundancy: 2, L2Every: 1, SCR: fastSCR(), Trace: rec,
		Network: fastNet(), Timeout: 60 * time.Second, MaxEpochs: 32,
	}, []cluster.Fault{
		{AfterLoop: 5, Node: 2},
	}, checksumApp(iters, &results))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkResults(t, &results, ranks, iters)
	if rep.Stats.L2Restores == 0 || rec.Count(trace.KindL2Restore) == 0 {
		t.Fatal("singleton-group loss did not fall back to level 2")
	}
}

// Redundancy left at the default must keep the seed behaviour: a
// single-node failure recovers over the XOR ring, level-1 only.
func TestRedundancyDefaultIsXOR(t *testing.T) {
	var results sync.Map
	rec := trace.New()
	const ranks, iters = 4, 10
	rep, err := runWithFaults(t, Config{
		Ranks: ranks, ProcsPerNode: 1, SpareNodes: 1, Interval: 2,
		GroupSize: 4, Trace: rec,
		Network: fastNet(), Timeout: 60 * time.Second,
	}, []cluster.Fault{{AfterLoop: 5, Node: 1}}, checksumApp(iters, &results))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkResults(t, &results, ranks, iters)
	if rep.Stats.L2Restores != 0 {
		t.Fatal("level-2 used for a single XOR-recoverable loss")
	}
	evs := rec.Events()
	sawXOR := false
	for _, e := range evs {
		if e.Kind == trace.KindShardRebuild || e.Kind == trace.KindShardEncode {
			if len(e.Note) < 3 || e.Note[:3] != "xor" {
				t.Fatalf("default redundancy produced non-xor event: %q", e.Note)
			}
			sawXOR = true
		}
	}
	if !sawXOR {
		t.Fatal("no shard events recorded")
	}
}
