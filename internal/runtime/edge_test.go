package runtime

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fmi/internal/cluster"
	"fmi/internal/core"
	"fmi/internal/transport"
)

func TestFailureBeforeFirstCheckpoint(t *testing.T) {
	// Kill a node while ranks are still in their pre-Loop phase: no
	// checkpoint exists, so the negotiation takes the fresh-start path
	// and the job completes with the right answer anyway.
	var results sync.Map
	const ranks, iters = 4, 6
	gate := make(chan struct{})
	var fired sync.Once
	app := func(p *core.Proc) error {
		// Hold everyone in the init phase until the fault fires.
		<-gate
		state := make([]byte, 16)
		world := p.World()
		for {
			n := p.Loop([][]byte{state})
			if n >= iters {
				break
			}
			contrib := make([]byte, 8)
			binary.LittleEndian.PutUint64(contrib, uint64(n+p.Rank()+1))
			sum, err := world.Allreduce(contrib, sumOp)
			if err != nil {
				continue
			}
			cs := binary.LittleEndian.Uint64(state[8:]) + binary.LittleEndian.Uint64(sum)*uint64(n+1)
			binary.LittleEndian.PutUint64(state[8:], cs)
			binary.LittleEndian.PutUint64(state[0:], uint64(n+1))
		}
		results.Store(p.Rank(), binary.LittleEndian.Uint64(state[8:]))
		return p.Finalize()
	}
	clu := cluster.New(5)
	j, err := Launch(Config{
		Ranks: ranks, ProcsPerNode: 1, SpareNodes: 1, Interval: 2,
		GroupSize: 4, Cluster: clu, Network: fastNet(),
		Timeout: 60 * time.Second,
	}, app)
	if err != nil {
		t.Fatal(err)
	}
	// Fail node 2 before anyone passes the gate, then release.
	fired.Do(func() {
		clu.Node(2).Fail()
		time.Sleep(20 * time.Millisecond)
		close(gate)
	})
	if _, err := j.Wait(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkResults(t, &results, ranks, iters)
}

func TestStressManyRanksMultipleFailures(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test in -short mode")
	}
	var results sync.Map
	const ranks, iters = 48, 14
	rep, err := runWithFaults(t, Config{
		Ranks: ranks, ProcsPerNode: 4, SpareNodes: 4, Interval: 2,
		GroupSize: 4, Network: fastNet(), Timeout: 120 * time.Second,
	}, []cluster.Fault{
		{AfterLoop: 3, Node: -1, Rank: 5},
		{AfterLoop: 6, Node: -1, Rank: 20},
		{AfterLoop: 9, Node: -1, Rank: 33},
		{AfterLoop: 12, Node: -1, Rank: 47},
	}, checksumApp(iters, &results))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkResults(t, &results, ranks, iters)
	if rep.Epochs != 4 {
		t.Fatalf("epochs = %d, want 4", rep.Epochs)
	}
}

func TestRecoveryOverTCPTransport(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp recovery in -short mode")
	}
	var results sync.Map
	const ranks, iters = 4, 10
	rep, err := runWithFaults(t, Config{
		Ranks: ranks, ProcsPerNode: 1, SpareNodes: 1, Interval: 2,
		GroupSize: 4,
		Network:   transport.NewTCPNetwork(transport.Options{}),
		Timeout:   60 * time.Second,
	}, []cluster.Fault{{AfterLoop: 5, Node: -1, Rank: 1}}, checksumApp(iters, &results))
	if err != nil {
		t.Fatalf("Run over TCP: %v", err)
	}
	checkResults(t, &results, ranks, iters)
	if rep.Epochs != 1 {
		t.Fatalf("epochs = %d, want 1", rep.Epochs)
	}
}

func TestTwoFailuresDifferentGroupsSimultaneous(t *testing.T) {
	// Two nodes die at (nearly) the same moment but in different XOR
	// groups: level-1 recovery must handle both, possibly via a
	// retried recovery round.
	var results sync.Map
	const ranks, iters = 8, 12
	rep, err := runWithFaults(t, Config{
		Ranks: ranks, ProcsPerNode: 1, SpareNodes: 3, Interval: 2,
		GroupSize: 4, Network: fastNet(), Timeout: 90 * time.Second, MaxEpochs: 32,
	}, []cluster.Fault{
		// Nodes 0..3 host group {0,1,2,3}; nodes 4..7 host {4,5,6,7}.
		{AfterLoop: 5, Node: 1},
		{AfterLoop: 5, Node: 6},
	}, checksumApp(iters, &results))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkResults(t, &results, ranks, iters)
	if rep.Epochs < 2 {
		t.Fatalf("epochs = %d, want >= 2", rep.Epochs)
	}
}

func TestSpareConsumptionAccounting(t *testing.T) {
	var results sync.Map
	rep, err := runWithFaults(t, Config{
		Ranks: 4, ProcsPerNode: 2, SpareNodes: 2, Interval: 2,
		GroupSize: 2, Network: fastNet(), Timeout: 60 * time.Second,
	}, []cluster.Fault{
		{AfterLoop: 3, Node: -1, Rank: 0},
		{AfterLoop: 6, Node: -1, Rank: 3},
	}, checksumApp(10, &results))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.SparesConsumed != 2 {
		t.Fatalf("spares = %d, want 2", rep.SparesConsumed)
	}
	// Note: LostIterations may legitimately be 0 here if a failure
	// lands during a checkpoint wave (the rollback then targets the
	// just-committed id); the deterministic accounting check lives in
	// TestLostIterationAccounting.
}

func TestLostIterationAccounting(t *testing.T) {
	// Interval 4, failure triggered at loop 6: checkpoints exist at 0
	// and 4 only, so every survivor discards 1-2 completed iterations
	// and the counter must be positive.
	var results sync.Map
	rep, err := runWithFaults(t, Config{
		Ranks: 4, ProcsPerNode: 1, SpareNodes: 1, Interval: 4,
		GroupSize: 4, Network: fastNet(), Timeout: 60 * time.Second,
	}, []cluster.Fault{{AfterLoop: 6, Node: -1, Rank: 3}}, checksumApp(10, &results))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkResults(t, &results, 4, 10)
	if rep.Stats.LostIterations == 0 {
		t.Fatal("rollback past completed iterations must report lost work")
	}
}

func TestReportLoopTracksProgress(t *testing.T) {
	var results sync.Map
	rep, err := Run(Config{
		Ranks: 2, Interval: 3, Network: fastNet(), Timeout: 30 * time.Second,
	}, checksumApp(7, &results))
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxLoopID != 7 {
		t.Fatalf("MaxLoopID = %d, want 7", rep.MaxLoopID)
	}
}

func TestDynamicNodeJoin(t *testing.T) {
	// Paper §III-A: nodes can join the job dynamically. Start with no
	// spares and provisioning disabled; a node added at runtime is the
	// only way the injected failure can be survived.
	var results sync.Map
	const ranks, iters = 4, 10
	clu := cluster.New(4)
	rm := cluster.NewResourceManager(clu, nil)
	rm.Provision = false
	var jref atomic.Pointer[Job]
	var once sync.Once
	cfg := Config{
		Ranks: ranks, ProcsPerNode: 1, Interval: 2, GroupSize: 4,
		Cluster: clu, RM: rm, Network: fastNet(), Timeout: 60 * time.Second,
		OnLoop: func(rank, loopID int) {
			if loopID == 4 {
				if j := jref.Load(); j != nil {
					once.Do(func() {
						j.AddSpareNode() // the dynamic join
						go clu.Node(2).Fail()
					})
				}
			}
		},
	}
	j, err := Launch(cfg, checksumApp(iters, &results))
	if err != nil {
		t.Fatal(err)
	}
	jref.Store(j)
	rep, err := j.Wait()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkResults(t, &results, ranks, iters)
	if rep.SparesConsumed != 1 {
		t.Fatalf("spares = %d, want the dynamically joined node", rep.SparesConsumed)
	}
}
