package runtime

import (
	"encoding/binary"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fmi/internal/cluster"
	"fmi/internal/core"
	"fmi/internal/transport"
)

// fastNet returns a chan network with millisecond-scale failure
// observation (the real default is the ibverbs-like 200 ms).
func fastNet() transport.Network {
	return transport.NewChanNetwork(transport.Options{
		DetectDelay: 2 * time.Millisecond,
		PropDelay:   time.Millisecond,
	})
}

func sumOp(acc, src []byte) {
	for i := 0; i+8 <= len(acc); i += 8 {
		binary.LittleEndian.PutUint64(acc[i:], binary.LittleEndian.Uint64(acc[i:])+binary.LittleEndian.Uint64(src[i:]))
	}
}

// checksumApp is the canonical deterministic test application: each
// iteration all ranks contribute (n + rank + 1) to an Allreduce and
// fold the sum into a running checksum that is checkpointed through
// Loop. Any rollback inconsistency corrupts the final checksum.
func checksumApp(iters int, results *sync.Map) App {
	return func(p *core.Proc) error {
		state := make([]byte, 16) // [0:8] next iteration, [8:16] checksum
		world := p.World()
		for {
			n := p.Loop([][]byte{state})
			if n >= iters {
				break
			}
			contrib := make([]byte, 8)
			binary.LittleEndian.PutUint64(contrib, uint64(n+p.Rank()+1))
			sum, err := world.Allreduce(contrib, sumOp)
			if err != nil {
				continue // failure: next Loop call recovers
			}
			cs := binary.LittleEndian.Uint64(state[8:]) + binary.LittleEndian.Uint64(sum)*uint64(n+1)
			binary.LittleEndian.PutUint64(state[8:], cs)
			binary.LittleEndian.PutUint64(state[0:], uint64(n+1))
		}
		results.Store(p.Rank(), binary.LittleEndian.Uint64(state[8:]))
		return p.Finalize()
	}
}

// expectedChecksum is what every rank must end with.
func expectedChecksum(ranks, iters int) uint64 {
	var cs uint64
	for n := 0; n < iters; n++ {
		var sum uint64
		for r := 0; r < ranks; r++ {
			sum += uint64(n + r + 1)
		}
		cs += sum * uint64(n+1)
	}
	return cs
}

func checkResults(t *testing.T, results *sync.Map, ranks, iters int) {
	t.Helper()
	want := expectedChecksum(ranks, iters)
	count := 0
	results.Range(func(k, v any) bool {
		count++
		if v.(uint64) != want {
			t.Errorf("rank %v checksum = %d, want %d", k, v, want)
		}
		return true
	})
	if count != ranks {
		t.Fatalf("results from %d ranks, want %d", count, ranks)
	}
}

func TestFailureFreeRun(t *testing.T) {
	var results sync.Map
	rep, err := Run(Config{
		Ranks: 8, ProcsPerNode: 2, Interval: 3,
		Network: fastNet(), Timeout: 30 * time.Second,
	}, checksumApp(10, &results))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkResults(t, &results, 8, 10)
	if rep.Epochs != 0 {
		t.Fatalf("epochs = %d, want 0", rep.Epochs)
	}
	if rep.Stats.Checkpoints == 0 {
		t.Fatal("no checkpoints recorded")
	}
}

func TestSingleRankJob(t *testing.T) {
	var results sync.Map
	_, err := Run(Config{
		Ranks: 1, Interval: 2, Network: fastNet(), Timeout: 20 * time.Second,
	}, checksumApp(5, &results))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkResults(t, &results, 1, 5)
}

// runWithFaults launches a job with a scripted fault plan wired
// through the loop-report hook.
func runWithFaults(t *testing.T, cfg Config, faults []cluster.Fault, app App) (*Report, error) {
	t.Helper()
	nodes := (cfg.Ranks+cfg.ProcsPerNode-1)/max(cfg.ProcsPerNode, 1) + cfg.SpareNodes
	clu := cluster.New(nodes)
	cfg.Cluster = clu
	var jref atomic.Pointer[Job]
	inj := cluster.NewInjector(clu,
		func(rank int) *cluster.Node {
			if j := jref.Load(); j != nil {
				return j.NodeOfRank(rank)
			}
			return nil
		},
		func() []*cluster.Node {
			if j := jref.Load(); j != nil {
				return j.ActiveNodes()
			}
			return nil
		}, 1)
	inj.SetScript(faults)
	cfg.OnLoop = inj.OnLoop
	j, err := Launch(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	jref.Store(j)
	inj.Start()
	defer inj.Stop()
	return j.Wait()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestRecoverySingleNodeFailure(t *testing.T) {
	var results sync.Map
	const ranks, iters = 8, 12
	rep, err := runWithFaults(t, Config{
		Ranks: ranks, ProcsPerNode: 2, SpareNodes: 1, Interval: 2,
		GroupSize: 4, Network: fastNet(), Timeout: 30 * time.Second,
	}, []cluster.Fault{
		{AfterLoop: 5, Node: -1, Rank: 2}, // kill the node hosting rank 2
	}, checksumApp(iters, &results))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkResults(t, &results, ranks, iters)
	if rep.Epochs != 1 {
		t.Fatalf("epochs = %d, want 1", rep.Epochs)
	}
	if rep.SparesConsumed != 1 {
		t.Fatalf("spares = %d, want 1", rep.SparesConsumed)
	}
	if rep.Stats.Restores == 0 {
		t.Fatal("no restores recorded")
	}
}

func TestRecoveryRollsBackToLastCheckpoint(t *testing.T) {
	// Interval 4, failure after loop 6: recovery must roll back to the
	// checkpoint at loop 4 (ids 0,4,8 are checkpointed).
	var mu sync.Mutex
	restored := -1
	app := func(p *core.Proc) error {
		state := make([]byte, 8)
		world := p.World()
		prev := -1
		for {
			n := p.Loop([][]byte{state})
			if prev >= 0 && n <= prev && p.Rank() == 0 {
				mu.Lock()
				restored = n
				mu.Unlock()
			}
			prev = n
			if n >= 10 {
				break
			}
			contrib := make([]byte, 8)
			if _, err := world.Allreduce(contrib, sumOp); err != nil {
				continue
			}
			binary.LittleEndian.PutUint64(state, uint64(n+1))
		}
		return p.Finalize()
	}
	_, err := runWithFaults(t, Config{
		Ranks: 4, ProcsPerNode: 1, SpareNodes: 1, Interval: 4,
		GroupSize: 4, Network: fastNet(), Timeout: 30 * time.Second,
	}, []cluster.Fault{{AfterLoop: 6, Node: -1, Rank: 3}}, app)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if restored != 4 {
		t.Fatalf("rolled back to loop %d, want 4 (paper Fig 4 semantics)", restored)
	}
}

func TestRecoveryMultipleSequentialFailures(t *testing.T) {
	var results sync.Map
	const ranks, iters = 8, 16
	rep, err := runWithFaults(t, Config{
		Ranks: ranks, ProcsPerNode: 2, SpareNodes: 2, Interval: 2,
		GroupSize: 4, Network: fastNet(), Timeout: 60 * time.Second,
	}, []cluster.Fault{
		{AfterLoop: 4, Node: -1, Rank: 1},
		{AfterLoop: 9, Node: -1, Rank: 6},
	}, checksumApp(iters, &results))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkResults(t, &results, ranks, iters)
	if rep.Epochs != 2 {
		t.Fatalf("epochs = %d, want 2", rep.Epochs)
	}
}

func TestRecoveryFailureOfReplacementNode(t *testing.T) {
	// The second failure targets the rank that was already replaced
	// once: its new node must be replaced again.
	var results sync.Map
	const ranks, iters = 4, 14
	rep, err := runWithFaults(t, Config{
		Ranks: ranks, ProcsPerNode: 1, SpareNodes: 2, Interval: 2,
		GroupSize: 4, Network: fastNet(), Timeout: 60 * time.Second,
	}, []cluster.Fault{
		{AfterLoop: 4, Node: -1, Rank: 2},
		{AfterLoop: 9, Node: -1, Rank: 2},
	}, checksumApp(iters, &results))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkResults(t, &results, ranks, iters)
	if rep.SparesConsumed != 2 {
		t.Fatalf("spares = %d, want 2", rep.SparesConsumed)
	}
}

func TestProcOnlyFailureKillsWholeNode(t *testing.T) {
	// Paper §IV-B: if a child dies, fmirun.task kills its siblings and
	// the whole node's ranks are respawned elsewhere.
	var results sync.Map
	const ranks, iters = 8, 10
	rep, err := runWithFaults(t, Config{
		Ranks: ranks, ProcsPerNode: 2, SpareNodes: 1, Interval: 2,
		GroupSize: 4, Network: fastNet(), Timeout: 30 * time.Second,
	}, []cluster.Fault{
		{AfterLoop: 4, Node: -1, Rank: 5, ProcOnly: true},
	}, checksumApp(iters, &results))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkResults(t, &results, ranks, iters)
	if rep.Epochs != 1 {
		t.Fatalf("epochs = %d, want 1", rep.Epochs)
	}
}

func TestUnrecoverableTwoNodesInGroup(t *testing.T) {
	// Two nodes of the same XOR group die at once: level-1 C/R cannot
	// recover (paper §VIII) and the job must abort.
	var results sync.Map
	_, err := runWithFaults(t, Config{
		Ranks: 4, ProcsPerNode: 1, SpareNodes: 2, Interval: 2,
		GroupSize: 4, Network: fastNet(), Timeout: 30 * time.Second,
		MaxEpochs: 16,
	}, []cluster.Fault{
		{AfterLoop: 4, Node: 0},
		{AfterLoop: 4, Node: 1},
	}, checksumApp(10, &results))
	if err == nil {
		t.Fatal("job with two losses in one XOR group should abort")
	}
}

func TestProvisioningWhenSparesExhausted(t *testing.T) {
	var results sync.Map
	const ranks, iters = 4, 10
	rep, err := runWithFaults(t, Config{
		Ranks: ranks, ProcsPerNode: 1, SpareNodes: 0, Interval: 2,
		GroupSize: 4, Network: fastNet(), Timeout: 30 * time.Second,
	}, []cluster.Fault{{AfterLoop: 4, Node: -1, Rank: 0}}, checksumApp(iters, &results))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkResults(t, &results, ranks, iters)
	if rep.SparesConsumed != 1 {
		t.Fatalf("allocated = %d, want 1 provisioned node", rep.SparesConsumed)
	}
}

func TestVaidyaAutoTune(t *testing.T) {
	// With auto-tuning enabled (Interval=0, MTBF set), the job runs
	// and takes fewer checkpoints than iterations.
	var results sync.Map
	rep, err := Run(Config{
		Ranks: 4, ProcsPerNode: 1, Interval: 0, MTBF: time.Minute,
		GroupSize: 4, Network: fastNet(), Timeout: 30 * time.Second,
	}, func(p *core.Proc) error {
		state := make([]byte, 8)
		for {
			n := p.Loop([][]byte{state})
			if n >= 30 {
				break
			}
			time.Sleep(time.Millisecond) // give Vaidya something to measure
			binary.LittleEndian.PutUint64(state, uint64(n+1))
		}
		results.Store(p.Rank(), binary.LittleEndian.Uint64(state))
		return p.Finalize()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	perRank := rep.Stats.Checkpoints / 4
	if perRank >= 30 || perRank < 1 {
		t.Fatalf("checkpoints per rank = %d, want tuned below one-per-iteration", perRank)
	}
}

func TestDupAndSplitSurviveFailure(t *testing.T) {
	// Communicators created before the loop must keep working across a
	// failure (transparent communicator recovery, paper Fig 8).
	var results sync.Map
	const ranks, iters = 8, 10
	app := func(p *core.Proc) error {
		world := p.World()
		dup, err := world.Dup()
		if err != nil {
			return err
		}
		// Split into even/odd halves like Fig 8.
		half, err := dup.Split(p.Rank()%2, p.Rank())
		if err != nil {
			return err
		}
		state := make([]byte, 8)
		var acc uint64
		for {
			n := p.Loop([][]byte{state})
			if n >= iters {
				break
			}
			acc = binary.LittleEndian.Uint64(state)
			contrib := make([]byte, 8)
			binary.LittleEndian.PutUint64(contrib, uint64(n+1))
			sum, err := half.Allreduce(contrib, sumOp)
			if err != nil {
				continue
			}
			acc += binary.LittleEndian.Uint64(sum)
			binary.LittleEndian.PutUint64(state, acc)
		}
		results.Store(p.Rank(), binary.LittleEndian.Uint64(state))
		return p.Finalize()
	}
	_, err := runWithFaults(t, Config{
		Ranks: ranks, ProcsPerNode: 2, SpareNodes: 1, Interval: 2,
		GroupSize: 4, Network: fastNet(), Timeout: 30 * time.Second,
	}, []cluster.Fault{{AfterLoop: 5, Node: -1, Rank: 3}}, app)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Each half has 4 ranks contributing (n+1): sum = 4*(n+1).
	var want uint64
	for n := 0; n < iters; n++ {
		want += 4 * uint64(n+1)
	}
	count := 0
	results.Range(func(k, v any) bool {
		count++
		if v.(uint64) != want {
			t.Errorf("rank %v: got %d, want %d", k, v, want)
		}
		return true
	})
	if count != ranks {
		t.Fatalf("got %d results", count)
	}
}

func TestPointToPointThroughJob(t *testing.T) {
	// Simple ring exchange with p2p Send/Recv under a failure.
	var results sync.Map
	const ranks, iters = 4, 10
	app := func(p *core.Proc) error {
		world := p.World()
		state := make([]byte, 8)
		for {
			n := p.Loop([][]byte{state})
			if n >= iters {
				break
			}
			right := (p.Rank() + 1) % ranks
			left := (p.Rank() - 1 + ranks) % ranks
			payload := make([]byte, 8)
			binary.LittleEndian.PutUint64(payload, uint64(n*100+p.Rank()))
			got, err := world.Sendrecv(right, 7, payload, left, 7)
			if err != nil {
				continue
			}
			acc := binary.LittleEndian.Uint64(state) + binary.LittleEndian.Uint64(got)
			binary.LittleEndian.PutUint64(state, acc)
			// A barrier keeps iteration lockstep so stale-epoch
			// messages cannot masquerade as fresh ones.
			if err := world.Barrier(); err != nil {
				continue
			}
		}
		results.Store(p.Rank(), binary.LittleEndian.Uint64(state))
		return p.Finalize()
	}
	_, err := runWithFaults(t, Config{
		Ranks: ranks, ProcsPerNode: 1, SpareNodes: 1, Interval: 3,
		GroupSize: 4, Network: fastNet(), Timeout: 30 * time.Second,
	}, []cluster.Fault{{AfterLoop: 5, Node: -1, Rank: 1}}, app)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	count := 0
	results.Range(func(k, v any) bool {
		r := k.(int)
		left := (r - 1 + ranks) % ranks
		var want uint64
		for n := 0; n < iters; n++ {
			want += uint64(n*100 + left)
		}
		if v.(uint64) != want {
			t.Errorf("rank %d: got %d, want %d", r, v, want)
		}
		count++
		return true
	})
	if count != ranks {
		t.Fatalf("got %d results", count)
	}
}

func TestAbortOnTimeout(t *testing.T) {
	_, err := Run(Config{
		Ranks: 2, Network: fastNet(), Timeout: 200 * time.Millisecond,
	}, func(p *core.Proc) error {
		state := make([]byte, 8)
		for {
			p.Loop([][]byte{state})
			time.Sleep(10 * time.Millisecond)
		}
	})
	if !errors.Is(err, ErrJobAborted) {
		t.Fatalf("err = %v, want ErrJobAborted", err)
	}
}

func TestTCPTransportEndToEnd(t *testing.T) {
	var results sync.Map
	_, err := Run(Config{
		Ranks: 4, ProcsPerNode: 2, Interval: 2,
		Network: transport.NewTCPNetwork(transport.Options{}),
		Timeout: 30 * time.Second,
	}, checksumApp(6, &results))
	if err != nil {
		t.Fatalf("Run over TCP: %v", err)
	}
	checkResults(t, &results, 4, 6)
}
