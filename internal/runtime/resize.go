package runtime

// Online grow/shrink reconfiguration: the two-phase quiescent fence
// that commits a new membership view without restarting the job.
//
// Phase 1 (ack): RequestResize arms a resizeState and (for a grow)
// provisions the new nodes in the background. Every live rank — and,
// in replica mode, every live synced shadow — keeps running, but
// reports its current loop iteration through JoinResize at each Loop
// top. Once provisioning is done and every participant has acked, the
// fence cut is decided: cutLoop = max(acked loop ids) + 1, the first
// iteration nobody has started yet.
//
// Phase 2 (park): a rank reaching cutLoop parks inside JoinResize.
// When every live rank (and synced shadow) is parked the job is
// quiescent — no data-plane message is in flight between iterations —
// and commitResize installs the successor view: epoch bump (to
// supersede stale rendezvous keys), new rank/node tables, retired
// ranks killed (shrink) or joiners spawned (grow), and the parked
// survivors released with the new view to re-derive their schedules
// and take an immediate view-stamped checkpoint over the new groups.
//
// A node failure before the commit point aborts the fence (parked
// ranks are released to recover under the old view; acks re-collect
// once recovery settles). A failure after the commit point is an
// ordinary failure in the new view.

import (
	"errors"
	"fmt"

	"fmi/internal/cluster"
	"fmi/internal/core"
	"fmi/internal/trace"
	"fmi/internal/view"
)

// errFenceAborted releases parked fence waiters when the fence is torn
// down before committing; JoinResize converts it to a plain Proceed.
var errFenceAborted = errors.New("fmirun: resize fence aborted")

// fenceResult is what a parked rank receives when the fence resolves.
type fenceResult struct {
	view    *view.View
	retired bool
	err     error
}

// fenceWaiter parks one rank (or shadow observer) at the fence cut.
type fenceWaiter struct {
	ch chan fenceResult // buffered(1): delivery never blocks under j.mu
}

// resizeState is one armed view-change fence (guarded by Job.mu).
type resizeState struct {
	ticket         uint64
	target         int
	provisioned    bool            // grow nodes allocated (always true for shrink)
	newNodes       []*cluster.Node // grow: nodes backing the new machinefile slots
	newShadowNodes []*cluster.Node // grow+replica: one shadow node per new rank
	acks           map[int]int     // live participant rank -> last acked loop id
	obsAcks        map[int]int     // live synced-shadow rank -> last acked loop id
	cutLoop        int             // fence iteration; -1 until decided
	arrived        map[int]*fenceWaiter
	obsArrived     map[int]*fenceWaiter
	committing     bool
	resCh          chan error // buffered(1): receives the terminal outcome once
}

// CurrentView implements core.ViewControl.
func (j *Job) CurrentView() *view.View {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.view
}

// ResizePending implements core.ViewControl: the armed fence's ticket,
// or 0 when no resize is in flight.
func (j *Job) ResizePending() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.resize == nil {
		return 0
	}
	return j.resize.ticket
}

// JoinResize implements core.ViewControl. Ranks call it at the top of
// every Loop iteration while a fence is armed; synced shadows call it
// with observer=true. Before the cut is decided (or below the cut) it
// records an ack and returns Proceed; at or above the cut it parks the
// caller until the fence commits or aborts.
func (j *Job) JoinResize(ticket uint64, rank, loopID int, observer bool, cancel <-chan struct{}) (core.ResizeOutcome, error) {
	j.mu.Lock()
	rs := j.resize
	if rs == nil || rs.ticket != ticket || rs.committing {
		j.mu.Unlock()
		return core.ResizeOutcome{Proceed: true}, nil
	}
	if rs.cutLoop < 0 || loopID < rs.cutLoop {
		// Phase 1: ack and keep running. The cut is max(acks)+1, so the
		// ack that completes the set still satisfies loopID < cutLoop.
		if observer {
			rs.obsAcks[rank] = loopID
		} else {
			rs.acks[rank] = loopID
		}
		j.maybeDecideCutLocked(rs)
		j.mu.Unlock()
		return core.ResizeOutcome{Proceed: true}, nil
	}
	// Phase 2: park at the fence.
	w := &fenceWaiter{ch: make(chan fenceResult, 1)}
	if observer {
		rs.obsArrived[rank] = w
	} else {
		rs.arrived[rank] = w
	}
	j.maybeCommitLocked(rs)
	j.mu.Unlock()
	select {
	case res := <-w.ch:
		if res.err != nil {
			if errors.Is(res.err, errFenceAborted) {
				return core.ResizeOutcome{Proceed: true}, nil
			}
			return core.ResizeOutcome{}, res.err
		}
		if res.retired {
			return core.ResizeOutcome{Retired: true}, nil
		}
		return core.ResizeOutcome{View: res.view}, nil
	case <-cancel:
		// The parked process was killed (its node died; the failure
		// report aborts the fence separately). Withdraw the arrival so a
		// later commit cannot deliver into the void.
		j.mu.Lock()
		if j.resize == rs {
			if observer {
				if rs.obsArrived[rank] == w {
					delete(rs.obsArrived, rank)
				}
			} else if rs.arrived[rank] == w {
				delete(rs.arrived, rank)
			}
		}
		j.mu.Unlock()
		return core.ResizeOutcome{}, core.ErrKilled
	case <-j.abortCh:
		return core.ResizeOutcome{}, ErrJobAborted
	}
}

// RequestResize implements core.ViewControl: arm a resize and return
// immediately; the outcome is traced. Applications call it through
// Env.Resize, the job service through its HTTP surface.
func (j *Job) RequestResize(n int) error {
	ch, err := j.startResize(n)
	if err != nil || ch == nil {
		return err
	}
	go func() {
		select {
		case err := <-ch:
			if err != nil {
				j.cfg.Trace.Add(trace.KindViewChange, -1, 0, "resize to %d ranks failed: %v", n, err)
			}
		case <-j.abortCh:
		case <-j.finCh:
		}
	}()
	return nil
}

// Resize arms a resize to n ranks and blocks until the new view
// commits (nil), the resize fails, or the job ends.
func (j *Job) Resize(n int) error {
	ch, err := j.startResize(n)
	if err != nil || ch == nil {
		return err
	}
	select {
	case err := <-ch:
		return err
	case <-j.abortCh:
		return ErrJobAborted
	case <-j.doneCh:
		return fmt.Errorf("fmirun: job completed before resize to %d ranks", n)
	}
}

// startResize validates and arms a fence. Returns (nil, nil) when the
// target equals the current world size (no-op).
func (j *Job) startResize(target int) (chan error, error) {
	if !j.cfg.Elastic {
		return nil, fmt.Errorf("fmirun: job is not elastic (set Config.Elastic to enable online resize)")
	}
	if target <= 0 {
		return nil, fmt.Errorf("fmirun: resize target must be positive (got %d)", target)
	}
	j.mu.Lock()
	select {
	case <-j.abortCh:
		j.mu.Unlock()
		return nil, ErrJobAborted
	case <-j.doneCh:
		j.mu.Unlock()
		return nil, fmt.Errorf("fmirun: job already completed")
	default:
	}
	if j.finalizing {
		j.mu.Unlock()
		return nil, fmt.Errorf("fmirun: job is finalizing; resize rejected")
	}
	if j.resize != nil {
		j.mu.Unlock()
		return nil, fmt.Errorf("fmirun: a resize is already in progress")
	}
	oldN := len(j.rankDone)
	if target == oldN {
		j.mu.Unlock()
		return nil, nil
	}
	j.ticketSeq++
	rs := &resizeState{
		ticket:     j.ticketSeq,
		target:     target,
		cutLoop:    -1,
		acks:       make(map[int]int),
		obsAcks:    make(map[int]int),
		arrived:    make(map[int]*fenceWaiter),
		obsArrived: make(map[int]*fenceWaiter),
		resCh:      make(chan error, 1),
	}
	if target < oldN {
		rs.provisioned = true // shrink needs no new nodes
	}
	j.resize = rs
	j.mu.Unlock()
	j.cfg.Trace.Add(trace.KindViewChange, -1, j.Epoch(), "resize armed: %d -> %d ranks (ticket %d)", oldN, target, rs.ticket)
	if target > oldN {
		go j.provisionForResize(rs, oldN, target)
	}
	return rs.resCh, nil
}

// provisionForResize allocates the nodes a grow needs before the fence
// cut can be decided: one node per new machinefile slot, plus (replica
// mode) one anti-affine shadow node per new rank.
func (j *Job) provisionForResize(rs *resizeState, oldN, target int) {
	ppn := j.cfg.ProcsPerNode
	newSlots := (target-1)/ppn - (oldN-1)/ppn
	var nodes, shadows []*cluster.Node
	release := func() {
		for _, nd := range nodes {
			j.rm.AddSpare(nd)
		}
		for _, nd := range shadows {
			j.rm.AddSpare(nd)
		}
	}
	fail := func(err error) {
		j.mu.Lock()
		if j.resize == rs {
			j.resize = nil
			rs.resCh <- fmt.Errorf("fmirun: resize provisioning: %w", err)
		}
		j.mu.Unlock()
		release()
	}
	for i := 0; i < newSlots; i++ {
		nd, err := j.rm.Allocate(j.abortCh)
		if err != nil {
			fail(err)
			return
		}
		nodes = append(nodes, nd)
	}
	if j.rep != nil && j.rep.reg.Active() {
		// ProcsPerNode == 1 in replica mode: one new slot per new rank.
		for i := 0; i < len(nodes); i++ {
			nd, err := j.rm.AllocateAvoiding(j.abortCh, nodes[i].ID)
			if err != nil {
				fail(err)
				return
			}
			shadows = append(shadows, nd)
		}
	}
	j.mu.Lock()
	if j.resize != rs {
		j.mu.Unlock()
		release() // fence was torn down while we were allocating
		return
	}
	j.spareUsed += len(nodes) + len(shadows)
	rs.newNodes, rs.newShadowNodes = nodes, shadows
	rs.provisioned = true
	j.maybeDecideCutLocked(rs)
	j.maybeCommitLocked(rs)
	j.mu.Unlock()
	j.cfg.Trace.Add(trace.KindViewChange, -1, j.Epoch(), "resize to %d: %d nodes provisioned", target, len(nodes)+len(shadows))
}

// maybeDecideCutLocked decides the fence cut once provisioning is done
// and every live participant (and live synced shadow) has acked.
// Caller holds j.mu.
func (j *Job) maybeDecideCutLocked(rs *resizeState) {
	if rs.cutLoop >= 0 || !rs.provisioned || rs.committing || j.resize != rs {
		return
	}
	maxLoop := -1
	for r := 0; r < len(j.rankDone); r++ {
		if j.rankDone[r] {
			continue
		}
		l, ok := rs.acks[r]
		if !ok {
			return
		}
		if l > maxLoop {
			maxLoop = l
		}
	}
	if j.rep != nil && j.rep.reg.Active() {
		for r := 0; r < len(j.rankDone); r++ {
			if j.rankDone[r] {
				continue
			}
			if has, synced, _ := j.rep.reg.ShadowState(r); has && synced {
				l, ok := rs.obsAcks[r]
				if !ok {
					return
				}
				if l > maxLoop {
					maxLoop = l
				}
			}
		}
	}
	rs.cutLoop = maxLoop + 1
	j.cfg.Trace.Add(trace.KindViewChange, -1, j.epoch, "resize to %d: fence cut at loop %d", rs.target, rs.cutLoop)
}

// maybeCommitLocked fires the commit once the cut is decided and every
// live rank — and every synced shadow — is parked at it. A shadow with
// a sync snapshot in flight (registered, not yet synced, request
// already taken) blocks the commit: it is about to go lockstep and
// must cross the fence with its primary. Caller holds j.mu.
func (j *Job) maybeCommitLocked(rs *resizeState) {
	if rs.cutLoop < 0 || rs.committing || j.resize != rs {
		return
	}
	for r := 0; r < len(j.rankDone); r++ {
		if j.rankDone[r] {
			continue
		}
		if rs.arrived[r] == nil {
			return
		}
	}
	if j.rep != nil && j.rep.reg.Active() {
		for r := 0; r < len(j.rankDone); r++ {
			if j.rankDone[r] {
				continue
			}
			has, synced, req := j.rep.reg.ShadowState(r)
			switch {
			case has && synced:
				if rs.obsArrived[r] == nil {
					return
				}
			case has && !synced && !req:
				return // sync snapshot in flight; wait for MarkSynced
			}
		}
	}
	rs.committing = true
	go j.commitResize(rs)
}

// abortFenceLocked tears an uncommitted fence back to phase 1: parked
// ranks are released to proceed (and recover) under the old view, all
// acks are discarded, and the cut is undecided again. The fence stays
// armed — and keeps its provisioned nodes — so the resize retries once
// the recovery settles and acks re-collect. Caller holds j.mu.
func (j *Job) abortFenceLocked(rs *resizeState, reason string) {
	res := fenceResult{err: errFenceAborted}
	for r, w := range rs.arrived {
		w.ch <- res
		delete(rs.arrived, r)
	}
	for r, w := range rs.obsArrived {
		w.ch <- res
		delete(rs.obsArrived, r)
	}
	rs.acks = make(map[int]int)
	rs.obsAcks = make(map[int]int)
	rs.cutLoop = -1
	j.cfg.Trace.Add(trace.KindViewChange, -1, j.epoch, "resize fence aborted (%s); re-collecting acks", reason)
}

// failResizeLocked ends the resize attempt with an error: parked ranks
// proceed under the old view and the requester gets err. Caller holds
// j.mu; provisioned nodes must be released by the caller outside it.
func (j *Job) failResizeLocked(rs *resizeState, err error) {
	j.abortFenceLocked(rs, err.Error())
	rs.resCh <- err
	j.resize = nil
}

// MarkFinalizing implements core.ViewControl: once any rank enters
// Finalize the membership is frozen — an uncommitted fence is disarmed
// (its waiters proceed straight into their own Finalize) and further
// resizes are rejected.
func (j *Job) MarkFinalizing(rank int) {
	j.mu.Lock()
	j.finalizing = true
	rs := j.resize
	var freed []*cluster.Node
	if rs != nil && !rs.committing {
		freed = append(freed, rs.newNodes...)
		freed = append(freed, rs.newShadowNodes...)
		rs.newNodes, rs.newShadowNodes = nil, nil
		j.failResizeLocked(rs, fmt.Errorf("fmirun: job finalizing; resize to %d ranks cancelled", rs.target))
	}
	j.mu.Unlock()
	for _, nd := range freed {
		j.rm.AddSpare(nd)
	}
}

// commitResize installs the successor view at a quiescent fence. It
// runs in its own goroutine with rs.committing already set, so no new
// acks, arrivals, or fence aborts can race it.
func (j *Job) commitResize(rs *resizeState) {
	j.mu.Lock()
	if j.resize != rs {
		j.mu.Unlock()
		return
	}
	select {
	case <-j.abortCh:
		rs.resCh <- ErrJobAborted
		j.resize = nil
		j.mu.Unlock()
		return
	default:
	}
	// A provisioned node that died while the fence was settling cannot
	// host a joiner; end the attempt (survivors proceed under the old
	// view) rather than committing onto a dead node.
	var healthy []*cluster.Node
	for _, nd := range append(append([]*cluster.Node{}, rs.newNodes...), rs.newShadowNodes...) {
		if nd.Failed() {
			rs.committing = false
			for _, h := range rs.newNodes {
				if !h.Failed() {
					healthy = append(healthy, h)
				}
			}
			for _, h := range rs.newShadowNodes {
				if !h.Failed() {
					healthy = append(healthy, h)
				}
			}
			j.failResizeLocked(rs, fmt.Errorf("fmirun: provisioned node %d failed before the fence committed", nd.ID))
			j.mu.Unlock()
			for _, h := range healthy {
				j.rm.AddSpare(h)
			}
			return
		}
	}

	oldN := len(j.rankDone)
	target := rs.target
	ppn := j.cfg.ProcsPerNode
	oldEpoch := j.epoch
	newEpoch := j.advanceEpochLocked()

	// New rank -> node map: survivors keep their nodes; grow ranks land
	// on the provisioned slots (partial-slot joiners ride the node that
	// already hosts their slot's ranks).
	nodeOf := make([]int, target)
	for r := 0; r < target && r < oldN; r++ {
		nodeOf[r] = j.rankNode[r]
	}
	lastOldSlot := (oldN - 1) / ppn
	for r := oldN; r < target; r++ {
		slot := r / ppn
		if slot <= lastOldSlot {
			nodeOf[r] = j.rankNode[slot*ppn]
		} else {
			nodeOf[r] = rs.newNodes[slot-lastOldSlot-1].ID
		}
	}
	newView := j.view.Next(target, ppn, j.cfg.GroupSize, nodeOf)
	j.view = newView

	type spawnPlan struct {
		t       *task
		rank    int
		shadowT *task
	}
	var plans []spawnPlan
	var retiredProcs []*cluster.Proc
	var freedNodes []*cluster.Node
	var freedIDs []int

	if target < oldN {
		used := make(map[int]bool, target)
		for r := 0; r < target; r++ {
			used[j.rankNode[r]] = true
		}
		for r := target; r < oldN; r++ {
			if !j.rankDone[r] {
				if cp := j.rankProc[r]; cp != nil {
					retiredProcs = append(retiredProcs, cp)
				}
				if t := j.tasks[j.rankNode[r]]; t != nil {
					t.setRetiring(r)
				}
			}
		}
		seen := map[int]bool{}
		for r := target; r < oldN; r++ {
			nd := j.rankNode[r]
			if used[nd] || seen[nd] {
				continue
			}
			seen[nd] = true
			delete(j.tasks, nd)
			if n := j.clu.Node(nd); n != nil && !n.Failed() {
				freedNodes = append(freedNodes, n)
				freedIDs = append(freedIDs, nd)
			}
		}
		j.rankNode = append([]int(nil), j.rankNode[:target]...)
		j.rankProc = append([]*cluster.Proc(nil), j.rankProc[:target]...)
		j.rankDone = append([]bool(nil), j.rankDone[:target]...)
	} else {
		rankNode := make([]int, target)
		rankProc := make([]*cluster.Proc, target)
		rankDone := make([]bool, target)
		copy(rankNode, j.rankNode)
		copy(rankProc, j.rankProc)
		copy(rankDone, j.rankDone)
		copy(rankNode[oldN:], nodeOf[oldN:])
		j.rankNode, j.rankProc, j.rankDone = rankNode, rankProc, rankDone
		for _, nd := range rs.newNodes {
			if j.tasks[nd.ID] == nil {
				j.tasks[nd.ID] = newTask(j, nd)
			}
		}
		for r := oldN; r < target; r++ {
			plans = append(plans, spawnPlan{t: j.tasks[nodeOf[r]], rank: r})
		}
	}
	j.doneCount = 0
	for _, d := range j.rankDone {
		if d {
			j.doneCount++
		}
	}

	// Replica bookkeeping: re-key the registry for the new world, retire
	// the shadows of retired ranks, and plan shadows for the joiners.
	var retiredShadowProcs []*cluster.Proc
	if j.rep != nil {
		if j.rep.reg.Active() {
			j.rep.reg.BeginEpoch(target)
		}
		shadowNode := make([]int, target)
		shadowProc := make([]*cluster.Proc, target)
		for r := range shadowNode {
			shadowNode[r] = -1
		}
		copy(shadowNode, j.rep.shadowNode)
		copy(shadowProc, j.rep.shadowProc)
		for r := target; r < oldN && r < len(j.rep.shadowNode); r++ {
			nd := j.rep.shadowNode[r]
			if nd < 0 {
				continue
			}
			if cp := j.rep.shadowProc[r]; cp != nil {
				retiredShadowProcs = append(retiredShadowProcs, cp)
			}
			if st := j.tasks[nd]; st != nil {
				st.silence()
				delete(j.tasks, nd)
			}
			if n := j.clu.Node(nd); n != nil && !n.Failed() {
				freedNodes = append(freedNodes, n)
				freedIDs = append(freedIDs, nd)
			}
		}
		j.rep.shadowNode, j.rep.shadowProc = shadowNode[:target], shadowProc[:target]
		if j.rep.reg.Active() {
			for i, nd := range rs.newShadowNodes {
				r := oldN + i
				if r >= target || r-oldN >= len(plans) {
					break
				}
				nt := newShadowTask(j, nd)
				j.tasks[nd.ID] = nt
				j.rep.shadowNode[r] = nd.ID
				plans[r-oldN].shadowT = nt
			}
		}
	}

	// Release the parked survivors into the new view and tell retired
	// ranks to unwind.
	for r, w := range rs.arrived {
		if r < target {
			w.ch <- fenceResult{view: newView}
		} else {
			w.ch <- fenceResult{retired: true}
		}
	}
	for r, w := range rs.obsArrived {
		if r < target {
			w.ch <- fenceResult{view: newView}
		} else {
			w.ch <- fenceResult{retired: true}
		}
	}
	cutLoop := rs.cutLoop
	j.resize = nil
	jobDone := j.doneCount >= target
	j.cfg.Trace.AddView(trace.KindViewChange, -1, newEpoch, newView.Version,
		"%s committed at loop %d (%d -> %d ranks, epoch %d)", newView, cutLoop, oldN, target, newEpoch)
	j.mu.Unlock()

	// Supersede every rendezvous keyed by the old epoch: survivors
	// re-negotiate at newEpoch with the new world size.
	for _, prefix := range []string{"h1", "h2", "avail", "h3", "replay", "finalize"} {
		j.coord.AbortGather(fmt.Sprintf("%s/%d", prefix, oldEpoch), core.ErrFailureDetected)
	}
	for _, cp := range retiredProcs {
		cp.Kill()
	}
	for _, cp := range retiredShadowProcs {
		cp.Kill()
	}
	for _, nd := range freedNodes {
		if j.cfg.OnNodeRetired != nil && j.cfg.OnNodeRetired(nd) {
			continue // the external scheduler took the node back
		}
		j.rm.AddSpare(nd)
	}
	for _, pl := range plans {
		j.cfg.Trace.Add(trace.KindRespawn, pl.rank, newEpoch, "joiner spawned on node %d at loop %d", pl.t.node.ID, cutLoop)
		if err := j.spawnRank(pl.t, pl.rank, newEpoch, false, cutLoop); err != nil {
			j.Abort(fmt.Errorf("%w: spawn joiner rank %d: %v", ErrJobAborted, pl.rank, err))
			return
		}
		if pl.shadowT != nil {
			if err := j.spawnShadow(pl.shadowT, pl.rank, false, newEpoch, cutLoop); err != nil {
				j.Abort(fmt.Errorf("%w: spawn joiner shadow %d: %v", ErrJobAborted, pl.rank, err))
				return
			}
		}
	}
	if j.cfg.OnViewChange != nil {
		j.cfg.OnViewChange(newView, freedIDs)
	}
	if jobDone {
		// A shrink can retire every rank that had not finished yet.
		select {
		case <-j.doneCh:
		default:
			close(j.doneCh)
		}
		j.killShadows()
	}
	rs.resCh <- nil
}
