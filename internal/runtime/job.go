// Package runtime implements FMI's hierarchical process management
// (paper §IV-B, Fig 6): the master fmirun process at the top, one
// fmirun.task per compute node below it, and the rank processes as
// their children. fmirun owns the machinefile, detects task failures,
// allocates spare nodes (from the reserve, or by waiting on the
// resource manager), respawns lost ranks, and drives the epoch counter
// that sequences recovery rounds.
package runtime

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"fmi/internal/bootstrap"
	"fmi/internal/bufpool"
	"fmi/internal/cluster"
	"fmi/internal/coll"
	"fmi/internal/core"
	"fmi/internal/pfs"
	"fmi/internal/scr"
	"fmi/internal/trace"
	"fmi/internal/transport"
)

// App is the application body executed by every rank.
type App func(p *core.Proc) error

// Config configures a job launch.
type Config struct {
	Ranks        int
	ProcsPerNode int
	SpareNodes   int
	Interval     int           // checkpoint interval; 0 = auto (needs MTBF)
	MTBF         time.Duration // expected failure rate for auto-tuning
	GroupSize    int
	RingBase     int
	// Redundancy is the per-member parity shard count m: 1 = ring-XOR
	// (default), >= 2 = Reed-Solomon RS(k,m) tolerating m losses per
	// checkpoint group.
	Redundancy int
	// L2Every enables multilevel C/R: every L2Every-th checkpoint is
	// flushed to the parallel file system, letting the job recover
	// failures beyond the XOR groups' reach (0 disables level 2).
	L2Every int
	// Recovery selects the recovery protocol: "global" (default, the
	// paper's Fig 5 rollback of every rank) or "local" (sender-based
	// message logging; only respawned ranks roll back and replay).
	Recovery string
	// SCR is the storage manager used for level-2 checkpoints;
	// created over a Lustre-like PFS model if nil and L2Every > 0.
	SCR     *scr.Manager
	Network transport.Network
	Cluster *cluster.Cluster         // created if nil
	RM      *cluster.ResourceManager // created over spare nodes if nil
	// Machine, when non-nil, is an explicit machinefile: ranks
	// [i*ProcsPerNode, (i+1)*ProcsPerNode) run on Machine[i]. It lets
	// an external scheduler (the fmiserve job service) place a job on
	// nodes carved out of a shared cluster instead of the default
	// block mapping onto node ids 0..n-1. Every listed node must
	// belong to Cluster and be healthy at launch.
	Machine []*cluster.Node
	Stats   *core.Stats // created if nil
	// OnLoop is invoked when a rank reports completing a loop
	// iteration (the fault injector hooks in here).
	OnLoop func(rank, loopID int)
	// MaxEpochs aborts the job after this many recovery rounds
	// (safety valve; 0 = 1024).
	MaxEpochs int
	// ProvisionDelay is how long the resource manager takes to deliver
	// a brand-new node once the spare pool is exhausted.
	ProvisionDelay time.Duration
	// Trace, when non-nil, records the job's lifecycle timeline.
	Trace *trace.Recorder
	// Timeout aborts the job if it has not completed in time
	// (0 = none).
	Timeout time.Duration
	// Coll selects collective algorithms per operation (zero value =
	// automatic size/comm-size selection).
	Coll coll.Policy
	// Pool is the job-wide buffer arena shared by the transport and
	// every rank's runtime (nil disables pooling).
	Pool *bufpool.Arena
}

// Errors reported by the job manager.
var (
	ErrJobAborted      = errors.New("fmirun: job aborted")
	ErrTooManyFailures = errors.New("fmirun: recovery limit exceeded")
	// ErrEpochWaitCancelled is returned by AwaitEpoch when the caller's
	// cancel channel fires — the waiting process was killed, not the
	// job. It wraps core.ErrKilled so the rank runtime can distinguish
	// its own death (unwind quietly) from a job-level failure (abort);
	// an external caller holding the Job handle gets an error that is
	// unambiguous about which of the two happened.
	ErrEpochWaitCancelled = fmt.Errorf("fmirun: epoch wait cancelled: %w", core.ErrKilled)
)

// Report summarises a completed run.
type Report struct {
	Stats          core.StatsSnapshot
	Epochs         uint32 // recovery rounds performed
	WallTime       time.Duration
	NodesUsed      int
	SparesConsumed int
	MaxLoopID      int
	AppErrors      []error
}

// Job is the fmirun master.
type Job struct {
	cfg   Config
	coord *bootstrap.Coordinator
	clu   *cluster.Cluster
	rm    *cluster.ResourceManager
	stats *core.Stats

	mu          sync.Mutex
	epoch       uint32
	epochWait   []epochWaiter
	epochChans  map[uint32]chan struct{} // closed when epoch exceeds key
	rankNode    []int                    // rank -> node id currently hosting it
	rankProc    []*cluster.Proc          // rank -> current process
	rankDone    []bool                   // rank's app returned cleanly
	tasks       map[int]*task            // node id -> task
	doneCount   int
	appErrs     []error
	abortErr    error
	abortCh     chan struct{}
	doneCh      chan struct{}
	maxLoop     int
	spareUsed   int
	app         App
	failedNodes map[int]bool
	finCh       chan struct{} // closed on completion or abort (Done)
}

type epochWaiter struct {
	min uint32
	ch  chan uint32
}

// Run launches the job and blocks until every rank's app returns or
// the job aborts.
func Run(cfg Config, app App) (*Report, error) {
	j, err := Launch(cfg, app)
	if err != nil {
		return nil, err
	}
	return j.Wait()
}

// Launch starts the job without waiting (tests use the handle).
func Launch(cfg Config, app App) (*Job, error) {
	if cfg.Ranks <= 0 {
		return nil, fmt.Errorf("fmirun: Ranks must be positive")
	}
	if cfg.ProcsPerNode <= 0 {
		cfg.ProcsPerNode = 1
	}
	if cfg.Network == nil {
		cfg.Network = transport.NewChanNetwork(transport.Options{DetectDelay: 2 * time.Millisecond, PropDelay: time.Millisecond})
	}
	if cfg.Stats == nil {
		cfg.Stats = &core.Stats{}
	}
	if cfg.MaxEpochs == 0 {
		cfg.MaxEpochs = 1024
	}
	if cfg.L2Every > 0 && cfg.SCR == nil {
		cfg.SCR = scr.NewManager(pfs.SierraTmpfs(), pfs.NewShared("pfs", pfs.LustrePFS()))
	}
	nodes := (cfg.Ranks + cfg.ProcsPerNode - 1) / cfg.ProcsPerNode
	clu := cfg.Cluster
	if clu == nil {
		clu = cluster.New(nodes + cfg.SpareNodes)
	}
	rm := cfg.RM
	if rm == nil {
		var spares []*cluster.Node
		for i := nodes; i < nodes+cfg.SpareNodes; i++ {
			if nd := clu.Node(i); nd != nil {
				spares = append(spares, nd)
			}
		}
		rm = cluster.NewResourceManager(clu, spares)
		rm.ProvisionDelay = cfg.ProvisionDelay
	}
	j := &Job{
		cfg:         cfg,
		coord:       bootstrap.NewCoordinator(),
		clu:         clu,
		rm:          rm,
		stats:       cfg.Stats,
		epochChans:  make(map[uint32]chan struct{}),
		rankNode:    make([]int, cfg.Ranks),
		rankProc:    make([]*cluster.Proc, cfg.Ranks),
		rankDone:    make([]bool, cfg.Ranks),
		tasks:       make(map[int]*task),
		abortCh:     make(chan struct{}),
		doneCh:      make(chan struct{}),
		app:         app,
		failedNodes: make(map[int]bool),
		finCh:       make(chan struct{}),
	}
	go func() {
		select {
		case <-j.doneCh:
		case <-j.abortCh:
		}
		close(j.finCh)
	}()

	// Initial placement: block mapping, procsPerNode consecutive ranks
	// per node — the machinefile of Fig 6, either the default identity
	// mapping onto node ids 0..n-1 or an explicit cfg.Machine list.
	if cfg.Machine != nil && len(cfg.Machine) < nodes {
		return nil, fmt.Errorf("fmirun: machinefile has %d nodes, need %d", len(cfg.Machine), nodes)
	}
	perNode := make(map[int][]int) // machinefile slot -> ranks
	for r := 0; r < cfg.Ranks; r++ {
		slot := r / cfg.ProcsPerNode
		perNode[slot] = append(perNode[slot], r)
	}
	for slot, ranks := range perNode {
		var nd *cluster.Node
		if cfg.Machine != nil {
			nd = cfg.Machine[slot]
		} else {
			nd = clu.Node(slot)
		}
		if nd == nil {
			return nil, fmt.Errorf("fmirun: machinefile slot %d has no node", slot)
		}
		for _, r := range ranks {
			j.rankNode[r] = nd.ID
		}
		t := newTask(j, nd)
		j.mu.Lock()
		j.tasks[nd.ID] = t
		j.mu.Unlock()
		for _, r := range ranks {
			if err := j.spawnRank(t, r, 0, false); err != nil {
				return nil, err
			}
		}
	}
	if cfg.Timeout > 0 {
		go func() {
			t := time.NewTimer(cfg.Timeout)
			defer t.Stop()
			select {
			case <-t.C:
				j.Abort(fmt.Errorf("%w: timeout after %v", ErrJobAborted, cfg.Timeout))
			case <-j.doneCh:
			case <-j.abortCh:
			}
		}()
	}
	return j, nil
}

// Done returns a channel closed once the job has finished — every
// rank's app returned or the job aborted. It makes the handle
// select-able: an external control plane (the fmiserve job service)
// multiplexes many jobs without parking a goroutine in Wait per job.
// After Done closes, Wait returns immediately with the report.
func (j *Job) Done() <-chan struct{} { return j.finCh }

// Wait blocks until the job finishes and assembles the report.
func (j *Job) Wait() (*Report, error) {
	start := time.Now()
	select {
	case <-j.doneCh:
	case <-j.abortCh:
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	rep := &Report{
		Stats:          j.stats.Snapshot(),
		Epochs:         j.epoch,
		WallTime:       time.Since(start),
		NodesUsed:      len(j.tasks),
		SparesConsumed: j.spareUsed,
		MaxLoopID:      j.maxLoop,
		AppErrors:      append([]error{}, j.appErrs...),
	}
	if j.abortErr != nil {
		return rep, j.abortErr
	}
	if len(rep.AppErrors) > 0 {
		return rep, fmt.Errorf("fmirun: %d ranks returned errors (first: %w)", len(rep.AppErrors), rep.AppErrors[0])
	}
	return rep, nil
}

// Coordinator implements core.Control.
func (j *Job) Coordinator() *bootstrap.Coordinator { return j.coord }

// AwaitEpoch implements core.Control.
func (j *Job) AwaitEpoch(min uint32, cancel <-chan struct{}) (uint32, error) {
	j.mu.Lock()
	if j.epoch >= min {
		e := j.epoch
		j.mu.Unlock()
		return e, nil
	}
	w := epochWaiter{min: min, ch: make(chan uint32, 1)}
	j.epochWait = append(j.epochWait, w)
	j.mu.Unlock()
	select {
	case e := <-w.ch:
		return e, nil
	case <-cancel:
		return 0, ErrEpochWaitCancelled
	case <-j.abortCh:
		return 0, ErrJobAborted
	}
}

// EpochNotify implements core.Control: the returned channel closes
// when the job epoch first exceeds e.
func (j *Job) EpochNotify(e uint32) <-chan struct{} {
	j.mu.Lock()
	defer j.mu.Unlock()
	ch, ok := j.epochChans[e]
	if !ok {
		ch = make(chan struct{})
		j.epochChans[e] = ch
		if j.epoch > e {
			close(ch)
		}
	}
	return ch
}

// ReportLoop implements core.Control.
func (j *Job) ReportLoop(rank, loopID int) {
	j.mu.Lock()
	if loopID > j.maxLoop {
		j.maxLoop = loopID
	}
	hook := j.cfg.OnLoop
	j.mu.Unlock()
	if hook != nil {
		hook(rank, loopID)
	}
}

// Abort implements core.Control: tear the whole job down.
func (j *Job) Abort(err error) {
	j.mu.Lock()
	if j.abortErr == nil {
		j.abortErr = err
	}
	select {
	case <-j.abortCh:
		j.mu.Unlock()
		return
	default:
	}
	close(j.abortCh)
	procs := append([]*cluster.Proc{}, j.rankProc...)
	j.mu.Unlock()
	j.cfg.Trace.Add(trace.KindAbort, -1, 0, "job aborted: %v", err)
	for _, p := range procs {
		if p != nil {
			p.Kill()
		}
	}
}

// NodeOfRank returns the node currently hosting a rank (fault
// injectors target through this).
func (j *Job) NodeOfRank(rank int) *cluster.Node {
	j.mu.Lock()
	defer j.mu.Unlock()
	if rank < 0 || rank >= len(j.rankNode) {
		return nil
	}
	return j.clu.Node(j.rankNode[rank])
}

// ActiveNodes returns the nodes currently hosting ranks.
func (j *Job) ActiveNodes() []*cluster.Node {
	j.mu.Lock()
	defer j.mu.Unlock()
	seen := map[int]bool{}
	var out []*cluster.Node
	for _, ndID := range j.rankNode {
		if !seen[ndID] {
			seen[ndID] = true
			if nd := j.clu.Node(ndID); nd != nil && !nd.Failed() {
				out = append(out, nd)
			}
		}
	}
	return out
}

// AddSpareNode provisions a fresh node at runtime and adds it to the
// spare pool — the paper's §III-A dynamic node join ("FMI also
// provides a capability for compute nodes to join or leave the job
// dynamically, primarily to replace failed nodes with spare nodes").
func (j *Job) AddSpareNode() *cluster.Node {
	nd := j.clu.AddNode()
	j.rm.AddSpare(nd)
	return nd
}

// Epoch returns the current job epoch.
func (j *Job) Epoch() uint32 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.epoch
}

// spawnRank starts one rank process on the task's node.
func (j *Job) spawnRank(t *task, rank int, epoch uint32, replacement bool) error {
	cp, err := t.node.Spawn()
	if err != nil {
		return err
	}
	j.mu.Lock()
	j.rankProc[rank] = cp
	j.rankNode[rank] = t.node.ID
	j.mu.Unlock()
	t.addChild(rank, cp)

	cfg := core.Config{
		Rank: rank, N: j.cfg.Ranks,
		ProcsPerNode:  j.cfg.ProcsPerNode,
		Epoch:         epoch,
		IsReplacement: replacement,
		Interval:      j.cfg.Interval,
		MTBF:          j.cfg.MTBF,
		GroupSize:     j.cfg.GroupSize,
		RingBase:      j.cfg.RingBase,
		Redundancy:    j.cfg.Redundancy,
		L2Every:       j.cfg.L2Every,
		L2:            j.cfg.SCR,
		Local:         j.cfg.Recovery == "local",
		Network:       j.cfg.Network,
		Ctl:           j,
		KillCh:        cp.KillCh(),
		Stats:         j.stats,
		Trace:         j.cfg.Trace,
		Coll:          j.cfg.Coll,
		Pool:          j.cfg.Pool,
	}
	go func() {
		defer func() {
			if v := recover(); v != nil {
				if core.IsKilledPanic(v) {
					return // task learned via KillCh
				}
				cp.Exit(fmt.Errorf("fmirun: rank %d panicked: %v", rank, v))
				return
			}
		}()
		p, err := core.Init(cfg)
		if err != nil {
			if errors.Is(err, core.ErrKilled) {
				return // killed during init; the task learned via KillCh
			}
			cp.Exit(fmt.Errorf("fmirun: rank %d init: %w", rank, err))
			return
		}
		cp.Exit(j.app(p))
	}()
	return nil
}

// rankFinished records a clean exit.
func (j *Job) rankFinished(rank int, err error) {
	j.mu.Lock()
	if j.rankDone[rank] {
		j.mu.Unlock()
		return
	}
	j.rankDone[rank] = true
	if err != nil {
		j.appErrs = append(j.appErrs, fmt.Errorf("rank %d: %w", rank, err))
	}
	j.doneCount++
	done := j.doneCount == j.cfg.Ranks
	j.mu.Unlock()
	if done {
		select {
		case <-j.doneCh:
		default:
			close(j.doneCh)
		}
	}
}

// taskFailed handles an fmirun.task failure report: bump the epoch,
// unblock stale rendezvous, allocate a replacement node, and respawn
// the lost ranks (paper §IV-B).
func (j *Job) taskFailed(t *task) {
	j.mu.Lock()
	if j.failedNodes[t.node.ID] {
		j.mu.Unlock()
		return
	}
	j.failedNodes[t.node.ID] = true
	oldEpoch := j.epoch
	j.epoch++
	newEpoch := j.epoch
	j.cfg.Trace.Add(trace.KindNodeFailed, -1, oldEpoch, "node %d failed", t.node.ID)
	j.cfg.Trace.Add(trace.KindEpoch, -1, newEpoch, "epoch advanced to %d", newEpoch)
	if int(newEpoch) > j.cfg.MaxEpochs {
		j.mu.Unlock()
		j.Abort(fmt.Errorf("%w: %d epochs", ErrTooManyFailures, newEpoch))
		return
	}
	// Wake epoch waiters and the fallback notification channel.
	var still []epochWaiter
	for _, w := range j.epochWait {
		if newEpoch >= w.min {
			//fmilint:ignore lockheld each waiter channel is buffered(1) and receives at most one send ever, so this cannot block under j.mu
			w.ch <- newEpoch
		} else {
			still = append(still, w)
		}
	}
	j.epochWait = still
	for e, ch := range j.epochChans {
		if newEpoch > e {
			select {
			case <-ch:
			default:
				close(ch)
			}
		}
	}
	// Ranks lost with the node, excluding already-finished ones.
	var lost []int
	for r, nd := range j.rankNode {
		if nd == t.node.ID && !j.rankDone[r] {
			lost = append(lost, r)
		}
	}
	delete(j.tasks, t.node.ID)
	j.mu.Unlock()

	// Unblock every rendezvous of the superseded epoch.
	for _, prefix := range []string{"h1", "h2", "avail", "h3", "replay", "finalize"} {
		j.coord.AbortGather(fmt.Sprintf("%s/%d", prefix, oldEpoch), core.ErrFailureDetected)
	}

	if len(lost) == 0 {
		return
	}
	// Allocate a spare and respawn; this may block on the resource
	// manager, which is exactly the paper's "fmirun waits until new
	// nodes are allocated".
	go func() {
		nd, err := j.rm.Allocate(j.abortCh)
		if err != nil {
			j.Abort(fmt.Errorf("%w: no spare node: %v", ErrJobAborted, err))
			return
		}
		j.mu.Lock()
		j.spareUsed++
		nt := newTask(j, nd)
		j.tasks[nd.ID] = nt
		j.mu.Unlock()
		j.cfg.Trace.Add(trace.KindSpareAlloc, -1, newEpoch, "node %d allocated for ranks %v", nd.ID, lost)
		for _, r := range lost {
			j.cfg.Trace.Add(trace.KindRespawn, r, newEpoch, "respawned on node %d", nd.ID)
			if err := j.spawnRank(nt, r, newEpoch, true); err != nil {
				j.Abort(fmt.Errorf("%w: respawn rank %d: %v", ErrJobAborted, r, err))
				return
			}
		}
	}()
}
