// Package runtime implements FMI's hierarchical process management
// (paper §IV-B, Fig 6): the master fmirun process at the top, one
// fmirun.task per compute node below it, and the rank processes as
// their children. fmirun owns the machinefile, detects task failures,
// allocates spare nodes (from the reserve, or by waiting on the
// resource manager), respawns lost ranks, and drives the epoch counter
// that sequences recovery rounds.
package runtime

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"fmi/internal/bootstrap"
	"fmi/internal/bufpool"
	"fmi/internal/cluster"
	"fmi/internal/coll"
	"fmi/internal/core"
	"fmi/internal/pfs"
	"fmi/internal/replica"
	"fmi/internal/scr"
	"fmi/internal/trace"
	"fmi/internal/transport"
	"fmi/internal/view"
)

// App is the application body executed by every rank.
type App func(p *core.Proc) error

// Config configures a job launch.
type Config struct {
	Ranks        int
	ProcsPerNode int
	SpareNodes   int
	Interval     int           // checkpoint interval; 0 = auto (needs MTBF)
	MTBF         time.Duration // expected failure rate for auto-tuning
	GroupSize    int
	RingBase     int
	// Redundancy is the per-member parity shard count m: 1 = ring-XOR
	// (default), >= 2 = Reed-Solomon RS(k,m) tolerating m losses per
	// checkpoint group.
	Redundancy int
	// L2Every enables multilevel C/R: every L2Every-th checkpoint is
	// flushed to the parallel file system, letting the job recover
	// failures beyond the XOR groups' reach (0 disables level 2).
	L2Every int
	// Recovery selects the recovery protocol: "global" (default, the
	// paper's Fig 5 rollback of every rank), "local" (sender-based
	// message logging; only respawned ranks roll back and replay), or
	// "replica" (every rank runs as a primary/shadow pair on distinct
	// nodes; a primary loss is masked by promoting the shadow in place
	// — no rollback, no replay). Replica mode requires an explicit
	// Interval (the MTBF auto-tuner uses wall-clock EWMAs that would
	// desynchronise the lockstep pair) and ProcsPerNode == 1 (pairs
	// are placed per node).
	Recovery string
	// SCR is the storage manager used for level-2 checkpoints;
	// created over a Lustre-like PFS model if nil and L2Every > 0.
	SCR     *scr.Manager
	Network transport.Network
	Cluster *cluster.Cluster         // created if nil
	RM      *cluster.ResourceManager // created over spare nodes if nil
	// Machine, when non-nil, is an explicit machinefile: ranks
	// [i*ProcsPerNode, (i+1)*ProcsPerNode) run on Machine[i]. It lets
	// an external scheduler (the fmiserve job service) place a job on
	// nodes carved out of a shared cluster instead of the default
	// block mapping onto node ids 0..n-1. Every listed node must
	// belong to Cluster and be healthy at launch.
	Machine []*cluster.Node
	Stats   *core.Stats // created if nil
	// OnLoop is invoked when a rank reports completing a loop
	// iteration (the fault injector hooks in here).
	OnLoop func(rank, loopID int)
	// MaxEpochs aborts the job after this many recovery rounds
	// (safety valve; 0 = 1024).
	MaxEpochs int
	// ProvisionDelay is how long the resource manager takes to deliver
	// a brand-new node once the spare pool is exhausted.
	ProvisionDelay time.Duration
	// Trace, when non-nil, records the job's lifecycle timeline.
	Trace *trace.Recorder
	// Timeout aborts the job if it has not completed in time
	// (0 = none).
	Timeout time.Duration
	// Coll selects collective algorithms per operation (zero value =
	// automatic size/comm-size selection).
	Coll coll.Policy
	// Pool is the job-wide buffer arena shared by the transport and
	// every rank's runtime (nil disables pooling).
	Pool *bufpool.Arena
	// OnNodeRetired, when non-nil, intercepts each node freed by a
	// shrink fence. Return true to take ownership of the node (the job
	// service returns it to the shared broker pool); false routes it
	// to the job's own spare pool.
	OnNodeRetired func(nd *cluster.Node) bool
	// OnViewChange, when non-nil, runs after every committed view
	// change with the installed view and the ids of nodes freed by a
	// shrink (empty on grow). The fmi layer hooks the replicated data
	// store's shard rebalance in here.
	OnViewChange func(v *view.View, freedNodes []int)
	// Elastic permits online grow/shrink reconfiguration. When false,
	// Resize/RequestResize are rejected and the membership stays fixed
	// for the life of the job.
	Elastic bool
}

// Errors reported by the job manager.
var (
	ErrJobAborted      = errors.New("fmirun: job aborted")
	ErrTooManyFailures = errors.New("fmirun: recovery limit exceeded")
	// ErrEpochWaitCancelled is returned by AwaitEpoch when the caller's
	// cancel channel fires — the waiting process was killed, not the
	// job. It wraps core.ErrKilled so the rank runtime can distinguish
	// its own death (unwind quietly) from a job-level failure (abort);
	// an external caller holding the Job handle gets an error that is
	// unambiguous about which of the two happened.
	ErrEpochWaitCancelled = fmt.Errorf("fmirun: epoch wait cancelled: %w", core.ErrKilled)
)

// Report summarises a completed run.
type Report struct {
	Stats          core.StatsSnapshot
	Epochs         uint32 // recovery rounds performed
	WallTime       time.Duration
	NodesUsed      int
	SparesConsumed int
	MaxLoopID      int
	AppErrors      []error
}

// Job is the fmirun master.
type Job struct {
	cfg   Config
	coord *bootstrap.Coordinator
	clu   *cluster.Cluster
	rm    *cluster.ResourceManager
	stats *core.Stats

	mu          sync.Mutex
	epoch       uint32
	epochWait   []epochWaiter
	epochChans  map[uint32]chan struct{} // closed when epoch exceeds key
	rankNode    []int                    // rank -> node id currently hosting it
	rankProc    []*cluster.Proc          // rank -> current process
	rankDone    []bool                   // rank's app returned cleanly
	tasks       map[int]*task            // node id -> task
	doneCount   int
	appErrs     []error
	abortErr    error
	abortCh     chan struct{}
	doneCh      chan struct{}
	maxLoop     int
	spareUsed   int
	app         App
	failedNodes map[int]bool
	finCh       chan struct{} // closed on completion or abort (Done)
	rep         *repState     // replica recovery state; nil otherwise

	view       *view.View   // current membership view (never nil after Launch)
	resize     *resizeState // armed view-change fence; nil when idle
	ticketSeq  uint64
	finalizing bool // some rank entered Finalize; no further resizes
}

// repState holds the replica-recovery bookkeeping (guarded by Job.mu
// except for reg, which has its own lock).
type repState struct {
	reg        *replica.Registry
	shadowNode []int           // rank -> node id hosting its shadow (-1 = none)
	shadowProc []*cluster.Proc // rank -> shadow process (nil = none)
	degraded   bool            // pair loss forced a fall-back to rollback recovery
}

type epochWaiter struct {
	min uint32
	ch  chan uint32
}

// Run launches the job and blocks until every rank's app returns or
// the job aborts.
func Run(cfg Config, app App) (*Report, error) {
	j, err := Launch(cfg, app)
	if err != nil {
		return nil, err
	}
	return j.Wait()
}

// Launch starts the job without waiting (tests use the handle).
func Launch(cfg Config, app App) (*Job, error) {
	if cfg.Ranks <= 0 {
		return nil, fmt.Errorf("fmirun: Ranks must be positive")
	}
	if cfg.ProcsPerNode <= 0 {
		cfg.ProcsPerNode = 1
	}
	if cfg.Network == nil {
		cfg.Network = transport.NewChanNetwork(transport.Options{DetectDelay: 2 * time.Millisecond, PropDelay: time.Millisecond})
	}
	if cfg.Stats == nil {
		cfg.Stats = &core.Stats{}
	}
	if cfg.MaxEpochs == 0 {
		cfg.MaxEpochs = 1024
	}
	if cfg.L2Every > 0 && cfg.SCR == nil {
		cfg.SCR = scr.NewManager(pfs.SierraTmpfs(), pfs.NewShared("pfs", pfs.LustrePFS()))
	}
	replicated := cfg.Recovery == "replica"
	if replicated {
		if cfg.ProcsPerNode != 1 {
			return nil, fmt.Errorf("fmirun: replica recovery requires ProcsPerNode == 1 (got %d)", cfg.ProcsPerNode)
		}
		if cfg.Interval <= 0 {
			return nil, fmt.Errorf("fmirun: replica recovery requires an explicit Interval (the MTBF auto-tuner would desynchronise primary/shadow pairs)")
		}
	}
	nodes := (cfg.Ranks + cfg.ProcsPerNode - 1) / cfg.ProcsPerNode
	totalNodes := nodes
	if replicated {
		totalNodes = 2 * nodes // one shadow node per primary node
	}
	clu := cfg.Cluster
	if clu == nil {
		clu = cluster.New(totalNodes + cfg.SpareNodes)
	}
	rm := cfg.RM
	if rm == nil {
		var spares []*cluster.Node
		for i := totalNodes; i < totalNodes+cfg.SpareNodes; i++ {
			if nd := clu.Node(i); nd != nil {
				spares = append(spares, nd)
			}
		}
		rm = cluster.NewResourceManager(clu, spares)
		rm.ProvisionDelay = cfg.ProvisionDelay
	}
	j := &Job{
		cfg:         cfg,
		coord:       bootstrap.NewCoordinator(),
		clu:         clu,
		rm:          rm,
		stats:       cfg.Stats,
		epochChans:  make(map[uint32]chan struct{}),
		rankNode:    make([]int, cfg.Ranks),
		rankProc:    make([]*cluster.Proc, cfg.Ranks),
		rankDone:    make([]bool, cfg.Ranks),
		tasks:       make(map[int]*task),
		abortCh:     make(chan struct{}),
		doneCh:      make(chan struct{}),
		app:         app,
		failedNodes: make(map[int]bool),
		finCh:       make(chan struct{}),
	}
	if replicated {
		j.rep = &repState{
			reg:        replica.NewRegistry(cfg.Ranks),
			shadowNode: make([]int, cfg.Ranks),
			shadowProc: make([]*cluster.Proc, cfg.Ranks),
		}
		for r := range j.rep.shadowNode {
			j.rep.shadowNode[r] = -1
		}
	}
	go func() {
		select {
		case <-j.doneCh:
		case <-j.abortCh:
		}
		close(j.finCh)
	}()

	// Initial placement: block mapping, procsPerNode consecutive ranks
	// per node — the machinefile of Fig 6, either the default identity
	// mapping onto node ids 0..n-1 or an explicit cfg.Machine list. In
	// replica mode the machinefile carries nodes extra slots: rank r's
	// shadow runs on Machine[nodes+r], which must differ from its
	// primary's node (anti-affinity — a pair on one node is no pair).
	if cfg.Machine != nil && len(cfg.Machine) < totalNodes {
		return nil, fmt.Errorf("fmirun: machinefile has %d nodes, need %d", len(cfg.Machine), totalNodes)
	}
	if replicated && cfg.Machine != nil {
		for r := 0; r < cfg.Ranks; r++ {
			if cfg.Machine[r] != nil && cfg.Machine[nodes+r] != nil && cfg.Machine[r].ID == cfg.Machine[nodes+r].ID {
				return nil, fmt.Errorf("fmirun: replica anti-affinity violated: rank %d primary and shadow both placed on node %d", r, cfg.Machine[r].ID)
			}
		}
	}
	perNode := make(map[int][]int) // machinefile slot -> ranks
	for r := 0; r < cfg.Ranks; r++ {
		slot := r / cfg.ProcsPerNode
		perNode[slot] = append(perNode[slot], r)
	}
	// Resolve every slot's node and install the launch view before any
	// rank spawns: procs adopt their world from the view, so it must
	// exist first.
	type slotPlan struct {
		t     *task
		ranks []int
	}
	var plans []slotPlan
	for slot, ranks := range perNode {
		var nd *cluster.Node
		if cfg.Machine != nil {
			nd = cfg.Machine[slot]
		} else {
			nd = clu.Node(slot)
		}
		if nd == nil {
			return nil, fmt.Errorf("fmirun: machinefile slot %d has no node", slot)
		}
		for _, r := range ranks {
			j.rankNode[r] = nd.ID
		}
		t := newTask(j, nd)
		j.mu.Lock()
		j.tasks[nd.ID] = t
		j.mu.Unlock()
		plans = append(plans, slotPlan{t: t, ranks: ranks})
	}
	j.view = view.New(cfg.Ranks, cfg.ProcsPerNode, cfg.GroupSize, j.rankNode)
	cfg.Trace.AddView(trace.KindViewChange, -1, 0, j.view.Version, "launch %s installed", j.view)
	for _, pl := range plans {
		for _, r := range pl.ranks {
			if err := j.spawnRank(pl.t, r, 0, false, 0); err != nil {
				return nil, err
			}
		}
	}
	if replicated {
		for r := 0; r < cfg.Ranks; r++ {
			var nd *cluster.Node
			if cfg.Machine != nil {
				nd = cfg.Machine[nodes+r]
			} else {
				nd = clu.Node(nodes + r)
			}
			if nd == nil {
				return nil, fmt.Errorf("fmirun: machinefile shadow slot %d has no node", nodes+r)
			}
			nt := newShadowTask(j, nd)
			j.mu.Lock()
			j.tasks[nd.ID] = nt
			j.rep.shadowNode[r] = nd.ID
			j.mu.Unlock()
			if err := j.spawnShadow(nt, r, false, 0, 0); err != nil {
				return nil, err
			}
		}
	}
	if cfg.Timeout > 0 {
		go func() {
			t := time.NewTimer(cfg.Timeout)
			defer t.Stop()
			select {
			case <-t.C:
				j.Abort(fmt.Errorf("%w: timeout after %v", ErrJobAborted, cfg.Timeout))
			case <-j.doneCh:
			case <-j.abortCh:
			}
		}()
	}
	return j, nil
}

// Done returns a channel closed once the job has finished — every
// rank's app returned or the job aborted. It makes the handle
// select-able: an external control plane (the fmiserve job service)
// multiplexes many jobs without parking a goroutine in Wait per job.
// After Done closes, Wait returns immediately with the report.
func (j *Job) Done() <-chan struct{} { return j.finCh }

// Wait blocks until the job finishes and assembles the report.
func (j *Job) Wait() (*Report, error) {
	start := time.Now()
	select {
	case <-j.doneCh:
	case <-j.abortCh:
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	rep := &Report{
		Stats:          j.stats.Snapshot(),
		Epochs:         j.epoch,
		WallTime:       time.Since(start),
		NodesUsed:      len(j.tasks),
		SparesConsumed: j.spareUsed,
		MaxLoopID:      j.maxLoop,
		AppErrors:      append([]error{}, j.appErrs...),
	}
	if j.abortErr != nil {
		return rep, j.abortErr
	}
	if len(rep.AppErrors) > 0 {
		return rep, fmt.Errorf("fmirun: %d ranks returned errors (first: %w)", len(rep.AppErrors), rep.AppErrors[0])
	}
	return rep, nil
}

// Coordinator implements core.Control.
func (j *Job) Coordinator() *bootstrap.Coordinator { return j.coord }

// AwaitEpoch implements core.Control.
func (j *Job) AwaitEpoch(min uint32, cancel <-chan struct{}) (uint32, error) {
	j.mu.Lock()
	if j.epoch >= min {
		e := j.epoch
		j.mu.Unlock()
		return e, nil
	}
	w := epochWaiter{min: min, ch: make(chan uint32, 1)}
	j.epochWait = append(j.epochWait, w)
	j.mu.Unlock()
	select {
	case e := <-w.ch:
		return e, nil
	case <-cancel:
		return 0, ErrEpochWaitCancelled
	case <-j.abortCh:
		return 0, ErrJobAborted
	}
}

// EpochNotify implements core.Control: the returned channel closes
// when the job epoch first exceeds e.
func (j *Job) EpochNotify(e uint32) <-chan struct{} {
	j.mu.Lock()
	defer j.mu.Unlock()
	ch, ok := j.epochChans[e]
	if !ok {
		ch = make(chan struct{})
		j.epochChans[e] = ch
		if j.epoch > e {
			close(ch)
		}
	}
	return ch
}

// ReportLoop implements core.Control.
func (j *Job) ReportLoop(rank, loopID int) {
	j.mu.Lock()
	if loopID > j.maxLoop {
		j.maxLoop = loopID
	}
	hook := j.cfg.OnLoop
	j.mu.Unlock()
	if hook != nil {
		hook(rank, loopID)
	}
}

// Abort implements core.Control: tear the whole job down.
func (j *Job) Abort(err error) {
	j.mu.Lock()
	if j.abortErr == nil {
		j.abortErr = err
	}
	select {
	case <-j.abortCh:
		j.mu.Unlock()
		return
	default:
	}
	close(j.abortCh)
	procs := append([]*cluster.Proc{}, j.rankProc...)
	if j.rep != nil {
		for r, cp := range j.rep.shadowProc {
			if cp != nil {
				procs = append(procs, cp)
			}
			if nd := j.rep.shadowNode[r]; nd >= 0 {
				if st := j.tasks[nd]; st != nil {
					st.silence()
				}
			}
		}
	}
	j.mu.Unlock()
	j.cfg.Trace.Add(trace.KindAbort, -1, 0, "job aborted: %v", err)
	for _, p := range procs {
		if p != nil {
			p.Kill()
		}
	}
}

// NodeOfRank returns the node currently hosting a rank (fault
// injectors target through this).
func (j *Job) NodeOfRank(rank int) *cluster.Node {
	j.mu.Lock()
	defer j.mu.Unlock()
	if rank < 0 || rank >= len(j.rankNode) {
		return nil
	}
	return j.clu.Node(j.rankNode[rank])
}

// ActiveNodes returns the nodes currently hosting ranks.
func (j *Job) ActiveNodes() []*cluster.Node {
	j.mu.Lock()
	defer j.mu.Unlock()
	seen := map[int]bool{}
	var out []*cluster.Node
	for _, ndID := range j.rankNode {
		if !seen[ndID] {
			seen[ndID] = true
			if nd := j.clu.Node(ndID); nd != nil && !nd.Failed() {
				out = append(out, nd)
			}
		}
	}
	return out
}

// AddSpareNode provisions a fresh node at runtime and adds it to the
// spare pool — the paper's §III-A dynamic node join ("FMI also
// provides a capability for compute nodes to join or leave the job
// dynamically, primarily to replace failed nodes with spare nodes").
func (j *Job) AddSpareNode() *cluster.Node {
	nd := j.clu.AddNode()
	j.rm.AddSpare(nd)
	return nd
}

// Epoch returns the current job epoch.
func (j *Job) Epoch() uint32 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.epoch
}

// spawnRank starts one rank process on the task's node. startLoop is
// non-zero only for ranks joining through a grow fence: they enter
// the application loop at the fence's cut iteration.
func (j *Job) spawnRank(t *task, rank int, epoch uint32, replacement bool, startLoop int) error {
	cp, err := t.node.Spawn()
	if err != nil {
		return err
	}
	j.mu.Lock()
	j.rankProc[rank] = cp
	j.rankNode[rank] = t.node.ID
	v := j.view
	j.mu.Unlock()
	t.addChild(rank, cp)

	cfg := core.Config{
		Rank: rank, N: v.Ranks,
		View:          v,
		StartLoop:     startLoop,
		ProcsPerNode:  j.cfg.ProcsPerNode,
		Epoch:         epoch,
		IsReplacement: replacement,
		Interval:      j.cfg.Interval,
		MTBF:          j.cfg.MTBF,
		GroupSize:     j.cfg.GroupSize,
		RingBase:      j.cfg.RingBase,
		Redundancy:    j.cfg.Redundancy,
		L2Every:       j.cfg.L2Every,
		L2:            j.cfg.SCR,
		Local:         j.cfg.Recovery == "local",
		Node:          t.node.ID,
		Network:       j.cfg.Network,
		Replica:       j.replicaReg(),
		Ctl:           j,
		KillCh:        cp.KillCh(),
		Stats:         j.stats,
		Trace:         j.cfg.Trace,
		Coll:          j.cfg.Coll,
		Pool:          j.cfg.Pool,
	}
	go func() {
		defer func() {
			if v := recover(); v != nil {
				if core.IsKilledPanic(v) {
					return // task learned via KillCh
				}
				cp.Exit(fmt.Errorf("fmirun: rank %d panicked: %v", rank, v))
				return
			}
		}()
		p, err := core.Init(cfg)
		if err != nil {
			if errors.Is(err, core.ErrKilled) {
				return // killed during init; the task learned via KillCh
			}
			cp.Exit(fmt.Errorf("fmirun: rank %d init: %w", rank, err))
			return
		}
		cp.Exit(j.app(p))
	}()
	return nil
}

// rankFinished records a clean exit.
func (j *Job) rankFinished(rank int, err error) {
	j.mu.Lock()
	if rank >= len(j.rankDone) || j.rankDone[rank] {
		j.mu.Unlock()
		return
	}
	j.rankDone[rank] = true
	if err != nil {
		j.appErrs = append(j.appErrs, fmt.Errorf("rank %d: %w", rank, err))
	}
	j.doneCount++
	done := j.doneCount >= len(j.rankDone)
	// A finished rank can be the last missing ack or arrival of an
	// armed fence.
	if !done && j.resize != nil && !j.resize.committing {
		j.maybeDecideCutLocked(j.resize)
		j.maybeCommitLocked(j.resize)
	}
	j.mu.Unlock()
	if done {
		select {
		case <-j.doneCh:
		default:
			close(j.doneCh)
		}
		j.killShadows()
	}
}

// taskFailed handles an fmirun.task failure report. In replica mode
// the failure is first offered to the replication layer, which masks
// primary losses (shadow promotion) and shadow losses (background
// reprovision); only an unmaskable pair loss — or any failure once the
// pair machinery has been degraded — reaches the rollback path.
func (j *Job) taskFailed(t *task) {
	if j.replicaHandle(t) {
		return
	}
	j.failNode(t)
}

// failNode is the rollback-recovery failure path (paper §IV-B): bump
// the epoch, unblock stale rendezvous, allocate a replacement node,
// and respawn the lost ranks.
func (j *Job) failNode(t *task) {
	j.mu.Lock()
	if j.failedNodes[t.node.ID] {
		j.mu.Unlock()
		return
	}
	j.failedNodes[t.node.ID] = true
	// A failure during an uncommitted resize fence aborts the fence:
	// parked ranks are released to recover normally under the old view
	// and the resize re-collects its acks once recovery settles. A
	// failure after the commit point is an ordinary failure in the new
	// view.
	if rs := j.resize; rs != nil && !rs.committing {
		j.abortFenceLocked(rs, "node failure")
	}
	oldEpoch := j.epoch
	newEpoch := j.advanceEpochLocked()
	j.cfg.Trace.Add(trace.KindNodeFailed, -1, oldEpoch, "node %d failed", t.node.ID)
	j.cfg.Trace.Add(trace.KindEpoch, -1, newEpoch, "epoch advanced to %d", newEpoch)
	if int(newEpoch) > j.cfg.MaxEpochs {
		j.mu.Unlock()
		j.Abort(fmt.Errorf("%w: %d epochs", ErrTooManyFailures, newEpoch))
		return
	}
	// Ranks lost with the node, excluding already-finished ones.
	var lost []int
	for r, nd := range j.rankNode {
		if nd == t.node.ID && !j.rankDone[r] {
			lost = append(lost, r)
		}
	}
	delete(j.tasks, t.node.ID)
	j.mu.Unlock()

	// Unblock every rendezvous of the superseded epoch.
	for _, prefix := range []string{"h1", "h2", "avail", "h3", "replay", "finalize"} {
		j.coord.AbortGather(fmt.Sprintf("%s/%d", prefix, oldEpoch), core.ErrFailureDetected)
	}

	if len(lost) == 0 {
		return
	}
	// Allocate a spare and respawn; this may block on the resource
	// manager, which is exactly the paper's "fmirun waits until new
	// nodes are allocated".
	go func() {
		nd, err := j.rm.Allocate(j.abortCh)
		if err != nil {
			j.Abort(fmt.Errorf("%w: no spare node: %v", ErrJobAborted, err))
			return
		}
		j.mu.Lock()
		j.spareUsed++
		nt := newTask(j, nd)
		j.tasks[nd.ID] = nt
		j.mu.Unlock()
		j.cfg.Trace.Add(trace.KindSpareAlloc, -1, newEpoch, "node %d allocated for ranks %v", nd.ID, lost)
		for _, r := range lost {
			j.mu.Lock()
			stale := r >= len(j.rankDone)
			j.mu.Unlock()
			if stale {
				continue // retired by a shrink fence that raced the respawn
			}
			j.cfg.Trace.Add(trace.KindRespawn, r, newEpoch, "respawned on node %d", nd.ID)
			if err := j.spawnRank(nt, r, newEpoch, true, 0); err != nil {
				j.Abort(fmt.Errorf("%w: respawn rank %d: %v", ErrJobAborted, r, err))
				return
			}
		}
	}()
}

// advanceEpochLocked bumps the job epoch and wakes epoch waiters and
// notification channels. Caller holds j.mu.
func (j *Job) advanceEpochLocked() uint32 {
	j.epoch++
	newEpoch := j.epoch
	var still []epochWaiter
	for _, w := range j.epochWait {
		if newEpoch >= w.min {
			w.ch <- newEpoch
		} else {
			still = append(still, w)
		}
	}
	j.epochWait = still
	for e, ch := range j.epochChans {
		if newEpoch > e {
			select {
			case <-ch:
			default:
				close(ch)
			}
		}
	}
	return newEpoch
}

// replicaReg returns the shared replica registry (nil outside replica
// mode) for wiring into rank processes.
func (j *Job) replicaReg() *replica.Registry {
	if j.rep == nil {
		return nil
	}
	return j.rep.reg
}

// ShadowNodeOfRank returns the node currently hosting a rank's shadow
// copy, or nil (fault injectors target shadow/pair kills through
// this).
func (j *Job) ShadowNodeOfRank(rank int) *cluster.Node {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.rep == nil || rank < 0 || rank >= len(j.rep.shadowNode) {
		return nil
	}
	nd := j.rep.shadowNode[rank]
	if nd < 0 {
		return nil
	}
	return j.clu.Node(nd)
}

// replicaHandle offers a task failure to the replication layer.
// Returns true when the failure was absorbed (masked, duplicate, or
// handed to failNode after degrading); false when the plain rollback
// path should handle it.
func (j *Job) replicaHandle(t *task) bool {
	if j.rep == nil {
		return false
	}
	select {
	case <-j.doneCh:
		return true // completion teardown, not a failure
	case <-j.abortCh:
		return true
	default:
	}
	j.mu.Lock()
	if !j.rep.reg.Active() {
		j.mu.Unlock()
		return false // degraded: rollback recovery owns failures now
	}
	if j.failedNodes[t.node.ID] {
		j.mu.Unlock()
		return true // duplicate report
	}
	// With ProcsPerNode == 1 a node hosts exactly one copy: either some
	// rank's acting primary or some rank's shadow.
	primRank, shadRank := -1, -1
	for r, nd := range j.rankNode {
		if nd == t.node.ID && !j.rankDone[r] {
			primRank = r
		}
	}
	for r, nd := range j.rep.shadowNode {
		if nd == t.node.ID {
			shadRank = r
		}
	}
	if primRank < 0 && shadRank < 0 {
		// Hosts nothing live (e.g. its rank already finished).
		j.failedNodes[t.node.ID] = true
		j.mu.Unlock()
		return true
	}
	if primRank < 0 {
		// Shadow loss: fully masked. The primary keeps running; mirrored
		// sends to the dead endpoint vanish at the transport. Re-arm
		// protection by provisioning a replacement shadow in the
		// background.
		j.failedNodes[t.node.ID] = true
		j.rep.reg.DropShadow(shadRank)
		j.rep.shadowNode[shadRank] = -1
		j.rep.shadowProc[shadRank] = nil
		delete(j.tasks, t.node.ID)
		// The dead shadow can no longer ack or park in an armed fence;
		// drop its observer bookkeeping and re-check progress.
		if rs := j.resize; rs != nil && !rs.committing {
			delete(rs.obsAcks, shadRank)
			delete(rs.obsArrived, shadRank)
			j.maybeDecideCutLocked(rs)
			j.maybeCommitLocked(rs)
		}
		j.mu.Unlock()
		j.cfg.Trace.Add(trace.KindNodeFailed, -1, 0, "node %d failed (shadow of rank %d; masked)", t.node.ID, shadRank)
		go j.reprovisionShadow(shadRank)
		return true
	}
	// Primary loss: promote the shadow in place. No epoch bump, no
	// rollback — the shadow holds identical state and the survivors'
	// mirrored traffic already flows to it.
	if j.rep.reg.Promote(primRank) {
		j.failedNodes[t.node.ID] = true
		shadowNd := j.rep.shadowNode[primRank]
		j.rankNode[primRank] = shadowNd
		j.rankProc[primRank] = j.rep.shadowProc[primRank]
		j.rep.shadowNode[primRank] = -1
		j.rep.shadowProc[primRank] = nil
		delete(j.tasks, t.node.ID)
		if nt := j.tasks[shadowNd]; nt != nil {
			nt.setPrimary()
		}
		// The promoted shadow takes over the dead primary's place in an
		// armed fence: its observer ack/arrival become the rank's
		// participant ack/arrival.
		if rs := j.resize; rs != nil && !rs.committing {
			delete(rs.acks, primRank)
			delete(rs.arrived, primRank)
			if l, ok := rs.obsAcks[primRank]; ok {
				rs.acks[primRank] = l
				delete(rs.obsAcks, primRank)
			}
			if w := rs.obsArrived[primRank]; w != nil {
				rs.arrived[primRank] = w
				delete(rs.obsArrived, primRank)
			}
			j.maybeDecideCutLocked(rs)
			j.maybeCommitLocked(rs)
		}
		j.mu.Unlock()
		j.cfg.Trace.Add(trace.KindNodeFailed, -1, 0, "node %d failed (primary of rank %d)", t.node.ID, primRank)
		j.cfg.Trace.Add(trace.KindShadowPromote, primRank, 0, "shadow on node %d promoted in place (no rollback)", shadowNd)
		go j.reprovisionShadow(primRank)
		return true
	}
	// Pair loss: the rank's shadow is gone too (or not yet synced) —
	// the failure is unmaskable. Degrade permanently to rollback
	// recovery: deactivate the registry (survivors rebuild plain
	// generations), reap the remaining shadows, return their healthy
	// nodes to the spare pool, and let failNode reconstruct the lost
	// rank from its checkpoint group (L1, or the L2/feasibility
	// fallback when the group lost both copies).
	j.rep.degraded = true
	j.rep.reg.Deactivate()
	var reap []*cluster.Proc
	var pool []*cluster.Node
	for r := range j.rep.shadowNode {
		nd := j.rep.shadowNode[r]
		if nd < 0 {
			continue
		}
		if cp := j.rep.shadowProc[r]; cp != nil {
			reap = append(reap, cp)
		}
		if st := j.tasks[nd]; st != nil {
			st.silence()
			delete(j.tasks, nd)
		}
		if n := j.clu.Node(nd); n != nil && !n.Failed() {
			pool = append(pool, n)
		}
		j.rep.shadowNode[r] = -1
		j.rep.shadowProc[r] = nil
	}
	j.mu.Unlock()
	for _, cp := range reap {
		cp.Kill()
	}
	for _, n := range pool {
		j.rm.AddSpare(n)
	}
	j.cfg.Trace.Add(trace.KindNodeFailed, -1, 0, "node %d failed (rank %d pair lost; degrading to rollback recovery)", t.node.ID, primRank)
	j.failNode(t)
	return true
}

// reprovisionShadow allocates a spare node (avoiding the rank's acting
// primary — anti-affinity) and spawns a replacement shadow on it. The
// replacement registers with needSync, re-executes the deterministic
// prologue, and adopts the primary's live state at the next Loop
// boundary (core's shadow-sync protocol). If no spare can be had the
// rank simply runs unprotected: the next primary loss degrades to
// rollback recovery instead of aborting the job.
func (j *Job) reprovisionShadow(rank int) {
	j.mu.Lock()
	avoid := j.rankNode[rank]
	j.mu.Unlock()
	nd, err := j.rm.AllocateAvoiding(j.abortCh, avoid)
	if err != nil {
		j.cfg.Trace.Add(trace.KindShadowReprovision, rank, 0, "no spare for replacement shadow (%v); rank runs unprotected", err)
		return
	}
	j.mu.Lock()
	stale := j.rep.degraded || rank >= len(j.rankDone) || j.rankDone[rank]
	if !stale {
		select {
		case <-j.doneCh:
			stale = true
		case <-j.abortCh:
			stale = true
		default:
		}
	}
	if stale {
		j.mu.Unlock()
		j.rm.AddSpare(nd)
		return
	}
	j.spareUsed++
	nt := newShadowTask(j, nd)
	j.tasks[nd.ID] = nt
	j.rep.shadowNode[rank] = nd.ID
	j.mu.Unlock()
	j.cfg.Trace.Add(trace.KindSpareAlloc, -1, 0, "node %d allocated for replacement shadow of rank %d", nd.ID, rank)
	j.cfg.Trace.Add(trace.KindShadowReprovision, rank, 0, "replacement shadow spawning on node %d", nd.ID)
	if err := j.spawnShadow(nt, rank, true, 0, 0); err != nil {
		j.cfg.Trace.Add(trace.KindShadowReprovision, rank, 0, "replacement shadow spawn failed: %v; rank runs unprotected", err)
	}
}

// spawnShadow starts a rank's shadow copy on the task's node. Shadows
// run the same deterministic app in lockstep with their primary but
// report into a private Stats sink (the pair would double-count) and
// carry no trace recorder; loop progress is reported only after
// promotion (shadowCtl). epoch/startLoop are non-zero only for
// shadows of ranks joining through a grow fence.
func (j *Job) spawnShadow(t *task, rank int, needSync bool, epoch uint32, startLoop int) error {
	cp, err := t.node.Spawn()
	if err != nil {
		return err
	}
	j.mu.Lock()
	j.rep.shadowProc[rank] = cp
	j.rep.shadowNode[rank] = t.node.ID
	v := j.view
	j.mu.Unlock()
	t.addChild(rank, cp)

	cfg := core.Config{
		Rank: rank, N: v.Ranks,
		View:          v,
		StartLoop:     startLoop,
		ProcsPerNode:  j.cfg.ProcsPerNode,
		Epoch:         epoch,
		IsReplacement: needSync,
		Interval:      j.cfg.Interval,
		MTBF:          j.cfg.MTBF,
		GroupSize:     j.cfg.GroupSize,
		RingBase:      j.cfg.RingBase,
		Redundancy:    j.cfg.Redundancy,
		L2Every:       j.cfg.L2Every,
		L2:            j.cfg.SCR,
		Node:          t.node.ID,
		Network:       j.cfg.Network,
		Replica:       j.rep.reg,
		Shadow:        true,
		Ctl:           shadowCtl{j: j, rank: rank},
		KillCh:        cp.KillCh(),
		Stats:         &core.Stats{},
		Coll:          j.cfg.Coll,
		Pool:          j.cfg.Pool,
	}
	go func() {
		defer func() {
			if v := recover(); v != nil {
				if core.IsKilledPanic(v) {
					return // task learned via KillCh
				}
				cp.Exit(fmt.Errorf("fmirun: shadow of rank %d panicked: %v", rank, v))
				return
			}
		}()
		p, err := core.Init(cfg)
		if err != nil {
			if errors.Is(err, core.ErrKilled) {
				return
			}
			cp.Exit(fmt.Errorf("fmirun: shadow of rank %d init: %w", rank, err))
			return
		}
		cp.Exit(j.app(p))
	}()
	return nil
}

// killShadows reaps every remaining shadow at job completion. The
// tasks are silenced first so the deliberate kills are not mistaken
// for node failures.
func (j *Job) killShadows() {
	if j.rep == nil {
		return
	}
	j.mu.Lock()
	var kill []*cluster.Proc
	for r, cp := range j.rep.shadowProc {
		if cp != nil {
			kill = append(kill, cp)
			j.rep.shadowProc[r] = nil
		}
		if nd := j.rep.shadowNode[r]; nd >= 0 {
			if st := j.tasks[nd]; st != nil {
				st.silence()
			}
		}
	}
	j.mu.Unlock()
	for _, cp := range kill {
		cp.Kill()
	}
}

// shadowCtl is the core.Control handed to shadow copies: identical to
// the job's own, except loop progress is reported only once the shadow
// has been promoted to acting primary — the fault injector's AfterLoop
// counting must see each iteration exactly once per rank.
type shadowCtl struct {
	j    *Job
	rank int
}

func (c shadowCtl) Coordinator() *bootstrap.Coordinator { return c.j.coord }

func (c shadowCtl) AwaitEpoch(min uint32, cancel <-chan struct{}) (uint32, error) {
	return c.j.AwaitEpoch(min, cancel)
}

func (c shadowCtl) EpochNotify(e uint32) <-chan struct{} { return c.j.EpochNotify(e) }

func (c shadowCtl) ReportLoop(rank, loopID int) {
	if c.j.rep.reg.Promoted(c.rank) {
		c.j.ReportLoop(rank, loopID)
	}
}

func (c shadowCtl) Abort(err error) { c.j.Abort(err) }

// shadowCtl forwards the view-control surface so shadows observe
// resize fences (core.ViewControl).
func (c shadowCtl) CurrentView() *view.View { return c.j.CurrentView() }
func (c shadowCtl) ResizePending() uint64   { return c.j.ResizePending() }
func (c shadowCtl) JoinResize(ticket uint64, rank, loopID int, observer bool, cancel <-chan struct{}) (core.ResizeOutcome, error) {
	return c.j.JoinResize(ticket, rank, loopID, observer, cancel)
}
func (c shadowCtl) RequestResize(n int) error { return c.j.RequestResize(n) }
func (c shadowCtl) MarkFinalizing(rank int)   { c.j.MarkFinalizing(rank) }
