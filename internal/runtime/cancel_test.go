package runtime

import (
	"errors"
	"sync"
	"testing"
	"time"

	"fmi/internal/cluster"
	"fmi/internal/core"
)

// TestDoneChannelCompletion pins the Done() contract on the success
// path: open while the job runs, closed once every rank finished, and
// Wait returns immediately afterwards.
func TestDoneChannelCompletion(t *testing.T) {
	var results sync.Map
	gate := make(chan struct{})
	app := func(p *core.Proc) error {
		<-gate // hold the job open until the test has sampled Done
		return checksumApp(3, &results)(p)
	}
	j, err := Launch(Config{
		Ranks: 4, ProcsPerNode: 2, Interval: 2,
		Network: fastNet(), Timeout: 20 * time.Second,
	}, app)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Done():
		t.Fatal("Done closed while ranks still running")
	default:
	}
	close(gate)
	select {
	case <-j.Done():
	case <-time.After(20 * time.Second):
		t.Fatal("Done never closed")
	}
	if _, err := j.Wait(); err != nil {
		t.Fatalf("Wait after Done: %v", err)
	}
	checkResults(t, &results, 4, 3)
}

// TestDoneChannelAbort pins Done() on the abort path.
func TestDoneChannelAbort(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	j, err := Launch(Config{
		Ranks: 2, Interval: 2, Network: fastNet(), Timeout: 30 * time.Second,
	}, func(p *core.Proc) error {
		<-block
		return p.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	j.Abort(boom)
	select {
	case <-j.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("Done never closed after Abort")
	}
	if _, err := j.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait = %v, want the abort error", err)
	}
}

// TestAwaitEpochCancelSentinel pins the cancellation sentinel: a
// cancelled epoch wait returns ErrEpochWaitCancelled — which wraps
// core.ErrKilled so the rank runtime unwinds quietly — and is
// distinguishable from a job-level abort.
func TestAwaitEpochCancelSentinel(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	j, err := Launch(Config{
		Ranks: 2, Interval: 2, Network: fastNet(), Timeout: 30 * time.Second,
	}, func(p *core.Proc) error {
		<-gate
		return p.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
	cancel := make(chan struct{})
	errCh := make(chan error, 1)
	go func() {
		_, werr := j.AwaitEpoch(1, cancel)
		errCh <- werr
	}()
	close(cancel)
	select {
	case werr := <-errCh:
		if !errors.Is(werr, ErrEpochWaitCancelled) {
			t.Fatalf("err = %v, want ErrEpochWaitCancelled", werr)
		}
		if !errors.Is(werr, core.ErrKilled) {
			t.Fatalf("err = %v must wrap core.ErrKilled for the kill-unwind path", werr)
		}
		if errors.Is(werr, ErrJobAborted) {
			t.Fatalf("err = %v must be distinguishable from ErrJobAborted", werr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("AwaitEpoch ignored cancel")
	}

	// The abort path must return the other sentinel. Wait for an epoch
	// the job can never reach: aborting kills the rank procs, which the
	// failure detector can report as a recovery round, so waiting on
	// epoch 1 would race the abort signal.
	go func() {
		_, werr := j.AwaitEpoch(99, nil)
		errCh <- werr
	}()
	j.Abort(ErrJobAborted)
	select {
	case werr := <-errCh:
		if !errors.Is(werr, ErrJobAborted) || errors.Is(werr, ErrEpochWaitCancelled) {
			t.Fatalf("abort path err = %v, want ErrJobAborted only", werr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("AwaitEpoch ignored abort")
	}
}

// TestAddSpareNodeConcurrentWithKills is the race-detector stress for
// dynamic node join: one goroutine grows the spare pool through
// AddSpareNode while the injector keeps killing compute nodes, so
// lease injection, pool allocation, and failure recovery all overlap.
// Run with -race; the checksum still pins correctness.
func TestAddSpareNodeConcurrentWithKills(t *testing.T) {
	var results sync.Map
	const ranks, iters = 8, 12
	nodes := ranks/2 + 1
	clu := cluster.New(nodes)
	cfg := Config{
		Ranks: ranks, ProcsPerNode: 2, SpareNodes: 1, Interval: 2,
		GroupSize: 4, Redundancy: 2, L2Every: 2,
		Cluster: clu, Network: fastNet(), Timeout: 30 * time.Second,
		// Slow every iteration down so the kill/add-spare goroutines
		// genuinely overlap the job instead of racing a finished run.
		OnLoop: func(rank, loopID int) { time.Sleep(3 * time.Millisecond) },
	}
	j, err := Launch(cfg, checksumApp(iters, &results))
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	// Spare feeder: keep adding fresh nodes while the job runs.
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			j.AddSpareNode()
			time.Sleep(time.Millisecond)
		}
	}()
	// Killer: fail the node under a rotating rank, pacing kills by the
	// epoch counter so each failure is recoverable before the next.
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			select {
			case <-stop:
				return
			case <-time.After(15 * time.Millisecond):
			}
			epoch := j.Epoch()
			if nd := j.NodeOfRank((i * 3) % ranks); nd != nil && !nd.Failed() {
				nd.Fail()
			}
			// Wait for the recovery round to take hold, then let the
			// respawn settle before striking again.
			deadline := time.Now().Add(5 * time.Second)
			for j.Epoch() == epoch && time.Now().Before(deadline) {
				select {
				case <-stop:
					return
				case <-time.After(2 * time.Millisecond):
				}
			}
			time.Sleep(25 * time.Millisecond)
		}
	}()
	rep, err := j.Wait()
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	checkResults(t, &results, ranks, iters)
	if rep.Epochs == 0 {
		t.Fatal("no failures landed; the stress missed")
	}
}
