package runtime

import (
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"fmi/internal/cluster"
	"fmi/internal/core"
	"fmi/internal/pfs"
	"fmi/internal/scr"
)

// fastSCR builds a level-2 manager whose PFS charges no wall time.
func fastSCR() *scr.Manager {
	return scr.NewManager(pfs.Model{TimeScale: 0}, pfs.NewShared("pfs", pfs.Model{TimeScale: 0}))
}

func TestMultilevelRecoversTwoLossesInGroup(t *testing.T) {
	// Two nodes of the same XOR group die at once. Without level 2
	// this aborts (TestUnrecoverableTwoNodesInGroup); with L2Every=1
	// the job falls back to the PFS checkpoint and completes with the
	// exact answer.
	var results sync.Map
	const ranks, iters = 4, 12
	rep, err := runWithFaults(t, Config{
		Ranks: ranks, ProcsPerNode: 1, SpareNodes: 3, Interval: 2,
		GroupSize: 4, L2Every: 1, SCR: fastSCR(),
		Network: fastNet(), Timeout: 60 * time.Second, MaxEpochs: 32,
	}, []cluster.Fault{
		{AfterLoop: 5, Node: 0},
		{AfterLoop: 5, Node: 1},
	}, checksumApp(iters, &results))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkResults(t, &results, ranks, iters)
	if rep.Stats.L2Checkpoints == 0 {
		t.Fatal("no level-2 checkpoints written")
	}
	if rep.Stats.L2Restores == 0 {
		t.Fatal("recovery did not use the level-2 fallback")
	}
}

func TestMultilevelPrefersLevel1(t *testing.T) {
	// A single-node failure must still use the fast in-memory path
	// even when level 2 is enabled.
	var results sync.Map
	const ranks, iters = 4, 10
	rep, err := runWithFaults(t, Config{
		Ranks: ranks, ProcsPerNode: 1, SpareNodes: 1, Interval: 2,
		GroupSize: 4, L2Every: 2, SCR: fastSCR(),
		Network: fastNet(), Timeout: 60 * time.Second,
	}, []cluster.Fault{{AfterLoop: 5, Node: -1, Rank: 2}}, checksumApp(iters, &results))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkResults(t, &results, ranks, iters)
	if rep.Stats.L2Restores != 0 {
		t.Fatalf("level-2 fallback used (%d) for a level-1-recoverable failure", rep.Stats.L2Restores)
	}
	if rep.Stats.Restores == 0 {
		t.Fatal("no level-1 restores recorded")
	}
}

func TestMultilevelL2Cadence(t *testing.T) {
	// With L2Every = 3 and interval 1, a 9-iteration run commits ~10
	// level-1 checkpoints per rank and a third as many level-2 flushes.
	mgr := fastSCR()
	var results sync.Map
	rep, err := Run(Config{
		Ranks: 2, ProcsPerNode: 1, Interval: 1, GroupSize: 2,
		L2Every: 3, SCR: mgr,
		Network: fastNet(), Timeout: 30 * time.Second,
	}, checksumApp(9, &results))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	perRankL1 := rep.Stats.Checkpoints / 2
	perRankL2 := rep.Stats.L2Checkpoints / 2
	if perRankL2 == 0 || perRankL2 > perRankL1/2 {
		t.Fatalf("L2 cadence wrong: %d L1 vs %d L2 per rank", perRankL1, perRankL2)
	}
	if mgr.LatestL2() < 0 {
		t.Fatal("no committed level-2 checkpoint")
	}
}

func TestMultilevelSecondFailureBeforeReencode(t *testing.T) {
	// After an L2 fallback the restored entries carry no XOR parity;
	// a further failure arriving before the next checkpoint must fall
	// back to level 2 again rather than wedging.
	var results sync.Map
	const ranks, iters = 4, 14
	rep, err := runWithFaults(t, Config{
		Ranks: ranks, ProcsPerNode: 1, SpareNodes: 6, Interval: 2,
		GroupSize: 4, L2Every: 1, SCR: fastSCR(),
		Network: fastNet(), Timeout: 90 * time.Second, MaxEpochs: 64,
	}, []cluster.Fault{
		{AfterLoop: 5, Node: 0},
		{AfterLoop: 5, Node: 1},
		{AfterLoop: 9, Node: 2},
	}, checksumApp(iters, &results))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkResults(t, &results, ranks, iters)
	if rep.Stats.L2Restores == 0 {
		t.Fatal("no level-2 fallback recorded")
	}
}

func TestL2DisabledStillAborts(t *testing.T) {
	// Paper §VIII baseline behaviour preserved: without level 2, two
	// losses in one group abort the job.
	var results sync.Map
	_, err := runWithFaults(t, Config{
		Ranks: 4, ProcsPerNode: 1, SpareNodes: 2, Interval: 2,
		GroupSize: 4, Network: fastNet(), Timeout: 30 * time.Second, MaxEpochs: 16,
	}, []cluster.Fault{
		{AfterLoop: 4, Node: 0},
		{AfterLoop: 4, Node: 1},
	}, checksumApp(10, &results))
	if err == nil {
		t.Fatal("two-loss failure without L2 should abort")
	}
}

// sanity: the L2 blob self-description codec is exercised through the
// public path too (unit codec tests live in core).
func TestMultilevelStateRoundtrip(t *testing.T) {
	var results sync.Map
	const ranks, iters = 4, 8
	app := func(p *core.Proc) error {
		a := make([]byte, 5)
		b := make([]byte, 11)
		for {
			n := p.Loop([][]byte{a, b})
			if n >= iters {
				break
			}
			if err := p.World().Barrier(); err != nil {
				continue
			}
			a[0] = byte(n + 1)
			binary.LittleEndian.PutUint64(b[0:], uint64(n+1))
		}
		results.Store(p.Rank(), [2]byte{a[0], b[0]})
		return p.Finalize()
	}
	_, err := runWithFaults(t, Config{
		Ranks: ranks, ProcsPerNode: 1, SpareNodes: 3, Interval: 1,
		GroupSize: 4, L2Every: 1, SCR: fastSCR(),
		Network: fastNet(), Timeout: 60 * time.Second, MaxEpochs: 32,
	}, []cluster.Fault{
		{AfterLoop: 3, Node: 0},
		{AfterLoop: 3, Node: 1},
	}, app)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	results.Range(func(k, v any) bool {
		got := v.([2]byte)
		if got[0] != iters || got[1] != iters {
			t.Errorf("rank %v final state %v, want {%d,%d} (multi-segment L2 restore broken)", k, got, iters, iters)
		}
		return true
	})
}
