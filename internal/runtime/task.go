package runtime

import (
	"sync"

	"fmi/internal/cluster"
	"fmi/internal/trace"
)

// task is the per-node fmirun.task of Fig 6: it forks the rank
// processes on its node, watches them, and — if any child dies or
// exits unsuccessfully — kills the remaining children and reports the
// failure up to fmirun (paper §IV-B).
type task struct {
	j    *Job
	node *cluster.Node

	mu       sync.Mutex
	children map[int]*cluster.Proc // rank -> proc
	failed   bool
}

func newTask(j *Job, node *cluster.Node) *task {
	t := &task{j: j, node: node, children: make(map[int]*cluster.Proc)}
	// A node failure kills the task itself; report it even if no
	// child-death race delivers the event first.
	go func() {
		<-node.FailedCh()
		t.fail()
	}()
	return t
}

func (t *task) addChild(rank int, cp *cluster.Proc) {
	t.mu.Lock()
	t.children[rank] = cp
	t.mu.Unlock()
	go t.watch(rank, cp)
}

func (t *task) watch(rank int, cp *cluster.Proc) {
	select {
	case <-cp.KillCh():
		t.j.cfg.Trace.Add(trace.KindProcKilled, rank, t.j.Epoch(), "process killed on node %d", t.node.ID)
		t.fail()
	case <-cp.DoneCh():
		if err := cp.ExitErr(); err != nil {
			// Unsuccessful exit: treat like a crash (EXIT_FAILURE path
			// in the paper) *unless* the job is already completing.
			t.j.rankFinished(rank, err)
			t.fail()
			return
		}
		t.childDone(rank)
	}
}

func (t *task) childDone(rank int) {
	t.mu.Lock()
	delete(t.children, rank)
	t.mu.Unlock()
	t.j.rankFinished(rank, nil)
}

// fail kills the remaining children and reports the task failure once.
func (t *task) fail() {
	t.mu.Lock()
	if t.failed {
		t.mu.Unlock()
		return
	}
	t.failed = true
	kids := make([]*cluster.Proc, 0, len(t.children))
	for _, cp := range t.children {
		kids = append(kids, cp)
	}
	t.mu.Unlock()
	for _, cp := range kids {
		cp.Kill()
	}
	t.j.taskFailed(t)
}
