package runtime

import (
	"sync"

	"fmi/internal/cluster"
	"fmi/internal/trace"
)

// task is the per-node fmirun.task of Fig 6: it forks the rank
// processes on its node, watches them, and — if any child dies or
// exits unsuccessfully — kills the remaining children and reports the
// failure up to fmirun (paper §IV-B). In replica mode a task may host
// a rank's shadow copy instead of its primary; promotion flips the
// role in place.
type task struct {
	j    *Job
	node *cluster.Node

	mu       sync.Mutex
	children map[int]*cluster.Proc // rank -> proc
	failed   bool
	shadow   bool         // hosts a shadow copy (replica recovery)
	retiring map[int]bool // ranks retired by a shrink fence; their kills are deliberate
}

func newTask(j *Job, node *cluster.Node) *task {
	t := &task{j: j, node: node, children: make(map[int]*cluster.Proc)}
	// A node failure kills the task itself; report it even if no
	// child-death race delivers the event first.
	go func() {
		<-node.FailedCh()
		t.fail()
	}()
	return t
}

// newShadowTask creates a task hosting a shadow copy.
func newShadowTask(j *Job, node *cluster.Node) *task {
	t := newTask(j, node)
	t.mu.Lock()
	t.shadow = true
	t.mu.Unlock()
	return t
}

// isShadow reports the task's current role.
func (t *task) isShadow() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.shadow
}

// setPrimary flips a shadow task to primary (its child was promoted).
func (t *task) setPrimary() {
	t.mu.Lock()
	t.shadow = false
	t.mu.Unlock()
}

// setRetiring marks one child rank as retired by a shrink fence: its
// upcoming kill is a deliberate teardown, not a node failure.
func (t *task) setRetiring(rank int) {
	t.mu.Lock()
	if t.retiring == nil {
		t.retiring = make(map[int]bool)
	}
	t.retiring[rank] = true
	t.mu.Unlock()
}

func (t *task) isRetiring(rank int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.retiring[rank]
}

// silence marks the task failed without reporting, so a deliberate
// teardown of its children (shadow reaping at job completion, abort,
// or a replica degrade) does not masquerade as a node failure.
func (t *task) silence() {
	t.mu.Lock()
	t.failed = true
	t.mu.Unlock()
}

func (t *task) addChild(rank int, cp *cluster.Proc) {
	t.mu.Lock()
	t.children[rank] = cp
	t.mu.Unlock()
	go t.watch(rank, cp)
}

func (t *task) watch(rank int, cp *cluster.Proc) {
	select {
	case <-cp.KillCh():
		if t.isRetiring(rank) {
			// Deliberate teardown of a rank retired by a shrink fence:
			// the node and its surviving children are healthy.
			t.mu.Lock()
			delete(t.children, rank)
			t.mu.Unlock()
			return
		}
		t.j.cfg.Trace.Add(trace.KindProcKilled, rank, t.j.Epoch(), "process killed on node %d", t.node.ID)
		t.fail()
	case <-cp.DoneCh():
		if t.isShadow() {
			// A shadow's exit is not the rank's: completion is reported
			// by the acting primary, and a deterministic app error will
			// surface identically from it.
			t.mu.Lock()
			delete(t.children, rank)
			t.mu.Unlock()
			return
		}
		if err := cp.ExitErr(); err != nil {
			// Unsuccessful exit: treat like a crash (EXIT_FAILURE path
			// in the paper) *unless* the job is already completing.
			t.j.rankFinished(rank, err)
			t.fail()
			return
		}
		t.childDone(rank)
	}
}

func (t *task) childDone(rank int) {
	t.mu.Lock()
	delete(t.children, rank)
	t.mu.Unlock()
	t.j.rankFinished(rank, nil)
}

// fail kills the remaining children and reports the task failure once.
func (t *task) fail() {
	t.mu.Lock()
	if t.failed {
		t.mu.Unlock()
		return
	}
	t.failed = true
	kids := make([]*cluster.Proc, 0, len(t.children))
	for _, cp := range t.children {
		kids = append(kids, cp)
	}
	t.mu.Unlock()
	for _, cp := range kids {
		cp.Kill()
	}
	t.j.taskFailed(t)
}
