package lint

import (
	"go/ast"
	"go/types"
	"sort"

	"fmi/internal/lint/cfg"
)

// BufRelease guards the arena ownership contract at its sharpest edge:
// a buffer obtained from bufpool.Arena.Get is owned by the caller and
// must be handed somewhere — copied into, stored in a frame, passed
// on, or Put back — before control can leave the function. The
// analysis runs block-level dataflow over the lint CFG: a variable
// assigned from Get is "held" until the first statement that mentions
// it again (whatever that statement does is assumed to transfer or
// release ownership), holds merge as a union at control-flow joins,
// and the findings are the paths where the buffer provably went
// nowhere: a return before any use, a silently discarded Get result,
// or a held variable overwritten by a second Get. The bufpool package
// itself is exempt (its internals juggle raw buffers by design).
var BufRelease = &Analyzer{
	Name: "bufrelease",
	Doc:  "a buffer from bufpool.Arena.Get must be used, stored, or Put before every return path",
	Run:  runBufRelease,
}

func runBufRelease(prog *Program, report Reporter) {
	for _, pkg := range prog.Packages {
		if pkg.Name == "bufpool" {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					if n.Body != nil {
						analyzeBufBody(prog, pkg, report, n.Body)
					}
				case *ast.FuncLit:
					// A literal's body may itself call Get; it is its
					// own ownership scope.
					analyzeBufBody(prog, pkg, report, n.Body)
				}
				return true
			})
		}
	}
}

func analyzeBufBody(prog *Program, pkg *Package, report Reporter, body *ast.BlockStmt) {
	g := cfg.New(body)
	an := &bufAnalysis{prog: prog, pkg: pkg}
	in := cfg.Forward(g, an)
	an.report = report
	cfg.EachReachable(g, an, in, func(cfg.Node, cfg.Fact) {})
	if exitFact, reachable := in[g.Exit]; reachable {
		for _, name := range heldNames(exitFact.(bufFact)) {
			report(body.Rbrace, "function ends still holding pooled buffer %s: no use, store, or Put after Arena.Get", name)
		}
	}
}

// bufFact maps variable name -> holds an unconsumed Get result.
type bufFact map[string]bool

func heldNames(f bufFact) []string {
	var names []string
	for name, held := range f {
		if held {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

type bufAnalysis struct {
	prog   *Program
	pkg    *Package
	report Reporter // nil during the fixpoint pass
}

func (ba *bufAnalysis) Entry() cfg.Fact { return bufFact{} }

func (ba *bufAnalysis) Copy(f cfg.Fact) cfg.Fact {
	n := bufFact{}
	for k, v := range f.(bufFact) {
		n[k] = v
	}
	return n
}

// Join is a union: a buffer still held on any incoming path is held.
func (ba *bufAnalysis) Join(dst, src cfg.Fact) bool {
	d, s := dst.(bufFact), src.(bufFact)
	changed := false
	for k, v := range s {
		if v && !d[k] {
			d[k] = true
			changed = true
		}
	}
	return changed
}

func (ba *bufAnalysis) emit(pos ast.Node, format string, args ...any) {
	if ba.report != nil {
		ba.report(pos.Pos(), format, args...)
	}
}

func (ba *bufAnalysis) Transfer(n cfg.Node, f cfg.Fact) cfg.Fact {
	bf := f.(bufFact)
	switch st := n.Ast.(type) {
	case *ast.AssignStmt:
		ba.mentions(bf, st.Rhs...)
		if len(st.Lhs) == len(st.Rhs) {
			for i, rhs := range st.Rhs {
				call, isCall := rhs.(*ast.CallExpr)
				if !isCall || !ba.arenaGet(call) {
					continue
				}
				id, isIdent := st.Lhs[i].(*ast.Ident)
				if !isIdent {
					continue // stored straight into a field/element: consumed
				}
				if id.Name == "_" {
					ba.emit(call, "result of Arena.Get discarded: the pooled buffer is leaked to the GC")
					continue
				}
				if bf[id.Name] {
					ba.emit(st, "%s overwritten while still holding an unreleased Arena.Get buffer", id.Name)
				}
				bf[id.Name] = true
			}
		}
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok && ba.arenaGet(call) {
			ba.emit(call, "result of Arena.Get discarded: the pooled buffer is leaked to the GC")
			return bf
		}
		ba.mention(bf, st.X)
	case *ast.ReturnStmt:
		ba.mentions(bf, st.Results...)
		for _, name := range heldNames(bf) {
			ba.emit(st, "return leaks pooled buffer %s: no use, store, or Put between Arena.Get and this return", name)
		}
	case *ast.DeferStmt:
		ba.mention(bf, st.Call)
	case *ast.GoStmt:
		ba.mention(bf, st.Call)
	case *ast.SendStmt:
		ba.mentions(bf, st.Chan, st.Value)
	case *ast.IncDecStmt:
		ba.mention(bf, st.X)
	case *ast.RangeStmt:
		ba.mention(bf, st.X)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					ba.mentions(bf, vs.Values...)
				}
			}
		}
	case *ast.SelectStmt, *ast.LabeledStmt, *ast.BranchStmt, *ast.EmptyStmt:
	default:
		if e, ok := n.Ast.(ast.Expr); ok {
			// A control expression (if/for condition, switch tag, case
			// expression) evaluated at this point.
			ba.mention(bf, e)
		}
	}
	return bf
}

// arenaGet reports whether call is (*bufpool.Arena).Get.
func (ba *bufAnalysis) arenaGet(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Get" {
		return false
	}
	selection, found := ba.pkg.Info.Selections[sel]
	if !found {
		return false
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Name() != "bufpool" {
		return false
	}
	recv := selection.Recv()
	if ptr, isPtr := recv.(*types.Pointer); isPtr {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	return ok && named.Obj().Name() == "Arena"
}

// mention clears every held variable named anywhere in e: whatever the
// statement does with the buffer (copy into it, store it, send it,
// Put it) is assumed to take over its ownership. Descends into
// function literals — a closure capturing the buffer owns it — whose
// own bodies are analysed separately as fresh functions.
func (ba *bufAnalysis) mention(bf bufFact, e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && bf[id.Name] {
			bf[id.Name] = false
		}
		return true
	})
}

func (ba *bufAnalysis) mentions(bf bufFact, es ...ast.Expr) {
	for _, e := range es {
		ba.mention(bf, e)
	}
}
